// QAT integration tests: the paper's central training-time claim is that
// fine-tuning with the dual-weight scheme recovers accuracy lost to
// post-training quantization.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "quant/qat.h"

namespace qnn::quant {
namespace {

struct Fixture {
  data::Split split;
  std::unique_ptr<nn::Network> float_net;
  double float_acc;

  Fixture() {
    data::SyntheticConfig dc;
    dc.num_train = 300;
    dc.num_test = 100;
    dc.seed = 7;
    split = data::make_mnist_like(dc);
    nn::ZooConfig zc;
    zc.channel_scale = 0.25;
    float_net = nn::make_lenet(zc);
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.batch_size = 25;
    tc.sgd.learning_rate = 0.02;
    nn::train(*float_net, split.train, tc);
    float_acc = nn::evaluate(*float_net, split.test);
  }
};

Fixture& fixture() {
  static Fixture f;  // train the float baseline once for all tests
  return f;
}

nn::TrainConfig finetune_config() {
  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 25;
  tc.sgd.learning_rate = 0.01;
  return tc;
}

TEST(Qat, FloatBaselineLearned) {
  EXPECT_GT(fixture().float_acc, 85.0);
}

TEST(Qat, Fixed8RetainsAccuracy) {
  auto& f = fixture();
  nn::ZooConfig zc;
  zc.channel_scale = 0.25;
  auto net = nn::make_lenet(zc);
  net->copy_params_from(*f.float_net);
  QuantizedNetwork qnet(*net, fixed_config(8, 8));
  QatConfig qc;
  qc.train = finetune_config();
  qat_finetune(qnet, f.split.train, qc);
  const double acc = nn::evaluate(qnet, f.split.test);
  qnet.restore_masters();
  EXPECT_GT(acc, f.float_acc - 4.0);
}

TEST(Qat, FinetuneBeatsPostTrainingQuantizationAt4Bit) {
  auto& f = fixture();
  nn::ZooConfig zc;
  zc.channel_scale = 0.25;

  // Post-training quantization: calibrate only, no fine-tune.
  auto ptq_net = nn::make_lenet(zc);
  ptq_net->copy_params_from(*f.float_net);
  QuantizedNetwork ptq(*ptq_net, fixed_config(4, 4));
  ptq.calibrate(data::batch_images(f.split.train, 0, 64));
  const double ptq_acc = nn::evaluate(ptq, f.split.test);
  ptq.restore_masters();

  // QAT.
  auto qat_net = nn::make_lenet(zc);
  qat_net->copy_params_from(*f.float_net);
  QuantizedNetwork qat(*qat_net, fixed_config(4, 4));
  QatConfig qc;
  qc.train = finetune_config();
  qat_finetune(qat, f.split.train, qc);
  const double qat_acc = nn::evaluate(qat, f.split.test);
  qat.restore_masters();

  EXPECT_GE(qat_acc, ptq_acc - 1.0)
      << "QAT should not lose to PTQ (ptq=" << ptq_acc
      << ", qat=" << qat_acc << ")";
}

TEST(Qat, MastersStayFullPrecisionAfterFinetune) {
  auto& f = fixture();
  nn::ZooConfig zc;
  zc.channel_scale = 0.25;
  auto net = nn::make_lenet(zc);
  net->copy_params_from(*f.float_net);
  QuantizedNetwork qnet(*net, binary_config(16));
  QatConfig qc;
  qc.train = finetune_config();
  qat_finetune(qnet, f.split.train, qc);
  // Masters restored: weights must NOT be two-valued (they are the
  // accumulated full-precision shadow weights).
  const auto params = net->trainable_params();
  const Tensor& w = params[0]->value;
  std::set<float> magnitudes;
  for (std::int64_t i = 0; i < w.count(); ++i)
    magnitudes.insert(std::fabs(w[i]));
  EXPECT_GT(magnitudes.size(), 4u);
}

TEST(Qat, RejectsConflictingAfterStepHook) {
  auto& f = fixture();
  nn::ZooConfig zc;
  zc.channel_scale = 0.25;
  auto net = nn::make_lenet(zc);
  QuantizedNetwork qnet(*net, fixed_config(8, 8));
  QatConfig qc;
  qc.train = finetune_config();
  qc.train.after_step = [] {};
  EXPECT_THROW(qat_finetune(qnet, f.split.train, qc), CheckError);
}

}  // namespace
}  // namespace qnn::quant
