#include <gtest/gtest.h>

#include "quant/qconfig.h"
#include "util/check.h"

namespace qnn::quant {
namespace {

TEST(PrecisionConfig, PaperLabels) {
  EXPECT_EQ(float_config().label(), "Floating-Point (32,32)");
  EXPECT_EQ(fixed_config(16, 16).label(), "Fixed-Point (16,16)");
  EXPECT_EQ(pow2_config().label(), "Powers of Two (6,16)");
  EXPECT_EQ(binary_config().label(), "Binary Net (1,16)");
}

TEST(PrecisionConfig, Ids) {
  EXPECT_EQ(float_config().id(), "float_32_32");
  EXPECT_EQ(fixed_config(8, 8).id(), "fixed_8_8");
  EXPECT_EQ(pow2_config().id(), "pow2_6_16");
  EXPECT_EQ(binary_config().id(), "binary_1_16");
}

TEST(PrecisionConfig, PaperListHasSevenDesignPoints) {
  const auto list = paper_precisions();
  ASSERT_EQ(list.size(), 7u);
  EXPECT_TRUE(list[0].is_float());
  // Fixed-point widths in the paper's order: 32, 16, 8, 4.
  EXPECT_EQ(list[1].weight_bits, 32);
  EXPECT_EQ(list[2].weight_bits, 16);
  EXPECT_EQ(list[3].weight_bits, 8);
  EXPECT_EQ(list[4].weight_bits, 4);
  EXPECT_EQ(list[5].kind, PrecisionKind::kPow2);
  EXPECT_EQ(list[6].kind, PrecisionKind::kBinary);
  EXPECT_EQ(list[6].weight_bits, 1);
  EXPECT_EQ(list[6].input_bits, 16);
}

TEST(PrecisionConfig, LookupByIdOrLabel) {
  EXPECT_EQ(precision_by_name("fixed_8_8").label(), "Fixed-Point (8,8)");
  EXPECT_EQ(precision_by_name("Binary Net (1,16)").id(), "binary_1_16");
  EXPECT_THROW(precision_by_name("fixed_7_7"), CheckError);
}

TEST(PrecisionConfig, DefaultsAreRistrettoFaithful) {
  const PrecisionConfig c = fixed_config(8, 8);
  EXPECT_EQ(c.radix_policy, RadixPolicy::kPerLayer);
  EXPECT_EQ(c.calibration, CalibrationRule::kMse);
}

}  // namespace
}  // namespace qnn::quant
