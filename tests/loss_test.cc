#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "util/rng.h"

namespace qnn::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  Tensor logits(Shape{3, 5});
  Rng rng(1);
  logits.fill_uniform(rng, -4, 4);
  const Tensor p = softmax(logits);
  for (int s = 0; s < 3; ++s) {
    double sum = 0;
    for (int k = 0; k < 5; ++k) sum += p.at2(s, k);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, InvariantToLogitShift) {
  Tensor a(Shape{1, 3}, {1, 2, 3});
  Tensor b(Shape{1, 3}, {101, 102, 103});
  const Tensor pa = softmax(a), pb = softmax(b);
  for (int k = 0; k < 3; ++k) EXPECT_NEAR(pa[k], pb[k], 1e-6);
}

TEST(Softmax, StableForHugeLogits) {
  Tensor logits(Shape{1, 3}, {1e30f, -1e30f, 0.0f});
  const Tensor p = softmax(logits);
  EXPECT_NEAR(p[0], 1.0, 1e-6);
  EXPECT_NEAR(p[1], 0.0, 1e-6);
}

TEST(CrossEntropy, UniformLogitsGiveLogK) {
  Tensor logits(Shape{2, 10});
  logits.fill(0.0f);
  const LossResult r = softmax_cross_entropy(logits, {3, 7});
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-5);
}

TEST(CrossEntropy, PerfectPredictionLowLoss) {
  Tensor logits(Shape{1, 4}, {20, -20, -20, -20});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.loss, 1e-5);
  EXPECT_EQ(r.predictions[0], 0);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHotOverN) {
  Tensor logits(Shape{2, 3});
  Rng rng(2);
  logits.fill_uniform(rng, -2, 2);
  const Tensor p = softmax(logits);
  const LossResult r = softmax_cross_entropy(logits, {1, 2});
  for (int s = 0; s < 2; ++s)
    for (int k = 0; k < 3; ++k) {
      const double expect =
          (p.at2(s, k) - ((s == 0 && k == 1) || (s == 1 && k == 2) ? 1 : 0)) /
          2.0;
      EXPECT_NEAR(r.grad_logits.at2(s, k), expect, 1e-6);
    }
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Tensor logits(Shape{2, 4});
  Rng rng(3);
  logits.fill_uniform(rng, -1, 1);
  const std::vector<int> y{2, 0};
  const LossResult r = softmax_cross_entropy(logits, y);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.count(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    const double numeric = (softmax_cross_entropy(lp, y).loss -
                            softmax_cross_entropy(lm, y).loss) /
                           (2 * eps);
    EXPECT_NEAR(r.grad_logits[i], numeric, 1e-4);
  }
}

TEST(CrossEntropy, PredictionsAreArgmax) {
  Tensor logits(Shape{3, 3},
                {0.1f, 0.9f, 0.0f, 2.0f, -1.0f, 1.0f, -5.0f, -4.0f, -3.0f});
  const LossResult r = softmax_cross_entropy(logits, {0, 0, 0});
  EXPECT_EQ(r.predictions, (std::vector<int>{1, 0, 2}));
}

TEST(CrossEntropy, LabelOutOfRangeThrows) {
  Tensor logits(Shape{1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), CheckError);
  EXPECT_THROW(softmax_cross_entropy(logits, {-1}), CheckError);
}

TEST(CrossEntropy, BatchSizeMismatchThrows) {
  Tensor logits(Shape{2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), CheckError);
}

TEST(CrossEntropy, SaturatedWrongPredictionFiniteLoss) {
  // Low-precision forward passes can fully saturate the softmax; the
  // loss must stay finite (clamped), not become inf/NaN.
  Tensor logits(Shape{1, 2}, {1e20f, -1e20f});
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_GT(r.loss, 10.0);
}

}  // namespace
}  // namespace qnn::nn
