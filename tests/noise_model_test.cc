#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "quant/noise_model.h"

namespace qnn::quant {
namespace {

struct Fixture {
  data::Split split;
  std::unique_ptr<nn::Network> net;

  Fixture() {
    data::SyntheticConfig dc;
    dc.num_train = 300;
    dc.num_test = 120;
    dc.seed = 21;
    split = data::make_mnist_like(dc);
    nn::ZooConfig zc;
    zc.channel_scale = 0.25;
    net = nn::make_lenet(zc);
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 30;
    tc.sgd.learning_rate = 0.02;
    nn::train(*net, split.train, tc);
  }

  NoiseReport report_for(const PrecisionConfig& cfg) {
    QuantizedNetwork qnet(*net, cfg);
    qnet.calibrate(data::batch_images(split.train, 0, 64));
    return analyze_noise(*net, qnet, split.test, 64);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(NoiseModel, SiteCountMatchesNetwork) {
  const NoiseReport r = fixture().report_for(fixed_config(8, 8));
  EXPECT_EQ(r.measured.size(), fixture().net->num_layers() + 1);
  EXPECT_EQ(r.predicted_noise_power.size(), r.measured.size());
}

TEST(NoiseModel, MeasuredNoiseGrowsAsBitsShrink) {
  const double n16 =
      fixture().report_for(fixed_config(16, 16)).measured.back().noise_power;
  const double n8 =
      fixture().report_for(fixed_config(8, 8)).measured.back().noise_power;
  const double n4 =
      fixture().report_for(fixed_config(4, 4)).measured.back().noise_power;
  EXPECT_LT(n16, n8);
  EXPECT_LT(n8, n4);
}

TEST(NoiseModel, SqnrRanksPrecisionsCorrectly) {
  const double s16 =
      fixture().report_for(fixed_config(16, 16)).final_measured_sqnr_db();
  const double s8 =
      fixture().report_for(fixed_config(8, 8)).final_measured_sqnr_db();
  EXPECT_GT(s16, s8);
  EXPECT_GT(s16, 40.0);  // 16-bit should be high-fidelity
}

TEST(NoiseModel, PredictionTracksMeasurementWithinOrderOfMagnitude) {
  for (int bits : {8, 16}) {
    const NoiseReport r = fixture().report_for(fixed_config(bits, bits));
    const double measured = r.measured.back().noise_power;
    const double predicted = r.predicted_noise_power.back();
    ASSERT_GT(measured, 0.0);
    ASSERT_GT(predicted, 0.0);
    const double ratio = predicted / measured;
    EXPECT_GT(ratio, 0.05) << bits << " bits";
    EXPECT_LT(ratio, 50.0) << bits << " bits";
  }
}

TEST(NoiseModel, PredictedSqnrRanksLikeMeasured) {
  const NoiseReport r8 = fixture().report_for(fixed_config(8, 8));
  const NoiseReport r4 = fixture().report_for(fixed_config(4, 4));
  EXPECT_GT(r8.final_predicted_sqnr_db(), r4.final_predicted_sqnr_db());
}

TEST(NoiseModel, FlipRatesGrowAsBitsShrink) {
  const NoiseReport r16 = fixture().report_for(fixed_config(16, 16));
  const NoiseReport r4 = fixture().report_for(fixed_config(4, 4));
  EXPECT_LE(r16.measured_flip_rate, r4.measured_flip_rate);
  EXPECT_LE(r16.predicted_flip_rate, r4.predicted_flip_rate + 1e-9);
}

TEST(NoiseModel, FloatConfigIsNoiseless) {
  const NoiseReport r = fixture().report_for(float_config());
  EXPECT_DOUBLE_EQ(r.measured.back().noise_power, 0.0);
  EXPECT_DOUBLE_EQ(r.measured_flip_rate, 0.0);
}

}  // namespace
}  // namespace qnn::quant
