#include <gtest/gtest.h>

#include "data/dataset.h"
#include "nn/inner_product.h"
#include "nn/network.h"
#include "nn/trainer.h"

namespace qnn::nn {
namespace {

// Two linearly separable Gaussian blobs rendered as 1×2×2 "images".
data::Dataset blob_dataset(std::int64_t n, std::uint64_t seed) {
  data::Dataset d;
  d.name = "blobs";
  d.num_classes = 2;
  d.images = Tensor(Shape{n, 1, 2, 2});
  d.labels.resize(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = static_cast<int>(i % 2);
    d.labels[static_cast<std::size_t>(i)] = y;
    const double cx = y == 0 ? -1.0 : 1.0;
    for (int j = 0; j < 4; ++j)
      d.images[i * 4 + j] = static_cast<float>(cx + rng.normal(0, 0.3));
  }
  return d;
}

std::unique_ptr<Network> linear_model() {
  auto net = std::make_unique<Network>("probe");
  net->add<InnerProduct>(4, 2);
  Rng rng(5);
  net->init_weights(rng);
  return net;
}

TEST(Trainer, LearnsSeparableBlobs) {
  auto net = linear_model();
  const auto train_set = blob_dataset(200, 1);
  const auto test_set = blob_dataset(50, 2);
  TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 16;
  tc.sgd.learning_rate = 0.1;
  const TrainResult r = train(*net, train_set, tc);
  EXPECT_LT(r.final_loss(), 0.2);
  EXPECT_GT(evaluate(*net, test_set), 95.0);
}

TEST(Trainer, LossDecreasesAcrossEpochs) {
  auto net = linear_model();
  const auto train_set = blob_dataset(200, 3);
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 16;
  tc.sgd.learning_rate = 0.05;
  const TrainResult r = train(*net, train_set, tc);
  ASSERT_EQ(r.epochs.size(), 4u);
  EXPECT_LT(r.epochs.back().mean_loss, r.epochs.front().mean_loss);
}

TEST(Trainer, TracksTrainAccuracy) {
  auto net = linear_model();
  const auto train_set = blob_dataset(100, 4);
  TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 10;
  tc.sgd.learning_rate = 0.1;
  const TrainResult r = train(*net, train_set, tc);
  EXPECT_GT(r.epochs.back().train_accuracy, 90.0);
}

TEST(Trainer, AfterStepHookRunsPerBatch) {
  auto net = linear_model();
  const auto train_set = blob_dataset(64, 5);
  int calls = 0;
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  tc.after_step = [&calls] { ++calls; };
  train(*net, train_set, tc);
  EXPECT_EQ(calls, 2 * 4);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const auto train_set = blob_dataset(100, 6);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  auto a = linear_model();
  auto b = linear_model();
  const TrainResult ra = train(*a, train_set, tc);
  const TrainResult rb = train(*b, train_set, tc);
  EXPECT_DOUBLE_EQ(ra.final_loss(), rb.final_loss());
}

TEST(Trainer, EmptyDatasetThrows) {
  auto net = linear_model();
  data::Dataset empty;
  empty.images = Tensor(Shape{0, 1, 2, 2});
  empty.num_classes = 2;
  TrainConfig tc;
  EXPECT_THROW(train(*net, empty, tc), CheckError);
}

TEST(Evaluate, PartialFinalBatchHandled) {
  auto net = linear_model();
  const auto d = blob_dataset(37, 7);  // not a multiple of batch size
  const double acc = evaluate(*net, d, 16);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 100.0);
}

}  // namespace
}  // namespace qnn::nn
