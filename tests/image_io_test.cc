#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/image_io.h"
#include "util/check.h"

namespace qnn::data {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(ImageIo, WritesPgmForGrayscale) {
  Tensor images(Shape{2, 1, 2, 3});
  images.fill(0.5f);
  images.at(1, 0, 0, 0) = 1.0f;
  const std::string path = ::testing::TempDir() + "/img.pgm";
  write_image(images, 1, path);
  const std::string bytes = slurp(path);
  EXPECT_EQ(bytes.substr(0, 2), "P5");
  // Header "P5\n3 2\n255\n" + 6 payload bytes.
  EXPECT_EQ(bytes.size(), std::string("P5\n3 2\n255\n").size() + 6u);
  // First pixel saturated white.
  EXPECT_EQ(static_cast<unsigned char>(bytes[bytes.size() - 6]), 255);
  std::filesystem::remove(path);
}

TEST(ImageIo, WritesPpmForColor) {
  Tensor images(Shape{1, 3, 2, 2});
  images.fill(0.0f);
  const std::string path = ::testing::TempDir() + "/img.ppm";
  write_image(images, 0, path);
  const std::string bytes = slurp(path);
  EXPECT_EQ(bytes.substr(0, 2), "P6");
  EXPECT_EQ(bytes.size(), std::string("P6\n2 2\n255\n").size() + 12u);
  std::filesystem::remove(path);
}

TEST(ImageIo, ClampsOutOfRangeValues) {
  Tensor images(Shape{1, 1, 1, 2}, {-3.0f, 9.0f});
  const std::string path = ::testing::TempDir() + "/clamp.pgm";
  write_image(images, 0, path);
  const std::string bytes = slurp(path);
  EXPECT_EQ(static_cast<unsigned char>(bytes[bytes.size() - 2]), 0);
  EXPECT_EQ(static_cast<unsigned char>(bytes[bytes.size() - 1]), 255);
  std::filesystem::remove(path);
}

TEST(ImageIo, ContactSheetGeometry) {
  Tensor images(Shape{5, 1, 4, 4});
  images.fill(1.0f);
  const std::string path = ::testing::TempDir() + "/sheet.pgm";
  write_contact_sheet(images, 5, 3, path);
  const std::string bytes = slurp(path);
  // 3 columns × (4+2) px wide, 2 rows × (4+2) px tall.
  EXPECT_NE(bytes.find("18 12"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ImageIo, SampleIndexBoundsChecked) {
  Tensor images(Shape{2, 1, 2, 2});
  EXPECT_THROW(write_image(images, 2, "/tmp/x.pgm"), CheckError);
  EXPECT_THROW(write_image(images, -1, "/tmp/x.pgm"), CheckError);
}

TEST(ImageIo, RejectsUnsupportedChannelCount) {
  Tensor images(Shape{1, 2, 2, 2});
  EXPECT_THROW(write_image(images, 0, ::testing::TempDir() + "/bad.pgm"),
               CheckError);
}

}  // namespace
}  // namespace qnn::data
