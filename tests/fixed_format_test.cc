#include <gtest/gtest.h>

#include <cmath>

#include "fixed/fixed_format.h"
#include "util/check.h"
#include "util/rng.h"

namespace qnn {
namespace {

TEST(Rounding, Modes) {
  EXPECT_EQ(round_with_mode(2.5, Rounding::kNearest), 3.0);
  EXPECT_EQ(round_with_mode(-2.5, Rounding::kNearest), -3.0);
  EXPECT_EQ(round_with_mode(2.5, Rounding::kNearestEven), 2.0);
  EXPECT_EQ(round_with_mode(3.5, Rounding::kNearestEven), 4.0);
  EXPECT_EQ(round_with_mode(2.7, Rounding::kFloor), 2.0);
  EXPECT_EQ(round_with_mode(-2.1, Rounding::kFloor), -3.0);
}

TEST(FixedPointFormat, BasicProperties) {
  FixedPointFormat f(8, 4);
  EXPECT_EQ(f.total_bits(), 8);
  EXPECT_EQ(f.frac_bits(), 4);
  EXPECT_EQ(f.integer_bits(), 3);
  EXPECT_DOUBLE_EQ(f.step(), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 127.0 / 16.0);
  EXPECT_DOUBLE_EQ(f.min_value(), -128.0 / 16.0);
}

TEST(FixedPointFormat, QuantizeRoundsToGrid) {
  FixedPointFormat f(8, 4);
  EXPECT_DOUBLE_EQ(f.quantize(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.quantize(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.quantize(0.0624), 0.0625);  // nearest step
  EXPECT_DOUBLE_EQ(f.quantize(0.031), 0.0);      // below half step
  EXPECT_DOUBLE_EQ(f.quantize(0.032), 0.0625);   // above half step
  EXPECT_DOUBLE_EQ(f.quantize(-0.03125), -0.0625);  // half rounds away
}

TEST(FixedPointFormat, Saturation) {
  FixedPointFormat f(8, 4);
  EXPECT_DOUBLE_EQ(f.quantize(100.0), f.max_value());
  EXPECT_DOUBLE_EQ(f.quantize(-100.0), f.min_value());
}

TEST(FixedPointFormat, NanMapsToZero) {
  FixedPointFormat f(8, 4);
  EXPECT_DOUBLE_EQ(f.quantize(std::nan("")), 0.0);
}

TEST(FixedPointFormat, NegativeFracBitsCoarseGrid) {
  FixedPointFormat f(4, -2);  // step 4, range [-32, 28]
  EXPECT_DOUBLE_EQ(f.step(), 4.0);
  EXPECT_DOUBLE_EQ(f.quantize(5.0), 4.0);
  EXPECT_DOUBLE_EQ(f.quantize(6.0), 8.0);  // half away from zero
  EXPECT_DOUBLE_EQ(f.max_value(), 28.0);
}

TEST(FixedPointFormat, AllFractionalFormat) {
  FixedPointFormat f(8, 10);  // step ~0.001, range < 0.125
  EXPECT_LT(f.max_value(), 0.125);
  EXPECT_DOUBLE_EQ(f.quantize(1.0), f.max_value());
}

TEST(FixedPointFormat, RepresentableDetectsGridPoints) {
  FixedPointFormat f(8, 4);
  EXPECT_TRUE(f.representable(0.0625));
  EXPECT_TRUE(f.representable(-8.0));
  EXPECT_FALSE(f.representable(0.03));
  EXPECT_FALSE(f.representable(8.0));  // exceeds max 7.9375
  EXPECT_FALSE(f.representable(std::nan("")));
}

TEST(FixedPointFormat, QuantizeIsIdempotent) {
  FixedPointFormat f(6, 3);
  Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-10, 10);
    const double q = f.quantize(v);
    EXPECT_DOUBLE_EQ(f.quantize(q), q);
    EXPECT_TRUE(f.representable(q));
  }
}

TEST(FixedPointFormat, ForRangePicksCoveringFormat) {
  const auto f = FixedPointFormat::for_range(8, 5.0);
  // Needs 3 integer bits (2^3 = 8 >= 5): Q3.4
  EXPECT_EQ(f.integer_bits(), 3);
  EXPECT_GE(f.max_value(), 5.0);

  // Exactly-power-of-two max: covered up to the classic two's-complement
  // asymmetry (+1.0 saturates to 1.0 - step, as in Ristretto).
  const auto g = FixedPointFormat::for_range(8, 1.0);
  EXPECT_GE(g.max_value(), 1.0 - g.step());
  EXPECT_EQ(g.integer_bits(), 0);

  const auto tiny = FixedPointFormat::for_range(8, 0.1);
  EXPECT_GE(tiny.max_value(), 0.1);
  EXPECT_LT(tiny.step(), 0.01);
}

TEST(FixedPointFormat, ForRangeZeroMaxGivesFinestGrid) {
  const auto f = FixedPointFormat::for_range(8, 0.0);
  EXPECT_EQ(f.integer_bits(), 0);
}

TEST(FixedPointFormat, ToRawFromRawRoundTrip) {
  FixedPointFormat f(16, 8);
  Rng rng(33);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-100, 100);
    const std::int64_t raw = f.to_raw(v);
    EXPECT_GE(raw, f.raw_min());
    EXPECT_LE(raw, f.raw_max());
    EXPECT_DOUBLE_EQ(f.from_raw(raw), f.quantize(v));
  }
}

TEST(FixedPointFormat, FloorRounding) {
  FixedPointFormat f(8, 4, Rounding::kFloor);
  EXPECT_DOUBLE_EQ(f.quantize(0.99), 0.9375);
  EXPECT_DOUBLE_EQ(f.quantize(-0.01), -0.0625);
}

TEST(FixedPointFormat, InvalidBitsThrow) {
  EXPECT_THROW(FixedPointFormat(1, 0), CheckError);
  EXPECT_THROW(FixedPointFormat(33, 0), CheckError);
  EXPECT_NO_THROW(FixedPointFormat(32, 16));
}

TEST(FixedPointFormat, ToString) {
  EXPECT_EQ(FixedPointFormat(16, 11).to_string(), "Q4.11 (16b)");
}

// Property sweep: quantization error is bounded by step/2 inside the
// representable range, for every paper-relevant width.
class FixedErrorBound : public ::testing::TestWithParam<int> {};

TEST_P(FixedErrorBound, ErrorWithinHalfStep) {
  const int bits = GetParam();
  const FixedPointFormat f = FixedPointFormat::for_range(bits, 1.0);
  Rng rng(static_cast<std::uint64_t>(bits));
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(-1.0, 1.0);
    if (v > f.max_value() || v < f.min_value()) continue;
    EXPECT_LE(std::fabs(f.quantize(v) - v), f.step() / 2 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperWidths, FixedErrorBound,
                         ::testing::Values(4, 8, 16, 32));

// Monotonicity: quantization preserves (non-strict) order.
class FixedMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(FixedMonotonic, QuantizeIsMonotone) {
  const FixedPointFormat f(GetParam(), GetParam() / 2);
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    double a = rng.uniform(-40, 40), b = rng.uniform(-40, 40);
    if (a > b) std::swap(a, b);
    EXPECT_LE(f.quantize(a), f.quantize(b));
  }
}

INSTANTIATE_TEST_SUITE_P(PaperWidths, FixedMonotonic,
                         ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace qnn
