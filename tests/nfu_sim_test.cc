// Equivalence of the integer-domain NFU simulator with the fake-
// quantized float path — the evidence that quantization-aware training
// on float tensors is faithful to what the accelerator executes.
#include <gtest/gtest.h>

#include <cmath>

#include "hw/nfu_sim.h"
#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/inner_product.h"
#include "nn/pool.h"
#include "nn/zoo.h"
#include "util/check.h"

namespace qnn::hw {
namespace {

std::unique_ptr<nn::Network> tiny_cnn(std::uint64_t seed = 3) {
  auto net = std::make_unique<nn::Network>("tiny");
  nn::ConvSpec c1;
  c1.out_channels = 4;
  c1.kernel = 3;
  net->add<nn::Conv2d>(2, c1);                               // 8 -> 6
  net->add<nn::Pool2d>(nn::PoolSpec{nn::PoolMode::kMax, 2, 2, 0});
  net->add<nn::Relu>();
  nn::ConvSpec c2;
  c2.out_channels = 3;
  c2.kernel = 2;
  net->add<nn::Conv2d>(4, c2);                               // 3 -> 2
  net->add<nn::Pool2d>(nn::PoolSpec{nn::PoolMode::kAvg, 2, 2, 0});
  net->add<nn::InnerProduct>(3, 5);
  Rng rng(seed);
  net->init_weights(rng);
  return net;
}

Tensor tiny_input(std::int64_t n = 4, std::uint64_t seed = 7) {
  Tensor t(Shape{n, 2, 8, 8});
  Rng rng(seed);
  t.fill_uniform(rng, 0, 1);
  return t;
}

// Max |difference| between the two paths, in units of the final output
// format's grid step.
double max_diff_in_steps(nn::Network& net,
                         const quant::PrecisionConfig& cfg,
                         const Shape& input_shape, const Tensor& input) {
  quant::QuantizedNetwork qnet(net, cfg);
  qnet.calibrate(input);
  const Tensor float_path = qnet.forward(input);
  qnet.restore_masters();

  const NfuSimulator sim(net, qnet, input_shape);
  const Tensor int_path = sim.forward(input);

  const auto& fq = dynamic_cast<const quant::FixedQuantizer&>(
      qnet.data_quantizer(qnet.num_sites() - 1));
  const double step = fq.format()->step();
  double worst = 0;
  for (std::int64_t i = 0; i < float_path.count(); ++i)
    worst = std::max(worst,
                     std::fabs(static_cast<double>(float_path[i]) -
                               int_path[i]) /
                         step);
  return worst;
}

TEST(NfuSim, EncodeDecodeRoundTrip) {
  FixedPointFormat f(8, 4);
  Tensor t(Shape{4}, {0.5f, -1.25f, 100.0f, -0.031f});
  const RawTensor r = encode_tensor(t, f);
  const Tensor back = r.decode();
  EXPECT_FLOAT_EQ(back[0], 0.5f);
  EXPECT_FLOAT_EQ(back[1], -1.25f);
  EXPECT_FLOAT_EQ(back[2], static_cast<float>(f.max_value()));  // saturated
  EXPECT_FLOAT_EQ(back[3], 0.0f);  // below half step
}

class NfuEquivalence
    : public ::testing::TestWithParam<quant::PrecisionConfig> {};

TEST_P(NfuEquivalence, IntegerPathMatchesFloatPathWithinOneStep) {
  auto net = tiny_cnn();
  const Shape in_shape{1, 2, 8, 8};
  const double worst =
      max_diff_in_steps(*net, GetParam(), in_shape, tiny_input());
  // Exact up to the float32 accumulation rounding of the fake-quantized
  // path: at most ~1 grid step on these fan-ins.
  EXPECT_LE(worst, 1.0 + 1e-9) << GetParam().label();
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, NfuEquivalence,
    ::testing::Values(quant::fixed_config(16, 16), quant::fixed_config(8, 8),
                      quant::fixed_config(4, 4), quant::pow2_config(6, 16),
                      quant::binary_config(16)),
    [](const ::testing::TestParamInfo<quant::PrecisionConfig>& info) {
      return info.param.id();
    });

TEST(NfuSim, ExactForPureFixedDotProduct) {
  // Single inner-product layer with small fan-in: float32 accumulation
  // is exact, so the two paths must agree bit-for-bit.
  auto net = std::make_unique<nn::Network>("dot");
  net->add<nn::InnerProduct>(8, 4);
  Rng rng(5);
  net->init_weights(rng);
  Tensor input(Shape{3, 8});
  input.fill_uniform(rng, 0, 1);

  quant::QuantizedNetwork qnet(*net, quant::fixed_config(8, 8));
  qnet.calibrate(input);
  const Tensor float_path = qnet.forward(input);
  qnet.restore_masters();
  const NfuSimulator sim(*net, qnet, Shape{1, 8});
  const Tensor int_path = sim.forward(input);
  for (std::int64_t i = 0; i < float_path.count(); ++i)
    EXPECT_FLOAT_EQ(float_path[i], int_path[i]);
}

TEST(NfuSim, RejectsFloatConfig) {
  auto net = tiny_cnn();
  quant::QuantizedNetwork qnet(*net, quant::float_config());
  EXPECT_THROW(NfuSimulator(*net, qnet, Shape{1, 2, 8, 8}), CheckError);
}

TEST(NfuSim, RejectsUncalibratedNetwork) {
  auto net = tiny_cnn();
  quant::QuantizedNetwork qnet(*net, quant::fixed_config(8, 8));
  EXPECT_THROW(NfuSimulator(*net, qnet, Shape{1, 2, 8, 8}), CheckError);
}

TEST(NfuSim, MastersRestoredAfterConstruction) {
  auto net = tiny_cnn();
  const Tensor master = net->trainable_params()[0]->value;
  quant::QuantizedNetwork qnet(*net, quant::fixed_config(8, 8));
  qnet.calibrate(tiny_input());
  const NfuSimulator sim(*net, qnet, Shape{1, 2, 8, 8});
  const Tensor& after = net->trainable_params()[0]->value;
  for (std::int64_t i = 0; i < master.count(); ++i)
    EXPECT_EQ(after[i], master[i]);
}

TEST(NfuSim, StageCountMatchesLayers) {
  auto net = tiny_cnn();
  quant::QuantizedNetwork qnet(*net, quant::fixed_config(8, 8));
  qnet.calibrate(tiny_input());
  const NfuSimulator sim(*net, qnet, Shape{1, 2, 8, 8});
  EXPECT_EQ(sim.num_stages(), net->num_layers());
}

TEST(NfuSim, LenetScaleEquivalence) {
  // A realistic architecture (scaled LeNet) stays within one grid step
  // at 8 bits across a batch of real synthetic digits.
  nn::ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = nn::make_lenet(zc);
  Rng rng(11);
  Tensor input(Shape{2, 1, 28, 28});
  input.fill_uniform(rng, 0, 1);
  const double worst = max_diff_in_steps(
      *net, quant::fixed_config(8, 8), Shape{1, 1, 28, 28}, input);
  EXPECT_LE(worst, 1.0 + 1e-9);
}

}  // namespace
}  // namespace qnn::hw
