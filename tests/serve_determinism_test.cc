// Determinism regression for the serving layer (DESIGN.md §12): the
// same recorded arrival trace must produce byte-identical responses —
// batch composition, tier assignments, completion ticks, and output
// float bytes — at 1, 4, and 8 worker threads, and with span tracing
// enabled vs. disabled. This is the serving extension of the N-thread
// == 1-thread contract (§9): the event loop is serial virtual time, the
// forwards use ordered reductions, and the p99 feedback reads exact
// integer bucket counts, so nothing observable may depend on the pool
// size or on instrumentation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/inner_product.h"
#include "nn/network.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/tiers.h"
#include "serve/trace.h"
#include "util/thread_pool.h"

namespace qnn::serve {
namespace {

struct TraceGuard {
  ~TraceGuard() {
    obs::set_trace_enabled(false);
    obs::clear_trace();
  }
};

std::unique_ptr<nn::Network> det_net() {
  auto net = std::make_unique<nn::Network>("serve_det");
  net->add<nn::InnerProduct>(12, 24);
  net->add<nn::Relu>();
  net->add<nn::InnerProduct>(24, 10);
  Rng rng(21);
  net->init_weights(rng);
  return net;
}

// One full overload run: build pool + server from scratch each time so
// no state leaks between thread counts.
ServeResult run_once(const ArrivalTrace& trace) {
  auto net = det_net();
  std::vector<TierSpec> tiers = default_tier_lattice();
  derive_tier_costs(*net, Shape{1, 12}, &tiers);
  Tensor calib(Shape{16, 12});
  Rng rng(5);
  calib.fill_uniform(rng, 0, 1);
  ReplicaPool pool(*net, calib, tiers);

  ServerConfig cfg;
  cfg.queue_capacity = 12;
  cfg.batcher.max_batch = 4;
  cfg.batcher.batch_window = tiers[0].ticks_per_image;
  cfg.controller.high_depth_fraction = 0.5;
  cfg.controller.low_depth_fraction = 0.125;
  cfg.controller.p99_high_ticks = 8 * tiers[0].ticks_per_image;
  cfg.controller.p99_low_ticks = 4 * tiers[0].ticks_per_image;
  cfg.controller.dwell_ticks = 2 * tiers[0].ticks_per_image;
  Server server(pool, cfg);
  return server.run_trace(trace);
}

ArrivalTrace overload_trace() {
  // Rate is anchored to the float tier's derived cost so the trace is
  // ~2.5x overload regardless of how the hw model prices the tiny net.
  auto net = det_net();
  std::vector<TierSpec> tiers = default_tier_lattice();
  derive_tier_costs(*net, Shape{1, 12}, &tiers);
  OpenLoopSpec spec;
  spec.num_requests = 80;
  spec.mean_interarrival_ticks =
      static_cast<double>(tiers[0].ticks_per_image) / 2.5;
  spec.relative_deadline_ticks = 12 * tiers[0].ticks_per_image;
  spec.seed = 1234;
  return make_open_loop_trace(spec, {12});
}

void expect_identical(const ServeResult& a, const ServeResult& b,
                      const char* what) {
  EXPECT_EQ(a.digest(), b.digest()) << what;
  ASSERT_EQ(a.responses.size(), b.responses.size()) << what;
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    const Response& ra = a.responses[i];
    const Response& rb = b.responses[i];
    EXPECT_EQ(ra.id, rb.id) << what << " response " << i;
    EXPECT_EQ(ra.tier, rb.tier) << what << " response " << i;
    EXPECT_EQ(ra.dispatch, rb.dispatch) << what << " response " << i;
    EXPECT_EQ(ra.completion, rb.completion) << what << " response " << i;
    EXPECT_EQ(ra.predicted, rb.predicted) << what << " response " << i;
    ASSERT_EQ(ra.output.size(), rb.output.size()) << what;
    for (std::size_t j = 0; j < ra.output.size(); ++j) {
      // Bit identity, not tolerance.
      EXPECT_EQ(ra.output[j], rb.output[j])
          << what << " response " << i << " logit " << j;
    }
  }
  ASSERT_EQ(a.batches.size(), b.batches.size()) << what;
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].tier, b.batches[i].tier) << what;
    EXPECT_EQ(a.batches[i].dispatch, b.batches[i].dispatch) << what;
    EXPECT_EQ(a.batches[i].request_ids, b.batches[i].request_ids) << what;
  }
  EXPECT_EQ(a.stats.served, b.stats.served) << what;
  EXPECT_EQ(a.stats.rejected_full, b.stats.rejected_full) << what;
  EXPECT_EQ(a.stats.downshifts, b.stats.downshifts) << what;
  EXPECT_EQ(a.stats.end_tick, b.stats.end_tick) << what;
}

TEST(ServeDeterminism, TraceReplayIdenticalAt148Threads) {
  const ArrivalTrace trace = overload_trace();
  ScopedGlobalThreads one(1);
  const ServeResult r1 = run_once(trace);
  ServeResult r4, r8;
  {
    ScopedGlobalThreads four(4);
    r4 = run_once(trace);
  }
  {
    ScopedGlobalThreads eight(8);
    r8 = run_once(trace);
  }
  ASSERT_GT(r1.responses.size(), 0u);
  EXPECT_GT(r1.stats.downshifts, 0)
      << "trace must actually exercise the overload path";
  expect_identical(r1, r4, "1 vs 4 threads");
  expect_identical(r1, r8, "1 vs 8 threads");
}

TEST(ServeDeterminism, TracingOnEqualsTracingOff) {
  const ArrivalTrace trace = overload_trace();
  TraceGuard guard;
  obs::set_trace_enabled(false);
  const ServeResult off = run_once(trace);
  obs::set_trace_enabled(true);
  const ServeResult on = run_once(trace);
  expect_identical(off, on, "tracing off vs on");
}

// The fixed-point tiers serve through the native integer path
// (DESIGN.md §15) — the replay digests above therefore already pin the
// int path's bytes at 1/4/8 threads. Make the wiring explicit: fixed
// tiers freeze with the engine active, the float tier never does, and
// pool forwards are byte-stable across thread counts.
TEST(ServeDeterminism, FixedTiersServeNativeIntPath) {
  auto net = det_net();
  std::vector<TierSpec> tiers = default_tier_lattice();
  derive_tier_costs(*net, Shape{1, 12}, &tiers);
  Tensor calib(Shape{16, 12});
  Rng rng(5);
  calib.fill_uniform(rng, 0, 1);
  ReplicaPool pool(*net, calib, tiers);

  for (int t = 0; t < pool.num_tiers(); ++t) {
    const bool fixed =
        pool.tier(t).precision.kind == quant::PrecisionKind::kFixed;
    for (int r = 0; r < pool.replicas_per_tier(); ++r) {
      EXPECT_EQ(pool.replica(t, r).native_int_active(), fixed)
          << pool.tier(t).name << " replica " << r;
    }
  }

  Tensor x(Shape{8, 12});
  Rng rng2(9);
  x.fill_uniform(rng2, 0, 1);
  for (int t = 0; t < pool.num_tiers(); ++t) {
    ScopedGlobalThreads one(1);
    const Tensor base = pool.forward(t, 0, x);
    for (int threads : {4, 8}) {
      ScopedGlobalThreads n(threads);
      const Tensor got = pool.forward(t, 0, x);
      ASSERT_EQ(got.count(), base.count());
      for (std::int64_t i = 0; i < got.count(); ++i)
        EXPECT_EQ(got[i], base[i])
            << pool.tier(t).name << " " << threads << " threads elem " << i;
    }
  }
}

TEST(ServeDeterminism, SavedTraceReplaysIdentically) {
  const ArrivalTrace trace = overload_trace();
  const std::string path = ::testing::TempDir() + "/serve_det_trace.json";
  save_trace(path, trace);
  const ServeResult direct = run_once(trace);
  const ServeResult reloaded = run_once(load_trace(path));
  expect_identical(direct, reloaded, "direct vs save/load");
}

}  // namespace
}  // namespace qnn::serve
