// Crash-safety tests for the sweep checkpoint layer: exact JSON
// round-trips, corruption rejection, and the headline guarantee — a
// sweep killed mid-run resumes from its checkpoint and reproduces the
// uninterrupted run byte-for-byte.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "exp/checkpoint.h"
#include "util/check.h"
#include "util/fileio.h"
#include "util/thread_pool.h"

namespace qnn::exp {
namespace {

ExperimentSpec tiny_spec() {
  ExperimentSpec spec;
  spec.network = "lenet";
  spec.dataset = "mnist";
  spec.channel_scale = 0.2;
  spec.data.num_train = 200;
  spec.data.num_test = 100;
  spec.data.seed = 5;
  spec.float_train.epochs = 2;
  spec.float_train.batch_size = 20;
  spec.float_train.sgd.learning_rate = 0.02;
  spec.qat_train = spec.float_train;
  spec.qat_train.epochs = 1;
  spec.qat_train.sgd.learning_rate = 0.01;
  return spec;
}

std::vector<quant::PrecisionConfig> tiny_precisions() {
  return {quant::float_config(), quant::fixed_config(8, 8),
          quant::binary_config(16)};
}

PrecisionResult sample_point() {
  PrecisionResult pr;
  pr.precision = quant::fixed_config(8, 8);
  pr.accuracy = 100.0 / 3.0;  // not representable in decimal
  pr.converged = true;
  pr.energy_uj = 0.1;
  pr.energy_saving_percent = 12.3456789012345;
  pr.area_mm2 = 1.0 / 7.0;
  pr.power_mw = 450.25;
  pr.param_kb = 17.5;
  pr.cycles = 123456789012345;
  pr.guards.values = 1000;
  pr.guards.saturated = 3;
  pr.guards.nan = 1;
  pr.guards.inf = 2;
  pr.attempts = 2;
  pr.degraded = false;
  FaultPointResult fc;
  fc.bit_error_rate = 1e-4;
  fc.policy = protect::ProtectionPolicy::kRetryClamp;
  fc.trials = 8;
  fc.failed_trials = 1;
  fc.mean_accuracy = 2.0 / 3.0 * 100.0;
  fc.min_accuracy = 59.999999999999;
  fc.total_flips = 4242;
  fc.protection.values = 987654;
  fc.protection.out_of_envelope = 321;
  fc.protection.clamped = 100;
  fc.protection.layer_retries = 17;
  fc.protection.degraded_forwards = 2;
  fc.protection.abft.blocks_checked = 55555;
  fc.protection.abft.mismatches = 3;
  fc.protection.abft.reexecutions = 4;
  fc.protection.abft.unrecovered = 1;
  pr.fault_campaigns.push_back(fc);
  return pr;
}

void expect_point_eq(const PrecisionResult& a, const PrecisionResult& b) {
  EXPECT_EQ(a.precision.id(), b.precision.id());
  EXPECT_EQ(a.precision.radix_policy, b.precision.radix_policy);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_DOUBLE_EQ(a.energy_uj, b.energy_uj);
  EXPECT_DOUBLE_EQ(a.energy_saving_percent, b.energy_saving_percent);
  EXPECT_DOUBLE_EQ(a.area_mm2, b.area_mm2);
  EXPECT_DOUBLE_EQ(a.power_mw, b.power_mw);
  EXPECT_DOUBLE_EQ(a.param_kb, b.param_kb);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.guards.values, b.guards.values);
  EXPECT_EQ(a.guards.saturated, b.guards.saturated);
  EXPECT_EQ(a.guards.nan, b.guards.nan);
  EXPECT_EQ(a.guards.inf, b.guards.inf);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.degraded, b.degraded);
  ASSERT_EQ(a.fault_campaigns.size(), b.fault_campaigns.size());
  for (std::size_t i = 0; i < a.fault_campaigns.size(); ++i) {
    const auto& fa = a.fault_campaigns[i];
    const auto& fb = b.fault_campaigns[i];
    EXPECT_DOUBLE_EQ(fa.bit_error_rate, fb.bit_error_rate);
    EXPECT_EQ(fa.trials, fb.trials);
    EXPECT_EQ(fa.failed_trials, fb.failed_trials);
    EXPECT_DOUBLE_EQ(fa.mean_accuracy, fb.mean_accuracy);
    EXPECT_DOUBLE_EQ(fa.min_accuracy, fb.min_accuracy);
    EXPECT_EQ(fa.total_flips, fb.total_flips);
    EXPECT_EQ(fa.policy, fb.policy);
    EXPECT_EQ(fa.protection, fb.protection);
  }
}

TEST(Checkpoint, PointJsonRoundTripIsExact) {
  const PrecisionResult pr = sample_point();
  // Through text and back: doubles must survive bit-for-bit.
  const std::string text = precision_result_to_json(pr).dump();
  const json::Value v = json::parse(text, "<test>");
  const PrecisionResult back =
      precision_result_from_json(v, pr.precision);
  expect_point_eq(pr, back);
}

TEST(Checkpoint, FromJsonRejectsForeignPrecisionId) {
  const PrecisionResult pr = sample_point();
  const json::Value v = precision_result_to_json(pr);
  EXPECT_THROW(precision_result_from_json(v, quant::fixed_config(4, 4)),
               CheckError);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ck_roundtrip.json";
  SweepCheckpoint ck;
  ck.fingerprint = 0xdeadbeef;
  ck.network = "lenet";
  ck.dataset = "mnist";
  ck.float_trained = true;
  ck.float_accuracy = 98.7654321;
  ck.float_energy_uj = 0.123456;
  ck.points.push_back(sample_point());

  save_sweep_checkpoint(path, ck);
  SweepCheckpoint back;
  ASSERT_TRUE(load_sweep_checkpoint(path, 0xdeadbeef,
                                    {quant::fixed_config(8, 8)}, &back));
  EXPECT_EQ(back.fingerprint, ck.fingerprint);
  EXPECT_EQ(back.network, "lenet");
  EXPECT_TRUE(back.float_trained);
  EXPECT_DOUBLE_EQ(back.float_accuracy, ck.float_accuracy);
  EXPECT_DOUBLE_EQ(back.float_energy_uj, ck.float_energy_uj);
  ASSERT_EQ(back.points.size(), 1u);
  expect_point_eq(ck.points[0], back.points[0]);
  // No temp file left behind by the atomic write.
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(Checkpoint, LoadRejectsCorruption) {
  const std::string path = ::testing::TempDir() + "/ck_corrupt.json";
  SweepCheckpoint ck;
  ck.fingerprint = 1;
  ck.network = "lenet";
  save_sweep_checkpoint(path, ck);
  const std::vector<quant::PrecisionConfig> precisions;

  SweepCheckpoint out;
  // Intact file loads.
  ASSERT_TRUE(load_sweep_checkpoint(path, 1, precisions, &out));
  // Wrong fingerprint: rejected.
  EXPECT_FALSE(load_sweep_checkpoint(path, 2, precisions, &out));
  // Missing file: rejected.
  EXPECT_FALSE(load_sweep_checkpoint(path + ".nope", 1, precisions, &out));

  // Flip one byte inside the JSON: the CRC trailer must catch it.
  std::string bytes = read_file(path);
  const auto brace = bytes.find("lenet");
  ASSERT_NE(brace, std::string::npos);
  bytes[brace] = 'X';
  write_file_atomic(path, bytes);
  EXPECT_FALSE(load_sweep_checkpoint(path, 1, precisions, &out));

  // Truncation (CRC line gone): rejected.
  write_file_atomic(path, read_file(path).substr(0, 10));
  EXPECT_FALSE(load_sweep_checkpoint(path, 1, precisions, &out));
  std::filesystem::remove(path);
}

// --- transient-failure retry (injected flaky writer) -------------------

// Restores the real syscalls no matter how a test exits.
struct HooksGuard {
  ~HooksGuard() { set_fileio_hooks_for_test({}); }
};

FileIoHooks counting_backoff(std::vector<int>* sleeps) {
  FileIoHooks hooks;
  hooks.backoff = [sleeps](int ms) { sleeps->push_back(ms); };
  return hooks;
}

TEST(Checkpoint, AtomicWriteRetriesEintrStormsInvisibly) {
  HooksGuard guard;
  std::vector<int> sleeps;
  FileIoHooks hooks = counting_backoff(&sleeps);
  // Every syscall fails with EINTR twice before succeeding; EINTR is
  // retried inline and must never consume a backoff attempt.
  int write_fails = 2, fsync_fails = 2, rename_fails = 2;
  hooks.write = [&](int fd, const void* buf, std::size_t n) -> ssize_t {
    if (write_fails-- > 0) { errno = EINTR; return -1; }
    return ::write(fd, buf, n);
  };
  hooks.fsync = [&](int fd) -> int {
    if (fsync_fails-- > 0) { errno = EINTR; return -1; }
    return ::fsync(fd);
  };
  hooks.rename = [&](const char* from, const char* to) -> int {
    if (rename_fails-- > 0) { errno = EINTR; return -1; }
    return ::rename(from, to);
  };
  set_fileio_hooks_for_test(hooks);

  const std::string path = ::testing::TempDir() + "/ck_eintr.json";
  SweepCheckpoint ck;
  ck.fingerprint = 11;
  ck.network = "lenet";
  save_sweep_checkpoint(path, ck);
  SweepCheckpoint out;
  EXPECT_TRUE(load_sweep_checkpoint(path, 11, {}, &out));
  EXPECT_TRUE(sleeps.empty()) << "EINTR must not trigger attempt backoff";
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(Checkpoint, AtomicWriteHandlesShortWrites) {
  HooksGuard guard;
  FileIoHooks hooks;
  // Dribble 7 bytes per call: the writer must loop until done.
  hooks.write = [](int fd, const void* buf, std::size_t n) -> ssize_t {
    return ::write(fd, buf, std::min<std::size_t>(n, 7));
  };
  set_fileio_hooks_for_test(hooks);

  const std::string path = ::testing::TempDir() + "/ck_short.json";
  SweepCheckpoint ck;
  ck.fingerprint = 12;
  ck.network = "lenet";
  ck.dataset = "mnist";
  ck.points.push_back(sample_point());
  save_sweep_checkpoint(path, ck);
  SweepCheckpoint out;
  ASSERT_TRUE(load_sweep_checkpoint(path, 12, {quant::fixed_config(8, 8)},
                                    &out));
  expect_point_eq(ck.points[0], out.points[0]);
  std::filesystem::remove(path);
}

TEST(Checkpoint, AtomicWriteRetriesTransientFailuresWithBackoff) {
  HooksGuard guard;
  std::vector<int> sleeps;
  FileIoHooks hooks = counting_backoff(&sleeps);
  // First two whole attempts die with ENOSPC at fsync; the third works.
  int attempts = 0;
  hooks.fsync = [&](int fd) -> int {
    if (++attempts <= 2) { errno = ENOSPC; return -1; }
    return ::fsync(fd);
  };
  set_fileio_hooks_for_test(hooks);

  const std::string path = ::testing::TempDir() + "/ck_flaky.json";
  SweepCheckpoint ck;
  ck.fingerprint = 13;
  save_sweep_checkpoint(path, ck);
  SweepCheckpoint out;
  EXPECT_TRUE(load_sweep_checkpoint(path, 13, {}, &out));
  // Exponential backoff between whole-sequence attempts: 1ms then 2ms.
  EXPECT_EQ(sleeps, (std::vector<int>{1, 2}));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(Checkpoint, AtomicWriteGivesUpAfterBoundedAttempts) {
  HooksGuard guard;
  std::vector<int> sleeps;
  FileIoHooks hooks = counting_backoff(&sleeps);
  int calls = 0;
  hooks.rename = [&](const char*, const char*) -> int {
    ++calls;
    errno = EIO;
    return -1;  // permanent failure
  };
  set_fileio_hooks_for_test(hooks);

  const std::string path = ::testing::TempDir() + "/ck_giveup.json";
  SweepCheckpoint ck;
  ck.fingerprint = 14;
  EXPECT_THROW(save_sweep_checkpoint(path, ck), CheckError);
  EXPECT_EQ(calls, kAtomicWriteAttempts);
  EXPECT_EQ(sleeps.size(),
            static_cast<std::size_t>(kAtomicWriteAttempts - 1));
  // Failure leaves no destination and no temp litter.
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST(Checkpoint, FailedAttemptNeverTearsPreviousCheckpoint) {
  HooksGuard guard;
  const std::string path = ::testing::TempDir() + "/ck_keep.json";
  SweepCheckpoint ck;
  ck.fingerprint = 15;
  ck.network = "lenet";
  save_sweep_checkpoint(path, ck);  // good previous version

  std::vector<int> sleeps;
  FileIoHooks hooks = counting_backoff(&sleeps);
  hooks.write = [](int, const void*, std::size_t) -> ssize_t {
    errno = EIO;
    return -1;
  };
  set_fileio_hooks_for_test(hooks);
  ck.dataset = "mnist";
  EXPECT_THROW(save_sweep_checkpoint(path, ck), CheckError);
  set_fileio_hooks_for_test({});

  // The previous checkpoint is intact and still loads.
  SweepCheckpoint out;
  ASSERT_TRUE(load_sweep_checkpoint(path, 15, {}, &out));
  EXPECT_EQ(out.network, "lenet");
  EXPECT_EQ(out.dataset, "");
  std::filesystem::remove(path);
}

TEST(Checkpoint, LoadRejectsMorePointsThanPrecisions) {
  const std::string path = ::testing::TempDir() + "/ck_extra.json";
  SweepCheckpoint ck;
  ck.fingerprint = 7;
  ck.points.push_back(sample_point());
  save_sweep_checkpoint(path, ck);
  SweepCheckpoint out;
  // Empty precision list cannot absorb one completed point.
  EXPECT_FALSE(load_sweep_checkpoint(path, 7, {}, &out));
  std::filesystem::remove(path);
}

TEST(Checkpoint, FingerprintTracksEveryInput) {
  const auto spec = tiny_spec();
  const auto precisions = tiny_precisions();
  FaultCampaignSpec faults;
  const auto base = sweep_fingerprint(spec, precisions, 0.0, faults);
  EXPECT_EQ(sweep_fingerprint(spec, precisions, 0.0, faults), base);

  ExperimentSpec spec2 = spec;
  spec2.seed = 99;
  EXPECT_NE(sweep_fingerprint(spec2, precisions, 0.0, faults), base);

  EXPECT_NE(sweep_fingerprint(spec, {quant::float_config()}, 0.0, faults),
            base);
  EXPECT_NE(sweep_fingerprint(spec, precisions, 1.5, faults), base);

  FaultCampaignSpec faults2;
  faults2.trials = 4;
  faults2.bit_error_rates = {1e-4};
  EXPECT_NE(sweep_fingerprint(spec, precisions, 0.0, faults2), base);

  // Protection shape is part of the sweep identity: adding policies or
  // turning any protection knob must invalidate old checkpoints.
  FaultCampaignSpec faults3;
  faults3.policies = {protect::ProtectionPolicy::kOff,
                      protect::ProtectionPolicy::kRetryClamp};
  const auto with_policies =
      sweep_fingerprint(spec, precisions, 0.0, faults3);
  EXPECT_NE(with_policies, base);

  FaultCampaignSpec faults4 = faults3;
  faults4.protection.max_layer_retries = 5;
  EXPECT_NE(sweep_fingerprint(spec, precisions, 0.0, faults4),
            with_policies);
  FaultCampaignSpec faults5 = faults3;
  faults5.protection.envelope_margin = 0.25;
  EXPECT_NE(sweep_fingerprint(spec, precisions, 0.0, faults5),
            with_policies);
  FaultCampaignSpec faults6 = faults3;
  faults6.protection.abft = false;
  EXPECT_NE(sweep_fingerprint(spec, precisions, 0.0, faults6),
            with_policies);
  FaultCampaignSpec faults7 = faults3;
  faults7.protection.always_vote_data_bits = 6;
  EXPECT_NE(sweep_fingerprint(spec, precisions, 0.0, faults7),
            with_policies);
}

// The acceptance scenario: kill the sweep after point k, resume, and
// demand byte-identical results versus an uninterrupted run. Shared by
// the serial and threaded variants below — the ordered emitter must
// keep kill/resume semantics identical at any pool size.
void run_kill_and_resume_scenario(const std::string& tag) {
  const std::string dir = ::testing::TempDir();
  const std::string ck_a = dir + "/sweep_killed_" + tag + ".json";
  const std::string ck_b = dir + "/sweep_straight_" + tag + ".json";
  for (const auto& p :
       {ck_a, ck_b, ck_a + ".weights", ck_b + ".weights"})
    std::filesystem::remove(p);

  const auto spec = tiny_spec();
  const auto precisions = tiny_precisions();

  SweepOptions opts;
  opts.faults.trials = 2;
  opts.faults.bit_error_rates = {1e-3};

  // Run A, killed after point 1 (two of three points completed).
  struct Killed {};
  SweepOptions kill = opts;
  kill.checkpoint_path = ck_a;
  kill.after_point = [](std::size_t k) {
    if (k == 1) throw Killed{};
  };
  EXPECT_THROW(run_precision_sweep(spec, precisions, 0.0, kill), Killed);
  ASSERT_TRUE(file_exists(ck_a));

  // Run A resumed: must only compute the missing point.
  std::vector<std::size_t> resumed_points;
  SweepOptions resume = opts;
  resume.checkpoint_path = ck_a;
  resume.after_point = [&](std::size_t k) { resumed_points.push_back(k); };
  const SweepResult a = run_precision_sweep(spec, precisions, 0.0, resume);
  EXPECT_EQ(resumed_points, (std::vector<std::size_t>{2}));

  // Run B, uninterrupted, fresh checkpoint.
  SweepOptions straight = opts;
  straight.checkpoint_path = ck_b;
  const SweepResult b =
      run_precision_sweep(spec, precisions, 0.0, straight);

  ASSERT_EQ(a.points.size(), precisions.size());
  ASSERT_EQ(b.points.size(), precisions.size());
  EXPECT_DOUBLE_EQ(a.float_energy_uj, b.float_energy_uj);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    expect_point_eq(a.points[i], b.points[i]);
  }

  // And the resumed checkpoint file itself round-trips all points.
  SweepCheckpoint final_ck;
  const auto fp = sweep_fingerprint(spec, precisions, 0.0, opts.faults);
  ASSERT_TRUE(load_sweep_checkpoint(ck_a, fp, precisions, &final_ck));
  EXPECT_EQ(final_ck.points.size(), precisions.size());

  for (const auto& p :
       {ck_a, ck_b, ck_a + ".weights", ck_b + ".weights"})
    std::filesystem::remove(p);
}

TEST(Checkpoint, KilledSweepResumesByteIdentical) {
  ThreadPool::set_global_threads(1);
  run_kill_and_resume_scenario("serial");
  ThreadPool::set_global_threads(ThreadPool::env_threads());
}

TEST(Checkpoint, KilledThreadedSweepResumesByteIdentical) {
  // With a 4-thread pool, points compute concurrently but emit through
  // the ordered single writer: after_point(1) throwing must still leave
  // exactly points {0, 1} in the checkpoint, and the resume must only
  // compute point 2.
  ThreadPool::set_global_threads(4);
  run_kill_and_resume_scenario("threaded");
  ThreadPool::set_global_threads(ThreadPool::env_threads());
}

}  // namespace
}  // namespace qnn::exp
