#include <gtest/gtest.h>

#include "nn/inner_product.h"
#include "nn/metrics.h"

namespace qnn::nn {
namespace {

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 0);
  EXPECT_EQ(cm.total(), 5);
  EXPECT_EQ(cm.count(0, 0), 2);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_EQ(cm.count(2, 0), 1);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 100.0 * 3 / 5);
}

TEST(ConfusionMatrix, PerClassAndBalanced) {
  ConfusionMatrix cm(2);
  // Class 0: 9 right, 1 wrong. Class 1: 1 right, 9 wrong.
  for (int i = 0; i < 9; ++i) cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  for (int i = 0; i < 9; ++i) cm.add(1, 0);
  EXPECT_DOUBLE_EQ(cm.per_class_accuracy(0), 90.0);
  EXPECT_DOUBLE_EQ(cm.per_class_accuracy(1), 10.0);
  EXPECT_DOUBLE_EQ(cm.balanced_accuracy(), 50.0);
  // Overall accuracy matches (10/20).
  EXPECT_DOUBLE_EQ(cm.accuracy(), 50.0);
}

TEST(ConfusionMatrix, AbsentClassCountsAsPerfect) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.per_class_accuracy(2), 100.0);
}

TEST(ConfusionMatrix, BoundsChecked) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), CheckError);
  EXPECT_THROW(cm.add(0, -1), CheckError);
  EXPECT_THROW(cm.count(5, 0), CheckError);
}

TEST(ConfusionMatrix, ToStringContainsCells) {
  ConfusionMatrix cm(2);
  cm.add(1, 0);
  const std::string s = cm.to_string();
  EXPECT_NE(s.find("actual"), std::string::npos);
}

// A fixed "model" whose logits are a deterministic function of the
// first pixel lets us verify top-k behaviour precisely.
class StubModel final : public Model {
 public:
  Tensor forward(const Tensor& input) override {
    const std::int64_t n = input.shape()[0];
    Tensor logits(Shape{n, 3});
    for (std::int64_t s = 0; s < n; ++s) {
      // Class scores: [x, 0.5, 1-x] — x>0.75 predicts 0; x<0.25
      // predicts 2; otherwise 1 wins only if 0.5 beats both.
      const float x = input[s * input.shape().count_from(1)];
      logits.at2(s, 0) = x;
      logits.at2(s, 1) = 0.5f;
      logits.at2(s, 2) = 1.0f - x;
    }
    return logits;
  }
  void backward(const Tensor&) override {}
  std::vector<Param*> trainable_params() override { return {}; }
  std::string name() const override { return "stub"; }
};

data::Dataset stub_dataset() {
  data::Dataset d;
  d.num_classes = 3;
  d.images = Tensor(Shape{4, 1, 1, 1}, {0.9f, 0.1f, 0.9f, 0.6f});
  d.labels = {0, 2, 1, 0};
  return d;
}

TEST(EvaluateMetrics, Top1AndTopK) {
  StubModel model;
  const auto d = stub_dataset();
  const EvalMetrics m = evaluate_metrics(model, d, /*k=*/2);
  // Sample 0: logits (0.9,0.5,0.1) -> pred 0 == label ✓
  // Sample 1: (0.1,0.5,0.9) -> pred 2 == label ✓
  // Sample 2: (0.9,0.5,0.1) -> pred 0 != 1, but top-2 {0,1} contains 1 ✓
  // Sample 3: (0.6,0.5,0.4) -> pred 0 == 0 ✓
  EXPECT_DOUBLE_EQ(m.top1, 75.0);
  EXPECT_DOUBLE_EQ(m.topk, 100.0);
  EXPECT_EQ(m.confusion.count(1, 0), 1);
  EXPECT_GT(m.mean_loss, 0.0);
}

TEST(EvaluateMetrics, InvalidKThrows) {
  StubModel model;
  const auto d = stub_dataset();
  EXPECT_THROW(evaluate_metrics(model, d, 0), CheckError);
  EXPECT_THROW(evaluate_metrics(model, d, 4), CheckError);
}

}  // namespace
}  // namespace qnn::nn
