// Parameterized invariants of the quantized-network machinery across
// every paper precision × radix policy.
#include <gtest/gtest.h>

#include <tuple>

#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/inner_product.h"
#include "nn/loss.h"
#include "nn/pool.h"
#include "quant/qnetwork.h"

namespace qnn::quant {
namespace {

std::unique_ptr<nn::Network> probe_net() {
  auto net = std::make_unique<nn::Network>("probe");
  nn::ConvSpec c;
  c.out_channels = 3;
  c.kernel = 3;
  net->add<nn::Conv2d>(1, c);
  net->add<nn::Pool2d>(nn::PoolSpec{nn::PoolMode::kMax, 2, 2, 0});
  net->add<nn::Relu>();
  net->add<nn::InnerProduct>(3 * 3 * 3, 4);
  Rng rng(8);
  net->init_weights(rng);
  return net;
}

Tensor probe_batch(std::uint64_t seed = 2) {
  Tensor t(Shape{6, 1, 8, 8});
  Rng rng(seed);
  t.fill_uniform(rng, 0, 1);
  return t;
}

using Param = std::tuple<PrecisionConfig, RadixPolicy>;

class QNetSweep : public ::testing::TestWithParam<Param> {
 protected:
  PrecisionConfig config() const {
    PrecisionConfig c = std::get<0>(GetParam());
    c.radix_policy = std::get<1>(GetParam());
    return c;
  }
};

TEST_P(QNetSweep, ForwardDeterministic) {
  auto net = probe_net();
  QuantizedNetwork qnet(*net, config());
  qnet.calibrate(probe_batch());
  const Tensor a = qnet.forward(probe_batch());
  const Tensor b = qnet.forward(probe_batch());
  for (std::int64_t i = 0; i < a.count(); ++i) ASSERT_EQ(a[i], b[i]);
  qnet.restore_masters();
}

TEST_P(QNetSweep, BackwardProducesGradientsAndRestores) {
  auto net = probe_net();
  const Tensor master = net->trainable_params()[0]->value;
  QuantizedNetwork qnet(*net, config());
  qnet.calibrate(probe_batch());
  auto params = qnet.trainable_params();
  for (auto* p : params) p->zero_grad();
  const Tensor logits = qnet.forward(probe_batch());
  const auto lr =
      nn::softmax_cross_entropy(logits, {0, 1, 2, 3, 0, 1});
  qnet.backward(lr.grad_logits);
  double norm = 0;
  for (auto* p : params)
    for (std::int64_t i = 0; i < p->grad.count(); ++i)
      norm += std::abs(p->grad[i]);
  EXPECT_GT(norm, 0.0) << config().label();
  // Masters restored after backward.
  for (std::int64_t i = 0; i < master.count(); ++i)
    ASSERT_EQ(net->trainable_params()[0]->value[i], master[i]);
}

TEST_P(QNetSweep, ClipMastersIsIdempotent) {
  auto net = probe_net();
  QuantizedNetwork qnet(*net, config());
  qnet.calibrate(probe_batch());
  qnet.clip_masters();
  std::vector<Tensor> once;
  for (auto* p : qnet.trainable_params()) once.push_back(p->value);
  qnet.clip_masters();
  auto params = qnet.trainable_params();
  for (std::size_t i = 0; i < params.size(); ++i)
    for (std::int64_t j = 0; j < params[i]->count(); ++j)
      ASSERT_EQ(params[i]->value[j], once[i][j]);
}

TEST_P(QNetSweep, QuantizedOutputsBounded) {
  auto net = probe_net();
  QuantizedNetwork qnet(*net, config());
  qnet.calibrate(probe_batch());
  const Tensor out = qnet.forward(probe_batch(9));
  qnet.restore_masters();
  if (config().is_float()) return;
  const auto* fq = dynamic_cast<const FixedQuantizer*>(
      &qnet.data_quantizer(qnet.num_sites() - 1));
  ASSERT_NE(fq, nullptr);
  for (std::int64_t i = 0; i < out.count(); ++i) {
    EXPECT_LE(out[i], fq->format()->max_value() + 1e-9);
    EXPECT_GE(out[i], fq->format()->min_value() - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, QNetSweep,
    ::testing::Combine(::testing::ValuesIn(paper_precisions()),
                       ::testing::Values(RadixPolicy::kPerLayer,
                                         RadixPolicy::kGlobal)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::get<0>(info.param).id() +
             (std::get<1>(info.param) == RadixPolicy::kGlobal
                  ? "_global"
                  : "_perlayer");
    });

}  // namespace
}  // namespace qnn::quant
