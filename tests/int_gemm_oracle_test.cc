// The native integer inference path (quant/int_inference) checked
// word-for-word against the NFU bit-level oracle (hw/nfu_sim): frozen
// fixed-point forwards must produce EXACTLY the raw words the
// accelerator simulator computes, at every precision tier, radix
// extreme, and thread count. Also covers the int GEMM drivers against a
// naive int64 reference and the QNN_INT_INFER gate.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "hw/nfu_sim.h"
#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/inner_product.h"
#include "nn/pool.h"
#include "nn/zoo.h"
#include "quant/int_inference.h"
#include "quant/qnetwork.h"
#include "tensor/int_gemm.h"
#include "tensor/microkernel.h"
#include "util/thread_pool.h"

namespace qnn::quant {
namespace {

struct ThreadGuard {
  ~ThreadGuard() {
    ThreadPool::set_global_threads(ThreadPool::env_threads());
  }
};

class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* v = std::getenv(name);
    if (v != nullptr) saved_ = v;
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  void set(const std::string& value) { ::setenv(name_, value.c_str(), 1); }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

// ---------------------------------------------------------------------
// int_gemm_bt vs a naive int64 reference.

template <typename WordT>
void int_gemm_vs_naive(std::int64_t m, std::int64_t n, std::int64_t k,
                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(
      std::numeric_limits<WordT>::min(), std::numeric_limits<WordT>::max());
  std::vector<WordT> a(static_cast<std::size_t>(m * k));
  std::vector<WordT> b(static_cast<std::size_t>(n * k));
  for (WordT& v : a) v = static_cast<WordT>(dist(rng));
  for (WordT& v : b) v = static_cast<WordT>(dist(rng));

  std::vector<std::int64_t> want(static_cast<std::size_t>(m * n), 0);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<std::int64_t>(a[static_cast<std::size_t>(
                   i * k + p)]) *
               b[static_cast<std::size_t>(j * k + p)];
      want[static_cast<std::size_t>(i * n + j)] = acc;
    }

  std::vector<std::int64_t> got(static_cast<std::size_t>(m * n));
  int_gemm_bt(m, n, k, a.data(), b.data(), got.data());
  ASSERT_EQ(got, want) << "m=" << m << " n=" << n << " k=" << k;
}

TEST(IntGemm, MatchesNaiveReferenceInt8) {
  for (auto [m, n, k] : {std::tuple<std::int64_t, std::int64_t, std::int64_t>
                             {1, 1, 1},
                         {3, 5, 7}, {17, 9, 33}, {64, 10, 300}}) {
    int_gemm_vs_naive<std::int8_t>(m, n, k, 1000 + m + n + k);
  }
}

TEST(IntGemm, MatchesNaiveReferenceInt16) {
  for (auto [m, n, k] : {std::tuple<std::int64_t, std::int64_t, std::int64_t>
                             {1, 1, 1},
                         {3, 5, 7}, {17, 9, 33}, {64, 10, 300}}) {
    int_gemm_vs_naive<std::int16_t>(m, n, k, 2000 + m + n + k);
  }
}

TEST(IntGemm, ThreadCountNeverChangesWords) {
  ThreadGuard guard;
  const std::int64_t m = 130, n = 9, k = 257;
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int> dist(-128, 127);
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::int8_t> b(static_cast<std::size_t>(n * k));
  for (auto& v : a) v = static_cast<std::int8_t>(dist(rng));
  for (auto& v : b) v = static_cast<std::int8_t>(dist(rng));
  ThreadPool::set_global_threads(1);
  std::vector<std::int64_t> base(static_cast<std::size_t>(m * n));
  int_gemm_bt(m, n, k, a.data(), b.data(), base.data());
  for (int threads : {2, 4, 8}) {
    ThreadPool::set_global_threads(threads);
    std::vector<std::int64_t> got(static_cast<std::size_t>(m * n));
    int_gemm_bt(m, n, k, a.data(), b.data(), got.data());
    EXPECT_EQ(got, base) << threads << " threads";
  }
}

// ---------------------------------------------------------------------
// Frozen-network integer forwards vs the NfuSimulator oracle.

std::unique_ptr<nn::Network> lenet_scale_cnn(std::uint64_t seed = 3) {
  // LeNet-shaped: conv -> pool -> relu -> conv -> pool -> ip -> relu
  // -> ip, exercising every native stage kind plus padding.
  auto net = std::make_unique<nn::Network>("lenet_scale");
  nn::ConvSpec c1;
  c1.out_channels = 6;
  c1.kernel = 5;
  c1.pad = 2;
  net->add<nn::Conv2d>(1, c1);  // 12x12 -> 12x12 (padded)
  net->add<nn::Pool2d>(nn::PoolSpec{nn::PoolMode::kMax, 2, 2, 0});
  net->add<nn::Relu>();
  nn::ConvSpec c2;
  c2.out_channels = 8;
  c2.kernel = 3;
  net->add<nn::Conv2d>(6, c2);  // 6x6 -> 4x4
  net->add<nn::Pool2d>(nn::PoolSpec{nn::PoolMode::kAvg, 2, 2, 0});
  net->add<nn::InnerProduct>(8 * 2 * 2, 24);
  net->add<nn::Relu>();
  net->add<nn::InnerProduct>(24, 10);
  Rng rng(seed);
  net->init_weights(rng);
  return net;
}

Tensor cnn_input(std::int64_t n = 3, std::uint64_t seed = 7) {
  Tensor t(Shape{n, 1, 12, 12});
  Rng rng(seed);
  t.fill_uniform(rng, 0, 1);
  return t;
}

// Compares the frozen network's native integer forward against the NFU
// oracle word for word. Both paths decode to the final site's grid, and
// decode is injective at these widths, so float equality IS word
// equality; the raw words are additionally checked via forward_raw.
void expect_matches_oracle(const PrecisionConfig& cfg, bool expect_int8) {
  auto net = lenet_scale_cnn();
  const Tensor calib = cnn_input(4, 5);
  QuantizedNetwork qnet(*net, cfg);
  qnet.calibrate(calib);

  // The oracle must be built BEFORE freezing: NfuSimulator's
  // constructor runs a forward and then restores masters, which would
  // silently thaw a frozen network.
  const hw::NfuSimulator sim(*net, qnet, Shape{1, 1, 12, 12});

  qnet.freeze_inference();
  ASSERT_TRUE(qnet.native_int_active()) << cfg.label();
  EXPECT_EQ(qnet.int_engine()->uses_int8(), expect_int8) << cfg.label();

  const Tensor x = cnn_input(3, 9);
  const Tensor oracle = sim.forward(x);
  const Tensor got = qnet.forward(x);
  ASSERT_EQ(got.count(), oracle.count());
  for (std::int64_t i = 0; i < got.count(); ++i)
    ASSERT_EQ(got[i], oracle[i]) << cfg.label() << " elem " << i;

  // Raw-word check: re-encoding the oracle's grid floats through the
  // final site format must reproduce the engine's words exactly.
  const IntRawResult raw = qnet.int_engine()->forward_raw(x);
  ASSERT_EQ(static_cast<std::int64_t>(raw.raw.size()), oracle.count());
  for (std::int64_t i = 0; i < oracle.count(); ++i)
    ASSERT_EQ(raw.raw[static_cast<std::size_t>(i)],
              raw.format.to_raw(static_cast<double>(oracle[i])))
        << cfg.label() << " elem " << i;
}

TEST(IntInferenceOracle, Fixed16MatchesNfuWordForWord) {
  expect_matches_oracle(fixed_config(16, 16), /*expect_int8=*/false);
}

TEST(IntInferenceOracle, Fixed8MatchesNfuWordForWord) {
  expect_matches_oracle(fixed_config(8, 8), /*expect_int8=*/true);
}

TEST(IntInferenceOracle, Fixed4MatchesNfuWordForWord) {
  expect_matches_oracle(fixed_config(4, 4), /*expect_int8=*/true);
}

TEST(IntInferenceOracle, MixedWidthPicksInt16) {
  // 8-bit data but 16-bit weights: must fall back to int16 words.
  expect_matches_oracle(fixed_config(16, 8), /*expect_int8=*/false);
}

// Sigmoid/tanh PLAN stages and dropout passthrough against the oracle.
TEST(IntInferenceOracle, PlanAndPassthroughStagesMatch) {
  auto net = std::make_unique<nn::Network>("plan");
  net->add<nn::InnerProduct>(6, 8);
  net->add<nn::Sigmoid>();
  net->add<nn::Dropout>(0.5);
  net->add<nn::InnerProduct>(8, 4);
  net->add<nn::Tanh>();
  Rng rng(11);
  net->init_weights(rng);
  net->set_training_mode(false);
  Tensor calib(Shape{4, 6});
  calib.fill_uniform(rng, -1, 1);

  QuantizedNetwork qnet(*net, fixed_config(8, 8));
  qnet.calibrate(calib);
  const hw::NfuSimulator sim(*net, qnet, Shape{1, 6});
  qnet.freeze_inference();
  ASSERT_TRUE(qnet.native_int_active());

  Tensor x(Shape{3, 6});
  Rng rng2(13);
  x.fill_uniform(rng2, -1, 1);
  const Tensor oracle = sim.forward(x);
  const Tensor got = qnet.forward(x);
  for (std::int64_t i = 0; i < got.count(); ++i)
    EXPECT_EQ(got[i], oracle[i]) << "elem " << i;
}

// Saturation / rounding edges: formats with extreme radix points force
// heavy clipping on one side (tiny representable range) and heavy
// rounding on the other (coarse grid). The engine must track the
// oracle's shift-round-saturate word for word through both.
TEST(IntInferenceOracle, ExtremeRadixPointsSaturateIdentically) {
  for (int frac_offset : {-3, 0, 3}) {
    auto net = std::make_unique<nn::Network>("edge");
    net->add<nn::InnerProduct>(5, 7);
    net->add<nn::Relu>();
    net->add<nn::InnerProduct>(7, 3);
    Rng rng(17);
    net->init_weights(rng);
    // Scale the inputs to push the range analysis toward an extreme
    // radix: large values -> few frac bits (rounding-heavy), small
    // values -> many frac bits (saturation-heavy on outliers).
    Tensor calib(Shape{4, 5});
    calib.fill_uniform(rng, 0, 1);
    const float scale = std::ldexp(1.0f, 4 * frac_offset);
    for (std::int64_t i = 0; i < calib.count(); ++i) calib[i] *= scale;

    QuantizedNetwork qnet(*net, fixed_config(8, 8));
    qnet.calibrate(calib);
    const hw::NfuSimulator sim(*net, qnet, Shape{1, 5});
    qnet.freeze_inference();
    ASSERT_TRUE(qnet.native_int_active());

    // Out-of-range inputs exercise input-encode saturation too.
    Tensor x(Shape{3, 5});
    Rng rng2(19);
    x.fill_uniform(rng2, -2, 2);
    for (std::int64_t i = 0; i < x.count(); ++i) x[i] *= scale;
    const Tensor oracle = sim.forward(x);
    const Tensor got = qnet.forward(x);
    for (std::int64_t i = 0; i < got.count(); ++i)
      EXPECT_EQ(got[i], oracle[i])
          << "frac_offset=" << frac_offset << " elem " << i;
  }
}

// The engine's words are identical at every SIMD level and thread
// count (integer accumulation is exact, so this is structural).
TEST(IntInferenceOracle, WordsStableAcrossSimdAndThreads) {
  ThreadGuard guard;
  auto net = lenet_scale_cnn();
  const Tensor calib = cnn_input(4, 5);
  QuantizedNetwork qnet(*net, fixed_config(8, 8));
  qnet.calibrate(calib);
  qnet.freeze_inference();
  ASSERT_TRUE(qnet.native_int_active());
  const Tensor x = cnn_input(3, 9);

  ThreadPool::set_global_threads(1);
  std::optional<IntRawResult> base;
  {
    ScopedSimdLevel force(SimdLevel::kScalar);
    base = qnet.int_engine()->forward_raw(x);
  }
  for (int threads : {1, 4, 8}) {
    ThreadPool::set_global_threads(threads);
    for (SimdLevel level : {SimdLevel::kScalar, simd_support()}) {
      ScopedSimdLevel force(level);
      const IntRawResult got = qnet.int_engine()->forward_raw(x);
      EXPECT_EQ(got.raw, base->raw)
          << threads << " threads, " << simd_level_name(level);
    }
  }
}

// ---------------------------------------------------------------------
// Eligibility + the QNN_INT_INFER gate.

TEST(IntInference, EnvParsingIsHardened) {
  bool invalid = false;
  EXPECT_EQ(parse_int_infer_env("on", &invalid), true);
  EXPECT_FALSE(invalid);
  EXPECT_EQ(parse_int_infer_env("1", &invalid), true);
  EXPECT_EQ(parse_int_infer_env("off", &invalid), false);
  EXPECT_EQ(parse_int_infer_env("0", &invalid), false);
  EXPECT_FALSE(invalid);
  EXPECT_EQ(parse_int_infer_env("auto", &invalid), std::nullopt);
  EXPECT_FALSE(invalid);
  EXPECT_EQ(parse_int_infer_env("", &invalid), std::nullopt);
  EXPECT_FALSE(invalid);
  EXPECT_EQ(parse_int_infer_env("yes-please", &invalid), std::nullopt);
  EXPECT_TRUE(invalid);
}

TEST(IntInference, EnvOffDisablesNativePath) {
  ScopedEnv env("QNN_INT_INFER");
  auto net = lenet_scale_cnn();
  const Tensor calib = cnn_input(4, 5);
  QuantizedNetwork qnet(*net, fixed_config(8, 8));
  qnet.calibrate(calib);

  env.set("off");
  qnet.freeze_inference();
  EXPECT_FALSE(qnet.native_int_active());
  const Tensor x = cnn_input(2, 9);
  const Tensor float_path = qnet.forward(x);

  // Re-freeze with the gate open: the env is re-read at freeze time.
  qnet.thaw_inference();
  env.set("on");
  qnet.freeze_inference();
  EXPECT_TRUE(qnet.native_int_active());
  const Tensor int_path = qnet.forward(x);

  // Same grid, same calibration: the two paths agree to within one
  // final-grid step (float32 accumulation rounding; cf. nfu_sim_test).
  const auto& fq = dynamic_cast<const FixedQuantizer&>(
      qnet.data_quantizer(qnet.num_sites() - 1));
  const double step = fq.format()->step();
  for (std::int64_t i = 0; i < int_path.count(); ++i)
    EXPECT_NEAR(float_path[i], int_path[i], step + 1e-9) << "elem " << i;
}

TEST(IntInference, IneligibleConfigsFallBackToFloatPath) {
  const Tensor calib = cnn_input(4, 5);
  {
    // Float config: no integer realization.
    auto net = lenet_scale_cnn();
    QuantizedNetwork qnet(*net, float_config());
    qnet.freeze_inference();
    EXPECT_FALSE(qnet.native_int_active());
  }
  {
    // 24-bit weights exceed the 16-bit native word.
    auto net = lenet_scale_cnn();
    QuantizedNetwork qnet(*net, fixed_config(24, 16));
    qnet.calibrate(calib);
    EXPECT_NE(IntInferenceEngine::ineligibility_reason(*net, qnet), "");
    qnet.freeze_inference();
    EXPECT_FALSE(qnet.native_int_active());
    // Frozen float path still serves forwards.
    EXPECT_EQ(qnet.forward(cnn_input(1, 9)).count(), 10);
  }
  {
    // Stochastic rounding is nondeterministic: float path only.
    auto net = lenet_scale_cnn();
    PrecisionConfig cfg = fixed_config(8, 8);
    cfg.rounding = Rounding::kStochastic;
    QuantizedNetwork qnet(*net, cfg);
    qnet.calibrate(calib);
    EXPECT_NE(IntInferenceEngine::ineligibility_reason(*net, qnet), "");
    qnet.freeze_inference();
    EXPECT_FALSE(qnet.native_int_active());
  }
  {
    // Eligible config reports an empty reason.
    auto net = lenet_scale_cnn();
    QuantizedNetwork qnet(*net, fixed_config(8, 8));
    qnet.calibrate(calib);
    EXPECT_EQ(IntInferenceEngine::ineligibility_reason(*net, qnet), "");
  }
}

TEST(IntInference, ThawDropsEngineAndRestoresTraining) {
  auto net = lenet_scale_cnn();
  QuantizedNetwork qnet(*net, fixed_config(8, 8));
  qnet.calibrate(cnn_input(4, 5));
  qnet.freeze_inference();
  ASSERT_TRUE(qnet.native_int_active());
  qnet.thaw_inference();
  EXPECT_FALSE(qnet.native_int_active());
  EXPECT_FALSE(qnet.inference_frozen());
}

// Fault-injection hooks must bypass the native path: the hooks contract
// exposes float-domain sites/params the integer engine does not have.
TEST(IntInference, ForwardHooksBypassNativePath) {
  auto net = lenet_scale_cnn();
  QuantizedNetwork qnet(*net, fixed_config(8, 8));
  qnet.calibrate(cnn_input(4, 5));
  qnet.freeze_inference();
  ASSERT_TRUE(qnet.native_int_active());

  int site_calls = 0;
  ForwardHooks hooks;
  hooks.on_quantized_site = [&](std::size_t, Tensor&) { ++site_calls; };
  qnet.set_forward_hooks(std::move(hooks));
  (void)qnet.forward(cnn_input(1, 9));
  EXPECT_GT(site_calls, 0);  // float path ran, hooks fired

  qnet.clear_forward_hooks();
  site_calls = 0;
  (void)qnet.forward(cnn_input(1, 9));
  EXPECT_EQ(site_calls, 0);  // native path again
}

}  // namespace
}  // namespace qnn::quant
