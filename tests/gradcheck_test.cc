// Numerical gradient checks for every differentiable layer — the
// correctness backbone of the training framework.
#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/inner_product.h"
#include "nn/pool.h"
#include "testing/gradient_check.h"

namespace qnn::nn {
namespace {

using qnn::testing::check_layer_gradients;

TEST(GradCheck, ConvBasic) {
  ConvSpec spec;
  spec.out_channels = 3;
  spec.kernel = 3;
  Conv2d conv(2, spec);
  Rng rng(1);
  conv.init_weights(rng);
  check_layer_gradients(conv, Shape{2, 2, 6, 6});
}

TEST(GradCheck, ConvStridedPadded) {
  ConvSpec spec;
  spec.out_channels = 4;
  spec.kernel = 5;
  spec.stride = 2;
  spec.pad = 2;
  Conv2d conv(3, spec);
  Rng rng(2);
  conv.init_weights(rng);
  check_layer_gradients(conv, Shape{1, 3, 8, 8});
}

TEST(GradCheck, ConvLargeKernelNoBias) {
  ConvSpec spec;
  spec.out_channels = 2;
  spec.kernel = 7;
  spec.bias = false;
  Conv2d conv(1, spec);
  Rng rng(3);
  conv.init_weights(rng);
  check_layer_gradients(conv, Shape{2, 1, 9, 9});
}

TEST(GradCheck, MaxPool) {
  // NB: max pool is piecewise-linear; finite differences are valid away
  // from ties, which random inputs avoid almost surely.
  Pool2d pool(PoolSpec{PoolMode::kMax, 2, 2, 0});
  check_layer_gradients(pool, Shape{2, 3, 6, 6}, /*seed=*/4, /*eps=*/1e-4);
}

TEST(GradCheck, MaxPoolCeilMode) {
  Pool2d pool(PoolSpec{PoolMode::kMax, 3, 2, 0});
  check_layer_gradients(pool, Shape{1, 2, 7, 7}, /*seed=*/5, /*eps=*/1e-4);
}

TEST(GradCheck, AvgPool) {
  Pool2d pool(PoolSpec{PoolMode::kAvg, 2, 2, 0});
  check_layer_gradients(pool, Shape{2, 2, 6, 6});
}

TEST(GradCheck, AvgPoolClippedWindows) {
  Pool2d pool(PoolSpec{PoolMode::kAvg, 3, 2, 0});
  check_layer_gradients(pool, Shape{1, 2, 5, 5});
}

TEST(GradCheck, InnerProduct) {
  InnerProduct ip(12, 7);
  Rng rng(6);
  ip.init_weights(rng);
  check_layer_gradients(ip, Shape{3, 12});
}

TEST(GradCheck, InnerProductRank4Input) {
  InnerProduct ip(18, 5);
  Rng rng(7);
  ip.init_weights(rng);
  check_layer_gradients(ip, Shape{2, 2, 3, 3});
}

TEST(GradCheck, Relu) {
  Relu relu;
  check_layer_gradients(relu, Shape{2, 10}, /*seed=*/8, /*eps=*/1e-4);
}

}  // namespace
}  // namespace qnn::nn
