#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/inner_product.h"
#include "nn/network.h"
#include "nn/pool.h"

namespace qnn::nn {
namespace {

ConvSpec conv_spec(std::int64_t c, std::int64_t k) {
  ConvSpec s;
  s.out_channels = c;
  s.kernel = k;
  return s;
}

std::unique_ptr<Network> tiny_net() {
  auto net = std::make_unique<Network>("tiny");
  net->add<Conv2d>(1, conv_spec(4, 3));          // 8 -> 6
  net->add<Pool2d>(PoolSpec{PoolMode::kMax, 2, 2, 0});  // 6 -> 3
  net->add<Relu>();
  net->add<InnerProduct>(4 * 3 * 3, 5);
  Rng rng(11);
  net->init_weights(rng);
  return net;
}

TEST(Network, ForwardShape) {
  auto net = tiny_net();
  Tensor in(Shape{2, 1, 8, 8});
  const Tensor out = net->forward(in);
  EXPECT_EQ(out.shape(), Shape({2, 5}));
}

TEST(Network, TrainableParamsEnumeration) {
  auto net = tiny_net();
  const auto params = net->trainable_params();
  // conv w+b, ip w+b
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0]->count(), 4 * 1 * 3 * 3);
  EXPECT_EQ(params[1]->count(), 4);
  EXPECT_EQ(params[2]->count(), 36 * 5);
  EXPECT_EQ(params[3]->count(), 5);
}

TEST(Network, NumParams) {
  auto net = tiny_net();
  EXPECT_EQ(net->num_params(), 36 + 4 + 180 + 5);
}

TEST(Network, LayerNamesIncludeNetworkAndKind) {
  auto net = tiny_net();
  EXPECT_EQ(net->layer(0).name(), "tiny/conv0");
  EXPECT_EQ(net->layer(3).name(), "tiny/inner_product3");
}

TEST(Network, DescribeChainsShapes) {
  auto net = tiny_net();
  const auto descs = net->describe(Shape{16, 1, 8, 8});  // N normalized
  ASSERT_EQ(descs.size(), 4u);
  EXPECT_EQ(descs[0].in, Shape({1, 1, 8, 8}));
  EXPECT_EQ(descs[0].out, Shape({1, 4, 6, 6}));
  EXPECT_EQ(descs[1].out, Shape({1, 4, 3, 3}));
  EXPECT_EQ(descs[3].out, Shape({1, 5}));
}

TEST(Network, BackwardAccumulatesAllParamGrads) {
  auto net = tiny_net();
  auto params = net->trainable_params();
  for (auto* p : params) p->zero_grad();
  Tensor in(Shape{2, 1, 8, 8});
  Rng rng(3);
  in.fill_uniform(rng, -1, 1);
  const Tensor out = net->forward(in);
  Tensor g(out.shape());
  g.fill(1.0f);
  net->backward(g);
  for (auto* p : params) {
    double norm = 0;
    for (std::int64_t i = 0; i < p->grad.count(); ++i)
      norm += std::abs(p->grad[i]);
    EXPECT_GT(norm, 0.0) << "no gradient reached " << p->name;
  }
}

TEST(Network, CopyParamsFrom) {
  auto a = tiny_net();
  auto b = tiny_net();
  // Perturb b, then copy a -> b and compare.
  for (auto* p : b->trainable_params()) p->value.fill(7.0f);
  b->copy_params_from(*a);
  auto pa = a->trainable_params();
  auto pb = b->trainable_params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t j = 0; j < pa[i]->count(); ++j)
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(Network, CopyParamsShapeMismatchThrows) {
  auto a = tiny_net();
  Network other("other");
  other.add<InnerProduct>(4, 2);
  EXPECT_THROW(other.copy_params_from(*a), CheckError);
}

TEST(Network, InitIsDeterministicPerSeed) {
  auto a = tiny_net();
  auto b = tiny_net();
  auto pa = a->trainable_params();
  auto pb = b->trainable_params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t j = 0; j < pa[i]->count(); ++j)
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

}  // namespace
}  // namespace qnn::nn
