// Fault-injection unit tests: codec encoding fidelity, injector
// determinism, and campaign behavior (determinism + state restoration).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "data/synthetic.h"
#include "faults/campaign.h"
#include "faults/fault_model.h"
#include "faults/injector.h"
#include "nn/trainer.h"
#include "nn/zoo.h"

namespace qnn::faults {
namespace {

// --- codecs -------------------------------------------------------------

TEST(FaultModel, FixedCodecLsbFlipMovesOneStep) {
  const FixedPointFormat fmt(8, 4);  // step = 1/16
  const FixedCodec codec(fmt);
  ASSERT_EQ(codec.bits(), 8);
  // 1.0 encodes as raw 16 (even): LSB flip adds one step.
  EXPECT_FLOAT_EQ(codec.flip(1.0f, 0), 1.0f + static_cast<float>(fmt.step()));
  // raw 17 (odd): LSB flip subtracts one step.
  const float odd = static_cast<float>(17 * fmt.step());
  EXPECT_FLOAT_EQ(codec.flip(odd, 0), odd - static_cast<float>(fmt.step()));
}

TEST(FaultModel, FixedCodecSignBitFlipJumpsAcrossRange) {
  const FixedPointFormat fmt(8, 4);
  const FixedCodec codec(fmt);
  // +1.0 = raw 16 = 0b0001'0000; flipping bit 7 gives 0b1001'0000,
  // which sign-extends to raw 16 - 128 = -112 → -7.0.
  EXPECT_FLOAT_EQ(codec.flip(1.0f, 7),
                  static_cast<float>((16 - 128) * fmt.step()));
  // Flipping it back restores the original value.
  EXPECT_FLOAT_EQ(codec.flip(codec.flip(1.0f, 7), 7), 1.0f);
}

TEST(FaultModel, FixedCodecFlipIsInvolution) {
  const FixedPointFormat fmt(6, 3);
  const FixedCodec codec(fmt);
  for (int bit = 0; bit < codec.bits(); ++bit)
    for (float v : {-2.0f, -0.125f, 0.0f, 0.625f, 3.875f})
      EXPECT_FLOAT_EQ(codec.flip(codec.flip(v, bit), bit), v)
          << "bit " << bit << " value " << v;
}

TEST(FaultModel, FloatCodecFlipsIeeeBits) {
  const FloatCodec codec;
  ASSERT_EQ(codec.bits(), 32);
  // Bit 31 is the IEEE sign bit.
  EXPECT_FLOAT_EQ(codec.flip(3.5f, 31), -3.5f);
  // A high exponent-bit flip is catastrophic: 1.0 (0x3f800000) with bit
  // 30 flipped becomes 0x7f800000 * ... -> check via raw pattern.
  const float flipped = codec.flip(1.0f, 30);
  std::uint32_t raw;
  std::memcpy(&raw, &flipped, sizeof raw);
  EXPECT_EQ(raw, 0x3f800000u ^ (1u << 30));
  // Involution.
  EXPECT_FLOAT_EQ(codec.flip(flipped, 30), 1.0f);
}

TEST(FaultModel, BinaryCodecNegates) {
  const BinaryCodec codec;
  EXPECT_EQ(codec.bits(), 1);
  EXPECT_FLOAT_EQ(codec.flip(0.25f, 0), -0.25f);
  EXPECT_FLOAT_EQ(codec.flip(-0.25f, 0), 0.25f);
}

TEST(FaultModel, Pow2CodecSignAndCodeFlips) {
  const Pow2Format fmt(6, 0);  // 1 sign + 5 code bits, exp_max = 0
  const Pow2Codec codec(fmt);
  ASSERT_EQ(codec.bits(), 6);
  // Sign bit is the top bit.
  EXPECT_FLOAT_EQ(codec.flip(1.0f, 5), -1.0f);
  // A code-bit flip changes the magnitude by a power of two (or zeroes):
  // the result must still be representable.
  for (int bit = 0; bit < 5; ++bit) {
    const float flipped = codec.flip(0.5f, bit);
    EXPECT_FLOAT_EQ(static_cast<float>(fmt.quantize(flipped)), flipped);
    EXPECT_FLOAT_EQ(codec.flip(flipped, bit), 0.5f);
  }
}

// --- injector -----------------------------------------------------------

TEST(Injector, SameSeedSameSites) {
  FaultInjector a(123), b(123);
  for (int round = 0; round < 5; ++round) {
    const auto pa = a.plan(1000, 8, 1e-3);
    const auto pb = b.plan(1000, 8, 1e-3);
    ASSERT_EQ(pa, pb) << "round " << round;
  }
}

TEST(Injector, DifferentSeedsDiverge) {
  FaultInjector a(1), b(2);
  // With ~8000 bits at BER 1e-2 both plans are almost surely non-empty
  // and almost surely different.
  EXPECT_NE(a.plan(1000, 8, 1e-2), b.plan(1000, 8, 1e-2));
}

TEST(Injector, ZeroRateMeansNoFlips) {
  FaultInjector inj(9);
  EXPECT_TRUE(inj.plan(1 << 20, 32, 0.0).empty());
  Tensor t(Shape{16});
  t.fill(1.0f);
  EXPECT_EQ(inj.inject(t, FloatCodec(), 0.0), 0);
  for (std::int64_t i = 0; i < t.count(); ++i) EXPECT_EQ(t[i], 1.0f);
}

TEST(Injector, FullRateFlipsEveryBitBudget) {
  FaultInjector inj(9);
  // p = 1 → the binomial draw is exactly num_values * bits sites.
  EXPECT_EQ(static_cast<std::int64_t>(inj.plan(100, 8, 1.0).size()),
            100 * 8);
}

TEST(Injector, PlanSitesInRange) {
  FaultInjector inj(77);
  for (const auto& flip : inj.plan(50, 6, 0.05)) {
    EXPECT_GE(flip.index, 0);
    EXPECT_LT(flip.index, 50);
    EXPECT_GE(flip.bit, 0);
    EXPECT_LT(flip.bit, 6);
  }
}

TEST(Injector, RejectsBadRate) {
  FaultInjector inj(1);
  EXPECT_THROW(inj.plan(10, 8, -0.1), CheckError);
  EXPECT_THROW(inj.plan(10, 8, 1.5), CheckError);
}

TEST(Injector, DeriveSeedSpreadsSalts) {
  const auto s0 = derive_seed(42, 0);
  const auto s1 = derive_seed(42, 1);
  const auto t0 = derive_seed(43, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, t0);
  // Stateless: same inputs, same output.
  EXPECT_EQ(derive_seed(42, 0), s0);
}

// Campaign trial seeds key off derive_seed; these goldens pin the
// function so existing serial campaign results stay reproducible.
TEST(Injector, DeriveSeedGoldenValues) {
  EXPECT_EQ(derive_seed(0xfa117ull, 0), 0xd47f0d084ec9cccaull);
  EXPECT_EQ(derive_seed(0xfa117ull, 797003), 0x74d8679b1b973b2full);
  EXPECT_EQ(derive_seed(42, 7), 0xccf635ee9e9e2fa4ull);
}

TEST(Injector, DeriveSeed2MixesBothAxes) {
  // Golden values: sweep campaign seeds key off derive_seed2.
  EXPECT_EQ(derive_seed2(0xfa117ull, 0, 0), 0xb58041720b485e8ull);
  EXPECT_EQ(derive_seed2(0xfa117ull, 1, 2), 0x4b15dc4bdbe593fcull);
  // Composition of the 1D finalizer, so it is stateless and distinct
  // per axis and order.
  EXPECT_EQ(derive_seed2(7, 3, 9), derive_seed(derive_seed(7, 3), 9));
  EXPECT_NE(derive_seed2(7, 3, 9), derive_seed2(7, 9, 3));
  // The linear scheme derive_seed(base, p * 797003 + r) collides for
  // (p=0, r=797003) and (p=1, r=0); the 2D mix keeps them distinct.
  EXPECT_EQ(derive_seed(0xfa117ull, 0 * 797003ull + 797003ull),
            derive_seed(0xfa117ull, 1 * 797003ull + 0ull));
  EXPECT_NE(derive_seed2(0xfa117ull, 0, 797003),
            derive_seed2(0xfa117ull, 1, 0));
}

TEST(Injector, InjectChangesTensorAtHighRate) {
  FaultInjector inj(5);
  Tensor t(Shape{64});
  t.fill(1.0f);
  const FixedPointFormat fmt(8, 4);
  const std::int64_t flips = inj.inject(t, FixedCodec(fmt), 0.05);
  EXPECT_GT(flips, 0);
  int changed = 0;
  for (std::int64_t i = 0; i < t.count(); ++i)
    if (t[i] != 1.0f) ++changed;
  EXPECT_GT(changed, 0);
}

// --- campaign -----------------------------------------------------------

struct CampaignFixture {
  data::Split split;
  std::unique_ptr<nn::Network> net;

  CampaignFixture() {
    data::SyntheticConfig dc;
    dc.num_train = 150;
    dc.num_test = 60;
    dc.seed = 11;
    split = data::make_mnist_like(dc);
    nn::ZooConfig zc;
    zc.channel_scale = 0.2;
    net = nn::make_lenet(zc);
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 25;
    tc.sgd.learning_rate = 0.02;
    nn::train(*net, split.train, tc);
  }
};

TEST(Campaign, DeterministicAndRestoresState) {
  CampaignFixture f;
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(8, 8));
  qnet.calibrate(f.split.train.images);

  const double clean = nn::evaluate(qnet, f.split.test);
  qnet.restore_masters();

  CampaignConfig cc;
  cc.trials = 3;
  cc.bit_error_rate = 1e-3;
  cc.seed = 2024;
  const CampaignResult r1 = run_fault_campaign(qnet, f.split.test, cc);
  const CampaignResult r2 = run_fault_campaign(qnet, f.split.test, cc);

  EXPECT_EQ(r1.trials, 3);
  EXPECT_EQ(r1.failed_trials, 0);
  EXPECT_GT(r1.total_flips, 0);
  // Same seed → byte-identical campaign.
  EXPECT_DOUBLE_EQ(r1.mean_accuracy, r2.mean_accuracy);
  EXPECT_DOUBLE_EQ(r1.min_accuracy, r2.min_accuracy);
  EXPECT_EQ(r1.total_flips, r2.total_flips);
  // Accuracies are percentages.
  EXPECT_GE(r1.min_accuracy, 0.0);
  EXPECT_LE(r1.max_accuracy, 100.0);
  EXPECT_GE(r1.max_accuracy, r1.mean_accuracy);
  EXPECT_GE(r1.mean_accuracy, r1.min_accuracy);

  // Masters restored + hooks cleared: a clean evaluation afterwards
  // reproduces the pre-campaign accuracy exactly.
  EXPECT_DOUBLE_EQ(nn::evaluate(qnet, f.split.test), clean);
}

TEST(Campaign, ZeroRateMatchesCleanAccuracy) {
  CampaignFixture f;
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(16, 16));
  qnet.calibrate(f.split.train.images);
  const double clean = nn::evaluate(qnet, f.split.test);
  qnet.restore_masters();

  CampaignConfig cc;
  cc.trials = 2;
  cc.bit_error_rate = 0.0;
  const CampaignResult r = run_fault_campaign(qnet, f.split.test, cc);
  EXPECT_EQ(r.total_flips, 0);
  EXPECT_DOUBLE_EQ(r.mean_accuracy, clean);
  EXPECT_DOUBLE_EQ(r.min_accuracy, clean);
}

TEST(Campaign, RequiresCalibration) {
  CampaignFixture f;
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(8, 8));
  CampaignConfig cc;
  cc.trials = 1;
  EXPECT_THROW(run_fault_campaign(qnet, f.split.test, cc), CheckError);
}

TEST(FaultModel, CodecForMatchesQuantizerFormat) {
  CampaignFixture f;
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(8, 8));
  qnet.calibrate(f.split.train.images);
  const auto codec = codec_for(qnet.weight_quantizer(0));
  EXPECT_EQ(codec->bits(), 8);

  quant::QuantizedNetwork fnet(*f.net, quant::float_config());
  fnet.calibrate(f.split.train.images);
  EXPECT_EQ(codec_for(fnet.weight_quantizer(0))->bits(), 32);
}

TEST(FaultModel, AccumulatorCodecWidths) {
  EXPECT_EQ(accumulator_codec(24, 10.0, /*float_datapath=*/false)->bits(),
            24);
  EXPECT_EQ(accumulator_codec(24, 10.0, /*float_datapath=*/true)->bits(),
            32);
  // Widths beyond 32 are capped at the implementation's 32-bit raw.
  EXPECT_EQ(accumulator_codec(48, 10.0, /*float_datapath=*/false)->bits(),
            32);
}

TEST(FaultModel, DomainsToString) {
  EXPECT_EQ(domains_to_string(kWeightMemory), "sb");
  EXPECT_EQ(domains_to_string(kAllDomains), "sb+bin/bout+acc");
  EXPECT_EQ(domains_to_string(0), "none");
}

}  // namespace
}  // namespace qnn::faults
