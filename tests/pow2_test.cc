#include <gtest/gtest.h>

#include <cmath>

#include "fixed/pow2_format.h"
#include "util/check.h"
#include "util/rng.h"

namespace qnn {
namespace {

TEST(Pow2Format, Geometry) {
  Pow2Format f(6, 0);  // paper's 6-bit: sign + 5 exponent bits
  EXPECT_EQ(f.total_bits(), 6);
  EXPECT_EQ(f.num_exponents(), 31);
  EXPECT_EQ(f.exp_max(), 0);
  EXPECT_EQ(f.exp_min(), -30);
  EXPECT_DOUBLE_EQ(f.max_value(), 1.0);
  EXPECT_DOUBLE_EQ(f.min_positive(), std::ldexp(1.0, -30));
}

TEST(Pow2Format, QuantizesToExactPowers) {
  Pow2Format f(6, 2);
  EXPECT_DOUBLE_EQ(f.quantize(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.quantize(0.5), 0.5);
  EXPECT_DOUBLE_EQ(f.quantize(-0.25), -0.25);
  EXPECT_DOUBLE_EQ(f.quantize(3.0), 4.0);   // 3 = 1.5*2 rounds up
  EXPECT_DOUBLE_EQ(f.quantize(2.9), 2.0);   // below midpoint 3.0
  EXPECT_DOUBLE_EQ(f.quantize(0.0), 0.0);
}

TEST(Pow2Format, SaturatesAtExpMax) {
  Pow2Format f(4, 0);  // exponents [-6, 0]
  EXPECT_DOUBLE_EQ(f.quantize(100.0), 1.0);
  EXPECT_DOUBLE_EQ(f.quantize(-100.0), -1.0);
}

TEST(Pow2Format, TinyValuesUnderflowToZero) {
  Pow2Format f(4, 0);
  const double below = 0.4 * f.min_positive();
  EXPECT_DOUBLE_EQ(f.quantize(below), 0.0);
  const double above = 0.9 * f.min_positive();
  EXPECT_DOUBLE_EQ(f.quantize(above), f.min_positive());
}

TEST(Pow2Format, MinimizesAbsoluteError) {
  Pow2Format f(6, 4);
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-10, 10);
    const double q = f.quantize(v);
    // Check the neighbouring exponents don't beat the chosen value.
    if (q != 0.0) {
      const double qe = std::fabs(q) ;
      for (double alt : {qe * 2, qe / 2}) {
        if (alt > f.max_value() || alt < f.min_positive()) continue;
        const double signed_alt = v < 0 ? -alt : alt;
        EXPECT_LE(std::fabs(q - v), std::fabs(signed_alt - v) + 1e-12)
            << "v=" << v;
      }
    }
  }
}

TEST(Pow2Format, RawRoundTrip) {
  Pow2Format f(6, 1);
  Rng rng(101);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-3, 3);
    const std::int64_t raw = f.to_raw(v);
    EXPECT_LT(raw, 1 << 6);
    EXPECT_GE(raw, 0);
    EXPECT_DOUBLE_EQ(f.from_raw(raw), f.quantize(v)) << "v=" << v;
  }
}

TEST(Pow2Format, ZeroHasDedicatedCode) {
  Pow2Format f(6, 0);
  EXPECT_EQ(f.to_raw(0.0), 0);
  EXPECT_DOUBLE_EQ(f.from_raw(0), 0.0);
}

TEST(Pow2Format, ForRangeCoversMax) {
  const auto f = Pow2Format::for_range(6, 0.37);
  EXPECT_GE(f.max_value(), 0.37);
  EXPECT_LE(f.max_value(), 0.74 + 1e-12);  // not overly generous
  const auto g = Pow2Format::for_range(6, 5.0);
  EXPECT_EQ(g.exp_max(), 3);  // 2^3 = 8 >= 5
}

TEST(Pow2Format, QuantizeIdempotent) {
  Pow2Format f(6, 2);
  Rng rng(55);
  for (int i = 0; i < 500; ++i) {
    const double q = f.quantize(rng.uniform(-5, 5));
    EXPECT_DOUBLE_EQ(f.quantize(q), q);
  }
}

TEST(Pow2Format, InvalidBitsThrow) {
  EXPECT_THROW(Pow2Format(1, 0), CheckError);
  EXPECT_THROW(Pow2Format(17, 0), CheckError);
}

// Every representable magnitude is an exact power of two — the property
// that lets the accelerator replace multipliers with shifts.
class Pow2Property : public ::testing::TestWithParam<int> {};

TEST_P(Pow2Property, AllOutputsArePowersOfTwoOrZero) {
  Pow2Format f(GetParam(), 2);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 2000; ++i) {
    const double q = f.quantize(rng.uniform(-8, 8));
    if (q == 0.0) continue;
    const double e = std::log2(std::fabs(q));
    EXPECT_DOUBLE_EQ(e, std::round(e)) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, Pow2Property, ::testing::Values(3, 4, 6, 8));

}  // namespace
}  // namespace qnn
