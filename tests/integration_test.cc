// Cross-module integration: the full paper pipeline on a micro budget —
// synthetic data -> float training -> QAT at several precisions ->
// accuracy + hardware metrics — asserting the qualitative relationships
// the paper's tables rest on.
#include <gtest/gtest.h>

#include "exp/sweep.h"

namespace qnn {
namespace {

const exp::SweepResult& sweep() {
  static const exp::SweepResult result = [] {
    exp::ExperimentSpec spec;
    spec.network = "lenet";
    spec.dataset = "mnist";
    spec.channel_scale = 0.25;
    spec.data.num_train = 400;
    spec.data.num_test = 200;
    spec.data.seed = 11;
    spec.float_train.epochs = 4;
    spec.float_train.batch_size = 25;
    spec.float_train.sgd.learning_rate = 0.02;
    spec.qat_train = spec.float_train;
    spec.qat_train.epochs = 2;
    spec.qat_train.sgd.learning_rate = 0.01;
    return exp::run_precision_sweep(spec, quant::paper_precisions());
  }();
  return result;
}

TEST(Integration, AllSevenDesignPointsEvaluated) {
  EXPECT_EQ(sweep().points.size(), 7u);
}

TEST(Integration, FloatBaselineLearns) {
  const auto* f = sweep().find("float_32_32");
  ASSERT_NE(f, nullptr);
  EXPECT_GT(f->accuracy, 80.0);
}

TEST(Integration, HighPrecisionFixedMatchesFloat) {
  const auto* f = sweep().find("float_32_32");
  for (const char* id : {"fixed_32_32", "fixed_16_16", "fixed_8_8"}) {
    const auto* p = sweep().find(id);
    ASSERT_NE(p, nullptr) << id;
    EXPECT_GT(p->accuracy, f->accuracy - 8.0) << id;
  }
}

TEST(Integration, EnergyStrictlyDecreasesWithPrecision) {
  const auto& r = sweep();
  EXPECT_GT(r.find("float_32_32")->energy_uj,
            r.find("fixed_32_32")->energy_uj);
  EXPECT_GT(r.find("fixed_32_32")->energy_uj,
            r.find("fixed_16_16")->energy_uj);
  EXPECT_GT(r.find("fixed_16_16")->energy_uj,
            r.find("fixed_8_8")->energy_uj);
  EXPECT_GT(r.find("fixed_8_8")->energy_uj,
            r.find("fixed_4_4")->energy_uj);
  EXPECT_GT(r.find("fixed_8_8")->energy_uj,
            r.find("pow2_6_16")->energy_uj);
  EXPECT_GT(r.find("pow2_6_16")->energy_uj,
            r.find("binary_1_16")->energy_uj);
}

TEST(Integration, EnergySavingsInPaperRegime) {
  // Table IV: fixed16 ≈ 59%, fixed8 ≈ 85%, binary ≈ 94% savings.
  const auto& r = sweep();
  EXPECT_NEAR(r.find("fixed_16_16")->energy_saving_percent, 59.5, 8.0);
  EXPECT_NEAR(r.find("fixed_8_8")->energy_saving_percent, 85.4, 8.0);
  EXPECT_NEAR(r.find("binary_1_16")->energy_saving_percent, 94.1, 4.0);
}

TEST(Integration, MemoryFootprintDecreasesMonotonically) {
  const auto& r = sweep();
  EXPECT_GT(r.find("fixed_32_32")->param_kb,
            r.find("fixed_16_16")->param_kb);
  EXPECT_GT(r.find("fixed_16_16")->param_kb,
            r.find("pow2_6_16")->param_kb);
  EXPECT_GT(r.find("pow2_6_16")->param_kb,
            r.find("binary_1_16")->param_kb);
}

TEST(Integration, CyclesNearlyPrecisionIndependent) {
  // §V-B: runtime changes only marginally across precisions.
  const auto& r = sweep();
  const auto base = r.find("float_32_32")->cycles;
  for (const auto& p : r.points)
    EXPECT_NEAR(static_cast<double>(p.cycles), static_cast<double>(base),
                0.02 * static_cast<double>(base))
        << p.precision.label();
}

}  // namespace
}  // namespace qnn
