#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "nn/serialize.h"
#include "nn/zoo.h"

namespace qnn::nn {
namespace {

TEST(Serialize, RoundTripInMemory) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto a = make_lenet(zc);
  const std::string bytes = serialize_params(*a);
  EXPECT_GT(bytes.size(), sizeof(float) * static_cast<std::size_t>(
                              a->num_params()));

  ZooConfig zc2 = zc;
  zc2.init_seed = 999;  // different init → different weights
  auto b = make_lenet(zc2);
  deserialize_params(*b, bytes);
  const auto pa = a->trainable_params();
  const auto pb = b->trainable_params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t j = 0; j < pa[i]->count(); ++j)
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(Serialize, RoundTripOnDisk) {
  const std::string path = ::testing::TempDir() + "/qnn_snapshot.bin";
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto a = make_alex(zc);
  save_params(*a, path);

  ZooConfig zc2 = zc;
  zc2.init_seed = 7;
  auto b = make_alex(zc2);
  load_params(*b, path);
  Tensor in(Shape{1, 3, 32, 32});
  Rng rng(4);
  in.fill_uniform(rng, 0, 1);
  const Tensor oa = a->forward(in);
  const Tensor ob = b->forward(in);
  for (std::int64_t i = 0; i < oa.count(); ++i) EXPECT_EQ(oa[i], ob[i]);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsWrongArchitecture) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto lenet = make_lenet(zc);
  const std::string bytes = serialize_params(*lenet);
  auto alex = make_alex(zc);
  EXPECT_THROW(deserialize_params(*alex, bytes), CheckError);
}

TEST(Serialize, RejectsGarbage) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  EXPECT_THROW(deserialize_params(*net, "not a snapshot"), CheckError);
  EXPECT_THROW(deserialize_params(*net, ""), CheckError);
}

TEST(Serialize, RejectsTruncated) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  std::string bytes = serialize_params(*net);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_params(*net, bytes), CheckError);
}

TEST(Serialize, MissingFileThrows) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  EXPECT_THROW(load_params(*net, "/nonexistent/path.bin"), CheckError);
}

TEST(Serialize, CrcCatchesPayloadCorruption) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  std::string bytes = serialize_params(*net);
  // Flip one bit deep inside the weight payload — the structural checks
  // can't see it, the CRC must.
  bytes[bytes.size() / 2] ^= 0x01;
  try {
    deserialize_params(*net, bytes);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST(Serialize, LoadsVersion1SnapshotsWithoutCrc) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto a = make_lenet(zc);
  std::string bytes = serialize_params(*a);
  // Rewrite as a v1 file: version field 1, no CRC trailer.
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + 4, &v1, sizeof v1);
  bytes.resize(bytes.size() - sizeof(std::uint32_t));

  ZooConfig zc2 = zc;
  zc2.init_seed = 31;
  auto b = make_lenet(zc2);
  deserialize_params(*b, bytes);
  const auto pa = a->trainable_params();
  const auto pb = b->trainable_params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t j = 0; j < pa[i]->count(); ++j)
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(SerializeV3, EnvelopeRoundTrip) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto a = make_lenet(zc);
  std::vector<protect::SiteEnvelope> sites(5);
  for (std::size_t s = 0; s < sites.size(); ++s) {
    sites[s].lo = -1.5 * static_cast<double>(s + 1);
    sites[s].hi = 2.25 * static_cast<double>(s + 1);
    sites[s].valid = true;
  }
  sites[3].valid = false;  // never-observed site survives the round trip
  const protect::EnvelopeSet env{sites};
  const std::string bytes = serialize_params(*a, env);
  // Version word is 3 for envelope-carrying snapshots.
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof version);
  EXPECT_EQ(version, 3u);

  ZooConfig zc2 = zc;
  zc2.init_seed = 999;
  auto b = make_lenet(zc2);
  protect::EnvelopeSet loaded;
  deserialize_params(*b, bytes, &loaded);
  EXPECT_EQ(loaded, env);
  const auto pa = a->trainable_params();
  const auto pb = b->trainable_params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t j = 0; j < pa[i]->count(); ++j)
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(SerializeV3, NoEnvelopesWritesByteIdenticalVersion2) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  const std::string plain = serialize_params(*net);
  const std::string with_empty = serialize_params(*net,
                                                  protect::EnvelopeSet{});
  EXPECT_EQ(plain, with_empty);
  std::uint32_t version = 0;
  std::memcpy(&version, plain.data() + 4, sizeof version);
  EXPECT_EQ(version, 2u);
}

TEST(SerializeV3, Version2ReadClearsEnvelopes) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  const std::string v2 = serialize_params(*net);
  protect::EnvelopeSet loaded{std::vector<protect::SiteEnvelope>(3)};
  deserialize_params(*net, v2, &loaded);
  EXPECT_TRUE(loaded.empty());
}

TEST(SerializeV3, PlainReaderAcceptsVersion3) {
  // A caller that does not ask for envelopes still loads a v3 snapshot's
  // parameters (the section is skipped, not treated as trailing bytes).
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto a = make_lenet(zc);
  protect::EnvelopeSet env{std::vector<protect::SiteEnvelope>(
      {{-1.0, 1.0, true}, {0.0, 4.0, true}})};
  const std::string bytes = serialize_params(*a, env);
  ZooConfig zc2 = zc;
  zc2.init_seed = 123;
  auto b = make_lenet(zc2);
  deserialize_params(*b, bytes);
  const auto pa = a->trainable_params();
  const auto pb = b->trainable_params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t j = 0; j < pa[i]->count(); ++j)
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(SerializeV3, TruncatedEnvelopeSectionThrows) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  protect::EnvelopeSet env{std::vector<protect::SiteEnvelope>(
      {{-1.0, 1.0, true}, {0.0, 4.0, true}})};
  std::string bytes = serialize_params(*net, env);
  // Drop one envelope record (17 bytes) plus the CRC; the loader must
  // reject it (CRC first, and structurally even if the CRC were fixed).
  bytes.resize(bytes.size() - sizeof(std::uint32_t) - 17);
  EXPECT_THROW(deserialize_params(*net, bytes), CheckError);
}

TEST(SerializeV3, OnDiskRoundTripWithEnvelopes) {
  const std::string path = ::testing::TempDir() + "/qnn_snapshot_v3.bin";
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto a = make_lenet(zc);
  protect::EnvelopeSet env{std::vector<protect::SiteEnvelope>(
      {{-0.5, 0.5, true}, {0.0, 6.0, true}, {0.0, 0.0, false}})};
  save_params(*a, path, env);
  ZooConfig zc2 = zc;
  zc2.init_seed = 77;
  auto b = make_lenet(zc2);
  protect::EnvelopeSet loaded;
  load_params(*b, path, &loaded);
  EXPECT_EQ(loaded, env);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsUnknownVersion) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  std::string bytes = serialize_params(*net);
  const std::uint32_t future = 99;
  std::memcpy(bytes.data() + 4, &future, sizeof future);
  try {
    deserialize_params(*net, bytes);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 99"), std::string::npos);
    EXPECT_NE(what.find("1..3"), std::string::npos);
  }
}

TEST(Serialize, TruncationErrorNamesWhatRanOut) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  std::string bytes = serialize_params(*net);
  bytes.resize(6);  // magic + half the version field
  try {
    deserialize_params(*net, bytes);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("6 bytes"), std::string::npos);
  }
}

TEST(Serialize, SaveIsAtomicAndLoadNamesPath) {
  const std::string path = ::testing::TempDir() + "/qnn_atomic_params.bin";
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  save_params(*net, path);
  // No staging file left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Corrupt the file on disk: load_params must prefix the path.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  bytes[bytes.size() / 2] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    load_params(*net, path);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos);
    EXPECT_NE(what.find("CRC"), std::string::npos);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace qnn::nn
