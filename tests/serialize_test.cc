#include <gtest/gtest.h>

#include <filesystem>

#include "nn/serialize.h"
#include "nn/zoo.h"

namespace qnn::nn {
namespace {

TEST(Serialize, RoundTripInMemory) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto a = make_lenet(zc);
  const std::string bytes = serialize_params(*a);
  EXPECT_GT(bytes.size(), sizeof(float) * static_cast<std::size_t>(
                              a->num_params()));

  ZooConfig zc2 = zc;
  zc2.init_seed = 999;  // different init → different weights
  auto b = make_lenet(zc2);
  deserialize_params(*b, bytes);
  const auto pa = a->trainable_params();
  const auto pb = b->trainable_params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t j = 0; j < pa[i]->count(); ++j)
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(Serialize, RoundTripOnDisk) {
  const std::string path = ::testing::TempDir() + "/qnn_snapshot.bin";
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto a = make_alex(zc);
  save_params(*a, path);

  ZooConfig zc2 = zc;
  zc2.init_seed = 7;
  auto b = make_alex(zc2);
  load_params(*b, path);
  Tensor in(Shape{1, 3, 32, 32});
  Rng rng(4);
  in.fill_uniform(rng, 0, 1);
  const Tensor oa = a->forward(in);
  const Tensor ob = b->forward(in);
  for (std::int64_t i = 0; i < oa.count(); ++i) EXPECT_EQ(oa[i], ob[i]);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsWrongArchitecture) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto lenet = make_lenet(zc);
  const std::string bytes = serialize_params(*lenet);
  auto alex = make_alex(zc);
  EXPECT_THROW(deserialize_params(*alex, bytes), CheckError);
}

TEST(Serialize, RejectsGarbage) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  EXPECT_THROW(deserialize_params(*net, "not a snapshot"), CheckError);
  EXPECT_THROW(deserialize_params(*net, ""), CheckError);
}

TEST(Serialize, RejectsTruncated) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  std::string bytes = serialize_params(*net);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_params(*net, bytes), CheckError);
}

TEST(Serialize, MissingFileThrows) {
  ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = make_lenet(zc);
  EXPECT_THROW(load_params(*net, "/nonexistent/path.bin"), CheckError);
}

}  // namespace
}  // namespace qnn::nn
