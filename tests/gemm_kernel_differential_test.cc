// Differential tests for the SIMD microkernel dispatch (DESIGN.md §15):
// the scalar fallback and the AVX2/FMA kernels must produce IDENTICAL
// bytes for every gemm variant, shape boundary, scratch state, and
// thread count — the lane-striped fused-multiply-add contract of
// tensor/gemm.h makes this a structural property, and these tests pin
// it. Also covers the QNN_SIMD runtime-dispatch parsing and override
// machinery.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/int_gemm.h"
#include "tensor/microkernel.h"
#include "util/thread_pool.h"

namespace qnn {
namespace {

bool avx2_available() { return simd_support() == SimdLevel::kAvx2; }

// Restores the global pool to its environment size no matter how a test
// exits.
struct ThreadGuard {
  ~ThreadGuard() {
    ThreadPool::set_global_threads(ThreadPool::env_threads());
  }
};

// Saves and restores one environment variable across a test body.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* v = std::getenv(name);
    if (v != nullptr) saved_ = v;
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
    refresh_simd_env();
  }

  void set(const std::string& value) {
    ::setenv(name_, value.c_str(), 1);
    refresh_simd_env();
  }
  void unset() {
    ::unsetenv(name_);
    refresh_simd_env();
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

std::vector<float> random_vec(std::int64_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> out(static_cast<std::size_t>(count));
  for (float& v : out) v = dist(rng);
  return out;
}

// One output buffer per gemm variant, all computed at the given level.
struct VariantOutputs {
  std::vector<float> plain, row_bias, accumulate, at, bt, bt_col_bias,
      bt_accumulate;

  bool operator==(const VariantOutputs& o) const {
    auto same = [](const std::vector<float>& x, const std::vector<float>& y) {
      return x.size() == y.size() &&
             (x.empty() || std::memcmp(x.data(), y.data(),
                                       x.size() * sizeof(float)) == 0);
    };
    return same(plain, o.plain) && same(row_bias, o.row_bias) &&
           same(accumulate, o.accumulate) && same(at, o.at) &&
           same(bt, o.bt) && same(bt_col_bias, o.bt_col_bias) &&
           same(bt_accumulate, o.bt_accumulate);
  }
};

VariantOutputs run_all_variants(SimdLevel level, std::int64_t m,
                                std::int64_t n, std::int64_t k,
                                GemmScratch* scratch = nullptr) {
  ScopedSimdLevel force(level);
  const auto a = random_vec(m * k, 11);    // row-major [M,K]
  const auto b = random_vec(k * n, 12);    // row-major [K,N]
  const auto at_op = random_vec(k * m, 13);  // A^T stored [K,M]
  const auto bt_op = random_vec(n * k, 14);  // B^T stored [N,K]
  const auto rbias = random_vec(m, 15);
  const auto cbias = random_vec(n, 16);
  const auto seed_c = random_vec(m * n, 17);

  VariantOutputs out;
  const std::size_t cn = static_cast<std::size_t>(m * n);
  out.plain.resize(cn);
  gemm(m, n, k, a.data(), b.data(), out.plain.data(), scratch);
  out.row_bias.resize(cn);
  gemm_row_bias(m, n, k, a.data(), b.data(), out.row_bias.data(),
                rbias.data(), scratch);
  out.accumulate = seed_c;
  gemm_accumulate(m, n, k, a.data(), b.data(), out.accumulate.data(),
                  scratch);
  out.at.resize(cn);
  gemm_at(m, n, k, at_op.data(), b.data(), out.at.data(), scratch);
  out.bt.resize(cn);
  gemm_bt(m, n, k, a.data(), bt_op.data(), out.bt.data(), scratch);
  out.bt_col_bias.resize(cn);
  gemm_bt_col_bias(m, n, k, a.data(), bt_op.data(), out.bt_col_bias.data(),
                   cbias.data(), scratch);
  out.bt_accumulate = seed_c;
  gemm_bt_accumulate(m, n, k, a.data(), bt_op.data(),
                     out.bt_accumulate.data(), scratch);
  return out;
}

// ---------------------------------------------------------------------
// Scalar == AVX2, bytes, every variant, boundary shapes.

TEST(GemmKernelDifferential, ScalarMatchesAvx2AcrossBoundaryShapes) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this machine";
  // Boundaries of the kernel geometry: the 8-wide lane stripe, the
  // 16-column AVX2 panel, the 64-row M block, and the 256-wide K chunk,
  // each straddled by one.
  const std::int64_t ms[] = {1, 4, 63, 64, 65};
  const std::int64_t ns[] = {1, 7, 8, 9, 16, 17, 255, 256, 257};
  const std::int64_t ks[] = {1, 8, 255, 256, 257};
  for (std::int64_t m : ms) {
    for (std::int64_t n : ns) {
      for (std::int64_t k : ks) {
        const VariantOutputs scalar =
            run_all_variants(SimdLevel::kScalar, m, n, k);
        const VariantOutputs avx2 =
            run_all_variants(SimdLevel::kAvx2, m, n, k);
        ASSERT_TRUE(scalar == avx2)
            << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(GemmKernelDifferential, ScalarMatchesAvx2ColdAndWarmScratch) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this machine";
  const std::int64_t m = 65, n = 257, k = 300;  // K-chunked, odd edges
  const VariantOutputs base = run_all_variants(SimdLevel::kScalar, m, n, k);
  GemmScratch scratch;  // cold on the first pass, warm on the second
  const VariantOutputs cold =
      run_all_variants(SimdLevel::kAvx2, m, n, k, &scratch);
  const VariantOutputs warm =
      run_all_variants(SimdLevel::kAvx2, m, n, k, &scratch);
  EXPECT_TRUE(base == cold);
  EXPECT_TRUE(cold == warm);
}

TEST(GemmKernelDifferential, ScalarMatchesAvx2AcrossThreadCounts) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this machine";
  ThreadGuard guard;
  // Tall-K shape engages the K-parallel fixed-tree path; wide-M engages
  // M-block sharding.
  ThreadPool::set_global_threads(1);
  const VariantOutputs base =
      run_all_variants(SimdLevel::kScalar, 130, 33, 700);
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool::set_global_threads(threads);
    const VariantOutputs scalar =
        run_all_variants(SimdLevel::kScalar, 130, 33, 700);
    const VariantOutputs avx2 =
        run_all_variants(SimdLevel::kAvx2, 130, 33, 700);
    EXPECT_TRUE(base == scalar) << threads << " threads (scalar)";
    EXPECT_TRUE(base == avx2) << threads << " threads (avx2)";
  }
}

// ---------------------------------------------------------------------
// Integer kernels: scalar == AVX2 words (exact in int64 regardless, so
// any mismatch is a kernel bug, not a rounding difference).

template <typename WordT>
std::vector<WordT> random_words(std::int64_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(
      std::numeric_limits<WordT>::min(), std::numeric_limits<WordT>::max());
  std::vector<WordT> out(static_cast<std::size_t>(count));
  for (WordT& v : out) v = static_cast<WordT>(dist(rng));
  return out;
}

template <typename WordT>
void int_kernel_differential() {
  const std::int64_t ms[] = {1, 3, 64};
  const std::int64_t ns[] = {1, 2, 4, 5, 8, 33};
  const std::int64_t ks[] = {1, 7, 8, 15, 16, 17, 64, 300};
  for (std::int64_t m : ms) {
    for (std::int64_t n : ns) {
      for (std::int64_t k : ks) {
        const auto a = random_words<WordT>(m * k, 21);
        const auto b = random_words<WordT>(n * k, 22);
        std::vector<std::int64_t> cs(static_cast<std::size_t>(m * n));
        std::vector<std::int64_t> cv(static_cast<std::size_t>(m * n));
        {
          ScopedSimdLevel force(SimdLevel::kScalar);
          int_gemm_bt(m, n, k, a.data(), b.data(), cs.data());
        }
        {
          ScopedSimdLevel force(SimdLevel::kAvx2);
          int_gemm_bt(m, n, k, a.data(), b.data(), cv.data());
        }
        ASSERT_EQ(cs, cv) << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(GemmKernelDifferential, Int8ScalarMatchesAvx2) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this machine";
  int_kernel_differential<std::int8_t>();
}

TEST(GemmKernelDifferential, Int16ScalarMatchesAvx2) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this machine";
  int_kernel_differential<std::int16_t>();
}

// Extreme-magnitude operands: the int8 kernel's madd pair-sums and the
// int16 kernel's widening must not wrap anywhere in the K blocking.
TEST(GemmKernelDifferential, IntKernelsExactAtExtremes) {
  auto check = [](auto word, std::int64_t k) {
    using WordT = decltype(word);
    const WordT lo = std::numeric_limits<WordT>::min();
    const WordT hi = std::numeric_limits<WordT>::max();
    std::vector<WordT> a(static_cast<std::size_t>(k), lo);
    std::vector<WordT> b(static_cast<std::size_t>(k), lo);
    std::int64_t c = 0;
    const SimdLevel level =
        avx2_available() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
    ScopedSimdLevel force(level);
    // min*min: the largest positive product.
    int_gemm_bt(1, 1, k, a.data(), b.data(), &c);
    EXPECT_EQ(c, k * (static_cast<std::int64_t>(lo) * lo));
    // min*max: the most negative product.
    std::fill(b.begin(), b.end(), hi);
    int_gemm_bt(1, 1, k, a.data(), b.data(), &c);
    EXPECT_EQ(c, k * (static_cast<std::int64_t>(lo) * hi));
  };
  // K spans the int8 kernel's 2^16 K-block boundary.
  for (std::int64_t k : {1, 255, 65535, 65536, 65537, 70000}) {
    check(std::int8_t{0}, k);
  }
  for (std::int64_t k : {1, 255, 4096}) {
    check(std::int16_t{0}, k);
  }
}

// ---------------------------------------------------------------------
// QNN_SIMD parsing + dispatch override machinery (satellite: hardened
// like ThreadPool::env_threads()).

TEST(SimdDispatch, ParseSimdEnvSpellings) {
  bool invalid = false;
  EXPECT_EQ(parse_simd_env("off", &invalid), SimdLevel::kScalar);
  EXPECT_FALSE(invalid);
  EXPECT_EQ(parse_simd_env("scalar", &invalid), SimdLevel::kScalar);
  EXPECT_FALSE(invalid);
  EXPECT_EQ(parse_simd_env("avx2", &invalid), SimdLevel::kAvx2);
  EXPECT_FALSE(invalid);
  EXPECT_EQ(parse_simd_env("auto", &invalid), std::nullopt);
  EXPECT_FALSE(invalid);
  EXPECT_EQ(parse_simd_env("", &invalid), std::nullopt);
  EXPECT_FALSE(invalid);
  EXPECT_EQ(parse_simd_env("bogus", &invalid), std::nullopt);
  EXPECT_TRUE(invalid);
  EXPECT_EQ(parse_simd_env("AVX2", &invalid), std::nullopt);
  EXPECT_TRUE(invalid);  // spellings are case-sensitive, like QNN_THREADS
}

TEST(SimdDispatch, EnvControlsActiveLevel) {
  ScopedEnv env("QNN_SIMD");
  env.set("off");
  EXPECT_EQ(active_simd_level(), SimdLevel::kScalar);
  env.set("scalar");
  EXPECT_EQ(active_simd_level(), SimdLevel::kScalar);
  env.set("avx2");
  // Clamped to hardware support: exactly avx2 when available, scalar
  // fallback (with a warning) when not.
  EXPECT_EQ(active_simd_level(), simd_support());
  env.set("definitely-not-a-level");
  EXPECT_EQ(active_simd_level(), simd_support());  // auto fallback
  env.unset();
  EXPECT_EQ(active_simd_level(), simd_support());
}

TEST(SimdDispatch, ForcedLevelWinsOverEnv) {
  ScopedEnv env("QNN_SIMD");
  env.set("off");
  {
    ScopedSimdLevel force(simd_support());
    EXPECT_EQ(active_simd_level(), simd_support());
  }
  EXPECT_EQ(active_simd_level(), SimdLevel::kScalar);  // force restored
}

// Both dispatch targets, driven through the ENV path end to end (not
// the programmatic force), produce identical bytes.
TEST(SimdDispatch, EnvDispatchTargetsProduceIdenticalBytes) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this machine";
  ScopedEnv env("QNN_SIMD");
  const std::int64_t m = 33, n = 65, k = 257;
  const auto a = random_vec(m * k, 31);
  const auto b = random_vec(k * n, 32);
  std::vector<float> c_off(static_cast<std::size_t>(m * n));
  std::vector<float> c_avx2(static_cast<std::size_t>(m * n));
  env.set("off");
  gemm(m, n, k, a.data(), b.data(), c_off.data());
  env.set("avx2");
  gemm(m, n, k, a.data(), b.data(), c_avx2.data());
  EXPECT_EQ(std::memcmp(c_off.data(), c_avx2.data(),
                        c_off.size() * sizeof(float)),
            0);
}

TEST(SimdDispatch, SupportLevelNameRoundTrips) {
  EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
  // simd_support() is one of the two defined levels.
  const SimdLevel s = simd_support();
  EXPECT_TRUE(s == SimdLevel::kScalar || s == SimdLevel::kAvx2);
}

}  // namespace
}  // namespace qnn
