// Fixed-point-training extension (Gupta et al.): gradient quantization
// inside QuantizedNetwork::backward.
#include <gtest/gtest.h>

#include <set>

#include "nn/inner_product.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "quant/qnetwork.h"

namespace qnn::quant {
namespace {

std::unique_ptr<nn::Network> tiny() {
  auto net = std::make_unique<nn::Network>("g");
  net->add<nn::InnerProduct>(4, 3);
  Rng rng(2);
  net->init_weights(rng);
  return net;
}

Tensor batch() {
  Tensor t(Shape{8, 4});
  Rng rng(3);
  t.fill_uniform(rng, 0, 1);
  return t;
}

void run_backward(QuantizedNetwork& qnet) {
  auto params = qnet.trainable_params();
  for (auto* p : params) p->zero_grad();
  const Tensor logits = qnet.forward(batch());
  const auto lr = nn::softmax_cross_entropy(
      logits, {0, 1, 2, 0, 1, 2, 0, 1});
  qnet.backward(lr.grad_logits);
}

TEST(GradPrecision, ZeroBitsKeepsFloatGradients) {
  auto net = tiny();
  PrecisionConfig cfg = fixed_config(8, 8);  // gradient_bits = 0
  QuantizedNetwork qnet(*net, cfg);
  qnet.calibrate(batch());
  run_backward(qnet);
  // Float gradients have many distinct magnitudes.
  std::set<float> values;
  for (auto* p : qnet.trainable_params())
    for (std::int64_t i = 0; i < p->grad.count(); ++i)
      values.insert(p->grad[i]);
  EXPECT_GT(values.size(), 10u);
}

TEST(GradPrecision, QuantizedGradientsLieOnPerTensorGrid) {
  auto net = tiny();
  PrecisionConfig cfg = fixed_config(8, 8);
  cfg.gradient_bits = 4;
  QuantizedNetwork qnet(*net, cfg);
  qnet.calibrate(batch());
  run_backward(qnet);
  for (auto* p : qnet.trainable_params()) {
    const double max_abs = p->grad.max_abs();
    if (max_abs == 0) continue;
    const FixedPointFormat f = FixedPointFormat::for_range(4, max_abs);
    // At most 16 distinct grid values for 4 bits.
    std::set<float> values;
    for (std::int64_t i = 0; i < p->grad.count(); ++i) {
      values.insert(p->grad[i]);
      EXPECT_TRUE(f.representable(p->grad[i]) ||
                  p->grad[i] == static_cast<float>(f.max_value()))
          << p->grad[i];
    }
    EXPECT_LE(values.size(), 16u);
  }
}

TEST(GradPrecision, WideGradientsBarelyPerturbUpdates) {
  auto net_a = tiny();
  auto net_b = tiny();
  PrecisionConfig plain = fixed_config(8, 8);
  PrecisionConfig wide = fixed_config(8, 8);
  wide.gradient_bits = 16;
  QuantizedNetwork qa(*net_a, plain), qb(*net_b, wide);
  qa.calibrate(batch());
  qb.calibrate(batch());
  run_backward(qa);
  run_backward(qb);
  const auto pa = qa.trainable_params();
  const auto pb = qb.trainable_params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < pa[i]->count(); ++j)
      EXPECT_NEAR(pa[i]->grad[j], pb[i]->grad[j],
                  0.01 * (std::abs(pa[i]->grad[j]) + 1e-4));
  }
}

}  // namespace
}  // namespace qnn::quant
