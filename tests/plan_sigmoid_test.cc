#include <gtest/gtest.h>

#include <cmath>

#include "fixed/plan_sigmoid.h"
#include "nn/activation.h"
#include "quant/qnetwork.h"
#include "hw/nfu_sim.h"
#include "nn/inner_product.h"
#include "nn/network.h"

namespace qnn {
namespace {

TEST(PlanSigmoid, AnchorsExact) {
  EXPECT_DOUBLE_EQ(plan_sigmoid(0.0), 0.5);
  EXPECT_DOUBLE_EQ(plan_sigmoid(5.0), 1.0);
  EXPECT_DOUBLE_EQ(plan_sigmoid(100.0), 1.0);
  EXPECT_DOUBLE_EQ(plan_sigmoid(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(plan_sigmoid(-100.0), 0.0);
}

TEST(PlanSigmoid, WithinDocumentedErrorBound) {
  for (double x = -8.0; x <= 8.0; x += 0.01) {
    const double exact = 1.0 / (1.0 + std::exp(-x));
    EXPECT_LE(std::fabs(plan_sigmoid(x) - exact),
              kPlanSigmoidMaxError + 1e-12)
        << "x=" << x;
  }
}

TEST(PlanSigmoid, MonotoneNonDecreasing) {
  double prev = plan_sigmoid(-10.0);
  for (double x = -10.0; x <= 10.0; x += 0.05) {
    const double y = plan_sigmoid(x);
    EXPECT_GE(y, prev - 1e-12) << "x=" << x;
    prev = y;
  }
}

TEST(PlanSigmoid, SymmetryAroundHalf) {
  for (double x = 0.0; x <= 6.0; x += 0.1)
    EXPECT_NEAR(plan_sigmoid(x) + plan_sigmoid(-x), 1.0, 1e-12);
}

TEST(PlanTanh, BoundAndSign) {
  EXPECT_DOUBLE_EQ(plan_tanh(0.0), 0.0);
  for (double x = -5.0; x <= 5.0; x += 0.05) {
    const double y = plan_tanh(x);
    EXPECT_LE(std::fabs(y), 1.0 + 1e-12);
    EXPECT_LE(std::fabs(y - std::tanh(x)), 2 * kPlanSigmoidMaxError + 1e-12)
        << "x=" << x;
  }
}

TEST(NfuSimPlan, SigmoidNetworkRunsInIntegerDomain) {
  auto net = std::make_unique<nn::Network>("sig");
  net->add<nn::InnerProduct>(6, 8);
  net->add<nn::Sigmoid>();
  net->add<nn::InnerProduct>(8, 3);
  Rng rng(4);
  net->init_weights(rng);
  Tensor batch(Shape{4, 6});
  batch.fill_uniform(rng, 0, 1);

  quant::QuantizedNetwork qnet(*net, quant::fixed_config(8, 8));
  qnet.calibrate(batch);
  const Tensor float_path = qnet.forward(batch);
  qnet.restore_masters();

  const hw::NfuSimulator sim(*net, qnet, Shape{1, 6});
  const Tensor int_path = sim.forward(batch);
  // Float path uses the exact sigmoid, integer path PLAN: difference is
  // bounded by the PLAN error propagated through the 3-wide head.
  for (std::int64_t i = 0; i < float_path.count(); ++i)
    EXPECT_NEAR(int_path[i], float_path[i], 0.35)
        << "logit " << i;
}

TEST(NfuSimPlan, DropoutIsInferenceIdentity) {
  auto net = std::make_unique<nn::Network>("drop");
  net->add<nn::InnerProduct>(4, 4);
  net->add<nn::Dropout>(0.5);
  net->add<nn::InnerProduct>(4, 2);
  Rng rng(6);
  net->init_weights(rng);
  // Evaluation mode for the float reference.
  dynamic_cast<nn::Dropout&>(net->layer(1)).set_training(false);
  Tensor batch(Shape{3, 4});
  batch.fill_uniform(rng, 0, 1);
  quant::QuantizedNetwork qnet(*net, quant::fixed_config(8, 8));
  qnet.calibrate(batch);
  const Tensor float_path = qnet.forward(batch);
  qnet.restore_masters();
  const hw::NfuSimulator sim(*net, qnet, Shape{1, 4});
  const Tensor int_path = sim.forward(batch);
  const auto& fq = dynamic_cast<const quant::FixedQuantizer&>(
      qnet.data_quantizer(qnet.num_sites() - 1));
  for (std::int64_t i = 0; i < float_path.count(); ++i)
    EXPECT_NEAR(int_path[i], float_path[i], fq.format()->step() + 1e-9);
}

}  // namespace
}  // namespace qnn
