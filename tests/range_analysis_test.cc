#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/inner_product.h"
#include "nn/network.h"
#include "quant/range_analysis.h"

namespace qnn::quant {
namespace {

std::unique_ptr<nn::Network> two_layer_net() {
  auto net = std::make_unique<nn::Network>("ra");
  net->add<nn::InnerProduct>(4, 3);
  net->add<nn::Relu>();
  net->add<nn::InnerProduct>(3, 2);
  Rng rng(2);
  net->init_weights(rng);
  return net;
}

TEST(RangeAnalysis, SiteCountIsLayersPlusOne) {
  auto net = two_layer_net();
  Tensor batch(Shape{8, 4});
  Rng rng(1);
  batch.fill_uniform(rng, -1, 1);
  const RangeStats s = analyze_ranges(*net, batch);
  EXPECT_EQ(s.site_max_abs.size(), net->num_layers() + 1);
  EXPECT_EQ(s.site_samples.size(), net->num_layers() + 1);
}

TEST(RangeAnalysis, InputSiteMatchesBatchMax) {
  auto net = two_layer_net();
  Tensor batch(Shape{4, 4});
  batch.fill(0.0f);
  batch[5] = -2.5f;
  const RangeStats s = analyze_ranges(*net, batch);
  EXPECT_DOUBLE_EQ(s.site_max_abs[0], 2.5);
}

TEST(RangeAnalysis, ParamStatsMatchTensors) {
  auto net = two_layer_net();
  auto params = net->trainable_params();
  params[0]->value.fill(0.25f);
  params[0]->value[0] = -3.0f;
  Tensor batch(Shape{2, 4});
  const RangeStats s = analyze_ranges(*net, batch);
  EXPECT_EQ(s.param_max_abs.size(), params.size());
  EXPECT_DOUBLE_EQ(s.param_max_abs[0], 3.0);
  EXPECT_GE(s.global_param_max_abs, 3.0);
}

TEST(RangeAnalysis, GlobalsAreMaxOverGroups) {
  auto net = two_layer_net();
  Tensor batch(Shape{2, 4});
  Rng rng(7);
  batch.fill_uniform(rng, -1, 1);
  const RangeStats s = analyze_ranges(*net, batch);
  double expect = 0;
  for (double m : s.site_max_abs) expect = std::max(expect, m);
  EXPECT_DOUBLE_EQ(s.global_data_max_abs, expect);
  expect = 0;
  for (double m : s.param_max_abs) expect = std::max(expect, m);
  EXPECT_DOUBLE_EQ(s.global_param_max_abs, expect);
}

TEST(RangeAnalysis, SamplesAreCapped) {
  auto net = std::make_unique<nn::Network>("big");
  net->add<nn::InnerProduct>(64, 32);
  Rng rng(3);
  net->init_weights(rng);
  Tensor batch(Shape{512, 64});  // 32k input values
  batch.fill_uniform(rng, -1, 1);
  const RangeStats s = analyze_ranges(*net, batch);
  EXPECT_LE(s.site_samples[0].size(), 2 * kMaxCalibrationSamples);
  EXPECT_GE(s.site_samples[0].size(), 1000u);
  EXPECT_LE(s.global_data_samples.size(), 2 * kMaxCalibrationSamples);
}

TEST(RangeAnalysis, ReluSiteIsNonNegative) {
  auto net = two_layer_net();
  Tensor batch(Shape{8, 4});
  Rng rng(5);
  batch.fill_uniform(rng, -1, 1);
  const RangeStats s = analyze_ranges(*net, batch);
  // Site 2 is the ReLU output: samples must be >= 0.
  for (float v : s.site_samples[2]) EXPECT_GE(v, 0.0f);
}

}  // namespace
}  // namespace qnn::quant
