#include <gtest/gtest.h>

#include <vector>

#include "fixed/binary_format.h"

namespace qnn {
namespace {

TEST(BinaryFormat, PlusMinusOneScaleIsUnity) {
  BinaryFormat f(BinaryScaleMode::kPlusMinusOne);
  const std::vector<float> w{0.5f, -0.2f, 0.9f};
  EXPECT_DOUBLE_EQ(f.scale_for(w), 1.0);
}

TEST(BinaryFormat, MeanAbsScale) {
  BinaryFormat f(BinaryScaleMode::kMeanAbs);
  const std::vector<float> w{0.5f, -0.25f, 0.75f, -0.5f};
  EXPECT_DOUBLE_EQ(f.scale_for(w), 0.5);
}

TEST(BinaryFormat, EmptyOrZeroTensorFallsBackToUnity) {
  BinaryFormat f(BinaryScaleMode::kMeanAbs);
  EXPECT_DOUBLE_EQ(f.scale_for({}), 1.0);
  const std::vector<float> zeros(8, 0.0f);
  EXPECT_DOUBLE_EQ(f.scale_for(zeros), 1.0);
}

TEST(BinaryFormat, QuantizeIsSignTimesScale) {
  EXPECT_DOUBLE_EQ(BinaryFormat::quantize(0.3, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(BinaryFormat::quantize(-0.0001, 2.0), -2.0);
  // A 1-bit format has no zero: sign(0) -> +scale.
  EXPECT_DOUBLE_EQ(BinaryFormat::quantize(0.0, 1.0), 1.0);
}

TEST(BinaryFormat, OnlyTwoOutputValues) {
  BinaryFormat f(BinaryScaleMode::kMeanAbs);
  const std::vector<float> w{0.1f, -0.3f, 0.7f, -0.9f, 0.0f};
  const double s = f.scale_for(w);
  for (float v : w) {
    const double q = BinaryFormat::quantize(v, s);
    EXPECT_TRUE(q == s || q == -s);
  }
}

TEST(BinaryFormat, Describe) {
  EXPECT_EQ(BinaryFormat(BinaryScaleMode::kPlusMinusOne).to_string(),
            "binary[±1]");
  EXPECT_EQ(BinaryFormat(BinaryScaleMode::kMeanAbs).to_string(),
            "binary[±mean|w|]");
}

}  // namespace
}  // namespace qnn
