#include <gtest/gtest.h>

#include "hw/logic_model.h"
#include "util/check.h"

namespace qnn::hw {
namespace {

const Tech65& t = default_tech();

TEST(LogicModel, MultiplierAreaQuadraticInWidth) {
  const double a8 = int_multiplier_area(t, 8, 8);
  const double a16 = int_multiplier_area(t, 16, 16);
  EXPECT_DOUBLE_EQ(a16, 4 * a8);
  EXPECT_GT(a8, 100.0);  // plausible 65nm magnitudes (µm²)
  EXPECT_LT(a8, 2000.0);
}

TEST(LogicModel, MultiplierAsymmetricWidths) {
  EXPECT_DOUBLE_EQ(int_multiplier_area(t, 4, 16),
                   int_multiplier_area(t, 16, 4));
  EXPECT_LT(int_multiplier_area(t, 1, 16), int_multiplier_area(t, 8, 16));
}

TEST(LogicModel, AdderLinearInWidth) {
  EXPECT_DOUBLE_EQ(adder_area(t, 32), 2 * adder_area(t, 16));
}

TEST(LogicModel, BarrelShifterCheaperThanEquivalentMultiplier) {
  // The whole point of powers-of-two quantization (paper §IV-A3):
  // a 16-bit shifter replaces a 6×16 multiplier favourably.
  EXPECT_LT(barrel_shifter_area(t, 16, 5), int_multiplier_area(t, 16, 16));
}

TEST(LogicModel, SignNegateIsTiny) {
  // Binary weight block (paper Fig. 2(c)) is far cheaper than any
  // multiplier.
  EXPECT_LT(sign_negate_area(t, 16), int_multiplier_area(t, 4, 4) * 2);
}

TEST(LogicModel, RegisterAreaLinear) {
  EXPECT_DOUBLE_EQ(register_area(t, 100), 100 * t.reg_area_per_bit);
  EXPECT_DOUBLE_EQ(register_area(t, 0), 0.0);
}

TEST(LogicModel, AdderTreeCountsAllLevels) {
  // 4 leaves: 2 adders at width+1, 1 at width+2.
  const double expect = 2 * adder_area(t, 9) + 1 * adder_area(t, 10);
  EXPECT_DOUBLE_EQ(adder_tree_area(t, 4, 8), expect);
}

TEST(LogicModel, AdderTreeGrowsWithLeaves) {
  EXPECT_GT(adder_tree_area(t, 16, 8), adder_tree_area(t, 8, 8));
  EXPECT_GT(adder_tree_area(t, 16, 16), adder_tree_area(t, 16, 8));
}

TEST(LogicModel, InvalidArgsThrow) {
  EXPECT_THROW(int_multiplier_area(t, 0, 8), CheckError);
  EXPECT_THROW(adder_area(t, 0), CheckError);
  EXPECT_THROW(adder_tree_area(t, 1, 8), CheckError);
}

}  // namespace
}  // namespace qnn::hw
