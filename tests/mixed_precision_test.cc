#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "quant/mixed_precision.h"

namespace qnn::quant {
namespace {

struct Fixture {
  data::Split split;
  std::unique_ptr<nn::Network> net;

  Fixture() {
    data::SyntheticConfig dc;
    dc.num_train = 400;
    dc.num_test = 200;
    dc.seed = 31;
    split = data::make_mnist_like(dc);
    nn::ZooConfig zc;
    zc.channel_scale = 0.25;
    net = nn::make_lenet(zc);
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.batch_size = 25;
    tc.sgd.learning_rate = 0.02;
    nn::train(*net, split.train, tc);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(MixedPrecisionNetwork, PerLayerBitsApplied) {
  auto& f = fixture();
  // LeNet has 4 weight tensors: conv1, conv2, ip1, ip2.
  const std::vector<int> bits{8, 4, 2, 8};
  QuantizedNetwork qnet(*f.net, fixed_config(8, 8), bits);
  EXPECT_EQ(qnet.weight_quantizer(0).bits(), 8);   // conv1 w
  EXPECT_EQ(qnet.weight_quantizer(2).bits(), 4);   // conv2 w
  EXPECT_EQ(qnet.weight_quantizer(4).bits(), 2);   // ip1 w
  EXPECT_EQ(qnet.weight_quantizer(6).bits(), 8);   // ip2 w
  // Biases keep the uniform width.
  EXPECT_EQ(qnet.weight_quantizer(1).bits(), 8);
}

TEST(MixedPrecisionNetwork, WrongArityThrows) {
  auto& f = fixture();
  EXPECT_THROW(
      QuantizedNetwork(*f.net, fixed_config(8, 8), std::vector<int>{8, 8}),
      CheckError);
  EXPECT_THROW(QuantizedNetwork(*f.net, fixed_config(8, 8),
                                std::vector<int>(5, 8)),
               CheckError);
}

TEST(MixedPrecisionNetwork, RejectsNonFixedKinds) {
  auto& f = fixture();
  EXPECT_THROW(
      QuantizedNetwork(*f.net, binary_config(16), std::vector<int>(4, 8)),
      CheckError);
}

TEST(MixedPrecisionNetwork, ForwardWorksAfterCalibration) {
  auto& f = fixture();
  QuantizedNetwork qnet(*f.net, fixed_config(8, 8),
                        std::vector<int>{8, 6, 4, 8});
  qnet.calibrate(data::batch_images(f.split.train, 0, 32));
  const double acc = nn::evaluate(qnet, f.split.test);
  qnet.restore_masters();
  EXPECT_GT(acc, 50.0);  // mixed assignment remains functional
}

TEST(MeanWeightBits, WeightsByParamCount) {
  auto& f = fixture();
  // ip1 dominates LeNet's parameter count, so its width dominates the
  // mean.
  const double narrow_ip1 =
      mean_weight_bits(*f.net, std::vector<int>{8, 8, 2, 8});
  const double narrow_conv1 =
      mean_weight_bits(*f.net, std::vector<int>{2, 8, 8, 8});
  EXPECT_LT(narrow_ip1, narrow_conv1);
  EXPECT_LT(narrow_ip1, 4.0);
  EXPECT_GT(narrow_conv1, 7.5);
}

TEST(MixedSearch, FindsCompressiveAssignmentWithinBudget) {
  auto& f = fixture();
  MixedSearchConfig cfg;
  cfg.start_bits = 8;
  cfg.candidate_bits = {8, 6, 4};
  cfg.accuracy_budget = 3.0;
  cfg.eval_samples = 150;
  const MixedPrecisionResult r =
      search_mixed_precision(*f.net, f.split.train, f.split.test, cfg);
  ASSERT_EQ(r.weight_bits.size(), 4u);
  for (int b : r.weight_bits) {
    EXPECT_GE(b, 4);
    EXPECT_LE(b, 8);
  }
  // The search must respect the budget on its own eval subset.
  EXPECT_GE(r.ptq_accuracy, r.float_accuracy - cfg.accuracy_budget - 1e-9);
  // MNIST-like tolerates narrowing: some layer should drop below 8.
  EXPECT_LT(r.mean_weight_bits, 8.0);
  EXPECT_GT(r.search_evaluations, 0);
}

TEST(MixedSearch, ZeroBudgetStaysAtStart) {
  auto& f = fixture();
  MixedSearchConfig cfg;
  cfg.start_bits = 8;
  cfg.candidate_bits = {8, 2};
  cfg.accuracy_budget = -50.0;  // impossible budget: nothing accepted
  const MixedPrecisionResult r =
      search_mixed_precision(*f.net, f.split.train, f.split.test, cfg);
  for (int b : r.weight_bits) EXPECT_EQ(b, 8);
}

}  // namespace
}  // namespace qnn::quant
