// Unit tests for the deterministic parallel runtime: shard plans,
// inline fallbacks, exception policy, pool reuse, and nesting.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace qnn {
namespace {

TEST(MakeShards, CoversRangeContiguously) {
  const auto shards = make_shards(10, 4);
  ASSERT_EQ(shards.size(), 4u);
  std::int64_t expect_begin = 0;
  std::int64_t total = 0;
  for (const Shard& s : shards) {
    EXPECT_EQ(s.begin, expect_begin);
    EXPECT_GT(s.size(), 0);
    expect_begin = s.end;
    total += s.size();
  }
  EXPECT_EQ(total, 10);
  EXPECT_EQ(shards.back().end, 10);
}

TEST(MakeShards, EarlierShardsTakeRemainder) {
  // 10 = 3 + 3 + 2 + 2: remainder goes to the front.
  const auto shards = make_shards(10, 4);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards[0].size(), 3);
  EXPECT_EQ(shards[1].size(), 3);
  EXPECT_EQ(shards[2].size(), 2);
  EXPECT_EQ(shards[3].size(), 2);
}

TEST(MakeShards, CapsAtTotal) {
  const auto shards = make_shards(3, 16);
  ASSERT_EQ(shards.size(), 3u);
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(shards[static_cast<std::size_t>(i)].begin, i);
    EXPECT_EQ(shards[static_cast<std::size_t>(i)].end, i + 1);
  }
}

TEST(MakeShards, ZeroTotalYieldsNoShards) {
  EXPECT_TRUE(make_shards(0, 8).empty());
}

TEST(MakeShards, PlanIgnoresThreadCount) {
  // The determinism contract: the plan is a function of the problem
  // size only, so it cannot change when the pool is resized.
  const auto plan = make_shards(1000, kReductionShards);
  ThreadPool::set_global_threads(3);
  const auto plan2 = make_shards(1000, kReductionShards);
  ThreadPool::set_global_threads(ThreadPool::env_threads());
  ASSERT_EQ(plan.size(), plan2.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].begin, plan2[i].begin);
    EXPECT_EQ(plan[i].end, plan2[i].end);
  }
}

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> hits(8, 0);
  std::vector<std::int64_t> order;
  pool.run(8, [&](std::int64_t i) {
    ++hits[static_cast<std::size_t>(i)];
    order.push_back(i);
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  // The inline path runs serially in index order on the calling thread.
  std::vector<std::int64_t> expect(8);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(100);
  pool.run(100,
           [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyTaskSetIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.run(0, [&](std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, RethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Every task throws; the policy guarantees the recorded exception is
  // the lowest claimed index, and index 0 is always claimed first.
  try {
    pool.run(16, [](std::int64_t i) {
      throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "run() must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 0");
  }
}

TEST(ThreadPool, SkipsUnclaimedTasksAfterFailure) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.run(10000,
                        [&](std::int64_t i) {
                          if (i == 0) throw std::runtime_error("boom");
                          ++executed;
                        }),
               std::runtime_error);
  // Tasks claimed before the failure was flagged may finish, but the
  // bulk of the range is abandoned.
  EXPECT_LT(executed.load(), 10000);
}

TEST(ThreadPool, IsReusableAcrossRuns) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.run(17, [&](std::int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
  // Still usable after an exception.
  EXPECT_THROW(
      pool.run(4, [](std::int64_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> count{0};
  pool.run(5, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, NestedParallelRunExecutesInline) {
  ThreadPool::set_global_threads(4);
  std::atomic<int> outer{0};
  std::vector<std::vector<std::int64_t>> inner_order(4);
  parallel_run(4, [&](std::int64_t oi) {
    ++outer;
    EXPECT_TRUE(ThreadPool::in_worker());
    // The nested loop must degrade to serial index order on this thread.
    parallel_run(8, [&](std::int64_t ii) {
      inner_order[static_cast<std::size_t>(oi)].push_back(ii);
    });
  });
  ThreadPool::set_global_threads(ThreadPool::env_threads());
  EXPECT_EQ(outer.load(), 4);
  std::vector<std::int64_t> expect(8);
  std::iota(expect.begin(), expect.end(), 0);
  for (const auto& order : inner_order) EXPECT_EQ(order, expect);
}

TEST(ThreadPool, ParallelRunHandlesDegenerateCounts) {
  int hits = 0;
  parallel_run(0, [&](std::int64_t) { ++hits; });
  EXPECT_EQ(hits, 0);
  parallel_run(-3, [&](std::int64_t) { ++hits; });
  EXPECT_EQ(hits, 0);
  parallel_run(1, [&](std::int64_t i) {
    EXPECT_EQ(i, 0);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(ThreadPool, SetGlobalThreadsResizesPool) {
  ThreadPool::set_global_threads(5);
  EXPECT_EQ(ThreadPool::global().size(), 5);
  ThreadPool::set_global_threads(0);  // clamped to >= 1
  EXPECT_EQ(ThreadPool::global().size(), 1);
  ThreadPool::set_global_threads(ThreadPool::env_threads());
  EXPECT_EQ(ThreadPool::global().size(), ThreadPool::env_threads());
}

TEST(MakeShards, GrainStopsSplittingSmallLoops) {
  // 100 items at grain 200: the whole loop is below one grain of work,
  // so the plan is a single shard (which parallel_run executes inline).
  const auto one = make_shards(100, kReductionShards, 200);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 0);
  EXPECT_EQ(one[0].end, 100);
  // 1000 items at grain 64 support floor(1000 / 64) = 15 shards, one
  // below the kReductionShards cap.
  EXPECT_EQ(make_shards(1000, kReductionShards, 64).size(), 15u);
  // Ample work: the cap binds, grain is irrelevant.
  EXPECT_EQ(make_shards(1 << 20, kReductionShards, 64).size(),
            static_cast<std::size_t>(kReductionShards));
  // Grain never drops a shard below `grain` items (except the single-
  // shard plan, which may be the whole short loop).
  for (const Shard& s : make_shards(1000, kReductionShards, 64))
    EXPECT_GE(s.size(), 64);
}

TEST(MakeShards, GrainPlanIgnoresThreadCount) {
  const auto plan = make_shards(100000, kReductionShards, 4096);
  ThreadPool::set_global_threads(7);
  const auto plan2 = make_shards(100000, kReductionShards, 4096);
  ThreadPool::set_global_threads(ThreadPool::env_threads());
  ASSERT_EQ(plan.size(), plan2.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].begin, plan2[i].begin);
    EXPECT_EQ(plan[i].end, plan2[i].end);
  }
}

TEST(MakeShards, ShardGrainMath) {
  // grain = ceil(kMinShardWork / cost_per_item), with a defensive
  // fallback for nonsense costs.
  EXPECT_EQ(shard_grain(1), kMinShardWork);
  EXPECT_EQ(shard_grain(kMinShardWork), 1);
  EXPECT_EQ(shard_grain(kMinShardWork + 1), 1);
  EXPECT_EQ(shard_grain(kMinShardWork - 1), 2);
  EXPECT_EQ(shard_grain(3), (kMinShardWork + 2) / 3);
  EXPECT_EQ(shard_grain(0), kMinShardWork);
  EXPECT_EQ(shard_grain(-5), kMinShardWork);
}

TEST(ThreadPool, PaddedSlotsOccupyWholeCacheLines) {
  static_assert(sizeof(Padded<double>) == kCacheLineBytes);
  static_assert(alignof(Padded<double>) == kCacheLineBytes);
  static_assert(sizeof(Padded<std::int64_t>) == kCacheLineBytes);
  // Adjacent reduction slots land on distinct lines.
  std::vector<Padded<double>> slots(4);
  for (std::size_t i = 1; i < slots.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&slots[i - 1].v);
    const auto b = reinterpret_cast<std::uintptr_t>(&slots[i].v);
    EXPECT_GE(b - a, kCacheLineBytes);
  }
}

TEST(ThreadPool, ClaimBatchScalesWithWorkPerThread) {
  // count / (threads * kClaimFactor), clamped to [1, kClaimBatchMax].
  EXPECT_EQ(ThreadPool::claim_batch(16, 4), 1);
  EXPECT_EQ(ThreadPool::claim_batch(100, 4), 6);
  EXPECT_EQ(ThreadPool::claim_batch(1024, 4), 64);
  EXPECT_EQ(ThreadPool::claim_batch(1 << 20, 2), ThreadPool::kClaimBatchMax);
  EXPECT_EQ(ThreadPool::claim_batch(1, 8), 1);
  EXPECT_EQ(ThreadPool::claim_batch(0, 8), 1);
}

TEST(ThreadPool, BatchedClaimingCoversEveryIndexOnce) {
  // Counts straddling the batch boundaries of claim_batch(count, 4):
  // exactly-one-execution must hold regardless of how the range tiles
  // into batches.
  ThreadPool pool(4);
  for (const std::int64_t count :
       {std::int64_t{1}, std::int64_t{2}, std::int64_t{15}, std::int64_t{16},
        std::int64_t{17}, std::int64_t{63}, std::int64_t{64}, std::int64_t{65},
        std::int64_t{100}, std::int64_t{1000}, std::int64_t{4099}}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(count));
    pool.run(count,
             [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "count=" << count;
  }
}

TEST(ThreadPool, RethrowsMinimumThrownIndexUnderBatchedClaiming) {
  // Several tasks scattered across different claim batches throw; the
  // rethrown exception must carry the smallest index that actually
  // threw, not merely whichever failure was recorded first.
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::int64_t> threw;
  try {
    pool.run(1000, [&](std::int64_t i) {
      if (i % 97 == 13) {
        {
          std::lock_guard<std::mutex> lock(m);
          threw.push_back(i);
        }
        throw std::runtime_error(std::to_string(i));
      }
    });
    FAIL() << "run() must rethrow";
  } catch (const std::runtime_error& e) {
    ASSERT_FALSE(threw.empty());
    const std::int64_t lowest = *std::min_element(threw.begin(), threw.end());
    EXPECT_EQ(std::stoll(e.what()), lowest);
  }
}

TEST(ThreadPool, StressResizeInterleavedWithRuns) {
  // Pool teardown/rebuild interleaved with real work: every run must
  // still execute each index exactly once, and no resize may deadlock
  // against workers mid-spin or mid-sleep.
  for (int round = 0; round < 24; ++round) {
    ThreadPool::set_global_threads((round % 4) + 1);
    std::atomic<std::int64_t> sum{0};
    parallel_run(257, [&](std::int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 257 * 256 / 2) << "round " << round;
  }
  ThreadPool::set_global_threads(ThreadPool::env_threads());
}

TEST(ThreadPool, SpinOnlyWhenPoolFitsHardware) {
  // A one-thread pool trivially fits; a pool one wider than the machine
  // must not spin (idle spinners would preempt the working threads).
  ThreadPool fits(1);
  EXPECT_EQ(fits.spin_iterations(), ThreadPool::kWorkerSpinIters);
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  ThreadPool oversub(hw + 1);
  EXPECT_EQ(oversub.spin_iterations(), 0);
}

class EnvThreadsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("QNN_THREADS");
    if (prev != nullptr) saved_ = prev;
    had_ = prev != nullptr;
  }
  void TearDown() override {
    if (had_) {
      setenv("QNN_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("QNN_THREADS");
    }
  }
  static int fallback() {
    return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  bool had_ = false;
  std::string saved_;
};

TEST_F(EnvThreadsTest, ParsesValidValues) {
  setenv("QNN_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::env_threads(), 3);
  setenv("QNN_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::env_threads(), 1);
  unsetenv("QNN_THREADS");
  EXPECT_EQ(ThreadPool::env_threads(), fallback());
}

TEST_F(EnvThreadsTest, RejectsZero) {
  setenv("QNN_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::env_threads(), fallback());
}

TEST_F(EnvThreadsTest, RejectsNegative) {
  setenv("QNN_THREADS", "-3", 1);
  EXPECT_EQ(ThreadPool::env_threads(), fallback());
}

TEST_F(EnvThreadsTest, RejectsGarbage) {
  setenv("QNN_THREADS", "abc", 1);
  EXPECT_EQ(ThreadPool::env_threads(), fallback());
  setenv("QNN_THREADS", "", 1);
  EXPECT_EQ(ThreadPool::env_threads(), fallback());
  setenv("QNN_THREADS", "4x", 1);
  EXPECT_EQ(ThreadPool::env_threads(), fallback());
}

TEST_F(EnvThreadsTest, RejectsExponentAndOverflow) {
  // "1e9" is not an integer (trailing junk), and huge plain integers
  // exceed kMaxEnvThreads; neither may be silently truncated atoi-style.
  setenv("QNN_THREADS", "1e9", 1);
  EXPECT_EQ(ThreadPool::env_threads(), fallback());
  setenv("QNN_THREADS", "1000000000", 1);
  EXPECT_EQ(ThreadPool::env_threads(), fallback());
  setenv("QNN_THREADS", "99999999999999999999", 1);
  EXPECT_EQ(ThreadPool::env_threads(), fallback());
}

TEST(ThreadPool, ParallelForShardsMatchesPlan) {
  const auto plan = make_shards(100, kReductionShards);
  std::vector<Shard> seen(plan.size());
  parallel_for_shards(100, kReductionShards,
                      [&](std::size_t si, std::int64_t begin,
                          std::int64_t end) {
                        seen[si] = Shard{begin, end};
                      });
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(seen[i].begin, plan[i].begin);
    EXPECT_EQ(seen[i].end, plan[i].end);
  }
}

}  // namespace
}  // namespace qnn
