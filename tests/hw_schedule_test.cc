#include <gtest/gtest.h>

#include "exp/sweep.h"
#include "hw/schedule.h"
#include "nn/zoo.h"

namespace qnn::hw {
namespace {

Accelerator make(const quant::PrecisionConfig& p) {
  AcceleratorConfig c;
  c.precision = p;
  return Accelerator(c);
}

std::vector<nn::LayerDesc> lenet_descs() {
  return nn::make_lenet()->describe(Shape{1, 1, 28, 28});
}

TEST(Schedule, ConvLayerTileCycles) {
  // LeNet conv1 on the 16x16 tile: 24*24 positions, ceil(20/16)=2 output
  // tiles, ceil(25/16)=2 fan-in tiles, +2 fill cycles per tile pass.
  const auto descs = lenet_descs();
  const Accelerator acc = make(quant::fixed_config(16, 16));
  const auto sched = schedule_network(descs, acc);
  ASSERT_EQ(sched.layers.size(), descs.size());
  const auto& conv1 = sched.layers[0];
  EXPECT_EQ(conv1.kind, "conv");
  EXPECT_EQ(conv1.cycles, 576 * 2 * 2 + 2 * 2);
}

TEST(Schedule, InnerProductTileCycles) {
  const auto descs = lenet_descs();
  const Accelerator acc = make(quant::fixed_config(16, 16));
  const auto sched = schedule_network(descs, acc);
  // ip1: 500 outputs (32 tiles of 16), 800 inputs (50 tiles).
  const auto& ip1 = sched.layers[4];
  EXPECT_EQ(ip1.kind, "inner_product");
  EXPECT_EQ(ip1.cycles, 32 * 50 + 32 * 2);
}

TEST(Schedule, ReluIsFree) {
  const auto descs = lenet_descs();
  const auto sched =
      schedule_network(descs, make(quant::fixed_config(16, 16)));
  EXPECT_EQ(sched.layers[5].kind, "relu");
  EXPECT_EQ(sched.layers[5].cycles, 0);
}

TEST(Schedule, UtilizationAtMostOne) {
  const auto sched =
      schedule_network(lenet_descs(), make(quant::float_config()));
  for (const auto& l : sched.layers) {
    EXPECT_LE(l.utilization, 1.0 + 1e-9) << l.layer_name;
    EXPECT_GE(l.utilization, 0.0);
  }
}

TEST(Schedule, RuntimeNearMacBound) {
  // Total cycles should be within ~2.5x of the pure MAC lower bound
  // (tiling losses only), matching the paper's near-constant runtimes.
  const auto descs = lenet_descs();
  std::int64_t macs = 0;
  for (const auto& d : descs) macs += d.macs;
  const auto sched =
      schedule_network(descs, make(quant::fixed_config(16, 16)));
  const std::int64_t bound = macs / 256;
  EXPECT_GE(sched.total_cycles, bound);
  EXPECT_LE(sched.total_cycles, bound * 5 / 2);
}

TEST(Schedule, RuntimeIndependentOfPrecision) {
  // Paper §V-B: "processing time per image changes very marginally among
  // different precisions" — only the binary net's shorter pipeline
  // shaves fill cycles.
  const auto descs = lenet_descs();
  const auto t16 =
      schedule_network(descs, make(quant::fixed_config(16, 16)));
  const auto t32 = schedule_network(descs, make(quant::float_config()));
  EXPECT_EQ(t16.total_cycles, t32.total_cycles);
  const auto bin = schedule_network(descs, make(quant::binary_config(16)));
  EXPECT_LT(bin.total_cycles, t16.total_cycles);
  EXPECT_GT(bin.total_cycles, t16.total_cycles * 9 / 10);
}

TEST(Schedule, EnergyIsPowerTimesRuntime) {
  const Accelerator acc = make(quant::fixed_config(16, 16));
  const auto sched = schedule_network(lenet_descs(), acc);
  const double us = sched.runtime_us(acc);
  EXPECT_NEAR(sched.energy_uj(acc), acc.power_mw() * us * 1e-3, 1e-9);
  // 250 MHz: cycles * 4ns.
  EXPECT_NEAR(us, static_cast<double>(sched.total_cycles) * 0.004, 1e-6);
}

TEST(Schedule, LenetFloatEnergyNearPaper) {
  // Paper Table IV: 60.74 µJ per MNIST image at float precision. Our
  // idealized schedule lands in the same regime (±35%).
  const Accelerator acc = make(quant::float_config());
  const auto sched = schedule_network(lenet_descs(), acc);
  EXPECT_NEAR(sched.energy_uj(acc), 60.74, 0.35 * 60.74);
}

TEST(Schedule, ConvnetCostsMoreThanLenet) {
  // Paper Table IV: SVHN ≈ 754 µJ vs MNIST ≈ 61 µJ at float — an order
  // of magnitude, driven by the 512-channel conv.
  const Accelerator acc = make(quant::float_config());
  const auto lenet = schedule_network(lenet_descs(), acc);
  const auto convnet = schedule_network(
      nn::make_convnet()->describe(Shape{1, 3, 32, 32}), acc);
  EXPECT_GT(convnet.energy_uj(acc), 7 * lenet.energy_uj(acc));
}

TEST(Schedule, EnergySavingsTrackPowerSavings) {
  // Table IV's energy-saving column ≈ Table III's power-saving column.
  const auto descs = lenet_descs();
  const Accelerator fp = make(quant::float_config());
  const double base = schedule_network(descs, fp).energy_uj(fp);
  for (const auto& cfg : quant::paper_precisions()) {
    const Accelerator acc = make(cfg);
    const double e = schedule_network(descs, acc).energy_uj(acc);
    const double e_save = saving_percent(base, e);
    const double p_save = saving_percent(fp.power_mw(), acc.power_mw());
    EXPECT_NEAR(e_save, p_save, 2.5) << cfg.label();
  }
}

TEST(Schedule, BandwidthWallStallsBigFcLayers) {
  // With finite DMA bandwidth, ALEX++'s 2M-weight fc dominates; with
  // infinite bandwidth it does not (the ablation of DESIGN.md §5).
  const auto descs = nn::make_alex_plus_plus()->describe(Shape{1, 3, 32, 32});
  const Accelerator acc = make(quant::fixed_config(16, 16));
  ScheduleOptions limited;
  limited.dma_bits_per_cycle = 256;
  const auto ideal = schedule_network(descs, acc);
  const auto stalled = schedule_network(descs, acc, limited);
  EXPECT_GT(stalled.total_cycles, ideal.total_cycles * 11 / 10);
}

TEST(Schedule, SmallFcFitsInSbNoStall) {
  // LeNet's ip2 (5k weights at 16 bits) fits in Sb: no stall even with
  // tight bandwidth.
  const auto descs = lenet_descs();
  const Accelerator acc = make(quant::fixed_config(16, 16));
  ScheduleOptions limited;
  limited.dma_bits_per_cycle = 64;
  const auto ideal = schedule_network(descs, acc);
  const auto stalled = schedule_network(descs, acc, limited);
  // Only layers exceeding Sb stall; LeNet ip1 does exceed it, ip2 not.
  EXPECT_EQ(stalled.layers.back().cycles, ideal.layers.back().cycles);
}

TEST(Schedule, PerLayerCyclesSumToTotal) {
  const auto sched =
      schedule_network(lenet_descs(), make(quant::fixed_config(8, 8)));
  std::int64_t sum = 0;
  for (const auto& l : sched.layers) sum += l.cycles;
  EXPECT_EQ(sum, sched.total_cycles);
}

}  // namespace
}  // namespace qnn::hw
