#include <gtest/gtest.h>

#include "config/builders.h"
#include "config/config_node.h"
#include "util/check.h"

namespace qnn::config {
namespace {

TEST(ConfigParse, ScalarsAndComments) {
  const ConfigNode c = parse_config(
      "epochs: 5      # five of them\n"
      "lr: 0.02\n"
      "name: lenet\n");
  EXPECT_EQ(c.get_int("epochs"), 5);
  EXPECT_DOUBLE_EQ(c.get_double("lr"), 0.02);
  EXPECT_EQ(c.get("name"), "lenet");
  EXPECT_FALSE(c.has("missing"));
  EXPECT_EQ(c.get_or("missing", "x"), "x");
  EXPECT_EQ(c.get_int_or("missing", 7), 7);
}

TEST(ConfigParse, NestedBlocks) {
  const ConfigNode c = parse_config(
      "train { epochs: 3 inner { deep: 1 } }\n"
      "layer { type: conv }\n"
      "layer { type: relu }\n");
  EXPECT_TRUE(c.has_block("train"));
  EXPECT_EQ(c.block("train").get_int("epochs"), 3);
  EXPECT_EQ(c.block("train").block("inner").get_int("deep"), 1);
  ASSERT_EQ(c.blocks("layer").size(), 2u);
  EXPECT_EQ(c.blocks("layer")[1].get("type"), "relu");
  EXPECT_TRUE(c.blocks("nothing").empty());
}

TEST(ConfigParse, RepeatedScalars) {
  const ConfigNode c = parse_config("tag: a\ntag: b\n");
  EXPECT_EQ(c.get_all("tag").size(), 2u);
  EXPECT_THROW(c.get("tag"), CheckError);  // ambiguous single get
}

TEST(ConfigParse, ValueStopsAtBraceAndComment) {
  const ConfigNode c = parse_config("layer { type: conv }");
  EXPECT_EQ(c.blocks("layer")[0].get("type"), "conv");
}

TEST(ConfigParse, StripsUtf8ByteOrderMarkAndAcceptsCrlf) {
  // Config files hand-edited on Windows arrive with a BOM and CRLF line
  // endings; both must parse as if absent.
  const ConfigNode c = parse_config(
      "\xEF\xBB\xBF"
      "epochs: 5\r\n"
      "train { lr: 0.02 }\r\n");
  EXPECT_EQ(c.get_int("epochs"), 5);
  EXPECT_DOUBLE_EQ(c.block("train").get_double("lr"), 0.02);

  // The BOM does not shift error line numbers.
  try {
    parse_config("\xEF\xBB\xBFok: 1\n}", "win.cfg");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("win.cfg:2"), std::string::npos);
  }
}

TEST(ConfigParse, Errors) {
  EXPECT_THROW(parse_config("}"), CheckError);
  EXPECT_THROW(parse_config("block {"), CheckError);
  EXPECT_THROW(parse_config("key:\n"), CheckError);
  EXPECT_THROW(parse_config("123: x"), CheckError);
  EXPECT_THROW(parse_config("name value"), CheckError);
}

TEST(ConfigParse, ErrorsCarrySourceAndLine) {
  try {
    parse_config("epochs: 5\nlr: 0.02\n}", "lenet.cfg");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lenet.cfg:3"), std::string::npos);
    EXPECT_NE(what.find("config parse error"), std::string::npos);
  }
  // The default source name still gives a line number.
  try {
    parse_config("ok: 1\n\nbad:\n");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("<config>:3"), std::string::npos);
  }
}

TEST(ConfigParse, TypedAccessErrors) {
  const ConfigNode c = parse_config("x: abc\nb: maybe\n");
  EXPECT_THROW(c.get_int("x"), std::exception);
  EXPECT_THROW(c.get_bool_or("b", false), CheckError);
  EXPECT_THROW(c.get("absent"), CheckError);
  EXPECT_THROW(c.block("absent"), CheckError);
}

TEST(Builders, ZooPreset) {
  const ConfigNode c =
      parse_config("preset: lenet\nchannel_scale: 0.25\n");
  BuiltNetwork built = build_network(c);
  EXPECT_EQ(built.network->name(), "lenet");
  EXPECT_EQ(built.input_shape, Shape({1, 1, 28, 28}));
  Tensor in(built.input_shape);
  EXPECT_EQ(built.network->forward(in).shape(), Shape({1, 10}));
}

TEST(Builders, CustomNetworkStack) {
  const ConfigNode c = parse_config(
      "input: 1x12x12\n"
      "layer { type: conv out: 4 kernel: 3 pad: 1 }\n"
      "layer { type: maxpool kernel: 2 }\n"
      "layer { type: relu }\n"
      "layer { type: lrn local_size: 3 }\n"
      "layer { type: dropout p: 0.1 }\n"
      "layer { type: ip out: 6 }\n"
      "layer { type: tanh }\n"
      "layer { type: ip out: 2 }\n");
  BuiltNetwork built = build_network(c);
  Tensor in(Shape{2, 1, 12, 12});
  EXPECT_EQ(built.network->forward(in).shape(), Shape({2, 2}));
  EXPECT_EQ(built.network->num_layers(), 8u);
}

TEST(Builders, CustomNetworkInfersChannels) {
  const ConfigNode c = parse_config(
      "input: 3x8x8\n"
      "layer { type: conv out: 5 kernel: 3 }\n"
      "layer { type: conv out: 2 kernel: 3 }\n"
      "layer { type: ip out: 4 }\n");
  BuiltNetwork built = build_network(c);
  Tensor in(Shape{1, 3, 8, 8});
  EXPECT_EQ(built.network->forward(in).shape(), Shape({1, 4}));
}

TEST(Builders, UnknownLayerTypeThrows) {
  const ConfigNode c = parse_config(
      "input: 1x4x4\nlayer { type: transformer }\n");
  EXPECT_THROW(build_network(c), CheckError);
}

TEST(Builders, DatasetAndTrain) {
  const ConfigNode c = parse_config(
      "dataset { name: mnist train: 30 test: 10 seed: 9 }\n"
      "train { epochs: 2 batch: 8 lr: 0.5 momentum: 0 lr_step: 1 }\n");
  const auto split = build_dataset(c.block("dataset"));
  EXPECT_EQ(split.train.size(), 30);
  EXPECT_EQ(split.test.size(), 10);
  const auto tc = build_train_config(c.block("train"));
  EXPECT_EQ(tc.epochs, 2);
  EXPECT_EQ(tc.batch_size, 8);
  EXPECT_DOUBLE_EQ(tc.sgd.learning_rate, 0.5);
  EXPECT_DOUBLE_EQ(tc.sgd.momentum, 0.0);
  EXPECT_EQ(tc.sgd.step_epochs, 1);
}

TEST(Builders, PrecisionVariants) {
  const ConfigNode c = parse_config(
      "a { kind: float }\n"
      "b { kind: fixed weight_bits: 8 input_bits: 4 }\n"
      "c { kind: pow2 }\n"
      "d { kind: binary scale: one }\n"
      "e { kind: fixed weight_bits: 4 input_bits: 4 radix: global "
      "rounding: stochastic }\n");
  EXPECT_TRUE(build_precision(c.block("a")).is_float());
  const auto b = build_precision(c.block("b"));
  EXPECT_EQ(b.weight_bits, 8);
  EXPECT_EQ(b.input_bits, 4);
  EXPECT_EQ(build_precision(c.block("c")).kind,
            quant::PrecisionKind::kPow2);
  EXPECT_EQ(build_precision(c.block("d")).binary_scale,
            BinaryScaleMode::kPlusMinusOne);
  const auto e = build_precision(c.block("e"));
  EXPECT_EQ(e.radix_policy, quant::RadixPolicy::kGlobal);
  EXPECT_EQ(e.rounding, Rounding::kStochastic);
}

TEST(Builders, PrecisionErrors) {
  EXPECT_THROW(build_precision(parse_config("kind: fp8")), CheckError);
  EXPECT_THROW(build_precision(parse_config(
                   "kind: fixed weight_bits: 8 input_bits: 8 radix: "
                   "sideways")),
               CheckError);
}

TEST(Builders, SampleConfigFilesParse) {
  // The shipped example configs must stay valid.
  for (const char* path : {"examples/configs/lenet_fixed8.cfg",
                           "examples/configs/custom_net.cfg"}) {
    SCOPED_TRACE(path);
    std::string full = std::string(QNN_SOURCE_DIR) + "/" + path;
    const ConfigNode root = load_config(full);
    EXPECT_TRUE(root.has_block("network"));
    EXPECT_TRUE(root.has_block("dataset"));
    EXPECT_TRUE(root.has_block("train"));
    EXPECT_FALSE(root.blocks("precision").empty());
    (void)build_network(root.block("network"));
    for (const auto& p : root.blocks("precision"))
      (void)build_precision(p);
  }
}

}  // namespace
}  // namespace qnn::config
