#include <gtest/gtest.h>

#include "hw/accelerator.h"
#include "util/check.h"

namespace qnn::hw {
namespace {

Accelerator make(const quant::PrecisionConfig& p) {
  AcceleratorConfig c;
  c.precision = p;
  return Accelerator(c);
}

TEST(Accelerator, BufferBitsScaleWithPrecision) {
  const auto b16 = make(quant::fixed_config(16, 16)).buffer_bits();
  EXPECT_EQ(b16.bin, 64 * 16 * 16);
  EXPECT_EQ(b16.bout, 64 * 16 * 16);
  EXPECT_EQ(b16.sb, 64 * 256 * 16);
  const auto b8 = make(quant::fixed_config(8, 8)).buffer_bits();
  EXPECT_EQ(b8.total() * 2, b16.total());
}

TEST(Accelerator, MixedPrecisionBuffers) {
  // Binary (1,16): weights 1 bit in Sb, data 16 bits in Bin/Bout.
  const auto b = make(quant::binary_config(16)).buffer_bits();
  EXPECT_EQ(b.sb, 64 * 256 * 1);
  EXPECT_EQ(b.bin, 64 * 16 * 16);
}

TEST(Accelerator, ProductWidths) {
  EXPECT_EQ(make(quant::float_config()).product_bits(), 32);
  EXPECT_EQ(make(quant::fixed_config(16, 16)).product_bits(), 32);
  EXPECT_EQ(make(quant::fixed_config(8, 8)).product_bits(), 16);
  EXPECT_EQ(make(quant::pow2_config(6, 16)).product_bits(), 18);
  EXPECT_EQ(make(quant::binary_config(16)).product_bits(), 17);
}

TEST(Accelerator, AccumulatorAddsTreeCarry) {
  // 16 synapses -> +4 bits.
  EXPECT_EQ(make(quant::fixed_config(8, 8)).accumulator_bits(), 20);
}

TEST(Accelerator, BinaryMergesPipelineStages) {
  AcceleratorConfig c;
  c.precision = quant::binary_config(16);
  EXPECT_EQ(c.pipeline_depth(), 2);
  c.precision = quant::fixed_config(8, 8);
  EXPECT_EQ(c.pipeline_depth(), 3);
}

TEST(Accelerator, AreaMonotoneInPrecision) {
  const double a32 = make(quant::fixed_config(32, 32)).area_mm2();
  const double a16 = make(quant::fixed_config(16, 16)).area_mm2();
  const double a8 = make(quant::fixed_config(8, 8)).area_mm2();
  const double a4 = make(quant::fixed_config(4, 4)).area_mm2();
  EXPECT_GT(a32, a16);
  EXPECT_GT(a16, a8);
  EXPECT_GT(a8, a4);
}

TEST(Accelerator, FloatCostsMoreThanFixed32) {
  // Same storage, pricier datapath (paper Table III: 16.74 vs 14.13).
  EXPECT_GT(make(quant::float_config()).area_mm2(),
            make(quant::fixed_config(32, 32)).area_mm2());
  EXPECT_GT(make(quant::float_config()).power_mw(),
            make(quant::fixed_config(32, 32)).power_mw());
}

TEST(Accelerator, OrderingsMatchTableIII) {
  // pow2 (6,16) cheaper than fixed (8,8); binary cheapest of all.
  const double p2 = make(quant::pow2_config()).power_mw();
  const double f8 = make(quant::fixed_config(8, 8)).power_mw();
  const double bin = make(quant::binary_config()).power_mw();
  EXPECT_LT(p2, f8);
  EXPECT_LT(bin, p2);
  EXPECT_LT(make(quant::pow2_config()).area_mm2(),
            make(quant::fixed_config(8, 8)).area_mm2());
}

TEST(Accelerator, MemoryDominatesAreaAndPower) {
  // Paper §V-B: buffers are 76–96% of area and 75–93% of power.
  for (const auto& cfg : quant::paper_precisions()) {
    const Accelerator acc = make(cfg);
    const auto& m = acc.metrics();
    const double area_frac = m.area_um2.memory / m.area_um2.total();
    const double power_frac = m.power_mw.memory / m.power_mw.total();
    EXPECT_GT(area_frac, 0.55) << cfg.label();
    EXPECT_LT(area_frac, 0.97) << cfg.label();
    EXPECT_GT(power_frac, 0.5) << cfg.label();
  }
}

TEST(Accelerator, BreakdownSumsToTotal) {
  const Accelerator acc = make(quant::fixed_config(16, 16));
  const Breakdown& a = acc.metrics().area_um2;
  EXPECT_NEAR(a.total(),
              a.memory + a.registers + a.combinational + a.buf_inv, 1e-9);
  EXPECT_NEAR(acc.area_mm2() * 1e6, a.total(), 1e-3);
}

TEST(Accelerator, SavingPercent) {
  EXPECT_DOUBLE_EQ(saving_percent(100.0, 25.0), 75.0);
  EXPECT_DOUBLE_EQ(saving_percent(100.0, 100.0), 0.0);
  EXPECT_LT(saving_percent(100.0, 120.0), 0.0);
  EXPECT_THROW(saving_percent(0.0, 1.0), qnn::CheckError);
}

TEST(Accelerator, DescribeMentionsPrecision) {
  const Accelerator acc = make(quant::pow2_config());
  EXPECT_NE(acc.describe().find("Powers of Two"), std::string::npos);
}

TEST(Accelerator, CustomGeometryScales) {
  AcceleratorConfig small;
  small.precision = quant::fixed_config(16, 16);
  small.neurons = 8;
  small.synapses_per_neuron = 8;
  AcceleratorConfig big;
  big.precision = quant::fixed_config(16, 16);
  const double a_small = Accelerator(small).area_mm2();
  const double a_big = Accelerator(big).area_mm2();
  EXPECT_LT(a_small, a_big);
  EXPECT_EQ(small.macs_per_cycle(), 64);
}

}  // namespace
}  // namespace qnn::hw
