// Property tests for the fault-model value codecs.
//
// For every storage format the single-bit-flip map must be closed over
// the representable set (a flip can never produce a value the format
// cannot store) and must be an involution at the encoding level:
// flipping the same bit twice restores the original value. These hold
// by construction for raw two's-complement words; the codecs re-encode
// through the *value* domain on every call, so the properties are worth
// checking at extreme radix points (all-fractional, negative frac_bits,
// frac_bits > total_bits) and at the saturation boundaries where
// to_raw clamps.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "faults/fault_model.h"
#include "fixed/fixed_format.h"
#include "fixed/pow2_format.h"

namespace qnn::faults {
namespace {

// Formats spanning the radix-point freedom the paper exploits: ordinary
// Q3.4, all-fractional (integer_bits < 0), coarser-than-integer grids
// (frac_bits < 0), sub-unit micro-grids (frac_bits > total_bits), and a
// full 16-bit word.
std::vector<FixedPointFormat> extreme_fixed_formats() {
  return {
      FixedPointFormat(8, 4),    // Q3.4 — the common case
      FixedPointFormat(4, 4),    // integer_bits = -1: |v| < 0.5
      FixedPointFormat(8, -2),   // step = 4: grid coarser than 1
      FixedPointFormat(6, 10),   // frac_bits > total_bits
      FixedPointFormat(16, 16),  // widest paper config, all fractional
      FixedPointFormat(16, -4),  // wide word, huge range
      FixedPointFormat(2, 0),    // minimal width: raws {-2,-1,0,1}
  };
}

// Visit every raw code for narrow formats and a strided sample (always
// including both saturation endpoints) for 16-bit ones.
template <typename Fn>
void for_each_raw(const FixedPointFormat& fmt, Fn&& fn) {
  const std::int64_t span = fmt.raw_max() - fmt.raw_min() + 1;
  const std::int64_t stride = span > 4096 ? 257 : 1;  // odd: hits both ends
  for (std::int64_t raw = fmt.raw_min(); raw <= fmt.raw_max(); raw += stride)
    fn(raw);
  fn(fmt.raw_max());
}

TEST(CodecProperty, FixedFlipStaysRepresentableAtExtremeRadixPoints) {
  for (const FixedPointFormat& fmt : extreme_fixed_formats()) {
    const FixedCodec codec(fmt);
    for_each_raw(fmt, [&](std::int64_t raw) {
      const float v = static_cast<float>(fmt.from_raw(raw));
      ASSERT_TRUE(fmt.representable(v)) << fmt.to_string() << " raw " << raw;
      for (int bit = 0; bit < codec.bits(); ++bit) {
        const float flipped = codec.flip(v, bit);
        ASSERT_TRUE(fmt.representable(flipped))
            << fmt.to_string() << " raw " << raw << " bit " << bit;
        ASSERT_GE(flipped, static_cast<float>(fmt.min_value()));
        ASSERT_LE(flipped, static_cast<float>(fmt.max_value()));
      }
    });
  }
}

TEST(CodecProperty, FixedFlipIsInvolutionAtExtremeRadixPoints) {
  for (const FixedPointFormat& fmt : extreme_fixed_formats()) {
    const FixedCodec codec(fmt);
    for_each_raw(fmt, [&](std::int64_t raw) {
      const float v = static_cast<float>(fmt.from_raw(raw));
      for (int bit = 0; bit < codec.bits(); ++bit)
        ASSERT_EQ(codec.flip(codec.flip(v, bit), bit), v)
            << fmt.to_string() << " raw " << raw << " bit " << bit;
    });
  }
}

TEST(CodecProperty, FixedFlipSaturatesOffGridInputs) {
  // A value beyond the representable range first saturates to the
  // boundary code, so its flips match the boundary's flips exactly.
  for (const FixedPointFormat& fmt : extreme_fixed_formats()) {
    const FixedCodec codec(fmt);
    const float lo = static_cast<float>(fmt.min_value());
    const float hi = static_cast<float>(fmt.max_value());
    for (int bit = 0; bit < codec.bits(); ++bit) {
      EXPECT_EQ(codec.flip(1e30f, bit), codec.flip(hi, bit))
          << fmt.to_string() << " bit " << bit;
      EXPECT_EQ(codec.flip(-1e30f, bit), codec.flip(lo, bit))
          << fmt.to_string() << " bit " << bit;
    }
  }
}

TEST(CodecProperty, FixedSignBitFlipCrossesZeroAtBoundaries) {
  for (const FixedPointFormat& fmt : extreme_fixed_formats()) {
    const FixedCodec codec(fmt);
    const int sign_bit = fmt.total_bits() - 1;
    // raw_min (1000...0) flips to raw 0; raw_max (0111...1) flips to -1.
    EXPECT_EQ(codec.flip(static_cast<float>(fmt.min_value()), sign_bit), 0.0f)
        << fmt.to_string();
    EXPECT_EQ(codec.flip(static_cast<float>(fmt.max_value()), sign_bit),
              static_cast<float>(-fmt.step()))
        << fmt.to_string();
  }
}

TEST(CodecProperty, Pow2AllCodesClosedUnderFlips) {
  for (const Pow2Format& fmt :
       {Pow2Format(6, 0), Pow2Format(4, 3), Pow2Format(3, -8),
        Pow2Format(2, 0), Pow2Format(8, -1)}) {
    const Pow2Codec codec(fmt);
    const std::int64_t num_raws = std::int64_t{1} << fmt.total_bits();
    for (std::int64_t raw = 0; raw < num_raws; ++raw) {
      const float v = static_cast<float>(fmt.from_raw(raw));
      for (int bit = 0; bit < codec.bits(); ++bit) {
        const float flipped = codec.flip(v, bit);
        // Closure: every flip result is exactly representable.
        ASSERT_EQ(static_cast<float>(fmt.quantize(flipped)), flipped)
            << fmt.to_string() << " raw " << raw << " bit " << bit;
        ASSERT_LE(std::fabs(flipped), static_cast<float>(fmt.max_value()));
      }
    }
  }
}

TEST(CodecProperty, Pow2FlipIsInvolutionExceptThroughSignedZero) {
  // Pow2Codec re-encodes through the value domain, and value zero cannot
  // carry a sign: a code-bit flip that zeroes a *negative* weight loses
  // the sign bit, so flipping back yields +magnitude. That is the one
  // sanctioned exception; everywhere else the flip is an involution.
  for (const Pow2Format& fmt :
       {Pow2Format(6, 0), Pow2Format(4, 3), Pow2Format(3, -8),
        Pow2Format(2, 0)}) {
    const Pow2Codec codec(fmt);
    const std::int64_t num_raws = std::int64_t{1} << fmt.total_bits();
    for (std::int64_t raw = 0; raw < num_raws; ++raw) {
      const float v = static_cast<float>(fmt.from_raw(raw));
      for (int bit = 0; bit < codec.bits(); ++bit) {
        const float flipped = codec.flip(v, bit);
        const float back = codec.flip(flipped, bit);
        if (flipped == 0.0f && v < 0.0f) {
          EXPECT_EQ(back, -v)
              << fmt.to_string() << " raw " << raw << " bit " << bit;
        } else {
          EXPECT_EQ(back, v)
              << fmt.to_string() << " raw " << raw << " bit " << bit;
        }
      }
    }
  }
}

TEST(CodecProperty, FloatFlipIsInvolutionIncludingDenormals) {
  const FloatCodec codec;
  const std::vector<float> values = {
      0.0f,
      -0.0f,
      1.0f,
      -3.5f,
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::min(),         // smallest normal
      std::numeric_limits<float>::min() / 2.0f,  // denormal
      std::numeric_limits<float>::max(),
      std::numeric_limits<float>::lowest(),
  };
  for (float v : values) {
    for (int bit = 0; bit < codec.bits(); ++bit) {
      const float once = codec.flip(v, bit);
      const float twice = codec.flip(once, bit);
      // Compare bit patterns: NaN != NaN and 0.0f == -0.0f would both
      // report the wrong thing at the value level.
      std::uint32_t a, b;
      std::memcpy(&a, &v, sizeof a);
      std::memcpy(&b, &twice, sizeof b);
      ASSERT_EQ(a, b) << "value " << v << " bit " << bit;
    }
  }
}

TEST(CodecProperty, FloatFlipAtDenormalBoundary) {
  const FloatCodec codec;
  // Flipping bit 0 of +0.0 yields the smallest denormal and back.
  const float denorm = codec.flip(0.0f, 0);
  EXPECT_EQ(denorm, std::numeric_limits<float>::denorm_min());
  EXPECT_EQ(codec.flip(denorm, 0), 0.0f);
  // Flipping bit 23 of the largest denormal crosses into normal range.
  const float largest_denorm =
      std::nextafterf(std::numeric_limits<float>::min(), 0.0f);
  const float crossed = codec.flip(largest_denorm, 23);
  EXPECT_TRUE(std::isnormal(crossed));
  EXPECT_EQ(codec.flip(crossed, 23), largest_denorm);
}

TEST(CodecProperty, BinaryFlipIsInvolution) {
  const BinaryCodec codec;
  for (float v : {0.25f, -0.25f, 1.0f, 0.0f}) {
    EXPECT_EQ(codec.flip(v, 0), -v);
    EXPECT_EQ(codec.flip(codec.flip(v, 0), 0), v);
  }
}

TEST(CodecProperty, FixedForRangeHoldsItsCalibrationPoint) {
  // for_range must place the radix point so the calibration magnitude
  // survives a quantize round trip without saturating — including
  // magnitudes at exact powers of two and far below 1.
  for (double max_abs : {0.0078125, 0.4, 1.0, 3.7, 64.0, 1000.0}) {
    for (int bits : {4, 8, 16}) {
      const FixedPointFormat fmt = FixedPointFormat::for_range(bits, max_abs);
      // max_value = 2^integer_bits * (1 - 2^(1-bits)) with
      // 2^integer_bits >= max_abs, so:
      EXPECT_GE(fmt.max_value(), max_abs * (1.0 - std::ldexp(1.0, 1 - bits)))
          << "bits " << bits << " max_abs " << max_abs;
      // The quantized calibration point must not collapse to the
      // opposite saturation rail.
      EXPECT_GE(fmt.quantize(max_abs), 0.0);
    }
  }
}

}  // namespace
}  // namespace qnn::faults
