#include <gtest/gtest.h>

#include <vector>

#include "tensor/im2col.h"
#include "util/rng.h"

namespace qnn {
namespace {

TEST(ConvGeometry, OutputDims) {
  ConvGeometry g;
  g.in_c = 1; g.in_h = 28; g.in_w = 28;
  g.kernel_h = g.kernel_w = 5;
  EXPECT_EQ(g.out_h(), 24);
  EXPECT_EQ(g.out_w(), 24);
  EXPECT_EQ(g.col_rows(), 25);
  EXPECT_EQ(g.col_cols(), 576);
}

TEST(ConvGeometry, StrideAndPad) {
  ConvGeometry g;
  g.in_c = 3; g.in_h = 32; g.in_w = 32;
  g.kernel_h = g.kernel_w = 5;
  g.stride_h = g.stride_w = 2;
  g.pad_h = g.pad_w = 2;
  EXPECT_EQ(g.out_h(), (32 + 4 - 5) / 2 + 1);
  EXPECT_EQ(g.col_rows(), 75);
}

TEST(Im2col, IdentityKernelReproducesImage) {
  // 1×1 kernel: cols == image.
  ConvGeometry g;
  g.in_c = 2; g.in_h = 3; g.in_w = 3;
  g.kernel_h = g.kernel_w = 1;
  std::vector<float> img(18);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> cols(18);
  im2col(g, img.data(), cols.data());
  EXPECT_EQ(cols, img);
}

TEST(Im2col, KnownSmallCase) {
  // 3×3 image, 2×2 kernel, stride 1, no pad: 4 positions.
  ConvGeometry g;
  g.in_c = 1; g.in_h = 3; g.in_w = 3;
  g.kernel_h = g.kernel_w = 2;
  const std::vector<float> img{0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> cols(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(g, img.data(), cols.data());
  // Row 0 = kernel tap (0,0): values at positions (0,0),(0,1),(1,0),(1,1)
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 1);
  EXPECT_EQ(cols[2], 3);
  EXPECT_EQ(cols[3], 4);
  // Row 3 = kernel tap (1,1): values at (1,1),(1,2),(2,1),(2,2)
  EXPECT_EQ(cols[12], 4);
  EXPECT_EQ(cols[13], 5);
  EXPECT_EQ(cols[14], 7);
  EXPECT_EQ(cols[15], 8);
}

TEST(Im2col, PaddingReadsZero) {
  ConvGeometry g;
  g.in_c = 1; g.in_h = 2; g.in_w = 2;
  g.kernel_h = g.kernel_w = 3;
  g.pad_h = g.pad_w = 1;
  const std::vector<float> img{1, 2, 3, 4};
  std::vector<float> cols(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(g, img.data(), cols.data());
  // Kernel tap (0,0) at output (0,0) reads input (-1,-1) -> 0.
  EXPECT_EQ(cols[0], 0);
  // Kernel tap (1,1) (row 4) at output (0,0) reads input (0,0) -> 1.
  EXPECT_EQ(cols[4 * 4 + 0], 1);
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property the conv backward pass relies on.
  ConvGeometry g;
  g.in_c = 3; g.in_h = 7; g.in_w = 6;
  g.kernel_h = 3; g.kernel_w = 2;
  g.stride_h = 2; g.stride_w = 1;
  g.pad_h = 1; g.pad_w = 1;
  Rng rng(9);
  const std::int64_t img_n = g.in_c * g.in_h * g.in_w;
  const std::int64_t col_n = g.col_rows() * g.col_cols();
  std::vector<float> x(static_cast<std::size_t>(img_n)),
      y(static_cast<std::size_t>(col_n)),
      cols(static_cast<std::size_t>(col_n)),
      img(static_cast<std::size_t>(img_n), 0.0f);
  for (float& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : y) v = static_cast<float>(rng.uniform(-1, 1));
  im2col(g, x.data(), cols.data());
  col2im(g, y.data(), img.data());
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < col_n; ++i)
    lhs += static_cast<double>(cols[static_cast<std::size_t>(i)]) *
           y[static_cast<std::size_t>(i)];
  for (std::int64_t i = 0; i < img_n; ++i)
    rhs += static_cast<double>(x[static_cast<std::size_t>(i)]) *
           img[static_cast<std::size_t>(i)];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Col2im, AccumulatesOverlaps) {
  // 2×2 input, 2×2 kernel with pad 1 stride 1: center pixels covered by
  // several windows; col2im of all-ones must count the coverage.
  ConvGeometry g;
  g.in_c = 1; g.in_h = 2; g.in_w = 2;
  g.kernel_h = g.kernel_w = 2;
  g.pad_h = g.pad_w = 1;
  std::vector<float> cols(static_cast<std::size_t>(g.col_rows() * g.col_cols()),
                          1.0f);
  std::vector<float> img(4, 0.0f);
  col2im(g, cols.data(), img.data());
  // Every input pixel is touched by exactly 4 of the 9 windows (one per
  // kernel tap).
  for (float v : img) EXPECT_FLOAT_EQ(v, 4.0f);
}

}  // namespace
}  // namespace qnn
