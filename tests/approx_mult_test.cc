#include <gtest/gtest.h>

#include <cmath>

#include "fixed/approx_mult.h"
#include "hw/logic_model.h"
#include "util/rng.h"

namespace qnn {
namespace {

TEST(ApproxMult, ExactKindIsExact) {
  const ApproxMultSpec exact{ApproxMultKind::kExact, 0};
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t a = rng.uniform_int(-1000, 1000);
    const std::int64_t b = rng.uniform_int(-1000, 1000);
    EXPECT_EQ(approx_multiply(a, b, exact), a * b);
  }
  EXPECT_DOUBLE_EQ(mean_relative_error(exact, 8), 0.0);
}

TEST(ApproxMult, MitchellZeroAndPowersOfTwoExact) {
  const ApproxMultSpec m{ApproxMultKind::kMitchell, 0};
  EXPECT_EQ(approx_multiply(0, 123, m), 0);
  EXPECT_EQ(approx_multiply(7, 0, m), 0);
  // Powers of two have zero mantissa fraction: Mitchell is exact.
  EXPECT_EQ(approx_multiply(8, 16, m), 128);
  EXPECT_EQ(approx_multiply(4, 4, m), 16);
  EXPECT_EQ(approx_multiply(-8, 2, m), -16);
}

TEST(ApproxMult, MitchellErrorWithinClassicBound) {
  // Mitchell's approximation under-estimates by at most ~11.1%.
  const ApproxMultSpec m{ApproxMultKind::kMitchell, 0};
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t a = rng.uniform_int(1, 4095);
    const std::int64_t b = rng.uniform_int(1, 4095);
    const std::int64_t exact = a * b;
    const std::int64_t approx = approx_multiply(a, b, m);
    EXPECT_LE(approx, exact) << a << '*' << b;
    EXPECT_GE(static_cast<double>(approx),
              0.888 * static_cast<double>(exact) - 2.0)
        << a << '*' << b;
  }
}

TEST(ApproxMult, MitchellSignHandling) {
  const ApproxMultSpec m{ApproxMultKind::kMitchell, 0};
  const std::int64_t pp = approx_multiply(100, 37, m);
  EXPECT_EQ(approx_multiply(-100, 37, m), -pp);
  EXPECT_EQ(approx_multiply(100, -37, m), -pp);
  EXPECT_EQ(approx_multiply(-100, -37, m), pp);
}

TEST(ApproxMult, TruncatedZeroColumnsIsExact) {
  const ApproxMultSpec t0{ApproxMultKind::kTruncated, 0};
  EXPECT_EQ(approx_multiply(123, -456, t0), 123 * -456);
}

TEST(ApproxMult, TruncatedErrorBoundedByDroppedColumns) {
  const ApproxMultSpec t{ApproxMultKind::kTruncated, 6};
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t a = rng.uniform_int(-127, 127);
    const std::int64_t b = rng.uniform_int(-127, 127);
    const std::int64_t exact = a * b;
    const std::int64_t approx = approx_multiply(a, b, t);
    EXPECT_LE(std::llabs(approx - exact), 1 << 6) << a << '*' << b;
  }
}

TEST(ApproxMult, ErrorOrderingAcrossDesigns) {
  const double e_trunc6 =
      mean_relative_error({ApproxMultKind::kTruncated, 6}, 8);
  const double e_trunc10 =
      mean_relative_error({ApproxMultKind::kTruncated, 10}, 8);
  const double e_mitchell =
      mean_relative_error({ApproxMultKind::kMitchell, 0}, 8);
  EXPECT_LT(e_trunc6, e_trunc10);
  EXPECT_GT(e_mitchell, 0.01);  // ~3-4% mean
  EXPECT_LT(e_mitchell, 0.12);  // below the 11.1% worst case
}

TEST(ApproxMult, FunctorMatchesDirectCall) {
  const ApproxMultSpec m{ApproxMultKind::kTruncated, 4};
  const MultiplyFn fn = make_multiplier(m);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t a = rng.uniform_int(-500, 500);
    const std::int64_t b = rng.uniform_int(-500, 500);
    EXPECT_EQ(fn(a, b), approx_multiply(a, b, m));
  }
}

TEST(ApproxMultArea, MitchellScalesLinearlyArrayQuadratically) {
  // The log multiplier's advantage is its scaling: array area grows
  // quadratically with width, Mitchell roughly linearly (shift/adder
  // chains), so the ratio must close as widths grow.
  const hw::Tech65& t = hw::default_tech();
  const double ratio8 = hw::mitchell_multiplier_area(t, 8, 8) /
                        hw::int_multiplier_area(t, 8, 8);
  const double ratio32 = hw::mitchell_multiplier_area(t, 32, 32) /
                         hw::int_multiplier_area(t, 32, 32);
  EXPECT_LT(ratio32, 0.5 * ratio8);
}

TEST(ApproxMultArea, TruncationMonotone) {
  const hw::Tech65& t = hw::default_tech();
  const double full = hw::int_multiplier_area(t, 8, 8);
  const double t4 = hw::truncated_multiplier_area(t, 8, 8, 4);
  const double t8 = hw::truncated_multiplier_area(t, 8, 8, 8);
  EXPECT_LT(t4, full);
  EXPECT_LT(t8, t4);
  EXPECT_GE(t8, 0.0);
  EXPECT_DOUBLE_EQ(hw::truncated_multiplier_area(t, 8, 8, 0), full);
}

TEST(ApproxMult, ToString) {
  EXPECT_EQ(ApproxMultSpec{}.to_string(), "exact");
  EXPECT_EQ((ApproxMultSpec{ApproxMultKind::kMitchell, 0}).to_string(),
            "mitchell");
  EXPECT_EQ((ApproxMultSpec{ApproxMultKind::kTruncated, 6}).to_string(),
            "truncated(6)");
}

}  // namespace
}  // namespace qnn
