#include <gtest/gtest.h>

#include "data/augment.h"

namespace qnn::data {
namespace {

Tensor ramp_batch(std::int64_t n = 2, std::int64_t c = 1,
                  std::int64_t h = 4, std::int64_t w = 4) {
  Tensor t(Shape{n, c, h, w});
  for (std::int64_t i = 0; i < t.count(); ++i)
    t[i] = static_cast<float>(i);
  return t;
}

TEST(Augment, DisabledReturnsInputUnchanged) {
  AugmentConfig cfg;  // all off
  EXPECT_FALSE(cfg.enabled());
  Rng rng(1);
  const Tensor in = ramp_batch();
  const Tensor out = augment_batch(in, cfg, rng);
  for (std::int64_t i = 0; i < in.count(); ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(Augment, MirrorFlipsRows) {
  AugmentConfig cfg;
  cfg.mirror = true;
  // Scan seeds until a flip occurs for sample 0, then verify exact
  // row reversal.
  const Tensor in = ramp_batch(1);
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Rng rng(seed);
    const Tensor out = augment_batch(in, cfg, rng);
    if (out[0] == in[0]) continue;  // not flipped under this seed
    for (std::int64_t y = 0; y < 4; ++y)
      for (std::int64_t x = 0; x < 4; ++x)
        EXPECT_EQ(out.at(0, 0, y, x), in.at(0, 0, y, 3 - x));
    return;
  }
  FAIL() << "no seed produced a flip in 32 tries";
}

TEST(Augment, PadCropShiftsWithZeroFill) {
  AugmentConfig cfg;
  cfg.pad_crop = 2;
  const Tensor in = ramp_batch(1);
  // Try seeds until a nonzero shift happens; shifted-out pixels are 0.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Rng rng(seed);
    const Tensor out = augment_batch(in, cfg, rng);
    bool any_zero_border = false;
    for (std::int64_t i = 0; i < out.count(); ++i)
      if (out[i] == 0.0f && in[i] != 0.0f) any_zero_border = true;
    if (!any_zero_border) continue;
    // Values present in the output must come from the input (a pure
    // re-indexing plus zeros).
    for (std::int64_t i = 0; i < out.count(); ++i) {
      if (out[i] == 0.0f) continue;
      bool found = false;
      for (std::int64_t j = 0; j < in.count(); ++j)
        if (in[j] == out[i]) found = true;
      EXPECT_TRUE(found) << out[i];
    }
    return;
  }
  FAIL() << "no seed produced a visible shift";
}

TEST(Augment, SamplesDrawIndependentTransforms) {
  AugmentConfig cfg;
  cfg.mirror = true;
  cfg.pad_crop = 1;
  Rng rng(5);
  const Tensor in = ramp_batch(16);
  const Tensor out = augment_batch(in, cfg, rng);
  // With 16 samples, at least two must have received different
  // transforms (all-identical would be a seeding bug).
  int changed = 0;
  for (std::int64_t n = 0; n < 16; ++n)
    if (out.at(n, 0, 0, 0) != in.at(n, 0, 0, 0)) ++changed;
  EXPECT_GT(changed, 0);
  EXPECT_LT(changed, 16);
}

TEST(Augment, PreservesShapeAndChannels) {
  AugmentConfig cfg;
  cfg.mirror = true;
  cfg.pad_crop = 3;
  Rng rng(9);
  Tensor in(Shape{3, 3, 8, 8});
  Rng fill(2);
  in.fill_uniform(fill, 0, 1);
  const Tensor out = augment_batch(in, cfg, rng);
  EXPECT_EQ(out.shape(), in.shape());
  for (std::int64_t i = 0; i < out.count(); ++i) {
    EXPECT_GE(out[i], 0.0f);
    EXPECT_LE(out[i], 1.0f);
  }
}

}  // namespace
}  // namespace qnn::data
