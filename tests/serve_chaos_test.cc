// Chaos harness for the fault-tolerant serving layer (DESIGN.md §13).
//
// Three contracts under injected executor faults (hang / corrupt /
// crash):
//
//   1. Determinism: a chaos replay — output bytes, batch composition,
//      tier assignments, AND the health-transition log — is
//      bit-identical at 1, 4, and 8 worker threads and with tracing
//      on vs. off. Fault injection is part of the virtual-time event
//      order, not a source of nondeterminism.
//   2. Conservation: every admitted request leaves the pipeline exactly
//      once (served, expired, or failed), across hand-written schedules
//      (crash-during-batch, corrupt-then-rescrub, hang-trips-watchdog)
//      and randomized make_chaos_schedule sweeps. No double publication:
//      response ids are unique.
//   3. Policy: retry-with-redirect serves strictly more requests within
//      deadline than the fail-stop baseline under the same faults, and
//      lane loss tightens admission at the edge.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "faults/lane_faults.h"
#include "nn/activation.h"
#include "nn/inner_product.h"
#include "nn/network.h"
#include "obs/trace.h"
#include "serve/health.h"
#include "serve/server.h"
#include "serve/tiers.h"
#include "serve/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qnn::serve {
namespace {

struct TraceGuard {
  ~TraceGuard() {
    obs::set_trace_enabled(false);
    obs::clear_trace();
  }
};

std::unique_ptr<nn::Network> chaos_net() {
  auto net = std::make_unique<nn::Network>("serve_chaos");
  net->add<nn::InnerProduct>(6, 12);
  net->add<nn::Relu>();
  net->add<nn::InnerProduct>(12, 3);
  Rng rng(17);
  net->init_weights(rng);
  return net;
}

std::vector<TierSpec> chaos_tiers() {
  auto net = chaos_net();
  std::vector<TierSpec> tiers = default_tier_lattice();
  derive_tier_costs(*net, Shape{1, 6}, &tiers);
  return tiers;
}

ArrivalTrace chaos_trace(const std::vector<TierSpec>& tiers, double rate,
                         std::int64_t n, Tick deadline_mult = 20) {
  OpenLoopSpec spec;
  spec.num_requests = n;
  spec.mean_interarrival_ticks =
      static_cast<double>(tiers[0].ticks_per_image) / rate;
  spec.relative_deadline_ticks = deadline_mult * tiers[0].ticks_per_image;
  spec.seed = 42;
  return make_open_loop_trace(spec, {6});
}

ServerConfig chaos_config(const std::vector<TierSpec>& tiers,
                          const faults::LaneFaultSchedule* chaos) {
  ServerConfig cfg;
  cfg.queue_capacity = 16;
  cfg.batcher.max_batch = 4;
  cfg.batcher.batch_window = tiers[0].ticks_per_image;
  cfg.controller.high_depth_fraction = 0.5;
  cfg.controller.low_depth_fraction = 0.125;
  cfg.controller.dwell_ticks = 2 * tiers[0].ticks_per_image;
  cfg.chaos = chaos;
  return cfg;
}

// Fresh pool + server per run so no replica state leaks between runs.
ServeResult run_once(const ArrivalTrace& trace, const ServerConfig& cfg,
                     int replicas_per_tier = 2) {
  auto net = chaos_net();
  std::vector<TierSpec> tiers = chaos_tiers();
  Tensor calib(Shape{16, 6});
  Rng rng(9);
  calib.fill_uniform(rng, 0, 1);
  ReplicaPool pool(*net, calib, tiers, replicas_per_tier);
  Server server(pool, cfg);
  return server.run_trace(trace);
}

void expect_conserved(const ServeStats& s) {
  EXPECT_EQ(s.offered, s.admitted + s.rejected_full + s.rejected_expired +
                           s.rejected_shutdown);
  EXPECT_EQ(s.admitted, s.served + s.expired_in_queue + s.failed);
  EXPECT_EQ(s.served, s.served_within_deadline + s.served_late);
  std::int64_t per_tier = 0;
  for (std::int64_t n : s.served_per_tier) per_tier += n;
  EXPECT_EQ(per_tier, s.served);
}

// No double publication: each response id appears exactly once.
void expect_unique_responses(const ServeResult& r) {
  std::set<std::int64_t> seen;
  for (const Response& resp : r.responses) {
    EXPECT_TRUE(seen.insert(resp.id).second)
        << "request " << resp.id << " published twice";
  }
}

void expect_identical(const ServeResult& a, const ServeResult& b,
                      const char* what) {
  EXPECT_EQ(a.digest(), b.digest()) << what;
  ASSERT_EQ(a.responses.size(), b.responses.size()) << what;
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    const Response& ra = a.responses[i];
    const Response& rb = b.responses[i];
    EXPECT_EQ(ra.id, rb.id) << what << " response " << i;
    EXPECT_EQ(ra.tier, rb.tier) << what << " response " << i;
    EXPECT_EQ(ra.completion, rb.completion) << what << " response " << i;
    ASSERT_EQ(ra.output.size(), rb.output.size()) << what;
    for (std::size_t j = 0; j < ra.output.size(); ++j) {
      EXPECT_EQ(ra.output[j], rb.output[j])  // bit identity, not tolerance
          << what << " response " << i << " logit " << j;
    }
  }
  ASSERT_EQ(a.batches.size(), b.batches.size()) << what;
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].tier, b.batches[i].tier) << what;
    EXPECT_EQ(a.batches[i].replica, b.batches[i].replica) << what;
    EXPECT_EQ(a.batches[i].attempt, b.batches[i].attempt) << what;
    EXPECT_EQ(a.batches[i].dispatch, b.batches[i].dispatch) << what;
    EXPECT_EQ(a.batches[i].request_ids, b.batches[i].request_ids) << what;
  }
  // The health-transition log is part of the replay identity.
  ASSERT_EQ(a.health_log.size(), b.health_log.size()) << what;
  for (std::size_t i = 0; i < a.health_log.size(); ++i) {
    EXPECT_EQ(a.health_log[i], b.health_log[i])
        << what << " transition " << i << ": "
        << transition_to_string(a.health_log[i]) << " vs "
        << transition_to_string(b.health_log[i]);
  }
  EXPECT_EQ(a.stats.served, b.stats.served) << what;
  EXPECT_EQ(a.stats.failed, b.stats.failed) << what;
  EXPECT_EQ(a.stats.hung_batches, b.stats.hung_batches) << what;
  EXPECT_EQ(a.stats.corrupt_batches, b.stats.corrupt_batches) << what;
  EXPECT_EQ(a.stats.crashed_batches, b.stats.crashed_batches) << what;
  EXPECT_EQ(a.stats.retries, b.stats.retries) << what;
  EXPECT_EQ(a.stats.redirected, b.stats.redirected) << what;
  EXPECT_EQ(a.stats.rescrubs, b.stats.rescrubs) << what;
  EXPECT_EQ(a.stats.end_tick, b.stats.end_tick) << what;
}

// A schedule that exercises all three fault kinds against tier 0.
faults::LaneFaultSchedule mixed_schedule(const std::vector<TierSpec>& tiers) {
  const Tick t0 = tiers[0].ticks_per_image;
  faults::LaneFaultSchedule s;
  faults::LaneFault hang;
  hang.kind = faults::LaneFaultKind::kHangLane;
  hang.tier = 0;
  hang.replica = 0;
  hang.at_tick = 0;
  hang.hang_ticks = 100 * t0;  // far past any watchdog budget
  s.faults.push_back(hang);
  faults::LaneFault corrupt;
  corrupt.kind = faults::LaneFaultKind::kCorruptLane;
  corrupt.tier = 0;
  corrupt.replica = 1;
  corrupt.at_tick = 2 * t0;
  corrupt.corrupt_flips = 16;
  corrupt.seed = 77;
  s.faults.push_back(corrupt);
  faults::LaneFault crash;
  crash.kind = faults::LaneFaultKind::kCrashLane;
  crash.tier = 1;
  crash.replica = 0;
  crash.at_tick = 4 * t0;
  s.faults.push_back(crash);
  faults::validate_schedule(s);
  return s;
}

// --- determinism -------------------------------------------------------

TEST(ChaosDeterminism, ReplayIdenticalAt148Threads) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  const faults::LaneFaultSchedule schedule = mixed_schedule(tiers);
  const ArrivalTrace trace = chaos_trace(tiers, 2.5, 80);
  const ServerConfig cfg = chaos_config(tiers, &schedule);

  ScopedGlobalThreads one(1);
  const ServeResult r1 = run_once(trace, cfg);
  ServeResult r4, r8;
  {
    ScopedGlobalThreads four(4);
    r4 = run_once(trace, cfg);
  }
  {
    ScopedGlobalThreads eight(8);
    r8 = run_once(trace, cfg);
  }
  ASSERT_GT(r1.responses.size(), 0u);
  EXPECT_FALSE(r1.health_log.empty())
      << "schedule must actually wound some lanes";
  EXPECT_GT(r1.stats.hung_batches + r1.stats.corrupt_batches +
                r1.stats.crashed_batches,
            0);
  expect_identical(r1, r4, "1 vs 4 threads");
  expect_identical(r1, r8, "1 vs 8 threads");
}

TEST(ChaosDeterminism, TracingOnEqualsTracingOff) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  const faults::LaneFaultSchedule schedule = mixed_schedule(tiers);
  const ArrivalTrace trace = chaos_trace(tiers, 2.5, 60);
  const ServerConfig cfg = chaos_config(tiers, &schedule);
  TraceGuard guard;
  obs::set_trace_enabled(false);
  const ServeResult off = run_once(trace, cfg);
  obs::set_trace_enabled(true);
  const ServeResult on = run_once(trace, cfg);
  expect_identical(off, on, "tracing off vs on");
}

// --- conservation under specific fault shapes --------------------------

TEST(ChaosConservation, CrashDuringBatchRedispatchesInFlightWork) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  faults::LaneFaultSchedule s;
  faults::LaneFault crash;
  crash.kind = faults::LaneFaultKind::kCrashLane;
  crash.tier = 0;
  crash.replica = 0;
  crash.at_tick = 1;  // mid-service of the first dispatched batch
  s.faults.push_back(crash);

  const ArrivalTrace trace = chaos_trace(tiers, 1.0, 30);
  ServerConfig cfg = chaos_config(tiers, &s);
  cfg.batcher.batch_window = 0;  // first request dispatches at tick 0
  const ServeResult r = run_once(trace, cfg);
  EXPECT_EQ(r.stats.crashed_batches, 1);
  EXPECT_GT(r.stats.retries, 0);
  // The sibling replica absorbed the lost batch: nothing was dropped.
  EXPECT_EQ(r.stats.failed, 0);
  EXPECT_EQ(r.stats.served, r.stats.admitted - r.stats.expired_in_queue);
  expect_conserved(r.stats);
  expect_unique_responses(r);
  // The crash shows up in the health log exactly once.
  std::int64_t crashes = 0;
  for (const HealthTransition& t : r.health_log) {
    if (t.reason == HealthReason::kCrash) ++crashes;
  }
  EXPECT_EQ(crashes, 1);
}

TEST(ChaosConservation, CorruptThenRescrubRepairsLane) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  faults::LaneFaultSchedule s;
  faults::LaneFault corrupt;
  corrupt.kind = faults::LaneFaultKind::kCorruptLane;
  corrupt.tier = 0;
  corrupt.replica = 0;
  corrupt.at_tick = 0;
  corrupt.corrupt_flips = 16;
  corrupt.seed = 123;
  s.faults.push_back(corrupt);

  const ArrivalTrace trace = chaos_trace(tiers, 1.0, 30);
  const ServerConfig cfg = chaos_config(tiers, &s);
  const ServeResult r = run_once(trace, cfg);
  // The audit caught the corruption at the first completion, the result
  // was discarded (never published), and the rescrub repaired the lane.
  EXPECT_GE(r.stats.corrupt_batches, 1);
  EXPECT_GE(r.stats.rescrubs, 1);
  EXPECT_GE(r.stats.discarded_results, 1);
  EXPECT_EQ(r.stats.failed, 0);
  expect_conserved(r.stats);
  expect_unique_responses(r);
  bool quarantined = false, repaired = false;
  for (const HealthTransition& t : r.health_log) {
    if (t.to == LaneState::kQuarantined &&
        t.reason == HealthReason::kCorruptDetected) {
      quarantined = true;
    }
    if (t.to == LaneState::kHealthy &&
        t.reason == HealthReason::kRescrubbed) {
      repaired = true;
    }
  }
  EXPECT_TRUE(quarantined);
  EXPECT_TRUE(repaired);
}

TEST(ChaosConservation, HangTripsWatchdogAndRetriesOnSibling) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  faults::LaneFaultSchedule s;
  faults::LaneFault hang;
  hang.kind = faults::LaneFaultKind::kHangLane;
  hang.tier = 0;
  hang.replica = 0;
  hang.at_tick = 0;
  hang.hang_ticks = 100 * tiers[0].ticks_per_image;
  s.faults.push_back(hang);

  const ArrivalTrace trace = chaos_trace(tiers, 1.0, 30);
  const ServerConfig cfg = chaos_config(tiers, &s);
  const ServeResult r = run_once(trace, cfg);
  EXPECT_EQ(r.stats.hung_batches, 1);
  EXPECT_GT(r.stats.retries, 0);
  // The doomed result was discarded when the wedged lane finally
  // finished; the batch itself was served by the retry.
  EXPECT_GE(r.stats.discarded_results, 1);
  EXPECT_EQ(r.stats.failed, 0);
  expect_conserved(r.stats);
  expect_unique_responses(r);
}

TEST(ChaosConservation, RandomizedSchedulesHoldTheInvariant) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  const ArrivalTrace trace = chaos_trace(tiers, 2.0, 60);
  for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
    faults::ChaosSpec spec;
    spec.num_faults = 6;
    spec.horizon_ticks = 30 * tiers[0].ticks_per_image;
    spec.num_tiers = 3;
    spec.replicas_per_tier = 2;
    spec.mean_hang_ticks = 50 * tiers[0].ticks_per_image;
    spec.seed = seed;
    const faults::LaneFaultSchedule schedule = faults::make_chaos_schedule(spec);
    const ServerConfig cfg = chaos_config(tiers, &schedule);
    const ServeResult r = run_once(trace, cfg);
    expect_conserved(r.stats);
    expect_unique_responses(r);
  }
}

TEST(ChaosConservation, AllLanesDeadFailsRemainingWorkExactlyOnce) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  faults::LaneFaultSchedule s;
  for (int t = 0; t < 3; ++t) {
    for (int rep = 0; rep < 2; ++rep) {
      faults::LaneFault crash;
      crash.kind = faults::LaneFaultKind::kCrashLane;
      crash.tier = t;
      crash.replica = rep;
      crash.at_tick = 0;
      s.faults.push_back(crash);
    }
  }
  const ArrivalTrace trace = chaos_trace(tiers, 1.0, 20);
  const ServerConfig cfg = chaos_config(tiers, &s);
  const ServeResult r = run_once(trace, cfg);
  EXPECT_EQ(r.stats.served, 0);
  EXPECT_GT(r.stats.failed + r.stats.expired_in_queue, 0);
  expect_conserved(r.stats);
}

// --- redirect policy beats fail-stop -----------------------------------

TEST(ChaosPolicy, RedirectServesMoreThanFailStopUnderSameFaults) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  const faults::LaneFaultSchedule schedule = mixed_schedule(tiers);
  const ArrivalTrace trace = chaos_trace(tiers, 2.0, 80);
  ServerConfig redirect = chaos_config(tiers, &schedule);
  redirect.executor.redirect_on_failure = true;
  ServerConfig failstop = chaos_config(tiers, &schedule);
  failstop.executor.redirect_on_failure = false;

  const ServeResult rr = run_once(trace, redirect);
  const ServeResult rf = run_once(trace, failstop);
  expect_conserved(rr.stats);
  expect_conserved(rf.stats);
  EXPECT_GT(rr.stats.served_within_deadline, rf.stats.served_within_deadline)
      << "retry-with-redirect must beat fail-stop under the same faults";
  EXPECT_GT(rf.stats.failed, 0) << "fail-stop must actually drop work";
  EXPECT_EQ(rf.stats.rescrubs, 0) << "fail-stop never repairs lanes";
}

// Fail-stop turns a hung lane's batch into failed requests; redirect
// never loses them. Down-lattice redirect engages when a whole tier is
// out: kill both tier-0 lanes and the work lands on tier 1.
TEST(ChaosPolicy, WholeTierLossRedirectsDownTheLattice) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  faults::LaneFaultSchedule s;
  for (int rep = 0; rep < 2; ++rep) {
    faults::LaneFault crash;
    crash.kind = faults::LaneFaultKind::kCrashLane;
    crash.tier = 0;
    crash.replica = rep;
    crash.at_tick = 0;
    s.faults.push_back(crash);
  }
  const ArrivalTrace trace = chaos_trace(tiers, 1.0, 30);
  const ServerConfig cfg = chaos_config(tiers, &s);
  const ServeResult r = run_once(trace, cfg);
  expect_conserved(r.stats);
  EXPECT_EQ(r.stats.failed, 0);
  EXPECT_GT(r.stats.redirected, 0);
  EXPECT_EQ(r.stats.served_per_tier[0], 0) << "tier 0 is dead";
  EXPECT_GT(r.stats.served_per_tier[1], 0)
      << "work must land one tier down the lattice";
  for (const BatchRecord& b : r.batches) EXPECT_NE(b.tier, 0);
}

// --- admission feels lane loss -----------------------------------------

TEST(ChaosAdmission, LaneLossTightensTheAdmissionBound) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  // Kill half the lanes at tick 0, then offer a hard burst.
  faults::LaneFaultSchedule s;
  for (int t = 0; t < 3; ++t) {
    faults::LaneFault crash;
    crash.kind = faults::LaneFaultKind::kCrashLane;
    crash.tier = t;
    crash.replica = 0;
    crash.at_tick = 0;
    s.faults.push_back(crash);
  }
  const ArrivalTrace trace = chaos_trace(tiers, 8.0, 120, /*deadline_mult=*/8);
  const ServerConfig healthy_cfg = chaos_config(tiers, nullptr);
  const ServerConfig wounded_cfg = chaos_config(tiers, &s);
  const ServeResult healthy = run_once(trace, healthy_cfg);
  const ServeResult wounded = run_once(trace, wounded_cfg);
  expect_conserved(healthy.stats);
  expect_conserved(wounded.stats);
  // Half the lanes gone halves the effective admission bound, so the
  // wounded server sheds strictly more load at the edge.
  EXPECT_GT(wounded.stats.rejected_full, healthy.stats.rejected_full);
}

// --- shutdown drain with dead/quarantined lanes (batcher x watchdog) ---

TEST(ChaosDrain, ShutdownWithDeadTierDrainsWithoutReadmission) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  faults::LaneFaultSchedule s;
  for (int rep = 0; rep < 2; ++rep) {
    faults::LaneFault crash;
    crash.kind = faults::LaneFaultKind::kCrashLane;
    crash.tier = 2;
    crash.replica = rep;
    crash.at_tick = 0;
    s.faults.push_back(crash);
  }
  const ArrivalTrace trace = chaos_trace(tiers, 4.0, 60, /*deadline_mult=*/16);
  ServerConfig cfg = chaos_config(tiers, &s);
  // Short dwell so the controller walks down to the (dead) cheapest tier
  // during the burst — requests get ASSIGNED tier 2 and must be
  // redirected back up, including through the shutdown flush.
  cfg.controller.dwell_ticks = tiers[0].ticks_per_image / 4;
  cfg.shutdown_tick = trace.requests[30].arrival;
  const ServeResult r = run_once(trace, cfg);
  expect_conserved(r.stats);
  // run_trace itself checks the batcher fully drained (pending_total 0)
  // and the executor went idle; here: nothing executed on the dead tier.
  EXPECT_EQ(r.stats.served_per_tier[2], 0);
  for (const BatchRecord& b : r.batches) EXPECT_NE(b.tier, 2);
  EXPECT_GT(r.stats.redirected, 0)
      << "tier-2-assigned work must have been redirected, not dropped";
  EXPECT_GT(r.stats.rejected_shutdown, 0);
}

// A quarantined (not dead) lane during shutdown drain: flush-closed
// batches wait for the rescrub instead of being re-admitted anywhere
// unsafe, and the drain still completes with pending_total() == 0.
TEST(ChaosDrain, ShutdownWithQuarantinedLaneWaitsForRescrub) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  faults::LaneFaultSchedule s;
  // Corrupt BOTH tier-0 replicas so the whole tier quarantines; with a
  // long rescrub latency the drain must outwait the repair.
  for (int rep = 0; rep < 2; ++rep) {
    faults::LaneFault corrupt;
    corrupt.kind = faults::LaneFaultKind::kCorruptLane;
    corrupt.tier = 0;
    corrupt.replica = rep;
    corrupt.at_tick = 0;
    corrupt.corrupt_flips = 16;
    corrupt.seed = 31 + static_cast<std::uint64_t>(rep);
    s.faults.push_back(corrupt);
  }
  const ArrivalTrace trace = chaos_trace(tiers, 1.0, 20, /*deadline_mult=*/40);
  ServerConfig cfg = chaos_config(tiers, &s);
  cfg.health.quarantine_ticks = 4 * tiers[0].ticks_per_image;
  cfg.shutdown_tick = trace.requests[10].arrival;
  const ServeResult r = run_once(trace, cfg);
  expect_conserved(r.stats);
  expect_unique_responses(r);
  EXPECT_GE(r.stats.corrupt_batches, 1);
  EXPECT_GE(r.stats.rescrubs, 1);
}

// --- stats surface ------------------------------------------------------

TEST(ChaosStats, JsonCarriesFaultToleranceCounters) {
  const std::vector<TierSpec> tiers = chaos_tiers();
  const faults::LaneFaultSchedule schedule = mixed_schedule(tiers);
  const ArrivalTrace trace = chaos_trace(tiers, 2.0, 40);
  const ServeResult r = run_once(trace, chaos_config(tiers, &schedule));
  const json::Value v = serve_stats_to_json(r.stats);
  for (const char* key :
       {"failed", "hung_batches", "corrupt_batches", "crashed_batches",
        "retries", "redirected", "rescrubs", "discarded_results"}) {
    EXPECT_TRUE(v.contains(key)) << key;
  }
}

}  // namespace
}  // namespace qnn::serve
