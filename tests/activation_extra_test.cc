#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.h"
#include "nn/lrn.h"
#include "testing/gradient_check.h"

namespace qnn::nn {
namespace {

TEST(Sigmoid, KnownValues) {
  Sigmoid s;
  Tensor in(Shape{1, 3}, {0.0f, 100.0f, -100.0f});
  const Tensor out = s.forward(in);
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  EXPECT_NEAR(out[1], 1.0f, 1e-6);
  EXPECT_NEAR(out[2], 0.0f, 1e-6);
}

TEST(Sigmoid, GradCheck) {
  Sigmoid s;
  qnn::testing::check_layer_gradients(s, Shape{2, 8});
}

TEST(Tanh, KnownValues) {
  Tanh t;
  Tensor in(Shape{1, 2}, {0.0f, 1.0f});
  const Tensor out = t.forward(in);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_NEAR(out[1], std::tanh(1.0f), 1e-6);
}

TEST(Tanh, GradCheck) {
  Tanh t;
  qnn::testing::check_layer_gradients(t, Shape{3, 5});
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout d(0.5);
  d.set_training(false);
  Tensor in(Shape{1, 100});
  Rng rng(1);
  in.fill_uniform(rng, -1, 1);
  const Tensor out = d.forward(in);
  for (std::int64_t i = 0; i < in.count(); ++i)
    EXPECT_EQ(out[i], in[i]);
}

TEST(Dropout, TrainModeDropsAndRescales) {
  Dropout d(0.5, 3);
  Tensor in(Shape{1, 4000});
  in.fill(1.0f);
  const Tensor out = d.forward(in);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < out.count(); ++i) {
    if (out[i] == 0.0f) ++zeros;
    else EXPECT_FLOAT_EQ(out[i], 2.0f);  // 1/(1-0.5)
  }
  EXPECT_NEAR(static_cast<double>(zeros) / out.count(), 0.5, 0.05);
  // Expectation preserved.
  EXPECT_NEAR(out.mean(), 1.0, 0.07);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout d(0.3, 5);
  Tensor in(Shape{1, 64});
  in.fill(1.0f);
  const Tensor out = d.forward(in);
  Tensor g(Shape{1, 64});
  g.fill(1.0f);
  const Tensor gin = d.backward(g);
  for (std::int64_t i = 0; i < 64; ++i)
    EXPECT_EQ(gin[i], out[i]);  // same multiplicative mask
}

TEST(Dropout, ZeroProbabilityIsIdentityEvenInTraining) {
  Dropout d(0.0);
  Tensor in(Shape{1, 8});
  Rng rng(2);
  in.fill_uniform(rng, -1, 1);
  const Tensor out = d.forward(in);
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(Dropout, InvalidProbabilityThrows) {
  EXPECT_THROW(Dropout(1.0), CheckError);
  EXPECT_THROW(Dropout(-0.1), CheckError);
}

TEST(Lrn, UnitInputKnownValue) {
  // Uniform input of 1.0, local_size covering all channels:
  // out = 1 / (k + alpha/n * n)^beta = (k + alpha)^-beta.
  LrnSpec spec;
  spec.local_size = 3;
  spec.alpha = 3.0;  // exaggerated so the effect is visible
  spec.beta = 0.5;
  spec.k = 1.0;
  Lrn lrn(spec);
  Tensor in(Shape{1, 3, 1, 1}, {1.0f, 1.0f, 1.0f});
  const Tensor out = lrn.forward(in);
  // Center channel sees all 3 ones: scale = 1 + 1*3 = ... alpha/n = 1.
  EXPECT_NEAR(out[1], 1.0 / std::sqrt(1.0 + 3.0), 1e-5);
  // Edge channels see 2 ones: scale = 1 + 2.
  EXPECT_NEAR(out[0], 1.0 / std::sqrt(3.0), 1e-5);
}

TEST(Lrn, SuppressesLargeChannels) {
  LrnSpec spec;
  spec.local_size = 5;
  spec.alpha = 1.0;
  Lrn lrn(spec);
  Tensor in(Shape{1, 5, 1, 1}, {0.1f, 0.1f, 10.0f, 0.1f, 0.1f});
  const Tensor out = lrn.forward(in);
  // The big activation is normalized down much more than the small ones.
  EXPECT_LT(out[2] / in[2], out[0] / in[0]);
}

TEST(Lrn, GradCheck) {
  LrnSpec spec;
  spec.local_size = 3;
  spec.alpha = 0.5;
  spec.beta = 0.75;
  Lrn lrn(spec);
  qnn::testing::check_layer_gradients(lrn, Shape{2, 4, 3, 3},
                                      /*seed=*/9, /*eps=*/1e-3,
                                      /*tol=*/1e-2);
}

TEST(Lrn, EvenLocalSizeThrows) {
  LrnSpec spec;
  spec.local_size = 4;
  EXPECT_THROW(Lrn{spec}, CheckError);
}

}  // namespace
}  // namespace qnn::nn
