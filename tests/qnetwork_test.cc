#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.h"
#include "nn/inner_product.h"
#include "nn/network.h"
#include "quant/qnetwork.h"

namespace qnn::quant {
namespace {

std::unique_ptr<nn::Network> small_net(std::uint64_t seed = 4) {
  auto net = std::make_unique<nn::Network>("q");
  net->add<nn::InnerProduct>(6, 8);
  net->add<nn::Relu>();
  net->add<nn::InnerProduct>(8, 3);
  Rng rng(seed);
  net->init_weights(rng);
  return net;
}

Tensor batch(std::int64_t n = 8, std::uint64_t seed = 1) {
  Tensor t(Shape{n, 6});
  Rng rng(seed);
  t.fill_uniform(rng, 0, 1);
  return t;
}

TEST(QuantizedNetwork, FloatConfigIsTransparent) {
  auto net = small_net();
  QuantizedNetwork qnet(*net, float_config());
  EXPECT_TRUE(qnet.calibrated());  // float needs no calibration
  const Tensor x = batch();
  const Tensor direct = net->forward(x);
  const Tensor via = qnet.forward(x);
  for (std::int64_t i = 0; i < direct.count(); ++i)
    EXPECT_FLOAT_EQ(via[i], direct[i]);
}

TEST(QuantizedNetwork, ForwardBeforeCalibrateThrows) {
  auto net = small_net();
  QuantizedNetwork qnet(*net, fixed_config(8, 8));
  EXPECT_THROW(qnet.forward(batch()), CheckError);
}

TEST(QuantizedNetwork, MastersRestoredAfterBackward) {
  auto net = small_net();
  QuantizedNetwork qnet(*net, fixed_config(8, 8));
  qnet.calibrate(batch());
  const auto params = net->trainable_params();
  const Tensor master_copy = params[0]->value;

  const Tensor out = qnet.forward(batch());
  Tensor g(out.shape());
  g.fill(0.1f);
  qnet.backward(g);
  for (std::int64_t i = 0; i < master_copy.count(); ++i)
    EXPECT_EQ(params[0]->value[i], master_copy[i])
        << "master weight perturbed at " << i;
}

TEST(QuantizedNetwork, WeightsAreQuantizedDuringForward) {
  auto net = small_net();
  QuantizedNetwork qnet(*net, binary_config(16));
  qnet.calibrate(batch());
  // Run forward, then inspect live (quantized) weights before restoring.
  (void)qnet.forward(batch());
  const auto params = net->trainable_params();
  // First param is a weight matrix -> exactly two distinct magnitudes.
  const Tensor& w = params[0]->value;
  const float mag = std::fabs(w[0]);
  for (std::int64_t i = 0; i < w.count(); ++i)
    EXPECT_FLOAT_EQ(std::fabs(w[i]), mag);
  qnet.restore_masters();
}

TEST(QuantizedNetwork, OutputsLieOnDataGrid) {
  auto net = small_net();
  QuantizedNetwork qnet(*net, fixed_config(8, 8));
  qnet.calibrate(batch());
  const Tensor out = qnet.forward(batch());
  const auto& dq =
      dynamic_cast<const FixedQuantizer&>(qnet.data_quantizer(
          qnet.num_sites() - 1));
  ASSERT_TRUE(dq.format().has_value());
  for (std::int64_t i = 0; i < out.count(); ++i)
    EXPECT_TRUE(dq.format()->representable(out[i])) << out[i];
}

TEST(QuantizedNetwork, ForwardIsIdempotentAcrossCalls) {
  auto net = small_net();
  QuantizedNetwork qnet(*net, fixed_config(8, 8));
  qnet.calibrate(batch());
  const Tensor a = qnet.forward(batch());
  const Tensor b = qnet.forward(batch());  // must restore then requantize
  for (std::int64_t i = 0; i < a.count(); ++i) EXPECT_EQ(a[i], b[i]);
  qnet.restore_masters();
}

TEST(QuantizedNetwork, PerLayerFormatsDifferWhenRangesDiffer) {
  auto net = small_net();
  // Make layer-2 weights much larger than layer-0 weights.
  auto params = net->trainable_params();
  params[2]->value.scale(20.0f);
  PrecisionConfig cfg = fixed_config(8, 8);
  cfg.radix_policy = RadixPolicy::kPerLayer;
  QuantizedNetwork qnet(*net, cfg);
  qnet.calibrate(batch());
  const auto& q0 = dynamic_cast<const FixedQuantizer&>(qnet.weight_quantizer(0));
  const auto& q2 = dynamic_cast<const FixedQuantizer&>(qnet.weight_quantizer(2));
  EXPECT_NE(q0.format()->frac_bits(), q2.format()->frac_bits());
}

TEST(QuantizedNetwork, GlobalPolicySharesFormats) {
  auto net = small_net();
  auto params = net->trainable_params();
  params[2]->value.scale(20.0f);
  PrecisionConfig cfg = fixed_config(8, 8);
  cfg.radix_policy = RadixPolicy::kGlobal;
  QuantizedNetwork qnet(*net, cfg);
  qnet.calibrate(batch());
  const auto& q0 = dynamic_cast<const FixedQuantizer&>(qnet.weight_quantizer(0));
  const auto& q2 = dynamic_cast<const FixedQuantizer&>(qnet.weight_quantizer(2));
  EXPECT_EQ(q0.format()->frac_bits(), q2.format()->frac_bits());
}

TEST(QuantizedNetwork, ClipMastersBoundsWeights) {
  auto net = small_net();
  QuantizedNetwork qnet(*net, binary_config(16));
  qnet.calibrate(batch());
  auto params = net->trainable_params();
  params[0]->value[0] = 5.0f;
  params[0]->value[1] = -5.0f;
  qnet.clip_masters();
  EXPECT_FLOAT_EQ(params[0]->value[0], 1.0f);   // BinaryConnect clip
  EXPECT_FLOAT_EQ(params[0]->value[1], -1.0f);
}

TEST(QuantizedNetwork, BiasesUseDataWidthForBinaryNets) {
  auto net = small_net();
  QuantizedNetwork qnet(*net, binary_config(16));
  // Param order: w0, b0, w2, b2 — biases are FixedQuantizer(16).
  EXPECT_EQ(qnet.weight_quantizer(0).bits(), 1);
  EXPECT_EQ(qnet.weight_quantizer(1).bits(), 16);
  EXPECT_EQ(qnet.weight_quantizer(2).bits(), 1);
  EXPECT_EQ(qnet.weight_quantizer(3).bits(), 16);
}

TEST(QuantizedNetwork, QuantizationChangesOutputsAtLowPrecision) {
  auto net = small_net();
  const Tensor x = batch();
  const Tensor float_out = net->forward(x);
  QuantizedNetwork qnet(*net, fixed_config(4, 4));
  qnet.calibrate(x);
  const Tensor q_out = qnet.forward(x);
  qnet.restore_masters();
  double diff = 0;
  for (std::int64_t i = 0; i < q_out.count(); ++i)
    diff += std::fabs(q_out[i] - float_out[i]);
  EXPECT_GT(diff, 1e-4);  // 4-bit must visibly perturb outputs
}

TEST(QuantizedNetwork, HigherPrecisionIsCloserToFloat) {
  auto net = small_net();
  const Tensor x = batch();
  const Tensor float_out = net->forward(x);
  auto err_for = [&](const PrecisionConfig& cfg) {
    QuantizedNetwork qnet(*net, cfg);
    qnet.calibrate(x);
    const Tensor out = qnet.forward(x);
    qnet.restore_masters();
    double e = 0;
    for (std::int64_t i = 0; i < out.count(); ++i)
      e += std::fabs(out[i] - float_out[i]);
    return e;
  };
  const double e16 = err_for(fixed_config(16, 16));
  const double e4 = err_for(fixed_config(4, 4));
  EXPECT_LT(e16, e4);
}

}  // namespace
}  // namespace qnn::quant
