// Numerical gradient checking for layers: compares analytic backward
// results against central finite differences of a scalar objective.
#pragma once

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/layer.h"
#include "util/rng.h"

namespace qnn::testing {

// Objective: L = sum(out * coeffs) with fixed random coeffs, so
// dL/dout = coeffs. Checks dL/dinput and dL/dparams.
inline void check_layer_gradients(nn::Layer& layer, const Shape& in_shape,
                                  std::uint64_t seed = 3,
                                  double eps = 1e-3, double tol = 5e-3) {
  Rng rng(seed);
  Tensor input(in_shape);
  input.fill_uniform(rng, -1.0f, 1.0f);

  const Shape out_shape = layer.output_shape(in_shape);
  Tensor coeffs(out_shape);
  coeffs.fill_uniform(rng, -1.0f, 1.0f);

  auto objective = [&](const Tensor& in) {
    const Tensor out = layer.forward(in);
    double l = 0.0;
    for (std::int64_t i = 0; i < out.count(); ++i)
      l += static_cast<double>(out[i]) * coeffs[i];
    return l;
  };

  // Analytic gradients.
  for (nn::Param* p : layer.params()) p->zero_grad();
  (void)layer.forward(input);
  const Tensor grad_in = layer.backward(coeffs);
  ASSERT_EQ(grad_in.shape().to_string(), in_shape.to_string());

  // Numeric input gradient (subsampled for large tensors).
  const std::int64_t stride = std::max<std::int64_t>(1, input.count() / 64);
  for (std::int64_t i = 0; i < input.count(); i += stride) {
    Tensor plus = input, minus = input;
    plus[i] += static_cast<float>(eps);
    minus[i] -= static_cast<float>(eps);
    const double numeric = (objective(plus) - objective(minus)) / (2 * eps);
    EXPECT_NEAR(grad_in[i], numeric, tol)
        << "input grad mismatch at flat index " << i;
  }

  // Numeric parameter gradients. The analytic ones were computed above;
  // snapshot them first because extra forwards rerun caching only.
  for (nn::Param* p : layer.params()) {
    const Tensor analytic = p->grad;
    const std::int64_t pstride =
        std::max<std::int64_t>(1, p->count() / 48);
    for (std::int64_t i = 0; i < p->count(); i += pstride) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(eps);
      const double lp = objective(input);
      p->value[i] = saved - static_cast<float>(eps);
      const double lm = objective(input);
      p->value[i] = saved;
      const double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(analytic[i], numeric, tol)
          << "param " << p->name << " grad mismatch at index " << i;
    }
  }
}

}  // namespace qnn::testing
