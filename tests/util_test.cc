#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/check.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace qnn {
namespace {

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(QNN_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(QNN_CHECK(false), CheckError);
}

TEST(Check, MessageIncludesExpressionAndLocation) {
  try {
    QNN_CHECK_MSG(2 < 1, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
    EXPECT_NE(what.find("util_test.cc"), std::string::npos);
  }
}

TEST(Logging, ThresholdFiltersLevels) {
  set_log_threshold(LogLevel::kError);
  // Below threshold: must not crash and must not emit (can't capture
  // stderr portably here; just exercise the path).
  QNN_LOG(Info) << "suppressed";
  set_log_threshold(LogLevel::kInfo);
  EXPECT_EQ(log_threshold(), LogLevel::kInfo);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, NormalHasRoughMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // The child stream should not replay the parent's next values.
  Rng b(5);
  (void)b.fork();
  EXPECT_NE(child.uniform(), a.uniform());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"Name", "Value"});
  t.add_row({"alpha", "1.0"});
  t.add_row({"b", "22.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.5"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, SeparatorRows) {
  Table t({"Alpha", "Beta"});
  t.add_row({"x", "1"});
  t.add_separator();
  t.add_row({"y", "2"});
  const std::string s = t.to_string();
  // Two full-width rules: one under the header, one separator.
  const auto first = s.find("----");
  ASSERT_NE(first, std::string::npos);
  const auto next_line = s.find('\n', first);
  const auto second = s.find("----", next_line);
  EXPECT_NE(second, std::string::npos);
}

TEST(Table, NumericFormatters) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_percent(85.406, 2), "85.41");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/qnn_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.add_row({"1", "x,y"});
    w.add_row({"2", "line\"quote"});
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1,\"x,y\"");
  EXPECT_EQ(l3, "2,\"line\"\"quote\"");
  std::filesystem::remove(path);
}

TEST(Csv, ArityEnforced) {
  const std::string path = ::testing::TempDir() + "/qnn_csv_arity.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), CheckError);
  w.close();
  std::filesystem::remove(path);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  const double t0 = sw.seconds();
  EXPECT_GE(t0, 0.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

}  // namespace
}  // namespace qnn
