#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>

#include "util/check.h"
#include "util/crc32.h"
#include "util/csv.h"
#include "util/fileio.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace qnn {
namespace {

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(QNN_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(QNN_CHECK(false), CheckError);
}

TEST(Check, MessageIncludesExpressionAndLocation) {
  try {
    QNN_CHECK_MSG(2 < 1, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
    EXPECT_NE(what.find("util_test.cc"), std::string::npos);
  }
}

TEST(Logging, ThresholdFiltersLevels) {
  set_log_threshold(LogLevel::kError);
  // Below threshold: must not crash and must not emit (can't capture
  // stderr portably here; just exercise the path).
  QNN_LOG(Info) << "suppressed";
  set_log_threshold(LogLevel::kInfo);
  EXPECT_EQ(log_threshold(), LogLevel::kInfo);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(Logging, ParseLogLevelAcceptsNamesAndDigits) {
  LogLevel lvl = LogLevel::kInfo;
  EXPECT_TRUE(parse_log_level("debug", &lvl));
  EXPECT_EQ(lvl, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("WARN", &lvl));
  EXPECT_EQ(lvl, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level("Warning", &lvl));
  EXPECT_EQ(lvl, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level("error", &lvl));
  EXPECT_EQ(lvl, LogLevel::kError);
  EXPECT_TRUE(parse_log_level("0", &lvl));
  EXPECT_EQ(lvl, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("3", &lvl));
  EXPECT_EQ(lvl, LogLevel::kError);

  // Unrecognized spellings leave *out untouched.
  lvl = LogLevel::kInfo;
  EXPECT_FALSE(parse_log_level("", &lvl));
  EXPECT_FALSE(parse_log_level("verbose", &lvl));
  EXPECT_FALSE(parse_log_level("4", &lvl));
  EXPECT_FALSE(parse_log_level("1x", &lvl));
  EXPECT_EQ(lvl, LogLevel::kInfo);
}

TEST(Logging, PrefixCarriesLevelThreadAndSourceSite) {
  // "[WARN HH:MM:SS.mmm tN file.cc:42] " — the whole prefix the single
  // fwrite line starts with. The timestamp is wall-clock so only its
  // shape is checked.
  const std::string p =
      format_log_prefix(LogLevel::kWarn, "/a/b/sweep.cc", 42);
  EXPECT_EQ(p.rfind("[WARN ", 0), 0u);
  EXPECT_NE(p.find(" t" + std::to_string(log_thread_id()) + " "),
            std::string::npos);
  EXPECT_NE(p.find(" sweep.cc:42] "), std::string::npos);
  EXPECT_EQ(p.find("/a/b/"), std::string::npos);  // basename only
  EXPECT_EQ(p.back(), ' ');
  // HH:MM:SS.mmm right after the level name: digits and separators.
  const std::string ts = p.substr(6, 12);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (i == 2 || i == 5)
      EXPECT_EQ(ts[i], ':') << ts;
    else if (i == 8)
      EXPECT_EQ(ts[i], '.') << ts;
    else
      EXPECT_TRUE(ts[i] >= '0' && ts[i] <= '9') << ts;
  }
}

TEST(Logging, ThreadIdsAreSmallDenseAndStable) {
  const int here = log_thread_id();
  EXPECT_GE(here, 0);
  EXPECT_EQ(here, log_thread_id());  // stable within a thread
  int other = -1;
  std::thread([&] { other = log_thread_id(); }).join();
  EXPECT_GE(other, 0);
  EXPECT_NE(other, here);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, NormalHasRoughMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // The child stream should not replay the parent's next values.
  Rng b(5);
  (void)b.fork();
  EXPECT_NE(child.uniform(), a.uniform());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"Name", "Value"});
  t.add_row({"alpha", "1.0"});
  t.add_row({"b", "22.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.5"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, SeparatorRows) {
  Table t({"Alpha", "Beta"});
  t.add_row({"x", "1"});
  t.add_separator();
  t.add_row({"y", "2"});
  const std::string s = t.to_string();
  // Two full-width rules: one under the header, one separator.
  const auto first = s.find("----");
  ASSERT_NE(first, std::string::npos);
  const auto next_line = s.find('\n', first);
  const auto second = s.find("----", next_line);
  EXPECT_NE(second, std::string::npos);
}

TEST(Table, NumericFormatters) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_percent(85.406, 2), "85.41");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/qnn_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.add_row({"1", "x,y"});
    w.add_row({"2", "line\"quote"});
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1,\"x,y\"");
  EXPECT_EQ(l3, "2,\"line\"\"quote\"");
  std::filesystem::remove(path);
}

TEST(Csv, ArityEnforced) {
  const std::string path = ::testing::TempDir() + "/qnn_csv_arity.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), CheckError);
  w.close();
  std::filesystem::remove(path);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  const double t0 = sw.seconds();
  EXPECT_GE(t0, 0.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

TEST(Crc32, KnownVectors) {
  // The standard zlib-compatible check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  // Incremental: crc of "ab" equals crc("b") seeded with crc("a").
  EXPECT_EQ(crc32("ab"),
            crc32(std::string_view("b"), crc32(std::string_view("a"))));
}

TEST(Crc32, DetectsSingleBitChange) {
  std::string data(256, '\0');
  const auto base = crc32(data);
  data[100] ^= 1;
  EXPECT_NE(crc32(data), base);
}

TEST(FileIo, AtomicWriteRoundTrip) {
  const std::string path = ::testing::TempDir() + "/qnn_atomic.bin";
  const std::string payload = std::string("bin\0ary", 7) + "\ndata";
  write_file_atomic(path, payload);
  EXPECT_EQ(read_file(path), payload);
  // The temp staging file must not survive.
  EXPECT_FALSE(file_exists(path + ".tmp"));
  // Overwrite in place.
  write_file_atomic(path, "second");
  EXPECT_EQ(read_file(path), "second");
  std::filesystem::remove(path);
}

TEST(FileIo, ReadMissingFileNamesPath) {
  try {
    read_file("/nonexistent/qnn_nope.bin");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("qnn_nope.bin"),
              std::string::npos);
  }
}

TEST(CsvParse, RoundTripsWriterQuoting) {
  const std::string path = ::testing::TempDir() + "/qnn_csv_rt.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.add_row({"1", "x,y"});
    w.add_row({"2", "line\"quote"});
    w.add_row({"3", "multi\nline"});
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "x,y"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"2", "line\"quote"}));
  EXPECT_EQ(rows[3], (std::vector<std::string>{"3", "multi\nline"}));
  std::filesystem::remove(path);
}

TEST(CsvParse, AcceptsCrlfAndSkipsBlankLines) {
  const auto rows = parse_csv("a,b\r\n\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParse, StripsUtf8ByteOrderMark) {
  // Spreadsheet exports routinely prepend a UTF-8 BOM; it must not leak
  // into the first header cell.
  const auto rows = parse_csv("\xEF\xBB\xBFid,label\n1,cat\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"id", "label"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "cat"}));

  // BOM + CRLF together — the classic "edited on Windows" file.
  const auto crlf = parse_csv("\xEF\xBB\xBF" "a,b\r\n1,2\r\n");
  ASSERT_EQ(crlf.size(), 2u);
  EXPECT_EQ(crlf[0], (std::vector<std::string>{"a", "b"}));

  // A BOM alone (or a truncated BOM prefix) is not a row.
  EXPECT_TRUE(parse_csv("\xEF\xBB\xBF").empty());
  const auto partial = parse_csv("\xEF\xBBx,y\n");
  ASSERT_EQ(partial.size(), 1u);
  EXPECT_EQ(partial[0], (std::vector<std::string>{"\xEF\xBBx", "y"}));
}

TEST(CsvParse, BomDoesNotShiftErrorLineNumbers) {
  try {
    parse_csv("\xEF\xBB\xBFok,row\nbad\"cell,x\n", "data.csv");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("data.csv:2"), std::string::npos);
  }
}

TEST(CsvParse, ErrorsCarrySourceAndLine) {
  try {
    parse_csv("ok,row\nbad\"cell,x\n", "data.csv");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("data.csv:2"), std::string::npos);
  }
  try {
    parse_csv("a,\"unterminated\n...", "data.csv");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unterminated"),
              std::string::npos);
  }
  EXPECT_THROW(parse_csv("a,\"b\"garbage\n"), CheckError);
}

TEST(Json, DumpParseRoundTrip) {
  json::Value obj = json::Value::object();
  obj.set("name", json::Value("sweep"));
  obj.set("count", json::Value(std::int64_t{42}));
  obj.set("exact", json::Value(1.0 / 3.0));
  obj.set("flag", json::Value(true));
  obj.set("nothing", json::Value());
  json::Value arr = json::Value::array();
  arr.push_back(json::Value(std::int64_t{-1}));
  arr.push_back(json::Value(std::string("x\"y\n")));
  obj.set("list", std::move(arr));

  const json::Value back = json::parse(obj.dump(), "<test>");
  EXPECT_EQ(back.at("name").as_string(), "sweep");
  EXPECT_EQ(back.at("count").as_int(), 42);
  // Doubles survive text round-trips bit-for-bit (max_digits10).
  EXPECT_DOUBLE_EQ(back.at("exact").as_double(), 1.0 / 3.0);
  EXPECT_TRUE(back.at("flag").as_bool());
  EXPECT_EQ(back.at("nothing").kind(), json::Value::Kind::kNull);
  EXPECT_EQ(back.at("list").at(1).as_string(), "x\"y\n");
  // A whole double dumps with ".0" so the kind round-trips too.
  EXPECT_EQ(back.at("exact").kind(), json::Value::Kind::kDouble);
}

TEST(Json, StripsUtf8ByteOrderMark) {
  const json::Value v =
      json::parse("\xEF\xBB\xBF{\"a\": 1}", "bom.json");
  EXPECT_EQ(v.at("a").as_int(), 1);
  // BOM + CRLF, and errors keep their file:line anchors.
  const json::Value crlf =
      json::parse("\xEF\xBB\xBF{\r\n  \"b\": 2\r\n}", "bom.json");
  EXPECT_EQ(crlf.at("b").as_int(), 2);
  try {
    json::parse("\xEF\xBB\xBF{\n  oops\n}", "ck.json");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("ck.json:2"), std::string::npos);
  }
  // A lone BOM is still an empty document.
  EXPECT_THROW(json::parse("\xEF\xBB\xBF"), CheckError);
}

TEST(Json, ParseErrorsCarrySourceAndLine) {
  try {
    json::parse("{\n  \"a\": 1,\n  oops\n}", "ck.json");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("ck.json:3"), std::string::npos);
  }
  EXPECT_THROW(json::parse("{\"a\": }"), CheckError);
  EXPECT_THROW(json::parse("[1, 2"), CheckError);
  EXPECT_THROW(json::parse(""), CheckError);
  EXPECT_THROW(json::parse("{} trailing"), CheckError);
}

TEST(Json, AccessorsAreChecked) {
  const json::Value v = json::parse("{\"n\": 1}");
  EXPECT_THROW(v.at("missing"), CheckError);
  EXPECT_THROW(v.at("n").as_string(), CheckError);
  EXPECT_THROW(v.at(std::size_t{0}), CheckError);  // not an array
  EXPECT_EQ(v.at("n").as_int(), 1);
  // Ints widen to double on request.
  EXPECT_DOUBLE_EQ(v.at("n").as_double(), 1.0);
}

}  // namespace
}  // namespace qnn
