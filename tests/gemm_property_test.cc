// Differential/property harness for the K-sharded GEMM (DESIGN.md §9).
//
// The kernels promise a *canonical order*: K splits into fixed chunks
// (gemm_k_plan, a pure function of K), each chunk partial is a serial
// float left-fold over its K range, and partials merge through a fixed
// binary tree. Three properties pin it down:
//
//  1. Differential vs the kernel itself: a K-chunked product must equal,
//     byte for byte, the fixed tree over single-chunk products computed
//     by the same kernel on sliced operands. This holds regardless of
//     how the compiler contracts the inner loop (both sides use the
//     identical kernel), so it is the structural bit-exactness check.
//  2. Differential vs a standalone naive reference in double precision,
//     within a rounding tolerance — catches consistently-wrong math the
//     self-differential check cannot see.
//  3. Thread-count invariance: bytes at 1/2/4/8/16 threads are identical,
//     with and without a caller GemmScratch, for every entry point.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/gemm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace qnn {
namespace {

struct ThreadGuard {
  ~ThreadGuard() {
    ThreadPool::set_global_threads(ThreadPool::env_threads());
  }
};

std::vector<float> random_matrix(std::int64_t elems, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(elems));
  for (float& x : v) x = static_cast<float>(rng.uniform(-1, 1));
  return v;
}

// The documented canonical order, built from the production kernel
// itself: per-chunk single-chunk gemm calls (count == 1 plans, i.e. the
// classic serial fold) on contiguous operand slices, merged by the
// fixed binary tree. Any divergence between this and the one-shot
// chunked kernel is a merge-order or chunk-boundary bug.
std::vector<float> tree_of_single_chunk_gemms(std::int64_t m, std::int64_t n,
                                              std::int64_t k, const float* a,
                                              const float* b) {
  const GemmKPlan plan = gemm_k_plan(k);
  const std::size_t elems = static_cast<std::size_t>(m * n);
  std::vector<std::vector<float>> parts(
      static_cast<std::size_t>(plan.count), std::vector<float>(elems, 0.0f));
  for (std::int64_t c = 0; c < plan.count; ++c) {
    const std::int64_t p0 = c * plan.chunk;
    const std::int64_t kb = std::min(plan.chunk, k - p0);
    if (kb <= 0) continue;  // k == 0: the single empty chunk
    // Contiguous slices A[:, p0:p0+kb] and B[p0:p0+kb, :].
    std::vector<float> a_slice(static_cast<std::size_t>(m * kb));
    for (std::int64_t i = 0; i < m; ++i)
      std::memcpy(a_slice.data() + i * kb, a + i * k + p0,
                  sizeof(float) * static_cast<std::size_t>(kb));
    gemm(m, n, kb, a_slice.data(), b + p0 * n,
         parts[static_cast<std::size_t>(c)].data());
  }
  // Fixed binary tree: combine parts[lo] += parts[lo + stride].
  for (std::int64_t stride = 1; stride < plan.count; stride *= 2)
    for (std::int64_t lo = 0; lo + stride < plan.count; lo += 2 * stride) {
      float* dst = parts[static_cast<std::size_t>(lo)].data();
      const float* src = parts[static_cast<std::size_t>(lo + stride)].data();
      for (std::size_t e = 0; e < elems; ++e) dst[e] += src[e];
    }
  return parts.empty() ? std::vector<float>(elems, 0.0f)
                       : std::move(parts.front());
}

void naive_gemm_double(std::int64_t m, std::int64_t n, std::int64_t k,
                       const float* a, const float* b, double* c) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[i * k + p]) *
               static_cast<double>(b[p * n + j]);
      c[i * n + j] = acc;
    }
}

bool bytes_equal(const std::vector<float>& x, const std::vector<float>& y) {
  return x.size() == y.size() &&
         std::memcmp(x.data(), y.data(), x.size() * sizeof(float)) == 0;
}

// Shapes straddling every plan edge: K = 0, 1, chunk - 1, chunk,
// chunk + 1, 2*chunk ± 1, and non-multiples; M straddling the 64-row
// blocks; N straddling the 256-column cache blocks.
struct Problem {
  std::int64_t m, n, k;
};

std::vector<Problem> edge_problems() {
  const std::int64_t ch = kGemmKChunk;
  return {
      {1, 1, 0},        {3, 5, 1},         {8, 33, ch - 1},
      {8, 33, ch},      {8, 33, ch + 1},   {1, 300, 2 * ch - 1},
      {5, 96, 2 * ch},  {5, 96, 2 * ch + 1}, {64, 17, 3 * ch + 7},
      {65, 40, 700},    {130, 9, 1000},    {8, 257, 4 * ch + 13},
  };
}

std::vector<Problem> random_problems(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Problem> out;
  for (int i = 0; i < count; ++i) {
    out.push_back({1 + static_cast<std::int64_t>(rng.uniform(0, 140)),
                   1 + static_cast<std::int64_t>(rng.uniform(0, 300)),
                   static_cast<std::int64_t>(rng.uniform(0, 1400))});
  }
  return out;
}

TEST(GemmKPlan, IsAPureShapeFunctionCoveringK) {
  EXPECT_EQ(gemm_k_plan(0), (GemmKPlan{0, 1}));
  EXPECT_EQ(gemm_k_plan(1), (GemmKPlan{1, 1}));
  EXPECT_EQ(gemm_k_plan(kGemmKChunk), (GemmKPlan{kGemmKChunk, 1}));
  EXPECT_EQ(gemm_k_plan(kGemmKChunk + 1), (GemmKPlan{kGemmKChunk, 2}));
  for (std::int64_t k : {1, 255, 256, 257, 511, 512, 513, 1000, 100000}) {
    const GemmKPlan p = gemm_k_plan(k);
    ASSERT_GE(p.count, 1);
    // Chunks tile [0, k): count-1 full chunks plus a non-empty tail.
    EXPECT_LT(p.chunk * (p.count - 1), k) << k;
    EXPECT_GE(p.chunk * p.count, k) << k;
    // Pure function: recomputing yields the identical plan.
    EXPECT_EQ(p, gemm_k_plan(k));
  }
}

TEST(GemmProperty, ChunkedProductEqualsFixedTreeOfSingleChunkProducts) {
  ThreadGuard guard;
  auto problems = edge_problems();
  const auto extra = random_problems(8, 20240807);
  problems.insert(problems.end(), extra.begin(), extra.end());
  for (const Problem& p : problems) {
    SCOPED_TRACE("m=" + std::to_string(p.m) + " n=" + std::to_string(p.n) +
                 " k=" + std::to_string(p.k));
    Rng rng(static_cast<std::uint64_t>(p.m * 131071 + p.n * 8191 + p.k));
    const auto a = random_matrix(p.m * std::max<std::int64_t>(p.k, 1), rng);
    const auto b = random_matrix(std::max<std::int64_t>(p.k, 1) * p.n, rng);
    const std::vector<float> ref =
        tree_of_single_chunk_gemms(p.m, p.n, p.k, a.data(), b.data());
    for (int threads : {1, 2, 4, 8, 16}) {
      ThreadPool::set_global_threads(threads);
      std::vector<float> c(static_cast<std::size_t>(p.m * p.n), -7.0f);
      gemm(p.m, p.n, p.k, a.data(), b.data(), c.data());
      EXPECT_TRUE(bytes_equal(ref, c)) << threads << " threads";
    }
  }
}

TEST(GemmProperty, MatchesNaiveDoubleReferenceWithinRounding) {
  ThreadGuard guard;
  for (const Problem& p : edge_problems()) {
    SCOPED_TRACE("m=" + std::to_string(p.m) + " n=" + std::to_string(p.n) +
                 " k=" + std::to_string(p.k));
    Rng rng(static_cast<std::uint64_t>(p.m * 31 + p.n * 977 + p.k + 5));
    const auto a = random_matrix(p.m * std::max<std::int64_t>(p.k, 1), rng);
    const auto b = random_matrix(std::max<std::int64_t>(p.k, 1) * p.n, rng);
    std::vector<float> c(static_cast<std::size_t>(p.m * p.n));
    std::vector<double> ref(c.size());
    gemm(p.m, p.n, p.k, a.data(), b.data(), c.data());
    naive_gemm_double(p.m, p.n, p.k, a.data(), b.data(), ref.data());
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_NEAR(c[i], ref[i], 1e-3 * (1.0 + std::abs(ref[i]))) << i;
  }
}

// Every entry point, bit-identical across thread counts 1/2/4/8, with
// and without a caller scratch. The serial (1-thread) bytes are the
// canonical reference for each variant.
TEST(GemmProperty, AllVariantsBitIdenticalAcrossThreadsAndScratch) {
  ThreadGuard guard;
  const std::vector<Problem> problems = {
      {8, 96, 1500},   // tall-K inner-product shape: K-parallel engages
      {130, 48, 700},  // several M blocks and several K chunks
      {3, 33, 257},    // chunk + 1
      {70, 20, 64},    // single-chunk plan: the legacy path
  };
  for (const Problem& p : problems) {
    SCOPED_TRACE("m=" + std::to_string(p.m) + " n=" + std::to_string(p.n) +
                 " k=" + std::to_string(p.k));
    Rng rng(static_cast<std::uint64_t>(p.m + p.n * 53 + p.k * 10007));
    const auto a = random_matrix(p.m * p.k, rng);
    const auto b = random_matrix(p.k * p.n, rng);        // [K,N]
    const auto a_t = random_matrix(p.k * p.m, rng);      // [K,M] for at
    const auto b_t = random_matrix(p.n * p.k, rng);      // [N,K] for bt
    const auto row_bias = random_matrix(p.m, rng);
    const auto col_bias = random_matrix(p.n, rng);
    const std::size_t elems = static_cast<std::size_t>(p.m * p.n);

    struct Variant {
      std::string name;
      void (*run)(const Problem&, const float*, const float*, const float*,
                  const float*, const float*, const float*, float*,
                  GemmScratch*);
    };
    const std::vector<Variant> variants = {
        {"gemm",
         [](const Problem& q, const float* a_, const float* b_, const float*,
            const float*, const float*, const float*, float* c,
            GemmScratch* s) { gemm(q.m, q.n, q.k, a_, b_, c, s); }},
        {"gemm_row_bias",
         [](const Problem& q, const float* a_, const float* b_, const float*,
            const float*, const float* rb, const float*, float* c,
            GemmScratch* s) {
           gemm_row_bias(q.m, q.n, q.k, a_, b_, c, rb, s);
         }},
        {"gemm_accumulate",
         [](const Problem& q, const float* a_, const float* b_, const float*,
            const float*, const float*, const float*, float* c,
            GemmScratch* s) {
           for (std::int64_t e = 0; e < q.m * q.n; ++e)
             c[e] = 0.25f * static_cast<float>(e % 17);
           gemm_accumulate(q.m, q.n, q.k, a_, b_, c, s);
         }},
        {"gemm_at",
         [](const Problem& q, const float*, const float* b_,
            const float* at, const float*, const float*, const float*,
            float* c, GemmScratch* s) {
           gemm_at(q.m, q.n, q.k, at, b_, c, s);
         }},
        {"gemm_bt",
         [](const Problem& q, const float* a_, const float*, const float*,
            const float* bt, const float*, const float*, float* c,
            GemmScratch* s) { gemm_bt(q.m, q.n, q.k, a_, bt, c, s); }},
        {"gemm_bt_col_bias",
         [](const Problem& q, const float* a_, const float*, const float*,
            const float* bt, const float*, const float* cb, float* c,
            GemmScratch* s) {
           gemm_bt_col_bias(q.m, q.n, q.k, a_, bt, c, cb, s);
         }},
        {"gemm_bt_accumulate",
         [](const Problem& q, const float* a_, const float*, const float*,
            const float* bt, const float*, const float*, float* c,
            GemmScratch* s) {
           for (std::int64_t e = 0; e < q.m * q.n; ++e)
             c[e] = -0.5f + 0.125f * static_cast<float>(e % 9);
           gemm_bt_accumulate(q.m, q.n, q.k, a_, bt, c, s);
         }},
    };

    for (const Variant& v : variants) {
      SCOPED_TRACE(v.name);
      ThreadPool::set_global_threads(1);
      std::vector<float> ref(elems);
      v.run(p, a.data(), b.data(), a_t.data(), b_t.data(), row_bias.data(),
            col_bias.data(), ref.data(), nullptr);
      for (int threads : {1, 2, 4, 8, 16}) {
        ThreadPool::set_global_threads(threads);
        std::vector<float> plain(elems), scratched(elems);
        GemmScratch scratch;
        v.run(p, a.data(), b.data(), a_t.data(), b_t.data(),
              row_bias.data(), col_bias.data(), plain.data(), nullptr);
        v.run(p, a.data(), b.data(), a_t.data(), b_t.data(),
              row_bias.data(), col_bias.data(), scratched.data(), &scratch);
        EXPECT_TRUE(bytes_equal(ref, plain)) << threads << " threads";
        EXPECT_TRUE(bytes_equal(ref, scratched))
            << threads << " threads (scratch)";
        // A warm scratch (buffers already sized) must not change bytes.
        std::vector<float> warm(elems);
        v.run(p, a.data(), b.data(), a_t.data(), b_t.data(),
              row_bias.data(), col_bias.data(), warm.data(), &scratch);
        EXPECT_TRUE(bytes_equal(ref, warm))
            << threads << " threads (warm scratch)";
      }
    }
  }
}

// The transpose variants must agree byte-for-byte with the plain kernel
// on materialized operands — they share gemm_impl, so any divergence is
// a transpose bug.
TEST(GemmProperty, TransposeVariantsMatchPlainKernelBytes) {
  ThreadGuard guard;
  const Problem p{13, 41, 600};
  Rng rng(99);
  const auto a_t = random_matrix(p.k * p.m, rng);  // [K,M]
  const auto b_t = random_matrix(p.n * p.k, rng);  // [N,K]
  std::vector<float> a(static_cast<std::size_t>(p.m * p.k));
  std::vector<float> b(static_cast<std::size_t>(p.k * p.n));
  for (std::int64_t q = 0; q < p.k; ++q)
    for (std::int64_t i = 0; i < p.m; ++i) a[i * p.k + q] = a_t[q * p.m + i];
  for (std::int64_t j = 0; j < p.n; ++j)
    for (std::int64_t q = 0; q < p.k; ++q) b[q * p.n + j] = b_t[j * p.k + q];

  const std::size_t elems = static_cast<std::size_t>(p.m * p.n);
  std::vector<float> plain(elems), via_at(elems), via_bt(elems);
  gemm(p.m, p.n, p.k, a.data(), b.data(), plain.data());
  gemm_at(p.m, p.n, p.k, a_t.data(), b.data(), via_at.data());
  gemm_bt(p.m, p.n, p.k, a.data(), b_t.data(), via_bt.data());
  EXPECT_TRUE(bytes_equal(plain, via_at));
  EXPECT_TRUE(bytes_equal(plain, via_bt));
}

}  // namespace
}  // namespace qnn
