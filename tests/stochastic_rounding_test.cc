#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fixed/fixed_format.h"

namespace qnn {
namespace {

TEST(StochasticRounding, ExactIntegersUntouched) {
  seed_stochastic_rounding(1);
  for (double v : {-3.0, 0.0, 7.0})
    EXPECT_EQ(round_with_mode(v, Rounding::kStochastic), v);
}

TEST(StochasticRounding, AlwaysAdjacentInteger) {
  seed_stochastic_rounding(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = -5.0 + i * 0.013;
    const double r = round_with_mode(v, Rounding::kStochastic);
    EXPECT_TRUE(r == std::floor(v) || r == std::ceil(v)) << v;
  }
}

TEST(StochasticRounding, UnbiasedInExpectation) {
  seed_stochastic_rounding(3);
  const double v = 2.3;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    sum += round_with_mode(v, Rounding::kStochastic);
  EXPECT_NEAR(sum / n, v, 0.02);

  const double w = -1.75;
  sum = 0;
  for (int i = 0; i < n; ++i)
    sum += round_with_mode(w, Rounding::kStochastic);
  EXPECT_NEAR(sum / n, w, 0.02);
}

TEST(StochasticRounding, SeedReproducible) {
  seed_stochastic_rounding(42);
  std::vector<double> a;
  for (int i = 0; i < 32; ++i)
    a.push_back(round_with_mode(0.5, Rounding::kStochastic));
  seed_stochastic_rounding(42);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(round_with_mode(0.5, Rounding::kStochastic), a[static_cast<std::size_t>(i)]);
}

TEST(StochasticRounding, FormatQuantizeStaysOnGridAndSaturates) {
  seed_stochastic_rounding(7);
  FixedPointFormat f(8, 4, Rounding::kStochastic);
  for (int i = 0; i < 500; ++i) {
    const double q = f.quantize(0.1 + i * 0.01);
    EXPECT_LE(q, f.max_value());
    // On-grid check with deterministic representable().
    EXPECT_TRUE(FixedPointFormat(8, 4).representable(q)) << q;
  }
  EXPECT_DOUBLE_EQ(f.quantize(1000.0), f.max_value());
}

TEST(StochasticRounding, MeanOfQuantizedValuesApproachesInput) {
  seed_stochastic_rounding(9);
  FixedPointFormat f(8, 4, Rounding::kStochastic);
  const double v = 0.07;  // between grid points 0.0625 and 0.125
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += f.quantize(v);
  EXPECT_NEAR(sum / n, v, 0.002);
}

}  // namespace
}  // namespace qnn
