#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.h"

namespace qnn::nn {
namespace {

Param make_param(std::vector<float> w, std::vector<float> g) {
  Param p("w", Shape{static_cast<std::int64_t>(w.size())});
  p.value = Tensor(p.value.shape(), std::move(w));
  p.grad = Tensor(p.grad.shape(), std::move(g));
  return p;
}

SgdConfig plain_sgd(double lr) {
  SgdConfig c;
  c.learning_rate = lr;
  c.momentum = 0;
  c.weight_decay = 0;
  c.clip_grad_norm = 0;
  return c;
}

TEST(Sgd, VanillaStep) {
  Param p = make_param({1.0f, -2.0f}, {0.5f, -1.0f});
  Sgd opt(plain_sgd(0.1));
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value[1], -2.0f + 0.1f * 1.0f);
}

TEST(Sgd, MomentumAccumulates) {
  SgdConfig c = plain_sgd(0.1);
  c.momentum = 0.9;
  Param p = make_param({0.0f}, {1.0f});
  Sgd opt(c);
  opt.step({&p});  // v = -0.1, w = -0.1
  EXPECT_FLOAT_EQ(p.value[0], -0.1f);
  opt.step({&p});  // v = -0.09 - 0.1 = -0.19, w = -0.29
  EXPECT_FLOAT_EQ(p.value[0], -0.29f);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  SgdConfig c = plain_sgd(0.1);
  c.weight_decay = 0.5;
  Param p = make_param({2.0f}, {0.0f});
  Sgd opt(c);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 2.0f - 0.1f * 0.5f * 2.0f);
}

TEST(Sgd, StepDecaySchedule) {
  SgdConfig c = plain_sgd(1.0);
  c.step_epochs = 2;
  c.gamma = 0.1;
  Sgd opt(c);
  Param p = make_param({0.0f}, {0.0f});
  opt.step({&p});
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 1.0);
  opt.on_epoch_end(0);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 1.0);
  opt.on_epoch_end(1);  // epoch 2 boundary
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.1);
  opt.on_epoch_end(3);
  EXPECT_NEAR(opt.learning_rate(), 0.01, 1e-12);
}

TEST(Sgd, LearningRateOverride) {
  Sgd opt(plain_sgd(0.5));
  opt.set_learning_rate(0.125);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.125);
}

TEST(Sgd, ZeroGradClears) {
  Param p = make_param({1.0f}, {3.0f});
  Sgd::zero_grad({&p});
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(Sgd, ClipGradientsRescalesAboveThreshold) {
  Param p = make_param({0.0f, 0.0f}, {3.0f, 4.0f});  // norm 5
  Sgd::clip_gradients({&p}, 1.0);
  EXPECT_NEAR(p.grad[0], 0.6f, 1e-6);
  EXPECT_NEAR(p.grad[1], 0.8f, 1e-6);
}

TEST(Sgd, ClipGradientsLeavesSmallAlone) {
  Param p = make_param({0.0f}, {0.5f});
  Sgd::clip_gradients({&p}, 1.0);
  EXPECT_FLOAT_EQ(p.grad[0], 0.5f);
}

TEST(Sgd, ClipGradientsGlobalAcrossParams) {
  Param a = make_param({0.0f}, {3.0f});
  Param b = make_param({0.0f}, {4.0f});
  Sgd::clip_gradients({&a, &b}, 1.0);  // global norm 5
  EXPECT_NEAR(a.grad[0], 0.6f, 1e-6);
  EXPECT_NEAR(b.grad[0], 0.8f, 1e-6);
}

TEST(Sgd, ClipDisabledWhenNonPositive) {
  Param p = make_param({0.0f}, {100.0f});
  Sgd::clip_gradients({&p}, 0.0);
  EXPECT_FLOAT_EQ(p.grad[0], 100.0f);
}

TEST(Sgd, RebindingDifferentParamListThrows) {
  Param a = make_param({0.0f}, {1.0f});
  Param b = make_param({0.0f}, {1.0f});
  Sgd opt(plain_sgd(0.1));
  opt.step({&a});
  EXPECT_THROW(opt.step({&a, &b}), CheckError);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2 with gradient 2(w-3).
  SgdConfig c = plain_sgd(0.1);
  c.momentum = 0.9;
  Param p = make_param({0.0f}, {0.0f});
  Sgd opt(c);
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-3);
}

}  // namespace
}  // namespace qnn::nn
