#include <gtest/gtest.h>

#include <cmath>

#include "quant/quantizer.h"
#include "util/rng.h"

namespace qnn::quant {
namespace {

Tensor random_tensor(std::int64_t n, double lo, double hi,
                     std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(Shape{n});
  t.fill_uniform(rng, static_cast<float>(lo), static_cast<float>(hi));
  return t;
}

TEST(IdentityQuantizer, LeavesValuesUntouched) {
  IdentityQuantizer q;
  Tensor t = random_tensor(64, -3, 3, 1);
  const Tensor before = t;
  q.apply(t);
  for (std::int64_t i = 0; i < t.count(); ++i)
    EXPECT_EQ(t[i], before[i]);
  EXPECT_EQ(q.bits(), 32);
  EXPECT_DOUBLE_EQ(q.clip_limit(), 0.0);
}

TEST(FixedQuantizer, UncalibratedApplyThrows) {
  FixedQuantizer q(8);
  Tensor t(Shape{4});
  EXPECT_THROW(q.apply(t), CheckError);
}

TEST(FixedQuantizer, ValuesLandOnGrid) {
  FixedQuantizer q(8);
  q.calibrate(1.0);
  ASSERT_TRUE(q.format().has_value());
  Tensor t = random_tensor(256, -1.5, 1.5, 2);
  q.apply(t);
  for (std::int64_t i = 0; i < t.count(); ++i)
    EXPECT_TRUE(q.format()->representable(t[i])) << t[i];
}

TEST(FixedQuantizer, MseCalibrationPrefersClippingForHeavyTails) {
  // Mass at ±0.05 with a single moderate outlier at 1.0: at 4 bits the
  // MSE-optimal format trades the outlier for resolution on the mass.
  std::vector<float> samples(901);
  for (std::size_t i = 0; i < 900; ++i)
    samples[i] = (i % 2 == 0) ? 0.05f : -0.05f;
  samples[900] = 1.0f;
  FixedQuantizer covering(4), mse(4);
  covering.calibrate(1.0);
  mse.calibrate_with_samples(samples, 1.0);
  EXPECT_GT(mse.format()->frac_bits(), covering.format()->frac_bits());
  EXPECT_LT(mse.format()->max_value(), 1.0);
}

TEST(FixedQuantizer, MseCalibrationKeepsRangeForUniformData) {
  // Uniform data up to max: covering format is already MSE-optimal (or
  // close); the chosen max must still cover most of the data.
  std::vector<float> samples(2000);
  Rng rng(4);
  for (float& v : samples) v = static_cast<float>(rng.uniform(-1, 1));
  FixedQuantizer q(8);
  q.calibrate_with_samples(samples, 1.0);
  EXPECT_GE(q.format()->max_value(), 0.5);
}

TEST(FixedQuantizer, ClipLimitTracksFormatMax) {
  FixedQuantizer q(8);
  q.calibrate(2.0);
  EXPECT_DOUBLE_EQ(q.clip_limit(), q.format()->max_value());
}

TEST(Pow2Quantizer, ValuesArePowersOfTwoOrZero) {
  Pow2Quantizer q(6);
  q.calibrate(0.5);
  Tensor t = random_tensor(256, -0.6, 0.6, 5);
  q.apply(t);
  for (std::int64_t i = 0; i < t.count(); ++i) {
    if (t[i] == 0.0f) continue;
    const double e = std::log2(std::fabs(static_cast<double>(t[i])));
    EXPECT_DOUBLE_EQ(e, std::round(e));
  }
}

TEST(Pow2Quantizer, MseCalibrationNeverWorseThanCovering) {
  // Power-of-two grids span ~31 octaves, so the search usually keeps the
  // covering exponent; it must never pick something that fails to cover
  // better than the covering format does on the samples themselves.
  std::vector<float> samples(1000);
  Rng rng(6);
  for (float& v : samples) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  Pow2Quantizer q(6);
  q.calibrate_with_samples(samples, 0.5);
  ASSERT_TRUE(q.format().has_value());
  double mse = 0, covering_mse = 0;
  const Pow2Format covering = Pow2Format::for_range(6, 0.5);
  for (float v : samples) {
    const double e1 = q.format()->quantize(v) - v;
    const double e2 = covering.quantize(v) - v;
    mse += e1 * e1;
    covering_mse += e2 * e2;
  }
  EXPECT_LE(mse, covering_mse + 1e-9);
}

TEST(BinaryQuantizer, MeanAbsProducesTwoLevels) {
  BinaryQuantizer q(BinaryScaleMode::kMeanAbs);
  Tensor t(Shape{4}, {0.5f, -0.25f, 0.75f, -0.5f});
  q.apply(t);  // scale = 0.5
  EXPECT_FLOAT_EQ(t[0], 0.5f);
  EXPECT_FLOAT_EQ(t[1], -0.5f);
  EXPECT_FLOAT_EQ(t[2], 0.5f);
  EXPECT_FLOAT_EQ(t[3], -0.5f);
}

TEST(BinaryQuantizer, PlusMinusOneMode) {
  BinaryQuantizer q(BinaryScaleMode::kPlusMinusOne);
  Tensor t(Shape{3}, {0.01f, -0.7f, 0.0f});
  q.apply(t);
  EXPECT_FLOAT_EQ(t[0], 1.0f);
  EXPECT_FLOAT_EQ(t[1], -1.0f);
  EXPECT_FLOAT_EQ(t[2], 1.0f);
  EXPECT_EQ(q.bits(), 1);
  EXPECT_DOUBLE_EQ(q.clip_limit(), 1.0);
}

TEST(Factory, WeightQuantizerMatchesKind) {
  EXPECT_EQ(make_weight_quantizer(float_config())->bits(), 32);
  EXPECT_EQ(make_weight_quantizer(fixed_config(8, 8))->bits(), 8);
  EXPECT_EQ(make_weight_quantizer(pow2_config())->bits(), 6);
  EXPECT_EQ(make_weight_quantizer(binary_config())->bits(), 1);
}

TEST(Factory, DataQuantizerIsFixedForNonFloat) {
  // Pow2/binary nets still use 16-bit fixed-point data (paper §IV-A).
  auto q = make_data_quantizer(pow2_config());
  EXPECT_EQ(q->bits(), 16);
  auto b = make_data_quantizer(binary_config());
  EXPECT_EQ(b->bits(), 16);
  auto f = make_data_quantizer(float_config());
  EXPECT_EQ(f->bits(), 32);
}

TEST(QuantizeIdempotence, AllQuantizersStableUnderReapplication) {
  for (auto config : paper_precisions()) {
    auto q = make_weight_quantizer(config);
    q->calibrate(1.0);
    Tensor t = random_tensor(128, -1.2, 1.2, 9);
    q->apply(t);
    Tensor once = t;
    q->apply(t);
    for (std::int64_t i = 0; i < t.count(); ++i)
      EXPECT_EQ(t[i], once[i]) << config.label();
  }
}

}  // namespace
}  // namespace qnn::quant
