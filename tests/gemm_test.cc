#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "tensor/gemm.h"
#include "util/rng.h"

namespace qnn {
namespace {

void naive_gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                const float* a, const float* b, double* c) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = acc;
    }
}

std::vector<float> random_matrix(std::int64_t elems, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(elems));
  for (float& x : v) x = static_cast<float>(rng.uniform(-1, 1));
  return v;
}

TEST(Gemm, TinyKnownValues) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[4];
  gemm(2, 2, 2, a, b, c);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Gemm, AccumulateAddsToExisting) {
  const float a[] = {1, 0, 0, 1};
  const float b[] = {2, 3, 4, 5};
  float c[] = {10, 10, 10, 10};
  gemm_accumulate(2, 2, 2, a, b, c);
  EXPECT_FLOAT_EQ(c[0], 12);
  EXPECT_FLOAT_EQ(c[3], 15);
}

class GemmSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesNaiveReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + n * 101 + k));
  const auto a = random_matrix(static_cast<std::int64_t>(m) * k, rng);
  const auto b = random_matrix(static_cast<std::int64_t>(k) * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  std::vector<double> ref(static_cast<std::size_t>(m) * n);
  gemm(m, n, k, a.data(), b.data(), c.data());
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-3 * (1 + std::abs(ref[i])))
        << "at " << i << " for " << m << "x" << n << "x" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                      std::make_tuple(5, 1, 9), std::make_tuple(4, 4, 4),
                      std::make_tuple(3, 5, 2), std::make_tuple(17, 19, 23),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 63, 70),
                      std::make_tuple(128, 300, 257),
                      std::make_tuple(10, 1024, 50)));

TEST(Gemm, TransposedAVariant) {
  // A stored [K, M]: A^T = [1 3; 2 4]^T ... verify against explicit.
  Rng rng(5);
  const int m = 13, n = 9, k = 21;
  const auto a_t = random_matrix(k * m, rng);  // stored [K, M]
  const auto b = random_matrix(k * n, rng);
  // Materialize A for the reference.
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  for (int p = 0; p < k; ++p)
    for (int i = 0; i < m; ++i) a[i * k + p] = a_t[p * m + i];
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  std::vector<double> ref(static_cast<std::size_t>(m) * n);
  gemm_at(m, n, k, a_t.data(), b.data(), c.data());
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3);
}

TEST(Gemm, TransposedBVariant) {
  Rng rng(6);
  const int m = 11, n = 17, k = 8;
  const auto a = random_matrix(m * k, rng);
  const auto b_t = random_matrix(n * k, rng);  // stored [N, K]
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  for (int j = 0; j < n; ++j)
    for (int p = 0; p < k; ++p) b[p * n + j] = b_t[j * k + p];
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  std::vector<double> ref(static_cast<std::size_t>(m) * n);
  gemm_bt(m, n, k, a.data(), b_t.data(), c.data());
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3);
}

TEST(Gemm, TransposedBAccumulate) {
  Rng rng(7);
  const int m = 6, n = 10, k = 12;
  const auto a = random_matrix(m * k, rng);
  const auto b_t = random_matrix(n * k, rng);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 1.0f);
  std::vector<float> expect(c);
  std::vector<float> delta(static_cast<std::size_t>(m) * n);
  gemm_bt(m, n, k, a.data(), b_t.data(), delta.data());
  for (std::size_t i = 0; i < c.size(); ++i) expect[i] += delta[i];
  gemm_bt_accumulate(m, n, k, a.data(), b_t.data(), c.data());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expect[i], 1e-4);
}

}  // namespace
}  // namespace qnn
