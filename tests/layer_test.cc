#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/inner_product.h"
#include "nn/pool.h"
#include "util/check.h"

namespace qnn::nn {
namespace {

// ----------------------------------------------------------------- Conv

TEST(Conv2d, OutputShape) {
  ConvSpec spec;
  spec.out_channels = 20;
  spec.kernel = 5;
  Conv2d conv(1, spec);
  EXPECT_EQ(conv.output_shape(Shape{2, 1, 28, 28}), Shape({2, 20, 24, 24}));
}

TEST(Conv2d, OutputShapeWithPadAndStride) {
  ConvSpec spec;
  spec.out_channels = 8;
  spec.kernel = 3;
  spec.stride = 2;
  spec.pad = 1;
  Conv2d conv(3, spec);
  EXPECT_EQ(conv.output_shape(Shape{1, 3, 32, 32}), Shape({1, 8, 16, 16}));
}

TEST(Conv2d, IdentityKernelForward) {
  // 1x1 kernel with weight 1: output == input (per channel).
  ConvSpec spec;
  spec.out_channels = 1;
  spec.kernel = 1;
  Conv2d conv(1, spec);
  conv.weight().value.fill(1.0f);
  Tensor in(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor out = conv.forward(in);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out[i], in[i]);
}

TEST(Conv2d, KnownSmallConvolution) {
  // 3×3 input, 2×2 all-ones kernel: each output = window sum.
  ConvSpec spec;
  spec.out_channels = 1;
  spec.kernel = 2;
  Conv2d conv(1, spec);
  conv.weight().value.fill(1.0f);
  conv.bias().value.fill(0.5f);
  Tensor in(Shape{1, 1, 3, 3}, {0, 1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor out = conv.forward(in);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out[0], 0 + 1 + 3 + 4 + 0.5f);
  EXPECT_FLOAT_EQ(out[3], 4 + 5 + 7 + 8 + 0.5f);
}

TEST(Conv2d, MultiChannelAccumulates) {
  ConvSpec spec;
  spec.out_channels = 1;
  spec.kernel = 1;
  Conv2d conv(2, spec);
  conv.weight().value = Tensor(Shape{1, 2, 1, 1}, {2.0f, 3.0f});
  Tensor in(Shape{1, 2, 1, 1}, {10.0f, 100.0f});
  const Tensor out = conv.forward(in);
  EXPECT_FLOAT_EQ(out[0], 2 * 10 + 3 * 100);
}

TEST(Conv2d, BatchIndependence) {
  ConvSpec spec;
  spec.out_channels = 4;
  spec.kernel = 3;
  Conv2d conv(2, spec);
  Rng rng(3);
  conv.init_weights(rng);
  Tensor a(Shape{1, 2, 6, 6}), b(Shape{1, 2, 6, 6});
  a.fill_uniform(rng, -1, 1);
  b.fill_uniform(rng, -1, 1);
  // Concatenate into one batch.
  Tensor both(Shape{2, 2, 6, 6});
  std::copy_n(a.data(), a.count(), both.data());
  std::copy_n(b.data(), b.count(), both.data() + a.count());
  const Tensor oa = conv.forward(a);
  const Tensor ob = conv.forward(b);
  const Tensor oboth = conv.forward(both);
  for (std::int64_t i = 0; i < oa.count(); ++i) {
    EXPECT_FLOAT_EQ(oboth[i], oa[i]);
    EXPECT_FLOAT_EQ(oboth[oa.count() + i], ob[i]);
  }
}

TEST(Conv2d, WrongChannelCountThrows) {
  ConvSpec spec;
  spec.out_channels = 4;
  spec.kernel = 3;
  Conv2d conv(3, spec);
  Tensor in(Shape{1, 2, 8, 8});
  EXPECT_THROW(conv.forward(in), CheckError);
}

TEST(Conv2d, BackwardBeforeForwardThrows) {
  ConvSpec spec;
  spec.out_channels = 1;
  spec.kernel = 1;
  Conv2d conv(1, spec);
  EXPECT_THROW(conv.backward(Tensor(Shape{1, 1, 1, 1})), CheckError);
}

TEST(Conv2d, DescribeCountsMacsAndParams) {
  ConvSpec spec;
  spec.out_channels = 20;
  spec.kernel = 5;
  Conv2d conv(1, spec);
  const LayerDesc d = conv.describe(Shape{1, 1, 28, 28});
  EXPECT_EQ(d.kind, "conv");
  EXPECT_EQ(d.fan_in, 25);
  EXPECT_EQ(d.macs, 25 * 20 * 24 * 24);
  EXPECT_EQ(d.weights, 20 * 25);
  EXPECT_EQ(d.biases, 20);
}

TEST(Conv2d, NoBiasVariant) {
  ConvSpec spec;
  spec.out_channels = 2;
  spec.kernel = 1;
  spec.bias = false;
  Conv2d conv(1, spec);
  EXPECT_EQ(conv.params().size(), 1u);
  EXPECT_EQ(conv.describe(Shape{1, 1, 4, 4}).biases, 0);
}

// ----------------------------------------------------------------- Pool

TEST(Pool2d, MaxPoolKnownValues) {
  Pool2d pool(PoolSpec{PoolMode::kMax, 2, 2, 0});
  Tensor in(Shape{1, 1, 4, 4},
            {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  const Tensor out = pool.forward(in);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out[0], 6);
  EXPECT_FLOAT_EQ(out[1], 8);
  EXPECT_FLOAT_EQ(out[2], 14);
  EXPECT_FLOAT_EQ(out[3], 16);
}

TEST(Pool2d, AvgPoolKnownValues) {
  Pool2d pool(PoolSpec{PoolMode::kAvg, 2, 2, 0});
  Tensor in(Shape{1, 1, 2, 4}, {1, 3, 5, 7, 2, 4, 6, 8});
  const Tensor out = pool.forward(in);
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  EXPECT_FLOAT_EQ(out[1], 6.5f);
}

TEST(Pool2d, CeilModeMatchesCaffe) {
  // Caffe: 3×3 stride-2 pooling on 32 -> 16 (ceil((32-3)/2)+1 = 16).
  Pool2d pool(PoolSpec{PoolMode::kMax, 3, 2, 0});
  EXPECT_EQ(pool.output_shape(Shape{1, 8, 32, 32}), Shape({1, 8, 16, 16}));
  // On 8 -> 4.
  EXPECT_EQ(pool.output_shape(Shape{1, 8, 8, 8}), Shape({1, 8, 4, 4}));
  // Even kernel/stride: 24 -> 12.
  Pool2d even(PoolSpec{PoolMode::kMax, 2, 2, 0});
  EXPECT_EQ(even.output_shape(Shape{1, 8, 24, 24}), Shape({1, 8, 12, 12}));
}

TEST(Pool2d, EdgeWindowsClipToInput) {
  // 3×3 stride-2 on a 5×5 ramp: the last window is clipped; avg must
  // divide by the clipped count.
  Pool2d pool(PoolSpec{PoolMode::kAvg, 3, 2, 0});
  Tensor in(Shape{1, 1, 5, 5});
  in.fill(1.0f);
  const Tensor out = pool.forward(in);
  // ceil((5-3)/2)+1 = 2.
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  for (std::int64_t i = 0; i < out.count(); ++i)
    EXPECT_FLOAT_EQ(out[i], 1.0f);  // uniform input stays uniform
}

TEST(Pool2d, MaxBackwardRoutesToArgmax) {
  Pool2d pool(PoolSpec{PoolMode::kMax, 2, 2, 0});
  Tensor in(Shape{1, 1, 2, 2}, {1, 9, 3, 4});
  (void)pool.forward(in);
  Tensor g(Shape{1, 1, 1, 1}, {5.0f});
  const Tensor gin = pool.backward(g);
  EXPECT_FLOAT_EQ(gin[0], 0);
  EXPECT_FLOAT_EQ(gin[1], 5);
  EXPECT_FLOAT_EQ(gin[2], 0);
  EXPECT_FLOAT_EQ(gin[3], 0);
}

TEST(Pool2d, AvgBackwardDistributesEvenly) {
  Pool2d pool(PoolSpec{PoolMode::kAvg, 2, 2, 0});
  Tensor in(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  (void)pool.forward(in);
  Tensor g(Shape{1, 1, 1, 1}, {8.0f});
  const Tensor gin = pool.backward(g);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gin[i], 2.0f);
}

TEST(Pool2d, InvalidSpecThrows) {
  EXPECT_THROW(Pool2d(PoolSpec{PoolMode::kMax, 0, 2, 0}), CheckError);
  EXPECT_THROW(Pool2d(PoolSpec{PoolMode::kMax, 2, 2, 2}), CheckError);
}

// ----------------------------------------------------- InnerProduct

TEST(InnerProduct, KnownForward) {
  InnerProduct ip(3, 2);
  ip.weight().value = Tensor(Shape{2, 3}, {1, 0, -1, 2, 2, 2});
  ip.bias().value = Tensor(Shape{2}, {0.5f, -0.5f});
  Tensor in(Shape{1, 3}, {1, 2, 3});
  const Tensor out = ip.forward(in);
  EXPECT_FLOAT_EQ(out[0], 1 - 3 + 0.5f);
  EXPECT_FLOAT_EQ(out[1], 2 + 4 + 6 - 0.5f);
}

TEST(InnerProduct, FlattensRank4Input) {
  InnerProduct ip(8, 2);
  Rng rng(5);
  ip.init_weights(rng);
  Tensor in(Shape{3, 2, 2, 2});
  in.fill_uniform(rng, -1, 1);
  const Tensor out = ip.forward(in);
  EXPECT_EQ(out.shape(), Shape({3, 2}));
  // Same data pre-flattened gives identical outputs.
  const Tensor out2 = ip.forward(in.reshaped(Shape{3, 8}));
  for (std::int64_t i = 0; i < out.count(); ++i)
    EXPECT_FLOAT_EQ(out[i], out2[i]);
}

TEST(InnerProduct, WrongFeatureCountThrows) {
  InnerProduct ip(8, 2);
  EXPECT_THROW(ip.forward(Tensor(Shape{1, 7})), CheckError);
}

TEST(InnerProduct, BackwardReturnsInputShapedGradient) {
  InnerProduct ip(8, 2);
  Rng rng(5);
  ip.init_weights(rng);
  Tensor in(Shape{3, 2, 2, 2});
  in.fill_uniform(rng, -1, 1);
  (void)ip.forward(in);
  Tensor g(Shape{3, 2});
  g.fill(1.0f);
  const Tensor gin = ip.backward(g);
  EXPECT_EQ(gin.shape(), Shape({3, 2, 2, 2}));
}

TEST(InnerProduct, DescribeCounts) {
  InnerProduct ip(800, 500);
  const LayerDesc d = ip.describe(Shape{1, 50, 4, 4});
  EXPECT_EQ(d.kind, "inner_product");
  EXPECT_EQ(d.macs, 800 * 500);
  EXPECT_EQ(d.weights, 800 * 500);
  EXPECT_EQ(d.biases, 500);
  EXPECT_EQ(d.fan_in, 800);
}

// ------------------------------------------------------------- ReLU

TEST(Relu, ClampsNegatives) {
  Relu relu;
  Tensor in(Shape{1, 4}, {-1, 0, 2, -3});
  const Tensor out = relu.forward(in);
  EXPECT_FLOAT_EQ(out[0], 0);
  EXPECT_FLOAT_EQ(out[1], 0);
  EXPECT_FLOAT_EQ(out[2], 2);
  EXPECT_FLOAT_EQ(out[3], 0);
}

TEST(Relu, BackwardMasksByActivation) {
  Relu relu;
  Tensor in(Shape{1, 3}, {-1, 1, 2});
  (void)relu.forward(in);
  Tensor g(Shape{1, 3}, {10, 10, 10});
  const Tensor gin = relu.backward(g);
  EXPECT_FLOAT_EQ(gin[0], 0);
  EXPECT_FLOAT_EQ(gin[1], 10);
  EXPECT_FLOAT_EQ(gin[2], 10);
}

TEST(Relu, PreservesShape) {
  Relu relu;
  EXPECT_EQ(relu.output_shape(Shape{2, 3, 4, 5}), Shape({2, 3, 4, 5}));
}

}  // namespace
}  // namespace qnn::nn
