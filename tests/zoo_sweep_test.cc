// Parameterized structural sweep over every zoo architecture: shape
// chains, op accounting, backward plumbing, and hardware schedulability
// must hold for all five networks at multiple channel scales.
#include <gtest/gtest.h>

#include <tuple>

#include "exp/sweep.h"
#include "nn/loss.h"
#include "nn/zoo.h"

namespace qnn::nn {
namespace {

class ZooSweep
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(ZooSweep, ForwardShapeAndDescribeAgree) {
  const auto [name, scale] = GetParam();
  ZooConfig zc;
  zc.channel_scale = scale;
  auto net = make_network(name, zc);
  const Shape in = input_shape_for(name);
  const auto descs = net->describe(in);

  Tensor x(in);
  Rng rng(3);
  x.fill_uniform(rng, 0, 1);
  for (std::size_t i = 0; i < net->num_layers(); ++i) {
    x = net->layer(i).forward(x);
    ASSERT_EQ(x.shape(), descs[i].out)
        << name << " layer " << i << " (" << descs[i].kind << ')';
  }
  EXPECT_EQ(x.shape(), Shape({1, 10}));
}

TEST_P(ZooSweep, OpAccountingConsistent) {
  const auto [name, scale] = GetParam();
  ZooConfig zc;
  zc.channel_scale = scale;
  auto net = make_network(name, zc);
  std::int64_t total_macs = 0, total_weights = 0;
  for (const auto& d : net->describe(input_shape_for(name))) {
    EXPECT_GE(d.macs, 0);
    EXPECT_GE(d.weights, 0);
    if (d.kind == "conv" || d.kind == "inner_product") {
      EXPECT_GT(d.macs, 0) << d.name;
      EXPECT_GT(d.fan_in, 0) << d.name;
      // MACs = fan_in × output elements for both layer kinds.
      EXPECT_EQ(d.macs, d.fan_in * d.out.count_from(1)) << d.name;
    }
    total_macs += d.macs;
    total_weights += d.weights + d.biases;
  }
  EXPECT_GT(total_macs, 0);
  EXPECT_EQ(total_weights, net->num_params());
}

TEST_P(ZooSweep, BackwardReachesEveryParameter) {
  const auto [name, scale] = GetParam();
  ZooConfig zc;
  zc.channel_scale = scale;
  auto net = make_network(name, zc);
  const Shape in_shape = input_shape_for(name);
  Tensor x(Shape{std::vector<std::int64_t>{2, in_shape[1], in_shape[2],
                                           in_shape[3]}});
  Rng rng(5);
  x.fill_uniform(rng, 0, 1);
  auto params = net->trainable_params();
  for (auto* p : params) p->zero_grad();
  const Tensor logits = net->forward(x);
  const auto lr = softmax_cross_entropy(logits, {1, 7});
  net->backward(lr.grad_logits);
  for (auto* p : params) {
    double norm = 0;
    for (std::int64_t i = 0; i < p->grad.count(); ++i)
      norm += std::abs(p->grad[i]);
    EXPECT_GT(norm, 0.0) << name << " param " << p->name;
  }
}

TEST_P(ZooSweep, SchedulableOnAccelerator) {
  const auto [name, scale] = GetParam();
  ZooConfig zc;
  zc.channel_scale = scale;
  auto net = make_network(name, zc);
  hw::AcceleratorConfig cfg;
  cfg.precision = quant::fixed_config(16, 16);
  const hw::Accelerator acc(cfg);
  const auto sched =
      hw::schedule_network(net->describe(input_shape_for(name)), acc);
  EXPECT_GT(sched.total_cycles, 0);
  EXPECT_GT(sched.energy_uj(acc), 0.0);
  // Tiling can never beat the MAC bound.
  std::int64_t macs = 0;
  for (const auto& d : net->describe(input_shape_for(name)))
    macs += d.macs;
  EXPECT_GE(sched.total_cycles, macs / 256);
}

INSTANTIATE_TEST_SUITE_P(
    AllNetworks, ZooSweep,
    ::testing::Combine(::testing::Values("lenet", "convnet", "alex",
                                         "alex+", "alex++"),
                       ::testing::Values(0.2, 1.0)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, double>>&
           info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name)
        if (c == '+') c = 'p';
      return name + (std::get<1>(info.param) < 1.0 ? "_scaled" : "_full");
    });

}  // namespace
}  // namespace qnn::nn
