// Validates the Table I / Table II architectures: shapes flow, and at
// channel_scale 1 the parameter counts reproduce the paper's §V-B
// memory numbers (≈1650 KB LeNet, ≈2150 KB ConvNet, ≈350 KB ALEX,
// ≈1250 KB ALEX+, ≈9400 KB ALEX++ at 32-bit).
#include <gtest/gtest.h>

#include "nn/zoo.h"
#include "util/check.h"

namespace qnn::nn {
namespace {

TEST(Zoo, LenetShapes) {
  auto net = make_lenet();
  Tensor in(Shape{1, 1, 28, 28});
  const Tensor out = net->forward(in);
  EXPECT_EQ(out.shape(), Shape({1, 10}));
}

TEST(Zoo, LenetParamCountMatchesPaper) {
  auto net = make_lenet();
  // conv1 20*25+20, conv2 50*20*25+50, ip 500*800+500, ip 10*500+10
  EXPECT_EQ(net->num_params(), 500 + 20 + 25000 + 50 + 400000 + 500 + 5000 + 10);
  const double kb = static_cast<double>(net->num_params()) * 4 / 1024;
  EXPECT_NEAR(kb, 1650, 60);  // paper: ~1650 KB at full precision
}

TEST(Zoo, ConvnetShapesAndParams) {
  auto net = make_convnet();
  Tensor in(Shape{2, 3, 32, 32});
  EXPECT_EQ(net->forward(in).shape(), Shape({2, 10}));
  const double kb = static_cast<double>(net->num_params()) * 4 / 1024;
  EXPECT_NEAR(kb, 2150, 100);  // paper: ~2150 KB
}

TEST(Zoo, AlexShapesAndParams) {
  auto net = make_alex();
  Tensor in(Shape{1, 3, 32, 32});
  EXPECT_EQ(net->forward(in).shape(), Shape({1, 10}));
  const double kb = static_cast<double>(net->num_params()) * 4 / 1024;
  EXPECT_NEAR(kb, 350, 25);  // paper: ~350 KB
}

TEST(Zoo, AlexPlusParams) {
  auto net = make_alex_plus();
  Tensor in(Shape{1, 3, 32, 32});
  EXPECT_EQ(net->forward(in).shape(), Shape({1, 10}));
  const double kb = static_cast<double>(net->num_params()) * 4 / 1024;
  EXPECT_NEAR(kb, 1250, 80);  // paper: ~1250 KB
}

TEST(Zoo, AlexPlusPlusParams) {
  auto net = make_alex_plus_plus();
  Tensor in(Shape{1, 3, 32, 32});
  EXPECT_EQ(net->forward(in).shape(), Shape({1, 10}));
  const double kb = static_cast<double>(net->num_params()) * 4 / 1024;
  EXPECT_NEAR(kb, 9400, 400);  // paper: ~9400 KB
}

TEST(Zoo, AlexPlusDoublesAlexChannels) {
  // ALEX+ = ALEX with doubled conv channels (Table II): its conv layers
  // must carry 4x the weights (2x in, 2x out), modulo the first layer.
  const auto alex = make_alex()->describe(Shape{1, 3, 32, 32});
  const auto plus = make_alex_plus()->describe(Shape{1, 3, 32, 32});
  ASSERT_EQ(alex.size(), plus.size());
  // First conv: input channels fixed at 3 -> exactly 2x weights.
  EXPECT_EQ(plus[0].weights, 2 * alex[0].weights);
}

TEST(Zoo, ChannelScaleShrinksParams) {
  ZooConfig half;
  half.channel_scale = 0.5;
  EXPECT_LT(make_lenet(half)->num_params(), make_lenet()->num_params() / 2);
  // Output layer width unaffected.
  Tensor in(Shape{1, 1, 28, 28});
  EXPECT_EQ(make_lenet(half)->forward(in).shape(), Shape({1, 10}));
}

TEST(Zoo, MakeNetworkByName) {
  for (const char* name : {"lenet", "convnet", "alex", "alex+", "alex++"}) {
    ZooConfig c;
    c.channel_scale = 0.25;
    auto net = make_network(name, c);
    EXPECT_EQ(net->name(), name);
    Tensor in(input_shape_for(name));
    EXPECT_EQ(net->forward(in).shape(), Shape({1, 10}));
  }
  EXPECT_THROW(make_network("resnet", {}), CheckError);
  EXPECT_THROW(input_shape_for("vgg"), CheckError);
}

TEST(Zoo, MacCountsOrdering) {
  // Per-image MACs: ALEX < ALEX+ and ALEX < ALEX++ (Table V energy).
  auto macs = [](const std::string& name) {
    std::int64_t total = 0;
    for (const auto& d :
         make_network(name, {})->describe(input_shape_for(name)))
      total += d.macs;
    return total;
  };
  const auto alex = macs("alex");
  EXPECT_GT(macs("alex+"), 3 * alex);
  EXPECT_GT(macs("alex++"), 2 * alex);
  // LeNet ≈ 2.3 MMACs/image (DianNao-era figure for 28×28 LeNet).
  EXPECT_NEAR(static_cast<double>(macs("lenet")), 2.3e6, 0.4e6);
}

TEST(Zoo, InitSeedChangesWeights) {
  ZooConfig a, b;
  a.init_seed = 1;
  b.init_seed = 2;
  auto na = make_alex(a);
  auto nb = make_alex(b);
  const auto pa = na->trainable_params();
  const auto pb = nb->trainable_params();
  EXPECT_NE(pa[0]->value[0], pb[0]->value[0]);
}

}  // namespace
}  // namespace qnn::nn
