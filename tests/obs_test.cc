// Tests for the observability layer (DESIGN.md §11): metrics registry
// fold math and bucket edges, tracer span recording and chrome-trace
// JSON shape, RunReport document structure, and the GuardCounters
// classification partition the telemetry reports on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "quant/guards.h"
#include "util/check.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace qnn {
namespace {

struct ThreadGuard {
  ~ThreadGuard() {
    ThreadPool::set_global_threads(ThreadPool::env_threads());
  }
};

// Leaves the tracer the way tests expect to find it: disabled and empty.
struct TraceGuard {
  ~TraceGuard() {
    obs::set_trace_enabled(false);
    obs::clear_trace();
  }
};

// --- metrics registry --------------------------------------------------

TEST(ObsMetrics, CounterFoldsExactlyAcrossThreads) {
  ThreadGuard guard;
  obs::Registry reg;
  obs::Counter c = reg.counter("test.adds");
  ThreadPool::set_global_threads(8);
  const std::int64_t n = 1000;
  parallel_run(n, [&](std::int64_t i) { c.add(i + 1); });
  const obs::Snapshot snap = reg.snapshot();
  const obs::MetricSnapshot* m = snap.find("test.adds");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, obs::MetricKind::kCounter);
  EXPECT_EQ(m->value, n * (n + 1) / 2);  // exact: integer stripe fold
}

TEST(ObsMetrics, RepeatedRegistrationSharesStorage) {
  obs::Registry reg;
  obs::Counter a = reg.counter("same");
  obs::Counter b = reg.counter("same");
  a.inc();
  b.inc();
  EXPECT_EQ(reg.snapshot().find("same")->value, 2);
  EXPECT_EQ(reg.snapshot().metrics.size(), 1u);
}

TEST(ObsMetrics, KindOrBoundsMismatchThrows) {
  obs::Registry reg;
  reg.counter("m");
  EXPECT_THROW(reg.gauge("m"), CheckError);
  EXPECT_THROW(reg.histogram("m", {1, 2}), CheckError);
  reg.histogram("h", {1, 2, 4});
  EXPECT_THROW(reg.histogram("h", {1, 2, 8}), CheckError);
  EXPECT_NO_THROW(reg.histogram("h", {1, 2, 4}));
  EXPECT_THROW(reg.counter(""), CheckError);
  EXPECT_THROW(reg.histogram("desc", {4, 2, 1}), CheckError);
}

TEST(ObsMetrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("lat", {1, 2, 4});
  // Bucket i counts v <= bounds[i]; above the last bound is overflow.
  h.observe(0);  // bucket 0
  h.observe(1);  // bucket 0 (inclusive edge)
  h.observe(2);  // bucket 1
  h.observe(3);  // bucket 2
  h.observe(4);  // bucket 2 (inclusive edge)
  h.observe(5);  // overflow
  const obs::Snapshot snap = reg.snapshot();
  const obs::MetricSnapshot* m = snap.find("lat");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(m->buckets[0], 2);
  EXPECT_EQ(m->buckets[1], 1);
  EXPECT_EQ(m->buckets[2], 2);
  EXPECT_EQ(m->buckets[3], 1);
  EXPECT_EQ(m->count, 6);
  EXPECT_EQ(m->sum, 0 + 1 + 2 + 3 + 4 + 5);
  EXPECT_DOUBLE_EQ(m->mean(), 15.0 / 6.0);
}

TEST(ObsMetrics, HistogramFoldsExactlyAcrossThreads) {
  ThreadGuard guard;
  obs::Registry reg;
  obs::Histogram h = reg.histogram("par", obs::exponential_bounds(1024));
  ThreadPool::set_global_threads(8);
  const std::int64_t n = 500;
  parallel_run(n, [&](std::int64_t i) { h.observe(i); });
  const obs::Snapshot snap = reg.snapshot();
  const obs::MetricSnapshot* m = snap.find("par");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, n);
  EXPECT_EQ(m->sum, n * (n - 1) / 2);
}

TEST(ObsMetrics, GaugeLastWriteWinsAndAdds) {
  obs::Registry reg;
  obs::Gauge g = reg.gauge("depth");
  g.set(7);
  EXPECT_EQ(reg.snapshot().find("depth")->value, 7);
  g.set(3);
  g.add(2);
  EXPECT_EQ(reg.snapshot().find("depth")->value, 5);
}

TEST(ObsMetrics, ResetZeroesButKeepsRegistrations) {
  obs::Registry reg;
  obs::Counter c = reg.counter("r");
  c.add(9);
  reg.reset();
  EXPECT_EQ(reg.snapshot().find("r")->value, 0);
  c.inc();  // handle survives the reset
  EXPECT_EQ(reg.snapshot().find("r")->value, 1);
}

TEST(ObsMetrics, SnapshotIsSortedAndSerializes) {
  obs::Registry reg;
  reg.counter("zz");
  reg.counter("aa");
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  EXPECT_EQ(snap.metrics[0].name, "aa");
  EXPECT_EQ(snap.metrics[1].name, "zz");
  const json::Value round =
      json::parse(snap.to_json().dump(), "snapshot");
  EXPECT_EQ(round.size(), 2u);
  EXPECT_EQ(round.at(std::size_t{0}).at("kind").as_string(), "counter");
}

TEST(ObsMetrics, ExponentialBounds) {
  EXPECT_EQ(obs::exponential_bounds(8),
            (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(obs::exponential_bounds(10),
            (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(obs::exponential_bounds(1), (std::vector<std::int64_t>{1}));
}

TEST(ObsMetrics, GlobalRegistryIsAProcessSingleton) {
  EXPECT_EQ(&obs::Registry::global(), &obs::Registry::global());
}

// --- histogram quantiles -----------------------------------------------

// Hand-built snapshot for quantile goldens; count is derived.
obs::MetricSnapshot hist_snapshot(std::vector<std::int64_t> bounds,
                                  std::vector<std::int64_t> buckets) {
  obs::MetricSnapshot m;
  m.name = "golden";
  m.kind = obs::MetricKind::kHistogram;
  m.bounds = std::move(bounds);
  m.buckets = std::move(buckets);
  for (std::int64_t b : m.buckets) m.count += b;
  return m;
}

// Golden values for the documented fixed-bucket linear interpolation:
// samples in bucket i are uniform over (lo, hi], target rank q * count.
TEST(ObsMetrics, QuantileGoldenSingleBucket) {
  const obs::MetricSnapshot m = hist_snapshot({10}, {4, 0});
  EXPECT_DOUBLE_EQ(m.quantile(0.0), 0.0);    // rank 0: bucket floor
  EXPECT_DOUBLE_EQ(m.quantile(0.5), 5.0);    // rank 2 of 4: halfway
  EXPECT_DOUBLE_EQ(m.quantile(0.25), 2.5);   // rank 1 of 4
  EXPECT_DOUBLE_EQ(m.quantile(1.0), 10.0);   // rank 4: bucket ceiling
}

TEST(ObsMetrics, QuantileGoldenInterpolatesAcrossBuckets) {
  const obs::MetricSnapshot m = hist_snapshot({10, 20}, {2, 2, 0});
  EXPECT_DOUBLE_EQ(m.quantile(0.5), 10.0);   // rank 2 exhausts bucket 0
  EXPECT_DOUBLE_EQ(m.quantile(0.75), 15.0);  // rank 3: half of (10, 20]
  EXPECT_DOUBLE_EQ(m.quantile(1.0), 20.0);
}

TEST(ObsMetrics, QuantileGoldenSkipsEmptyBuckets) {
  const obs::MetricSnapshot m =
      hist_snapshot({1, 2, 4, 8}, {0, 3, 0, 1, 0});
  // Rank 1 of 4 lands a third into bucket (1, 2].
  EXPECT_DOUBLE_EQ(m.quantile(0.25), 1.0 + 1.0 / 3.0);
  // Rank 4 lands in bucket (4, 8] after skipping the empty (2, 4].
  EXPECT_DOUBLE_EQ(m.quantile(1.0), 8.0);
}

TEST(ObsMetrics, QuantileOverflowClampsToLastFiniteBound) {
  const obs::MetricSnapshot m = hist_snapshot({10, 20}, {0, 0, 5});
  // The overflow bucket has no upper bound: documented under-estimate.
  EXPECT_DOUBLE_EQ(m.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(m.quantile(0.99), 20.0);
}

TEST(ObsMetrics, QuantileEmptyHistogramReturnsSentinel) {
  // No samples means no defined quantile: the sentinel, not a fake 0
  // that downstream consumers could mistake for a real measurement.
  const obs::MetricSnapshot m = hist_snapshot({10}, {0, 0});
  EXPECT_DOUBLE_EQ(m.quantile(0.0), obs::kQuantileNoSamples);
  EXPECT_DOUBLE_EQ(m.quantile(0.5), obs::kQuantileNoSamples);
  EXPECT_DOUBLE_EQ(m.quantile(1.0), obs::kQuantileNoSamples);
}

TEST(ObsMetrics, QuantileBoundlessOverflowReturnsSentinel) {
  // All mass in the overflow bucket of a histogram with no finite
  // bounds: there is no bound to clamp to, so the sentinel again.
  const obs::MetricSnapshot m = hist_snapshot({}, {5});
  EXPECT_DOUBLE_EQ(m.quantile(0.5), obs::kQuantileNoSamples);
  EXPECT_DOUBLE_EQ(m.quantile(1.0), obs::kQuantileNoSamples);
}

TEST(ObsMetrics, StripeStatsReportOccupancyInvariants) {
  const int before = obs::stripe_stats().threads_registered;
  // Each fresh thread's first metric touch registers it exactly once.
  obs::Registry reg;
  obs::Counter c = reg.counter("stripe.poke");
  std::vector<std::thread> pokes;
  for (int i = 0; i < 3; ++i) pokes.emplace_back([&c] { c.inc(); });
  for (std::thread& t : pokes) t.join();
  const obs::StripeStats s = obs::stripe_stats();
  EXPECT_EQ(s.stripes, obs::kMetricStripes);
  EXPECT_GE(s.threads_registered, before + 3);
  EXPECT_EQ(s.stripes_occupied, std::min(s.threads_registered, s.stripes));
  EXPECT_EQ(s.aliased_threads, std::max(0, s.threads_registered - s.stripes));
}

TEST(ObsMetrics, QuantileChecksKindAndRange) {
  obs::MetricSnapshot counter;
  counter.kind = obs::MetricKind::kCounter;
  EXPECT_THROW(counter.quantile(0.5), CheckError);
  const obs::MetricSnapshot m = hist_snapshot({10}, {1, 0});
  EXPECT_THROW(m.quantile(-0.1), CheckError);
  EXPECT_THROW(m.quantile(1.1), CheckError);
}

TEST(ObsMetrics, SnapshotQuantileEndToEnd) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("q.lat", {1, 2, 4, 8});
  for (std::int64_t v = 1; v <= 8; ++v) h.observe(v);
  // Buckets: {1, 1, 2, 4} — p50 exhausts (2, 4], p100 exhausts (4, 8].
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile("q.lat", 0.5), 4.0);
  EXPECT_DOUBLE_EQ(snap.quantile("q.lat", 1.0), 8.0);
  EXPECT_THROW(snap.quantile("missing", 0.5), CheckError);
  reg.counter("q.not_hist").inc();
  EXPECT_THROW(reg.snapshot().quantile("q.not_hist", 0.5), CheckError);
}

// --- tracer ------------------------------------------------------------

// Pulls the "X" (complete span) events out of a chrome-trace document.
std::vector<json::Value> span_events(const json::Value& trace) {
  std::vector<json::Value> spans;
  for (const json::Value& e : trace.at("traceEvents").items())
    if (e.at("ph").as_string() == "X") spans.push_back(e);
  return spans;
}

TEST(ObsTrace, DisabledRecordsNothing) {
  TraceGuard guard;
  obs::set_trace_enabled(false);
  obs::clear_trace();
  const std::int64_t before = obs::trace_event_count();
  {
    QNN_SPAN("ignored", "test");
  }
  EXPECT_EQ(obs::trace_event_count(), before);
}

TEST(ObsTrace, SpanNestingIsContainedAndArgsExport) {
  TraceGuard guard;
  obs::set_trace_enabled(true);
  obs::clear_trace();
  {
    QNN_SPAN("outer", "test");
    {
      QNN_SPAN_N("inner", "test", 7);
    }
  }
  const json::Value trace = obs::trace_to_json();
  const auto spans = span_events(trace);
  ASSERT_EQ(spans.size(), 2u);
  const json::Value* outer = nullptr;
  const json::Value* inner = nullptr;
  for (const json::Value& s : spans) {
    if (s.at("name").as_string() == "outer") outer = &s;
    if (s.at("name").as_string() == "inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // RAII containment: the inner span starts no earlier and ends no later
  // than the outer span that encloses it.
  const double o0 = outer->at("ts").as_double();
  const double o1 = o0 + outer->at("dur").as_double();
  const double i0 = inner->at("ts").as_double();
  const double i1 = i0 + inner->at("dur").as_double();
  EXPECT_GE(i0, o0);
  EXPECT_LE(i1, o1);
  EXPECT_EQ(inner->at("args").at("n").as_int(), 7);
  EXPECT_FALSE(outer->contains("args"));  // negative arg: no args object
}

TEST(ObsTrace, JsonIsWellFormedChromeTraceFormat) {
  TraceGuard guard;
  obs::set_trace_enabled(true);
  obs::clear_trace();
  {
    QNN_SPAN("a", "cat_a");
  }
  // Round-trip through the parser: the writer must emit valid JSON.
  const json::Value trace =
      json::parse(obs::trace_to_json().dump(), "trace");
  EXPECT_EQ(trace.at("displayTimeUnit").as_string(), "ms");
  bool has_thread_name_meta = false;
  for (const json::Value& e : trace.at("traceEvents").items()) {
    const std::string ph = e.at("ph").as_string();
    ASSERT_TRUE(ph == "X" || ph == "M");
    EXPECT_TRUE(e.contains("pid"));
    EXPECT_TRUE(e.contains("tid"));
    if (ph == "M") {
      has_thread_name_meta = true;
      EXPECT_EQ(e.at("name").as_string(), "thread_name");
    } else {
      EXPECT_TRUE(e.contains("cat"));
      EXPECT_GE(e.at("dur").as_double(), 0.0);
    }
  }
  EXPECT_TRUE(has_thread_name_meta);
}

TEST(ObsTrace, RingKeepsNewestAndCountsDropped) {
  TraceGuard guard;
  obs::set_trace_enabled(true);
  const std::size_t prev_capacity = obs::trace_buffer_capacity();
  obs::set_trace_buffer_capacity(4);
  const std::int64_t dropped_before = obs::trace_dropped_count();
  // Capacity applies to buffers created after the call, so record from a
  // fresh thread.
  std::thread recorder([] {
    for (int i = 0; i < 10; ++i) {
      QNN_SPAN_N("wrap", "test", i);
    }
  });
  recorder.join();
  obs::set_trace_buffer_capacity(prev_capacity);
  EXPECT_EQ(obs::trace_dropped_count() - dropped_before, 6);
  // The surviving events are the newest ones, exported oldest-first.
  std::vector<std::int64_t> args;
  for (const json::Value& s : span_events(obs::trace_to_json()))
    if (s.at("name").as_string() == "wrap")
      args.push_back(s.at("args").at("n").as_int());
  EXPECT_EQ(args, (std::vector<std::int64_t>{6, 7, 8, 9}));
}

TEST(ObsTrace, BufferStatsBreakDownOccupancyPerThread) {
  TraceGuard guard;
  obs::set_trace_enabled(true);
  const std::size_t prev_capacity = obs::trace_buffer_capacity();
  obs::set_trace_buffer_capacity(2);
  // A fresh thread gets a capacity-2 ring; 5 spans keep 2, drop 3.
  std::thread recorder([] {
    for (int i = 0; i < 5; ++i) {
      QNN_SPAN_N("stats", "test", i);
    }
  });
  recorder.join();
  obs::set_trace_buffer_capacity(prev_capacity);
  std::int64_t buffered = 0, dropped = 0;
  bool found = false;
  for (const obs::TraceBufferStats& s : obs::trace_buffer_stats()) {
    EXPECT_LE(s.buffered, s.capacity);
    buffered += s.buffered;
    dropped += s.dropped;
    if (s.capacity == 2 && s.buffered == 2 && s.dropped == 3) found = true;
  }
  EXPECT_TRUE(found) << "the fresh ring must report 2 kept / 3 dropped";
  // The per-thread breakdown sums to the process-wide totals.
  EXPECT_EQ(buffered, obs::trace_event_count());
  EXPECT_EQ(dropped, obs::trace_dropped_count());
}

// --- run report --------------------------------------------------------

TEST(ObsReport, DocumentRoundTripsWithSections) {
  obs::RunReport report("obs_test");
  quant::GuardCounters guards;
  guards.observe(0.5f, 1.0);
  guards.observe(2.0f, 1.0);
  report.add_guards("guards", guards);
  protect::ProtectionCounters prot;
  prot.values = 10;
  prot.abft.blocks_checked = 3;
  report.add_protection("protection", prot);
  report.set("custom", json::Value(42));
  report.add_trace_summary();

  const json::Value doc = json::parse(report.dump(), "report");
  EXPECT_EQ(doc.at("schema").as_string(), "qnn.run_report/1");
  EXPECT_EQ(doc.at("tool").as_string(), "obs_test");
  EXPECT_GE(doc.at("threads").as_int(), 1);
  EXPECT_EQ(doc.at("guards").at("values").as_int(), 2);
  EXPECT_EQ(doc.at("guards").at("saturated").as_int(), 1);
  EXPECT_EQ(doc.at("protection").at("abft").at("blocks_checked").as_int(),
            3);
  EXPECT_EQ(doc.at("custom").as_int(), 42);
  EXPECT_TRUE(doc.at("trace").contains("enabled"));
}

TEST(ObsReport, TraceAndRegistrySectionsCarryOccupancy) {
  obs::RunReport report("obs_test");
  report.add_trace_summary();
  report.add_registry_summary();
  const json::Value doc = json::parse(report.dump(), "report");

  const json::Value& trace = doc.at("trace");
  EXPECT_TRUE(trace.contains("capacity"));
  ASSERT_TRUE(trace.contains("per_thread"));
  std::int64_t buffered = 0, dropped = 0;
  for (const json::Value& t : trace.at("per_thread").items()) {
    EXPECT_LE(t.at("buffered").as_int(), t.at("capacity").as_int());
    buffered += t.at("buffered").as_int();
    dropped += t.at("dropped").as_int();
  }
  EXPECT_EQ(buffered, trace.at("events").as_int());
  EXPECT_EQ(dropped, trace.at("dropped").as_int());

  const json::Value& registry = doc.at("registry");
  EXPECT_EQ(registry.at("stripes").as_int(), obs::kMetricStripes);
  EXPECT_GE(registry.at("threads_registered").as_int(), 0);
  EXPECT_EQ(registry.at("stripes_occupied").as_int(),
            std::min<std::int64_t>(registry.at("threads_registered").as_int(),
                                   obs::kMetricStripes));
  EXPECT_GE(registry.at("aliased_threads").as_int(), 0);
}

TEST(ObsReport, MetricsSectionFoldsARegistry) {
  obs::Registry reg;
  reg.counter("only.metric").add(5);
  obs::RunReport report("obs_test");
  report.add_metrics(reg);
  const json::Value doc = json::parse(report.dump(), "report");
  ASSERT_EQ(doc.at("metrics").size(), 1u);
  EXPECT_EQ(doc.at("metrics").at(std::size_t{0}).at("value").as_int(), 5);
}

// --- guard counter partition -------------------------------------------

TEST(ObsGuards, ClassificationIsAnExclusivePartition) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  const float nan = std::nanf("");
  // Every value lands in exactly one class.
  EXPECT_EQ(quant::classify_guard(0.5f, 1.0), quant::GuardClass::kOk);
  EXPECT_EQ(quant::classify_guard(1.0f, 1.0), quant::GuardClass::kOk);
  EXPECT_EQ(quant::classify_guard(2.0f, 1.0),
            quant::GuardClass::kSaturated);
  EXPECT_EQ(quant::classify_guard(-2.0f, 1.0),
            quant::GuardClass::kSaturated);
  EXPECT_EQ(quant::classify_guard(nan, 1.0), quant::GuardClass::kNan);
  // Inf exceeds every finite limit but is classified as inf ONLY.
  EXPECT_EQ(quant::classify_guard(kInf, 1.0), quant::GuardClass::kInf);
  EXPECT_EQ(quant::classify_guard(-kInf, 1.0), quant::GuardClass::kInf);
  // Unbounded format (limit <= 0): nothing finite saturates.
  EXPECT_EQ(quant::classify_guard(1e30f, 0.0), quant::GuardClass::kOk);
  EXPECT_EQ(quant::classify_guard(kInf, 0.0), quant::GuardClass::kInf);
}

TEST(ObsGuards, ObserveCountsEachValueExactlyOnce) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  quant::GuardCounters g;
  g.observe(0.5f, 1.0);    // ok
  g.observe(2.0f, 1.0);    // saturated
  g.observe(std::nanf(""), 1.0);  // nan
  g.observe(kInf, 1.0);    // inf (not also saturated)
  g.observe(-kInf, 1.0);   // inf
  EXPECT_EQ(g.values, 5);
  EXPECT_EQ(g.saturated, 1);
  EXPECT_EQ(g.nan, 1);
  EXPECT_EQ(g.inf, 2);
  // The anomaly counters partition the anomalies: their sum can never
  // exceed the number of values inspected.
  EXPECT_EQ(g.saturated + g.nan + g.inf, 4);
  EXPECT_FALSE(g.clean());
  EXPECT_DOUBLE_EQ(g.saturation_rate(), 1.0 / 5.0);
}

}  // namespace
}  // namespace qnn
