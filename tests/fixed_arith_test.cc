#include <gtest/gtest.h>

#include <cmath>

#include "fixed/fixed_arith.h"
#include "util/rng.h"

namespace qnn {
namespace {

TEST(FixedArith, EncodeDecode) {
  FixedPointFormat f(8, 4);
  const FixedValue v = fixed_encode(1.5, f);
  EXPECT_EQ(v.raw, 24);
  EXPECT_DOUBLE_EQ(v.value(), 1.5);
}

TEST(FixedArith, AddExact) {
  FixedPointFormat f(8, 4);
  const FixedValue s =
      fixed_add(fixed_encode(1.25, f), fixed_encode(2.5, f));
  EXPECT_DOUBLE_EQ(s.value(), 3.75);
}

TEST(FixedArith, AddSaturates) {
  FixedPointFormat f(8, 4);
  const FixedValue s =
      fixed_add(fixed_encode(7.0, f), fixed_encode(7.0, f));
  EXPECT_DOUBLE_EQ(s.value(), f.max_value());
  const FixedValue neg =
      fixed_add(fixed_encode(-8.0, f), fixed_encode(-8.0, f));
  EXPECT_DOUBLE_EQ(neg.value(), f.min_value());
}

TEST(FixedArith, MulExactWhenOutputWideEnough) {
  FixedPointFormat f(8, 4);
  FixedPointFormat wide(24, 8);
  const FixedValue p =
      fixed_mul(fixed_encode(1.5, f), fixed_encode(-2.25, f), wide);
  EXPECT_DOUBLE_EQ(p.value(), -3.375);
}

TEST(FixedArith, MulRequantizesWithRounding) {
  FixedPointFormat f(8, 4);
  // 0.0625 * 0.0625 = 0.00390625; in Q?.4 it rounds to 0.
  const FixedValue p =
      fixed_mul(fixed_encode(0.0625, f), fixed_encode(0.0625, f), f);
  EXPECT_DOUBLE_EQ(p.value(), 0.0);
}

TEST(FixedArith, MacAccumulatesExactly) {
  FixedPointFormat wf(8, 6), df(8, 4);
  FixedAccumulator acc = make_accumulator(wf, df);
  EXPECT_EQ(acc.frac_bits, 10);
  double ref = 0.0;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const FixedValue w = fixed_encode(rng.uniform(-1, 1), wf);
    const FixedValue d = fixed_encode(rng.uniform(-4, 4), df);
    fixed_mac(acc, w, d);
    ref += w.value() * d.value();
  }
  // Products are exact in the accumulator: identity up to fp rounding of
  // the reference sum itself.
  EXPECT_NEAR(acc.value(), ref, 1e-9);
}

TEST(FixedArith, RequantizeMatchesFormatQuantize) {
  FixedPointFormat wf(8, 6), df(8, 4), out(8, 4);
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    FixedAccumulator acc = make_accumulator(wf, df);
    const FixedValue w = fixed_encode(rng.uniform(-1, 1), wf);
    const FixedValue d = fixed_encode(rng.uniform(-4, 4), df);
    fixed_mac(acc, w, d);
    const FixedValue r = fixed_requantize(acc, out);
    EXPECT_DOUBLE_EQ(r.value(), out.quantize(acc.value()))
        << "w=" << w.value() << " d=" << d.value();
  }
}

// The central cross-validation property: the float-domain fake
// quantization grid used in training IS the integer grid. Encoding any
// real into a format and decoding must equal FixedPointFormat::quantize.
class GridEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(GridEquivalence, FloatGridMatchesIntegerGrid) {
  const int bits = GetParam();
  for (int frac : {bits - 1, bits / 2, 0, -2, bits + 2}) {
    const FixedPointFormat f(bits, frac);
    Rng rng(static_cast<std::uint64_t>(bits * 131 + frac));
    for (int i = 0; i < 1000; ++i) {
      const double v = rng.uniform(-2.0, 2.0) *
                       std::max(1.0, std::fabs(f.max_value()));
      const FixedValue enc = fixed_encode(v, f);
      EXPECT_DOUBLE_EQ(enc.value(), f.quantize(v))
          << "bits=" << bits << " frac=" << frac << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperWidths, GridEquivalence,
                         ::testing::Values(4, 8, 16, 32));

// A simulated dot product in float-grid domain matches the bit-true
// integer MAC pipeline exactly — the property that makes our fake-
// quantized training hardware-faithful.
TEST(FixedArith, DotProductFloatVsIntegerBitExact) {
  const FixedPointFormat wf(8, 7), df(16, 11);
  Rng rng(15);
  for (int trial = 0; trial < 50; ++trial) {
    FixedAccumulator acc = make_accumulator(wf, df);
    double float_grid = 0.0;
    for (int i = 0; i < 64; ++i) {
      const double wv = wf.quantize(rng.uniform(-1, 1));
      const double dv = df.quantize(rng.uniform(-8, 8));
      fixed_mac(acc, fixed_encode(wv, wf), fixed_encode(dv, df));
      float_grid += wv * dv;  // exact in double for these magnitudes
    }
    EXPECT_NEAR(acc.value(), float_grid, 1e-9);
  }
}

}  // namespace
}  // namespace qnn
