// Integration smoke of the experiment harness on a miniature setup.
#include <gtest/gtest.h>

#include "exp/sweep.h"

namespace qnn::exp {
namespace {

ExperimentSpec tiny_spec() {
  ExperimentSpec spec;
  spec.network = "lenet";
  spec.dataset = "mnist";
  spec.channel_scale = 0.2;
  spec.data.num_train = 200;
  spec.data.num_test = 100;
  spec.data.seed = 5;
  spec.float_train.epochs = 3;
  spec.float_train.batch_size = 20;
  spec.float_train.sgd.learning_rate = 0.02;
  spec.qat_train = spec.float_train;
  spec.qat_train.epochs = 1;
  spec.qat_train.sgd.learning_rate = 0.01;
  return spec;
}

TEST(Sweep, EndToEndMiniature) {
  const auto precisions = std::vector<quant::PrecisionConfig>{
      quant::float_config(), quant::fixed_config(16, 16),
      quant::binary_config(16)};
  const SweepResult r = run_precision_sweep(tiny_spec(), precisions);
  ASSERT_EQ(r.points.size(), 3u);

  // Float baseline must learn the miniature MNIST.
  EXPECT_GT(r.points[0].accuracy, 60.0);
  EXPECT_TRUE(r.points[0].converged);
  EXPECT_DOUBLE_EQ(r.points[0].energy_saving_percent, 0.0);

  // Energy strictly decreases from float to fixed-16 to binary.
  EXPECT_GT(r.points[0].energy_uj, r.points[1].energy_uj);
  EXPECT_GT(r.points[1].energy_uj, r.points[2].energy_uj);

  // Savings computed against the float baseline.
  EXPECT_NEAR(r.points[1].energy_saving_percent,
              100.0 * (1.0 - r.points[1].energy_uj / r.points[0].energy_uj),
              1e-9);

  // Parameter memory shrinks with precision.
  EXPECT_GT(r.points[0].param_kb, r.points[1].param_kb);
  EXPECT_GT(r.points[1].param_kb, r.points[2].param_kb);
}

TEST(Sweep, FindLocatesPointsById) {
  const SweepResult r = run_precision_sweep(
      tiny_spec(), {quant::float_config(), quant::fixed_config(8, 8)});
  EXPECT_NE(r.find("fixed_8_8"), nullptr);
  EXPECT_EQ(r.find("fixed_4_4"), nullptr);
  EXPECT_DOUBLE_EQ(r.find("float_32_32")->energy_uj, r.float_energy_uj);
}

TEST(Sweep, ReferenceEnergyOverridesBaseline) {
  // Table V computes savings against ALEX-float even for other networks.
  const double reference = 1000.0;
  const SweepResult r = run_precision_sweep(
      tiny_spec(), {quant::fixed_config(16, 16)}, reference);
  EXPECT_NEAR(r.points[0].energy_saving_percent,
              100.0 * (1.0 - r.points[0].energy_uj / reference), 1e-9);
}

TEST(Sweep, EnergyHelpersConsistent) {
  auto net = nn::make_lenet();
  const Shape in = nn::input_shape_for("lenet");
  const double e = inference_energy_uj(*net, in, quant::fixed_config(8, 8));
  const auto sched = schedule_for(*net, in, quant::fixed_config(8, 8));
  hw::AcceleratorConfig c;
  c.precision = quant::fixed_config(8, 8);
  EXPECT_NEAR(e, sched.energy_uj(hw::Accelerator(c)), 1e-9);
}

}  // namespace
}  // namespace qnn::exp
