#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "util/check.h"

namespace qnn {
namespace {

TEST(Shape, CountAndRank) {
  Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.count(), 120);
  EXPECT_EQ(s.count_from(1), 60);
  EXPECT_EQ(s.count_from(4), 1);
}

TEST(Shape, EmptyShapeCountsOne) {
  Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.count(), 1);
}

TEST(Shape, NchwAccessors) {
  Shape s{2, 3, 28, 32};
  EXPECT_EQ(s.n(), 2);
  EXPECT_EQ(s.c(), 3);
  EXPECT_EQ(s.h(), 28);
  EXPECT_EQ(s.w(), 32);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_NE(Shape({1, 2}), Shape({1, 2, 1}));
}

TEST(Shape, ToString) {
  EXPECT_EQ(Shape({1, 3, 28, 28}).to_string(), "(1, 3, 28, 28)");
  EXPECT_EQ(Shape({7}).to_string(), "(7)");
}

TEST(Shape, NegativeDimThrows) {
  EXPECT_THROW(Shape({2, -1}), CheckError);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  for (std::int64_t i = 0; i < t.count(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillAndIndex) {
  Tensor t(Shape{4});
  t.fill(2.5f);
  EXPECT_EQ(t[3], 2.5f);
  t[1] = -1.0f;
  EXPECT_EQ(t[1], -1.0f);
}

TEST(Tensor, NchwAtMatchesFlatLayout) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  // Flat offset: ((1*3+2)*4+3)*5+4 = 119
  EXPECT_EQ(t[119], 9.0f);
}

TEST(Tensor, ConstructFromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), CheckError);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 6}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), Shape({3, 4}));
  EXPECT_EQ(r[7], 7.0f);
  EXPECT_THROW(t.reshaped(Shape{5, 2}), CheckError);
}

TEST(Tensor, AddAxpyScale) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {10, 20, 30});
  a.add(b);
  EXPECT_EQ(a[2], 33.0f);
  a.axpy(0.5f, b);
  EXPECT_EQ(a[0], 16.0f);
  a.scale(2.0f);
  EXPECT_EQ(a[1], 64.0f);
}

TEST(Tensor, AddShapeMismatchThrows) {
  Tensor a(Shape{3}), b(Shape{4});
  EXPECT_THROW(a.add(b), CheckError);
}

TEST(Tensor, MaxAbsSumMean) {
  Tensor t(Shape{4}, {-3, 1, 2, -1});
  EXPECT_FLOAT_EQ(t.max_abs(), 3.0f);
  EXPECT_DOUBLE_EQ(t.sum(), -1.0);
  EXPECT_DOUBLE_EQ(t.mean(), -0.25);
}

TEST(Tensor, FillUniformWithinBounds) {
  Rng rng(3);
  Tensor t(Shape{1000});
  t.fill_uniform(rng, -0.5f, 0.5f);
  EXPECT_LE(t.max_abs(), 0.5f);
  // Should not be all equal.
  EXPECT_NE(t[0], t[1]);
}

TEST(Tensor, At2RankTwoAccess) {
  Tensor t(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at2(1, 2), 5.0f);
  t.at2(0, 1) = 7.0f;
  EXPECT_EQ(t[1], 7.0f);
}

}  // namespace
}  // namespace qnn
