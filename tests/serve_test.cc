// Tests for the inference serving layer (DESIGN.md §12): admission
// queue edge cases (zero/one capacity, expired-at-enqueue, shutdown),
// dynamic batching (max-batch vs. window close, window 0, expired
// drops, flush drain), overload-controller hysteresis, tier cost
// derivation, replica-pool equivalence with direct quantized forwards,
// and end-to-end server runs including the overload acceptance
// criterion: under >= 2x overload the degrade policy serves strictly
// more requests within deadline than reject-only and no-admission.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "nn/activation.h"
#include "nn/inner_product.h"
#include "nn/network.h"
#include "serve/batcher.h"
#include "serve/controller.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "serve/tiers.h"
#include "serve/trace.h"
#include "util/check.h"

namespace qnn::serve {
namespace {

Request make_request(std::int64_t id, Tick arrival, Tick deadline,
                     int tier = 0) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  r.deadline = deadline;
  r.tier = tier;
  return r;
}

// --- bounded queue -----------------------------------------------------

TEST(BoundedQueue, ZeroCapacityRejectsEverything) {
  BoundedQueue q(0);
  EXPECT_EQ(q.try_push(make_request(1, 0, 100), 0),
            RejectReason::kQueueFull);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, CapacityOneAdmitsExactlyOne) {
  BoundedQueue q(1);
  EXPECT_EQ(q.try_push(make_request(1, 0, 100), 0), RejectReason::kNone);
  EXPECT_EQ(q.try_push(make_request(2, 0, 100), 0),
            RejectReason::kQueueFull);
  std::vector<Request> out;
  EXPECT_EQ(q.drain(&out), 1u);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 1);
  // Draining frees the slot again.
  EXPECT_EQ(q.try_push(make_request(3, 0, 100), 0), RejectReason::kNone);
}

TEST(BoundedQueue, DeadlineExpiredAtEnqueueIsTyped) {
  BoundedQueue q(4);
  // deadline == now is already expired ("complete strictly before").
  EXPECT_EQ(q.try_push(make_request(1, 0, 50), 50),
            RejectReason::kDeadlineExpired);
  EXPECT_EQ(q.try_push(make_request(2, 0, 50), 51),
            RejectReason::kDeadlineExpired);
  EXPECT_EQ(q.try_push(make_request(3, 0, 50), 49), RejectReason::kNone);
}

TEST(BoundedQueue, CloseRejectsNewButKeepsQueued) {
  BoundedQueue q(4);
  EXPECT_EQ(q.try_push(make_request(1, 0, 100), 0), RejectReason::kNone);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.try_push(make_request(2, 0, 100), 0),
            RejectReason::kShutdown);
  std::vector<Request> out;
  EXPECT_EQ(q.drain(&out), 1u);  // in-flight work survives shutdown
}

TEST(BoundedQueue, ExtraBacklogCountsAgainstCapacity) {
  BoundedQueue q(4);
  EXPECT_EQ(q.try_push(make_request(1, 0, 100), 0, /*extra_backlog=*/3),
            RejectReason::kNone);
  EXPECT_EQ(q.try_push(make_request(2, 0, 100), 0, /*extra_backlog=*/3),
            RejectReason::kQueueFull);
}

TEST(BoundedQueue, FifoOrderPreservedAcrossDrain) {
  BoundedQueue q(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(q.try_push(make_request(i, 0, 100), 0), RejectReason::kNone);
  }
  std::vector<Request> out;
  q.drain(&out);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<size_t>(i)].id, i);
}

// Concurrent producers against one drainer: every push is accounted for
// exactly once (admitted or typed-rejected), no loss, no tearing. The
// serving replay engine is single-threaded; this covers the real-time
// ingestion path under TSan.
TEST(BoundedQueue, ConcurrentProducersAccountForEveryPush) {
  BoundedQueue q(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> admitted{0}, rejected{0};
  std::vector<std::thread> producers;
  std::atomic<bool> stop{false};
  std::vector<Request> drained;
  std::thread drainer([&] {
    std::vector<Request> chunk;
    while (!stop.load()) {
      chunk.clear();
      q.drain(&chunk);
      for (Request& r : chunk) drained.push_back(std::move(r));
    }
    chunk.clear();
    q.drain(&chunk);
    for (Request& r : chunk) drained.push_back(std::move(r));
  });
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::int64_t id = p * kPerProducer + i;
        if (q.try_push(make_request(id, 0, 100), 0) == RejectReason::kNone) {
          admitted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true);
  drainer.join();
  EXPECT_EQ(admitted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_EQ(drained.size(), static_cast<std::size_t>(admitted.load()));
}

// --- dynamic batcher ---------------------------------------------------

TEST(DynamicBatcher, WindowZeroClosesOnArrivalTick) {
  DynamicBatcher b(BatcherConfig{.max_batch = 8, .batch_window = 0}, 1);
  b.add(make_request(1, 5, 100), 5);
  std::vector<Request> expired;
  const auto batches = b.poll(5, &expired);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].requests.size(), 1u);
  EXPECT_TRUE(expired.empty());
  EXPECT_TRUE(b.empty());
}

TEST(DynamicBatcher, ClosesOnMaxBatchBeforeWindow) {
  DynamicBatcher b(BatcherConfig{.max_batch = 3, .batch_window = 1000}, 1);
  std::vector<Request> expired;
  for (int i = 0; i < 7; ++i) b.add(make_request(i, 0, 5000), 0);
  const auto batches = b.poll(0, &expired);
  ASSERT_EQ(batches.size(), 2u);  // two full batches, one remainder waits
  EXPECT_EQ(batches[0].requests.size(), 3u);
  EXPECT_EQ(batches[1].requests.size(), 3u);
  EXPECT_EQ(b.pending_total(), 1u);
  EXPECT_EQ(b.next_window_tick(), 1000);
}

TEST(DynamicBatcher, WindowMeasuredFromOldestPending) {
  DynamicBatcher b(BatcherConfig{.max_batch = 8, .batch_window = 10}, 1);
  std::vector<Request> expired;
  b.add(make_request(1, 0, 5000), 0);
  b.add(make_request(2, 9, 5000), 9);
  EXPECT_TRUE(b.poll(9, &expired).empty());  // window not yet elapsed
  const auto batches = b.poll(10, &expired);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].requests.size(), 2u);  // late joiner rides along
}

TEST(DynamicBatcher, ExpiredPendingDroppedNotServed) {
  DynamicBatcher b(BatcherConfig{.max_batch = 8, .batch_window = 40}, 1);
  std::vector<Request> expired;
  b.add(make_request(1, 0, 50), 0);
  b.add(make_request(2, 0, 5000), 0);
  const auto batches = b.poll(60, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 1);
  // Remaining request's window (40 ticks from tick 0) elapsed at 60.
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].requests[0].id, 2);
}

TEST(DynamicBatcher, FlushDrainsEverythingInMaxBatchChunks) {
  DynamicBatcher b(BatcherConfig{.max_batch = 4, .batch_window = 1000}, 2);
  std::vector<Request> expired;
  for (int i = 0; i < 6; ++i) b.add(make_request(i, 0, 5000, i % 2), 0);
  const auto batches = b.flush(0, &expired);
  ASSERT_EQ(batches.size(), 2u);  // 3 requests per tier, one batch each
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.next_window_tick(), DynamicBatcher::kNoTick);
}

TEST(DynamicBatcher, TiersNeverMix) {
  DynamicBatcher b(BatcherConfig{.max_batch = 8, .batch_window = 0}, 3);
  std::vector<Request> expired;
  b.add(make_request(1, 0, 100, 0), 0);
  b.add(make_request(2, 0, 100, 2), 0);
  const auto batches = b.poll(0, &expired);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].tier, 0);
  EXPECT_EQ(batches[1].tier, 2);
}

// --- overload controller -----------------------------------------------

ControllerConfig depth_only_config() {
  ControllerConfig c;
  c.high_depth_fraction = 0.75;
  c.low_depth_fraction = 0.25;
  c.dwell_ticks = 10;
  return c;
}

TEST(OverloadController, DownshiftsOnDepthAndRecovers) {
  OverloadController ctl(depth_only_config(), 3);
  EXPECT_EQ(ctl.current_tier(), 0);
  ctl.update(0, 80, 100, 0.0);
  EXPECT_EQ(ctl.current_tier(), 1);
  ctl.update(20, 80, 100, 0.0);
  EXPECT_EQ(ctl.current_tier(), 2);
  ctl.update(40, 80, 100, 0.0);  // already at cheapest tier
  EXPECT_EQ(ctl.current_tier(), 2);
  ctl.update(60, 10, 100, 0.0);
  ctl.update(80, 10, 100, 0.0);
  EXPECT_EQ(ctl.current_tier(), 0);
  EXPECT_EQ(ctl.downshifts(), 2);
  EXPECT_EQ(ctl.upshifts(), 2);
}

TEST(OverloadController, DwellPreventsFlapping) {
  OverloadController ctl(depth_only_config(), 3);
  ctl.update(0, 80, 100, 0.0);
  EXPECT_EQ(ctl.current_tier(), 1);
  // Still inside the dwell: neither hot nor cool signals may move it.
  ctl.update(5, 80, 100, 0.0);
  ctl.update(9, 0, 100, 0.0);
  EXPECT_EQ(ctl.current_tier(), 1);
  ctl.update(10, 0, 100, 0.0);  // dwell elapsed, pressure cleared
  EXPECT_EQ(ctl.current_tier(), 0);
}

TEST(OverloadController, MidbandHoldsTier) {
  OverloadController ctl(depth_only_config(), 3);
  ctl.update(0, 80, 100, 0.0);
  // Between low (25) and high (75): hysteresis band, no movement ever.
  for (Tick t = 20; t < 200; t += 20) ctl.update(t, 50, 100, 0.0);
  EXPECT_EQ(ctl.current_tier(), 1);
}

TEST(OverloadController, LatencySignalDownshiftsAndGatesRecovery) {
  ControllerConfig c = depth_only_config();
  c.p99_high_ticks = 1000;
  c.p99_low_ticks = 400;
  OverloadController ctl(c, 2);
  ctl.update(0, 0, 100, 2000.0);  // depth fine, p99 hot
  EXPECT_EQ(ctl.current_tier(), 1);
  ctl.update(20, 0, 100, 700.0);  // cool depth but p99 above low: hold
  EXPECT_EQ(ctl.current_tier(), 1);
  ctl.update(40, 0, 100, 300.0);
  EXPECT_EQ(ctl.current_tier(), 0);
}

TEST(OverloadController, ZeroBoundNeverDivides) {
  OverloadController ctl(depth_only_config(), 3);
  // bound == 0 with work queued reads as full pressure, not a division.
  ctl.update(0, 5, 0, 0.0);
  EXPECT_EQ(ctl.current_tier(), 1);
  // bound == 0 and nothing queued is no pressure at all: with the dwell
  // elapsed the controller recovers instead of crashing or sticking.
  ctl.update(10, 0, 0, 0.0);
  EXPECT_EQ(ctl.current_tier(), 0);
}

TEST(OverloadController, SingleTierLatticeNeverShifts) {
  OverloadController ctl(depth_only_config(), 1);
  for (Tick t = 0; t < 100; t += 10) ctl.update(t, 100, 100, 0.0);
  EXPECT_EQ(ctl.current_tier(), 0);
  EXPECT_EQ(ctl.downshifts(), 0);
  ctl.update(100, 0, 100, 0.0);
  EXPECT_EQ(ctl.upshifts(), 0);
}

TEST(OverloadController, ShiftAllowedAtExactDwellBoundary) {
  OverloadController ctl(depth_only_config(), 3);  // dwell_ticks = 10
  ctl.update(0, 80, 100, 0.0);
  EXPECT_EQ(ctl.current_tier(), 1);
  // "at least dwell_ticks between shifts": the boundary tick itself
  // (last_shift + dwell) is eligible, one tick earlier is not.
  ctl.update(9, 80, 100, 0.0);
  EXPECT_EQ(ctl.current_tier(), 1);
  ctl.update(10, 80, 100, 0.0);
  EXPECT_EQ(ctl.current_tier(), 2);
}

// --- tiers & replica pool ----------------------------------------------

std::unique_ptr<nn::Network> tiny_net(std::uint64_t seed = 4) {
  auto net = std::make_unique<nn::Network>("serve_tiny");
  net->add<nn::InnerProduct>(6, 12);
  net->add<nn::Relu>();
  net->add<nn::InnerProduct>(12, 3);
  Rng rng(seed);
  net->init_weights(rng);
  return net;
}

Tensor calib_batch(std::int64_t n = 16, std::uint64_t seed = 9) {
  Tensor t(Shape{n, 6});
  Rng rng(seed);
  t.fill_uniform(rng, 0, 1);
  return t;
}

TEST(Tiers, DerivedCostsScaleWithPrecision) {
  auto net = tiny_net();
  std::vector<TierSpec> tiers = default_tier_lattice();
  derive_tier_costs(*net, Shape{1, 6}, &tiers);
  ASSERT_EQ(tiers.size(), 3u);
  // Bit-serial cost model: fewer operand bits, fewer ticks per image.
  EXPECT_GT(tiers[0].ticks_per_image, tiers[1].ticks_per_image);
  EXPECT_GT(tiers[1].ticks_per_image, tiers[2].ticks_per_image);
  for (const TierSpec& t : tiers) {
    EXPECT_GE(t.ticks_per_image, 1);
    EXPECT_GT(t.energy_per_image_uj, 0.0);
  }
  // Cheaper precision is also cheaper energy (the paper's core knob).
  EXPECT_GT(tiers[0].energy_per_image_uj, tiers[2].energy_per_image_uj);
}

TEST(ReplicaPool, ForwardMatchesDirectQuantizedNetwork) {
  auto net = tiny_net();
  std::vector<TierSpec> tiers = default_tier_lattice();
  derive_tier_costs(*net, Shape{1, 6}, &tiers);
  const Tensor calib = calib_batch();
  ReplicaPool pool(*net, calib, tiers, /*replicas_per_tier=*/2);

  const Tensor x = calib_batch(4, 77);
  for (int t = 0; t < pool.num_tiers(); ++t) {
    // Reference: a fresh QuantizedNetwork over a clone of the master.
    auto ref_net = std::make_unique<nn::Network>(net->clone());
    quant::QuantizedNetwork ref(*ref_net, tiers[static_cast<size_t>(t)].precision);
    if (!ref.calibrated()) ref.calibrate(calib);
    // Pool replicas are frozen at build time; freeze the reference too
    // so both sides take the same path (fixed tiers: native int).
    ref.freeze_inference();
    const Tensor want = ref.forward(x);
    for (int r = 0; r < pool.replicas_per_tier(); ++r) {
      const Tensor got = pool.forward(t, r, x);
      ASSERT_EQ(got.count(), want.count());
      for (std::int64_t i = 0; i < want.count(); ++i) {
        EXPECT_EQ(got[i], want[i])
            << "tier " << t << " replica " << r << " elem " << i;
      }
    }
  }
}

// --- trace -------------------------------------------------------------

TEST(Trace, OpenLoopGeneratorIsDeterministicAndSorted) {
  OpenLoopSpec spec;
  spec.num_requests = 50;
  spec.mean_interarrival_ticks = 10.0;
  spec.seed = 3;
  const ArrivalTrace a = make_open_loop_trace(spec, {6});
  const ArrivalTrace b = make_open_loop_trace(spec, {6});
  ASSERT_EQ(a.requests.size(), 50u);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].arrival, b.requests[i].arrival);
    EXPECT_EQ(a.requests[i].payload_seed, b.requests[i].payload_seed);
    if (i > 0) {
      EXPECT_GE(a.requests[i].arrival, a.requests[i - 1].arrival);
    }
    EXPECT_EQ(a.requests[i].deadline,
              a.requests[i].arrival + spec.relative_deadline_ticks);
  }
}

TEST(Trace, SaveLoadRoundTrips) {
  OpenLoopSpec spec;
  spec.num_requests = 20;
  spec.seed = 11;
  const ArrivalTrace a = make_open_loop_trace(spec, {1, 4, 4});
  const std::string path = ::testing::TempDir() + "/serve_trace.json";
  save_trace(path, a);
  const ArrivalTrace b = load_trace(path);
  EXPECT_EQ(b.sample_dims, a.sample_dims);
  ASSERT_EQ(b.requests.size(), a.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(b.requests[i].id, a.requests[i].id);
    EXPECT_EQ(b.requests[i].arrival, a.requests[i].arrival);
    EXPECT_EQ(b.requests[i].deadline, a.requests[i].deadline);
    EXPECT_EQ(b.requests[i].payload_seed, a.requests[i].payload_seed);
  }
}

TEST(Trace, LoaderRejectsUnsortedArrivals) {
  ArrivalTrace t;
  t.sample_dims = {6};
  TraceRequest r1, r2;
  r1.id = 0; r1.arrival = 10; r1.deadline = 20;
  r2.id = 1; r2.arrival = 5; r2.deadline = 20;
  t.requests = {r1, r2};
  const std::string path = ::testing::TempDir() + "/serve_bad_trace.json";
  save_trace(path, t);
  EXPECT_THROW(load_trace(path), CheckError);
}

// --- end-to-end server -------------------------------------------------

struct ServeFixture {
  std::unique_ptr<nn::Network> net = tiny_net();
  std::vector<TierSpec> tiers;
  std::unique_ptr<ReplicaPool> pool;

  ServeFixture() {
    tiers = default_tier_lattice();
    derive_tier_costs(*net, Shape{1, 6}, &tiers);
    pool = std::make_unique<ReplicaPool>(*net, calib_batch(), tiers);
  }

  // A trace at `rate` x the sustainable full-precision throughput.
  ArrivalTrace overload_trace(double rate, std::int64_t n,
                              Tick deadline_mult = 12) const {
    OpenLoopSpec spec;
    spec.num_requests = n;
    spec.mean_interarrival_ticks =
        static_cast<double>(tiers[0].ticks_per_image) / rate;
    spec.relative_deadline_ticks = deadline_mult * tiers[0].ticks_per_image;
    spec.seed = 99;
    return make_open_loop_trace(spec, {6});
  }

  ServerConfig config(AdmissionPolicy policy) const {
    ServerConfig cfg;
    cfg.queue_capacity = 16;
    cfg.batcher.max_batch = 4;
    cfg.batcher.batch_window = tiers[0].ticks_per_image;
    cfg.controller.high_depth_fraction = 0.5;
    cfg.controller.low_depth_fraction = 0.125;
    cfg.controller.dwell_ticks = 2 * tiers[0].ticks_per_image;
    cfg.policy = policy;
    return cfg;
  }
};

TEST(Server, UnderloadServesEverythingAtFullPrecision) {
  ServeFixture f;
  const ArrivalTrace trace = f.overload_trace(0.25, 40);
  Server server(*f.pool, f.config(AdmissionPolicy::kDegrade));
  const ServeResult result = server.run_trace(trace);
  EXPECT_EQ(result.stats.served, 40);
  EXPECT_EQ(result.stats.served_within_deadline, 40);
  EXPECT_EQ(result.stats.rejected_full, 0);
  EXPECT_EQ(result.stats.served_per_tier[0], 40);  // never downshifted
  EXPECT_EQ(result.responses.size(), 40u);
  for (const Response& r : result.responses) {
    EXPECT_EQ(r.output.size(), 3u);
    EXPECT_GE(r.predicted, 0);
    EXPECT_LT(r.predicted, 3);
  }
}

TEST(Server, ZeroCapacityQueueRejectsEveryRequest) {
  ServeFixture f;
  ServerConfig cfg = f.config(AdmissionPolicy::kRejectOnly);
  cfg.queue_capacity = 0;
  Server server(*f.pool, cfg);
  const ServeResult result = server.run_trace(f.overload_trace(1.0, 10));
  EXPECT_EQ(result.stats.served, 0);
  EXPECT_EQ(result.stats.rejected_full, 10);
  EXPECT_TRUE(result.responses.empty());
}

TEST(Server, ExpiredAtArrivalCountsAsRejectedExpired) {
  ServeFixture f;
  ArrivalTrace trace = f.overload_trace(1.0, 4);
  trace.requests[1].deadline = trace.requests[1].arrival;  // hopeless
  Server server(*f.pool, f.config(AdmissionPolicy::kDegrade));
  const ServeResult result = server.run_trace(trace);
  EXPECT_EQ(result.stats.rejected_expired, 1);
  EXPECT_EQ(result.stats.served, 3);
}

TEST(Server, ShutdownTickStopsAdmissionAndDrains) {
  ServeFixture f;
  const ArrivalTrace trace = f.overload_trace(1.0, 20);
  ServerConfig cfg = f.config(AdmissionPolicy::kDegrade);
  cfg.shutdown_tick = trace.requests[10].arrival;  // mid-trace
  Server server(*f.pool, cfg);
  const ServeResult result = server.run_trace(trace);
  EXPECT_GT(result.stats.rejected_shutdown, 0);
  EXPECT_GT(result.stats.served, 0);
  // Everything admitted before shutdown is finished, never dropped.
  EXPECT_EQ(result.stats.served + result.stats.expired_in_queue,
            result.stats.admitted);
  EXPECT_EQ(result.stats.admitted + result.stats.rejected_shutdown +
                result.stats.rejected_full + result.stats.rejected_expired,
            result.stats.offered);
}

TEST(Server, SaturatedAtCheapestTierStillRejects) {
  ServeFixture f;
  // Violent overload with a small bound: even at fixed8 the executor
  // cannot keep up, so admission control must still reject. Short dwell
  // so the controller can walk the whole lattice inside the burst.
  const ArrivalTrace trace = f.overload_trace(20.0, 200, /*deadline_mult=*/6);
  ServerConfig cfg = f.config(AdmissionPolicy::kDegrade);
  cfg.queue_capacity = 8;
  cfg.controller.dwell_ticks = f.tiers[0].ticks_per_image / 4;
  Server server(*f.pool, cfg);
  const ServeResult result = server.run_trace(trace);
  EXPECT_GT(result.stats.rejected_full, 0);
  EXPECT_GT(result.stats.served_per_tier[2], 0);  // downshift did engage
}

TEST(Server, RequestConservation) {
  ServeFixture f;
  Server server(*f.pool, f.config(AdmissionPolicy::kDegrade));
  const ServeResult result = server.run_trace(f.overload_trace(3.0, 80));
  const ServeStats& s = result.stats;
  EXPECT_EQ(s.offered, s.admitted + s.rejected_full + s.rejected_expired +
                           s.rejected_shutdown);
  EXPECT_EQ(s.admitted, s.served + s.expired_in_queue);
  EXPECT_EQ(s.served, s.served_within_deadline + s.served_late);
  std::int64_t per_tier = 0;
  for (std::int64_t n : s.served_per_tier) per_tier += n;
  EXPECT_EQ(per_tier, s.served);
}

// The acceptance criterion (ISSUE): at >= 2x the sustainable
// full-precision rate, precision downshift serves strictly more
// requests within deadline than rejecting at full precision and than
// accepting everything with no admission control.
TEST(Server, DegradeBeatsBaselinesUnderOverload) {
  ServeFixture f;
  const ArrivalTrace trace = f.overload_trace(2.0, 120);
  auto run = [&](AdmissionPolicy policy) {
    Server server(*f.pool, f.config(policy));
    return server.run_trace(trace).stats;
  };
  const ServeStats degrade = run(AdmissionPolicy::kDegrade);
  const ServeStats reject = run(AdmissionPolicy::kRejectOnly);
  const ServeStats noadm = run(AdmissionPolicy::kNoAdmission);
  EXPECT_GT(degrade.served_within_deadline, reject.served_within_deadline)
      << "degrade must beat reject-only under 2x overload";
  EXPECT_GT(degrade.served_within_deadline, noadm.served_within_deadline)
      << "degrade must beat no-admission under 2x overload";
  EXPECT_GT(degrade.downshifts, 0);
}

TEST(Server, StatsJsonHasEveryField) {
  ServeFixture f;
  Server server(*f.pool, f.config(AdmissionPolicy::kDegrade));
  const ServeResult result = server.run_trace(f.overload_trace(1.0, 10));
  const json::Value v = serve_stats_to_json(result.stats);
  for (const char* key :
       {"offered", "admitted", "rejected_full", "rejected_expired",
        "rejected_shutdown", "expired_in_queue", "served",
        "served_within_deadline", "served_late", "served_per_tier",
        "downshifts", "upshifts", "end_tick", "total_energy_uj",
        "p50_latency_ticks", "p99_latency_ticks", "failed", "hung_batches",
        "corrupt_batches", "crashed_batches", "retries", "redirected",
        "rescrubs", "discarded_results", "attributed_ops",
        "attributed_energy_pj", "wasted_energy_pj"}) {
    EXPECT_TRUE(v.contains(key)) << key;
  }
}

// A latency spike must age out of the p99 signal once the pipeline has
// been quiet: with a sliding window the baseline snapshot advances and
// recovery re-enables; with the whole-run delta (window 0) the burst's
// latencies gate upshift forever.
TEST(Server, P99WindowReenablesRecoveryAfterQuietPeriod) {
  ServeFixture f;
  const Tick tpi = f.tiers[0].ticks_per_image;
  // A hard burst followed by a long, sparse tail.
  ArrivalTrace trace = f.overload_trace(3.0, 40);
  Tick t = trace.requests.back().arrival;
  for (std::int64_t i = 0; i < 30; ++i) {
    t += 20 * tpi;
    TraceRequest r;
    r.id = 40 + i;
    r.arrival = t;
    r.deadline = t + 12 * tpi;
    r.payload_seed = 1000 + static_cast<std::uint64_t>(i);
    trace.requests.push_back(r);
  }
  auto run = [&](Tick window) {
    ServerConfig cfg = f.config(AdmissionPolicy::kDegrade);
    cfg.controller.p99_high_ticks = 6 * tpi;
    cfg.controller.p99_low_ticks = 3 * tpi;
    cfg.p99_window_ticks = window;
    Server server(*f.pool, cfg);
    return server.run_trace(trace).stats;
  };
  const ServeStats whole_run = run(0);
  const ServeStats windowed = run(40 * tpi);
  EXPECT_GT(whole_run.downshifts, 0) << "the burst must trip the signal";
  EXPECT_GT(windowed.upshifts, whole_run.upshifts)
      << "sliding window must let the quiet tail recover full precision";
  // The tail is slow enough for tier 0: windowed runs serve it there.
  EXPECT_GT(windowed.served_per_tier[0], whole_run.served_per_tier[0]);
}

}  // namespace
}  // namespace qnn::serve
