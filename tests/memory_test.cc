// Memory footprint checks against the paper's §V-B numbers: parameter
// storage of ~1650/2150/350/1250/9400 KB at full precision and the
// 2×–32× linear reduction with bit width.
#include <gtest/gtest.h>

#include "nn/zoo.h"
#include "quant/memory.h"

namespace qnn::quant {
namespace {

MemoryFootprint footprint(const std::string& net_name,
                          const PrecisionConfig& cfg) {
  auto net = nn::make_network(net_name, {});
  return memory_footprint(*net, nn::input_shape_for(net_name), cfg);
}

TEST(Memory, FullPrecisionFootprintsMatchPaper) {
  EXPECT_NEAR(footprint("lenet", float_config()).param_kb(), 1650, 60);
  EXPECT_NEAR(footprint("convnet", float_config()).param_kb(), 2150, 100);
  EXPECT_NEAR(footprint("alex", float_config()).param_kb(), 350, 25);
  EXPECT_NEAR(footprint("alex+", float_config()).param_kb(), 1250, 80);
  EXPECT_NEAR(footprint("alex++", float_config()).param_kb(), 9400, 400);
}

TEST(Memory, LinearScalingWithWeightBits) {
  const double full = footprint("lenet", fixed_config(32, 32)).param_kb();
  EXPECT_NEAR(footprint("lenet", fixed_config(16, 16)).param_kb(), full / 2,
              1.0);
  EXPECT_NEAR(footprint("lenet", fixed_config(8, 8)).param_kb(), full / 4,
              1.0);
  EXPECT_NEAR(footprint("lenet", fixed_config(4, 4)).param_kb(), full / 8,
              1.0);
}

TEST(Memory, BinaryGives32xWeightReduction) {
  const auto full = footprint("alex", float_config());
  const auto bin = footprint("alex", binary_config(16));
  // Weights shrink 32x; biases (few) stay at 16 bits.
  const double weight_ratio =
      static_cast<double>(full.weight_count * full.weight_bits_each) /
      static_cast<double>(bin.weight_count * bin.weight_bits_each);
  EXPECT_DOUBLE_EQ(weight_ratio, 32.0);
}

TEST(Memory, Pow2UsesSixBitWeights) {
  const auto m = footprint("alex", pow2_config());
  EXPECT_EQ(m.weight_bits_each, 6);
  EXPECT_EQ(m.bias_bits_each, 16);  // biases at data precision
}

TEST(Memory, FixedBiasesShareWeightWidth) {
  const auto m = footprint("lenet", fixed_config(8, 8));
  EXPECT_EQ(m.bias_bits_each, 8);
}

TEST(Memory, InputFootprintTracksInputBits) {
  const auto f32 = footprint("alex", float_config());
  const auto f8 = footprint("alex", fixed_config(8, 8));
  EXPECT_EQ(f32.input_elements, 3 * 32 * 32);
  EXPECT_DOUBLE_EQ(f32.input_kb(), 4 * f8.input_kb());
}

TEST(Memory, WeightAndBiasCountsAreExact) {
  const auto m = footprint("lenet", float_config());
  EXPECT_EQ(m.weight_count, 500 + 25000 + 400000 + 5000);
  EXPECT_EQ(m.bias_count, 20 + 50 + 500 + 10);
}

}  // namespace
}  // namespace qnn::quant
