// Cross-feature integration: combinations of the library's independent
// capabilities that a downstream user would plausibly stack together.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "hw/nfu_sim.h"
#include "nn/activation.h"
#include "nn/inner_product.h"
#include "nn/metrics.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "quant/mixed_precision.h"
#include "quant/qat.h"

namespace qnn {
namespace {

TEST(CrossFeature, MixedPrecisionNetworkRunsOnIntegerPath) {
  // Per-layer widths + the NFU integer simulator together.
  auto net = std::make_unique<nn::Network>("mix");
  net->add<nn::InnerProduct>(6, 8);
  net->add<nn::Relu>();
  net->add<nn::InnerProduct>(8, 3);
  Rng rng(3);
  net->init_weights(rng);
  Tensor batch(Shape{5, 6});
  batch.fill_uniform(rng, 0, 1);

  quant::QuantizedNetwork qnet(*net, quant::fixed_config(8, 8),
                               std::vector<int>{8, 4});
  qnet.calibrate(batch);
  const Tensor float_path = qnet.forward(batch);
  qnet.restore_masters();
  const hw::NfuSimulator sim(*net, qnet, Shape{1, 6});
  const Tensor int_path = sim.forward(batch);
  const auto& fq = dynamic_cast<const quant::FixedQuantizer&>(
      qnet.data_quantizer(qnet.num_sites() - 1));
  for (std::int64_t i = 0; i < float_path.count(); ++i)
    EXPECT_NEAR(int_path[i], float_path[i], fq.format()->step() + 1e-9);
}

TEST(CrossFeature, TrainingWithAugmentationRuns) {
  data::SyntheticConfig dc;
  dc.num_train = 80;
  dc.num_test = 40;
  const auto split = data::make_mnist_like(dc);
  nn::ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = nn::make_lenet(zc);
  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 20;
  tc.sgd.learning_rate = 0.02;
  tc.augment.mirror = true;
  tc.augment.pad_crop = 2;
  const auto result = nn::train(*net, split.train, tc);
  EXPECT_EQ(result.epochs.size(), 2u);
  EXPECT_LT(result.epochs.back().mean_loss,
            result.epochs.front().mean_loss + 0.5);
}

TEST(CrossFeature, SnapshotThenQatThenMetrics) {
  // save → load into a fresh net → QAT → confusion-matrix evaluation.
  data::SyntheticConfig dc;
  dc.num_train = 150;
  dc.num_test = 60;
  const auto split = data::make_mnist_like(dc);
  nn::ZooConfig zc;
  zc.channel_scale = 0.2;
  auto trained = nn::make_lenet(zc);
  nn::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 25;
  tc.sgd.learning_rate = 0.02;
  nn::train(*trained, split.train, tc);
  const std::string bytes = nn::serialize_params(*trained);

  nn::ZooConfig fresh = zc;
  fresh.init_seed = 999;
  auto loaded = nn::make_lenet(fresh);
  nn::deserialize_params(*loaded, bytes);

  quant::QuantizedNetwork qnet(*loaded, quant::fixed_config(8, 8));
  quant::QatConfig qc;
  qc.train.epochs = 1;
  qc.train.batch_size = 25;
  qc.train.sgd.learning_rate = 0.01;
  quant::qat_finetune(qnet, split.train, qc);

  const nn::EvalMetrics m = nn::evaluate_metrics(qnet, split.test, 3);
  qnet.restore_masters();
  EXPECT_GT(m.top1, 60.0);
  EXPECT_GE(m.topk, m.top1);
  EXPECT_EQ(m.confusion.total(), split.test.size());
}

TEST(CrossFeature, DropoutNetworkQuantizesAndEvaluatesInEvalMode) {
  auto net = std::make_unique<nn::Network>("do");
  net->add<nn::InnerProduct>(4, 16);
  net->add<nn::Relu>();
  net->add<nn::Dropout>(0.5);
  net->add<nn::InnerProduct>(16, 2);
  Rng rng(5);
  net->init_weights(rng);
  Tensor batch(Shape{8, 4});
  batch.fill_uniform(rng, 0, 1);

  quant::QuantizedNetwork qnet(*net, quant::fixed_config(8, 8));
  qnet.calibrate(batch);
  // Eval mode: repeated quantized forwards must be identical (no
  // stochastic masking).
  qnet.set_training_mode(false);
  const Tensor a = qnet.forward(batch);
  const Tensor b = qnet.forward(batch);
  for (std::int64_t i = 0; i < a.count(); ++i) ASSERT_EQ(a[i], b[i]);
  qnet.restore_masters();
}

TEST(CrossFeature, StochasticRoundingQatConverges) {
  data::SyntheticConfig dc;
  dc.num_train = 120;
  dc.num_test = 60;
  const auto split = data::make_mnist_like(dc);
  nn::ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = nn::make_lenet(zc);
  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 24;
  tc.sgd.learning_rate = 0.02;
  nn::train(*net, split.train, tc);

  quant::PrecisionConfig cfg = quant::fixed_config(8, 8);
  cfg.rounding = Rounding::kStochastic;
  cfg.gradient_bits = 12;
  seed_stochastic_rounding(11);
  quant::QuantizedNetwork qnet(*net, cfg);
  quant::QatConfig qc;
  qc.train.epochs = 1;
  qc.train.batch_size = 24;
  qc.train.sgd.learning_rate = 0.01;
  quant::qat_finetune(qnet, split.train, qc);
  EXPECT_GT(nn::evaluate(qnet, split.test), 55.0);
  qnet.restore_masters();
}

}  // namespace
}  // namespace qnn
