#include <gtest/gtest.h>

#include <set>

#include "data/glyphs.h"
#include "data/synthetic.h"

namespace qnn::data {
namespace {

SyntheticConfig small_config() {
  SyntheticConfig c;
  c.num_train = 60;
  c.num_test = 20;
  c.seed = 123;
  return c;
}

TEST(Glyphs, AllTenDigitsHaveSegments) {
  std::set<std::size_t> sizes;
  for (int d = 0; d < 10; ++d) {
    const auto& segs = glyph_segments(d);
    EXPECT_GE(segs.size(), 3u) << "digit " << d;
    sizes.insert(segs.size());
  }
  EXPECT_GE(sizes.size(), 3u);  // glyph complexity varies across digits
}

TEST(Glyphs, DistinctClassesDifferAsImages) {
  // Render each digit untransformed and require pairwise L2 distance.
  const int h = 28, w = 28;
  std::vector<std::vector<float>> imgs(10, std::vector<float>(h * w, 0.f));
  for (int d = 0; d < 10; ++d)
    render_glyph(d, Affine{}, 0.05f, 1.0f, imgs[static_cast<std::size_t>(d)].data(), h, w);
  for (int a = 0; a < 10; ++a)
    for (int b = a + 1; b < 10; ++b) {
      double dist = 0;
      for (int i = 0; i < h * w; ++i) {
        const double diff = imgs[static_cast<std::size_t>(a)][static_cast<std::size_t>(i)] -
                            imgs[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)];
        dist += diff * diff;
      }
      EXPECT_GT(dist, 1.0) << "digits " << a << " and " << b
                           << " render nearly identically";
    }
}

TEST(Glyphs, RenderStaysInUnitRange) {
  std::vector<float> img(32 * 32, 0.f);
  render_glyph(8, Affine::jitter(0.2f, 1.1f, 0.05f, -0.05f, 0.1f), 0.05f,
               1.0f, img.data(), 32, 32);
  float mx = 0;
  for (float v : img) {
    EXPECT_GE(v, 0.0f);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mx, 0.5f);  // something was drawn
  EXPECT_LE(mx, 1.0f);
}

TEST(Synthetic, MnistShapesAndLabels) {
  const Split s = make_mnist_like(small_config());
  EXPECT_EQ(s.train.images.shape(), Shape({60, 1, 28, 28}));
  EXPECT_EQ(s.test.images.shape(), Shape({20, 1, 28, 28}));
  EXPECT_EQ(s.train.num_classes, 10);
  for (int y : s.train.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 10);
  }
}

TEST(Synthetic, SvhnAndCifarAreColor) {
  const Split svhn = make_svhn_like(small_config());
  EXPECT_EQ(svhn.train.images.shape(), Shape({60, 3, 32, 32}));
  const Split cifar = make_cifar_like(small_config());
  EXPECT_EQ(cifar.train.images.shape(), Shape({60, 3, 32, 32}));
}

TEST(Synthetic, PixelsInUnitInterval) {
  for (const char* name : {"mnist", "svhn", "cifar"}) {
    const Split s = make_dataset(name, small_config());
    for (std::int64_t i = 0; i < s.train.images.count(); ++i) {
      EXPECT_GE(s.train.images[i], 0.0f) << name;
      EXPECT_LE(s.train.images[i], 1.0f) << name;
    }
  }
}

TEST(Synthetic, DeterministicForSameSeed) {
  const Split a = make_cifar_like(small_config());
  const Split b = make_cifar_like(small_config());
  ASSERT_EQ(a.train.images.count(), b.train.images.count());
  for (std::int64_t i = 0; i < a.train.images.count(); ++i)
    ASSERT_EQ(a.train.images[i], b.train.images[i]) << "at " << i;
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticConfig c1 = small_config(), c2 = small_config();
  c2.seed = 999;
  const Split a = make_mnist_like(c1), b = make_mnist_like(c2);
  double dist = 0;
  for (std::int64_t i = 0; i < a.train.images.count(); ++i)
    dist += std::abs(a.train.images[i] - b.train.images[i]);
  EXPECT_GT(dist, 1.0);
}

TEST(Synthetic, ClassesBalanced) {
  const Split s = make_svhn_like(small_config());
  std::vector<int> counts(10, 0);
  for (int y : s.train.labels) counts[static_cast<std::size_t>(y)]++;
  for (int c : counts) EXPECT_EQ(c, 6);
}

TEST(Synthetic, TrainAndTestDisjointContent) {
  const Split s = make_mnist_like(small_config());
  // Not a strict guarantee, but train[0] and test[0] share a label class
  // (both are digit 0) yet should differ as images (independent draws).
  double dist = 0;
  for (std::int64_t i = 0; i < 28 * 28; ++i)
    dist += std::abs(s.train.images[i] - s.test.images[i]);
  EXPECT_GT(dist, 0.5);
}

TEST(Synthetic, UnknownDatasetThrows) {
  EXPECT_THROW(make_dataset("imagenet", small_config()), CheckError);
}

TEST(Synthetic, NoiseScaleIncreasesVariance) {
  SyntheticConfig quiet = small_config();
  quiet.noise_scale = 0.0;
  SyntheticConfig loud = small_config();
  loud.noise_scale = 2.0;
  const Split a = make_mnist_like(quiet), b = make_mnist_like(loud);
  // Background pixels (first row corner) should be exactly 0 without
  // noise and usually nonzero with it.
  int nonzero_quiet = 0, nonzero_loud = 0;
  for (std::int64_t s = 0; s < 20; ++s) {
    if (a.train.images[s * 28 * 28] != 0.0f) ++nonzero_quiet;
    if (b.train.images[s * 28 * 28] != 0.0f) ++nonzero_loud;
  }
  EXPECT_EQ(nonzero_quiet, 0);
  EXPECT_GT(nonzero_loud, 5);
}

}  // namespace
}  // namespace qnn::data
