#include <gtest/gtest.h>

#include <algorithm>

#include "data/dataset.h"
#include "util/check.h"

namespace qnn::data {
namespace {

Dataset tiny_dataset(std::int64_t n) {
  Dataset d;
  d.name = "tiny";
  d.num_classes = 4;
  d.images = Tensor(Shape{n, 1, 2, 2});
  d.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    d.labels[static_cast<std::size_t>(i)] = static_cast<int>(i % 4);
    for (std::int64_t j = 0; j < 4; ++j)
      d.images[i * 4 + j] = static_cast<float>(i * 10 + j);
  }
  return d;
}

TEST(Dataset, SliceCopiesContiguousRange) {
  const Dataset d = tiny_dataset(10);
  const Dataset s = d.slice(2, 5);
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.labels[0], 2);
  EXPECT_FLOAT_EQ(s.images[0], 20.0f);
  EXPECT_FLOAT_EQ(s.images[4 + 1], 31.0f);
}

TEST(Dataset, GatherReordersSamples) {
  const Dataset d = tiny_dataset(6);
  const Dataset g = d.gather({5, 0, 3});
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.labels[0], 1);  // label of sample 5
  EXPECT_FLOAT_EQ(g.images[0], 50.0f);
  EXPECT_FLOAT_EQ(g.images[4], 0.0f);
}

TEST(Dataset, SliceBoundsChecked) {
  const Dataset d = tiny_dataset(4);
  EXPECT_THROW(d.slice(-1, 2), CheckError);
  EXPECT_THROW(d.slice(2, 5), CheckError);
  EXPECT_THROW(d.gather({4}), CheckError);
}

TEST(Dataset, BatchImagesAndLabels) {
  const Dataset d = tiny_dataset(8);
  const Tensor b = batch_images(d, 2, 3);
  EXPECT_EQ(b.shape(), Shape({3, 1, 2, 2}));
  EXPECT_FLOAT_EQ(b[0], 20.0f);
  const auto y = batch_labels(d, 2, 3);
  EXPECT_EQ(y, (std::vector<int>{2, 3, 0}));
}

TEST(Dataset, SplitValidationPerClassFraction) {
  const Dataset d = tiny_dataset(40);  // 10 per class
  Rng rng(3);
  const auto [keep, val] = split_validation(d, 0.1, rng);
  EXPECT_EQ(val.size(), 4);  // one per class (the paper's 10% rule)
  EXPECT_EQ(keep.size(), 36);
  std::vector<int> counts(4, 0);
  for (int y : val.labels) counts[static_cast<std::size_t>(y)]++;
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(Dataset, SplitValidationZeroFraction) {
  const Dataset d = tiny_dataset(8);
  Rng rng(1);
  const auto [keep, val] = split_validation(d, 0.0, rng);
  EXPECT_EQ(val.size(), 0);
  EXPECT_EQ(keep.size(), 8);
}

TEST(Dataset, ShuffledIndicesIsPermutation) {
  Rng rng(9);
  const auto idx = shuffled_indices(100, rng);
  EXPECT_EQ(idx.size(), 100u);
  auto sorted = idx;
  std::sort(sorted.begin(), sorted.end());
  for (std::int64_t i = 0; i < 100; ++i)
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace qnn::data
