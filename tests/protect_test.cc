// Fault-tolerance layer tests: ABFT checksummed GEMM (detection,
// bounded re-execution, bit-identity with the plain kernels), range-
// guard envelopes, the ProtectedNetwork policy lattice, and protected
// fault campaigns.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "faults/campaign.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "protect/abft.h"
#include "protect/envelope.h"
#include "protect/protected_network.h"
#include "tensor/gemm.h"
#include "util/thread_pool.h"

namespace qnn::protect {
namespace {

// --- ABFT GEMM ----------------------------------------------------------

struct GemmProblem {
  std::int64_t m, n, k;
  std::vector<float> a, b, bias;

  GemmProblem(std::int64_t m_, std::int64_t n_, std::int64_t k_)
      : m(m_), n(n_), k(k_), a(m_ * k_), b(k_ * n_), bias(m_) {
    // Deterministic, sign-varied fill; magnitudes O(1).
    for (std::size_t i = 0; i < a.size(); ++i)
      a[i] = 0.05f * static_cast<float>((i * 37 + 11) % 23) - 0.5f;
    for (std::size_t i = 0; i < b.size(); ++i)
      b[i] = 0.04f * static_cast<float>((i * 53 + 5) % 29) - 0.55f;
    for (std::size_t i = 0; i < bias.size(); ++i)
      bias[i] = 0.1f * static_cast<float>(i % 7) - 0.3f;
  }
};

TEST(Abft, CleanRowBiasMatchesPlainKernelByteForByte) {
  const GemmProblem p(150, 33, 40);  // 3 M-shards at kGemmBlockM = 64
  std::vector<float> plain(p.m * p.n), checked(p.m * p.n);
  gemm_row_bias(p.m, p.n, p.k, p.a.data(), p.b.data(), plain.data(),
                p.bias.data());
  const AbftCounters c = abft_gemm_row_bias(p.m, p.n, p.k, p.a.data(),
                                            p.b.data(), checked.data(),
                                            p.bias.data(), AbftOptions{});
  EXPECT_EQ(std::memcmp(plain.data(), checked.data(),
                        plain.size() * sizeof(float)),
            0);
  EXPECT_EQ(c.blocks_checked, (p.m + kGemmBlockM - 1) / kGemmBlockM);
  EXPECT_TRUE(c.clean());
  EXPECT_EQ(c.reexecutions, 0);
}

TEST(Abft, CleanBtColBiasMatchesPlainKernelByteForByte) {
  // B stored [N,K]: InnerProduct's forward shape.
  const GemmProblem p(100, 25, 48);
  std::vector<float> bt(p.n * p.k);
  for (std::size_t i = 0; i < bt.size(); ++i)
    bt[i] = 0.03f * static_cast<float>((i * 41 + 3) % 31) - 0.45f;
  std::vector<float> col_bias(p.n);
  for (std::size_t j = 0; j < col_bias.size(); ++j)
    col_bias[j] = 0.05f * static_cast<float>(j % 5);

  std::vector<float> plain(p.m * p.n), checked(p.m * p.n);
  gemm_bt_col_bias(p.m, p.n, p.k, p.a.data(), bt.data(), plain.data(),
                   col_bias.data());
  const AbftCounters c =
      abft_gemm_bt_col_bias(p.m, p.n, p.k, p.a.data(), bt.data(),
                            checked.data(), col_bias.data(), AbftOptions{});
  EXPECT_EQ(std::memcmp(plain.data(), checked.data(),
                        plain.size() * sizeof(float)),
            0);
  EXPECT_TRUE(c.clean());
  EXPECT_EQ(c.blocks_checked, (p.m + kGemmBlockM - 1) / kGemmBlockM);
}

TEST(Abft, TransientCorruptionIsDetectedAndRepaired) {
  const GemmProblem p(150, 33, 40);
  std::vector<float> plain(p.m * p.n), checked(p.m * p.n);
  gemm_row_bias(p.m, p.n, p.k, p.a.data(), p.b.data(), plain.data(),
                p.bias.data());
  // Corrupt one element of the middle shard on the initial pass only —
  // a transient upset that re-execution heals.
  const AbftCounters c = abft_gemm_row_bias(
      p.m, p.n, p.k, p.a.data(), p.b.data(), checked.data(), p.bias.data(),
      AbftOptions{},
      [](std::int64_t i0, std::int64_t, std::int64_t, float* c_rows,
         int attempt) {
        if (i0 == kGemmBlockM && attempt == 0) c_rows[0] += 1000.0f;
      });
  EXPECT_EQ(c.mismatches, 1);
  EXPECT_EQ(c.reexecutions, 1);
  EXPECT_EQ(c.unrecovered, 0);
  // Recovery is exact: the repaired shard reproduces the clean bytes.
  EXPECT_EQ(std::memcmp(plain.data(), checked.data(),
                        plain.size() * sizeof(float)),
            0);
}

TEST(Abft, TallKRecoveryReusesChunkPlanAndRestoresExactBytes) {
  // Regression for K-sharded re-execution: the recompute path slices the
  // corrupted M-shard out of the operands and re-runs the kernel, and
  // gemm_k_plan depends only on K — so the retried shard walks the same
  // chunk boundaries and merge tree as the original pass and lands on
  // identical bytes. k = 700 spans three chunks (256/256/188); verify at
  // every pool size, since recovery must also be schedule-independent.
  struct ThreadGuard {
    ~ThreadGuard() {
      ThreadPool::set_global_threads(ThreadPool::env_threads());
    }
  } guard;
  const GemmProblem p(150, 33, 700);
  std::vector<float> plain(p.m * p.n);
  gemm_row_bias(p.m, p.n, p.k, p.a.data(), p.b.data(), plain.data(),
                p.bias.data());
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    ThreadPool::set_global_threads(threads);
    std::vector<float> checked(p.m * p.n);
    const AbftCounters c = abft_gemm_row_bias(
        p.m, p.n, p.k, p.a.data(), p.b.data(), checked.data(),
        p.bias.data(), AbftOptions{},
        [](std::int64_t i0, std::int64_t, std::int64_t, float* c_rows,
           int attempt) {
          if (i0 == kGemmBlockM && attempt == 0) c_rows[0] += 1000.0f;
        });
    EXPECT_EQ(c.mismatches, 1);
    EXPECT_EQ(c.reexecutions, 1);
    EXPECT_EQ(c.unrecovered, 0);
    // Recovered output == fault-free output, bit for bit.
    EXPECT_EQ(std::memcmp(plain.data(), checked.data(),
                          plain.size() * sizeof(float)),
              0);
  }
}

TEST(Abft, TallKBtRecoveryRestoresExactBytes) {
  // Same plan-reuse guarantee through the transposed-B entry (the
  // inner-product forward shape, where K-parallelism engages: small M,
  // K across multiple chunks).
  const GemmProblem p(8, 25, 600);
  std::vector<float> bt(p.n * p.k);
  for (std::size_t i = 0; i < bt.size(); ++i)
    bt[i] = 0.03f * static_cast<float>((i * 41 + 3) % 31) - 0.45f;
  std::vector<float> col_bias(p.n);
  for (std::size_t j = 0; j < col_bias.size(); ++j)
    col_bias[j] = 0.05f * static_cast<float>(j % 5);

  std::vector<float> plain(p.m * p.n), checked(p.m * p.n);
  gemm_bt_col_bias(p.m, p.n, p.k, p.a.data(), bt.data(), plain.data(),
                   col_bias.data());
  GemmScratch scratch;  // shared by initial pass and re-execution
  const AbftCounters c = abft_gemm_bt_col_bias(
      p.m, p.n, p.k, p.a.data(), bt.data(), checked.data(),
      col_bias.data(), AbftOptions{},
      [](std::int64_t i0, std::int64_t, std::int64_t, float* c_rows,
         int attempt) {
        if (i0 == 0 && attempt == 0) c_rows[1] -= 500.0f;
      },
      &scratch);
  EXPECT_EQ(c.mismatches, 1);
  EXPECT_EQ(c.unrecovered, 0);
  EXPECT_EQ(std::memcmp(plain.data(), checked.data(),
                        plain.size() * sizeof(float)),
            0);
}

TEST(Abft, TallKCleanScopedGemmVerifiesOverShardedPartials) {
  // The checksum relation must hold over the chunked fixed-tree order on
  // a clean run: no false mismatches, and the guarded result stays
  // byte-identical to the plain kernel.
  const GemmProblem p(96, 17, 1000);
  std::vector<float> plain(p.m * p.n), guarded(p.m * p.n);
  gemm_row_bias(p.m, p.n, p.k, p.a.data(), p.b.data(), plain.data(),
                p.bias.data());
  AbftScope scope{AbftOptions{}};
  gemm_row_bias_guarded(p.m, p.n, p.k, p.a.data(), p.b.data(),
                        guarded.data(), p.bias.data());
  EXPECT_EQ(std::memcmp(plain.data(), guarded.data(),
                        plain.size() * sizeof(float)),
            0);
  const AbftCounters c = scope.counters();
  EXPECT_EQ(c.blocks_checked, (p.m + kGemmBlockM - 1) / kGemmBlockM);
  EXPECT_TRUE(c.clean());
  EXPECT_EQ(c.reexecutions, 0);
}

TEST(Abft, PersistentCorruptionExhaustsRetriesAndReportsUnrecovered) {
  const GemmProblem p(128, 20, 32);
  std::vector<float> checked(p.m * p.n);
  AbftOptions opts;
  opts.max_reexecutions = 2;
  const AbftCounters c = abft_gemm_row_bias(
      p.m, p.n, p.k, p.a.data(), p.b.data(), checked.data(), p.bias.data(),
      opts,
      [](std::int64_t i0, std::int64_t, std::int64_t, float* c_rows, int) {
        if (i0 == 0) c_rows[0] += 1000.0f;  // hard fault: every attempt
      });
  EXPECT_EQ(c.mismatches, 1);
  EXPECT_EQ(c.reexecutions, 2);
  EXPECT_EQ(c.unrecovered, 1);
  EXPECT_FALSE(c.clean());
}

TEST(Abft, CorruptionBelowToleranceIsInvisibleByDesign) {
  // A perturbation inside the float rounding envelope of a K-length dot
  // product cannot be distinguished from legitimate arithmetic.
  const GemmProblem p(64, 16, 32);
  std::vector<float> checked(p.m * p.n);
  const AbftCounters c = abft_gemm_row_bias(
      p.m, p.n, p.k, p.a.data(), p.b.data(), checked.data(), p.bias.data(),
      AbftOptions{},
      [](std::int64_t, std::int64_t, std::int64_t, float* c_rows,
         int attempt) {
        if (attempt == 0) c_rows[0] = std::nextafterf(c_rows[0], 1e30f);
      });
  EXPECT_EQ(c.mismatches, 0);
}

TEST(Abft, NaNCorruptionIsCaught) {
  const GemmProblem p(64, 16, 32);
  std::vector<float> plain(p.m * p.n), checked(p.m * p.n);
  gemm_row_bias(p.m, p.n, p.k, p.a.data(), p.b.data(), plain.data(),
                p.bias.data());
  const AbftCounters c = abft_gemm_row_bias(
      p.m, p.n, p.k, p.a.data(), p.b.data(), checked.data(), p.bias.data(),
      AbftOptions{},
      [](std::int64_t, std::int64_t, std::int64_t, float* c_rows,
         int attempt) {
        if (attempt == 0) c_rows[3] = std::nanf("");
      });
  EXPECT_EQ(c.mismatches, 1);
  EXPECT_EQ(c.unrecovered, 0);
  EXPECT_EQ(std::memcmp(plain.data(), checked.data(),
                        plain.size() * sizeof(float)),
            0);
}

TEST(Abft, GuardedDispatchFallsThroughWithoutScope) {
  const GemmProblem p(96, 17, 24);
  std::vector<float> plain(p.m * p.n), guarded(p.m * p.n);
  gemm_row_bias(p.m, p.n, p.k, p.a.data(), p.b.data(), plain.data(),
                p.bias.data());
  gemm_row_bias_guarded(p.m, p.n, p.k, p.a.data(), p.b.data(),
                        guarded.data(), p.bias.data());
  EXPECT_EQ(std::memcmp(plain.data(), guarded.data(),
                        plain.size() * sizeof(float)),
            0);
}

TEST(Abft, ScopeCollectsCountersFromGuardedCalls) {
  const GemmProblem p(96, 17, 24);
  std::vector<float> plain(p.m * p.n), guarded(p.m * p.n);
  gemm_row_bias(p.m, p.n, p.k, p.a.data(), p.b.data(), plain.data(),
                p.bias.data());
  AbftScope scope{AbftOptions{}};
  gemm_row_bias_guarded(p.m, p.n, p.k, p.a.data(), p.b.data(),
                        guarded.data(), p.bias.data());
  EXPECT_EQ(std::memcmp(plain.data(), guarded.data(),
                        plain.size() * sizeof(float)),
            0);
  const AbftCounters c = scope.counters();
  EXPECT_EQ(c.blocks_checked, (p.m + kGemmBlockM - 1) / kGemmBlockM);
  EXPECT_TRUE(c.clean());
}

TEST(Abft, ScopeReachesGemmsIssuedFromPoolWorkers) {
  // Conv's forward shards the batch across the thread pool; the guarded
  // per-sample GEMMs must inherit the scope through the task context.
  nn::ZooConfig zc;
  zc.channel_scale = 0.2;
  auto net = nn::make_lenet(zc);
  Tensor in(Shape{4, 1, 28, 28});
  Rng rng(9);
  in.fill_uniform(rng, 0, 1);
  const Tensor unscoped = net->forward(in);
  AbftScope scope{AbftOptions{}};
  const Tensor scoped = net->forward(in);
  for (std::int64_t i = 0; i < scoped.count(); ++i)
    ASSERT_EQ(scoped[i], unscoped[i]);
  EXPECT_GT(scope.counters().blocks_checked, 0);
  EXPECT_TRUE(scope.counters().clean());
}

// --- envelopes ----------------------------------------------------------

TEST(Envelope, ObserveExpandsAndMarginWidens) {
  EnvelopeSet env;
  const float site0[] = {1.0f, 2.0f, 3.0f};
  const float site2[] = {-1.0f, 5.0f};
  env.observe(0, site0, 3);
  env.observe(2, site2, 2);
  ASSERT_EQ(env.size(), 3u);
  EXPECT_TRUE(env.sites()[0].valid);
  EXPECT_FALSE(env.sites()[1].valid);  // never observed
  EXPECT_TRUE(env.sites()[2].valid);
  EXPECT_DOUBLE_EQ(env.sites()[0].lo, 1.0);
  EXPECT_DOUBLE_EQ(env.sites()[0].hi, 3.0);

  env.expand_margins(0.5);  // half the range (= 1.0) on each side + slack
  EXPECT_NEAR(env.sites()[0].lo, 0.0, 1e-5);
  EXPECT_NEAR(env.sites()[0].hi, 4.0, 1e-5);
  EXPECT_FALSE(env.sites()[1].valid);  // margins never validate a site
}

TEST(Envelope, ObserveIgnoresNonFiniteValues) {
  EnvelopeSet env;
  const float vals[] = {2.0f, std::nanf(""), INFINITY, -INFINITY, 4.0f};
  env.observe(0, vals, 5);
  EXPECT_DOUBLE_EQ(env.sites()[0].lo, 2.0);
  EXPECT_DOUBLE_EQ(env.sites()[0].hi, 4.0);
}

TEST(Envelope, CountViolationsFlagsOutOfRangeNaNAndInf) {
  EnvelopeSet env{std::vector<SiteEnvelope>{{-1.0, 1.0, true}}};
  const float vals[] = {0.0f,           -1.0f, 1.0f, 1.5f, -2.0f,
                        std::nanf(""), INFINITY};
  EXPECT_EQ(env.count_violations(0, vals, 7), 4);
  // Unknown/invalid sites never flag.
  EXPECT_EQ(env.count_violations(5, vals, 7), 0);
  EnvelopeSet invalid{std::vector<SiteEnvelope>{{0.0, 0.0, false}}};
  EXPECT_EQ(invalid.count_violations(0, vals, 7), 0);
}

TEST(Envelope, ClampPullsIntoRangeAndReplacesNaN) {
  EnvelopeSet env{std::vector<SiteEnvelope>{{-1.0, 1.0, true},
                                            {2.0, 6.0, true},
                                            {-8.0, -3.0, true}}};
  float a[] = {0.5f, 1.5f, -2.0f, std::nanf("")};
  EXPECT_EQ(env.clamp(0, a, 4), 3);
  EXPECT_EQ(a[0], 0.5f);
  EXPECT_EQ(a[1], 1.0f);
  EXPECT_EQ(a[2], -1.0f);
  EXPECT_EQ(a[3], 0.0f);  // NaN -> in-envelope value nearest zero

  float b[] = {std::nanf("")};
  EXPECT_EQ(env.clamp(1, b, 1), 1);
  EXPECT_EQ(b[0], 2.0f);  // envelope entirely positive: nearest-zero = lo
  float c[] = {std::nanf("")};
  EXPECT_EQ(env.clamp(2, c, 1), 1);
  EXPECT_EQ(c[0], -3.0f);  // entirely negative: nearest-zero = hi

  // Clamp count agrees with the violation count on the same data.
  float d[] = {0.5f, 1.5f, -2.0f, std::nanf("")};
  const std::int64_t violations = env.count_violations(0, d, 4);
  EXPECT_EQ(env.clamp(0, d, 4), violations);
  EXPECT_EQ(env.count_violations(0, d, 4), 0);  // idempotent after clamp
}

TEST(Envelope, PolicyNamesRoundTrip) {
  for (ProtectionPolicy p :
       {ProtectionPolicy::kOff, ProtectionPolicy::kDetectOnly,
        ProtectionPolicy::kClamp, ProtectionPolicy::kRetryClamp})
    EXPECT_EQ(policy_from_name(policy_name(p)), p);
  EXPECT_THROW(policy_from_name("bogus"), CheckError);
}

// --- ProtectedNetwork ---------------------------------------------------

struct ProtectFixture {
  data::Split split;
  std::unique_ptr<nn::Network> net;

  ProtectFixture() {
    data::SyntheticConfig dc;
    dc.num_train = 150;
    dc.num_test = 60;
    dc.seed = 11;
    split = data::make_mnist_like(dc);
    nn::ZooConfig zc;
    zc.channel_scale = 0.2;
    net = nn::make_lenet(zc);
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 25;
    tc.sgd.learning_rate = 0.02;
    nn::train(*net, split.train, tc);
  }
};

ProtectFixture& fixture() {
  static ProtectFixture f;  // trained once, shared read-only
  return f;
}

ProtectionConfig config_for(ProtectionPolicy policy) {
  ProtectionConfig pc;
  pc.policy = policy;
  return pc;
}

TEST(ProtectedNetwork, OffPolicyIsExactPassThrough) {
  ProtectFixture& f = fixture();
  quant::QuantizedNetwork qnet(*f.net, quant::float_config());
  qnet.calibrate(f.split.train.images);

  ProtectedNetwork pnet(qnet, config_for(ProtectionPolicy::kOff));
  Tensor in(Shape{2, 1, 28, 28});
  Rng rng(3);
  in.fill_uniform(rng, 0, 1);
  const Tensor direct = qnet.forward(in);
  const Tensor wrapped = pnet.forward(in);
  for (std::int64_t i = 0; i < direct.count(); ++i)
    ASSERT_EQ(wrapped[i], direct[i]);
  EXPECT_EQ(pnet.counters(), ProtectionCounters{});
  qnet.restore_masters();
}

TEST(ProtectedNetwork, ForwardWithoutEnvelopesThrows) {
  ProtectFixture& f = fixture();
  quant::QuantizedNetwork qnet(*f.net, quant::float_config());
  qnet.calibrate(f.split.train.images);
  ProtectedNetwork pnet(qnet, config_for(ProtectionPolicy::kDetectOnly));
  Tensor in(Shape{1, 1, 28, 28});
  EXPECT_THROW(pnet.forward(in), CheckError);
  qnet.restore_masters();
}

TEST(ProtectedNetwork, CleanEvaluationNeverViolatesItsEnvelopes) {
  ProtectFixture& f = fixture();
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(8, 8));
  qnet.calibrate(f.split.train.images);
  const double clean = nn::evaluate(qnet, f.split.test);
  qnet.restore_masters();

  ProtectedNetwork pnet(qnet, config_for(ProtectionPolicy::kDetectOnly));
  pnet.calibrate_envelopes(f.split.test.images);
  const double protected_acc = nn::evaluate(pnet, f.split.test);
  EXPECT_DOUBLE_EQ(protected_acc, clean);
  EXPECT_GT(pnet.counters().values, 0);
  EXPECT_EQ(pnet.counters().out_of_envelope, 0);
  EXPECT_EQ(pnet.counters().clamped, 0);
  EXPECT_GT(pnet.counters().abft.blocks_checked, 0);
  EXPECT_TRUE(pnet.counters().abft.clean());
  qnet.restore_masters();
}

TEST(ProtectedNetwork, DetectOnlyCountsButLeavesCorruptionInPlace) {
  ProtectFixture& f = fixture();
  quant::QuantizedNetwork qnet(*f.net, quant::float_config());
  qnet.calibrate(f.split.train.images);
  ProtectedNetwork pnet(qnet, config_for(ProtectionPolicy::kDetectOnly));
  pnet.calibrate_envelopes(f.split.test.images);

  quant::ForwardHooks hooks;
  hooks.on_accumulator = [](std::size_t site, Tensor& values) {
    if (site == 2) values.data()[0] = 1e7f;  // far outside any envelope
  };
  qnet.set_forward_hooks(hooks);

  Tensor in(Shape{2, 1, 28, 28});
  Rng rng(5);
  in.fill_uniform(rng, 0, 1);
  const Tensor detected = pnet.forward(in);
  const Tensor unprotected = qnet.forward(in);
  for (std::int64_t i = 0; i < detected.count(); ++i)
    ASSERT_EQ(detected[i], unprotected[i]);
  EXPECT_GT(pnet.counters().out_of_envelope, 0);
  EXPECT_EQ(pnet.counters().clamped, 0);
  EXPECT_EQ(pnet.counters().layer_retries, 0);
  qnet.clear_forward_hooks();
  qnet.restore_masters();
}

TEST(ProtectedNetwork, ClampPullsInjectedValuesBackIntoEnvelope) {
  ProtectFixture& f = fixture();
  quant::QuantizedNetwork qnet(*f.net, quant::float_config());
  qnet.calibrate(f.split.train.images);
  ProtectedNetwork pnet(qnet, config_for(ProtectionPolicy::kClamp));
  pnet.calibrate_envelopes(f.split.test.images);

  quant::ForwardHooks hooks;
  hooks.on_accumulator = [](std::size_t site, Tensor& values) {
    if (site == 2) values.data()[0] = 1e7f;
  };
  qnet.set_forward_hooks(hooks);

  Tensor in(Shape{2, 1, 28, 28});
  Rng rng(5);
  in.fill_uniform(rng, 0, 1);
  (void)pnet.forward(in);
  EXPECT_GT(pnet.counters().out_of_envelope, 0);
  EXPECT_GT(pnet.counters().clamped, 0);
  EXPECT_EQ(pnet.counters().layer_retries, 0);
  EXPECT_FALSE(pnet.last_forward_degraded());
  qnet.clear_forward_hooks();
  qnet.restore_masters();
}

TEST(ProtectedNetwork, RetryRecoversFromTransientFaultExactly) {
  ProtectFixture& f = fixture();
  quant::QuantizedNetwork qnet(*f.net, quant::float_config());
  qnet.calibrate(f.split.train.images);

  Tensor in(Shape{2, 1, 28, 28});
  Rng rng(5);
  in.fill_uniform(rng, 0, 1);
  const Tensor clean = qnet.forward(in);
  qnet.restore_masters();

  ProtectedNetwork pnet(qnet, config_for(ProtectionPolicy::kRetryClamp));
  pnet.calibrate_envelopes(f.split.test.images);
  // Transient: corrupts site 2 on its first execution only; the retry
  // re-runs the layer fault-free.
  int hits = 0;
  quant::ForwardHooks hooks;
  hooks.on_accumulator = [&hits](std::size_t site, Tensor& values) {
    if (site == 2 && hits++ == 0) values.data()[0] = 1e7f;
  };
  qnet.set_forward_hooks(hooks);
  const Tensor recovered = pnet.forward(in);
  for (std::int64_t i = 0; i < clean.count(); ++i)
    ASSERT_EQ(recovered[i], clean[i]);
  EXPECT_EQ(pnet.counters().layer_retries, 1);
  EXPECT_EQ(pnet.counters().clamped, 0);
  EXPECT_EQ(pnet.counters().degraded_forwards, 0);
  EXPECT_FALSE(pnet.last_forward_degraded());
  qnet.clear_forward_hooks();
  qnet.restore_masters();
}

TEST(ProtectedNetwork, RetryExhaustionDegradesGracefully) {
  ProtectFixture& f = fixture();
  quant::QuantizedNetwork qnet(*f.net, quant::float_config());
  qnet.calibrate(f.split.train.images);
  ProtectionConfig pc = config_for(ProtectionPolicy::kRetryClamp);
  pc.max_layer_retries = 2;
  ProtectedNetwork pnet(qnet, pc);
  pnet.calibrate_envelopes(f.split.test.images);

  quant::ForwardHooks hooks;
  hooks.on_accumulator = [](std::size_t site, Tensor& values) {
    if (site == 2) values.data()[0] = 1e7f;  // hard fault: every attempt
  };
  qnet.set_forward_hooks(hooks);
  Tensor in(Shape{2, 1, 28, 28});
  Rng rng(5);
  in.fill_uniform(rng, 0, 1);
  (void)pnet.forward(in);
  EXPECT_EQ(pnet.counters().layer_retries, 2);
  EXPECT_GT(pnet.counters().clamped, 0);
  EXPECT_EQ(pnet.counters().degraded_forwards, 1);
  EXPECT_TRUE(pnet.last_forward_degraded());
  qnet.clear_forward_hooks();
  qnet.restore_masters();
}

TEST(ProtectedNetwork, CoarseFormatsAlwaysVoteAndOutrunBlindDetection) {
  // At 4-bit data widths an upset almost always lands back inside the
  // clean activation range, so envelope detection never fires — the
  // escalation must vote every layer instead. Corrupt one draw with an
  // IN-envelope value (0 is always representable): range guards report
  // nothing, yet the median across redundant executions discards it.
  ProtectFixture& f = fixture();
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(4, 4));
  qnet.calibrate(f.split.train.images);

  // Envelope-covered input: calibration runs over these same images, so
  // a fault-free forward is guaranteed violation-free.
  const Tensor& in = f.split.test.images;
  const Tensor clean = qnet.forward(in);
  qnet.restore_masters();

  ProtectionConfig pc = config_for(ProtectionPolicy::kRetryClamp);
  ASSERT_LE(4, pc.always_vote_data_bits);  // fixed(4,4) must escalate
  ProtectedNetwork pnet(qnet, pc);
  pnet.calibrate_envelopes(f.split.test.images);

  int hits = 0;
  quant::ForwardHooks hooks;
  hooks.on_quantized_site = [&hits](std::size_t site, Tensor& values) {
    if (site == 2 && hits++ == 0) values.data()[0] = 0.0f;
  };
  qnet.set_forward_hooks(hooks);
  const Tensor voted = pnet.forward(in);
  for (std::int64_t i = 0; i < clean.count(); ++i)
    ASSERT_EQ(voted[i], clean[i]);
  // Every layer ran 1 + max_layer_retries times, yet detection saw
  // nothing: the recovery came from the vote alone.
  const std::int64_t layers =
      static_cast<std::int64_t>(f.net->num_layers());
  EXPECT_EQ(pnet.counters().layer_retries, layers * pc.max_layer_retries);
  EXPECT_EQ(pnet.counters().out_of_envelope, 0);
  EXPECT_EQ(pnet.counters().clamped, 0);
  EXPECT_EQ(pnet.counters().degraded_forwards, 0);
  qnet.clear_forward_hooks();
  qnet.restore_masters();

  // The escalation is gated by the knob: with it disabled the same
  // in-envelope corruption is invisible and nothing is re-executed.
  ProtectionConfig off = pc;
  off.always_vote_data_bits = 0;
  ProtectedNetwork plain(qnet, off);
  plain.calibrate_envelopes(f.split.test.images);
  hits = 0;
  qnet.set_forward_hooks(hooks);
  (void)plain.forward(in);
  EXPECT_EQ(plain.counters().layer_retries, 0);
  EXPECT_EQ(plain.counters().out_of_envelope, 0);
  qnet.clear_forward_hooks();
  qnet.restore_masters();
}

// --- protected campaigns ------------------------------------------------

TEST(ProtectedCampaign, DetectOnlySeesTheSameFaultStreamAsOff) {
  ProtectFixture& f = fixture();
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(8, 8));
  qnet.calibrate(f.split.train.images);

  faults::CampaignConfig cc;
  cc.trials = 3;
  cc.bit_error_rate = 1e-3;
  cc.seed = 2024;
  const faults::CampaignResult off = run_fault_campaign(qnet, f.split.test,
                                                        cc);
  cc.protection.policy = ProtectionPolicy::kDetectOnly;
  const faults::CampaignResult detect =
      run_fault_campaign(qnet, f.split.test, cc);

  // Counting is observation-only: the detect-only campaign reproduces
  // the unprotected accuracy trajectory bit for bit.
  EXPECT_DOUBLE_EQ(detect.mean_accuracy, off.mean_accuracy);
  EXPECT_DOUBLE_EQ(detect.min_accuracy, off.min_accuracy);
  EXPECT_DOUBLE_EQ(detect.max_accuracy, off.max_accuracy);
  EXPECT_EQ(detect.total_flips, off.total_flips);
  EXPECT_GT(detect.protection.values, 0);
  EXPECT_EQ(off.protection, protect::ProtectionCounters{});
}

TEST(ProtectedCampaign, RetryClampIsDeterministicAndRestoresState) {
  ProtectFixture& f = fixture();
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(8, 8));
  qnet.calibrate(f.split.train.images);
  const double clean = nn::evaluate(qnet, f.split.test);
  qnet.restore_masters();

  faults::CampaignConfig cc;
  cc.trials = 3;
  cc.bit_error_rate = 1e-3;
  cc.seed = 2024;
  cc.protection.policy = ProtectionPolicy::kRetryClamp;
  const faults::CampaignResult r1 = run_fault_campaign(qnet, f.split.test,
                                                       cc);
  const faults::CampaignResult r2 = run_fault_campaign(qnet, f.split.test,
                                                       cc);
  EXPECT_DOUBLE_EQ(r1.mean_accuracy, r2.mean_accuracy);
  EXPECT_DOUBLE_EQ(r1.min_accuracy, r2.min_accuracy);
  EXPECT_EQ(r1.total_flips, r2.total_flips);
  EXPECT_EQ(r1.protection, r2.protection);
  EXPECT_GT(r1.protection.values, 0);

  // Hooks cleared + masters restored: clean accuracy reproduces.
  EXPECT_DOUBLE_EQ(nn::evaluate(qnet, f.split.test), clean);
}

}  // namespace
}  // namespace qnn::protect
