// Request-scoped causal tracing + energy attribution (DESIGN.md §14).
//
// Four contracts over the RequestTracer / AttributionLedger pair:
//
//   1. Determinism: with tracing ON under a mixed chaos schedule, the
//      JSONL event log, the lane-execution records, and the attribution
//      ledger are bit-identical at 1, 4, and 8 worker threads; and
//      tracing on vs. off leaves response bytes, ServeResult::digest(),
//      and every attributed energy figure unchanged.
//   2. Causality: a hung batch's requests show the watchdog strike, the
//      retry, and the sibling-lane re-dispatch in causal (append) order
//      with increasing attempt numbers; a whole-tier loss shows the
//      redirect hop (old tier in `detail`) before the down-lattice
//      dispatch, after the crash transition that caused it.
//   3. Attribution: the ledger reconciles with the stats-level energy
//      aggregate (pJ vs uJ), each Response carries exactly its own
//      ledger totals, doomed executions leave a wasted (never
//      published) share, and the SLO roll-up restates conservation.
//   4. Export: the JSONL artifact parses line-by-line with seq == line
//      index, and the chrome-trace document carries one named track per
//      executor lane plus the frontend track.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "faults/lane_faults.h"
#include "nn/activation.h"
#include "nn/inner_product.h"
#include "nn/network.h"
#include "obs/ledger.h"
#include "serve/health.h"
#include "serve/request_trace.h"
#include "serve/server.h"
#include "serve/slo.h"
#include "serve/tiers.h"
#include "serve/trace.h"
#include "util/fileio.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace qnn::serve {
namespace {

std::unique_ptr<nn::Network> trace_net() {
  auto net = std::make_unique<nn::Network>("serve_request_trace");
  net->add<nn::InnerProduct>(6, 12);
  net->add<nn::Relu>();
  net->add<nn::InnerProduct>(12, 3);
  Rng rng(17);
  net->init_weights(rng);
  return net;
}

std::vector<TierSpec> trace_tiers() {
  auto net = trace_net();
  std::vector<TierSpec> tiers = default_tier_lattice();
  derive_tier_costs(*net, Shape{1, 6}, &tiers);
  return tiers;
}

ArrivalTrace arrivals(const std::vector<TierSpec>& tiers, double rate,
                      std::int64_t n, Tick deadline_mult = 20) {
  OpenLoopSpec spec;
  spec.num_requests = n;
  spec.mean_interarrival_ticks =
      static_cast<double>(tiers[0].ticks_per_image) / rate;
  spec.relative_deadline_ticks = deadline_mult * tiers[0].ticks_per_image;
  spec.seed = 42;
  return make_open_loop_trace(spec, {6});
}

ServerConfig traced_config(const std::vector<TierSpec>& tiers,
                           const faults::LaneFaultSchedule* chaos,
                           bool trace_requests = true) {
  ServerConfig cfg;
  cfg.queue_capacity = 16;
  cfg.batcher.max_batch = 4;
  cfg.batcher.batch_window = tiers[0].ticks_per_image;
  cfg.controller.high_depth_fraction = 0.5;
  cfg.controller.low_depth_fraction = 0.125;
  cfg.controller.dwell_ticks = 2 * tiers[0].ticks_per_image;
  cfg.chaos = chaos;
  cfg.trace_requests = trace_requests;
  return cfg;
}

// Fresh pool + server per run so no replica state leaks between runs.
ServeResult run_once(const ArrivalTrace& trace, const ServerConfig& cfg,
                     int replicas_per_tier = 2) {
  auto net = trace_net();
  std::vector<TierSpec> tiers = trace_tiers();
  Tensor calib(Shape{16, 6});
  Rng rng(9);
  calib.fill_uniform(rng, 0, 1);
  ReplicaPool pool(*net, calib, tiers, replicas_per_tier);
  Server server(pool, cfg);
  return server.run_trace(trace);
}

// Hang + corrupt + crash against a 2-replica pool (mirrors the chaos
// suite's mixed schedule so the traced log covers all fault kinds).
faults::LaneFaultSchedule mixed_schedule(const std::vector<TierSpec>& tiers) {
  const Tick t0 = tiers[0].ticks_per_image;
  faults::LaneFaultSchedule s;
  faults::LaneFault hang;
  hang.kind = faults::LaneFaultKind::kHangLane;
  hang.tier = 0;
  hang.replica = 0;
  hang.at_tick = 0;
  hang.hang_ticks = 100 * t0;
  s.faults.push_back(hang);
  faults::LaneFault corrupt;
  corrupt.kind = faults::LaneFaultKind::kCorruptLane;
  corrupt.tier = 0;
  corrupt.replica = 1;
  corrupt.at_tick = 2 * t0;
  corrupt.corrupt_flips = 16;
  corrupt.seed = 77;
  s.faults.push_back(corrupt);
  faults::LaneFault crash;
  crash.kind = faults::LaneFaultKind::kCrashLane;
  crash.tier = 1;
  crash.replica = 0;
  crash.at_tick = 4 * t0;
  s.faults.push_back(crash);
  faults::validate_schedule(s);
  return s;
}

void expect_ledger_identical(const obs::AttributionLedger& a,
                             const obs::AttributionLedger& b,
                             const char* what) {
  ASSERT_EQ(a.charges().size(), b.charges().size()) << what;
  for (std::size_t i = 0; i < a.charges().size(); ++i) {
    const obs::EnergyCharge& ca = a.charges()[i];
    const obs::EnergyCharge& cb = b.charges()[i];
    EXPECT_EQ(ca.request_id, cb.request_id) << what << " charge " << i;
    EXPECT_EQ(ca.tick, cb.tick) << what << " charge " << i;
    EXPECT_EQ(ca.tier, cb.tier) << what << " charge " << i;
    EXPECT_EQ(ca.lane, cb.lane) << what << " charge " << i;
    EXPECT_EQ(ca.attempt, cb.attempt) << what << " charge " << i;
    EXPECT_EQ(ca.ops, cb.ops) << what << " charge " << i;
    EXPECT_EQ(ca.energy_pj, cb.energy_pj)  // bit identity, not tolerance
        << what << " charge " << i;
    EXPECT_EQ(ca.published, cb.published) << what << " charge " << i;
  }
  EXPECT_EQ(a.total_ops(), b.total_ops()) << what;
  EXPECT_EQ(a.total_energy_pj(), b.total_energy_pj()) << what;
  EXPECT_EQ(a.published_energy_pj(), b.published_energy_pj()) << what;
}

// Index of the first event matching (request, kind), or -1.
std::int64_t first_event(const std::vector<RequestEvent>& events,
                         std::int64_t request_id, RequestEventKind kind) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].request_id == request_id && events[i].kind == kind)
      return static_cast<std::int64_t>(i);
  }
  return -1;
}

// --- determinism --------------------------------------------------------

TEST(TraceDeterminism, JsonlLedgerAndExecutionsIdenticalAt148Threads) {
  const std::vector<TierSpec> tiers = trace_tiers();
  const faults::LaneFaultSchedule schedule = mixed_schedule(tiers);
  const ArrivalTrace trace = arrivals(tiers, 2.5, 80);
  const ServerConfig cfg = traced_config(tiers, &schedule);

  ScopedGlobalThreads one(1);
  const ServeResult r1 = run_once(trace, cfg);
  ServeResult r4, r8;
  {
    ScopedGlobalThreads four(4);
    r4 = run_once(trace, cfg);
  }
  {
    ScopedGlobalThreads eight(8);
    r8 = run_once(trace, cfg);
  }
  ASSERT_FALSE(r1.request_events.empty());
  ASSERT_FALSE(r1.lane_executions.empty());
  const std::string jsonl = request_events_to_jsonl(r1.request_events);
  EXPECT_EQ(jsonl, request_events_to_jsonl(r4.request_events))
      << "JSONL must be bit-identical at 1 vs 4 threads";
  EXPECT_EQ(jsonl, request_events_to_jsonl(r8.request_events))
      << "JSONL must be bit-identical at 1 vs 8 threads";
  EXPECT_EQ(r1.lane_executions, r4.lane_executions);
  EXPECT_EQ(r1.lane_executions, r8.lane_executions);
  EXPECT_EQ(r1.lane_names, r4.lane_names);
  expect_ledger_identical(r1.ledger, r4.ledger, "1 vs 4 threads");
  expect_ledger_identical(r1.ledger, r8.ledger, "1 vs 8 threads");
  EXPECT_EQ(r1.digest(), r4.digest());
  EXPECT_EQ(r1.digest(), r8.digest());
}

TEST(TraceDeterminism, TracingOnEqualsOffForReplayAndAttribution) {
  const std::vector<TierSpec> tiers = trace_tiers();
  const faults::LaneFaultSchedule schedule = mixed_schedule(tiers);
  const ArrivalTrace trace = arrivals(tiers, 2.5, 60);
  const ServeResult off =
      run_once(trace, traced_config(tiers, &schedule, /*trace=*/false));
  const ServeResult on =
      run_once(trace, traced_config(tiers, &schedule, /*trace=*/true));

  // Tracing is pure observation: the replay fingerprint and every
  // response byte AND attribution figure are unchanged.
  EXPECT_EQ(off.digest(), on.digest());
  ASSERT_EQ(off.responses.size(), on.responses.size());
  for (std::size_t i = 0; i < off.responses.size(); ++i) {
    const Response& a = off.responses[i];
    const Response& b = on.responses[i];
    EXPECT_EQ(a.id, b.id) << "response " << i;
    EXPECT_EQ(a.tier, b.tier) << "response " << i;
    EXPECT_EQ(a.output, b.output) << "response " << i;
    EXPECT_EQ(a.ops, b.ops) << "response " << i;
    EXPECT_EQ(a.energy_pj, b.energy_pj) << "response " << i;
    EXPECT_EQ(a.wasted_energy_pj, b.wasted_energy_pj) << "response " << i;
  }
  // The ledger always runs; only the event/execution logs are gated.
  expect_ledger_identical(off.ledger, on.ledger, "off vs on");
  EXPECT_TRUE(off.request_events.empty());
  EXPECT_TRUE(off.lane_executions.empty());
  EXPECT_FALSE(on.request_events.empty());
  EXPECT_FALSE(on.lane_executions.empty());
}

// --- causality ----------------------------------------------------------

TEST(TraceCausality, HangShowsWatchdogRetryAndSiblingHopInOrder) {
  const std::vector<TierSpec> tiers = trace_tiers();
  faults::LaneFaultSchedule s;
  faults::LaneFault hang;
  hang.kind = faults::LaneFaultKind::kHangLane;
  hang.tier = 0;
  hang.replica = 0;
  hang.at_tick = 0;
  hang.hang_ticks = 100 * tiers[0].ticks_per_image;
  s.faults.push_back(hang);

  const ArrivalTrace trace = arrivals(tiers, 1.0, 30);
  const ServeResult r = run_once(trace, traced_config(tiers, &s));
  ASSERT_EQ(r.stats.hung_batches, 1);

  // The doomed execution names the requests that rode the wedged lane.
  const LaneExecution* doomed = nullptr;
  for (const LaneExecution& ex : r.lane_executions) {
    if (ex.outcome == LaneExecution::Outcome::kDoomed) doomed = &ex;
  }
  ASSERT_NE(doomed, nullptr);
  ASSERT_FALSE(doomed->request_ids.empty());

  for (const std::int64_t id : doomed->request_ids) {
    const auto& ev = r.request_events;
    const std::int64_t d1 = first_event(ev, id, RequestEventKind::kDispatch);
    const std::int64_t h = first_event(ev, id, RequestEventKind::kHang);
    const std::int64_t rt = first_event(ev, id, RequestEventKind::kRetry);
    const std::int64_t c = first_event(ev, id, RequestEventKind::kComplete);
    ASSERT_GE(d1, 0) << "request " << id;
    ASSERT_GT(h, d1) << "watchdog strike after first dispatch";
    ASSERT_GT(rt, h) << "retry after the strike";
    ASSERT_GT(c, rt) << "completion after the retry";
    // The re-dispatch lands on the sibling lane with a bumped attempt.
    bool redispatched = false;
    for (std::size_t i = static_cast<std::size_t>(rt); i < ev.size(); ++i) {
      if (ev[i].request_id != id) continue;
      if (ev[i].kind != RequestEventKind::kDispatch) continue;
      EXPECT_GT(ev[i].attempt, ev[static_cast<std::size_t>(d1)].attempt);
      EXPECT_NE(ev[i].lane, ev[static_cast<std::size_t>(d1)].lane)
          << "retry must leave the wedged lane";
      redispatched = true;
      break;
    }
    EXPECT_TRUE(redispatched) << "request " << id;

    // The ledger shows both attempts: the doomed charge never published.
    const auto charges = r.ledger.charges_for(id);
    ASSERT_GE(charges.size(), 2u) << "request " << id;
    EXPECT_FALSE(charges.front()->published);
    EXPECT_TRUE(charges.back()->published);
    const obs::RequestAttribution attr = r.ledger.totals_for(id);
    EXPECT_GT(attr.wasted_energy_pj(), 0.0)
        << "the doomed execution's energy is wasted, not free";
  }
}

TEST(TraceCausality, WholeTierLossShowsRedirectHopAfterCrash) {
  const std::vector<TierSpec> tiers = trace_tiers();
  faults::LaneFaultSchedule s;
  for (int rep = 0; rep < 2; ++rep) {
    faults::LaneFault crash;
    crash.kind = faults::LaneFaultKind::kCrashLane;
    crash.tier = 0;
    crash.replica = rep;
    crash.at_tick = 0;
    s.faults.push_back(crash);
  }
  const ArrivalTrace trace = arrivals(tiers, 1.0, 30);
  const ServeResult r = run_once(trace, traced_config(tiers, &s));
  ASSERT_GT(r.stats.redirected, 0);

  // Find a response that hopped down the lattice and replay its log.
  const Response* hopped = nullptr;
  for (const Response& resp : r.responses) {
    if (resp.redirects > 0 && resp.admitted_tier == 0) hopped = &resp;
  }
  ASSERT_NE(hopped, nullptr);
  EXPECT_NE(hopped->tier, 0) << "tier 0 is dead; the hop must leave it";

  const auto& ev = r.request_events;
  const std::int64_t red =
      first_event(ev, hopped->id, RequestEventKind::kRedirect);
  ASSERT_GE(red, 0);
  const RequestEvent& hop = ev[static_cast<std::size_t>(red)];
  EXPECT_EQ(hop.detail, 0) << "detail records the ABANDONED tier";
  EXPECT_EQ(hop.tier, hopped->tier) << "event tier is the redirect target";
  // Fault order: the crash transition that killed the tier precedes the
  // hop, and the hop precedes the dispatch that finally served it.
  std::int64_t first_crash_health = -1;
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (ev[i].kind == RequestEventKind::kHealth &&
        ev[i].detail == static_cast<std::int64_t>(HealthReason::kCrash)) {
      first_crash_health = static_cast<std::int64_t>(i);
      break;
    }
  }
  ASSERT_GE(first_crash_health, 0);
  EXPECT_LT(first_crash_health, red);
  bool dispatched_after_hop = false;
  for (std::size_t i = static_cast<std::size_t>(red); i < ev.size(); ++i) {
    if (ev[i].request_id == hopped->id &&
        ev[i].kind == RequestEventKind::kDispatch) {
      EXPECT_EQ(ev[i].tier, hopped->tier);
      dispatched_after_hop = true;
      break;
    }
  }
  EXPECT_TRUE(dispatched_after_hop);
}

TEST(TraceCausality, EventCountsMatchConservationCounters) {
  const std::vector<TierSpec> tiers = trace_tiers();
  const faults::LaneFaultSchedule schedule = mixed_schedule(tiers);
  const ArrivalTrace trace = arrivals(tiers, 2.5, 80);
  const ServeResult r = run_once(trace, traced_config(tiers, &schedule));

  std::int64_t arrivals_n = 0, admits = 0, rejects = 0, completes = 0,
               fails = 0, expires = 0;
  for (const RequestEvent& e : r.request_events) {
    switch (e.kind) {
      case RequestEventKind::kArrival:  ++arrivals_n; break;
      case RequestEventKind::kAdmit:    ++admits; break;
      case RequestEventKind::kReject:   ++rejects; break;
      case RequestEventKind::kComplete: ++completes; break;
      case RequestEventKind::kFail:     ++fails; break;
      case RequestEventKind::kExpire:   ++expires; break;
      default: break;
    }
  }
  EXPECT_EQ(arrivals_n, r.stats.offered);
  EXPECT_EQ(admits, r.stats.admitted);
  EXPECT_EQ(rejects, r.stats.rejected_full + r.stats.rejected_expired +
                         r.stats.rejected_shutdown);
  EXPECT_EQ(completes, r.stats.served);
  EXPECT_EQ(fails, r.stats.failed);
  EXPECT_EQ(expires, r.stats.expired_in_queue);
  // Every admitted request leaves the event log exactly once.
  EXPECT_EQ(admits, completes + fails + expires);
}

// --- attribution --------------------------------------------------------

TEST(TraceAttribution, LedgerReconcilesWithStatsAndResponses) {
  const std::vector<TierSpec> tiers = trace_tiers();
  const faults::LaneFaultSchedule schedule = mixed_schedule(tiers);
  const ArrivalTrace trace = arrivals(tiers, 2.0, 60);
  const ServeResult r = run_once(trace, traced_config(tiers, &schedule));

  // pJ ledger vs uJ stats aggregate: same executions, same model.
  EXPECT_NEAR(r.stats.attributed_energy_pj, r.stats.total_energy_uj * 1e6,
              1e-6 * std::max(1.0, r.stats.total_energy_uj * 1e6));
  EXPECT_EQ(r.stats.attributed_energy_pj, r.ledger.total_energy_pj());
  EXPECT_EQ(r.stats.attributed_ops, r.ledger.total_ops());
  EXPECT_EQ(r.stats.wasted_energy_pj, r.ledger.wasted_energy_pj());
  // Faults make some executions discarded, so waste is strictly positive
  // and published < total.
  EXPECT_GT(r.ledger.wasted_energy_pj(), 0.0);
  EXPECT_LT(r.ledger.published_energy_pj(), r.ledger.total_energy_pj());

  for (const Response& resp : r.responses) {
    const obs::RequestAttribution attr = r.ledger.totals_for(resp.id);
    EXPECT_EQ(resp.ops, attr.ops) << "request " << resp.id;
    EXPECT_EQ(resp.energy_pj, attr.energy_pj) << "request " << resp.id;
    EXPECT_EQ(resp.wasted_energy_pj, attr.wasted_energy_pj())
        << "request " << resp.id;
    EXPECT_GT(resp.ops, 0) << "served requests cost real MACs";
    EXPECT_GT(resp.energy_pj, 0.0);
  }
}

TEST(TraceAttribution, SloSummaryIsConservedAndCoversServedTiers) {
  const std::vector<TierSpec> tiers = trace_tiers();
  const faults::LaneFaultSchedule schedule = mixed_schedule(tiers);
  const ArrivalTrace trace = arrivals(tiers, 2.0, 60);
  const ServeResult r = run_once(trace, traced_config(tiers, &schedule));
  const SloSummary slo = make_slo_summary(r, tiers);

  EXPECT_TRUE(slo.conserved);
  EXPECT_EQ(slo.served, r.stats.served);
  EXPECT_EQ(slo.admitted, slo.served + slo.expired_in_queue + slo.failed);
  std::int64_t tier_sum = 0;
  std::set<int> seen;
  for (const TierSlo& t : slo.tiers) {
    EXPECT_TRUE(seen.insert(t.tier).second) << "one block per tier";
    EXPECT_GT(t.served, 0) << "only tiers that served traffic appear";
    EXPECT_GE(t.in_deadline_fraction, 0.0);
    EXPECT_LE(t.in_deadline_fraction, 1.0);
    EXPECT_GE(t.p99_latency_ticks, t.p50_latency_ticks);
    EXPECT_GE(t.p50_latency_ticks, 0.0) << "served tiers have samples";
    EXPECT_GT(t.energy_per_request_pj, 0.0);
    tier_sum += t.served;
  }
  EXPECT_EQ(tier_sum, slo.served);

  // The JSON block carries the same numbers and the conserved flag.
  const json::Value v = slo_to_json(slo);
  EXPECT_TRUE(v.at("conserved").as_bool());
  EXPECT_EQ(v.at("served").as_int(), slo.served);
  EXPECT_EQ(v.at("tiers").size(), slo.tiers.size());
}

// --- exporters ----------------------------------------------------------

TEST(TraceExport, JsonlParsesAndChromeTraceHasOneTrackPerLane) {
  const std::vector<TierSpec> tiers = trace_tiers();
  const faults::LaneFaultSchedule schedule = mixed_schedule(tiers);
  const ArrivalTrace trace = arrivals(tiers, 2.0, 40);
  const ServeResult r = run_once(trace, traced_config(tiers, &schedule));

  const std::string jsonl_path = "trace_test_requests.jsonl";
  const std::string chrome_path = "trace_test_lanes.json";
  write_request_events_jsonl(jsonl_path, r.request_events);
  write_lane_chrome_trace(chrome_path, r.lane_executions, r.health_log,
                          r.request_events, r.lane_names);

  // Every JSONL line is one JSON object; seq is the line number.
  std::istringstream lines(read_file(jsonl_path));
  std::string line;
  std::int64_t n = 0;
  while (std::getline(lines, line)) {
    const json::Value v = json::parse(line, jsonl_path);
    EXPECT_EQ(v.at("seq").as_int(), n) << "seq is the causal line number";
    for (const char* key : {"tick", "request", "event", "tier", "lane",
                            "attempt", "detail"}) {
      EXPECT_TRUE(v.contains(key)) << key;
    }
    ++n;
  }
  EXPECT_EQ(n, static_cast<std::int64_t>(r.request_events.size()));

  // Chrome trace: one thread_name meta per lane + the frontend track,
  // and every execution span rides a known lane tid.
  const json::Value doc = json::parse(read_file(chrome_path), chrome_path);
  const json::Value& events = doc.at("traceEvents");
  std::set<std::int64_t> named_tids;
  std::int64_t spans = 0;
  for (const json::Value& e : events.items()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M" && e.at("name").as_string() == "thread_name") {
      EXPECT_TRUE(named_tids.insert(e.at("tid").as_int()).second);
    } else if (ph == "X") {
      ++spans;
      EXPECT_LT(e.at("tid").as_int(),
                static_cast<std::int64_t>(r.lane_names.size()));
      EXPECT_TRUE(e.at("args").contains("requests"));
    }
  }
  EXPECT_EQ(named_tids.size(), r.lane_names.size() + 1)
      << "one track per executor lane plus the frontend track";
  EXPECT_EQ(spans, static_cast<std::int64_t>(r.lane_executions.size()));

  std::remove(jsonl_path.c_str());
  std::remove(chrome_path.c_str());
}

}  // namespace
}  // namespace qnn::serve
