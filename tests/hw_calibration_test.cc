// Reproduction gate for Table III: the analytical hardware model,
// calibrated as documented in tech65.h, must land near the paper's
// published design area and power for all seven precisions — and the
// derived savings percentages (the paper's actual claim) even closer.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "hw/accelerator.h"

namespace qnn::hw {
namespace {

struct TableIIIRow {
  std::string name;
  quant::PrecisionConfig config;
  double paper_area_mm2;
  double paper_power_mw;
};

std::vector<TableIIIRow> table3() {
  return {
      {"Floating-Point (32,32)", quant::float_config(), 16.74, 1379.60},
      {"Fixed-Point (32,32)", quant::fixed_config(32, 32), 14.13, 1213.40},
      {"Fixed-Point (16,16)", quant::fixed_config(16, 16), 6.88, 574.75},
      {"Fixed-Point (8,8)", quant::fixed_config(8, 8), 3.36, 219.87},
      {"Fixed-Point (4,4)", quant::fixed_config(4, 4), 1.66, 111.17},
      {"Powers of Two (6,16)", quant::pow2_config(6, 16), 3.05, 209.91},
      {"Binary Net (1,16)", quant::binary_config(16), 1.21, 95.36},
  };
}

Accelerator make(const quant::PrecisionConfig& p) {
  AcceleratorConfig c;
  c.precision = p;
  return Accelerator(c);
}

class TableIII : public ::testing::TestWithParam<int> {};

TEST_P(TableIII, AreaWithinTenPercent) {
  const TableIIIRow row = table3()[static_cast<std::size_t>(GetParam())];
  const double area = make(row.config).area_mm2();
  EXPECT_NEAR(area, row.paper_area_mm2, 0.10 * row.paper_area_mm2)
      << row.name;
}

TEST_P(TableIII, PowerWithinTwentyFivePercent) {
  // The paper's power column is synthesis data with non-monotonic
  // curvature (see tech65.h); the model tracks it within 25% per row
  // while preserving every ordering (checked below).
  const TableIIIRow row = table3()[static_cast<std::size_t>(GetParam())];
  const double power = make(row.config).power_mw();
  EXPECT_NEAR(power, row.paper_power_mw, 0.25 * row.paper_power_mw)
      << row.name;
}

TEST_P(TableIII, SavingsWithinSixPoints) {
  // The headline columns of Table III are savings relative to float.
  const auto rows = table3();
  const TableIIIRow row = rows[static_cast<std::size_t>(GetParam())];
  const Accelerator base = make(rows[0].config);
  const Accelerator acc = make(row.config);
  const double area_saving = saving_percent(base.area_mm2(), acc.area_mm2());
  const double paper_area_saving =
      saving_percent(rows[0].paper_area_mm2, row.paper_area_mm2);
  EXPECT_NEAR(area_saving, paper_area_saving, 6.5) << row.name;

  const double power_saving =
      saving_percent(base.power_mw(), acc.power_mw());
  const double paper_power_saving =
      saving_percent(rows[0].paper_power_mw, row.paper_power_mw);
  EXPECT_NEAR(power_saving, paper_power_saving, 6.5) << row.name;
}

INSTANTIATE_TEST_SUITE_P(AllRows, TableIII, ::testing::Range(0, 7));

TEST(TableIIIOrder, ModelPreservesPaperRowOrdering) {
  const auto rows = table3();
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = 0; j < rows.size(); ++j) {
      if (rows[i].paper_area_mm2 < rows[j].paper_area_mm2) {
        EXPECT_LT(make(rows[i].config).area_mm2(),
                  make(rows[j].config).area_mm2())
            << rows[i].name << " vs " << rows[j].name;
      }
      if (rows[i].paper_power_mw < rows[j].paper_power_mw) {
        EXPECT_LT(make(rows[i].config).power_mw(),
                  make(rows[j].config).power_mw())
            << rows[i].name << " vs " << rows[j].name;
      }
    }
}

TEST(TableIIIFig3, BufferFractionsMatchPaperRanges) {
  // §V-B: buffers consume 75–93% of power and 76–96% of area across the
  // designs; allow a modest modeling margin around the published band.
  for (const auto& row : table3()) {
    const Accelerator acc = make(row.config);
    const auto& m = acc.metrics();
    const double area_frac = m.area_um2.memory / m.area_um2.total();
    const double power_frac = m.power_mw.memory / m.power_mw.total();
    EXPECT_GE(area_frac, 0.65) << row.name;
    EXPECT_LE(area_frac, 0.97) << row.name;
    EXPECT_GE(power_frac, 0.50) << row.name;
    EXPECT_LE(power_frac, 0.95) << row.name;
  }
}

}  // namespace
}  // namespace qnn::hw
