// The headline guarantee of the parallel runtime: an N-thread run and a
// 1-thread run produce bit-identical results — GEMM output buffers,
// evaluation accuracy, guard counters, fault-campaign statistics, and
// sweep checkpoint files.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "exp/sweep.h"
#include "faults/campaign.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "obs/trace.h"
#include "protect/protected_network.h"
#include "quant/qnetwork.h"
#include "tensor/gemm.h"
#include "tensor/microkernel.h"
#include "util/fileio.h"
#include "util/thread_pool.h"

namespace qnn {
namespace {

// Restores the global pool to its environment size no matter how a test
// exits.
struct ThreadGuard {
  ~ThreadGuard() {
    ThreadPool::set_global_threads(ThreadPool::env_threads());
  }
};

std::vector<float> random_matrix(std::int64_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> out(static_cast<std::size_t>(count));
  for (float& v : out) v = dist(rng);
  return out;
}

TEST(Determinism, GemmIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  // Sizes straddle the kernel's 64-row M blocks so the parallel run
  // actually splits work.
  const std::int64_t m = 193, n = 71, k = 83;
  const auto a = random_matrix(m * k, 1);
  const auto b = random_matrix(k * n, 2);
  const auto bias = random_matrix(m, 3);

  std::vector<float> c1(static_cast<std::size_t>(m * n));
  std::vector<float> c1b(static_cast<std::size_t>(m * n));
  ThreadPool::set_global_threads(1);
  gemm(m, n, k, a.data(), b.data(), c1.data());
  gemm_row_bias(m, n, k, a.data(), b.data(), c1b.data(), bias.data());

  for (int threads : {2, 4, 7, 16}) {
    ThreadPool::set_global_threads(threads);
    std::vector<float> cn(static_cast<std::size_t>(m * n));
    gemm(m, n, k, a.data(), b.data(), cn.data());
    EXPECT_EQ(std::memcmp(c1.data(), cn.data(), c1.size() * sizeof(float)),
              0)
        << threads << " threads";
    gemm_row_bias(m, n, k, a.data(), b.data(), cn.data(), bias.data());
    EXPECT_EQ(
        std::memcmp(c1b.data(), cn.data(), c1b.size() * sizeof(float)), 0)
        << threads << " threads (row bias)";
  }
}

TEST(Determinism, GemmBtColBiasIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::int64_t m = 130, n = 37, k = 29;
  const auto a = random_matrix(m * k, 4);
  const auto b = random_matrix(n * k, 5);
  const auto bias = random_matrix(n, 6);

  std::vector<float> c1(static_cast<std::size_t>(m * n));
  ThreadPool::set_global_threads(1);
  gemm_bt_col_bias(m, n, k, a.data(), b.data(), c1.data(), bias.data());

  ThreadPool::set_global_threads(4);
  std::vector<float> c4(static_cast<std::size_t>(m * n));
  gemm_bt_col_bias(m, n, k, a.data(), b.data(), c4.data(), bias.data());
  EXPECT_EQ(std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)),
            0);
}

TEST(Determinism, TallKGemmKShardingIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  // M too small to saturate the pool and K far beyond kGemmKChunk: the
  // inner-product shape where K-parallelism engages. The chunk plan and
  // merge tree depend only on K, so every pool size reproduces the
  // 1-thread bytes.
  const std::int64_t m = 8, n = 96, k = 1500;
  const auto a = random_matrix(m * k, 31);
  const auto b = random_matrix(k * n, 32);

  ThreadPool::set_global_threads(1);
  std::vector<float> c1(static_cast<std::size_t>(m * n));
  gemm(m, n, k, a.data(), b.data(), c1.data());

  for (int threads : {2, 4, 8, 16}) {
    ThreadPool::set_global_threads(threads);
    std::vector<float> cn(static_cast<std::size_t>(m * n));
    gemm(m, n, k, a.data(), b.data(), cn.data());
    EXPECT_EQ(std::memcmp(c1.data(), cn.data(), c1.size() * sizeof(float)),
              0)
        << threads << " threads";
  }
}

// Shared fixture: a small trained LeNet on synthetic MNIST-like data.
// Training runs once (serial order is itself deterministic) and the
// quantized evaluations under test reuse the same weights.
struct EvalFixture {
  data::Split split;
  std::unique_ptr<nn::Network> net;

  EvalFixture() {
    data::SyntheticConfig dc;
    dc.num_train = 150;
    dc.num_test = 60;
    dc.seed = 11;
    split = data::make_mnist_like(dc);
    nn::ZooConfig zc;
    zc.channel_scale = 0.2;
    net = nn::make_lenet(zc);
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 25;
    tc.sgd.learning_rate = 0.02;
    nn::train(*net, split.train, tc);
  }
};

TEST(Determinism, EvaluateAccuracyAndGuardsMatchSerial) {
  ThreadGuard guard;
  EvalFixture f;
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(8, 8));
  qnet.calibrate(f.split.train.images);

  ThreadPool::set_global_threads(1);
  qnet.reset_guards();
  const double acc1 = nn::evaluate(qnet, f.split.test);
  const quant::GuardCounters g1 = qnet.total_guards();
  qnet.restore_masters();

  for (int threads : {2, 4, 8, 16}) {
    ThreadPool::set_global_threads(threads);
    qnet.reset_guards();
    const double accn = nn::evaluate(qnet, f.split.test);
    const quant::GuardCounters gn = qnet.total_guards();
    qnet.restore_masters();
    EXPECT_EQ(acc1, accn) << threads << " threads";  // bit-identical
    EXPECT_EQ(g1.values, gn.values) << threads << " threads";
    EXPECT_EQ(g1.saturated, gn.saturated) << threads << " threads";
    EXPECT_EQ(g1.nan, gn.nan) << threads << " threads";
    EXPECT_EQ(g1.inf, gn.inf) << threads << " threads";
  }
}

TEST(Determinism, FaultCampaignMatchesSerial) {
  ThreadGuard guard;
  EvalFixture f;
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(8, 8));
  qnet.calibrate(f.split.train.images);

  faults::CampaignConfig cc;
  cc.trials = 5;
  cc.bit_error_rate = 1e-3;
  cc.seed = 2024;

  ThreadPool::set_global_threads(1);
  qnet.reset_guards();
  const faults::CampaignResult r1 =
      faults::run_fault_campaign(qnet, f.split.test, cc);
  const quant::GuardCounters g1 = qnet.total_guards();

  ThreadPool::set_global_threads(4);
  qnet.reset_guards();
  const faults::CampaignResult r4 =
      faults::run_fault_campaign(qnet, f.split.test, cc);
  const quant::GuardCounters g4 = qnet.total_guards();

  EXPECT_EQ(r1.trials, r4.trials);
  EXPECT_EQ(r1.failed_trials, r4.failed_trials);
  EXPECT_EQ(r1.total_flips, r4.total_flips);
  EXPECT_EQ(r1.mean_accuracy, r4.mean_accuracy);  // bit-identical
  EXPECT_EQ(r1.min_accuracy, r4.min_accuracy);
  EXPECT_EQ(r1.max_accuracy, r4.max_accuracy);
  // Replica guard counters fold back into the original, so the totals
  // cannot depend on how many replicas the pool spawned.
  EXPECT_EQ(g1.values, g4.values);
  EXPECT_EQ(g1.saturated, g4.saturated);
  EXPECT_EQ(g1.nan, g4.nan);
  EXPECT_EQ(g1.inf, g4.inf);
}

TEST(Determinism, ProtectedCampaignMatchesSerial) {
  // The fault-tolerance layer must preserve the bit-identity contract:
  // ABFT verification, envelope checks, and layer retries are all made
  // serially on the calling thread, so a protected campaign's accuracy,
  // protection counters, and guard counters cannot depend on pool size.
  ThreadGuard guard;
  EvalFixture f;
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(8, 8));
  qnet.calibrate(f.split.train.images);

  faults::CampaignConfig cc;
  cc.trials = 4;
  cc.bit_error_rate = 1e-3;
  cc.seed = 2024;
  cc.protection.policy = protect::ProtectionPolicy::kRetryClamp;

  ThreadPool::set_global_threads(1);
  qnet.reset_guards();
  const faults::CampaignResult r1 =
      faults::run_fault_campaign(qnet, f.split.test, cc);
  const quant::GuardCounters g1 = qnet.total_guards();

  for (int threads : {2, 8}) {
    ThreadPool::set_global_threads(threads);
    qnet.reset_guards();
    const faults::CampaignResult rn =
        faults::run_fault_campaign(qnet, f.split.test, cc);
    const quant::GuardCounters gn = qnet.total_guards();
    SCOPED_TRACE(std::to_string(threads) + " threads");
    EXPECT_EQ(r1.trials, rn.trials);
    EXPECT_EQ(r1.failed_trials, rn.failed_trials);
    EXPECT_EQ(r1.total_flips, rn.total_flips);
    EXPECT_EQ(r1.mean_accuracy, rn.mean_accuracy);  // bit-identical
    EXPECT_EQ(r1.min_accuracy, rn.min_accuracy);
    EXPECT_EQ(r1.max_accuracy, rn.max_accuracy);
    // The full protection ledger: envelope violations, clamps, layer
    // retries, degraded forwards, and ABFT block counts.
    EXPECT_EQ(r1.protection, rn.protection);
    EXPECT_EQ(g1.values, gn.values);
    EXPECT_EQ(g1.saturated, gn.saturated);
    EXPECT_EQ(g1.nan, gn.nan);
    EXPECT_EQ(g1.inf, gn.inf);
  }
}

TEST(Determinism, TallKNetworksBitIdenticalEndToEndAcrossThreadCounts) {
  // End-to-end pins over K-sharded GEMMs: full-size LeNet (conv2's
  // im2col K = 500, ip1's K = 800 — both beyond kGemmKChunk, so every
  // forward runs the chunked fixed-tree order). Float forward bytes,
  // Network::evaluate, QuantizedNetwork, and ProtectedNetwork (whose
  // ABFT checksums verify over the K-sharded partials) must all match
  // the 1-thread run exactly at 2/4/8 threads.
  ThreadGuard guard;
  data::SyntheticConfig dc;
  dc.num_train = 100;
  dc.num_test = 40;
  dc.seed = 17;
  const data::Split split = data::make_mnist_like(dc);
  auto net = nn::make_lenet();  // channel_scale 1.0: tall-K layers
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 20;
  tc.sgd.learning_rate = 0.02;
  nn::train(*net, split.train, tc);

  quant::QuantizedNetwork qnet(*net, quant::fixed_config(8, 8));
  qnet.calibrate(split.train.images);
  protect::ProtectionConfig pcfg;
  pcfg.policy = protect::ProtectionPolicy::kDetectOnly;
  protect::ProtectedNetwork pnet(qnet, pcfg);
  pnet.calibrate_envelopes(split.test.images);

  const Tensor& batch = split.test.images;

  ThreadPool::set_global_threads(1);
  const Tensor out1 = net->forward(batch);
  const double facc1 = nn::evaluate(*net, split.test);
  qnet.reset_guards();
  const double qacc1 = nn::evaluate(qnet, split.test);
  const quant::GuardCounters g1 = qnet.total_guards();
  qnet.restore_masters();
  qnet.reset_guards();
  pnet.reset_counters();
  const double pacc1 = nn::evaluate(pnet, split.test);
  const protect::ProtectionCounters pc1 = pnet.counters();
  qnet.restore_masters();

  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    ThreadPool::set_global_threads(threads);
    const Tensor outn = net->forward(batch);
    ASSERT_EQ(out1.count(), outn.count());
    EXPECT_EQ(std::memcmp(out1.data(), outn.data(),
                          static_cast<std::size_t>(out1.count()) *
                              sizeof(float)),
              0);
    EXPECT_EQ(facc1, nn::evaluate(*net, split.test));  // bit-identical
    qnet.reset_guards();
    EXPECT_EQ(qacc1, nn::evaluate(qnet, split.test));
    const quant::GuardCounters gn = qnet.total_guards();
    qnet.restore_masters();
    EXPECT_EQ(g1.values, gn.values);
    EXPECT_EQ(g1.saturated, gn.saturated);
    EXPECT_EQ(g1.nan, gn.nan);
    EXPECT_EQ(g1.inf, gn.inf);
    qnet.reset_guards();
    pnet.reset_counters();
    EXPECT_EQ(pacc1, nn::evaluate(pnet, split.test));
    const protect::ProtectionCounters pcn = pnet.counters();
    qnet.restore_masters();
    // ABFT-over-K-sharded-partials must verify cleanly and count the
    // same blocks at every pool size.
    EXPECT_EQ(pc1, pcn);
  }
}

TEST(Determinism, TallKSweepCheckpointBytesMatchSerial) {
  // Checkpoint pin over K-sharded layers: a sweep through the full-size
  // LeNet (tall-K conv2/ip1) writes byte-identical checkpoints at 1 and
  // 4 threads.
  ThreadGuard guard;
  const std::string dir = ::testing::TempDir();
  const std::string ck1 = dir + "/det_tallk_t1.json";
  const std::string ck4 = dir + "/det_tallk_t4.json";
  for (const auto& p : {ck1, ck4, ck1 + ".weights", ck4 + ".weights"})
    std::filesystem::remove(p);

  exp::ExperimentSpec spec;
  spec.network = "lenet";
  spec.dataset = "mnist";
  spec.channel_scale = 1.0;  // K = 500 / 800 products stay chunked
  spec.data.num_train = 80;
  spec.data.num_test = 40;
  spec.data.seed = 9;
  spec.float_train.epochs = 1;
  spec.float_train.batch_size = 20;
  spec.float_train.sgd.learning_rate = 0.02;
  spec.qat_train = spec.float_train;

  const std::vector<quant::PrecisionConfig> precisions = {
      quant::fixed_config(8, 8)};
  exp::SweepOptions opts;
  opts.faults.trials = 1;
  opts.faults.bit_error_rates = {1e-3};

  ThreadPool::set_global_threads(1);
  exp::SweepOptions o1 = opts;
  o1.checkpoint_path = ck1;
  exp::run_precision_sweep(spec, precisions, 0.0, o1);

  ThreadPool::set_global_threads(4);
  exp::SweepOptions o4 = opts;
  o4.checkpoint_path = ck4;
  exp::run_precision_sweep(spec, precisions, 0.0, o4);

  EXPECT_EQ(read_file(ck1), read_file(ck4));

  for (const auto& p : {ck1, ck4, ck1 + ".weights", ck4 + ".weights"})
    std::filesystem::remove(p);
}

TEST(Determinism, ProtectedSweepSurvivesKillAndResumeAcrossThreads) {
  // A sweep with protection policies enabled, killed after its first
  // point and resumed on a different pool size, must reproduce the
  // uninterrupted serial run's checkpoint byte-for-byte.
  ThreadGuard guard;
  const std::string dir = ::testing::TempDir();
  const std::string ck_killed = dir + "/det_prot_killed.json";
  const std::string ck_straight = dir + "/det_prot_straight.json";
  for (const auto& p : {ck_killed, ck_straight, ck_killed + ".weights",
                        ck_straight + ".weights"})
    std::filesystem::remove(p);

  exp::ExperimentSpec spec;
  spec.network = "lenet";
  spec.dataset = "mnist";
  spec.channel_scale = 0.2;
  spec.data.num_train = 200;
  spec.data.num_test = 100;
  spec.data.seed = 5;
  spec.float_train.epochs = 2;
  spec.float_train.batch_size = 20;
  spec.float_train.sgd.learning_rate = 0.02;
  spec.qat_train = spec.float_train;
  spec.qat_train.epochs = 1;
  spec.qat_train.sgd.learning_rate = 0.01;

  const std::vector<quant::PrecisionConfig> precisions = {
      quant::fixed_config(8, 8), quant::binary_config(16)};

  exp::SweepOptions opts;
  opts.faults.trials = 2;
  opts.faults.bit_error_rates = {1e-3};
  opts.faults.policies = {protect::ProtectionPolicy::kDetectOnly,
                          protect::ProtectionPolicy::kRetryClamp};

  // Uninterrupted serial reference.
  ThreadPool::set_global_threads(1);
  exp::SweepOptions straight = opts;
  straight.checkpoint_path = ck_straight;
  const exp::SweepResult ref =
      exp::run_precision_sweep(spec, precisions, 0.0, straight);
  ASSERT_EQ(ref.points.size(), precisions.size());
  for (const auto& point : ref.points)
    for (const auto& c : point.fault_campaigns)
      if (c.policy != protect::ProtectionPolicy::kOff) {
        EXPECT_GT(c.protection.values, 0);
      }

  // Kill a 4-thread run after point 0, resume with 2 threads.
  ThreadPool::set_global_threads(4);
  struct Killed {};
  exp::SweepOptions kill = opts;
  kill.checkpoint_path = ck_killed;
  kill.after_point = [](std::size_t k) {
    if (k == 0) throw Killed{};
  };
  EXPECT_THROW(exp::run_precision_sweep(spec, precisions, 0.0, kill),
               Killed);
  ASSERT_TRUE(file_exists(ck_killed));

  ThreadPool::set_global_threads(2);
  std::vector<std::size_t> resumed_points;
  exp::SweepOptions resume = opts;
  resume.checkpoint_path = ck_killed;
  resume.after_point = [&](std::size_t k) { resumed_points.push_back(k); };
  const exp::SweepResult resumed =
      exp::run_precision_sweep(spec, precisions, 0.0, resume);
  EXPECT_EQ(resumed_points, (std::vector<std::size_t>{1}));
  ASSERT_EQ(resumed.points.size(), precisions.size());

  EXPECT_EQ(read_file(ck_killed), read_file(ck_straight));

  for (const auto& p : {ck_killed, ck_straight, ck_killed + ".weights",
                        ck_straight + ".weights"})
    std::filesystem::remove(p);
}

TEST(Determinism, TracingOnDoesNotPerturbResults) {
  // Observability must be a pure observer: recording spans changes no
  // numeric output, no guard counter, and no campaign statistic, at any
  // thread count (DESIGN.md §11).
  ThreadGuard guard;
  struct TraceOff {
    ~TraceOff() {
      obs::set_trace_enabled(false);
      obs::clear_trace();
    }
  } trace_off;
  EvalFixture f;
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(8, 8));
  qnet.calibrate(f.split.train.images);

  faults::CampaignConfig cc;
  cc.trials = 3;
  cc.bit_error_rate = 1e-3;
  cc.seed = 99;

  obs::set_trace_enabled(false);
  ThreadPool::set_global_threads(1);
  qnet.reset_guards();
  const double acc_ref = nn::evaluate(qnet, f.split.test);
  const quant::GuardCounters g_ref = qnet.total_guards();
  qnet.restore_masters();
  qnet.reset_guards();
  const faults::CampaignResult c_ref =
      faults::run_fault_campaign(qnet, f.split.test, cc);

  obs::set_trace_enabled(true);
  for (int threads : {1, 4, 8}) {
    SCOPED_TRACE(std::to_string(threads) + " threads, tracing on");
    ThreadPool::set_global_threads(threads);
    qnet.reset_guards();
    const double acc = nn::evaluate(qnet, f.split.test);
    const quant::GuardCounters g = qnet.total_guards();
    qnet.restore_masters();
    EXPECT_EQ(acc_ref, acc);  // bit-identical
    EXPECT_EQ(g_ref.values, g.values);
    EXPECT_EQ(g_ref.saturated, g.saturated);
    EXPECT_EQ(g_ref.nan, g.nan);
    EXPECT_EQ(g_ref.inf, g.inf);

    qnet.reset_guards();
    const faults::CampaignResult c =
        faults::run_fault_campaign(qnet, f.split.test, cc);
    EXPECT_EQ(c_ref.mean_accuracy, c.mean_accuracy);  // bit-identical
    EXPECT_EQ(c_ref.total_flips, c.total_flips);
    EXPECT_EQ(c_ref.failed_trials, c.failed_trials);
  }
  EXPECT_GT(obs::trace_event_count(), 0);
}

TEST(Determinism, CheckpointBytesMatchWithTracingOn) {
  // The strongest observer-purity check: a sweep traced at 4 threads
  // writes the same checkpoint bytes as an untraced serial sweep.
  ThreadGuard guard;
  struct TraceOff {
    ~TraceOff() {
      obs::set_trace_enabled(false);
      obs::clear_trace();
    }
  } trace_off;
  const std::string dir = ::testing::TempDir();
  const std::string ck_off = dir + "/det_trace_off.json";
  const std::string ck_on = dir + "/det_trace_on.json";
  for (const auto& p : {ck_off, ck_on, ck_off + ".weights",
                        ck_on + ".weights"})
    std::filesystem::remove(p);

  exp::ExperimentSpec spec;
  spec.network = "lenet";
  spec.dataset = "mnist";
  spec.channel_scale = 0.2;
  spec.data.num_train = 150;
  spec.data.num_test = 60;
  spec.data.seed = 7;
  spec.float_train.epochs = 1;
  spec.float_train.batch_size = 25;
  spec.float_train.sgd.learning_rate = 0.02;
  spec.qat_train = spec.float_train;

  const std::vector<quant::PrecisionConfig> precisions = {
      quant::fixed_config(8, 8)};

  exp::SweepOptions opts;
  opts.faults.trials = 2;
  opts.faults.bit_error_rates = {1e-3};

  obs::set_trace_enabled(false);
  ThreadPool::set_global_threads(1);
  exp::SweepOptions off = opts;
  off.checkpoint_path = ck_off;
  exp::run_precision_sweep(spec, precisions, 0.0, off);

  obs::set_trace_enabled(true);
  ThreadPool::set_global_threads(4);
  exp::SweepOptions on = opts;
  on.checkpoint_path = ck_on;
  exp::run_precision_sweep(spec, precisions, 0.0, on);

  EXPECT_EQ(read_file(ck_off), read_file(ck_on));

  for (const auto& p : {ck_off, ck_on, ck_off + ".weights",
                        ck_on + ".weights"})
    std::filesystem::remove(p);
}

TEST(Determinism, SweepCheckpointBytesMatchSerial) {
  ThreadGuard guard;
  const std::string dir = ::testing::TempDir();
  const std::string ck1 = dir + "/det_sweep_t1.json";
  const std::string ck4 = dir + "/det_sweep_t4.json";
  for (const auto& p : {ck1, ck4, ck1 + ".weights", ck4 + ".weights"})
    std::filesystem::remove(p);

  exp::ExperimentSpec spec;
  spec.network = "lenet";
  spec.dataset = "mnist";
  spec.channel_scale = 0.2;
  spec.data.num_train = 200;
  spec.data.num_test = 100;
  spec.data.seed = 5;
  spec.float_train.epochs = 2;
  spec.float_train.batch_size = 20;
  spec.float_train.sgd.learning_rate = 0.02;
  spec.qat_train = spec.float_train;
  spec.qat_train.epochs = 1;
  spec.qat_train.sgd.learning_rate = 0.01;

  const std::vector<quant::PrecisionConfig> precisions = {
      quant::float_config(), quant::fixed_config(8, 8),
      quant::binary_config(16)};

  exp::SweepOptions opts;
  opts.faults.trials = 2;
  opts.faults.bit_error_rates = {1e-3};

  ThreadPool::set_global_threads(1);
  exp::SweepOptions o1 = opts;
  o1.checkpoint_path = ck1;
  const exp::SweepResult r1 =
      exp::run_precision_sweep(spec, precisions, 0.0, o1);

  ThreadPool::set_global_threads(4);
  exp::SweepOptions o4 = opts;
  o4.checkpoint_path = ck4;
  const exp::SweepResult r4 =
      exp::run_precision_sweep(spec, precisions, 0.0, o4);

  ASSERT_EQ(r1.points.size(), precisions.size());
  ASSERT_EQ(r4.points.size(), precisions.size());
  for (std::size_t i = 0; i < r1.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_EQ(r1.points[i].accuracy, r4.points[i].accuracy);
    EXPECT_EQ(r1.points[i].guards.values, r4.points[i].guards.values);
    EXPECT_EQ(r1.points[i].guards.saturated,
              r4.points[i].guards.saturated);
  }

  // The strongest form of the guarantee: the serialized checkpoints are
  // byte-for-byte identical, doubles and all.
  EXPECT_EQ(read_file(ck1), read_file(ck4));

  for (const auto& p : {ck1, ck4, ck1 + ".weights", ck4 + ".weights"})
    std::filesystem::remove(p);
}

// The native integer inference path (DESIGN.md §15): a frozen fixed-
// point forward is bit-identical at every thread count AND every SIMD
// level — integer accumulation is exact, so this is structural, and it
// extends the serve replay digests (which hash these bytes) to the int
// path.
TEST(Determinism, FrozenIntForwardBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  EvalFixture f;
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(8, 8));
  qnet.calibrate(f.split.train.images);
  qnet.freeze_inference();
  ASSERT_TRUE(qnet.native_int_active());

  ThreadPool::set_global_threads(1);
  const Tensor base = qnet.forward(f.split.test.images);
  for (int threads : {4, 8}) {
    ThreadPool::set_global_threads(threads);
    for (SimdLevel level : {SimdLevel::kScalar, simd_support()}) {
      ScopedSimdLevel force(level);
      const Tensor got = qnet.forward(f.split.test.images);
      ASSERT_EQ(got.count(), base.count());
      EXPECT_EQ(std::memcmp(got.data(), base.data(),
                            static_cast<std::size_t>(base.count()) *
                                sizeof(float)),
                0)
          << threads << " threads, " << simd_level_name(level);
    }
  }
}

// Int path on vs the fake-quantized float path: same calibrated grids,
// so logits agree to within one final-site grid step (the float path's
// float32 accumulation rounding) and accuracy stays inside the
// calibrated guard envelope.
TEST(Determinism, IntPathTracksFakeQuantWithinGuardEnvelope) {
  ThreadGuard guard;
  EvalFixture f;
  quant::QuantizedNetwork qnet(*f.net, quant::fixed_config(8, 8));
  qnet.calibrate(f.split.train.images);

  const double acc_float = nn::evaluate(qnet, f.split.test);
  qnet.restore_masters();
  const Tensor float_logits = qnet.forward(f.split.test.images);
  qnet.restore_masters();

  qnet.freeze_inference();
  ASSERT_TRUE(qnet.native_int_active());
  const double acc_int = nn::evaluate(qnet, f.split.test);
  const Tensor int_logits = qnet.forward(f.split.test.images);

  const auto& fq = dynamic_cast<const quant::FixedQuantizer&>(
      qnet.data_quantizer(qnet.num_sites() - 1));
  const double step = fq.format()->step();
  ASSERT_EQ(int_logits.count(), float_logits.count());
  for (std::int64_t i = 0; i < int_logits.count(); ++i)
    EXPECT_NEAR(int_logits[i], float_logits[i], step + 1e-9)
        << "logit " << i;
  // Logits a grid step apart can flip an argmax tie; bound the drift to
  // a couple of test samples rather than demanding exact equality.
  EXPECT_NEAR(acc_int, acc_float,
              2.0 / static_cast<double>(f.split.test.images.shape()[0]) +
                  1e-12);
}

}  // namespace
}  // namespace qnn
