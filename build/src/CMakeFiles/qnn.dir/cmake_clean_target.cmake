file(REMOVE_RECURSE
  "libqnn.a"
)
