
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/builders.cc" "src/CMakeFiles/qnn.dir/config/builders.cc.o" "gcc" "src/CMakeFiles/qnn.dir/config/builders.cc.o.d"
  "/root/repo/src/config/config_node.cc" "src/CMakeFiles/qnn.dir/config/config_node.cc.o" "gcc" "src/CMakeFiles/qnn.dir/config/config_node.cc.o.d"
  "/root/repo/src/data/augment.cc" "src/CMakeFiles/qnn.dir/data/augment.cc.o" "gcc" "src/CMakeFiles/qnn.dir/data/augment.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/qnn.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/qnn.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/glyphs.cc" "src/CMakeFiles/qnn.dir/data/glyphs.cc.o" "gcc" "src/CMakeFiles/qnn.dir/data/glyphs.cc.o.d"
  "/root/repo/src/data/image_io.cc" "src/CMakeFiles/qnn.dir/data/image_io.cc.o" "gcc" "src/CMakeFiles/qnn.dir/data/image_io.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/qnn.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/qnn.dir/data/synthetic.cc.o.d"
  "/root/repo/src/exp/sweep.cc" "src/CMakeFiles/qnn.dir/exp/sweep.cc.o" "gcc" "src/CMakeFiles/qnn.dir/exp/sweep.cc.o.d"
  "/root/repo/src/fixed/approx_mult.cc" "src/CMakeFiles/qnn.dir/fixed/approx_mult.cc.o" "gcc" "src/CMakeFiles/qnn.dir/fixed/approx_mult.cc.o.d"
  "/root/repo/src/fixed/binary_format.cc" "src/CMakeFiles/qnn.dir/fixed/binary_format.cc.o" "gcc" "src/CMakeFiles/qnn.dir/fixed/binary_format.cc.o.d"
  "/root/repo/src/fixed/fixed_arith.cc" "src/CMakeFiles/qnn.dir/fixed/fixed_arith.cc.o" "gcc" "src/CMakeFiles/qnn.dir/fixed/fixed_arith.cc.o.d"
  "/root/repo/src/fixed/fixed_format.cc" "src/CMakeFiles/qnn.dir/fixed/fixed_format.cc.o" "gcc" "src/CMakeFiles/qnn.dir/fixed/fixed_format.cc.o.d"
  "/root/repo/src/fixed/plan_sigmoid.cc" "src/CMakeFiles/qnn.dir/fixed/plan_sigmoid.cc.o" "gcc" "src/CMakeFiles/qnn.dir/fixed/plan_sigmoid.cc.o.d"
  "/root/repo/src/fixed/pow2_format.cc" "src/CMakeFiles/qnn.dir/fixed/pow2_format.cc.o" "gcc" "src/CMakeFiles/qnn.dir/fixed/pow2_format.cc.o.d"
  "/root/repo/src/hw/accelerator.cc" "src/CMakeFiles/qnn.dir/hw/accelerator.cc.o" "gcc" "src/CMakeFiles/qnn.dir/hw/accelerator.cc.o.d"
  "/root/repo/src/hw/logic_model.cc" "src/CMakeFiles/qnn.dir/hw/logic_model.cc.o" "gcc" "src/CMakeFiles/qnn.dir/hw/logic_model.cc.o.d"
  "/root/repo/src/hw/nfu_sim.cc" "src/CMakeFiles/qnn.dir/hw/nfu_sim.cc.o" "gcc" "src/CMakeFiles/qnn.dir/hw/nfu_sim.cc.o.d"
  "/root/repo/src/hw/schedule.cc" "src/CMakeFiles/qnn.dir/hw/schedule.cc.o" "gcc" "src/CMakeFiles/qnn.dir/hw/schedule.cc.o.d"
  "/root/repo/src/nn/activation.cc" "src/CMakeFiles/qnn.dir/nn/activation.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/activation.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/CMakeFiles/qnn.dir/nn/conv.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/conv.cc.o.d"
  "/root/repo/src/nn/inner_product.cc" "src/CMakeFiles/qnn.dir/nn/inner_product.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/inner_product.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/CMakeFiles/qnn.dir/nn/layer.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/layer.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/qnn.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/lrn.cc" "src/CMakeFiles/qnn.dir/nn/lrn.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/lrn.cc.o.d"
  "/root/repo/src/nn/metrics.cc" "src/CMakeFiles/qnn.dir/nn/metrics.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/metrics.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/CMakeFiles/qnn.dir/nn/network.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/network.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/qnn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/pool.cc" "src/CMakeFiles/qnn.dir/nn/pool.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/pool.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/qnn.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/serialize.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/CMakeFiles/qnn.dir/nn/trainer.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/trainer.cc.o.d"
  "/root/repo/src/nn/zoo.cc" "src/CMakeFiles/qnn.dir/nn/zoo.cc.o" "gcc" "src/CMakeFiles/qnn.dir/nn/zoo.cc.o.d"
  "/root/repo/src/quant/memory.cc" "src/CMakeFiles/qnn.dir/quant/memory.cc.o" "gcc" "src/CMakeFiles/qnn.dir/quant/memory.cc.o.d"
  "/root/repo/src/quant/mixed_precision.cc" "src/CMakeFiles/qnn.dir/quant/mixed_precision.cc.o" "gcc" "src/CMakeFiles/qnn.dir/quant/mixed_precision.cc.o.d"
  "/root/repo/src/quant/noise_model.cc" "src/CMakeFiles/qnn.dir/quant/noise_model.cc.o" "gcc" "src/CMakeFiles/qnn.dir/quant/noise_model.cc.o.d"
  "/root/repo/src/quant/qat.cc" "src/CMakeFiles/qnn.dir/quant/qat.cc.o" "gcc" "src/CMakeFiles/qnn.dir/quant/qat.cc.o.d"
  "/root/repo/src/quant/qconfig.cc" "src/CMakeFiles/qnn.dir/quant/qconfig.cc.o" "gcc" "src/CMakeFiles/qnn.dir/quant/qconfig.cc.o.d"
  "/root/repo/src/quant/qnetwork.cc" "src/CMakeFiles/qnn.dir/quant/qnetwork.cc.o" "gcc" "src/CMakeFiles/qnn.dir/quant/qnetwork.cc.o.d"
  "/root/repo/src/quant/quantizer.cc" "src/CMakeFiles/qnn.dir/quant/quantizer.cc.o" "gcc" "src/CMakeFiles/qnn.dir/quant/quantizer.cc.o.d"
  "/root/repo/src/quant/range_analysis.cc" "src/CMakeFiles/qnn.dir/quant/range_analysis.cc.o" "gcc" "src/CMakeFiles/qnn.dir/quant/range_analysis.cc.o.d"
  "/root/repo/src/tensor/gemm.cc" "src/CMakeFiles/qnn.dir/tensor/gemm.cc.o" "gcc" "src/CMakeFiles/qnn.dir/tensor/gemm.cc.o.d"
  "/root/repo/src/tensor/im2col.cc" "src/CMakeFiles/qnn.dir/tensor/im2col.cc.o" "gcc" "src/CMakeFiles/qnn.dir/tensor/im2col.cc.o.d"
  "/root/repo/src/tensor/shape.cc" "src/CMakeFiles/qnn.dir/tensor/shape.cc.o" "gcc" "src/CMakeFiles/qnn.dir/tensor/shape.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/qnn.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/qnn.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/qnn.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/qnn.dir/util/csv.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/qnn.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/qnn.dir/util/logging.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/qnn.dir/util/table.cc.o" "gcc" "src/CMakeFiles/qnn.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
