# Empty dependencies file for qnn.
# This may be replaced when dependencies are built.
