file(REMOVE_RECURSE
  "CMakeFiles/integer_inference.dir/integer_inference.cpp.o"
  "CMakeFiles/integer_inference.dir/integer_inference.cpp.o.d"
  "integer_inference"
  "integer_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integer_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
