# Empty dependencies file for integer_inference.
# This may be replaced when dependencies are built.
