file(REMOVE_RECURSE
  "CMakeFiles/precision_advisor.dir/precision_advisor.cpp.o"
  "CMakeFiles/precision_advisor.dir/precision_advisor.cpp.o.d"
  "precision_advisor"
  "precision_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
