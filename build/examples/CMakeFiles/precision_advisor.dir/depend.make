# Empty dependencies file for precision_advisor.
# This may be replaced when dependencies are built.
