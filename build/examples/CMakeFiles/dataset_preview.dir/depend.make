# Empty dependencies file for dataset_preview.
# This may be replaced when dependencies are built.
