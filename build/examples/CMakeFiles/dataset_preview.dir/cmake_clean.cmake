file(REMOVE_RECURSE
  "CMakeFiles/dataset_preview.dir/dataset_preview.cpp.o"
  "CMakeFiles/dataset_preview.dir/dataset_preview.cpp.o.d"
  "dataset_preview"
  "dataset_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
