file(REMOVE_RECURSE
  "CMakeFiles/mixed_precision_test.dir/mixed_precision_test.cc.o"
  "CMakeFiles/mixed_precision_test.dir/mixed_precision_test.cc.o.d"
  "mixed_precision_test"
  "mixed_precision_test.pdb"
  "mixed_precision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_precision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
