file(REMOVE_RECURSE
  "CMakeFiles/shape_tensor_test.dir/shape_tensor_test.cc.o"
  "CMakeFiles/shape_tensor_test.dir/shape_tensor_test.cc.o.d"
  "shape_tensor_test"
  "shape_tensor_test.pdb"
  "shape_tensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
