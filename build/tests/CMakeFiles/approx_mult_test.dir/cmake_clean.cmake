file(REMOVE_RECURSE
  "CMakeFiles/approx_mult_test.dir/approx_mult_test.cc.o"
  "CMakeFiles/approx_mult_test.dir/approx_mult_test.cc.o.d"
  "approx_mult_test"
  "approx_mult_test.pdb"
  "approx_mult_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_mult_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
