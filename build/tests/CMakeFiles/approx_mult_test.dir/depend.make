# Empty dependencies file for approx_mult_test.
# This may be replaced when dependencies are built.
