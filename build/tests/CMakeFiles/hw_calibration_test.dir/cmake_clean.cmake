file(REMOVE_RECURSE
  "CMakeFiles/hw_calibration_test.dir/hw_calibration_test.cc.o"
  "CMakeFiles/hw_calibration_test.dir/hw_calibration_test.cc.o.d"
  "hw_calibration_test"
  "hw_calibration_test.pdb"
  "hw_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
