file(REMOVE_RECURSE
  "CMakeFiles/hw_logic_test.dir/hw_logic_test.cc.o"
  "CMakeFiles/hw_logic_test.dir/hw_logic_test.cc.o.d"
  "hw_logic_test"
  "hw_logic_test.pdb"
  "hw_logic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_logic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
