# Empty dependencies file for hw_logic_test.
# This may be replaced when dependencies are built.
