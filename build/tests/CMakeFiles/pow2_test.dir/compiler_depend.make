# Empty compiler generated dependencies file for pow2_test.
# This may be replaced when dependencies are built.
