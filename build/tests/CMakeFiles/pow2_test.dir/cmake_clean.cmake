file(REMOVE_RECURSE
  "CMakeFiles/pow2_test.dir/pow2_test.cc.o"
  "CMakeFiles/pow2_test.dir/pow2_test.cc.o.d"
  "pow2_test"
  "pow2_test.pdb"
  "pow2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pow2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
