file(REMOVE_RECURSE
  "CMakeFiles/grad_precision_test.dir/grad_precision_test.cc.o"
  "CMakeFiles/grad_precision_test.dir/grad_precision_test.cc.o.d"
  "grad_precision_test"
  "grad_precision_test.pdb"
  "grad_precision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grad_precision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
