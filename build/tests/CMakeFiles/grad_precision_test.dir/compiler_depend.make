# Empty compiler generated dependencies file for grad_precision_test.
# This may be replaced when dependencies are built.
