file(REMOVE_RECURSE
  "CMakeFiles/qat_test.dir/qat_test.cc.o"
  "CMakeFiles/qat_test.dir/qat_test.cc.o.d"
  "qat_test"
  "qat_test.pdb"
  "qat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
