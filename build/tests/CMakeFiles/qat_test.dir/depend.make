# Empty dependencies file for qat_test.
# This may be replaced when dependencies are built.
