file(REMOVE_RECURSE
  "CMakeFiles/hw_schedule_test.dir/hw_schedule_test.cc.o"
  "CMakeFiles/hw_schedule_test.dir/hw_schedule_test.cc.o.d"
  "hw_schedule_test"
  "hw_schedule_test.pdb"
  "hw_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
