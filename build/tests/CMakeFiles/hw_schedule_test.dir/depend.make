# Empty dependencies file for hw_schedule_test.
# This may be replaced when dependencies are built.
