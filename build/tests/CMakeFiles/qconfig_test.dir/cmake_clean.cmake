file(REMOVE_RECURSE
  "CMakeFiles/qconfig_test.dir/qconfig_test.cc.o"
  "CMakeFiles/qconfig_test.dir/qconfig_test.cc.o.d"
  "qconfig_test"
  "qconfig_test.pdb"
  "qconfig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qconfig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
