# Empty compiler generated dependencies file for qconfig_test.
# This may be replaced when dependencies are built.
