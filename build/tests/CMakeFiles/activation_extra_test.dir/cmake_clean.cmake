file(REMOVE_RECURSE
  "CMakeFiles/activation_extra_test.dir/activation_extra_test.cc.o"
  "CMakeFiles/activation_extra_test.dir/activation_extra_test.cc.o.d"
  "activation_extra_test"
  "activation_extra_test.pdb"
  "activation_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activation_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
