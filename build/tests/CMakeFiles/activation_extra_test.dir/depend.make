# Empty dependencies file for activation_extra_test.
# This may be replaced when dependencies are built.
