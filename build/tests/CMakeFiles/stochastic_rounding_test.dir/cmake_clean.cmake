file(REMOVE_RECURSE
  "CMakeFiles/stochastic_rounding_test.dir/stochastic_rounding_test.cc.o"
  "CMakeFiles/stochastic_rounding_test.dir/stochastic_rounding_test.cc.o.d"
  "stochastic_rounding_test"
  "stochastic_rounding_test.pdb"
  "stochastic_rounding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stochastic_rounding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
