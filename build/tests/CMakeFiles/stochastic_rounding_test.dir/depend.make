# Empty dependencies file for stochastic_rounding_test.
# This may be replaced when dependencies are built.
