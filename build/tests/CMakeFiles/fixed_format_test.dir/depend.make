# Empty dependencies file for fixed_format_test.
# This may be replaced when dependencies are built.
