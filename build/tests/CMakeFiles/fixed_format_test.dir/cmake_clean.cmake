file(REMOVE_RECURSE
  "CMakeFiles/fixed_format_test.dir/fixed_format_test.cc.o"
  "CMakeFiles/fixed_format_test.dir/fixed_format_test.cc.o.d"
  "fixed_format_test"
  "fixed_format_test.pdb"
  "fixed_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixed_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
