# Empty dependencies file for noise_model_test.
# This may be replaced when dependencies are built.
