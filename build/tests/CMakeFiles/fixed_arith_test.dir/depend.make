# Empty dependencies file for fixed_arith_test.
# This may be replaced when dependencies are built.
