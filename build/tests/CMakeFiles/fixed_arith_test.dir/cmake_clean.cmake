file(REMOVE_RECURSE
  "CMakeFiles/fixed_arith_test.dir/fixed_arith_test.cc.o"
  "CMakeFiles/fixed_arith_test.dir/fixed_arith_test.cc.o.d"
  "fixed_arith_test"
  "fixed_arith_test.pdb"
  "fixed_arith_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixed_arith_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
