file(REMOVE_RECURSE
  "CMakeFiles/nfu_sim_test.dir/nfu_sim_test.cc.o"
  "CMakeFiles/nfu_sim_test.dir/nfu_sim_test.cc.o.d"
  "nfu_sim_test"
  "nfu_sim_test.pdb"
  "nfu_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfu_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
