# Empty dependencies file for nfu_sim_test.
# This may be replaced when dependencies are built.
