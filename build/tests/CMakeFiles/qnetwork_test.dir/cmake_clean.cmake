file(REMOVE_RECURSE
  "CMakeFiles/qnetwork_test.dir/qnetwork_test.cc.o"
  "CMakeFiles/qnetwork_test.dir/qnetwork_test.cc.o.d"
  "qnetwork_test"
  "qnetwork_test.pdb"
  "qnetwork_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnetwork_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
