# Empty dependencies file for qnetwork_test.
# This may be replaced when dependencies are built.
