file(REMOVE_RECURSE
  "CMakeFiles/plan_sigmoid_test.dir/plan_sigmoid_test.cc.o"
  "CMakeFiles/plan_sigmoid_test.dir/plan_sigmoid_test.cc.o.d"
  "plan_sigmoid_test"
  "plan_sigmoid_test.pdb"
  "plan_sigmoid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_sigmoid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
