# Empty dependencies file for plan_sigmoid_test.
# This may be replaced when dependencies are built.
