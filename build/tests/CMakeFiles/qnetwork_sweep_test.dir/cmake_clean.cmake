file(REMOVE_RECURSE
  "CMakeFiles/qnetwork_sweep_test.dir/qnetwork_sweep_test.cc.o"
  "CMakeFiles/qnetwork_sweep_test.dir/qnetwork_sweep_test.cc.o.d"
  "qnetwork_sweep_test"
  "qnetwork_sweep_test.pdb"
  "qnetwork_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnetwork_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
