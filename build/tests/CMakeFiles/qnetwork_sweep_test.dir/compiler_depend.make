# Empty compiler generated dependencies file for qnetwork_sweep_test.
# This may be replaced when dependencies are built.
