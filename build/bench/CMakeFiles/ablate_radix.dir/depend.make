# Empty dependencies file for ablate_radix.
# This may be replaced when dependencies are built.
