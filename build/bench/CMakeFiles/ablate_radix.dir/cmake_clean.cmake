file(REMOVE_RECURSE
  "CMakeFiles/ablate_radix.dir/ablate_radix.cc.o"
  "CMakeFiles/ablate_radix.dir/ablate_radix.cc.o.d"
  "ablate_radix"
  "ablate_radix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_radix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
