file(REMOVE_RECURSE
  "CMakeFiles/approx_arithmetic.dir/approx_arithmetic.cc.o"
  "CMakeFiles/approx_arithmetic.dir/approx_arithmetic.cc.o.d"
  "approx_arithmetic"
  "approx_arithmetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_arithmetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
