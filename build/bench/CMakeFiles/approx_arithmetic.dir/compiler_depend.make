# Empty compiler generated dependencies file for approx_arithmetic.
# This may be replaced when dependencies are built.
