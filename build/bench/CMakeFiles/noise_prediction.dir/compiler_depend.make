# Empty compiler generated dependencies file for noise_prediction.
# This may be replaced when dependencies are built.
