file(REMOVE_RECURSE
  "CMakeFiles/noise_prediction.dir/noise_prediction.cc.o"
  "CMakeFiles/noise_prediction.dir/noise_prediction.cc.o.d"
  "noise_prediction"
  "noise_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
