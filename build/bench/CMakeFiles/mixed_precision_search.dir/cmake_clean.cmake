file(REMOVE_RECURSE
  "CMakeFiles/mixed_precision_search.dir/mixed_precision_search.cc.o"
  "CMakeFiles/mixed_precision_search.dir/mixed_precision_search.cc.o.d"
  "mixed_precision_search"
  "mixed_precision_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_precision_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
