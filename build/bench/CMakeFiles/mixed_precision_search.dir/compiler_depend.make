# Empty compiler generated dependencies file for mixed_precision_search.
# This may be replaced when dependencies are built.
