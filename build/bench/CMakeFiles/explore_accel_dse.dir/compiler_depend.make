# Empty compiler generated dependencies file for explore_accel_dse.
# This may be replaced when dependencies are built.
