file(REMOVE_RECURSE
  "CMakeFiles/explore_accel_dse.dir/explore_accel_dse.cc.o"
  "CMakeFiles/explore_accel_dse.dir/explore_accel_dse.cc.o.d"
  "explore_accel_dse"
  "explore_accel_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_accel_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
