file(REMOVE_RECURSE
  "CMakeFiles/ablate_rounding.dir/ablate_rounding.cc.o"
  "CMakeFiles/ablate_rounding.dir/ablate_rounding.cc.o.d"
  "ablate_rounding"
  "ablate_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
