# Empty dependencies file for ablate_rounding.
# This may be replaced when dependencies are built.
