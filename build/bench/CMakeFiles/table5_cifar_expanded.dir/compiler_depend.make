# Empty compiler generated dependencies file for table5_cifar_expanded.
# This may be replaced when dependencies are built.
