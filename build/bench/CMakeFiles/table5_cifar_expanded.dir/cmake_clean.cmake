file(REMOVE_RECURSE
  "CMakeFiles/table5_cifar_expanded.dir/table5_cifar_expanded.cc.o"
  "CMakeFiles/table5_cifar_expanded.dir/table5_cifar_expanded.cc.o.d"
  "table5_cifar_expanded"
  "table5_cifar_expanded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cifar_expanded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
