# Empty dependencies file for table3_design_metrics.
# This may be replaced when dependencies are built.
