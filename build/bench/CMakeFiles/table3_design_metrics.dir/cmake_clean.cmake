file(REMOVE_RECURSE
  "CMakeFiles/table3_design_metrics.dir/table3_design_metrics.cc.o"
  "CMakeFiles/table3_design_metrics.dir/table3_design_metrics.cc.o.d"
  "table3_design_metrics"
  "table3_design_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_design_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
