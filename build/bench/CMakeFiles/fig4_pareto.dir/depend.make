# Empty dependencies file for fig4_pareto.
# This may be replaced when dependencies are built.
