# Empty compiler generated dependencies file for ablate_grad_precision.
# This may be replaced when dependencies are built.
