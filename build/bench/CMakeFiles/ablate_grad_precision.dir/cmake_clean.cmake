file(REMOVE_RECURSE
  "CMakeFiles/ablate_grad_precision.dir/ablate_grad_precision.cc.o"
  "CMakeFiles/ablate_grad_precision.dir/ablate_grad_precision.cc.o.d"
  "ablate_grad_precision"
  "ablate_grad_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_grad_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
