# Empty dependencies file for ablate_qat.
# This may be replaced when dependencies are built.
