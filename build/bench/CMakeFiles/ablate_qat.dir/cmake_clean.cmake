file(REMOVE_RECURSE
  "CMakeFiles/ablate_qat.dir/ablate_qat.cc.o"
  "CMakeFiles/ablate_qat.dir/ablate_qat.cc.o.d"
  "ablate_qat"
  "ablate_qat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_qat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
