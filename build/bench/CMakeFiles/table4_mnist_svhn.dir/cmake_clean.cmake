file(REMOVE_RECURSE
  "CMakeFiles/table4_mnist_svhn.dir/table4_mnist_svhn.cc.o"
  "CMakeFiles/table4_mnist_svhn.dir/table4_mnist_svhn.cc.o.d"
  "table4_mnist_svhn"
  "table4_mnist_svhn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_mnist_svhn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
