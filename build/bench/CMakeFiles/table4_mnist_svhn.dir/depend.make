# Empty dependencies file for table4_mnist_svhn.
# This may be replaced when dependencies are built.
