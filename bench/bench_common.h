// Shared helpers for the table/figure reproduction binaries.
//
// Every binary runs standalone and prints the paper-formatted table
// plus a paper-vs-measured comparison where the paper published
// numbers. Command-line flags (handled by bench::Session):
//   --trace <path>   write a chrome://tracing / Perfetto JSON profile
//   --report <path>  write a qnn.run_report/1 telemetry JSON document
// Environment knobs:
//   QNN_BENCH_FAST=1   shrink training budgets ~4x (CI smoke)
//   QNN_BENCH_SCALE=f  multiply train-set sizes by f (default 1)
//   QNN_TRACE=1        enable span recording without writing a file
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "exp/sweep.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/table.h"

namespace qnn::bench {

// Per-binary observability harness. Construct first thing in main():
// strips --trace/--report from argv (so later argv consumers — e.g.
// benchmark::Initialize — never see them), enables span recording when
// a trace was requested, and on destruction writes the trace and the
// RunReport (metrics snapshot + trace summary + any sections the bench
// added via report()).
class Session {
 public:
  Session(std::string tool, int* argc, char** argv)
      : report_(std::move(tool)) {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      const std::string arg = argv[i];
      std::string* dst = nullptr;
      if (arg == "--trace") {
        dst = &trace_path_;
      } else if (arg == "--report") {
        dst = &report_path_;
      }
      if (dst == nullptr) {
        argv[out++] = argv[i];
        continue;
      }
      if (i + 1 >= *argc) {
        std::cerr << arg << " requires a path argument (ignored)\n";
        continue;
      }
      *dst = argv[++i];
    }
    *argc = out;
    if (!trace_path_.empty()) obs::set_trace_enabled(true);
  }

  ~Session() {
    if (!trace_path_.empty()) {
      obs::write_chrome_trace(trace_path_);
      std::cout << "wrote trace to " << trace_path_
                << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (!report_path_.empty()) {
      report_.add_metrics();
      report_.add_trace_summary();
      report_.add_registry_summary();
      report_.write(report_path_);
      std::cout << "wrote run report to " << report_path_ << "\n";
    }
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Benches may fold extra sections (guard counters, phase timings, ...)
  // into the report before it is written.
  obs::RunReport& report() { return report_; }
  const std::string& trace_path() const { return trace_path_; }
  const std::string& report_path() const { return report_path_; }

 private:
  obs::RunReport report_;
  std::string trace_path_;
  std::string report_path_;
};

inline bool fast_mode() {
  const char* v = std::getenv("QNN_BENCH_FAST");
  return v != nullptr && std::string(v) != "0";
}

inline double bench_scale() {
  const char* v = std::getenv("QNN_BENCH_SCALE");
  if (v == nullptr) return 1.0;
  const double f = std::atof(v);
  return f > 0 ? f : 1.0;
}

// Per-image energy of the FULL-SIZE (channel_scale = 1) architecture at
// each precision. Accuracy experiments run on channel-scaled networks to
// fit the single-core budget, but the energy/area/power columns are
// training-independent, so they are always reported for the paper's
// actual architectures.
struct FullScaleHw {
  double energy_uj = 0;
  double area_mm2 = 0;
  double power_mw = 0;
  std::int64_t cycles = 0;
};

inline FullScaleHw full_scale_hw(const std::string& network,
                                 const quant::PrecisionConfig& precision) {
  auto net = nn::make_network(network, {});
  const Shape in = nn::input_shape_for(network);
  hw::AcceleratorConfig cfg;
  cfg.precision = precision;
  const hw::Accelerator acc(cfg);
  const auto sched = hw::schedule_network(net->describe(in), acc);
  return {sched.energy_uj(acc), acc.area_mm2(), acc.power_mw(),
          sched.total_cycles};
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace qnn::bench
