// Shared helpers for the table/figure reproduction binaries.
//
// Every binary runs standalone with no arguments and prints the
// paper-formatted table plus a paper-vs-measured comparison where the
// paper published numbers. Environment knobs:
//   QNN_BENCH_FAST=1   shrink training budgets ~4x (CI smoke)
//   QNN_BENCH_SCALE=f  multiply train-set sizes by f (default 1)
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "exp/sweep.h"
#include "util/table.h"

namespace qnn::bench {

inline bool fast_mode() {
  const char* v = std::getenv("QNN_BENCH_FAST");
  return v != nullptr && std::string(v) != "0";
}

inline double bench_scale() {
  const char* v = std::getenv("QNN_BENCH_SCALE");
  if (v == nullptr) return 1.0;
  const double f = std::atof(v);
  return f > 0 ? f : 1.0;
}

// Per-image energy of the FULL-SIZE (channel_scale = 1) architecture at
// each precision. Accuracy experiments run on channel-scaled networks to
// fit the single-core budget, but the energy/area/power columns are
// training-independent, so they are always reported for the paper's
// actual architectures.
struct FullScaleHw {
  double energy_uj = 0;
  double area_mm2 = 0;
  double power_mw = 0;
  std::int64_t cycles = 0;
};

inline FullScaleHw full_scale_hw(const std::string& network,
                                 const quant::PrecisionConfig& precision) {
  auto net = nn::make_network(network, {});
  const Shape in = nn::input_shape_for(network);
  hw::AcceleratorConfig cfg;
  cfg.precision = precision;
  const hw::Accelerator acc(cfg);
  const auto sched = hw::schedule_network(net->describe(in), acc);
  return {sched.energy_uj(acc), acc.area_mm2(), acc.power_mw(),
          sched.total_cycles};
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace qnn::bench
