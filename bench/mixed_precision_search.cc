// Extension bench: per-layer (mixed) weight precision vs the paper's
// uniform widths. The greedy PTQ-guided search (quant/mixed_precision)
// assigns each layer the narrowest width that respects an accuracy
// budget; a final QAT pass polishes the result. Compares against the
// uniform fixed-point points of Table IV on the MNIST-like benchmark.
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "nn/trainer.h"
#include "quant/mixed_precision.h"
#include "quant/qat.h"

namespace qnn {
namespace {

void run() {
  const double scale = bench::fast_mode() ? 0.3 : bench::bench_scale();
  bench::print_header(
      "Mixed per-layer precision search (LeNet, MNIST-like)");

  data::SyntheticConfig dc;
  dc.num_train = static_cast<std::int64_t>(2000 * scale);
  dc.num_test = 600;
  const auto split = data::make_mnist_like(dc);
  nn::ZooConfig zc;
  zc.channel_scale = 0.5;
  auto net = nn::make_lenet(zc);
  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 32;
  tc.sgd.learning_rate = 0.02;
  nn::train(*net, split.train, tc);

  // Uniform baselines with QAT.
  auto uniform_qat = [&](int bits) {
    nn::ZooConfig zcc = zc;
    auto copy = nn::make_lenet(zcc);
    copy->copy_params_from(*net);
    quant::QuantizedNetwork qnet(*copy, quant::fixed_config(bits, bits));
    quant::QatConfig qc;
    qc.train.epochs = 2;
    qc.train.batch_size = 32;
    qc.train.sgd.learning_rate = 0.01;
    quant::qat_finetune(qnet, split.train, qc);
    const double acc = nn::evaluate(qnet, split.test);
    qnet.restore_masters();
    return acc;
  };

  // Greedy mixed search + final QAT on the found assignment.
  quant::MixedSearchConfig mcfg;
  mcfg.start_bits = 8;
  mcfg.candidate_bits = {8, 6, 4, 2};
  mcfg.accuracy_budget = 1.5;
  const auto found =
      quant::search_mixed_precision(*net, split.train, split.test, mcfg);

  auto mixed_copy = nn::make_lenet(zc);
  mixed_copy->copy_params_from(*net);
  quant::QuantizedNetwork mixed(*mixed_copy, quant::fixed_config(8, 8),
                                found.weight_bits);
  quant::QatConfig qc;
  qc.train.epochs = 2;
  qc.train.batch_size = 32;
  qc.train.sgd.learning_rate = 0.01;
  quant::qat_finetune(mixed, split.train, qc);
  const double mixed_acc = nn::evaluate(mixed, split.test);
  mixed.restore_masters();

  std::ostringstream assignment;
  for (std::size_t i = 0; i < found.weight_bits.size(); ++i) {
    if (i) assignment << '/';
    assignment << found.weight_bits[i];
  }

  Table t({"Design", "Weight bits (mean)", "QAT acc%"});
  t.add_row({"uniform fixed(8,8)", "8.00", format_percent(uniform_qat(8))});
  t.add_row({"uniform fixed(4,4)", "4.00", format_percent(uniform_qat(4))});
  t.add_row({"mixed " + assignment.str(),
             format_fixed(found.mean_weight_bits, 2),
             format_percent(mixed_acc)});
  std::cout << t.to_string();
  std::cout << "\nsearch spent " << found.search_evaluations
            << " PTQ evaluations; float baseline "
            << format_percent(found.float_accuracy) << "%\n"
            << "Reading: the big fully-connected layer tolerates the "
               "narrowest widths (it dominates parameter count), so the "
               "mixed design approaches uniform-4-bit storage at "
               "uniform-8-bit accuracy — the per-layer freedom the "
               "paper's §VI anticipates.\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("mixed_precision_search", &argc, argv);
  qnn::run();
  return 0;
}
