// Reproduces Table V: CIFAR-10(-like) accuracy and energy for ALEX and
// the expanded networks ALEX+ / ALEX++ across precisions — the paper's
// headline result that larger lower-precision networks dominate the
// full-precision baseline. Energy savings reference the ALEX float
// design, as in the paper.
#include <iostream>

#include "bench_common.h"
#include "util/csv.h"
#include "util/stopwatch.h"

namespace qnn {
namespace {

struct PaperRow {
  double acc, energy;
};

// Table V (negative = row absent / failed to converge in the paper).
PaperRow paper(const std::string& net, const std::string& id) {
  if (net == "alex") {
    if (id == "float_32_32") return {81.22, 335.68};
    if (id == "fixed_32_32") return {79.71, 293.90};
    if (id == "fixed_16_16") return {79.77, 136.61};
    if (id == "fixed_8_8") return {77.99, 49.22};
    if (id == "pow2_6_16") return {77.03, 46.77};
    if (id == "binary_1_16") return {74.84, 19.79};
  } else if (net == "alex+") {
    if (id == "fixed_16_16") return {81.86, 491.32};
    if (id == "fixed_8_8") return {78.71, 177.02};
    if (id == "pow2_6_16") return {77.34, 168.21};
    if (id == "binary_1_16") return {77.91, 71.18};
  } else if (net == "alex++") {
    if (id == "fixed_16_16") return {82.26, 628.17};
    if (id == "fixed_8_8") return {75.03, 226.32};
    if (id == "pow2_6_16") return {81.26, 215.05};
    if (id == "binary_1_16") return {80.52, 91.00};
  }
  return {-1, -1};
}

exp::ExperimentSpec cifar_spec(const std::string& network, double scale) {
  exp::ExperimentSpec s;
  s.network = network;
  s.dataset = "cifar";
  s.channel_scale = 0.4;
  s.data.num_train = static_cast<std::int64_t>(3000 * scale);
  s.data.num_test = 1000;
  // ALEX is cheap per epoch and needs the longest schedule; the
  // expanded networks cost ~3.5x per epoch but converge in fewer.
  s.float_train.epochs = network == "alex" ? 22 : 14;
  s.float_train.batch_size = 32;
  s.float_train.sgd.learning_rate = 0.02;
  s.float_train.sgd.step_epochs = 8;
  s.qat_train = s.float_train;
  s.qat_train.epochs = network == "alex" ? 4 : 2;
  s.qat_train.sgd.learning_rate = 0.005;
  return s;
}

// The paper drops fixed(32,32) for the expanded nets (not competitive)
// and fixed(4,4) everywhere on CIFAR (fails to converge) — it is kept
// here for ALEX to demonstrate the failure.
std::vector<quant::PrecisionConfig> precisions_for(
    const std::string& network) {
  if (network == "alex")
    return {quant::float_config(),      quant::fixed_config(32, 32),
            quant::fixed_config(16, 16), quant::fixed_config(8, 8),
            quant::fixed_config(4, 4),  quant::pow2_config(6, 16),
            quant::binary_config(16)};
  return {quant::float_config(), quant::fixed_config(16, 16),
          quant::fixed_config(8, 8), quant::pow2_config(6, 16),
          quant::binary_config(16)};
}

void run() {
  const double scale = bench::fast_mode() ? 0.25 : bench::bench_scale();
  bench::print_header(
      "Table V — CIFAR-like: ALEX / ALEX+ / ALEX++ across precisions");

  // Energy baseline: full-size ALEX at float (paper's reference).
  const double base_energy =
      bench::full_scale_hw("alex", quant::float_config()).energy_uj;

  CsvWriter csv("table5_cifar_expanded.csv",
                {"network", "precision", "accuracy", "converged",
                 "energy_uj", "energy_saving"});
  Table t({"Network", "Precision (w,in)", "Acc.%", "[paper]", "Energy uJ",
           "[paper]", "Energy Sav.%"});
  Stopwatch total;
  for (const std::string network : {"alex", "alex+", "alex++"}) {
    Stopwatch sw;
    const auto result = exp::run_precision_sweep(
        cifar_spec(network, scale), precisions_for(network), base_energy);
    for (const auto& p : result.points) {
      const auto hwm = bench::full_scale_hw(network, p.precision);
      const PaperRow pp = paper(network, p.precision.id());
      const double saving = hw::saving_percent(base_energy, hwm.energy_uj);
      t.add_row({network, p.precision.label(),
                 p.converged ? format_percent(p.accuracy)
                             : format_percent(p.accuracy) + " (NC)",
                 pp.acc < 0 ? "-" : format_percent(pp.acc),
                 format_fixed(hwm.energy_uj, 2),
                 pp.energy < 0 ? "-" : format_fixed(pp.energy, 2),
                 saving >= 0
                     ? format_percent(saving)
                     : format_fixed(hwm.energy_uj / base_energy, 2) +
                           "x More"});
      csv.add_row({network, p.precision.id(), format_percent(p.accuracy),
                   p.converged ? "1" : "0", format_fixed(hwm.energy_uj, 3),
                   format_percent(saving)});
    }
    t.add_separator();
    std::cout << "[" << network << ": " << format_fixed(sw.seconds(), 0)
              << " s]\n";
  }
  std::cout << t.to_string();
  std::cout << "(NC) = did not converge (paper drops such rows). Energy "
               "savings reference full-size ALEX float, as in the paper; "
               "\"x More\" marks designs above the baseline energy.\n"
            << "Total: " << format_fixed(total.seconds(), 0) << " s\n"
            << "Rows written to table5_cifar_expanded.csv\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("table5_cifar_expanded", &argc, argv);
  qnn::run();
  return 0;
}
