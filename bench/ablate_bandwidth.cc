// Ablation (DESIGN.md §5, schedule model): the DMA weight-streaming
// bandwidth wall. The paper idealizes memory traffic (its energy numbers
// exclude main memory); this bench quantifies how finite weight-
// streaming bandwidth would stretch runtimes — dominated by the large
// fully-connected layers (ALEX++'s 2M-weight fc), which is DianNao's
// classic memory-bound regime. No training involved.
#include <iostream>

#include "bench_common.h"
#include "hw/schedule.h"

namespace qnn {
namespace {

void run() {
  bench::print_header(
      "Ablation — DMA bandwidth wall on fully-connected layers");

  Table t({"Network", "Precision", "Ideal cycles", "512 b/cyc", "256 b/cyc",
           "128 b/cyc", "slowdown@128"});
  for (const std::string network :
       {"lenet", "convnet", "alex", "alex+", "alex++"}) {
    auto net = nn::make_network(network, {});
    const auto descs = net->describe(nn::input_shape_for(network));
    for (const auto& cfg :
         {quant::fixed_config(16, 16), quant::binary_config(16)}) {
      hw::AcceleratorConfig ac;
      ac.precision = cfg;
      const hw::Accelerator acc(ac);
      const auto ideal = hw::schedule_network(descs, acc);
      auto with_bw = [&](std::int64_t bw) {
        hw::ScheduleOptions o;
        o.dma_bits_per_cycle = bw;
        return hw::schedule_network(descs, acc, o).total_cycles;
      };
      const auto c512 = with_bw(512), c256 = with_bw(256),
                 c128 = with_bw(128);
      t.add_row({network, cfg.label(), std::to_string(ideal.total_cycles),
                 std::to_string(c512), std::to_string(c256),
                 std::to_string(c128),
                 format_fixed(static_cast<double>(c128) /
                                  static_cast<double>(ideal.total_cycles),
                              2) + "x"});
    }
  }
  std::cout << t.to_string();
  std::cout << "\nShape: conv-dominated nets (alex family) barely move; "
               "fc-heavy nets (lenet ip1, alex++ ip512) stall hardest, "
               "and narrow weights (binary) relieve the wall — the "
               "memory-footprint argument of the paper, seen through "
               "bandwidth.\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("ablate_bandwidth", &argc, argv);
  qnn::run();
  return 0;
}
