// Open-loop load generator for the serving layer (DESIGN.md §12):
// sweeps arrival rate x batch window x degradation policy over a
// trained MNIST-like LeNet and reports, per cell, latency (p50/p99 in
// virtual ticks), throughput, deadline-miss counts, energy per served
// request (hw model), and an accuracy proxy (top-1 vs. the synthetic
// test labels of the payloads actually served).
//
// Arrival rate is expressed as a multiple of the sustainable
// full-precision throughput (1 / float-tier per-image service ticks),
// so "2.0" is the acceptance-criteria overload point: there the degrade
// policy must serve strictly more requests within deadline than both
// the reject-only and no-admission baselines — precision downshift as
// principled load shedding.
//
// Everything is virtual-time deterministic: the same seed produces the
// same BENCH_serve.json bytes at any worker-thread count
// (tests/serve_determinism_test.cc replays the same pipeline).
//
// `--policy` selects the sweep: `overload` (the policy sweep above),
// `chaos_redirect` (the fault-tolerance sweep: a fixed lane-fault
// schedule against a 2-replica-per-tier pool, retry-with-redirect vs.
// fail-stop, DESIGN.md §13), or `all` (default, both).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "faults/lane_faults.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "serve/request_trace.h"
#include "serve/server.h"
#include "serve/slo.h"
#include "util/check.h"
#include "util/fileio.h"

namespace qnn {
namespace {

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

struct SweepRow {
  double rate = 0.0;
  serve::Tick window = 0;
  serve::AdmissionPolicy policy = serve::AdmissionPolicy::kDegrade;
  // Row label in the report; admission_policy_name for the overload
  // sweep, "chaos_redirect"/"chaos_failstop" for the chaos sweep.
  std::string label;
  serve::ServeStats stats;
  serve::SloSummary slo;  // per-tier SLO/energy roll-up (DESIGN.md §14)
  double accuracy_proxy = 0.0;  // top-1 on served payloads, percent
  double energy_per_request_uj = 0.0;
  double served_per_mtick = 0.0;
  std::uint32_t digest = 0;
};

json::Value row_to_json(const SweepRow& r) {
  json::Value v = json::Value::object();
  v.set("rate_multiplier", json::Value(r.rate));
  v.set("batch_window_ticks", json::Value(r.window));
  v.set("policy", json::Value(r.label));
  v.set("stats", serve::serve_stats_to_json(r.stats));
  v.set("slo", serve::slo_to_json(r.slo));
  v.set("accuracy_proxy_pct", json::Value(r.accuracy_proxy));
  v.set("energy_per_request_uj", json::Value(r.energy_per_request_uj));
  v.set("served_per_mtick", json::Value(r.served_per_mtick));
  v.set("digest", json::Value(static_cast<std::int64_t>(r.digest)));
  return v;
}

void run(const std::string& policy_arg, bool trace_requests,
         bench::Session& session) {
  const bool fast = bench::fast_mode();
  const bool do_overload = policy_arg == "all" || policy_arg == "overload";
  const bool do_chaos = policy_arg == "all" || policy_arg == "chaos_redirect";
  bench::print_header(
      "Serving under load — precision downshift vs. reject-only vs. "
      "no-admission");

  // One trained master network; replicas at every precision tier.
  nn::ZooConfig zoo;
  zoo.channel_scale = 0.5;
  auto net = nn::make_lenet(zoo);
  data::SyntheticConfig data_cfg;
  data_cfg.num_train = fast ? 800 : 2000;
  data_cfg.num_test = 500;
  const data::Split split = data::make_mnist_like(data_cfg);
  nn::TrainConfig train_cfg;
  train_cfg.epochs = fast ? 2 : 4;
  train_cfg.sgd.learning_rate = 0.05;
  std::cout << "training lenet (scale " << zoo.channel_scale << ", "
            << data_cfg.num_train << " images, " << train_cfg.epochs
            << " epochs)...\n";
  nn::train(*net, split.train, train_cfg);

  std::vector<serve::TierSpec> tiers = serve::default_tier_lattice();
  serve::derive_tier_costs(*net, nn::input_shape_for("lenet"), &tiers);
  const Tensor calibration = data::batch_images(split.train, 0, 64);
  serve::ReplicaPool pool(*net, calibration, tiers);

  // Sustainable full-precision service rate: one image every
  // `sustain` ticks through the float tier at the default batch size.
  const serve::Tick ticks0 = tiers[0].ticks_per_image;
  const serve::Tick sustain = ticks0 + tiers[0].batch_overhead_ticks / 8;
  std::cout << "tier costs:";
  for (const auto& t : tiers) {
    std::cout << "  " << t.name << "=" << t.ticks_per_image << " ticks, "
              << fmt("%.2f", t.energy_per_image_uj) << " uJ/img;";
  }
  std::cout << "\n\n";

  const std::vector<double> rates = fast ? std::vector<double>{1.0, 2.0}
                                         : std::vector<double>{0.5, 1.0, 2.0};
  const std::vector<serve::Tick> windows{0, 4 * sustain};
  const std::vector<serve::AdmissionPolicy> policies{
      serve::AdmissionPolicy::kDegrade, serve::AdmissionPolicy::kRejectOnly,
      serve::AdmissionPolicy::kNoAdmission};
  const std::int64_t num_requests = fast ? 150 : 400;
  const serve::Tick deadline = 12 * sustain;

  // Payloads are test-set images, so "accuracy proxy" is real top-1 on
  // whatever subset each policy managed to serve.
  const auto payload = [&split](const serve::TraceRequest& tr,
                                const Shape&) {
    const std::int64_t idx = tr.id % split.test.images.shape()[0];
    return data::batch_images(split.test, idx, 1);
  };

  Table table({"Rate", "Window", "Policy", "Served", "In-deadline",
               "Rejected", "Expired", "p50", "p99", "uJ/req", "Top-1%"});
  std::vector<SweepRow> rows;
  for (double rate : do_overload ? rates : std::vector<double>{}) {
    serve::OpenLoopSpec spec;
    spec.num_requests = num_requests;
    spec.mean_interarrival_ticks = static_cast<double>(sustain) / rate;
    spec.relative_deadline_ticks = deadline;
    spec.seed = 20260807;
    // The trace depends only on the rate: every window x policy cell at
    // a given rate replays the IDENTICAL arrivals and payloads.
    const serve::ArrivalTrace trace = serve::make_open_loop_trace(
        spec, {1, 28, 28});
    for (serve::Tick window : windows) {
      for (serve::AdmissionPolicy policy : policies) {
        serve::ServerConfig cfg;
        cfg.queue_capacity = 32;
        cfg.batcher.max_batch = 8;
        cfg.batcher.batch_window = window;
        cfg.controller.high_depth_fraction = 0.5;
        cfg.controller.low_depth_fraction = 0.125;
        cfg.controller.p99_high_ticks = deadline / 2;
        cfg.controller.p99_low_ticks = deadline / 4;
        cfg.controller.dwell_ticks = 4 * sustain;
        cfg.policy = policy;
        cfg.payload = payload;
        // Trace one designated overload cell: the hottest rate, degrade
        // policy, widest window — the cell whose causal log is most
        // interesting under pressure.
        const bool trace_cell =
            trace_requests && rate == rates.back() &&
            policy == serve::AdmissionPolicy::kDegrade &&
            window == windows.back();
        cfg.trace_requests = trace_cell;
        serve::Server server(pool, cfg);
        const serve::ServeResult result = server.run_trace(trace);
        if (trace_cell) {
          serve::write_request_events_jsonl("REQUESTS_overload.jsonl",
                                            result.request_events);
          serve::write_lane_chrome_trace("LANES_overload.json",
                                         result.lane_executions,
                                         result.health_log,
                                         result.request_events,
                                         result.lane_names);
          std::cout << "wrote REQUESTS_overload.jsonl ("
                    << result.request_events.size()
                    << " events) and LANES_overload.json ("
                    << result.lane_executions.size() << " executions)\n";
        }

        SweepRow row;
        row.rate = rate;
        row.window = window;
        row.policy = policy;
        row.label = serve::admission_policy_name(policy);
        row.stats = result.stats;
        row.slo = serve::make_slo_summary(result, tiers);
        QNN_CHECK_MSG(row.slo.conserved,
                      "SLO summary not self-consistent for overload cell "
                          << row.label);
        row.digest = result.digest();
        std::int64_t correct = 0;
        for (const serve::Response& resp : result.responses) {
          const std::size_t idx = static_cast<std::size_t>(
              resp.id % split.test.images.shape()[0]);
          if (resp.predicted == split.test.labels[idx]) ++correct;
        }
        row.accuracy_proxy =
            result.responses.empty()
                ? 0.0
                : 100.0 * static_cast<double>(correct) /
                      static_cast<double>(result.responses.size());
        row.energy_per_request_uj =
            row.stats.served == 0
                ? 0.0
                : row.stats.total_energy_uj /
                      static_cast<double>(row.stats.served);
        row.served_per_mtick =
            row.stats.end_tick == 0
                ? 0.0
                : 1e6 * static_cast<double>(row.stats.served) /
                      static_cast<double>(row.stats.end_tick);
        rows.push_back(row);

        table.add_row(
            {fmt("%.1fx", rate), std::to_string(window),
             serve::admission_policy_name(policy),
             std::to_string(row.stats.served),
             std::to_string(row.stats.served_within_deadline),
             std::to_string(row.stats.rejected_full +
                            row.stats.rejected_expired +
                            row.stats.rejected_shutdown),
             std::to_string(row.stats.expired_in_queue),
             std::to_string(
                 static_cast<std::int64_t>(row.stats.p50_latency_ticks)),
             std::to_string(
                 static_cast<std::int64_t>(row.stats.p99_latency_ticks)),
             fmt("%.2f", row.energy_per_request_uj),
             fmt("%.1f", row.accuracy_proxy)});
      }
      table.add_separator();
    }
  }
  if (do_overload) std::cout << table.to_string();

  // Acceptance check (ISSUE criterion): at every >= 2x overload cell the
  // degrade policy must serve strictly more within-deadline requests
  // than both baselines.
  bool accepted = true;
  for (double rate : do_overload ? rates : std::vector<double>{}) {
    if (rate < 2.0) continue;
    for (serve::Tick window : windows) {
      std::int64_t degrade = -1, reject = -1, noadm = -1;
      for (const SweepRow& r : rows) {
        if (r.rate != rate || r.window != window) continue;
        const std::int64_t in = r.stats.served_within_deadline;
        if (r.policy == serve::AdmissionPolicy::kDegrade) degrade = in;
        if (r.policy == serve::AdmissionPolicy::kRejectOnly) reject = in;
        if (r.policy == serve::AdmissionPolicy::kNoAdmission) noadm = in;
      }
      const bool ok = degrade > reject && degrade > noadm;
      accepted = accepted && ok;
      std::cout << (ok ? "PASS" : "FAIL") << ": rate " << fmt("%.1fx", rate)
                << " window " << window << " — degrade " << degrade
                << " in-deadline vs reject-only " << reject
                << " vs no-admission " << noadm << "\n";
    }
  }

  // Chaos sweep (DESIGN.md §13): a fixed lane-fault schedule — hang,
  // weight-memory corruption, and a crash — against a pool with two
  // replica lanes per tier, at 2x overload. Retry-with-redirect must
  // serve strictly more in-deadline requests than fail-stop under the
  // IDENTICAL trace and faults.
  bool chaos_accepted = true;
  if (do_chaos) {
    std::cout << "\nchaos sweep: 2 lanes/tier, hang + corrupt + crash vs "
              << "redirect and fail-stop\n";
    serve::ReplicaPool chaos_pool(*net, calibration, tiers, 2);
    faults::LaneFaultSchedule schedule;
    faults::LaneFault hang;
    hang.kind = faults::LaneFaultKind::kHangLane;
    hang.tier = 0;
    hang.replica = 0;
    hang.at_tick = 0;
    hang.hang_ticks = 100 * sustain;
    schedule.faults.push_back(hang);
    faults::LaneFault corrupt;
    corrupt.kind = faults::LaneFaultKind::kCorruptLane;
    corrupt.tier = 0;
    corrupt.replica = 1;
    corrupt.at_tick = 4 * sustain;
    corrupt.corrupt_flips = 16;
    corrupt.seed = 7;
    schedule.faults.push_back(corrupt);
    faults::LaneFault crash;
    crash.kind = faults::LaneFaultKind::kCrashLane;
    crash.tier = 1;
    crash.replica = 0;
    crash.at_tick = 8 * sustain;
    schedule.faults.push_back(crash);
    faults::validate_schedule(schedule);

    serve::OpenLoopSpec spec;
    spec.num_requests = num_requests;
    spec.mean_interarrival_ticks = static_cast<double>(sustain) / 2.0;
    spec.relative_deadline_ticks = deadline;
    spec.seed = 20260807;
    const serve::ArrivalTrace trace =
        serve::make_open_loop_trace(spec, {1, 28, 28});

    std::int64_t redirect_in = -1, failstop_in = -1;
    for (const bool redirect : {true, false}) {
      serve::ServerConfig cfg;
      cfg.queue_capacity = 32;
      cfg.batcher.max_batch = 8;
      cfg.batcher.batch_window = 4 * sustain;
      cfg.controller.high_depth_fraction = 0.5;
      cfg.controller.low_depth_fraction = 0.125;
      cfg.controller.dwell_ticks = 4 * sustain;
      cfg.executor.redirect_on_failure = redirect;
      cfg.chaos = &schedule;
      cfg.payload = payload;
      cfg.trace_requests = trace_requests && redirect;
      serve::Server server(chaos_pool, cfg);
      const serve::ServeResult result = server.run_trace(trace);
      if (cfg.trace_requests) {
        serve::write_request_events_jsonl("REQUESTS_chaos.jsonl",
                                          result.request_events);
        serve::write_lane_chrome_trace("LANES_chaos.json",
                                       result.lane_executions,
                                       result.health_log,
                                       result.request_events,
                                       result.lane_names);
        std::cout << "  wrote REQUESTS_chaos.jsonl ("
                  << result.request_events.size()
                  << " events) and LANES_chaos.json ("
                  << result.lane_executions.size() << " executions)\n";
      }

      SweepRow row;
      row.rate = 2.0;
      row.window = cfg.batcher.batch_window;
      row.label = redirect ? "chaos_redirect" : "chaos_failstop";
      row.stats = result.stats;
      row.slo = serve::make_slo_summary(result, tiers);
      QNN_CHECK_MSG(row.slo.conserved,
                    "SLO summary not self-consistent for " << row.label);
      row.digest = result.digest();
      row.energy_per_request_uj =
          row.stats.served == 0
              ? 0.0
              : row.stats.total_energy_uj /
                    static_cast<double>(row.stats.served);
      row.served_per_mtick =
          row.stats.end_tick == 0
              ? 0.0
              : 1e6 * static_cast<double>(row.stats.served) /
                    static_cast<double>(row.stats.end_tick);
      rows.push_back(row);
      (redirect ? redirect_in : failstop_in) =
          row.stats.served_within_deadline;
      std::cout << "  " << row.label << ": served "
                << row.stats.served_within_deadline
                << " in-deadline, failed " << row.stats.failed << ", hung "
                << row.stats.hung_batches << ", corrupt "
                << row.stats.corrupt_batches << ", crashed "
                << row.stats.crashed_batches << ", rescrubs "
                << row.stats.rescrubs << "\n";
    }
    chaos_accepted = redirect_in > failstop_in;
    std::cout << (chaos_accepted ? "PASS" : "FAIL")
              << ": chaos — redirect " << redirect_in
              << " in-deadline vs fail-stop " << failstop_in << "\n";
  }

  json::Value doc = json::Value::object();
  doc.set("version", json::Value("qnn.bench_serve/1"));
  doc.set("network", json::Value("lenet"));
  doc.set("channel_scale", json::Value(zoo.channel_scale));
  doc.set("num_requests", json::Value(num_requests));
  doc.set("sustainable_ticks_per_image", json::Value(sustain));
  doc.set("deadline_ticks", json::Value(deadline));
  doc.set("policy_mode", json::Value(policy_arg));
  doc.set("overload_acceptance", json::Value(accepted));
  doc.set("chaos_acceptance", json::Value(chaos_accepted));
  // Every row's SLO block already passed its own conservation check
  // (QNN_CHECK above); re-state the conjunction so BENCH_serve.json
  // consumers can gate on one field.
  bool slo_consistent = true;
  for (const SweepRow& r : rows) slo_consistent = slo_consistent && r.slo.conserved;
  doc.set("slo_self_consistent", json::Value(slo_consistent));
  json::Value jrows = json::Value::array();
  for (const SweepRow& r : rows) jrows.push_back(row_to_json(r));
  doc.set("rows", std::move(jrows));
  write_file_atomic("BENCH_serve.json", doc.dump());
  // Fold the last row's SLO block into the run report so --report
  // captures the serving roll-up alongside metrics/trace/registry.
  if (!rows.empty()) {
    session.report().set("serve_slo", serve::slo_to_json(rows.back().slo));
  }
  std::cout << "\nwrote BENCH_serve.json (" << rows.size() << " cells), "
            << "overload acceptance: " << (accepted ? "PASS" : "FAIL")
            << ", chaos acceptance: " << (chaos_accepted ? "PASS" : "FAIL")
            << ", slo self-consistent: " << (slo_consistent ? "yes" : "no")
            << "\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("serve_loadgen", &argc, argv);
  std::string policy = "all";
  bool trace_requests = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--policy" && i + 1 < argc) {
      policy = argv[++i];
    } else if (std::string(argv[i]) == "--trace-requests") {
      trace_requests = true;
    }
  }
  if (policy != "all" && policy != "overload" && policy != "chaos_redirect") {
    std::cerr << "unknown --policy " << policy
              << " (want all | overload | chaos_redirect)\n";
    return 1;
  }
  qnn::run(policy, trace_requests, session);
  return 0;
}
