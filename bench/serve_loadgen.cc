// Open-loop load generator for the serving layer (DESIGN.md §12):
// sweeps arrival rate x batch window x degradation policy over a
// trained MNIST-like LeNet and reports, per cell, latency (p50/p99 in
// virtual ticks), throughput, deadline-miss counts, energy per served
// request (hw model), and an accuracy proxy (top-1 vs. the synthetic
// test labels of the payloads actually served).
//
// Arrival rate is expressed as a multiple of the sustainable
// full-precision throughput (1 / float-tier per-image service ticks),
// so "2.0" is the acceptance-criteria overload point: there the degrade
// policy must serve strictly more requests within deadline than both
// the reject-only and no-admission baselines — precision downshift as
// principled load shedding.
//
// Everything is virtual-time deterministic: the same seed produces the
// same BENCH_serve.json bytes at any worker-thread count
// (tests/serve_determinism_test.cc replays the same pipeline).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "serve/server.h"
#include "util/fileio.h"

namespace qnn {
namespace {

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

struct SweepRow {
  double rate = 0.0;
  serve::Tick window = 0;
  serve::AdmissionPolicy policy = serve::AdmissionPolicy::kDegrade;
  serve::ServeStats stats;
  double accuracy_proxy = 0.0;  // top-1 on served payloads, percent
  double energy_per_request_uj = 0.0;
  double served_per_mtick = 0.0;
  std::uint32_t digest = 0;
};

json::Value row_to_json(const SweepRow& r) {
  json::Value v = json::Value::object();
  v.set("rate_multiplier", json::Value(r.rate));
  v.set("batch_window_ticks", json::Value(r.window));
  v.set("policy", json::Value(serve::admission_policy_name(r.policy)));
  v.set("stats", serve::serve_stats_to_json(r.stats));
  v.set("accuracy_proxy_pct", json::Value(r.accuracy_proxy));
  v.set("energy_per_request_uj", json::Value(r.energy_per_request_uj));
  v.set("served_per_mtick", json::Value(r.served_per_mtick));
  v.set("digest", json::Value(static_cast<std::int64_t>(r.digest)));
  return v;
}

void run() {
  const bool fast = bench::fast_mode();
  bench::print_header(
      "Serving under load — precision downshift vs. reject-only vs. "
      "no-admission");

  // One trained master network; replicas at every precision tier.
  nn::ZooConfig zoo;
  zoo.channel_scale = 0.5;
  auto net = nn::make_lenet(zoo);
  data::SyntheticConfig data_cfg;
  data_cfg.num_train = fast ? 800 : 2000;
  data_cfg.num_test = 500;
  const data::Split split = data::make_mnist_like(data_cfg);
  nn::TrainConfig train_cfg;
  train_cfg.epochs = fast ? 2 : 4;
  train_cfg.sgd.learning_rate = 0.05;
  std::cout << "training lenet (scale " << zoo.channel_scale << ", "
            << data_cfg.num_train << " images, " << train_cfg.epochs
            << " epochs)...\n";
  nn::train(*net, split.train, train_cfg);

  std::vector<serve::TierSpec> tiers = serve::default_tier_lattice();
  serve::derive_tier_costs(*net, nn::input_shape_for("lenet"), &tiers);
  const Tensor calibration = data::batch_images(split.train, 0, 64);
  serve::ReplicaPool pool(*net, calibration, tiers);

  // Sustainable full-precision service rate: one image every
  // `sustain` ticks through the float tier at the default batch size.
  const serve::Tick ticks0 = tiers[0].ticks_per_image;
  const serve::Tick sustain = ticks0 + tiers[0].batch_overhead_ticks / 8;
  std::cout << "tier costs:";
  for (const auto& t : tiers) {
    std::cout << "  " << t.name << "=" << t.ticks_per_image << " ticks, "
              << fmt("%.2f", t.energy_per_image_uj) << " uJ/img;";
  }
  std::cout << "\n\n";

  const std::vector<double> rates = fast ? std::vector<double>{1.0, 2.0}
                                         : std::vector<double>{0.5, 1.0, 2.0};
  const std::vector<serve::Tick> windows{0, 4 * sustain};
  const std::vector<serve::AdmissionPolicy> policies{
      serve::AdmissionPolicy::kDegrade, serve::AdmissionPolicy::kRejectOnly,
      serve::AdmissionPolicy::kNoAdmission};
  const std::int64_t num_requests = fast ? 150 : 400;
  const serve::Tick deadline = 12 * sustain;

  // Payloads are test-set images, so "accuracy proxy" is real top-1 on
  // whatever subset each policy managed to serve.
  const auto payload = [&split](const serve::TraceRequest& tr,
                                const Shape&) {
    const std::int64_t idx = tr.id % split.test.images.shape()[0];
    return data::batch_images(split.test, idx, 1);
  };

  Table table({"Rate", "Window", "Policy", "Served", "In-deadline",
               "Rejected", "Expired", "p50", "p99", "uJ/req", "Top-1%"});
  std::vector<SweepRow> rows;
  for (double rate : rates) {
    serve::OpenLoopSpec spec;
    spec.num_requests = num_requests;
    spec.mean_interarrival_ticks = static_cast<double>(sustain) / rate;
    spec.relative_deadline_ticks = deadline;
    spec.seed = 20260807;
    // The trace depends only on the rate: every window x policy cell at
    // a given rate replays the IDENTICAL arrivals and payloads.
    const serve::ArrivalTrace trace = serve::make_open_loop_trace(
        spec, {1, 28, 28});
    for (serve::Tick window : windows) {
      for (serve::AdmissionPolicy policy : policies) {
        serve::ServerConfig cfg;
        cfg.queue_capacity = 32;
        cfg.batcher.max_batch = 8;
        cfg.batcher.batch_window = window;
        cfg.controller.high_depth_fraction = 0.5;
        cfg.controller.low_depth_fraction = 0.125;
        cfg.controller.p99_high_ticks = deadline / 2;
        cfg.controller.p99_low_ticks = deadline / 4;
        cfg.controller.dwell_ticks = 4 * sustain;
        cfg.policy = policy;
        cfg.payload = payload;
        serve::Server server(pool, cfg);
        const serve::ServeResult result = server.run_trace(trace);

        SweepRow row;
        row.rate = rate;
        row.window = window;
        row.policy = policy;
        row.stats = result.stats;
        row.digest = result.digest();
        std::int64_t correct = 0;
        for (const serve::Response& resp : result.responses) {
          const std::size_t idx = static_cast<std::size_t>(
              resp.id % split.test.images.shape()[0]);
          if (resp.predicted == split.test.labels[idx]) ++correct;
        }
        row.accuracy_proxy =
            result.responses.empty()
                ? 0.0
                : 100.0 * static_cast<double>(correct) /
                      static_cast<double>(result.responses.size());
        row.energy_per_request_uj =
            row.stats.served == 0
                ? 0.0
                : row.stats.total_energy_uj /
                      static_cast<double>(row.stats.served);
        row.served_per_mtick =
            row.stats.end_tick == 0
                ? 0.0
                : 1e6 * static_cast<double>(row.stats.served) /
                      static_cast<double>(row.stats.end_tick);
        rows.push_back(row);

        table.add_row(
            {fmt("%.1fx", rate), std::to_string(window),
             serve::admission_policy_name(policy),
             std::to_string(row.stats.served),
             std::to_string(row.stats.served_within_deadline),
             std::to_string(row.stats.rejected_full +
                            row.stats.rejected_expired +
                            row.stats.rejected_shutdown),
             std::to_string(row.stats.expired_in_queue),
             std::to_string(
                 static_cast<std::int64_t>(row.stats.p50_latency_ticks)),
             std::to_string(
                 static_cast<std::int64_t>(row.stats.p99_latency_ticks)),
             fmt("%.2f", row.energy_per_request_uj),
             fmt("%.1f", row.accuracy_proxy)});
      }
      table.add_separator();
    }
  }
  std::cout << table.to_string();

  // Acceptance check (ISSUE criterion): at every >= 2x overload cell the
  // degrade policy must serve strictly more within-deadline requests
  // than both baselines.
  bool accepted = true;
  for (double rate : rates) {
    if (rate < 2.0) continue;
    for (serve::Tick window : windows) {
      std::int64_t degrade = -1, reject = -1, noadm = -1;
      for (const SweepRow& r : rows) {
        if (r.rate != rate || r.window != window) continue;
        const std::int64_t in = r.stats.served_within_deadline;
        if (r.policy == serve::AdmissionPolicy::kDegrade) degrade = in;
        if (r.policy == serve::AdmissionPolicy::kRejectOnly) reject = in;
        if (r.policy == serve::AdmissionPolicy::kNoAdmission) noadm = in;
      }
      const bool ok = degrade > reject && degrade > noadm;
      accepted = accepted && ok;
      std::cout << (ok ? "PASS" : "FAIL") << ": rate " << fmt("%.1fx", rate)
                << " window " << window << " — degrade " << degrade
                << " in-deadline vs reject-only " << reject
                << " vs no-admission " << noadm << "\n";
    }
  }

  json::Value doc = json::Value::object();
  doc.set("version", json::Value("qnn.bench_serve/1"));
  doc.set("network", json::Value("lenet"));
  doc.set("channel_scale", json::Value(zoo.channel_scale));
  doc.set("num_requests", json::Value(num_requests));
  doc.set("sustainable_ticks_per_image", json::Value(sustain));
  doc.set("deadline_ticks", json::Value(deadline));
  doc.set("overload_acceptance", json::Value(accepted));
  json::Value jrows = json::Value::array();
  for (const SweepRow& r : rows) jrows.push_back(row_to_json(r));
  doc.set("rows", std::move(jrows));
  write_file_atomic("BENCH_serve.json", doc.dump());
  std::cout << "\nwrote BENCH_serve.json (" << rows.size() << " cells), "
            << "overload acceptance: " << (accepted ? "PASS" : "FAIL")
            << "\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("serve_loadgen", &argc, argv);
  qnn::run();
  return 0;
}
