// Google-benchmark microbenchmarks of the performance-critical kernels:
// GEMM, im2col, quantizer application, full network forward, range
// analysis, and the (pure-arithmetic) hardware model evaluation.
//
// After the google-benchmark suite runs, main() times a few headline
// workloads serially (1 thread) and on the full pool and writes the
// comparison to BENCH_micro.json in the working directory. Each phase's
// per-rep wall times also feed "phase.<name>.{serial,threads}_us"
// histograms in the metrics registry, summarized in the JSON under
// "phases". Run with --trace/--report (bench::Session) for a
// chrome://tracing profile and a RunReport.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "exp/sweep.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "obs/metrics.h"
#include "protect/protected_network.h"
#include "quant/qnetwork.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/int_gemm.h"
#include "tensor/microkernel.h"
#include "util/fileio.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace qnn {
namespace {

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a(Shape{n, n}), b(Shape{n, n}), c(Shape{n, n});
  a.fill_uniform(rng, -1, 1);
  b.fill_uniform(rng, -1, 1);
  for (auto _ : state) {
    gemm(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Same GEMM pinned to each dispatch level — the vector-path speedup at
// a glance (BM_Gemm above runs whatever QNN_SIMD/CPUID resolves to).
void BM_GemmAvx2(benchmark::State& state) {
  if (simd_support() != SimdLevel::kAvx2) {
    state.SkipWithError("no AVX2 on this machine");
    return;
  }
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a(Shape{n, n}), b(Shape{n, n}), c(Shape{n, n});
  a.fill_uniform(rng, -1, 1);
  b.fill_uniform(rng, -1, 1);
  ScopedSimdLevel force(SimdLevel::kAvx2);
  for (auto _ : state) {
    gemm(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmAvx2)->Arg(256);

void BM_GemmScalar(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a(Shape{n, n}), b(Shape{n, n}), c(Shape{n, n});
  a.fill_uniform(rng, -1, 1);
  b.fill_uniform(rng, -1, 1);
  ScopedSimdLevel force(SimdLevel::kScalar);
  for (auto _ : state) {
    gemm(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmScalar)->Arg(256);

// Native integer GEMM (dot-product layout), int8 and int16 words.
template <typename WordT>
void int_gemm_bench(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<WordT> a(static_cast<std::size_t>(n * n), WordT{3});
  std::vector<WordT> b(static_cast<std::size_t>(n * n), WordT{-5});
  std::vector<std::int64_t> c(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    int_gemm_bt(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
void BM_IntGemm8(benchmark::State& state) { int_gemm_bench<std::int8_t>(state); }
void BM_IntGemm16(benchmark::State& state) {
  int_gemm_bench<std::int16_t>(state);
}
BENCHMARK(BM_IntGemm8)->Arg(256);
BENCHMARK(BM_IntGemm16)->Arg(256);

void BM_GemmTallK(benchmark::State& state) {
  // Inner-product forward shape: batch rows M too small to fill the
  // pool, reduction K spanning many chunks — the K-parallel schedule's
  // target case (DESIGN.md §9). B is stored [N, K] as InnerProduct
  // stores weights; the hoisted scratch keeps the transpose and the
  // chunk partials across iterations, as the layer does.
  const std::int64_t m = 8, n = 512, k = state.range(0);
  Rng rng(7);
  Tensor a(Shape{m, k}), b(Shape{n, k}), c(Shape{m, n});
  a.fill_uniform(rng, -1, 1);
  b.fill_uniform(rng, -1, 1);
  GemmScratch scratch;
  for (auto _ : state) {
    gemm_bt(m, n, k, a.data(), b.data(), c.data(), &scratch);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * n * k);
}
BENCHMARK(BM_GemmTallK)->Arg(2048)->Arg(8192);

void BM_Im2col(benchmark::State& state) {
  ConvGeometry g;
  g.in_c = 32;
  g.in_h = g.in_w = 32;
  g.kernel_h = g.kernel_w = 5;
  g.pad_h = g.pad_w = 2;
  Rng rng(2);
  Tensor img(Shape{1, g.in_c, g.in_h, g.in_w});
  img.fill_uniform(rng, -1, 1);
  std::vector<float> cols(
      static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  for (auto _ : state) {
    im2col(g, img.data(), cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_QuantizeFixed(benchmark::State& state) {
  quant::FixedQuantizer q(static_cast<int>(state.range(0)));
  q.calibrate(1.0);
  Rng rng(3);
  Tensor t(Shape{1 << 16});
  t.fill_uniform(rng, -1, 1);
  for (auto _ : state) {
    Tensor copy = t;
    q.apply(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * t.count());
}
BENCHMARK(BM_QuantizeFixed)->Arg(4)->Arg(8)->Arg(16);

void BM_QuantizePow2(benchmark::State& state) {
  quant::Pow2Quantizer q(6);
  q.calibrate(1.0);
  Rng rng(4);
  Tensor t(Shape{1 << 16});
  t.fill_uniform(rng, -1, 1);
  for (auto _ : state) {
    Tensor copy = t;
    q.apply(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * t.count());
}
BENCHMARK(BM_QuantizePow2);

void BM_LenetForward(benchmark::State& state) {
  auto net = nn::make_lenet();
  Rng rng(5);
  Tensor batch(Shape{8, 1, 28, 28});
  batch.fill_uniform(rng, 0, 1);
  for (auto _ : state) {
    Tensor out = net->forward(batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_LenetForward);

void BM_QuantizedLenetForward(benchmark::State& state) {
  auto net = nn::make_lenet();
  quant::QuantizedNetwork qnet(*net, quant::fixed_config(8, 8));
  Rng rng(6);
  Tensor batch(Shape{8, 1, 28, 28});
  batch.fill_uniform(rng, 0, 1);
  qnet.calibrate(batch);
  for (auto _ : state) {
    Tensor out = qnet.forward(batch);
    benchmark::DoNotOptimize(out.data());
  }
  qnet.restore_masters();
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_QuantizedLenetForward);

void BM_AcceleratorModel(benchmark::State& state) {
  for (auto _ : state) {
    hw::AcceleratorConfig cfg;
    cfg.precision = quant::fixed_config(16, 16);
    hw::Accelerator acc(cfg);
    benchmark::DoNotOptimize(acc.area_mm2());
  }
}
BENCHMARK(BM_AcceleratorModel);

void BM_ScheduleAlexPlusPlus(benchmark::State& state) {
  auto net = nn::make_alex_plus_plus();
  const auto descs = net->describe(Shape{1, 3, 32, 32});
  hw::AcceleratorConfig cfg;
  cfg.precision = quant::fixed_config(16, 16);
  const hw::Accelerator acc(cfg);
  for (auto _ : state) {
    auto sched = hw::schedule_network(descs, acc);
    benchmark::DoNotOptimize(sched.total_cycles);
  }
}
BENCHMARK(BM_ScheduleAlexPlusPlus);

void BM_SyntheticCifarGeneration(benchmark::State& state) {
  for (auto _ : state) {
    data::SyntheticConfig cfg;
    cfg.num_train = 64;
    cfg.num_test = 1;
    auto split = data::make_cifar_like(cfg);
    benchmark::DoNotOptimize(split.train.images.data());
  }
  state.SetItemsProcessed(state.iterations() * 65);
}
BENCHMARK(BM_SyntheticCifarGeneration);

// --- serial vs N-thread scaling report ---------------------------------

// Wall-time histogram bounds: 1 µs .. ~4.2 s in powers of two.
std::vector<std::int64_t> phase_bounds() {
  return obs::exponential_bounds(std::int64_t{1} << 22);
}

// Best-of-`reps` wall time of fn() in milliseconds (one warm-up call).
// Every timed rep (warm-up excluded) is also observed into `hist` so
// the report captures the rep-to-rep spread, not just the best.
template <typename F>
double best_of_ms(int reps, obs::Histogram hist, F&& fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    const double ms = sw.millis();
    hist.observe(static_cast<std::int64_t>(ms * 1000.0));
    best = std::min(best, ms);
  }
  return best;
}

struct ScalingRow {
  std::string name;
  // Rows large enough that parallel execution must win; --min-speedup
  // gates on these (the protected workload is dominated by ABFT
  // checksum verification, not the sharded kernels, so it reports but
  // does not gate).
  bool gated = false;
  double serial_ms = 0;
  double parallel_ms = 0;
  double speedup() const {
    return parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;
  }
};

// SIMD dispatch rows (DESIGN.md §15): the same kernel timed at both
// QNN_SIMD levels, single-threaded so the ratio isolates the microkernel
// rather than the scheduler. `speedup` is baseline_ms / candidate_ms;
// gated rows must clear --min-speedup when AVX2 exists (the vector
// float path and the native int8 path must both beat scalar float).
struct SimdRow {
  std::string name;
  bool gated = false;
  double baseline_ms = 0;   // scalar float reference
  double candidate_ms = 0;  // vector / native-int candidate
  double speedup() const {
    return candidate_ms > 0 ? baseline_ms / candidate_ms : 0.0;
  }
};

std::vector<SimdRow> time_simd_rows(obs::Registry& reg) {
  const std::int64_t n = 384;
  Rng rng(1);
  Tensor a(Shape{n, n}), b(Shape{n, n}), c(Shape{n, n});
  a.fill_uniform(rng, -1, 1);
  b.fill_uniform(rng, -1, 1);
  GemmScratch scratch;
  std::vector<std::int8_t> a8(static_cast<std::size_t>(n * n), 3);
  std::vector<std::int8_t> b8(static_cast<std::size_t>(n * n), -5);
  std::vector<std::int16_t> a16(static_cast<std::size_t>(n * n), 3);
  std::vector<std::int16_t> b16(static_cast<std::size_t>(n * n), -5);
  std::vector<std::int64_t> ci(static_cast<std::size_t>(n * n));

  const bool avx2 = simd_support() == SimdLevel::kAvx2;
  const auto hist = [&](const std::string& name) {
    return reg.histogram("phase.simd." + name + "_us", phase_bounds());
  };
  const auto time_at = [&](SimdLevel level, const std::string& name,
                           const std::function<void()>& fn) {
    ScopedSimdLevel force(level);
    return best_of_ms(3, hist(name), fn);
  };
  const auto f32 = [&] {
    gemm(n, n, n, a.data(), b.data(), c.data(), &scratch);
  };
  const double scalar_f32 = time_at(SimdLevel::kScalar, "gemm_scalar", f32);

  std::vector<SimdRow> rows;
  {
    SimdRow row{"gemm_f32_avx2_vs_scalar", avx2, scalar_f32, 0};
    if (avx2)
      row.candidate_ms = time_at(SimdLevel::kAvx2, "gemm_avx2", f32);
    rows.push_back(row);
  }
  const SimdLevel native = avx2 ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  {
    SimdRow row{"int8_gemm_vs_scalar_f32", avx2, scalar_f32, 0};
    row.candidate_ms = time_at(native, "int8_gemm", [&] {
      int_gemm_bt(n, n, n, a8.data(), b8.data(), ci.data());
    });
    rows.push_back(row);
  }
  {
    // Report-only: int16 halves the lanes, so beating scalar float is
    // not guaranteed on every core.
    SimdRow row{"int16_gemm_vs_scalar_f32", false, scalar_f32, 0};
    row.candidate_ms = time_at(native, "int16_gemm", [&] {
      int_gemm_bt(n, n, n, a16.data(), b16.data(), ci.data());
    });
    rows.push_back(row);
  }
  return rows;
}

// Times each workload with a 1-thread pool and with the environment's
// pool (QNN_THREADS or hardware_concurrency) and writes BENCH_micro.json.
// The workloads are the thread-pool's sharding layers — raw GEMM
// (M-row sharding), a tall-K inner-product GEMM (K-chunk sharding), a
// network forward (batch sharding inside every layer), and a quantized
// evaluation (batch sharding plus guard scans) — plus an ABFT-protected
// evaluation, so a --trace run profiles the checksum/verify path too.
int write_scaling_report(bench::Session& session, double min_speedup) {
  const int threads = ThreadPool::env_threads();

  Rng rng(1);
  const std::int64_t n = 384;
  Tensor a(Shape{n, n}), b(Shape{n, n}), c(Shape{n, n});
  a.fill_uniform(rng, -1, 1);
  b.fill_uniform(rng, -1, 1);
  GemmScratch scratch;

  // Tall-K inner-product shape: M (batch) too small to occupy the pool,
  // so only the K-parallel schedule can use the extra threads. B stored
  // [N, K] as InnerProduct stores weights; scratch hoisted like the
  // layer's.
  const std::int64_t tm = 8, tn = 512, tk = 8192;
  Tensor ta(Shape{tm, tk}), tb(Shape{tn, tk}), tc(Shape{tm, tn});
  ta.fill_uniform(rng, -1, 1);
  tb.fill_uniform(rng, -1, 1);
  GemmScratch tscratch;

  auto net = nn::make_lenet();
  Tensor batch(Shape{32, 1, 28, 28});
  batch.fill_uniform(rng, 0, 1);

  data::SyntheticConfig dc;
  dc.num_train = 64;
  dc.num_test = 128;
  const data::Split split = data::make_mnist_like(dc);
  quant::QuantizedNetwork qnet(*net, quant::fixed_config(8, 8));
  qnet.calibrate(split.train.images);

  protect::ProtectionConfig pcfg;
  pcfg.policy = protect::ProtectionPolicy::kDetectOnly;
  protect::ProtectedNetwork pnet(qnet, pcfg);
  pnet.calibrate_envelopes(split.test.images);

  std::vector<ScalingRow> rows = {
      {"gemm_384", true, 0, 0},
      {"gemm_tallk_ip_8x512x8192", true, 0, 0},
      {"lenet_forward_b32", true, 0, 0},
      {"quantized_evaluate_128", true, 0, 0},
      {"protected_evaluate_128", false, 0, 0},
  };
  const std::vector<std::function<void()>> workloads = {
      [&] { gemm(n, n, n, a.data(), b.data(), c.data(), &scratch); },
      [&] {
        gemm_bt(tm, tn, tk, ta.data(), tb.data(), tc.data(), &tscratch);
      },
      [&] { benchmark::DoNotOptimize(net->forward(batch).data()); },
      [&] { benchmark::DoNotOptimize(nn::evaluate(qnet, split.test)); },
      [&] { benchmark::DoNotOptimize(nn::evaluate(pnet, split.test)); },
  };

  obs::Registry& reg = obs::Registry::global();
  const auto phase_hist = [&](const ScalingRow& row, const char* mode) {
    return reg.histogram("phase." + row.name + "." + mode + "_us",
                         phase_bounds());
  };

  ThreadPool::set_global_threads(1);
  for (std::size_t w = 0; w < workloads.size(); ++w)
    rows[w].serial_ms =
        best_of_ms(3, phase_hist(rows[w], "serial"), workloads[w]);
  // SIMD rows run on the 1-thread pool so the ratios isolate the
  // microkernel dispatch from the scheduler.
  const std::vector<SimdRow> simd_rows = time_simd_rows(reg);
  ThreadPool::set_global_threads(threads);
  for (std::size_t w = 0; w < workloads.size(); ++w)
    rows[w].parallel_ms =
        threads > 1
            ? best_of_ms(3, phase_hist(rows[w], "threads"), workloads[w])
            : rows[w].serial_ms;
  qnet.restore_masters();

  // Fold the per-phase histograms into the document. The pre-existing
  // schema ("threads" + "workloads") is untouched; "phases" is additive.
  const obs::Snapshot snap = reg.snapshot();
  json::Value phases = json::Value::array();
  for (const obs::MetricSnapshot& m : snap.metrics)
    if (m.name.rfind("phase.", 0) == 0) phases.push_back(m.to_json());

  json::Value doc = json::Value::object();
  doc.set("threads", threads);
  // Scheduling/grain parameters of this build, so runs of different
  // binaries (or future tunings) stay comparable.
  json::Value params = json::Value::object();
  params.set("hardware_concurrency",
             static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  params.set("reduction_shards", kReductionShards);
  params.set("min_shard_work", kMinShardWork);
  params.set("claim_factor", ThreadPool::kClaimFactor);
  params.set("claim_batch_max", ThreadPool::kClaimBatchMax);
  params.set("worker_spin_iters",
             static_cast<std::int64_t>(ThreadPool::global().spin_iterations()));
  params.set("gemm_block_m", kGemmBlockM);
  params.set("gemm_k_chunk", kGemmKChunk);
  params.set("simd_support", simd_level_name(simd_support()));
  params.set("simd_active", simd_level_name(active_simd_level()));
  doc.set("params", std::move(params));
  json::Value arr = json::Value::array();
  for (const ScalingRow& row : rows) {
    json::Value entry = json::Value::object();
    entry.set("name", row.name);
    entry.set("gated", row.gated);
    entry.set("serial_ms", row.serial_ms);
    entry.set("threads_ms", row.parallel_ms);
    entry.set("speedup", row.speedup());
    arr.push_back(std::move(entry));
  }
  doc.set("workloads", std::move(arr));
  json::Value simd_arr = json::Value::array();
  for (const SimdRow& row : simd_rows) {
    json::Value entry = json::Value::object();
    entry.set("name", row.name);
    entry.set("gated", row.gated);
    entry.set("scalar_f32_ms", row.baseline_ms);
    entry.set("candidate_ms", row.candidate_ms);
    entry.set("speedup", row.speedup());
    simd_arr.push_back(std::move(entry));
  }
  doc.set("simd", std::move(simd_arr));
  doc.set("phases", std::move(phases));
  write_file_atomic("BENCH_micro.json", doc.dump() + "\n");

  session.report().add_guards("guards", qnet.total_guards());
  session.report().add_protection("protection", pnet.counters());

  std::cout << "\nThread scaling (1 vs " << threads << " threads):\n";
  for (const ScalingRow& row : rows)
    std::cout << "  " << row.name << ": " << row.serial_ms << " ms -> "
              << row.parallel_ms << " ms (" << row.speedup() << "x)\n";
  std::cout << "SIMD dispatch (" << simd_level_name(simd_support())
            << " vs scalar, 1 thread):\n";
  for (const SimdRow& row : simd_rows)
    std::cout << "  " << row.name << ": " << row.baseline_ms << " ms -> "
              << row.candidate_ms << " ms (" << row.speedup() << "x)\n";
  std::cout << "wrote BENCH_micro.json\n";

  // --min-speedup gate: every gated (large) workload must clear the
  // bar, so a scheduling regression fails CI instead of shipping.
  if (min_speedup <= 0.0) return 0;

  // SIMD rows gate independently of the core count: the vector float
  // kernel and the native int8 kernel must beat scalar float whenever
  // the CPU has AVX2 at all (rows are ungated on scalar-only hardware).
  int simd_failures = 0;
  for (const SimdRow& row : simd_rows) {
    if (!row.gated) continue;
    if (row.speedup() < min_speedup) {
      std::cerr << "FAIL " << row.name << ": speedup " << row.speedup()
                << " < required " << min_speedup << "\n";
      ++simd_failures;
    }
  }
  if (threads <= 1) {
    std::cout << "min-speedup gate skipped for thread scaling: pool has "
              << threads << " thread(s); scaling is undefined\n";
    return simd_failures == 0 ? 0 : 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2) {
    // One core cannot speed anything up; the pool degrades to the
    // inline serial path and the expected result is parity, not a
    // ratio above 1. Report but don't gate.
    std::cout << "min-speedup gate skipped for thread scaling: "
              << "hardware_concurrency=" << hw
              << "; expected 4-thread result is parity with serial\n";
    return simd_failures == 0 ? 0 : 1;
  }
  int failures = simd_failures;
  for (const ScalingRow& row : rows) {
    if (!row.gated) continue;
    if (row.speedup() < min_speedup) {
      std::cerr << "FAIL " << row.name << ": speedup " << row.speedup()
                << " < required " << min_speedup << "\n";
      ++failures;
    }
  }
  if (failures == 0)
    std::cout << "min-speedup gate passed (>= " << min_speedup
              << "x on all gated workloads)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  // Strip --trace/--report before benchmark::Initialize sees argv.
  qnn::bench::Session session("micro_bench", &argc, argv);
  // Strip --min-speedup <x> the same way: when set and any gated
  // workload scales below x, exit nonzero (the CI perf gate).
  double min_speedup = 0.0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--min-speedup") {
      if (i + 1 >= argc) {
        std::cerr << "--min-speedup requires a value\n";
        return 2;
      }
      min_speedup = std::atof(argv[++i]);
      if (min_speedup <= 0.0) {
        std::cerr << "--min-speedup wants a positive ratio, got "
                  << argv[i] << "\n";
        return 2;
      }
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return qnn::write_scaling_report(session, min_speedup);
}
