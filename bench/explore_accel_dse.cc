// Design-space exploration of the accelerator geometry (beyond the
// paper, enabled by the analytical model): sweeps the Tn×Ts tile size
// and buffer depths at fixed precision, reporting area, power, LeNet
// runtime, energy, and the energy-delay product — showing where the
// paper's 16×16 @ 64-entry choice sits in its neighborhood. No training.
#include <iostream>

#include "bench_common.h"
#include "hw/schedule.h"

namespace qnn {
namespace {

void run() {
  bench::print_header(
      "Accelerator design-space exploration (fixed(16,16), LeNet)");

  auto net = nn::make_lenet();
  const auto descs = net->describe(Shape{1, 1, 28, 28});

  Table t({"Tn x Ts", "Sb entries", "Area mm^2", "Power mW", "Runtime us",
           "Energy uJ", "EDP uJ*us"});
  for (const int tiles : {8, 16, 32}) {
    for (const int entries : {32, 64, 128}) {
      hw::AcceleratorConfig cfg;
      cfg.precision = quant::fixed_config(16, 16);
      cfg.neurons = tiles;
      cfg.synapses_per_neuron = tiles;
      cfg.bin_entries = entries;
      cfg.bout_entries = entries;
      cfg.sb_entries = entries;
      const hw::Accelerator acc(cfg);
      const auto sched = hw::schedule_network(descs, acc);
      const double us = sched.runtime_us(acc);
      const double uj = sched.energy_uj(acc);
      t.add_row({std::to_string(tiles) + "x" + std::to_string(tiles),
                 std::to_string(entries), format_fixed(acc.area_mm2(), 2),
                 format_fixed(acc.power_mw(), 1), format_fixed(us, 1),
                 format_fixed(uj, 2), format_fixed(uj * us, 1)});
    }
  }
  std::cout << t.to_string();
  std::cout << "\nReading: larger tiles trade area/power for runtime; "
               "buffer depth moves cost without touching runtime (the "
               "schedule is compute-bound at infinite DMA bandwidth). "
               "The paper's 16x16 / 64-entry design is near the EDP "
               "knee for LeNet-class workloads.\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("explore_accel_dse", &argc, argv);
  qnn::run();
  return 0;
}
