// Accuracy under transient bit upsets, per precision × protection
// policy: trains the MNIST testcase once, QAT-tunes every paper
// precision, then runs an N-trial fault-injection campaign (src/faults)
// at several bit-error rates under each fault-tolerance policy
// (src/protect). Every policy sees the identical fault stream (the
// injection seeds ignore the policy), so the table isolates what the
// protection layer buys:
//
//   detect       counts envelope violations but changes nothing — it is
//                numerically the unprotected baseline;
//   clamp        pulls out-of-envelope activations back into the
//                calibrated range;
//   retry+clamp  scrubs the offending layer's weights from the masters
//                and re-executes it (fresh fault draws for weights,
//                accumulators, and feature maps); when every draw
//                violates, the draws are voted down to their
//                elementwise median before clamping the rest. Coarse
//                data paths (≤ 4 bits), where range detection is
//                structurally blind, vote every layer unconditionally.
//
// The recovery summary quantifies the headline claim: at the highest
// bit-error rate, retry+clamp recovers at least half of the accuracy
// the fixed-point points lose to faults.
//
// The sweep checkpoints itself into fault_resilience.ckpt after every
// precision point — kill the binary mid-run and a re-run resumes from
// the last completed point with byte-identical results.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/csv.h"
#include "util/stopwatch.h"

namespace qnn {
namespace {

std::string format_rate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", rate);
  return buf;
}

exp::ExperimentSpec spec_for(double scale) {
  exp::ExperimentSpec s;
  s.network = "lenet";
  s.dataset = "mnist";
  s.channel_scale = 0.5;
  s.data.num_train = static_cast<std::int64_t>(2000 * scale);
  s.data.num_test = 500;
  s.float_train.epochs = 6;
  s.float_train.batch_size = 32;
  s.float_train.sgd.learning_rate = 0.05;
  s.float_train.sgd.step_epochs = 4;
  s.qat_train = s.float_train;
  s.qat_train.epochs = 2;
  s.qat_train.sgd.learning_rate = 0.01;
  return s;
}

bool is_fixed_point(const quant::PrecisionConfig& p) {
  return p.id().rfind("fixed", 0) == 0;
}

void run() {
  const double scale = bench::fast_mode() ? 0.25 : bench::bench_scale();
  bench::print_header(
      "Fault resilience — accuracy vs. bit-error rate per precision and "
      "protection policy");

  // The paper's storage formats; fixed4 and pow2/binary stress the
  // narrow-encoding end where each flipped bit carries more value.
  const std::vector<quant::PrecisionConfig> precisions{
      quant::float_config(),    quant::fixed_config(16, 16),
      quant::fixed_config(8, 8), quant::fixed_config(4, 4),
      quant::pow2_config(6, 16), quant::binary_config(16)};

  exp::SweepOptions options;
  options.checkpoint_path = "fault_resilience.ckpt";
  options.faults.trials = bench::fast_mode() ? 3 : 6;
  options.faults.bit_error_rates = {1e-5, 1e-4, 1e-3};
  options.faults.policies = {protect::ProtectionPolicy::kDetectOnly,
                             protect::ProtectionPolicy::kClamp,
                             protect::ProtectionPolicy::kRetryClamp};
  const auto& rates = options.faults.bit_error_rates;
  const auto& policies = options.faults.policies;

  Stopwatch total;
  const auto result =
      exp::run_precision_sweep(spec_for(scale), precisions, 0.0, options);

  std::vector<std::string> header{"Precision (w,in)", "Policy",
                                  "Clean acc.%"};
  for (double r : rates) header.push_back("BER " + format_rate(r));
  header.push_back("Clamped");
  header.push_back("Retries");

  Table t(header);
  CsvWriter csv("fault_resilience.csv",
                {"precision", "policy", "bit_error_rate", "trials",
                 "failed_trials", "mean_accuracy", "min_accuracy",
                 "total_flips", "clean_accuracy", "values_inspected",
                 "out_of_envelope", "clamped", "layer_retries",
                 "degraded_forwards", "abft_blocks", "abft_mismatches",
                 "abft_reexecutions", "abft_unrecovered"});
  for (const auto& p : result.points) {
    // fault_campaigns is ordered rate-major, policy-minor; regroup into
    // one table row per policy with one column per rate.
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const char* pname = protect::policy_name(policies[pi]);
      std::vector<std::string> row{
          pi == 0 ? p.precision.label() : std::string(), pname,
          pi == 0 ? format_percent(p.accuracy) : std::string()};
      std::int64_t clamped = 0, retries = 0;
      for (std::size_t ri = 0; ri < rates.size(); ++ri) {
        const std::size_t idx = ri * policies.size() + pi;
        if (idx >= p.fault_campaigns.size()) {
          row.push_back("-");
          continue;
        }
        const auto& fc = p.fault_campaigns[idx];
        row.push_back(format_percent(fc.mean_accuracy));
        clamped += fc.protection.clamped;
        retries += fc.protection.layer_retries;
        csv.add_row({p.precision.id(), pname,
                     format_rate(fc.bit_error_rate),
                     std::to_string(fc.trials),
                     std::to_string(fc.failed_trials),
                     format_percent(fc.mean_accuracy),
                     format_percent(fc.min_accuracy),
                     std::to_string(fc.total_flips),
                     format_percent(p.accuracy),
                     std::to_string(fc.protection.values),
                     std::to_string(fc.protection.out_of_envelope),
                     std::to_string(fc.protection.clamped),
                     std::to_string(fc.protection.layer_retries),
                     std::to_string(fc.protection.degraded_forwards),
                     std::to_string(fc.protection.abft.blocks_checked),
                     std::to_string(fc.protection.abft.mismatches),
                     std::to_string(fc.protection.abft.reexecutions),
                     std::to_string(fc.protection.abft.unrecovered)});
      }
      row.push_back(std::to_string(clamped));
      row.push_back(std::to_string(retries));
      t.add_row(std::move(row));
    }
    t.add_separator();
  }
  std::cout << t.to_string() << '\n';

  // Recovery summary at the highest bit-error rate: fraction of the
  // fault-induced accuracy loss that retry+clamp wins back relative to
  // the detect-only (= unprotected) baseline.
  const double top_rate = rates.back();
  std::cout << "Recovery at BER " << format_rate(top_rate)
            << " — (acc[retry+clamp] - acc[detect]) / (acc[clean] - "
               "acc[detect]):\n";
  for (const auto& p : result.points) {
    double detect_acc = 0.0, retry_acc = 0.0;
    bool found = false;
    for (const auto& fc : p.fault_campaigns) {
      if (fc.bit_error_rate != top_rate) continue;
      if (fc.policy == protect::ProtectionPolicy::kDetectOnly)
        detect_acc = fc.mean_accuracy;
      if (fc.policy == protect::ProtectionPolicy::kRetryClamp) {
        retry_acc = fc.mean_accuracy;
        found = true;
      }
    }
    if (!found) continue;
    const double lost = p.accuracy - detect_acc;
    std::cout << "  " << p.precision.label() << ": ";
    if (lost <= 0.0) {
      std::cout << "no loss to recover (clean "
                << format_percent(p.accuracy) << "%, faulty "
                << format_percent(detect_acc) << "%)\n";
      continue;
    }
    const double recovery = (retry_acc - detect_acc) / lost;
    std::cout << format_percent(100.0 * recovery) << "% of "
              << format_percent(lost) << " pp lost"
              << (is_fixed_point(p.precision) && recovery < 0.5
                      ? "  [below 50% target]"
                      : "")
              << '\n';
  }

  std::cout << "\nCells are mean top-1 accuracy over "
            << options.faults.trials
            << " injection trials per (precision, rate, policy); every "
               "policy replays the identical fault stream.\n"
            << "detect changes nothing (it IS the unprotected baseline); "
               "clamp pulls out-of-envelope activations back into the "
               "calibrated range; retry+clamp re-executes and votes "
               "(see DESIGN.md §10).\n"
            << "Checkpoint: fault_resilience.ckpt (re-run resumes; delete "
               "to start fresh)\n"
            << "Rows written to fault_resilience.csv\n"
            << "Total: " << format_fixed(total.seconds(), 0) << " s\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("fault_resilience", &argc, argv);
  qnn::run();
  return 0;
}
