// Accuracy under transient bit upsets, per precision: trains the MNIST
// testcase once, QAT-tunes every paper precision, then runs an N-trial
// fault-injection campaign (src/faults) at several bit-error rates per
// design point. The table shows how each storage format degrades:
// float32's exponent bits and binary's sign-only encoding are fragile,
// while mid-width fixed point degrades gracefully.
//
// The sweep checkpoints itself into fault_resilience.ckpt after every
// precision point — kill the binary mid-run and a re-run resumes from
// the last completed point with byte-identical results.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/csv.h"
#include "util/stopwatch.h"

namespace qnn {
namespace {

std::string format_rate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", rate);
  return buf;
}

exp::ExperimentSpec spec_for(double scale) {
  exp::ExperimentSpec s;
  s.network = "lenet";
  s.dataset = "mnist";
  s.channel_scale = 0.5;
  s.data.num_train = static_cast<std::int64_t>(2000 * scale);
  s.data.num_test = 500;
  s.float_train.epochs = 6;
  s.float_train.batch_size = 32;
  s.float_train.sgd.learning_rate = 0.05;
  s.float_train.sgd.step_epochs = 4;
  s.qat_train = s.float_train;
  s.qat_train.epochs = 2;
  s.qat_train.sgd.learning_rate = 0.01;
  return s;
}

void run() {
  const double scale = bench::fast_mode() ? 0.25 : bench::bench_scale();
  bench::print_header(
      "Fault resilience — accuracy vs. bit-error rate per precision");

  // The paper's storage formats; fixed4 and pow2/binary stress the
  // narrow-encoding end where each flipped bit carries more value.
  const std::vector<quant::PrecisionConfig> precisions{
      quant::float_config(),    quant::fixed_config(16, 16),
      quant::fixed_config(8, 8), quant::fixed_config(4, 4),
      quant::pow2_config(6, 16), quant::binary_config(16)};

  exp::SweepOptions options;
  options.checkpoint_path = "fault_resilience.ckpt";
  options.faults.trials = bench::fast_mode() ? 3 : 6;
  options.faults.bit_error_rates = {1e-5, 1e-4, 1e-3};
  const auto& rates = options.faults.bit_error_rates;

  Stopwatch total;
  const auto result =
      exp::run_precision_sweep(spec_for(scale), precisions, 0.0, options);

  std::vector<std::string> header{"Precision (w,in)", "Clean acc.%"};
  for (double r : rates)
    header.push_back("BER " + format_rate(r));
  header.push_back("Sat.%");
  header.push_back("NaN/Inf");

  Table t(header);
  CsvWriter csv("fault_resilience.csv",
                {"precision", "bit_error_rate", "trials", "failed_trials",
                 "mean_accuracy", "min_accuracy", "total_flips",
                 "clean_accuracy", "saturated", "nan", "inf"});
  for (const auto& p : result.points) {
    std::vector<std::string> row{p.precision.label(),
                                 format_percent(p.accuracy)};
    for (const auto& fc : p.fault_campaigns) {
      row.push_back(format_percent(fc.mean_accuracy));
      csv.add_row({p.precision.id(), format_rate(fc.bit_error_rate),
                   std::to_string(fc.trials),
                   std::to_string(fc.failed_trials),
                   format_percent(fc.mean_accuracy),
                   format_percent(fc.min_accuracy),
                   std::to_string(fc.total_flips),
                   format_percent(p.accuracy),
                   std::to_string(p.guards.saturated),
                   std::to_string(p.guards.nan),
                   std::to_string(p.guards.inf)});
    }
    for (std::size_t i = p.fault_campaigns.size(); i < rates.size(); ++i)
      row.push_back("-");
    row.push_back(format_fixed(100.0 * p.guards.saturation_rate(), 2));
    row.push_back(std::to_string(p.guards.nan + p.guards.inf));
    t.add_row(std::move(row));
  }
  std::cout << t.to_string() << '\n';

  std::cout << "Cells are mean top-1 accuracy over "
            << options.faults.trials
            << " injection trials per (precision, rate); clean column is "
               "the fault-free evaluation.\n"
            << "Sat.% / NaN-Inf are guard-rail counters from the clean "
               "pass (values clipped by the format, non-finite values "
               "reaching a quantizer).\n"
            << "Checkpoint: fault_resilience.ckpt (re-run resumes; delete "
               "to start fresh)\n"
            << "Rows written to fault_resilience.csv\n"
            << "Total: " << format_fixed(total.seconds(), 0) << " s\n";
}

}  // namespace
}  // namespace qnn

int main() {
  qnn::run();
  return 0;
}
