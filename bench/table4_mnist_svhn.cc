// Reproduces Table IV: classification accuracy, per-image inference
// energy, and energy savings on MNIST(-like) with LeNet and SVHN(-like)
// with ConvNet, for every precision.
//
// Accuracy is measured on channel-scaled networks trained on synthetic
// data (DESIGN.md §3); the energy/savings columns are computed for the
// full-size architectures, so the µJ values are directly comparable to
// the paper. Rows that fail to converge reproduce the paper's "NA" /
// chance-accuracy entries.
#include <iostream>

#include "bench_common.h"
#include "util/csv.h"
#include "util/stopwatch.h"

namespace qnn {
namespace {

struct PaperAcc {
  double acc;  // negative = the paper reports NA
  double energy;
};

PaperAcc paper_mnist(const std::string& id) {
  if (id == "float_32_32") return {99.20, 60.74};
  if (id == "fixed_32_32") return {99.22, 52.93};
  if (id == "fixed_16_16") return {99.21, 24.60};
  if (id == "fixed_8_8") return {99.22, 8.86};
  if (id == "fixed_4_4") return {95.76, 4.31};
  if (id == "pow2_6_16") return {99.14, 8.42};
  if (id == "binary_1_16") return {99.40, 3.56};
  return {0, 0};
}

PaperAcc paper_svhn(const std::string& id) {
  if (id == "float_32_32") return {86.77, 754.18};
  if (id == "fixed_32_32") return {86.78, 663.01};
  if (id == "fixed_16_16") return {86.77, 314.05};
  if (id == "fixed_8_8") return {84.03, 120.14};
  if (id == "fixed_4_4") return {-1, -1};  // NA: failed to converge
  if (id == "pow2_6_16") return {84.85, 114.70};
  if (id == "binary_1_16") return {19.57, 52.11};
  return {0, 0};
}

exp::ExperimentSpec mnist_spec(double scale) {
  exp::ExperimentSpec s;
  s.network = "lenet";
  s.dataset = "mnist";
  s.channel_scale = 0.5;
  s.data.num_train = static_cast<std::int64_t>(2500 * scale);
  s.data.num_test = 800;
  s.float_train.epochs = 6;
  s.float_train.batch_size = 32;
  s.float_train.sgd.learning_rate = 0.02;
  s.float_train.sgd.step_epochs = 3;
  s.qat_train = s.float_train;
  s.qat_train.epochs = 3;
  s.qat_train.sgd.learning_rate = 0.01;
  return s;
}

exp::ExperimentSpec svhn_spec(double scale) {
  exp::ExperimentSpec s;
  s.network = "convnet";
  s.dataset = "svhn";
  s.channel_scale = 0.4;
  s.data.num_train = static_cast<std::int64_t>(6000 * scale);
  s.data.num_test = 1000;
  s.float_train.epochs = 18;
  s.float_train.batch_size = 32;
  s.float_train.sgd.learning_rate = 0.02;
  s.float_train.sgd.step_epochs = 6;
  s.qat_train = s.float_train;
  s.qat_train.epochs = 3;
  s.qat_train.sgd.learning_rate = 0.005;
  return s;
}

void run_dataset(const std::string& title, const exp::ExperimentSpec& spec,
                 PaperAcc (*paper)(const std::string&), CsvWriter& csv) {
  bench::print_header(title);
  Stopwatch sw;
  const auto result =
      exp::run_precision_sweep(spec, quant::paper_precisions());

  // The energy baseline: full-size architecture at float precision.
  const double base_energy =
      bench::full_scale_hw(spec.network, quant::float_config()).energy_uj;

  Table t({"Precision (w,in)", "Acc.%", "[paper]", "Energy uJ", "[paper]",
           "Energy Sav.%", "[paper]"});
  for (const auto& p : result.points) {
    const auto hwm = bench::full_scale_hw(spec.network, p.precision);
    const PaperAcc pp = paper(p.precision.id());
    const std::string acc_str = p.converged
                                    ? format_percent(p.accuracy)
                                    : format_percent(p.accuracy) + " (NC)";
    const std::string paper_acc =
        pp.acc < 0 ? "NA" : format_percent(pp.acc);
    const std::string paper_energy =
        pp.energy < 0 ? "NA" : format_fixed(pp.energy, 2);
    const std::string paper_sav =
        pp.energy < 0
            ? "NA"
            : format_percent(hw::saving_percent(paper(
                  "float_32_32").energy, pp.energy));
    t.add_row({p.precision.label(), acc_str, paper_acc,
               format_fixed(hwm.energy_uj, 2), paper_energy,
               format_percent(hw::saving_percent(base_energy,
                                                 hwm.energy_uj)),
               paper_sav});
    csv.add_row({spec.dataset, p.precision.id(),
                 format_percent(p.accuracy), p.converged ? "1" : "0",
                 format_fixed(hwm.energy_uj, 3),
                 format_percent(
                     hw::saving_percent(base_energy, hwm.energy_uj))});
  }
  std::cout << t.to_string();
  std::cout << "(NC) = did not converge, the paper's NA. Accuracy from "
               "channel-scaled nets on synthetic data; energy for the "
               "full-size architecture.\n";
  std::cout << "[" << format_fixed(sw.seconds(), 0) << " s]\n";
}

void run() {
  const double scale = bench::fast_mode() ? 0.25 : bench::bench_scale();
  CsvWriter csv("table4_mnist_svhn.csv",
                {"dataset", "precision", "accuracy", "converged",
                 "energy_uj", "energy_saving"});
  {
    auto spec = mnist_spec(scale);
    run_dataset("Table IV (MNIST-like, LeNet)", spec, paper_mnist, csv);
  }
  {
    auto spec = svhn_spec(scale);
    run_dataset("Table IV (SVHN-like, ConvNet)", spec, paper_svhn, csv);
  }
  std::cout << "\nRows written to table4_mnist_svhn.csv\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("table4_mnist_svhn", &argc, argv);
  qnn::run();
  return 0;
}
