// Reproduces Fig. 4: the accuracy-vs-energy Pareto frontier on the
// CIFAR-like testcase across all {network} × {precision} design points.
// The paper's claim: larger lower-precision networks (green/red points)
// dominate the full-precision baseline (black point) in both axes.
//
// Training budget here is reduced relative to bench/table5 (the figure
// needs relative positions, not peak accuracy); the CSV output can be
// re-plotted directly.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "util/csv.h"
#include "util/stopwatch.h"

namespace qnn {
namespace {

struct Point {
  std::string network;
  quant::PrecisionConfig precision;
  double accuracy;
  bool converged;
  double energy_uj;
};

exp::ExperimentSpec spec_for(const std::string& network, double scale) {
  exp::ExperimentSpec s;
  s.network = network;
  s.dataset = "cifar";
  s.channel_scale = 0.4;
  s.data.num_train = static_cast<std::int64_t>(2200 * scale);
  s.data.num_test = 800;
  s.float_train.epochs = network == "alex" ? 16 : 10;
  s.float_train.batch_size = 32;
  s.float_train.sgd.learning_rate = 0.02;
  s.float_train.sgd.step_epochs = 8;
  s.qat_train = s.float_train;
  s.qat_train.epochs = 2;
  s.qat_train.sgd.learning_rate = 0.005;
  return s;
}

void run() {
  const double scale = bench::fast_mode() ? 0.25 : bench::bench_scale();
  bench::print_header("Figure 4 — Pareto frontier, CIFAR-like testcase");

  const std::vector<quant::PrecisionConfig> precisions{
      quant::float_config(), quant::fixed_config(16, 16),
      quant::fixed_config(8, 8), quant::pow2_config(6, 16),
      quant::binary_config(16)};

  std::vector<Point> points;
  Stopwatch total;
  for (const std::string network : {"alex", "alex+", "alex++"}) {
    const auto result =
        exp::run_precision_sweep(spec_for(network, scale), precisions);
    for (const auto& p : result.points) {
      points.push_back({network, p.precision, p.accuracy, p.converged,
                        bench::full_scale_hw(network, p.precision)
                            .energy_uj});
    }
  }

  CsvWriter csv("fig4_pareto.csv",
                {"network", "precision", "energy_uj", "accuracy",
                 "converged", "pareto_optimal"});
  // Pareto: no other converged point has both lower energy and higher
  // accuracy.
  auto dominated = [&](const Point& a) {
    return std::any_of(points.begin(), points.end(), [&](const Point& b) {
      return b.converged && b.energy_uj < a.energy_uj &&
             b.accuracy > a.accuracy;
    });
  };

  Table t({"Network", "Precision (w,in)", "Energy uJ", "Acc.%",
           "Pareto-optimal"});
  const Point* baseline = nullptr;
  for (const auto& p : points)
    if (p.network == "alex" && p.precision.is_float()) baseline = &p;
  for (const auto& p : points) {
    const bool optimal = p.converged && !dominated(p);
    t.add_row({p.network, p.precision.label(),
               format_fixed(p.energy_uj, 2),
               p.converged ? format_percent(p.accuracy)
                           : format_percent(p.accuracy) + " (NC)",
               optimal ? "yes" : ""});
    csv.add_row({p.network, p.precision.id(),
                 format_fixed(p.energy_uj, 3), format_percent(p.accuracy),
                 p.converged ? "1" : "0", optimal ? "1" : "0"});
  }
  std::cout << t.to_string() << '\n';

  if (baseline != nullptr) {
    int dominators = 0;
    for (const auto& p : points)
      if (p.converged && &p != baseline && p.energy_uj < baseline->energy_uj &&
          p.accuracy >= baseline->accuracy)
        ++dominators;
    std::cout << "Design points dominating the full-precision ALEX "
                 "baseline (paper: e.g. Powers-of-Two++ at 35.93% energy "
                 "saving with no accuracy loss): "
              << dominators << '\n';
  }
  std::cout << "Total: " << format_fixed(total.seconds(), 0) << " s\n"
            << "Scatter written to fig4_pareto.csv (x=energy log-scale, "
               "y=accuracy, as in the paper)\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("fig4_pareto", &argc, argv);
  qnn::run();
  return 0;
}
