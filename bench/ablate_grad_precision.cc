// Extension ablation, after the paper's reference [8] (Gupta et al.,
// "Deep learning with limited numerical precision"): how narrow can the
// *training* arithmetic go? Fine-tunes the fixed(8,8) LeNet with
// parameter gradients quantized to various widths, with nearest vs
// stochastic rounding — reproducing Gupta's observation that stochastic
// rounding keeps narrow-gradient training alive where nearest rounding
// stalls (tiny updates always round to zero).
#include <iostream>

#include "bench_common.h"
#include "nn/trainer.h"
#include "quant/qat.h"

namespace qnn {
namespace {

double qat_accuracy(const nn::Network& float_net, const data::Split& split,
                    int gradient_bits, Rounding rounding) {
  nn::ZooConfig zc;
  zc.channel_scale = 0.5;
  auto net = nn::make_lenet(zc);
  net->copy_params_from(float_net);
  quant::PrecisionConfig cfg = quant::fixed_config(8, 8);
  cfg.gradient_bits = gradient_bits;
  cfg.rounding = rounding;
  quant::QuantizedNetwork qnet(*net, cfg);
  quant::QatConfig qc;
  qc.train.epochs = 3;
  qc.train.batch_size = 32;
  qc.train.sgd.learning_rate = 0.01;
  seed_stochastic_rounding(77);
  quant::qat_finetune(qnet, split.train, qc);
  const double acc = nn::evaluate(qnet, split.test);
  qnet.restore_masters();
  return acc;
}

void run() {
  const double scale = bench::fast_mode() ? 0.3 : bench::bench_scale();
  bench::print_header(
      "Gradient precision ablation (LeNet fixed(8,8) fine-tuning)");
  data::SyntheticConfig dc;
  dc.num_train = static_cast<std::int64_t>(2000 * scale);
  dc.num_test = 600;
  const auto split = data::make_mnist_like(dc);

  nn::ZooConfig zc;
  zc.channel_scale = 0.5;
  auto float_net = nn::make_lenet(zc);
  // Deliberately under-train the baseline so the fine-tune phase has
  // real work to do (otherwise every variant trivially ties).
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 32;
  tc.sgd.learning_rate = 0.02;
  nn::train(*float_net, split.train, tc);
  std::cout << "under-trained float baseline: "
            << format_percent(nn::evaluate(*float_net, split.test))
            << "%\n\n";

  Table t({"Gradient width", "nearest acc%", "stochastic acc%"});
  t.add_row({"float (paper)",
             format_percent(
                 qat_accuracy(*float_net, split, 0, Rounding::kNearest)),
             "-"});
  for (int bits : {16, 12, 8, 6}) {
    t.add_row({std::to_string(bits) + "-bit",
               format_percent(qat_accuracy(*float_net, split, bits,
                                           Rounding::kNearest)),
               format_percent(qat_accuracy(*float_net, split, bits,
                                           Rounding::kStochastic))});
  }
  std::cout << t.to_string();
  std::cout << "\nExpected shape (Gupta et al.): wide gradients match "
               "float; as the width shrinks, nearest rounding stalls "
               "(small updates round to zero) before stochastic rounding "
               "does.\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("ablate_grad_precision", &argc, argv);
  qnn::run();
  return 0;
}
