// Reproduces Fig. 3: the breakdown of design area and power consumption
// into Memory / Registers / Combinational / Buf-Inv for every precision.
// (The paper plots bars; we print the same series as a table plus the
// buffer-share percentages quoted in §V-B.)
#include <iostream>

#include "bench_common.h"
#include "hw/accelerator.h"
#include "util/csv.h"

namespace qnn {
namespace {

void run() {
  bench::print_header(
      "Figure 3 — area & power breakdown by component class");

  Table area({"Precision (w,in)", "Memory", "Registers", "Combinational",
              "Buf/Inv", "Total mm^2", "Mem %"});
  Table power({"Precision (w,in)", "Memory", "Registers", "Combinational",
               "Buf/Inv", "Total mW", "Mem %"});

  CsvWriter csv("fig3_breakdown.csv",
                {"precision", "metric", "memory", "registers",
                 "combinational", "buf_inv", "total"});

  for (const auto& cfg : quant::paper_precisions()) {
    hw::AcceleratorConfig ac;
    ac.precision = cfg;
    const hw::Accelerator acc(ac);
    const auto& m = acc.metrics();

    const auto& a = m.area_um2;
    area.add_row({cfg.label(), format_fixed(a.memory / 1e6, 2),
                  format_fixed(a.registers / 1e6, 2),
                  format_fixed(a.combinational / 1e6, 2),
                  format_fixed(a.buf_inv / 1e6, 2),
                  format_fixed(a.total() / 1e6, 2),
                  format_percent(100 * a.memory / a.total(), 1)});
    csv.add_row({cfg.id(), "area_mm2", format_fixed(a.memory / 1e6, 4),
                 format_fixed(a.registers / 1e6, 4),
                 format_fixed(a.combinational / 1e6, 4),
                 format_fixed(a.buf_inv / 1e6, 4),
                 format_fixed(a.total() / 1e6, 4)});

    const auto& p = m.power_mw;
    power.add_row({cfg.label(), format_fixed(p.memory, 1),
                   format_fixed(p.registers, 1),
                   format_fixed(p.combinational, 1),
                   format_fixed(p.buf_inv, 1),
                   format_fixed(p.total(), 1),
                   format_percent(100 * p.memory / p.total(), 1)});
    csv.add_row({cfg.id(), "power_mw", format_fixed(p.memory, 3),
                 format_fixed(p.registers, 3),
                 format_fixed(p.combinational, 3),
                 format_fixed(p.buf_inv, 3), format_fixed(p.total(), 3)});
  }

  std::cout << "Design area (mm^2):\n" << area.to_string() << '\n';
  std::cout << "Power consumption (mW):\n" << power.to_string() << '\n';
  std::cout << "Paper (Fig. 3 / §V-B): buffers consume 75%-93% of power "
               "and 76%-96% of area across designs.\n";
  std::cout << "Series written to fig3_breakdown.csv\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("fig3_breakdown", &argc, argv);
  qnn::run();
  return 0;
}
