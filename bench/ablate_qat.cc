// Ablation (DESIGN.md §5.3): training-time technique. Compares, per
// precision:
//   (a) post-training quantization (calibrate only),
//   (b) QAT from scratch (random init, quantized training),
//   (c) the paper's recipe: float-init + dual-weight-set fine-tuning.
// The paper's §IV-A argument is that (c) recovers most of the accuracy
// that (a) loses, and converges where (b) cannot.
#include <iostream>

#include "bench_common.h"
#include "nn/trainer.h"
#include "quant/qat.h"

namespace qnn {
namespace {

void run() {
  const double scale = bench::fast_mode() ? 0.3 : bench::bench_scale();
  bench::print_header(
      "Ablation — PTQ vs scratch-QAT vs float-init QAT (LeNet, MNIST-like)");

  data::SyntheticConfig dc;
  dc.num_train = static_cast<std::int64_t>(2000 * scale);
  dc.num_test = 600;
  const auto split = data::make_mnist_like(dc);

  nn::ZooConfig zc;
  zc.channel_scale = 0.5;
  auto float_net = nn::make_lenet(zc);
  nn::TrainConfig ftc;
  ftc.epochs = 5;
  ftc.batch_size = 32;
  ftc.sgd.learning_rate = 0.02;
  nn::train(*float_net, split.train, ftc);
  std::cout << "float baseline: "
            << format_percent(nn::evaluate(*float_net, split.test))
            << "%\n\n";

  nn::TrainConfig qtc;
  qtc.epochs = 3;
  qtc.batch_size = 32;
  qtc.sgd.learning_rate = 0.01;

  Table t({"Precision (w,in)", "PTQ acc%", "scratch-QAT acc%",
           "float-init QAT acc% (paper)"});
  for (const auto& cfg :
       {quant::fixed_config(8, 8), quant::fixed_config(4, 4),
        quant::pow2_config(6, 16), quant::binary_config(16)}) {
    // (a) PTQ.
    auto ptq_net = nn::make_lenet(zc);
    ptq_net->copy_params_from(*float_net);
    quant::QuantizedNetwork ptq(*ptq_net, cfg);
    ptq.calibrate(data::batch_images(split.train, 0, 64));
    const double ptq_acc = nn::evaluate(ptq, split.test);
    ptq.restore_masters();

    // (b) QAT from random init (5+3 epochs to match total budget).
    nn::ZooConfig scratch_cfg = zc;
    scratch_cfg.init_seed = 99;
    auto scratch_net = nn::make_lenet(scratch_cfg);
    quant::QuantizedNetwork scratch(*scratch_net, cfg);
    quant::QatConfig sqc;
    sqc.train = qtc;
    sqc.train.epochs = 8;
    quant::qat_finetune(scratch, split.train, sqc);
    const double scratch_acc = nn::evaluate(scratch, split.test);
    scratch.restore_masters();

    // (c) Paper recipe.
    auto qat_net = nn::make_lenet(zc);
    qat_net->copy_params_from(*float_net);
    quant::QuantizedNetwork qat(*qat_net, cfg);
    quant::QatConfig qqc;
    qqc.train = qtc;
    quant::qat_finetune(qat, split.train, qqc);
    const double qat_acc = nn::evaluate(qat, split.test);
    qat.restore_masters();

    t.add_row({cfg.label(), format_percent(ptq_acc),
               format_percent(scratch_acc), format_percent(qat_acc)});
  }
  std::cout << t.to_string();
  std::cout << "\nExpected shape: float-init QAT >= PTQ everywhere, with "
               "the gap largest at the lowest precisions (paper §IV-A).\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("ablate_qat", &argc, argv);
  qnn::run();
  return 0;
}
