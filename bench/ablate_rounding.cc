// Ablation (DESIGN.md §5): rounding mode of the fixed-point grids.
//   kNearest    — round half away from zero (Ristretto, our default)
//   kFloor      — truncation (the cheapest hardware)
//   kStochastic — probability-proportional rounding (Gupta et al. [8],
//                 the paper's reference for limited-precision training)
// Stochastic rounding keeps quantization unbiased, which matters most
// at the lowest widths during QAT.
#include <iostream>

#include "bench_common.h"
#include "nn/trainer.h"
#include "quant/qat.h"

namespace qnn {
namespace {

double accuracy_for(const nn::Network& float_net, const data::Split& split,
                    int bits, Rounding rounding) {
  nn::ZooConfig zc;
  zc.channel_scale = 0.5;
  auto net = nn::make_lenet(zc);
  net->copy_params_from(float_net);
  quant::PrecisionConfig cfg = quant::fixed_config(bits, bits);
  cfg.rounding = rounding;
  quant::QuantizedNetwork qnet(*net, cfg);
  quant::QatConfig qc;
  qc.train.epochs = 2;
  qc.train.batch_size = 32;
  qc.train.sgd.learning_rate = 0.01;
  seed_stochastic_rounding(1234);
  quant::qat_finetune(qnet, split.train, qc);
  // Evaluate with deterministic rounding semantics regardless of the
  // training mode? No — the deployed hardware rounds the same way it
  // was trained for; evaluate as configured.
  const double acc = nn::evaluate(qnet, split.test);
  qnet.restore_masters();
  return acc;
}

void run() {
  const double scale = bench::fast_mode() ? 0.3 : bench::bench_scale();
  bench::print_header(
      "Ablation — rounding mode x bit width (LeNet on MNIST-like)");
  data::SyntheticConfig dc;
  dc.num_train = static_cast<std::int64_t>(2000 * scale);
  dc.num_test = 600;
  const auto split = data::make_mnist_like(dc);

  nn::ZooConfig zc;
  zc.channel_scale = 0.5;
  auto float_net = nn::make_lenet(zc);
  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 32;
  tc.sgd.learning_rate = 0.02;
  nn::train(*float_net, split.train, tc);
  std::cout << "float baseline: "
            << format_percent(nn::evaluate(*float_net, split.test))
            << "%\n\n";

  Table t({"Rounding", "fixed(8,8) acc%", "fixed(4,4) acc%",
           "fixed(2,8)* acc%"});
  struct Mode {
    const char* name;
    Rounding r;
  };
  for (const Mode m : {Mode{"nearest (default)", Rounding::kNearest},
                       Mode{"floor/truncate", Rounding::kFloor},
                       Mode{"stochastic", Rounding::kStochastic}}) {
    const double a8 = accuracy_for(*float_net, split, 8, m.r);
    const double a4 = accuracy_for(*float_net, split, 4, m.r);
    // Extreme point: 2-bit weights, 8-bit data.
    nn::ZooConfig zc2;
    zc2.channel_scale = 0.5;
    auto net = nn::make_lenet(zc2);
    net->copy_params_from(*float_net);
    quant::PrecisionConfig cfg = quant::fixed_config(2, 8);
    cfg.rounding = m.r;
    quant::QuantizedNetwork qnet(*net, cfg);
    quant::QatConfig qc;
    qc.train.epochs = 2;
    qc.train.batch_size = 32;
    qc.train.sgd.learning_rate = 0.01;
    quant::qat_finetune(qnet, split.train, qc);
    const double a2 = nn::evaluate(qnet, split.test);
    qnet.restore_masters();
    t.add_row({m.name, format_percent(a8), format_percent(a4),
               format_percent(a2)});
  }
  std::cout << t.to_string();
  std::cout << "\n* fixed(2,8): 2-bit weights / 8-bit data, beyond the "
               "paper's sweep.\nExpected shape: modes tie at 8 bits; "
               "truncation's bias hurts at 4 and below, stochastic "
               "tracks or beats nearest (Gupta et al.).\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("ablate_rounding", &argc, argv);
  qnn::run();
  return 0;
}
