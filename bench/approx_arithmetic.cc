// Extension bench, quantifying the paper's §I motivation: "the dominant
// portion of power ... is consumed in the memory subsystem, limiting
// the scope of arithmetic approximation." Replaces the fixed(8,8)
// design's exact multipliers with approximate ones (Mitchell log,
// truncated array), evaluating:
//   * accuracy (integer-domain inference via the NFU simulator),
//   * WB-stage area savings vs the WHOLE-accelerator savings —
// and contrasts them with what plain precision scaling (8→4 bits)
// achieves by also shrinking the buffers.
#include <iostream>

#include "bench_common.h"
#include "hw/logic_model.h"
#include "hw/nfu_sim.h"
#include "nn/trainer.h"
#include "quant/qat.h"

namespace qnn {
namespace {

double integer_accuracy(nn::Network& net,
                        const quant::QuantizedNetwork& qnet,
                        const data::Dataset& test,
                        const ApproxMultSpec& mult) {
  const hw::NfuSimulator sim(net, qnet, nn::input_shape_for("lenet"),
                             mult);
  const Tensor logits =
      sim.forward(data::batch_images(test, 0, test.size()));
  const std::int64_t classes = logits.shape()[1];
  std::int64_t correct = 0;
  for (std::int64_t s = 0; s < test.size(); ++s) {
    const float* row = logits.data() + s * classes;
    if (std::max_element(row, row + classes) - row ==
        test.labels[static_cast<std::size_t>(s)])
      ++correct;
  }
  return 100.0 * static_cast<double>(correct) /
         static_cast<double>(test.size());
}

void run() {
  const double scale = bench::fast_mode() ? 0.3 : bench::bench_scale();
  bench::print_header(
      "Approximate multipliers vs precision scaling (LeNet, fixed(8,8))");

  data::SyntheticConfig dc;
  dc.num_train = static_cast<std::int64_t>(1500 * scale);
  dc.num_test = 300;  // integer-path inference is the slow part
  const auto split = data::make_mnist_like(dc);
  nn::ZooConfig zc;
  zc.channel_scale = 0.35;
  auto net = nn::make_lenet(zc);
  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 32;
  tc.sgd.learning_rate = 0.02;
  nn::train(*net, split.train, tc);

  quant::QuantizedNetwork qnet(*net, quant::fixed_config(8, 8));
  quant::QatConfig qc;
  qc.train.epochs = 2;
  qc.train.batch_size = 32;
  qc.train.sgd.learning_rate = 0.01;
  quant::qat_finetune(qnet, split.train, qc);

  const hw::Tech65& t = hw::default_tech();
  const double exact_mult = hw::int_multiplier_area(t, 8, 8);

  hw::AcceleratorConfig acfg;
  acfg.precision = quant::fixed_config(8, 8);
  const hw::Accelerator acc8(acfg);
  acfg.precision = quant::fixed_config(4, 4);
  const hw::Accelerator acc4(acfg);
  const double total8 = acc8.area_mm2();
  const int lanes = 256;

  Table table({"Multiplier", "mean rel. err %", "Accuracy %",
               "WB area save %", "Accel area save %"});
  struct Row {
    const char* name;
    ApproxMultSpec spec;
    double area;
  };
  const std::vector<Row> rows{
      {"exact 8x8", {ApproxMultKind::kExact, 0}, exact_mult},
      {"truncated k=6",
       {ApproxMultKind::kTruncated, 6},
       hw::truncated_multiplier_area(t, 8, 8, 6)},
      {"truncated k=10",
       {ApproxMultKind::kTruncated, 10},
       hw::truncated_multiplier_area(t, 8, 8, 10)},
      {"Mitchell log",
       {ApproxMultKind::kMitchell, 0},
       hw::mitchell_multiplier_area(t, 8, 8)},
  };
  for (const Row& row : rows) {
    const double acc = integer_accuracy(*net, qnet, split.test, row.spec);
    const double wb_save = 100.0 * (1.0 - row.area / exact_mult);
    // Whole-accelerator view: the WB stage is 256 multipliers.
    const double accel_save =
        100.0 * (exact_mult - row.area) * lanes / 1e6 / total8;
    table.add_row({row.name,
                   format_percent(100.0 * mean_relative_error(row.spec, 8),
                                  1),
                   format_percent(acc), format_percent(wb_save, 1),
                   format_percent(accel_save, 1)});
  }
  std::cout << table.to_string();
  std::cout << "\nPrecision scaling for contrast: fixed(4,4) shrinks the "
               "WHOLE accelerator by "
            << format_percent(100.0 * (1.0 - acc4.area_mm2() / total8), 1)
            << "% (buffers included) — the paper's point: arithmetic "
               "approximation alone touches only the few percent of the "
               "design that is not memory.\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("approx_arithmetic", &argc, argv);
  qnn::run();
  return 0;
}
