// The paper's §VI future-work experiment: predict low-precision
// degradation analytically instead of measuring it. For each precision,
// compares the analytical quantization-noise propagation model
// (src/quant/noise_model) against measured per-site SQNR and measured
// prediction-flip rates on the MNIST-like benchmark.
#include <iostream>

#include "bench_common.h"
#include "nn/trainer.h"
#include "quant/noise_model.h"

namespace qnn {
namespace {

void run() {
  const double scale = bench::fast_mode() ? 0.3 : bench::bench_scale();
  bench::print_header(
      "Noise prediction (paper §VI future work) — LeNet, MNIST-like");

  data::SyntheticConfig dc;
  dc.num_train = static_cast<std::int64_t>(1500 * scale);
  dc.num_test = 500;
  const auto split = data::make_mnist_like(dc);
  nn::ZooConfig zc;
  zc.channel_scale = 0.5;
  auto net = nn::make_lenet(zc);
  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 32;
  tc.sgd.learning_rate = 0.02;
  nn::train(*net, split.train, tc);

  Table t({"Precision (w,in)", "SQNR meas. dB", "SQNR pred. dB",
           "flips meas.%", "flips pred.%"});
  for (const auto& cfg : quant::paper_precisions()) {
    if (cfg.is_float()) continue;
    quant::QuantizedNetwork qnet(*net, cfg);
    qnet.calibrate(data::batch_images(split.train, 0, 64));
    const quant::NoiseReport r =
        quant::analyze_noise(*net, qnet, split.test, 200);
    t.add_row({cfg.label(), format_fixed(r.final_measured_sqnr_db(), 1),
               format_fixed(r.final_predicted_sqnr_db(), 1),
               format_percent(r.measured_flip_rate),
               format_percent(r.predicted_flip_rate)});
  }
  std::cout << t.to_string();

  // Per-site profile at the most interesting point (4,4).
  quant::QuantizedNetwork qnet(*net, quant::fixed_config(4, 4));
  qnet.calibrate(data::batch_images(split.train, 0, 64));
  const quant::NoiseReport r =
      quant::analyze_noise(*net, qnet, split.test, 200);
  std::cout << "\nPer-site SQNR profile at fixed(4,4):\n";
  Table sites({"Site", "Signal power", "Noise power (meas.)",
               "SQNR meas. dB", "SQNR pred. dB"});
  for (std::size_t s = 0; s < r.measured.size(); ++s) {
    sites.add_row({std::to_string(s),
                   format_fixed(r.measured[s].signal_power, 4),
                   format_fixed(r.measured[s].noise_power, 6),
                   format_fixed(r.measured[s].sqnr_db(), 1),
                   format_fixed(r.predicted_sqnr_db[s], 1)});
  }
  std::cout << sites.to_string();
  std::cout << "\nReading: prediction should rank the precisions "
               "identically to measurement and land within a few dB — "
               "the feasibility evidence for the paper's proposed "
               "analytical precision selection.\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("noise_prediction", &argc, argv);
  qnn::run();
  return 0;
}
