// Ablation (DESIGN.md §5.2/§5.5): radix-point placement × calibration.
//
//  * kPerLayer — Ristretto's dynamic fixed point (our default),
//  * kGlobal   — one radix for all weights + one for all data (what the
//    paper's hardware supports; its §VI future work asks for per-layer);
//  * kMse      — minimum-MSE format choice over calibration samples,
//  * kMaxAbs   — plain covering format.
//
// The gaps widen as bits shrink: at (8,8) the policies are nearly
// equivalent, at (4,4) the global policy destroys the network — exactly
// why the paper's future-work section calls for per-layer radix support.
#include <iostream>

#include "bench_common.h"
#include "nn/trainer.h"
#include "quant/qat.h"

namespace qnn {
namespace {

struct Variant {
  std::string name;
  quant::RadixPolicy policy;
  quant::CalibrationRule rule;
};

double accuracy_for(const nn::Network& float_net, const data::Split& split,
                    quant::PrecisionConfig cfg, const Variant& variant,
                    double channel_scale) {
  nn::ZooConfig zc;
  zc.channel_scale = channel_scale;
  auto net = nn::make_lenet(zc);
  net->copy_params_from(float_net);
  cfg.radix_policy = variant.policy;
  cfg.calibration = variant.rule;
  quant::QuantizedNetwork qnet(*net, cfg);
  quant::QatConfig qc;
  qc.train.epochs = 2;
  qc.train.batch_size = 32;
  qc.train.sgd.learning_rate = 0.01;
  quant::qat_finetune(qnet, split.train, qc);
  const double acc = nn::evaluate(qnet, split.test);
  qnet.restore_masters();
  return acc;
}

void run() {
  const double scale = bench::fast_mode() ? 0.3 : bench::bench_scale();
  bench::print_header("Ablation — radix policy x calibration rule "
                      "(LeNet on MNIST-like)");
  data::SyntheticConfig dc;
  dc.num_train = static_cast<std::int64_t>(2000 * scale);
  dc.num_test = 600;
  const auto split = data::make_mnist_like(dc);

  const double channel_scale = 0.5;
  nn::ZooConfig zc;
  zc.channel_scale = channel_scale;
  auto float_net = nn::make_lenet(zc);
  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 32;
  tc.sgd.learning_rate = 0.02;
  nn::train(*float_net, split.train, tc);
  std::cout << "float baseline: "
            << format_percent(nn::evaluate(*float_net, split.test))
            << "%\n\n";

  const std::vector<Variant> variants{
      {"per-layer + MSE (default)", quant::RadixPolicy::kPerLayer,
       quant::CalibrationRule::kMse},
      {"per-layer + max-abs", quant::RadixPolicy::kPerLayer,
       quant::CalibrationRule::kMaxAbs},
      {"global + MSE", quant::RadixPolicy::kGlobal,
       quant::CalibrationRule::kMse},
      {"global + max-abs (paper hw)", quant::RadixPolicy::kGlobal,
       quant::CalibrationRule::kMaxAbs},
  };

  Table t({"Calibration variant", "fixed(8,8) acc%", "fixed(4,4) acc%"});
  for (const auto& v : variants) {
    const double a8 = accuracy_for(*float_net, split,
                                   quant::fixed_config(8, 8), v,
                                   channel_scale);
    const double a4 = accuracy_for(*float_net, split,
                                   quant::fixed_config(4, 4), v,
                                   channel_scale);
    t.add_row({v.name, format_percent(a8), format_percent(a4)});
  }
  std::cout << t.to_string();
  std::cout << "\nExpected shape: every variant holds at 8 bits; only "
               "per-layer calibration survives 4 bits (the paper's §VI "
               "future-work motivation).\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("ablate_radix", &argc, argv);
  qnn::run();
  return 0;
}
