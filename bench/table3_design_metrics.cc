// Reproduces Table III: design area, power consumption, and savings of
// the accelerator for every evaluated precision, plus the §V-B parameter
// memory footprints.
#include <iostream>

#include "bench_common.h"
#include "hw/accelerator.h"
#include "quant/memory.h"

namespace qnn {
namespace {

struct PaperRow {
  double area, power;
};

PaperRow paper_row(const std::string& id) {
  if (id == "float_32_32") return {16.74, 1379.60};
  if (id == "fixed_32_32") return {14.13, 1213.40};
  if (id == "fixed_16_16") return {6.88, 574.75};
  if (id == "fixed_8_8") return {3.36, 219.87};
  if (id == "fixed_4_4") return {1.66, 111.17};
  if (id == "pow2_6_16") return {3.05, 209.91};
  if (id == "binary_1_16") return {1.21, 95.36};
  return {0, 0};
}

void run() {
  bench::print_header("Table III — design metrics per precision");

  hw::AcceleratorConfig base;
  const hw::Accelerator fp(base);

  Table t({"Precision (w,in)", "Area mm^2", "[paper]", "Power mW",
           "[paper]", "Area Sav.%", "[paper]", "Power Sav.%", "[paper]"});
  for (const auto& cfg : quant::paper_precisions()) {
    hw::AcceleratorConfig ac;
    ac.precision = cfg;
    const hw::Accelerator acc(ac);
    const PaperRow p = paper_row(cfg.id());
    t.add_row({cfg.label(), format_fixed(acc.area_mm2(), 2),
               format_fixed(p.area, 2), format_fixed(acc.power_mw(), 2),
               format_fixed(p.power, 2),
               format_percent(hw::saving_percent(fp.area_mm2(),
                                                 acc.area_mm2())),
               format_percent(hw::saving_percent(16.74, p.area)),
               format_percent(hw::saving_percent(fp.power_mw(),
                                                 acc.power_mw())),
               format_percent(hw::saving_percent(1379.60, p.power))});
  }
  std::cout << t.to_string() << '\n';

  bench::print_header(
      "§V-B — parameter memory footprint per network & precision (KB)");
  Table m({"Precision (w,in)", "LeNet", "ConvNet", "ALEX", "ALEX+",
           "ALEX++"});
  const std::vector<std::string> nets{"lenet", "convnet", "alex", "alex+",
                                      "alex++"};
  for (const auto& cfg : quant::paper_precisions()) {
    std::vector<std::string> row{cfg.label()};
    for (const auto& name : nets) {
      auto net = nn::make_network(name, {});
      row.push_back(format_fixed(
          quant::memory_footprint(*net, nn::input_shape_for(name), cfg)
              .param_kb(),
          0));
    }
    m.add_row(std::move(row));
  }
  std::cout << m.to_string() << '\n';
  std::cout << "Paper (§V-B): full-precision parameters ~1650 KB (LeNet), "
               "~2150 KB (ConvNet), ~350 KB (ALEX), ~1250 KB (ALEX+), "
               "~9400 KB (ALEX++); footprint scales linearly with weight "
               "precision (2x-32x reduction).\n";
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  qnn::bench::Session session("table3_design_metrics", &argc, argv);
  qnn::run();
  return 0;
}
