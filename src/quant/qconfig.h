// Precision/quantization configurations — the design points of the
// paper's study (§IV-A, Tables III–V).
//
// A PrecisionConfig is written "(w, in)" as in the paper: bit width of
// weights, bit width of inputs/feature maps.
#pragma once

#include <string>
#include <vector>

#include "fixed/binary_format.h"
#include "fixed/fixed_format.h"

namespace qnn::quant {

enum class PrecisionKind {
  kFloat,   // IEEE single precision (the baseline)
  kFixed,   // fixed-point, same width for weights and data
  kPow2,    // power-of-two weights, fixed-point data
  kBinary,  // 1-bit weights, fixed-point data
};

// Where radix points may sit (paper §IV-A2 and §VI future work).
// Ristretto — the framework the paper modifies — uses *dynamic fixed
// point*: an independent radix-point location per layer/blob, with the
// paper additionally separating data from parameters. kPerLayer is
// therefore the faithful default; kGlobal (one radix for all weights,
// one for all data — what the paper's *hardware* supports, per the §VI
// future-work remark) is kept as an ablation (bench/ablate_radix).
enum class RadixPolicy {
  kGlobal,    // one radix point for all weights + one for all data
  kPerLayer,  // independent radix per layer (Ristretto dynamic fixed point)
};

// How a format's range is chosen from calibration statistics:
// minimum-MSE over observed samples (Ristretto's rule, default) or the
// plain max-abs covering format (ablated in bench/ablate_radix).
enum class CalibrationRule { kMse, kMaxAbs };

struct PrecisionConfig {
  PrecisionKind kind = PrecisionKind::kFloat;
  int weight_bits = 32;
  int input_bits = 32;
  RadixPolicy radix_policy = RadixPolicy::kPerLayer;
  CalibrationRule calibration = CalibrationRule::kMse;
  BinaryScaleMode binary_scale = BinaryScaleMode::kMeanAbs;
  // Rounding mode of the fixed-point grids (weights and data); kNearest
  // is Ristretto's choice, kStochastic is Gupta et al.'s (ablated in
  // bench/ablate_rounding).
  Rounding rounding = Rounding::kNearest;
  // Fixed-point *training* à la Gupta et al. [8]: when positive,
  // parameter gradients are quantized to this many bits (per-tensor
  // range, same rounding mode) before the optimizer consumes them —
  // 0 keeps float gradients (the paper's setting; its training runs in
  // full precision). Ablated in bench/ablate_grad_precision.
  int gradient_bits = 0;

  // "Fixed-Point (16,16)" etc., matching the paper's row labels.
  std::string label() const;
  // Short machine-friendly id: "fixed_16_16".
  std::string id() const;

  bool is_float() const { return kind == PrecisionKind::kFloat; }
};

// The seven design points evaluated throughout the paper:
//   Floating-Point (32,32), Fixed-Point (32,32), (16,16), (8,8), (4,4),
//   Powers of Two (6,16), Binary Net (1,16).
std::vector<PrecisionConfig> paper_precisions();

// Named lookup of a paper precision by id() or label().
PrecisionConfig precision_by_name(const std::string& name);

// Factory helpers.
PrecisionConfig float_config();
PrecisionConfig fixed_config(int weight_bits, int input_bits);
PrecisionConfig pow2_config(int weight_bits = 6, int input_bits = 16);
PrecisionConfig binary_config(
    int input_bits = 16,
    BinaryScaleMode scale = BinaryScaleMode::kMeanAbs);

}  // namespace qnn::quant
