#include "quant/mixed_precision.h"

#include <algorithm>

#include "nn/trainer.h"
#include "util/check.h"
#include "util/logging.h"

namespace qnn::quant {
namespace {

std::vector<nn::Param*> weight_params(nn::Network& net) {
  std::vector<nn::Param*> out;
  for (nn::Param* p : net.trainable_params())
    if (p->name == "w") out.push_back(p);
  return out;
}

}  // namespace

double mean_weight_bits(nn::Network& net, const std::vector<int>& bits) {
  const auto weights = weight_params(net);
  QNN_CHECK(weights.size() == bits.size());
  double bit_sum = 0, count = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    bit_sum += static_cast<double>(bits[i]) *
               static_cast<double>(weights[i]->count());
    count += static_cast<double>(weights[i]->count());
  }
  return count > 0 ? bit_sum / count : 0.0;
}

MixedPrecisionResult search_mixed_precision(
    nn::Network& float_net, const data::Dataset& train,
    const data::Dataset& eval, const MixedSearchConfig& config) {
  QNN_CHECK(!config.candidate_bits.empty());
  QNN_CHECK(std::is_sorted(config.candidate_bits.rbegin(),
                           config.candidate_bits.rend()));
  const std::size_t num_weights = weight_params(float_net).size();
  QNN_CHECK_MSG(num_weights > 0, "network has no weight tensors");

  const data::Dataset eval_subset =
      eval.slice(0, std::min(config.eval_samples, eval.size()));
  const Tensor calibration = data::batch_images(
      train, 0, std::min(config.calibration_samples, train.size()));

  MixedPrecisionResult result;
  result.float_accuracy = nn::evaluate(float_net, eval_subset);

  // PTQ accuracy of an assignment.
  auto ptq_accuracy = [&](const std::vector<int>& bits) {
    PrecisionConfig cfg = fixed_config(config.start_bits,
                                       config.start_bits);
    QuantizedNetwork qnet(float_net, cfg, bits);
    qnet.calibrate(calibration);
    const double acc = nn::evaluate(qnet, eval_subset);
    qnet.restore_masters();
    ++result.search_evaluations;
    return acc;
  };

  // Ladder position per weight tensor.
  const auto start_it =
      std::find(config.candidate_bits.begin(), config.candidate_bits.end(),
                config.start_bits);
  QNN_CHECK_MSG(start_it != config.candidate_bits.end(),
                "start_bits must be one of candidate_bits");
  std::vector<std::size_t> rung(
      num_weights,
      static_cast<std::size_t>(start_it - config.candidate_bits.begin()));
  auto bits_of = [&](const std::vector<std::size_t>& rungs) {
    std::vector<int> b(num_weights);
    for (std::size_t i = 0; i < num_weights; ++i)
      b[i] = config.candidate_bits[rungs[i]];
    return b;
  };

  const double floor_acc = result.float_accuracy - config.accuracy_budget;
  double current_acc = ptq_accuracy(bits_of(rung));

  for (;;) {
    double best_acc = -1.0;
    std::size_t best_layer = num_weights;
    for (std::size_t i = 0; i < num_weights; ++i) {
      if (rung[i] + 1 >= config.candidate_bits.size()) continue;
      auto trial = rung;
      ++trial[i];
      const double acc = ptq_accuracy(bits_of(trial));
      if (acc > best_acc) {
        best_acc = acc;
        best_layer = i;
      }
    }
    if (best_layer == num_weights || best_acc < floor_acc) break;
    ++rung[best_layer];
    current_acc = best_acc;
    QNN_LOG(Debug) << "mixed-precision: layer " << best_layer << " -> "
                   << config.candidate_bits[rung[best_layer]]
                   << " bits (acc " << current_acc << "%)";
  }

  result.weight_bits = bits_of(rung);
  result.ptq_accuracy = current_acc;
  result.mean_weight_bits =
      mean_weight_bits(float_net, result.weight_bits);
  return result;
}

}  // namespace qnn::quant
