// Tensor quantizers: map a float tensor in place onto the value grid of
// a target representation (fake quantization, bit-exact w.r.t. the
// integer formats in src/fixed).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "fixed/binary_format.h"
#include "fixed/fixed_format.h"
#include "fixed/pow2_format.h"
#include "quant/qconfig.h"
#include "tensor/tensor.h"

namespace qnn::quant {

class ValueQuantizer {
 public:
  virtual ~ValueQuantizer() = default;

  // Fixes the representable range from an observed max-abs statistic.
  // Must be called before apply() for range-dependent quantizers.
  virtual void calibrate(double max_abs) = 0;

  // Richer calibration: choose the format minimizing mean squared
  // quantization error over observed `samples` (Ristretto's criterion —
  // at very low bit widths clipping outliers beats covering them).
  // Default falls back to max-abs calibration.
  virtual void calibrate_with_samples(std::span<const float> samples,
                                      double max_abs) {
    (void)samples;
    calibrate(max_abs);
  }

  // Quantizes in place.
  virtual void apply(Tensor& t) const = 0;

  // Magnitude beyond which master weights should be clamped during QAT
  // (largest representable value); 0 disables clipping.
  virtual double clip_limit() const { return 0.0; }

  virtual std::string describe() const = 0;
  virtual int bits() const = 0;

  // Deep copy, including calibrated format state. Used to build
  // per-thread QuantizedNetwork replicas for parallel fault trials.
  virtual std::unique_ptr<ValueQuantizer> clone() const = 0;
};

// Float baseline: no-op.
class IdentityQuantizer final : public ValueQuantizer {
 public:
  void calibrate(double) override {}
  void apply(Tensor&) const override {}
  std::string describe() const override { return "float32"; }
  int bits() const override { return 32; }
  std::unique_ptr<ValueQuantizer> clone() const override {
    return std::make_unique<IdentityQuantizer>(*this);
  }
};

class FixedQuantizer final : public ValueQuantizer {
 public:
  explicit FixedQuantizer(int bits, Rounding rounding = Rounding::kNearest)
      : bits_(bits), rounding_(rounding) {}
  void calibrate(double max_abs) override {
    format_ = FixedPointFormat::for_range(bits_, max_abs, rounding_);
  }
  void calibrate_with_samples(std::span<const float> samples,
                              double max_abs) override;
  void apply(Tensor& t) const override;
  double clip_limit() const override {
    return format_ ? format_->max_value() : 0.0;
  }
  std::string describe() const override;
  int bits() const override { return bits_; }
  std::unique_ptr<ValueQuantizer> clone() const override {
    return std::make_unique<FixedQuantizer>(*this);
  }
  const std::optional<FixedPointFormat>& format() const { return format_; }

 private:
  int bits_;
  Rounding rounding_;
  std::optional<FixedPointFormat> format_;
};

class Pow2Quantizer final : public ValueQuantizer {
 public:
  explicit Pow2Quantizer(int bits) : bits_(bits) {}
  void calibrate(double max_abs) override {
    format_ = Pow2Format::for_range(bits_, max_abs);
  }
  void calibrate_with_samples(std::span<const float> samples,
                              double max_abs) override;
  void apply(Tensor& t) const override;
  double clip_limit() const override {
    return format_ ? format_->max_value() : 0.0;
  }
  std::string describe() const override;
  int bits() const override { return bits_; }
  std::unique_ptr<ValueQuantizer> clone() const override {
    return std::make_unique<Pow2Quantizer>(*this);
  }
  const std::optional<Pow2Format>& format() const { return format_; }

 private:
  int bits_;
  std::optional<Pow2Format> format_;
};

// 1-bit: scale is derived from the tensor itself at every apply (the
// mean-abs mode tracks the master weights as they train).
class BinaryQuantizer final : public ValueQuantizer {
 public:
  explicit BinaryQuantizer(BinaryScaleMode mode) : format_(mode) {}
  void calibrate(double) override {}
  void apply(Tensor& t) const override;
  // BinaryConnect clips masters to [-1, 1].
  double clip_limit() const override { return 1.0; }
  std::string describe() const override { return format_.to_string(); }
  int bits() const override { return 1; }
  std::unique_ptr<ValueQuantizer> clone() const override {
    return std::make_unique<BinaryQuantizer>(*this);
  }

 private:
  BinaryFormat format_;
};

// Builds the weight-side quantizer for a config (nullptr = identity).
std::unique_ptr<ValueQuantizer> make_weight_quantizer(
    const PrecisionConfig& config);

// Builds the data-side (inputs + feature maps) quantizer for a config.
std::unique_ptr<ValueQuantizer> make_data_quantizer(
    const PrecisionConfig& config);

}  // namespace qnn::quant
