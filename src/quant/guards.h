// Numerical guard-rail counters for quantized forward passes.
//
// Fixed-point quantizers clip out-of-range values silently; a fault or a
// miscalibrated radix point can also push NaN/Inf through a layer and
// the downstream quantizer maps them to 0/±max without a trace. These
// counters make both observable: QuantizedNetwork accumulates one
// GuardCounters per activation site and per parameter tensor during
// every forward, and exp::PrecisionResult surfaces the totals.
#pragma once

#include <cmath>
#include <cstdint>

namespace qnn::quant {

// Exclusive classification of one value against a clip limit: every
// value lands in exactly one class, so the anomaly counters partition
// the anomalies (an Inf is counted as inf only, never also saturated,
// even though its magnitude exceeds every finite limit).
enum class GuardClass { kOk, kSaturated, kNan, kInf };

// `limit` is the format's largest representable magnitude; <= 0 means
// the format is unbounded (e.g. float), so nothing finite saturates.
inline GuardClass classify_guard(float v, double limit) {
  if (std::isnan(v)) return GuardClass::kNan;
  if (std::isinf(v)) return GuardClass::kInf;
  if (limit > 0.0 && std::fabs(static_cast<double>(v)) > limit)
    return GuardClass::kSaturated;
  return GuardClass::kOk;
}

struct GuardCounters {
  std::int64_t values = 0;     // values inspected
  std::int64_t saturated = 0;  // |v| beyond the representable range
  std::int64_t nan = 0;        // NaN before quantization (mapped to 0)
  std::int64_t inf = 0;        // ±Inf before quantization (saturates)

  // Inspects `v`: classified exactly once, then the matching counter
  // (and `values`) is bumped.
  void observe(float v, double limit) {
    ++values;
    switch (classify_guard(v, limit)) {
      case GuardClass::kOk:        break;
      case GuardClass::kSaturated: ++saturated; break;
      case GuardClass::kNan:       ++nan; break;
      case GuardClass::kInf:       ++inf; break;
    }
  }

  GuardCounters& operator+=(const GuardCounters& o) {
    values += o.values;
    saturated += o.saturated;
    nan += o.nan;
    inf += o.inf;
    return *this;
  }

  bool clean() const { return saturated == 0 && nan == 0 && inf == 0; }
  double saturation_rate() const {
    return values == 0 ? 0.0
                       : static_cast<double>(saturated) /
                             static_cast<double>(values);
  }
};

}  // namespace qnn::quant
