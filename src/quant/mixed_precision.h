// Per-layer (mixed) precision assignment search — an extension in the
// direction of the paper's §VI future work: instead of one uniform
// weight width, each layer gets the narrowest width it can afford.
//
// Greedy descend-and-check: start every weight tensor at `start_bits`;
// repeatedly pick the candidate single-layer reduction (next width in
// `candidate_bits`) that loses the least validation accuracy under
// post-training quantization, accept it while the loss stays within
// `accuracy_budget` of the float baseline, stop when no reduction fits.
// PTQ keeps the search cheap; the caller typically runs one final QAT
// fine-tune on the chosen assignment.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "quant/qnetwork.h"

namespace qnn::quant {

struct MixedSearchConfig {
  int start_bits = 8;
  std::vector<int> candidate_bits{8, 6, 4, 2};  // descending ladder
  double accuracy_budget = 2.0;  // max percentage points below float
  std::int64_t calibration_samples = 64;
  std::int64_t eval_samples = 256;  // validation subset per step
};

struct MixedPrecisionResult {
  std::vector<int> weight_bits;  // per weight tensor, layer order
  double float_accuracy = 0.0;   // baseline on the eval subset
  double ptq_accuracy = 0.0;     // accuracy of the final assignment (PTQ)
  // Parameter-count-weighted mean weight width (the compression knob).
  double mean_weight_bits = 0.0;
  int search_evaluations = 0;    // PTQ evals spent by the search
};

MixedPrecisionResult search_mixed_precision(nn::Network& float_net,
                                            const data::Dataset& train,
                                            const data::Dataset& eval,
                                            const MixedSearchConfig& config);

// Parameter-count-weighted mean of a per-weight-tensor bit assignment.
double mean_weight_bits(nn::Network& net, const std::vector<int>& bits);

}  // namespace qnn::quant
