// Quantization-noise analysis — the paper's §VI future-work item:
// "analytically investigating the correlations between network and
//  datasets ... thereby effectively predicting the lower precision
//  accuracy".
//
// Two halves:
//
//  * MEASUREMENT: run the float network and the quantized network over
//    the same batch, recording per-site signal power E[x²] and noise
//    power E[(x_q - x)²] — the empirical SQNR profile of the design.
//
//  * PREDICTION: a first-order analytical model. A uniform quantizer of
//    step Δ injects variance Δ²/12. Through a linear layer the input
//    noise is amplified by the weight power Σw² per output, the weight
//    quantization noise couples through the activation power Σx², and
//    every site's requantization adds its own Δ²/12:
//
//      σ²_out ≈ σ²_in · Σ_j w_j²  +  σ²_w · Σ_j E[x_j²]  +  Δ²_site/12
//
//    ReLU halves noise power (half the units are clamped), average
//    pooling divides it by the window size, max pooling passes it
//    through. Chaining these gives a predicted SQNR per site and a
//    predicted probability of top-1 flips from the float network's
//    logit margins — i.e. a predicted accuracy drop.
//
// The model is deliberately coarse (independence assumptions); the
// bench (bench/noise_prediction) shows it tracks the measured SQNR
// within a few dB and ranks precisions correctly, which is exactly the
// predictive power the paper asks for.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "quant/qnetwork.h"

namespace qnn::quant {

struct SiteNoise {
  double signal_power = 0.0;  // E[x_float²] at the site
  double noise_power = 0.0;   // E[(x_quant - x_float)²]

  double sqnr_db() const;  // 10 log10(signal/noise); +inf if noiseless
};

struct NoiseReport {
  // Per activation site (0 = input), measured on the evaluation batch.
  std::vector<SiteNoise> measured;
  // Analytical prediction of the same per-site noise power.
  std::vector<double> predicted_noise_power;
  std::vector<double> predicted_sqnr_db;

  // Top-1 disagreement between quantized and float predictions,
  // measured (%) and predicted from logit margins (%).
  double measured_flip_rate = 0.0;
  double predicted_flip_rate = 0.0;

  double final_measured_sqnr_db() const {
    return measured.empty() ? 0.0 : measured.back().sqnr_db();
  }
  double final_predicted_sqnr_db() const {
    return predicted_sqnr_db.empty() ? 0.0 : predicted_sqnr_db.back();
  }
};

// Runs measurement + prediction over (at most `max_samples` of) `d`.
// `qnet` must be calibrated and wrap `float_net`'s architecture with the
// SAME master weights (the usual QAT setup).
NoiseReport analyze_noise(nn::Network& float_net, QuantizedNetwork& qnet,
                          const data::Dataset& d,
                          std::int64_t max_samples = 128);

}  // namespace qnn::quant
