#include "quant/qconfig.h"

#include <sstream>

#include "util/check.h"

namespace qnn::quant {

std::string PrecisionConfig::label() const {
  std::ostringstream os;
  switch (kind) {
    case PrecisionKind::kFloat: os << "Floating-Point"; break;
    case PrecisionKind::kFixed: os << "Fixed-Point"; break;
    case PrecisionKind::kPow2: os << "Powers of Two"; break;
    case PrecisionKind::kBinary: os << "Binary Net"; break;
  }
  os << " (" << weight_bits << ',' << input_bits << ')';
  return os.str();
}

std::string PrecisionConfig::id() const {
  std::ostringstream os;
  switch (kind) {
    case PrecisionKind::kFloat: os << "float"; break;
    case PrecisionKind::kFixed: os << "fixed"; break;
    case PrecisionKind::kPow2: os << "pow2"; break;
    case PrecisionKind::kBinary: os << "binary"; break;
  }
  os << '_' << weight_bits << '_' << input_bits;
  return os.str();
}

PrecisionConfig float_config() { return PrecisionConfig{}; }

PrecisionConfig fixed_config(int weight_bits, int input_bits) {
  PrecisionConfig c;
  c.kind = PrecisionKind::kFixed;
  c.weight_bits = weight_bits;
  c.input_bits = input_bits;
  return c;
}

PrecisionConfig pow2_config(int weight_bits, int input_bits) {
  PrecisionConfig c;
  c.kind = PrecisionKind::kPow2;
  c.weight_bits = weight_bits;
  c.input_bits = input_bits;
  return c;
}

PrecisionConfig binary_config(int input_bits, BinaryScaleMode scale) {
  PrecisionConfig c;
  c.kind = PrecisionKind::kBinary;
  c.weight_bits = 1;
  c.input_bits = input_bits;
  c.binary_scale = scale;
  return c;
}

std::vector<PrecisionConfig> paper_precisions() {
  return {
      float_config(),        fixed_config(32, 32), fixed_config(16, 16),
      fixed_config(8, 8),    fixed_config(4, 4),   pow2_config(6, 16),
      binary_config(16),
  };
}

PrecisionConfig precision_by_name(const std::string& name) {
  for (const PrecisionConfig& c : paper_precisions())
    if (c.id() == name || c.label() == name) return c;
  QNN_CHECK_MSG(false, "unknown precision " << name);
  return {};
}

}  // namespace qnn::quant
