// QuantizedNetwork: fake-quantized inference and quantization-aware
// training around an existing float network — the paper's methodology
// (§IV-A "Training Time Techniques"):
//
//  * initialize from independently trained full-precision weights;
//  * keep TWO sets of weights: full-precision masters that the optimizer
//    updates, and their quantized image used in the forward pass
//    (Courbariaux's dual-weight scheme);
//  * gradients pass through the quantizer unchanged (straight-through
//    estimator), so small updates accumulate in the masters and
//    eventually flip quantized values.
//
// Data (input + every feature map) is quantized at each layer boundary
// with the data-side format; weights/biases with the parameter-side
// format. Radix points are chosen by range analysis under the
// configured RadixPolicy (kGlobal reproduces the paper; kPerLayer is the
// paper's future-work extension, ablated in bench/ablate_radix).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/network.h"
#include "quant/guards.h"
#include "quant/qconfig.h"
#include "quant/quantizer.h"
#include "quant/range_analysis.h"

namespace qnn::quant {

class IntInferenceEngine;

// Mutation points the fault-injection layer (src/faults) hooks into.
// Each callback may be empty; non-empty callbacks run on every forward
// and may mutate the tensor in place. Sites are numbered as in
// forward_observed (site 0 = quantized input, site i+1 = layer i output).
struct ForwardHooks {
  // After parameter `param_index` is quantized for this forward —
  // models upsets in the SB weight buffer.
  std::function<void(std::size_t param_index, Tensor& values)>
      on_quantized_param;
  // After layer i-1 produces site i's raw output, before its data
  // quantizer runs — models upsets in the adder-tree accumulators.
  std::function<void(std::size_t site, Tensor& values)> on_accumulator;
  // After site i's data quantizer runs — models upsets in the Bin/Bout
  // feature-map buffers.
  std::function<void(std::size_t site, Tensor& values)> on_quantized_site;
};

class QuantizedNetwork final : public nn::Model {
 public:
  // Wraps `net` (not owned; must outlive this object).
  QuantizedNetwork(nn::Network& net, const PrecisionConfig& config);

  // Mixed-precision variant (fixed-point only): `weight_bits_per_layer`
  // assigns an individual width to each WEIGHT tensor (order of the
  // network's "w" parameters); biases and data follow `config`. Used by
  // the per-layer precision search (quant/mixed_precision).
  QuantizedNetwork(nn::Network& net, const PrecisionConfig& config,
                   const std::vector<int>& weight_bits_per_layer);

  // Out-of-line because int_engine_ holds an incomplete type here; the
  // move operations keep clone_onto's return-by-value working.
  ~QuantizedNetwork() override;
  QuantizedNetwork(QuantizedNetwork&&) noexcept;

  // Chooses all radix points from a float-precision forward over
  // `calibration_batch`. Must run before forward() for non-float
  // configs. Masters must hold the full-precision weights.
  void calibrate(const Tensor& calibration_batch);

  // Model interface. forward() quantizes parameters in place (masters
  // are saved first) and quantizes every activation site; backward()
  // applies the straight-through estimator and restores masters so the
  // optimizer updates full-precision values.
  void set_training_mode(bool training) override {
    net_.set_training_mode(training);
  }

  Tensor forward(const Tensor& input) override;

  // Forward pass invoking `observer(site, activations)` after each
  // site's quantization (site 0 = quantized input). Used by the noise-
  // analysis tooling; identical numerics to forward().
  using SiteObserver =
      std::function<void(std::size_t site, const Tensor& activations)>;
  Tensor forward_observed(const Tensor& input,
                          const SiteObserver& observer);

  // Step-wise forward, used by protect::ProtectedNetwork to bound
  // re-execution to a single layer: forward(input) is exactly
  // forward_prologue(input) followed by forward_step(0..L-1). The
  // prologue quantizes parameters (masters saved first) and the input
  // site; each step runs layer i and quantizes site i+1, firing the
  // same hooks/guard scans as forward(). Steps must run between a
  // prologue and the next restore_masters(); re-running a step re-fires
  // its injection hooks (a fresh transient-fault draw), while parameter
  // faults persist until the next prologue — matching the hardware
  // model where SB weight corruption survives a layer re-execution
  // unless the retry path explicitly scrubs the weights first (see
  // rescrub_layer_params).
  Tensor forward_prologue(const Tensor& input);
  Tensor forward_step(std::size_t layer_index, const Tensor& x);

  // Re-reads layer `layer_index`'s parameters from the saved masters:
  // restores their full-precision values, re-quantizes them, and fires
  // on_quantized_param again — a fresh weight-memory read. This is the
  // scrub half of protect::ProtectedNetwork's retry path: re-executing
  // a layer re-fetches its weights from (ECC-protected) master storage
  // instead of reusing a possibly corrupted SB image, so weight upsets
  // are survivable rather than fatal to every retry. Only valid between
  // forward_prologue and the next restore_masters(). Does not rescan
  // guard counters — the prologue already scanned these masters, and
  // clip statistics must not depend on how often a layer was retried.
  void rescrub_layer_params(std::size_t layer_index);
  void backward(const Tensor& grad_output) override;
  std::vector<nn::Param*> trainable_params() override;
  std::string name() const override;

  // Restores master weights if a forward left quantized values in the
  // network (e.g. after evaluation). Idempotent. Also leaves inference
  // freeze mode (see freeze_inference).
  void restore_masters();

  // Inference-serving mode: quantizes the parameters ONCE (masters
  // saved first, guard counters scanned once) so subsequent forwards
  // reuse the live quantized image instead of re-running the per-call
  // master save + parameter re-quantization — the dominant fixed cost
  // when one replica serves many requests and the weights never change
  // (src/serve's replica pool freezes every tier at build time).
  // While frozen, backward() is disallowed; thaw_inference() (or
  // restore_masters()) returns to the default train/eval behavior.
  void freeze_inference();
  void thaw_inference() { restore_masters(); }
  bool inference_frozen() const { return frozen_; }

  // True when freeze_inference() installed the native integer engine
  // (quant/int_inference): frozen hook-free forwards then execute
  // conv/inner_product through the int8/int16 GEMM kernels instead of
  // the fake-quantized float path. Built whenever the config is
  // eligible and QNN_INT_INFER (read at freeze time) is not "off".
  bool native_int_active() const { return int_engine_ != nullptr; }
  const IntInferenceEngine* int_engine() const { return int_engine_.get(); }

  // Clamps master weights into the representable range of the weight
  // format (BinaryConnect-style clipping; keeps masters from drifting
  // arbitrarily far from the grid). Intended as the trainer's
  // after_step hook.
  void clip_masters();

  const PrecisionConfig& config() const { return config_; }
  bool calibrated() const { return calibrated_; }
  nn::Network& network() const { return net_; }

  // Builds a replica of this quantized network around `target`, which
  // must be a clone of the wrapped network (same structure and
  // parameter values). Quantizers, clip limits, and calibration state
  // are deep-copied; hooks and guard counters start empty. Masters must
  // be restored first (call restore_masters()) so the replica's
  // parameters hold full-precision values. Used for parallel fault
  // trials, one replica per worker.
  QuantizedNetwork clone_onto(nn::Network& target) const;

  // Adds a replica's guard counters into this network's, so counters
  // accumulated by per-thread replicas fold back into the original and
  // the totals stay independent of the replica count (integer sums).
  void merge_guards_from(const QuantizedNetwork& other);

  // Fault-injection hooks (see ForwardHooks). Passing {} clears them.
  void set_forward_hooks(ForwardHooks hooks) { hooks_ = std::move(hooks); }
  void clear_forward_hooks() { hooks_ = ForwardHooks{}; }

  // Guard-rail counters, accumulated across every forward since the last
  // reset_guards(): per activation site, per parameter tensor, and their
  // sum. Saturation is counted against each quantizer's clip limit on
  // the value *before* it is clipped to the grid.
  void reset_guards();
  const GuardCounters& site_guards(std::size_t site) const {
    return site_guards_.at(site);
  }
  const GuardCounters& param_guards(std::size_t param_index) const {
    return param_guards_.at(param_index);
  }
  GuardCounters total_guards() const;

  // Introspection for tests/reports.
  const ValueQuantizer& weight_quantizer(std::size_t param_index) const {
    return *weight_quantizers_.at(param_index);
  }
  const ValueQuantizer& data_quantizer(std::size_t site) const {
    return *data_quantizers_.at(site);
  }
  std::size_t num_sites() const { return data_quantizers_.size(); }

 private:
  void save_masters();
  void quantize_params();
  void build_param_spans();

  nn::Network& net_;
  PrecisionConfig config_;
  std::vector<nn::Param*> params_;

  // Half-open [begin, end) range into params_ owned by each layer, in
  // layer order — trainable_params() is the per-layer concatenation.
  std::vector<std::pair<std::size_t, std::size_t>> layer_param_spans_;

  // One quantizer per parameter tensor and one per activation site
  // (site 0 = input). Under kGlobal they share calibration statistics
  // but remain distinct objects so kPerLayer needs no special casing.
  std::vector<std::unique_ptr<ValueQuantizer>> weight_quantizers_;
  std::vector<std::unique_ptr<ValueQuantizer>> data_quantizers_;

  std::vector<Tensor> masters_;
  bool masters_saved_ = false;
  bool calibrated_ = false;
  bool frozen_ = false;  // inference freeze; see freeze_inference()
  std::vector<double> clip_limits_;  // per param; 0 disables

  ForwardHooks hooks_;
  std::vector<GuardCounters> site_guards_;   // one per activation site
  std::vector<GuardCounters> param_guards_;  // one per parameter tensor

  // Native integer inference engine; non-null only while frozen with an
  // eligible config (see freeze_inference / native_int_active).
  std::unique_ptr<IntInferenceEngine> int_engine_;
};

}  // namespace qnn::quant
