#include "quant/int_inference.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "fixed/fixed_arith.h"
#include "fixed/plan_sigmoid.h"
#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/inner_product.h"
#include "nn/pool.h"
#include "quant/qnetwork.h"
#include "tensor/int_gemm.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace qnn::quant {

std::optional<bool> parse_int_infer_env(const std::string& value,
                                        bool* invalid) {
  if (invalid != nullptr) *invalid = false;
  if (value == "on" || value == "1") return true;
  if (value == "off" || value == "0") return false;
  if (value.empty() || value == "auto") return std::nullopt;
  if (invalid != nullptr) *invalid = true;
  return std::nullopt;
}

bool int_inference_env_enabled() {
  const char* v = std::getenv("QNN_INT_INFER");
  if (v == nullptr) return true;
  bool invalid = false;
  const std::optional<bool> choice = parse_int_infer_env(v, &invalid);
  if (invalid) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
      QNN_LOG(Warn) << "ignoring QNN_INT_INFER=\"" << v
                    << "\" (want on|off|auto); using auto=on";
    return true;
  }
  return choice.value_or(true);
}

namespace {

std::int64_t saturate(std::int64_t raw, const FixedPointFormat& f) {
  return std::clamp(raw, f.raw_min(), f.raw_max());
}

// The NFU's requantization step for the multiplier weight block
// (hw/nfu_sim requantize with scale == 1.0, the fixed-point case):
// round-shift the accumulator from acc_frac onto the output grid, then
// saturate to the format's raw range.
std::int64_t requantize(std::int64_t acc, int from_frac,
                        const FixedPointFormat& format) {
  return saturate(shift_raw_rounded(acc, from_frac, format.frac_bits()),
                  format);
}

const FixedPointFormat& site_fmt(const QuantizedNetwork& qnet,
                                 std::size_t site) {
  const auto* fq =
      dynamic_cast<const FixedQuantizer*>(&qnet.data_quantizer(site));
  QNN_CHECK_MSG(fq != nullptr && fq->format().has_value(),
                "int inference requires calibrated fixed-point data formats");
  return *fq->format();
}

// Activation image: raw words + the format they are gridded on. The
// word type is int8 when every format in the network fits 8 bits
// (the int8 kernel then runs end-to-end), int16 otherwise.
template <typename WordT>
struct Words {
  Shape shape;
  std::vector<WordT> w;
  FixedPointFormat format{16, 8};
};

template <typename WordT>
struct Stage {
  virtual ~Stage() = default;
  FixedPointFormat out_format{16, 8};
  virtual void run(const Words<WordT>& in, Words<WordT>* out) const = 0;
};

// Shared epilogue: acc (+ bias aligned to acc_frac) -> output word.
// Identical arithmetic to the NFU's ConvStage/IpStage inner loop; the
// bias lands by commutativity of integer addition (the NFU seeds the
// accumulator with it, we add it after the exact GEMM).
template <typename WordT>
WordT requantize_word(std::int64_t acc, std::int64_t bias_term, int acc_frac,
                      const FixedPointFormat& out_format) {
  return static_cast<WordT>(
      requantize(acc + bias_term, acc_frac, out_format));
}

template <typename WordT>
struct ConvStage final : Stage<WordT> {
  std::int64_t in_c = 0, kernel = 0, stride = 1, pad = 0, out_c = 0;
  std::vector<WordT> weights;  // [out_c, in_c*kernel*kernel], raw words
  int weight_frac = 0;
  std::vector<std::int64_t> bias;  // raw at bias_frac; empty = no bias
  int bias_frac = 0;

  void run(const Words<WordT>& in, Words<WordT>* out) const override {
    const Shape& s = in.shape;
    QNN_CHECK(s.rank() == 4 && s.c() == in_c);
    const std::int64_t oh = (s.h() + 2 * pad - kernel) / stride + 1;
    const std::int64_t ow = (s.w() + 2 * pad - kernel) / stride + 1;
    out->shape = Shape{s.n(), out_c, oh, ow};
    out->format = this->out_format;
    out->w.assign(static_cast<std::size_t>(out->shape.count()), WordT{0});

    const int acc_frac = in.format.frac_bits() + weight_frac;
    const std::int64_t rows = in_c * kernel * kernel;
    const std::int64_t ohw = oh * ow;
    std::vector<std::int64_t> bias_terms(static_cast<std::size_t>(out_c), 0);
    for (std::int64_t oc = 0; oc < out_c; ++oc)
      if (!bias.empty())
        bias_terms[static_cast<std::size_t>(oc)] = shift_raw_rounded(
            bias[static_cast<std::size_t>(oc)], bias_frac, acc_frac);

    parallel_for_shards(
        s.n(), kReductionShards, shard_grain(2 * out_c * ohw * rows),
        [&](std::size_t, std::int64_t begin, std::int64_t end) {
          // Per-shard im2row patches ([OHW, rows], zero padding = raw 0,
          // exact) and int64 accumulator image.
          std::vector<WordT> patch(static_cast<std::size_t>(ohw * rows));
          std::vector<std::int64_t> acc(
              static_cast<std::size_t>(out_c * ohw));
          for (std::int64_t n = 0; n < end - begin; ++n) {
            const std::int64_t sample = begin + n;
            const WordT* img =
                in.w.data() + sample * in_c * s.h() * s.w();
            std::fill(patch.begin(), patch.end(), WordT{0});
            for (std::int64_t y = 0; y < oh; ++y) {
              for (std::int64_t x = 0; x < ow; ++x) {
                WordT* prow = patch.data() + (y * ow + x) * rows;
                for (std::int64_t c = 0; c < in_c; ++c) {
                  for (std::int64_t ky = 0; ky < kernel; ++ky) {
                    const std::int64_t iy = y * stride - pad + ky;
                    if (iy < 0 || iy >= s.h()) continue;
                    for (std::int64_t kx = 0; kx < kernel; ++kx) {
                      const std::int64_t ix = x * stride - pad + kx;
                      if (ix < 0 || ix >= s.w()) continue;
                      prow[(c * kernel + ky) * kernel + kx] =
                          img[(c * s.h() + iy) * s.w() + ix];
                    }
                  }
                }
              }
            }
            // C[oc, p] = dot(W_oc, patch_p): output-channel-major, the
            // NCHW output layout directly.
            int_gemm_bt(out_c, ohw, rows, weights.data(), patch.data(),
                        acc.data());
            WordT* dst = out->w.data() + sample * out_c * ohw;
            for (std::int64_t oc = 0; oc < out_c; ++oc) {
              const std::int64_t bt =
                  bias_terms[static_cast<std::size_t>(oc)];
              for (std::int64_t p = 0; p < ohw; ++p)
                dst[oc * ohw + p] = requantize_word<WordT>(
                    acc[static_cast<std::size_t>(oc * ohw + p)], bt,
                    acc_frac, this->out_format);
            }
          }
        });
  }
};

template <typename WordT>
struct IpStage final : Stage<WordT> {
  std::int64_t in_features = 0, out_features = 0;
  std::vector<WordT> weights;  // [out_features, in_features], raw words
  int weight_frac = 0;
  std::vector<std::int64_t> bias;
  int bias_frac = 0;

  void run(const Words<WordT>& in, Words<WordT>* out) const override {
    const std::int64_t n = in.shape[0];
    QNN_CHECK(in.shape.count_from(1) == in_features);
    out->shape = Shape{n, out_features};
    out->format = this->out_format;
    out->w.assign(static_cast<std::size_t>(n * out_features), WordT{0});
    const int acc_frac = in.format.frac_bits() + weight_frac;
    std::vector<std::int64_t> acc(static_cast<std::size_t>(n * out_features));
    int_gemm_bt(n, out_features, in_features, in.w.data(), weights.data(),
                acc.data());
    std::vector<std::int64_t> bias_terms(
        static_cast<std::size_t>(out_features), 0);
    for (std::int64_t o = 0; o < out_features; ++o)
      if (!bias.empty())
        bias_terms[static_cast<std::size_t>(o)] = shift_raw_rounded(
            bias[static_cast<std::size_t>(o)], bias_frac, acc_frac);
    parallel_for_shards(
        n, kReductionShards, shard_grain(2 * out_features),
        [&](std::size_t, std::int64_t begin, std::int64_t end) {
          for (std::int64_t s = begin; s < end; ++s)
            for (std::int64_t o = 0; o < out_features; ++o)
              out->w[static_cast<std::size_t>(s * out_features + o)] =
                  requantize_word<WordT>(
                      acc[static_cast<std::size_t>(s * out_features + o)],
                      bias_terms[static_cast<std::size_t>(o)], acc_frac,
                      this->out_format);
        });
  }
};

template <typename WordT>
struct PoolStage final : Stage<WordT> {
  nn::PoolMode mode = nn::PoolMode::kMax;
  std::int64_t kernel = 2, stride = 2, pad = 0;

  void run(const Words<WordT>& in, Words<WordT>* out) const override {
    const Shape& s = in.shape;
    auto extent = [&](std::int64_t dim) {
      std::int64_t o = (dim + 2 * pad - kernel + stride - 1) / stride + 1;
      if (pad > 0 && (o - 1) * stride >= dim + pad) --o;
      return o;
    };
    const std::int64_t oh = extent(s.h()), ow = extent(s.w());
    out->shape = Shape{s.n(), s.c(), oh, ow};
    out->format = this->out_format;
    out->w.assign(static_cast<std::size_t>(out->shape.count()), WordT{0});
    const int in_frac = in.format.frac_bits();
    const std::int64_t planes = s.n() * s.c();
    parallel_for_shards(
        planes, kReductionShards, shard_grain(2 * oh * ow * kernel * kernel),
        [&](std::size_t, std::int64_t begin, std::int64_t end) {
          for (std::int64_t pl = begin; pl < end; ++pl) {
            const WordT* src = in.w.data() + pl * s.h() * s.w();
            WordT* dst = out->w.data() + pl * oh * ow;
            for (std::int64_t y = 0; y < oh; ++y) {
              const std::int64_t y0 =
                  std::max<std::int64_t>(0, y * stride - pad);
              const std::int64_t y1 =
                  std::min<std::int64_t>(s.h(), y * stride - pad + kernel);
              for (std::int64_t x = 0; x < ow; ++x) {
                const std::int64_t x0 =
                    std::max<std::int64_t>(0, x * stride - pad);
                const std::int64_t x1 =
                    std::min<std::int64_t>(s.w(), x * stride - pad + kernel);
                if (mode == nn::PoolMode::kMax) {
                  std::int64_t best =
                      std::numeric_limits<std::int64_t>::min();
                  for (std::int64_t yy = y0; yy < y1; ++yy)
                    for (std::int64_t xx = x0; xx < x1; ++xx)
                      best = std::max<std::int64_t>(
                          best, src[yy * s.w() + xx]);
                  dst[y * ow + x] = static_cast<WordT>(saturate(
                      shift_raw_rounded(best, in_frac,
                                        this->out_format.frac_bits()),
                      this->out_format));
                } else {
                  std::int64_t acc = 0;
                  for (std::int64_t yy = y0; yy < y1; ++yy)
                    for (std::int64_t xx = x0; xx < x1; ++xx)
                      acc += src[yy * s.w() + xx];
                  const double count =
                      static_cast<double>((y1 - y0) * (x1 - x0));
                  const double value = static_cast<double>(acc) *
                                       std::ldexp(1.0, -in_frac) / count;
                  dst[y * ow + x] =
                      static_cast<WordT>(this->out_format.to_raw(value));
                }
              }
            }
          }
        });
  }
};

template <typename WordT>
struct ReluStage final : Stage<WordT> {
  void run(const Words<WordT>& in, Words<WordT>* out) const override {
    out->shape = in.shape;
    out->format = this->out_format;
    out->w.resize(in.w.size());
    const int in_frac = in.format.frac_bits();
    const int out_frac = this->out_format.frac_bits();
    parallel_for_shards(
        static_cast<std::int64_t>(in.w.size()), kReductionShards,
        shard_grain(2),
        [&](std::size_t, std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            const std::int64_t v = std::max<std::int64_t>(
                in.w[static_cast<std::size_t>(i)], 0);
            out->w[static_cast<std::size_t>(i)] =
                static_cast<WordT>(saturate(
                    shift_raw_rounded(v, in_frac, out_frac),
                    this->out_format));
          }
        });
  }
};

template <typename WordT>
struct PlanStage final : Stage<WordT> {
  bool is_tanh = false;

  void run(const Words<WordT>& in, Words<WordT>* out) const override {
    out->shape = in.shape;
    out->format = this->out_format;
    out->w.resize(in.w.size());
    parallel_for_shards(
        static_cast<std::int64_t>(in.w.size()), kReductionShards,
        shard_grain(8),
        [&](std::size_t, std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            const double x =
                in.format.from_raw(in.w[static_cast<std::size_t>(i)]);
            const double y = is_tanh ? plan_tanh(x) : plan_sigmoid(x);
            out->w[static_cast<std::size_t>(i)] =
                static_cast<WordT>(this->out_format.to_raw(y));
          }
        });
  }
};

template <typename WordT>
struct PassthroughStage final : Stage<WordT> {
  void run(const Words<WordT>& in, Words<WordT>* out) const override {
    out->shape = in.shape;
    out->format = this->out_format;
    out->w.resize(in.w.size());
    const int in_frac = in.format.frac_bits();
    const int out_frac = this->out_format.frac_bits();
    parallel_for_shards(
        static_cast<std::int64_t>(in.w.size()), kReductionShards,
        shard_grain(2),
        [&](std::size_t, std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i)
            out->w[static_cast<std::size_t>(i)] =
                static_cast<WordT>(saturate(
                    shift_raw_rounded(in.w[static_cast<std::size_t>(i)],
                                      in_frac, out_frac),
                    this->out_format));
        });
  }
};

template <typename WordT>
struct Body {
  FixedPointFormat input_format{16, 8};
  std::vector<std::unique_ptr<Stage<WordT>>> stages;

  Words<WordT> run(const Tensor& input) const {
    Words<WordT> x;
    x.shape = input.shape();
    x.format = input_format;
    x.w.resize(static_cast<std::size_t>(input.count()));
    const float* d = input.data();
    for (std::int64_t i = 0; i < input.count(); ++i)
      x.w[static_cast<std::size_t>(i)] =
          static_cast<WordT>(input_format.to_raw(d[i]));
    for (const auto& stage : stages) {
      // Inner products consume flattened inputs (as the NFU does).
      if (dynamic_cast<const IpStage<WordT>*>(stage.get()) != nullptr &&
          x.shape.rank() != 2)
        x.shape = Shape{x.shape[0], x.shape.count_from(1)};
      Words<WordT> y;
      stage->run(x, &y);
      x = std::move(y);
    }
    return x;
  }
};

// Encodes one quantized parameter tensor through its calibrated format.
template <typename WordT>
void encode_param(const Tensor& values, const ValueQuantizer& q,
                  std::vector<WordT>* words, int* frac) {
  const auto& fq = dynamic_cast<const FixedQuantizer&>(q);
  QNN_CHECK(fq.format().has_value());
  *frac = fq.format()->frac_bits();
  words->resize(static_cast<std::size_t>(values.count()));
  for (std::int64_t i = 0; i < values.count(); ++i) {
    const std::int64_t raw =
        fq.format()->to_raw(static_cast<double>(values[i]));
    QNN_DCHECK(raw >= std::numeric_limits<WordT>::min() &&
               raw <= std::numeric_limits<WordT>::max());
    (*words)[static_cast<std::size_t>(i)] = static_cast<WordT>(raw);
  }
}

void encode_bias(const Tensor& values, const ValueQuantizer& q,
                 std::vector<std::int64_t>* raw, int* frac) {
  const auto& fq = dynamic_cast<const FixedQuantizer&>(q);
  QNN_CHECK(fq.format().has_value());
  *frac = fq.format()->frac_bits();
  raw->resize(static_cast<std::size_t>(values.count()));
  for (std::int64_t i = 0; i < values.count(); ++i)
    (*raw)[static_cast<std::size_t>(i)] =
        fq.format()->to_raw(static_cast<double>(values[i]));
}

template <typename WordT>
std::unique_ptr<Body<WordT>> build_body(nn::Network& net,
                                        const QuantizedNetwork& qnet) {
  auto body = std::make_unique<Body<WordT>>();
  body->input_format = site_fmt(qnet, 0);
  std::size_t param_index = 0;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    nn::Layer& layer = net.layer(li);
    const FixedPointFormat& of = site_fmt(qnet, li + 1);
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      auto stage = std::make_unique<ConvStage<WordT>>();
      const auto params = conv->params();
      encode_param(params[0]->value, qnet.weight_quantizer(param_index),
                   &stage->weights, &stage->weight_frac);
      if (params.size() > 1 && !params[1]->value.empty())
        encode_bias(params[1]->value, qnet.weight_quantizer(param_index + 1),
                    &stage->bias, &stage->bias_frac);
      param_index += params.size();
      stage->in_c = conv->in_channels();
      stage->kernel = conv->spec().kernel;
      stage->stride = conv->spec().stride;
      stage->pad = conv->spec().pad;
      stage->out_c = conv->spec().out_channels;
      stage->out_format = of;
      body->stages.push_back(std::move(stage));
    } else if (auto* ip = dynamic_cast<nn::InnerProduct*>(&layer)) {
      auto stage = std::make_unique<IpStage<WordT>>();
      const auto params = ip->params();
      encode_param(params[0]->value, qnet.weight_quantizer(param_index),
                   &stage->weights, &stage->weight_frac);
      if (params.size() > 1 && !params[1]->value.empty())
        encode_bias(params[1]->value, qnet.weight_quantizer(param_index + 1),
                    &stage->bias, &stage->bias_frac);
      param_index += params.size();
      stage->in_features = ip->in_features();
      stage->out_features = ip->out_features();
      stage->out_format = of;
      body->stages.push_back(std::move(stage));
    } else if (auto* pool = dynamic_cast<nn::Pool2d*>(&layer)) {
      auto stage = std::make_unique<PoolStage<WordT>>();
      stage->mode = pool->spec().mode;
      stage->kernel = pool->spec().kernel;
      stage->stride = pool->spec().stride;
      stage->pad = pool->spec().pad;
      stage->out_format = of;
      body->stages.push_back(std::move(stage));
    } else if (dynamic_cast<nn::Relu*>(&layer) != nullptr) {
      auto stage = std::make_unique<ReluStage<WordT>>();
      stage->out_format = of;
      body->stages.push_back(std::move(stage));
    } else if (dynamic_cast<nn::Sigmoid*>(&layer) != nullptr ||
               dynamic_cast<nn::Tanh*>(&layer) != nullptr) {
      auto stage = std::make_unique<PlanStage<WordT>>();
      stage->is_tanh = dynamic_cast<nn::Tanh*>(&layer) != nullptr;
      stage->out_format = of;
      body->stages.push_back(std::move(stage));
    } else if (dynamic_cast<nn::Dropout*>(&layer) != nullptr) {
      auto stage = std::make_unique<PassthroughStage<WordT>>();
      stage->out_format = of;
      body->stages.push_back(std::move(stage));
    } else {
      QNN_CHECK_MSG(false, "unsupported layer kind in IntInferenceEngine: "
                               << layer.kind());
    }
  }
  return body;
}

// True when the layer kind has a native integer stage.
bool supported_layer(nn::Layer& layer) {
  return dynamic_cast<nn::Conv2d*>(&layer) != nullptr ||
         dynamic_cast<nn::InnerProduct*>(&layer) != nullptr ||
         dynamic_cast<nn::Pool2d*>(&layer) != nullptr ||
         dynamic_cast<nn::Relu*>(&layer) != nullptr ||
         dynamic_cast<nn::Sigmoid*>(&layer) != nullptr ||
         dynamic_cast<nn::Tanh*>(&layer) != nullptr ||
         dynamic_cast<nn::Dropout*>(&layer) != nullptr;
}

}  // namespace

struct IntInferenceEngine::Impl {
  std::unique_ptr<Body<std::int8_t>> b8;
  std::unique_ptr<Body<std::int16_t>> b16;
};

std::string IntInferenceEngine::ineligibility_reason(
    const nn::Network& net, const QuantizedNetwork& qnet) {
  const PrecisionConfig& cfg = qnet.config();
  if (cfg.kind != PrecisionKind::kFixed)
    return "precision kind is not fixed-point";
  if (!qnet.calibrated()) return "network is not calibrated";
  if (cfg.rounding == Rounding::kStochastic)
    return "stochastic rounding is nondeterministic";
  for (std::size_t s = 0; s < qnet.num_sites(); ++s) {
    const auto* fq =
        dynamic_cast<const FixedQuantizer*>(&qnet.data_quantizer(s));
    if (fq == nullptr || !fq->format().has_value())
      return "data site without a calibrated fixed-point format";
    if (fq->format()->total_bits() > 16)
      return "data format wider than 16 bits";
  }
  auto& mutable_net = const_cast<nn::Network&>(net);
  std::size_t param_index = 0;
  for (std::size_t li = 0; li < mutable_net.num_layers(); ++li) {
    nn::Layer& layer = mutable_net.layer(li);
    if (!supported_layer(layer))
      return std::string("unsupported layer kind: ") + layer.kind();
    for (nn::Param* p : layer.params()) {
      const auto* fq = dynamic_cast<const FixedQuantizer*>(
          &qnet.weight_quantizer(param_index));
      if (fq == nullptr || !fq->format().has_value())
        return "parameter without a calibrated fixed-point format";
      // Weights become kernel operands; biases stay int64, any width.
      if (p->name == "w" && fq->format()->total_bits() > 16)
        return "weight format wider than 16 bits";
      ++param_index;
    }
  }
  return std::string();
}

IntInferenceEngine::IntInferenceEngine(nn::Network& net,
                                       const QuantizedNetwork& qnet)
    : impl_(std::make_unique<Impl>()) {
  const std::string reason = ineligibility_reason(net, qnet);
  QNN_CHECK_MSG(reason.empty(), "IntInferenceEngine: " << reason);

  bool fits8 = true;
  for (std::size_t s = 0; s < qnet.num_sites() && fits8; ++s)
    fits8 = site_fmt(qnet, s).total_bits() <= 8;
  std::size_t param_index = 0;
  for (std::size_t li = 0; li < net.num_layers() && fits8; ++li) {
    for (nn::Param* p : net.layer(li).params()) {
      if (p->name == "w") {
        const auto& fq = dynamic_cast<const FixedQuantizer&>(
            qnet.weight_quantizer(param_index));
        if (fq.format()->total_bits() > 8) fits8 = false;
      }
      ++param_index;
    }
  }
  if (fits8) {
    impl_->b8 = build_body<std::int8_t>(net, qnet);
  } else {
    impl_->b16 = build_body<std::int16_t>(net, qnet);
  }
}

IntInferenceEngine::~IntInferenceEngine() = default;

bool IntInferenceEngine::uses_int8() const { return impl_->b8 != nullptr; }

std::size_t IntInferenceEngine::num_stages() const {
  return impl_->b8 ? impl_->b8->stages.size() : impl_->b16->stages.size();
}

IntRawResult IntInferenceEngine::forward_raw(const Tensor& input) const {
  IntRawResult r;
  if (impl_->b8) {
    Words<std::int8_t> out = impl_->b8->run(input);
    r.shape = out.shape;
    r.format = out.format;
    r.raw.assign(out.w.begin(), out.w.end());
  } else {
    Words<std::int16_t> out = impl_->b16->run(input);
    r.shape = out.shape;
    r.format = out.format;
    r.raw.assign(out.w.begin(), out.w.end());
  }
  return r;
}

Tensor IntInferenceEngine::forward(const Tensor& input) const {
  const IntRawResult r = forward_raw(input);
  Tensor t(r.shape);
  for (std::int64_t i = 0; i < t.count(); ++i)
    t[i] = static_cast<float>(
        r.format.from_raw(r.raw[static_cast<std::size_t>(i)]));
  return t;
}

}  // namespace qnn::quant
