// Quantization-aware fine-tuning recipe (paper §IV-A):
// calibrate radix points from a float forward, then fine-tune with the
// dual-weight-set scheme, clipping masters after every update.
#pragma once

#include "data/dataset.h"
#include "nn/trainer.h"
#include "quant/qnetwork.h"

namespace qnn::quant {

struct QatConfig {
  nn::TrainConfig train;                 // fine-tune schedule
  std::int64_t calibration_samples = 64; // float forward batch for ranges
};

// Calibrates `qnet` (masters must hold trained full-precision weights)
// and fine-tunes it on `train_set`. Leaves masters restored.
nn::TrainResult qat_finetune(QuantizedNetwork& qnet,
                             const data::Dataset& train_set,
                             const QatConfig& config);

}  // namespace qnn::quant
