#include "quant/qat.h"

#include <algorithm>

#include "util/check.h"

namespace qnn::quant {

nn::TrainResult qat_finetune(QuantizedNetwork& qnet,
                             const data::Dataset& train_set,
                             const QatConfig& config) {
  QNN_CHECK(train_set.size() > 0);
  const std::int64_t n =
      std::min(config.calibration_samples, train_set.size());
  qnet.calibrate(data::batch_images(train_set, 0, n));

  nn::TrainConfig tc = config.train;
  QNN_CHECK_MSG(!tc.after_step, "QAT installs its own after_step hook");
  tc.after_step = [&qnet] { qnet.clip_masters(); };
  nn::TrainResult result = nn::train(qnet, train_set, tc);
  qnet.restore_masters();
  return result;
}

}  // namespace qnn::quant
