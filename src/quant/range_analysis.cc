#include "quant/range_analysis.h"

#include <algorithm>

namespace qnn::quant {
namespace {

// Strided subsample of `values` capped at kMaxCalibrationSamples.
std::vector<float> sample_values(std::span<const float> values) {
  std::vector<float> out;
  if (values.empty()) return out;
  const std::size_t stride =
      std::max<std::size_t>(1, values.size() / kMaxCalibrationSamples);
  out.reserve(values.size() / stride + 1);
  for (std::size_t i = 0; i < values.size(); i += stride)
    out.push_back(values[i]);
  return out;
}

// Merges `add` into `into`, re-thinning to the cap.
void merge_samples(std::vector<float>& into, const std::vector<float>& add) {
  into.insert(into.end(), add.begin(), add.end());
  if (into.size() > 2 * kMaxCalibrationSamples) {
    std::vector<float> thinned;
    thinned.reserve(kMaxCalibrationSamples);
    const std::size_t stride = into.size() / kMaxCalibrationSamples + 1;
    for (std::size_t i = 0; i < into.size(); i += stride)
      thinned.push_back(into[i]);
    into = std::move(thinned);
  }
}

}  // namespace

RangeStats analyze_ranges(nn::Network& net, const Tensor& batch) {
  RangeStats stats;

  for (nn::Param* p : net.trainable_params()) {
    const double m = p->value.max_abs();
    stats.param_max_abs.push_back(m);
    stats.global_param_max_abs = std::max(stats.global_param_max_abs, m);
    stats.param_samples.push_back(sample_values(p->value.values()));
    merge_samples(stats.global_param_samples, stats.param_samples.back());
  }

  stats.site_max_abs.reserve(net.num_layers() + 1);
  Tensor x = batch;
  stats.site_max_abs.push_back(x.max_abs());
  stats.site_samples.push_back(sample_values(x.values()));
  merge_samples(stats.global_data_samples, stats.site_samples.back());
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    x = net.layer(i).forward(x);
    stats.site_max_abs.push_back(x.max_abs());
    stats.site_samples.push_back(sample_values(x.values()));
    merge_samples(stats.global_data_samples, stats.site_samples.back());
  }
  for (double m : stats.site_max_abs)
    stats.global_data_max_abs = std::max(stats.global_data_max_abs, m);
  return stats;
}

}  // namespace qnn::quant
