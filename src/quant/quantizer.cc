#include "quant/quantizer.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace qnn::quant {
namespace {

// Mean squared error of quantizing `samples` with `q`.
template <typename Format>
double quantization_mse(std::span<const float> samples, const Format& q) {
  double mse = 0.0;
  for (float v : samples) {
    const double e = static_cast<double>(v) - q.quantize(static_cast<double>(v));
    mse += e * e;
  }
  return samples.empty() ? 0.0 : mse / static_cast<double>(samples.size());
}

}  // namespace

void FixedQuantizer::apply(Tensor& t) const {
  QNN_CHECK_MSG(format_.has_value(), "FixedQuantizer used before calibrate");
  const FixedPointFormat& f = *format_;
  float* d = t.data();
  for (std::int64_t i = 0; i < t.count(); ++i) d[i] = f.quantize(d[i]);
}

void FixedQuantizer::calibrate_with_samples(std::span<const float> samples,
                                            double max_abs) {
  // Start from the covering (max-abs) format and consider trading range
  // for resolution: each +1 on frac_bits halves the step but clips the
  // top octave. Pick the minimum-MSE candidate (Ristretto's criterion).
  // The MSE evaluation always uses deterministic nearest rounding so the
  // chosen radix does not depend on stochastic draws.
  const FixedPointFormat covering =
      FixedPointFormat::for_range(bits_, max_abs);
  if (samples.empty()) {
    format_ = FixedPointFormat(bits_, covering.frac_bits(), rounding_);
    return;
  }
  double best_mse = std::numeric_limits<double>::infinity();
  int best_frac = covering.frac_bits();
  for (int extra = 0; extra <= 8; ++extra) {
    const FixedPointFormat candidate(bits_, covering.frac_bits() + extra);
    const double mse = quantization_mse(samples, candidate);
    if (mse < best_mse) {
      best_mse = mse;
      best_frac = candidate.frac_bits();
    }
  }
  format_ = FixedPointFormat(bits_, best_frac, rounding_);
}

std::string FixedQuantizer::describe() const {
  return format_ ? format_->to_string()
                 : "fixed" + std::to_string(bits_) + "[uncalibrated]";
}

void Pow2Quantizer::apply(Tensor& t) const {
  QNN_CHECK_MSG(format_.has_value(), "Pow2Quantizer used before calibrate");
  const Pow2Format& f = *format_;
  float* d = t.data();
  for (std::int64_t i = 0; i < t.count(); ++i) d[i] = f.quantize(d[i]);
}

void Pow2Quantizer::calibrate_with_samples(std::span<const float> samples,
                                           double max_abs) {
  const Pow2Format covering = Pow2Format::for_range(bits_, max_abs);
  if (samples.empty()) {
    format_ = covering;
    return;
  }
  double best_mse = std::numeric_limits<double>::infinity();
  Pow2Format best = covering;
  for (int shift = 0; shift <= 4; ++shift) {
    const Pow2Format candidate(bits_, covering.exp_max() - shift);
    const double mse = quantization_mse(samples, candidate);
    if (mse < best_mse) {
      best_mse = mse;
      best = candidate;
    }
  }
  format_ = best;
}

std::string Pow2Quantizer::describe() const {
  return format_ ? format_->to_string()
                 : "pow2" + std::to_string(bits_) + "[uncalibrated]";
}

void BinaryQuantizer::apply(Tensor& t) const {
  const double scale = format_.scale_for(t.values());
  float* d = t.data();
  for (std::int64_t i = 0; i < t.count(); ++i)
    d[i] = static_cast<float>(BinaryFormat::quantize(d[i], scale));
}

std::unique_ptr<ValueQuantizer> make_weight_quantizer(
    const PrecisionConfig& config) {
  switch (config.kind) {
    case PrecisionKind::kFloat:
      return std::make_unique<IdentityQuantizer>();
    case PrecisionKind::kFixed:
      return std::make_unique<FixedQuantizer>(config.weight_bits,
                                              config.rounding);
    case PrecisionKind::kPow2:
      return std::make_unique<Pow2Quantizer>(config.weight_bits);
    case PrecisionKind::kBinary:
      return std::make_unique<BinaryQuantizer>(config.binary_scale);
  }
  return nullptr;
}

std::unique_ptr<ValueQuantizer> make_data_quantizer(
    const PrecisionConfig& config) {
  if (config.is_float())
    return std::make_unique<IdentityQuantizer>();
  // Pow2 and binary nets still carry fixed-point inputs/feature maps
  // (paper §IV-A3/4: 16-bit fixed-point data).
  return std::make_unique<FixedQuantizer>(config.input_bits,
                                          config.rounding);
}

}  // namespace qnn::quant
