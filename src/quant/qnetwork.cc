#include "quant/qnetwork.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "quant/int_inference.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qnn::quant {
namespace {

// Biases accumulate at the adder tree's precision, not the weight
// memory's: binary and power-of-two nets keep fixed-point biases at the
// data width (a ±1 bias would be useless), while pure fixed-point nets
// share the weight width.
std::unique_ptr<ValueQuantizer> make_param_quantizer(
    const PrecisionConfig& config, const nn::Param& p) {
  const bool is_bias = p.name == "b";
  if (config.is_float()) return std::make_unique<IdentityQuantizer>();
  if (is_bias && (config.kind == PrecisionKind::kBinary ||
                  config.kind == PrecisionKind::kPow2))
    return std::make_unique<FixedQuantizer>(config.input_bits,
                                            config.rounding);
  return make_weight_quantizer(config);
}

}  // namespace

QuantizedNetwork::QuantizedNetwork(nn::Network& net,
                                   const PrecisionConfig& config)
    : net_(net), config_(config), params_(net.trainable_params()) {
  for (nn::Param* p : params_)
    weight_quantizers_.push_back(make_param_quantizer(config_, *p));
  for (std::size_t site = 0; site <= net_.num_layers(); ++site)
    data_quantizers_.push_back(make_data_quantizer(config_));
  clip_limits_.assign(params_.size(), 0.0);
  site_guards_.assign(data_quantizers_.size(), GuardCounters{});
  param_guards_.assign(params_.size(), GuardCounters{});
  build_param_spans();
  if (config_.is_float()) calibrated_ = true;  // nothing to calibrate
}

QuantizedNetwork::QuantizedNetwork(
    nn::Network& net, const PrecisionConfig& config,
    const std::vector<int>& weight_bits_per_layer)
    : net_(net), config_(config), params_(net.trainable_params()) {
  QNN_CHECK_MSG(config.kind == PrecisionKind::kFixed,
                "mixed precision supports fixed-point configs only");
  std::size_t weight_index = 0;
  for (nn::Param* p : params_) {
    if (p->name == "w") {
      QNN_CHECK_MSG(weight_index < weight_bits_per_layer.size(),
                    "weight_bits_per_layer has too few entries");
      weight_quantizers_.push_back(std::make_unique<FixedQuantizer>(
          weight_bits_per_layer[weight_index], config.rounding));
      ++weight_index;
    } else {
      weight_quantizers_.push_back(make_param_quantizer(config_, *p));
    }
  }
  QNN_CHECK_MSG(weight_index == weight_bits_per_layer.size(),
                "weight_bits_per_layer has too many entries ("
                    << weight_bits_per_layer.size() << " for "
                    << weight_index << " weight tensors)");
  for (std::size_t site = 0; site <= net_.num_layers(); ++site)
    data_quantizers_.push_back(make_data_quantizer(config_));
  clip_limits_.assign(params_.size(), 0.0);
  site_guards_.assign(data_quantizers_.size(), GuardCounters{});
  param_guards_.assign(params_.size(), GuardCounters{});
  build_param_spans();
}

QuantizedNetwork::~QuantizedNetwork() = default;
QuantizedNetwork::QuantizedNetwork(QuantizedNetwork&&) noexcept = default;

void QuantizedNetwork::build_param_spans() {
  std::size_t off = 0;
  for (std::size_t i = 0; i < net_.num_layers(); ++i) {
    const std::size_t n = net_.layer(i).params().size();
    layer_param_spans_.emplace_back(off, off + n);
    off += n;
  }
  QNN_CHECK_MSG(off == params_.size(),
                "trainable_params() is not the per-layer concatenation ("
                    << off << " vs " << params_.size() << ")");
}

void QuantizedNetwork::calibrate(const Tensor& calibration_batch) {
  restore_masters();
  const RangeStats stats = analyze_ranges(net_, calibration_batch);
  const bool global = config_.radix_policy == RadixPolicy::kGlobal;

  const bool mse = config_.calibration == CalibrationRule::kMse;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const double max_abs =
        global ? stats.global_param_max_abs : stats.param_max_abs[i];
    if (mse) {
      weight_quantizers_[i]->calibrate_with_samples(
          global ? stats.global_param_samples : stats.param_samples[i],
          max_abs);
    } else {
      weight_quantizers_[i]->calibrate(max_abs);
    }
    // Clip masters at the largest representable magnitude of the chosen
    // format so they cannot drift arbitrarily beyond the grid during QAT
    // (BinaryConnect-style clipping generalized to every format).
    clip_limits_[i] = weight_quantizers_[i]->clip_limit();
  }
  for (std::size_t s = 0; s < data_quantizers_.size(); ++s) {
    const double max_abs =
        global ? stats.global_data_max_abs : stats.site_max_abs[s];
    if (mse) {
      data_quantizers_[s]->calibrate_with_samples(
          global ? stats.global_data_samples : stats.site_samples[s],
          max_abs);
    } else {
      data_quantizers_[s]->calibrate(max_abs);
    }
  }
  calibrated_ = true;
}

void QuantizedNetwork::save_masters() {
  QNN_DCHECK(!masters_saved_);
  masters_.clear();
  masters_.reserve(params_.size());
  for (nn::Param* p : params_) masters_.push_back(p->value);
  masters_saved_ = true;
}

void QuantizedNetwork::restore_masters() {
  frozen_ = false;
  int_engine_.reset();
  if (!masters_saved_) return;
  for (std::size_t i = 0; i < params_.size(); ++i)
    params_[i]->value = masters_[i];
  masters_saved_ = false;
}

void QuantizedNetwork::freeze_inference() {
  QNN_CHECK_MSG(calibrated_,
                "freeze_inference before calibrate()");
  if (frozen_) return;
  restore_masters();
  save_masters();
  quantize_params();
  frozen_ = true;
  // Native integer path (quant/int_inference): built from the live
  // quantized parameter image when the config qualifies and the env
  // doesn't opt out. Hook-free frozen forwards then run int end-to-end.
  if (int_inference_env_enabled() &&
      IntInferenceEngine::eligible(net_, *this))
    int_engine_ = std::make_unique<IntInferenceEngine>(net_, *this);
}

namespace {

// Counts NaN/Inf and values beyond the format's representable magnitude
// before the quantizer clips them to the grid. Large tensors scan in
// per-shard counters merged in shard order (integer sums, so the totals
// are order-independent by construction; the fixed order keeps the
// policy uniform).
// Process-wide mirror of every guard scan: lets RunReport surface the
// quantization health of a whole run without plumbing per-site counters
// out of each QuantizedNetwork instance.
struct GuardMetrics {
  obs::Counter values, saturated, nan, inf;
};

GuardMetrics& guard_metrics() {
  obs::Registry& r = obs::Registry::global();
  static GuardMetrics m{
      r.counter("quant.guard.values"), r.counter("quant.guard.saturated"),
      r.counter("quant.guard.nan"), r.counter("quant.guard.inf")};
  return m;
}

void guard_scan(const Tensor& t, double limit, GuardCounters& guards) {
  QNN_SPAN_N("guard_scan", "quant", t.count());
  const GuardCounters before = guards;
  const float* d = t.data();
  const std::int64_t n = t.count();
  constexpr std::int64_t kSerialCutoff = 1 << 14;
  if (n < kSerialCutoff) {
    for (std::int64_t i = 0; i < n; ++i) guards.observe(d[i], limit);
  } else {
    // Padded counter slots: observe() bumps several int64 fields per
    // element, so neighbor shards sharing a line would ping-pong it.
    const std::vector<Shard> shards =
        make_shards(n, kReductionShards, shard_grain(4));
    std::vector<Padded<GuardCounters>> partial(shards.size());
    parallel_run(static_cast<std::int64_t>(shards.size()),
                 [&](std::int64_t si) {
                   GuardCounters& g = partial[static_cast<std::size_t>(si)].v;
                   const Shard& sh = shards[static_cast<std::size_t>(si)];
                   for (std::int64_t i = sh.begin; i < sh.end; ++i)
                     g.observe(d[i], limit);
                 });
    for (const Padded<GuardCounters>& g : partial) guards += g.v;
  }
  GuardMetrics& gm = guard_metrics();
  gm.values.add(guards.values - before.values);
  gm.saturated.add(guards.saturated - before.saturated);
  gm.nan.add(guards.nan - before.nan);
  gm.inf.add(guards.inf - before.inf);
}

}  // namespace

void QuantizedNetwork::quantize_params() {
  QNN_SPAN("quantize_params", "quant");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    guard_scan(params_[i]->value, weight_quantizers_[i]->clip_limit(),
               param_guards_[i]);
    weight_quantizers_[i]->apply(params_[i]->value);
    if (hooks_.on_quantized_param)
      hooks_.on_quantized_param(i, params_[i]->value);
  }
}

void QuantizedNetwork::reset_guards() {
  site_guards_.assign(data_quantizers_.size(), GuardCounters{});
  param_guards_.assign(params_.size(), GuardCounters{});
}

GuardCounters QuantizedNetwork::total_guards() const {
  GuardCounters total;
  for (const GuardCounters& g : site_guards_) total += g;
  for (const GuardCounters& g : param_guards_) total += g;
  return total;
}

Tensor QuantizedNetwork::forward(const Tensor& input) {
  // Frozen + native engine + no fault hooks: run the integer path. The
  // decoded words land on exactly the grid the fake-quantized float
  // path produces (pinned by tests/int_gemm_oracle_test.cc against the
  // NFU oracle), so callers see the same tensor either way. Hooked
  // forwards (fault injection) fall through to the float path, whose
  // site/param mutation points the hooks contract with.
  if (frozen_ && int_engine_ && !hooks_.on_quantized_param &&
      !hooks_.on_accumulator && !hooks_.on_quantized_site)
    return int_engine_->forward(input);
  return forward_observed(input, SiteObserver());
}

Tensor QuantizedNetwork::forward_observed(const Tensor& input,
                                          const SiteObserver& observer) {
  Tensor x = forward_prologue(input);
  if (observer) observer(0, x);
  for (std::size_t i = 0; i < net_.num_layers(); ++i) {
    x = forward_step(i, x);
    if (observer) observer(i + 1, x);
  }
  return x;
}

Tensor QuantizedNetwork::forward_prologue(const Tensor& input) {
  QNN_CHECK_MSG(calibrated_, "QuantizedNetwork::forward before calibrate()");
  if (!frozen_) {
    restore_masters();
    save_masters();
    quantize_params();
  }

  Tensor x = input;
  guard_scan(x, data_quantizers_[0]->clip_limit(), site_guards_[0]);
  {
    QNN_SPAN_N("quantize", "quant", 0);
    data_quantizers_[0]->apply(x);
  }
  if (hooks_.on_quantized_site) hooks_.on_quantized_site(0, x);
  return x;
}

void QuantizedNetwork::rescrub_layer_params(std::size_t layer_index) {
  QNN_CHECK_MSG(masters_saved_,
                "rescrub_layer_params outside a forward");
  const auto [begin, end] = layer_param_spans_.at(layer_index);
  for (std::size_t i = begin; i < end; ++i) {
    params_[i]->value = masters_[i];
    weight_quantizers_[i]->apply(params_[i]->value);
    if (hooks_.on_quantized_param)
      hooks_.on_quantized_param(i, params_[i]->value);
  }
}

Tensor QuantizedNetwork::forward_step(std::size_t i, const Tensor& x) {
  QNN_CHECK_MSG(masters_saved_,
                "forward_step without a preceding forward_prologue");
  Tensor y = net_.layer(i).forward(x);
  if (hooks_.on_accumulator) hooks_.on_accumulator(i + 1, y);
  guard_scan(y, data_quantizers_[i + 1]->clip_limit(), site_guards_[i + 1]);
  {
    QNN_SPAN_N("quantize", "quant", static_cast<std::int64_t>(i) + 1);
    data_quantizers_[i + 1]->apply(y);
  }
  if (hooks_.on_quantized_site) hooks_.on_quantized_site(i + 1, y);
  return y;
}

void QuantizedNetwork::backward(const Tensor& grad_output) {
  QNN_CHECK_MSG(!frozen_,
                "backward on an inference-frozen network; thaw_inference() "
                "first");
  QNN_CHECK_MSG(masters_saved_, "backward without a preceding forward");
  // Straight-through estimator: activation and weight quantizers are
  // treated as identity for gradients, so the plain layer backward pass
  // (which ran its forward on quantized values) is exactly STE.
  Tensor g = grad_output;
  for (std::size_t i = net_.num_layers(); i-- > 0;)
    g = net_.layer(i).backward(g);
  restore_masters();

  // Optional fixed-point training (Gupta et al.): constrain the
  // accumulated parameter gradients to a per-tensor fixed-point grid
  // before the optimizer sees them.
  if (config_.gradient_bits > 0) {
    for (nn::Param* p : params_) {
      const double max_abs = p->grad.max_abs();
      if (max_abs == 0.0) continue;
      const FixedPointFormat f = FixedPointFormat::for_range(
          config_.gradient_bits, max_abs, config_.rounding);
      float* d = p->grad.data();
      for (std::int64_t j = 0; j < p->grad.count(); ++j)
        d[j] = f.quantize(d[j]);
    }
  }
}

std::vector<nn::Param*> QuantizedNetwork::trainable_params() {
  return params_;
}

QuantizedNetwork QuantizedNetwork::clone_onto(nn::Network& target) const {
  QNN_CHECK_MSG(!masters_saved_,
                "clone_onto while quantized weights are live; call "
                "restore_masters() first");
  QuantizedNetwork copy(target, config_);
  QNN_CHECK_MSG(copy.params_.size() == params_.size() &&
                    copy.data_quantizers_.size() == data_quantizers_.size(),
                "clone_onto target does not match the wrapped network");
  for (std::size_t i = 0; i < params_.size(); ++i)
    copy.weight_quantizers_[i] = weight_quantizers_[i]->clone();
  for (std::size_t s = 0; s < data_quantizers_.size(); ++s)
    copy.data_quantizers_[s] = data_quantizers_[s]->clone();
  copy.clip_limits_ = clip_limits_;
  copy.calibrated_ = calibrated_;
  return copy;
}

void QuantizedNetwork::merge_guards_from(const QuantizedNetwork& other) {
  QNN_CHECK(other.site_guards_.size() == site_guards_.size() &&
            other.param_guards_.size() == param_guards_.size());
  for (std::size_t s = 0; s < site_guards_.size(); ++s)
    site_guards_[s] += other.site_guards_[s];
  for (std::size_t i = 0; i < param_guards_.size(); ++i)
    param_guards_[i] += other.param_guards_[i];
}

std::string QuantizedNetwork::name() const {
  return net_.name() + "[" + config_.id() + "]";
}

void QuantizedNetwork::clip_masters() {
  QNN_CHECK_MSG(!masters_saved_,
                "clip_masters while quantized weights are live");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const double limit = clip_limits_[i];
    if (limit <= 0.0) continue;
    const float lo = static_cast<float>(-limit);
    const float hi = static_cast<float>(limit);
    float* d = params_[i]->value.data();
    for (std::int64_t j = 0; j < params_[i]->count(); ++j)
      d[j] = std::clamp(d[j], lo, hi);
  }
}

}  // namespace qnn::quant
