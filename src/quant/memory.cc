#include "quant/memory.h"

namespace qnn::quant {

MemoryFootprint memory_footprint(const nn::Network& net, const Shape& input,
                                 const PrecisionConfig& config) {
  MemoryFootprint m;
  for (const nn::LayerDesc& d : net.describe(input)) {
    m.weight_count += d.weights;
    m.bias_count += d.biases;
  }
  m.weight_bits_each = config.weight_bits;
  // Bias width matches the parameter quantizer policy in qnetwork.cc.
  switch (config.kind) {
    case PrecisionKind::kFloat:
      m.bias_bits_each = 32;
      break;
    case PrecisionKind::kFixed:
      m.bias_bits_each = config.weight_bits;
      break;
    case PrecisionKind::kPow2:
    case PrecisionKind::kBinary:
      m.bias_bits_each = config.input_bits;
      break;
  }
  m.input_elements = input.count_from(1);
  m.input_bits_each = config.input_bits;
  return m;
}

}  // namespace qnn::quant
