// Native integer inference (DESIGN.md §15).
//
// The fake-quantized float path constrains values to fixed-point grids
// but still *computes* in float32. This engine executes a calibrated
// fixed-point QuantizedNetwork the way the accelerator would — and the
// way hw/nfu_sim's bit-level oracle does: weights, biases, and
// activations live as raw two's-complement words, conv and inner
// product run through the native int8/int16 GEMM kernels
// (tensor/int_gemm) with exact int64 accumulation, and every layer
// boundary requantizes into the site's calibrated format with the same
// shift-round-saturate step as the NFU. The contract, pinned by
// tests/int_gemm_oracle_test.cc, is word-for-word equality with
// NfuSimulator on every supported network.
//
// QuantizedNetwork::freeze_inference() builds one of these whenever the
// config is eligible (fixed-point, <= 16-bit weights and data,
// deterministic rounding, supported layer kinds) and QNN_INT_INFER is
// not "off"; frozen forwards then run in the integer domain end-to-end,
// which is how the serve replica tiers (fixed16/fixed8) pick the native
// path up automatically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fixed/fixed_format.h"
#include "nn/network.h"
#include "tensor/tensor.h"

namespace qnn::quant {

class QuantizedNetwork;

// One QNN_INT_INFER spelling: "on"/"1" -> true, "off"/"0" -> false,
// "auto"/"" -> nullopt (auto resolves to ON for eligible configs).
// Invalid spellings return nullopt and set *invalid. Hardened like
// ThreadPool::env_threads(); exposed for the dispatch unit tests.
std::optional<bool> parse_int_infer_env(const std::string& value,
                                        bool* invalid = nullptr);

// Reads QNN_INT_INFER from the environment on every call (freeze-time
// only, so tests can setenv between freezes). Unset/auto/on -> true,
// off -> false, garbage -> warn once, then true.
bool int_inference_env_enabled();

// Raw words of a forward's final site — the exact integers the engine
// produced, for differential comparison against hw::RawTensor.
struct IntRawResult {
  Shape shape;
  std::vector<std::int64_t> raw;
  FixedPointFormat format{16, 8};
};

class IntInferenceEngine {
 public:
  // Empty when the network qualifies for the native path; otherwise a
  // human-readable reason (unsupported kind/layer, too-wide formats,
  // stochastic rounding, not calibrated, ...).
  static std::string ineligibility_reason(const nn::Network& net,
                                          const QuantizedNetwork& qnet);
  static bool eligible(const nn::Network& net,
                       const QuantizedNetwork& qnet) {
    return ineligibility_reason(net, qnet).empty();
  }

  // Captures weights and formats from `qnet`, which must be calibrated
  // with its quantized parameter image live (i.e. called from inside
  // freeze_inference(), after quantize_params()).
  IntInferenceEngine(nn::Network& net, const QuantizedNetwork& qnet);
  ~IntInferenceEngine();

  IntInferenceEngine(const IntInferenceEngine&) = delete;
  IntInferenceEngine& operator=(const IntInferenceEngine&) = delete;

  // Integer-domain forward; returns the decoded float image of the
  // final site's raw words (injective for <= 16-bit formats, so float
  // equality of outputs IS word equality).
  Tensor forward(const Tensor& input) const;

  // Same forward, returning the raw words themselves.
  IntRawResult forward_raw(const Tensor& input) const;

  // True when every weight and data format fits 8 bits and the engine
  // runs on int8 storage + the int8 kernel; false -> int16.
  bool uses_int8() const;

  std::size_t num_stages() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qnn::quant
