// Memory footprint accounting (paper §V-B): parameter storage and input
// storage shrink linearly with bit width — the 2×–32× reductions the
// paper reports.
#pragma once

#include "nn/network.h"
#include "quant/qconfig.h"

namespace qnn::quant {

struct MemoryFootprint {
  std::int64_t weight_count = 0;
  std::int64_t bias_count = 0;
  std::int64_t weight_bits_each = 0;
  std::int64_t bias_bits_each = 0;
  std::int64_t input_elements = 0;   // one sample
  std::int64_t input_bits_each = 0;

  std::int64_t param_bits() const {
    return weight_count * weight_bits_each + bias_count * bias_bits_each;
  }
  double param_kb() const {
    return static_cast<double>(param_bits()) / 8.0 / 1024.0;
  }
  double input_kb() const {
    return static_cast<double>(input_elements * input_bits_each) / 8.0 /
           1024.0;
  }
};

// `input` is the single-sample input shape (N treated as 1).
MemoryFootprint memory_footprint(const nn::Network& net, const Shape& input,
                                 const PrecisionConfig& config);

}  // namespace qnn::quant
