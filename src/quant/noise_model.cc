#include "quant/noise_model.h"

#include <algorithm>
#include <cmath>

#include "nn/conv.h"
#include "nn/inner_product.h"
#include "nn/pool.h"
#include "util/check.h"

namespace qnn::quant {
namespace {

double mean_square(const Tensor& t) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < t.count(); ++i)
    acc += static_cast<double>(t[i]) * t[i];
  return t.count() > 0 ? acc / static_cast<double>(t.count()) : 0.0;
}

double mean_square_diff(const Tensor& a, const Tensor& b) {
  QNN_CHECK(a.count() == b.count());
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.count(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return a.count() > 0 ? acc / static_cast<double>(a.count()) : 0.0;
}

// Uniform-quantizer injection noise Δ²/12 for a site's data format
// (0 for the float config's identity quantizer).
double site_injection(const ValueQuantizer& q) {
  const auto* fq = dynamic_cast<const FixedQuantizer*>(&q);
  if (fq == nullptr || !fq->format().has_value()) return 0.0;
  const double step = fq->format()->step();
  return step * step / 12.0;
}

// Exact weight-quantization noise power: mean (w_q - w)² over a layer's
// weight tensor — deterministic, so "analytical" may use it directly.
double weight_noise_power(const Tensor& master,
                          const ValueQuantizer& q) {
  Tensor quantized = master;
  q.apply(quantized);
  return mean_square_diff(quantized, master);
}

// Standard normal upper-tail probability.
double tail(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

double SiteNoise::sqnr_db() const {
  if (noise_power <= 0.0) return 300.0;  // effectively noiseless
  if (signal_power <= 0.0) return 0.0;
  return 10.0 * std::log10(signal_power / noise_power);
}

NoiseReport analyze_noise(nn::Network& float_net, QuantizedNetwork& qnet,
                          const data::Dataset& d,
                          std::int64_t max_samples) {
  QNN_CHECK_MSG(qnet.calibrated(), "calibrate qnet before analyze_noise");
  const std::int64_t n = std::min(max_samples, d.size());
  const Tensor batch = data::batch_images(d, 0, n);

  NoiseReport report;
  const std::size_t num_sites = qnet.num_sites();

  // ---- Float reference pass (masters must be live). -------------------
  qnet.restore_masters();
  std::vector<Tensor> float_sites;
  float_sites.reserve(num_sites);
  {
    Tensor x = batch;
    float_sites.push_back(x);
    for (std::size_t i = 0; i < float_net.num_layers(); ++i) {
      x = float_net.layer(i).forward(x);
      float_sites.push_back(x);
    }
  }
  QNN_CHECK(float_sites.size() == num_sites);

  // ---- Quantized pass with site observation. ---------------------------
  std::vector<Tensor> quant_sites(num_sites);
  const Tensor q_logits = qnet.forward_observed(
      batch, [&](std::size_t site, const Tensor& x) {
        quant_sites[site] = x;
      });
  qnet.restore_masters();

  report.measured.resize(num_sites);
  for (std::size_t s = 0; s < num_sites; ++s) {
    report.measured[s].signal_power = mean_square(float_sites[s]);
    report.measured[s].noise_power =
        mean_square_diff(quant_sites[s], float_sites[s]);
  }

  // ---- Measured flip rate. ---------------------------------------------
  const Tensor& f_logits = float_sites.back();
  QNN_CHECK(f_logits.shape().rank() == 2);
  const std::int64_t classes = f_logits.shape()[1];
  std::int64_t flips = 0;
  for (std::int64_t s = 0; s < n; ++s) {
    const float* fr = f_logits.data() + s * classes;
    const float* qr = q_logits.data() + s * classes;
    const auto f_arg = std::max_element(fr, fr + classes) - fr;
    const auto q_arg = std::max_element(qr, qr + classes) - qr;
    if (f_arg != q_arg) ++flips;
  }
  report.measured_flip_rate =
      100.0 * static_cast<double>(flips) / static_cast<double>(n);

  // ---- Analytical propagation. ------------------------------------------
  const auto params = float_net.trainable_params();
  report.predicted_noise_power.resize(num_sites, 0.0);
  report.predicted_sqnr_db.resize(num_sites, 0.0);

  double noise = site_injection(qnet.data_quantizer(0));
  report.predicted_noise_power[0] = noise;
  std::size_t param_index = 0;
  for (std::size_t li = 0; li < float_net.num_layers(); ++li) {
    nn::Layer& layer = float_net.layer(li);
    const double requant = site_injection(qnet.data_quantizer(li + 1));
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      const std::int64_t fan_in = conv->in_channels() *
                                  conv->spec().kernel *
                                  conv->spec().kernel;
      const Tensor& w = params[param_index]->value;
      const double w2 = mean_square(w);
      const double sw2 =
          weight_noise_power(w, qnet.weight_quantizer(param_index));
      const double x2 = mean_square(float_sites[li]);
      noise = noise * static_cast<double>(fan_in) * w2 +
              sw2 * static_cast<double>(fan_in) * x2 + requant;
      param_index += conv->params().size();
    } else if (auto* ip = dynamic_cast<nn::InnerProduct*>(&layer)) {
      const std::int64_t fan_in = ip->in_features();
      const Tensor& w = params[param_index]->value;
      const double w2 = mean_square(w);
      const double sw2 =
          weight_noise_power(w, qnet.weight_quantizer(param_index));
      const double x2 = mean_square(float_sites[li]);
      noise = noise * static_cast<double>(fan_in) * w2 +
              sw2 * static_cast<double>(fan_in) * x2 + requant;
      param_index += ip->params().size();
    } else if (auto* pool = dynamic_cast<nn::Pool2d*>(&layer)) {
      if (pool->spec().mode == nn::PoolMode::kAvg)
        noise /= static_cast<double>(pool->spec().kernel *
                                     pool->spec().kernel);
      noise += requant;
    } else if (std::string(layer.kind()) == "relu") {
      noise *= 0.5;  // half the units are clamped to zero
      noise += requant;
    } else {
      noise += requant;  // pass-through for other element-wise layers
    }
    report.predicted_noise_power[li + 1] = noise;
  }
  for (std::size_t s = 0; s < num_sites; ++s) {
    const double sig = report.measured[s].signal_power;
    const double nz = report.predicted_noise_power[s];
    report.predicted_sqnr_db[s] =
        nz <= 0.0 ? 300.0
                  : 10.0 * std::log10(std::max(sig, 1e-30) / nz);
  }

  // ---- Predicted flip rate from float logit margins. ---------------------
  const double logit_sigma =
      std::sqrt(std::max(report.predicted_noise_power.back(), 0.0));
  if (logit_sigma > 0) {
    double acc = 0.0;
    for (std::int64_t s = 0; s < n; ++s) {
      const float* fr = f_logits.data() + s * classes;
      float top1 = -1e30f, top2 = -1e30f;
      for (std::int64_t k = 0; k < classes; ++k) {
        if (fr[k] > top1) {
          top2 = top1;
          top1 = fr[k];
        } else if (fr[k] > top2) {
          top2 = fr[k];
        }
      }
      const double margin = static_cast<double>(top1) - top2;
      // Both logits perturbed independently: margin noise std √2 σ.
      acc += tail(margin / (std::sqrt(2.0) * logit_sigma));
    }
    report.predicted_flip_rate = 100.0 * acc / static_cast<double>(n);
  }
  return report;
}

}  // namespace qnn::quant
