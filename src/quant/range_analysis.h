// Dynamic-range analysis (the Ristretto step the paper builds on):
// observe max-abs statistics of parameters and of activations on a
// calibration batch, from which radix-point locations are chosen.
#pragma once

#include <vector>

#include "nn/network.h"
#include "tensor/tensor.h"

namespace qnn::quant {

struct RangeStats {
  // Parameters, in nn::Network::trainable_params() order.
  std::vector<double> param_max_abs;
  double global_param_max_abs = 0.0;

  // Activation "sites": site 0 is the network input; site i+1 is the
  // output of layer i. Sized num_layers + 1.
  std::vector<double> site_max_abs;
  double global_data_max_abs = 0.0;

  // Strided value samples per group, for MSE-optimal format selection.
  std::vector<std::vector<float>> param_samples;  // per param
  std::vector<std::vector<float>> site_samples;   // per site
  std::vector<float> global_param_samples;
  std::vector<float> global_data_samples;
};

// Cap on samples kept per group during range analysis.
inline constexpr std::size_t kMaxCalibrationSamples = 4096;

// Runs a full-precision forward over `batch` and records max-abs plus
// value samples at every site; parameter stats come from the tensors.
RangeStats analyze_ranges(nn::Network& net, const Tensor& batch);

}  // namespace qnn::quant
