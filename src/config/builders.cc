#include "config/builders.h"

#include <sstream>

#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/inner_product.h"
#include "nn/lrn.h"
#include "nn/pool.h"
#include "util/check.h"

namespace qnn::config {
namespace {

// Parses "1x28x28" (CxHxW) or a single integer (flat features).
Shape parse_input_shape(const std::string& spec) {
  std::vector<std::int64_t> dims{1};
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, 'x')) {
    QNN_CHECK_MSG(!part.empty(), "bad input shape '" << spec << '\'');
    dims.push_back(std::stoll(part));
  }
  QNN_CHECK_MSG(dims.size() == 2 || dims.size() == 4,
                "input shape '" << spec
                                << "' must be F or CxHxW");
  return Shape{dims};
}

// Tracks the flowing shape so layers can infer their input channel /
// feature counts.
struct ShapeTracker {
  Shape shape;

  std::int64_t channels() const {
    QNN_CHECK_MSG(shape.rank() == 4,
                  "conv/pool after flattening is not supported");
    return shape.c();
  }
  std::int64_t flat_features() const { return shape.count_from(1); }
};

void add_layer(nn::Network& net, ShapeTracker& tracker,
               const ConfigNode& layer) {
  const std::string type = layer.get("type");
  if (type == "conv") {
    nn::ConvSpec spec;
    spec.out_channels = layer.get_int("out");
    spec.kernel = layer.get_int("kernel");
    spec.stride = layer.get_int_or("stride", 1);
    spec.pad = layer.get_int_or("pad", 0);
    spec.bias = layer.get_bool_or("bias", true);
    auto& l = net.add<nn::Conv2d>(tracker.channels(), spec);
    tracker.shape = l.output_shape(tracker.shape);
  } else if (type == "maxpool" || type == "avgpool") {
    nn::PoolSpec spec;
    spec.mode = type == "maxpool" ? nn::PoolMode::kMax : nn::PoolMode::kAvg;
    spec.kernel = layer.get_int("kernel");
    spec.stride = layer.get_int_or("stride", spec.kernel);
    spec.pad = layer.get_int_or("pad", 0);
    auto& l = net.add<nn::Pool2d>(spec);
    tracker.shape = l.output_shape(tracker.shape);
  } else if (type == "ip" || type == "innerproduct") {
    const std::int64_t out = layer.get_int("out");
    net.add<nn::InnerProduct>(tracker.flat_features(), out,
                              layer.get_bool_or("bias", true));
    tracker.shape = Shape{1, out};
  } else if (type == "relu") {
    net.add<nn::Relu>();
  } else if (type == "sigmoid") {
    net.add<nn::Sigmoid>();
  } else if (type == "tanh") {
    net.add<nn::Tanh>();
  } else if (type == "dropout") {
    net.add<nn::Dropout>(layer.get_double("p"),
                         static_cast<std::uint64_t>(
                             layer.get_int_or("seed", 17)));
  } else if (type == "lrn") {
    nn::LrnSpec spec;
    spec.local_size = layer.get_int_or("local_size", 5);
    spec.alpha = layer.get_double_or("alpha", 1e-4);
    spec.beta = layer.get_double_or("beta", 0.75);
    spec.k = layer.get_double_or("k", 1.0);
    net.add<nn::Lrn>(spec);
  } else {
    QNN_CHECK_MSG(false, "unknown layer type '" << type << '\'');
  }
}

}  // namespace

BuiltNetwork build_network(const ConfigNode& node) {
  BuiltNetwork out;
  if (node.has("preset")) {
    const std::string preset = node.get("preset");
    nn::ZooConfig zc;
    zc.channel_scale = node.get_double_or("channel_scale", 1.0);
    zc.init_seed =
        static_cast<std::uint64_t>(node.get_int_or("init_seed", 1));
    out.network = nn::make_network(preset, zc);
    out.input_shape = nn::input_shape_for(preset);
    return out;
  }
  QNN_CHECK_MSG(node.has("input"),
                "network block needs 'preset' or 'input' + layers");
  out.input_shape = parse_input_shape(node.get("input"));
  out.network =
      std::make_unique<nn::Network>(node.get_or("name", "custom"));
  ShapeTracker tracker{out.input_shape};
  const auto& layers = node.blocks("layer");
  QNN_CHECK_MSG(!layers.empty(), "custom network has no layer blocks");
  for (const ConfigNode& layer : layers)
    add_layer(*out.network, tracker, layer);
  Rng rng(static_cast<std::uint64_t>(node.get_int_or("init_seed", 1)));
  out.network->init_weights(rng);
  return out;
}

data::SyntheticConfig dataset_config(const ConfigNode& node) {
  data::SyntheticConfig cfg;
  cfg.num_train = node.get_int_or("train", cfg.num_train);
  cfg.num_test = node.get_int_or("test", cfg.num_test);
  cfg.seed = static_cast<std::uint64_t>(
      node.get_int_or("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.noise_scale = node.get_double_or("noise_scale", 1.0);
  return cfg;
}

std::string dataset_name(const ConfigNode& node) {
  return node.get("name");
}

data::Split build_dataset(const ConfigNode& node) {
  return data::make_dataset(dataset_name(node), dataset_config(node));
}

nn::TrainConfig build_train_config(const ConfigNode& node) {
  nn::TrainConfig tc;
  tc.epochs = static_cast<int>(node.get_int_or("epochs", tc.epochs));
  tc.batch_size = node.get_int_or("batch", tc.batch_size);
  tc.sgd.learning_rate = node.get_double_or("lr", tc.sgd.learning_rate);
  tc.sgd.momentum = node.get_double_or("momentum", tc.sgd.momentum);
  tc.sgd.weight_decay =
      node.get_double_or("weight_decay", tc.sgd.weight_decay);
  tc.sgd.step_epochs =
      static_cast<int>(node.get_int_or("lr_step", tc.sgd.step_epochs));
  tc.sgd.gamma = node.get_double_or("lr_gamma", tc.sgd.gamma);
  tc.sgd.clip_grad_norm =
      node.get_double_or("clip_grad_norm", tc.sgd.clip_grad_norm);
  tc.shuffle_seed = static_cast<std::uint64_t>(
      node.get_int_or("shuffle_seed",
                      static_cast<std::int64_t>(tc.shuffle_seed)));
  tc.verbose = node.get_bool_or("verbose", false);
  return tc;
}

quant::PrecisionConfig build_precision(const ConfigNode& node) {
  const std::string kind = node.get("kind");
  quant::PrecisionConfig cfg;
  if (kind == "float") {
    cfg = quant::float_config();
  } else if (kind == "fixed") {
    cfg = quant::fixed_config(
        static_cast<int>(node.get_int("weight_bits")),
        static_cast<int>(node.get_int("input_bits")));
  } else if (kind == "pow2") {
    cfg = quant::pow2_config(
        static_cast<int>(node.get_int_or("weight_bits", 6)),
        static_cast<int>(node.get_int_or("input_bits", 16)));
  } else if (kind == "binary") {
    cfg = quant::binary_config(
        static_cast<int>(node.get_int_or("input_bits", 16)),
        node.get_or("scale", "meanabs") == "one"
            ? BinaryScaleMode::kPlusMinusOne
            : BinaryScaleMode::kMeanAbs);
  } else {
    QNN_CHECK_MSG(false, "unknown precision kind '" << kind << '\'');
  }
  const std::string radix = node.get_or("radix", "per_layer");
  QNN_CHECK_MSG(radix == "per_layer" || radix == "global",
                "radix must be per_layer or global");
  cfg.radix_policy = radix == "global" ? quant::RadixPolicy::kGlobal
                                       : quant::RadixPolicy::kPerLayer;
  const std::string rounding = node.get_or("rounding", "nearest");
  if (rounding == "nearest") cfg.rounding = Rounding::kNearest;
  else if (rounding == "floor") cfg.rounding = Rounding::kFloor;
  else if (rounding == "stochastic") cfg.rounding = Rounding::kStochastic;
  else QNN_CHECK_MSG(false, "unknown rounding '" << rounding << '\'');
  return cfg;
}

}  // namespace qnn::config
