#include "config/config_node.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/fileio.h"

namespace qnn::config {
namespace {

struct Token {
  enum Kind { kIdent, kColonValue, kOpenBrace, kCloseBrace, kEnd } kind;
  std::string text;
  int line;
};

// Tokenizer: identifiers, ':' followed by a value (to end of
// whitespace), braces. '#' comments to end of line.
class Lexer {
 public:
  Lexer(const std::string& text, const std::string& source)
      : text_(text), source_(source), pos_(utf8_bom_offset(text)) {}

  // "<source>:<line>" prefix for parse errors.
  std::string where(int line) const {
    return source_ + ":" + std::to_string(line);
  }
  std::string where() const { return where(line_); }

  Token next() {
    skip_space_and_comments();
    if (pos_ >= text_.size()) return {Token::kEnd, "", line_};
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      return {Token::kOpenBrace, "{", line_};
    }
    if (c == '}') {
      ++pos_;
      return {Token::kCloseBrace, "}", line_};
    }
    QNN_CHECK_MSG(std::isalpha(static_cast<unsigned char>(c)) || c == '_',
                  where() << ": config parse error: unexpected '" << c
                          << '\'');
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_'))
      ++pos_;
    std::string ident = text_.substr(start, pos_ - start);
    skip_inline_space();
    if (pos_ < text_.size() && text_[pos_] == ':') {
      ++pos_;
      skip_inline_space();
      // A value is one whitespace-delimited token (numbers, idents,
      // shapes like 1x28x28), so several pairs may share a line.
      const std::size_t vstart = pos_;
      while (pos_ < text_.size() &&
             !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
             text_[pos_] != '#' && text_[pos_] != '}')
        ++pos_;
      std::string value = text_.substr(vstart, pos_ - vstart);
      QNN_CHECK_MSG(!value.empty(),
                    where() << ": config parse error: empty value for '"
                            << ident << '\'');
      return {Token::kColonValue, ident + "\n" + value, line_};
    }
    return {Token::kIdent, std::move(ident), line_};
  }

 private:
  void skip_inline_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t'))
      ++pos_;
  }
  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  const std::string source_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

void parse_block(Lexer& lexer, ConfigNode& node, bool top_level) {
  for (;;) {
    const Token t = lexer.next();
    switch (t.kind) {
      case Token::kEnd:
        QNN_CHECK_MSG(top_level,
                      lexer.where(t.line)
                          << ": config parse error: unexpected end of "
                             "input inside a block");
        return;
      case Token::kCloseBrace:
        QNN_CHECK_MSG(!top_level, lexer.where(t.line)
                                      << ": config parse error: stray '}'");
        return;
      case Token::kColonValue: {
        const auto split = t.text.find('\n');
        node.add_value(t.text.substr(0, split), t.text.substr(split + 1));
        break;
      }
      case Token::kIdent: {
        const Token open = lexer.next();
        QNN_CHECK_MSG(open.kind == Token::kOpenBrace,
                      lexer.where(open.line)
                          << ": config parse error: expected '{' after '"
                          << t.text << '\'');
        parse_block(lexer, node.add_block(t.text), /*top_level=*/false);
        break;
      }
      case Token::kOpenBrace:
        QNN_CHECK_MSG(false, lexer.where(t.line)
                                 << ": config parse error: unexpected '{'");
    }
  }
}

}  // namespace

bool ConfigNode::has(const std::string& key) const {
  const auto it = values_.find(key);
  return it != values_.end() && !it->second.empty();
}

const std::string& ConfigNode::get(const std::string& key) const {
  const auto it = values_.find(key);
  QNN_CHECK_MSG(it != values_.end(), "missing config key '" << key << '\'');
  QNN_CHECK_MSG(it->second.size() == 1,
                "config key '" << key << "' is repeated");
  return it->second.front();
}

std::string ConfigNode::get_or(const std::string& key,
                               const std::string& fallback) const {
  return has(key) ? get(key) : fallback;
}

std::int64_t ConfigNode::get_int(const std::string& key) const {
  const std::string& v = get(key);
  std::size_t consumed = 0;
  const std::int64_t out = std::stoll(v, &consumed);
  QNN_CHECK_MSG(consumed == v.size(),
                "config key '" << key << "': '" << v << "' is not an int");
  return out;
}

std::int64_t ConfigNode::get_int_or(const std::string& key,
                                    std::int64_t fallback) const {
  return has(key) ? get_int(key) : fallback;
}

double ConfigNode::get_double(const std::string& key) const {
  const std::string& v = get(key);
  std::size_t consumed = 0;
  const double out = std::stod(v, &consumed);
  QNN_CHECK_MSG(consumed == v.size(), "config key '"
                                          << key << "': '" << v
                                          << "' is not a number");
  return out;
}

double ConfigNode::get_double_or(const std::string& key,
                                 double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

bool ConfigNode::get_bool_or(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  const std::string& v = get(key);
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  QNN_CHECK_MSG(false, "config key '" << key << "': '" << v
                                      << "' is not a bool");
  return fallback;
}

const std::vector<std::string>& ConfigNode::get_all(
    const std::string& key) const {
  static const std::vector<std::string> kEmpty;
  const auto it = values_.find(key);
  return it == values_.end() ? kEmpty : it->second;
}

bool ConfigNode::has_block(const std::string& name) const {
  const auto it = children_.find(name);
  return it != children_.end() && !it->second.empty();
}

const ConfigNode& ConfigNode::block(const std::string& name) const {
  const auto it = children_.find(name);
  QNN_CHECK_MSG(it != children_.end() && !it->second.empty(),
                "missing config block '" << name << '\'');
  QNN_CHECK_MSG(it->second.size() == 1,
                "config block '" << name << "' is repeated");
  return it->second.front();
}

const std::vector<ConfigNode>& ConfigNode::blocks(
    const std::string& name) const {
  static const std::vector<ConfigNode> kEmpty;
  const auto it = children_.find(name);
  return it == children_.end() ? kEmpty : it->second;
}

void ConfigNode::add_value(const std::string& key, std::string value) {
  values_[key].push_back(std::move(value));
}

ConfigNode& ConfigNode::add_block(const std::string& name) {
  children_[name].emplace_back();
  return children_[name].back();
}

std::vector<std::string> ConfigNode::keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

ConfigNode parse_config(const std::string& text,
                        const std::string& source_name) {
  ConfigNode root;
  Lexer lexer(text, source_name);
  parse_block(lexer, root, /*top_level=*/true);
  return root;
}

ConfigNode load_config(const std::string& path) {
  std::ifstream in(path);
  QNN_CHECK_MSG(in.good(), "cannot open config " << path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_config(ss.str(), path);
}

}  // namespace qnn::config
