// A minimal prototxt-flavored configuration format:
//
//   train {
//     epochs: 5
//     lr: 0.02          # comments run to end of line
//   }
//   layer { type: conv out: 20 kernel: 5 }
//   layer { type: relu }
//
// Scalars are `key: value` pairs (repeatable); blocks are
// `name { ... }` (repeatable, nestable). Values are stored as strings
// with typed accessors.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace qnn::config {

class ConfigNode {
 public:
  // --- scalar fields ----------------------------------------------------
  bool has(const std::string& key) const;
  // Returns the value of `key`, or throws if absent / repeated.
  const std::string& get(const std::string& key) const;
  // Returns the value of `key` or `fallback` if absent.
  std::string get_or(const std::string& key,
                     const std::string& fallback) const;
  std::int64_t get_int(const std::string& key) const;
  std::int64_t get_int_or(const std::string& key,
                          std::int64_t fallback) const;
  double get_double(const std::string& key) const;
  double get_double_or(const std::string& key, double fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;
  // All values of a repeated scalar key (possibly empty).
  const std::vector<std::string>& get_all(const std::string& key) const;

  // --- block fields ------------------------------------------------------
  bool has_block(const std::string& name) const;
  // The unique block `name`; throws if absent or repeated.
  const ConfigNode& block(const std::string& name) const;
  // All blocks `name`, in order (possibly empty).
  const std::vector<ConfigNode>& blocks(const std::string& name) const;

  // --- construction (used by the parser and by tests) --------------------
  void add_value(const std::string& key, std::string value);
  ConfigNode& add_block(const std::string& name);

  // Every scalar key present (sorted) — for validation messages.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::vector<std::string>> values_;
  std::map<std::string, std::vector<ConfigNode>> children_;
};

// Parses the text format; throws CheckError on malformed input with
// "<source_name>:<line>" context (load_config passes the file path as
// the source name, so errors read "lenet_fixed8.cfg:12: ...").
ConfigNode parse_config(const std::string& text,
                        const std::string& source_name = "<config>");

// Reads and parses a file.
ConfigNode load_config(const std::string& path);

}  // namespace qnn::config
