// Builds library objects from parsed configuration:
//
//   network  { preset: lenet channel_scale: 0.5 }        — zoo preset, or
//   network  { input: 1x28x28
//              layer { type: conv out: 20 kernel: 5 }
//              layer { type: maxpool kernel: 2 stride: 2 }
//              layer { type: ip out: 10 } }              — custom stack
//   dataset  { name: mnist train: 2000 test: 500 seed: 42 }
//   train    { epochs: 5 batch: 32 lr: 0.02 momentum: 0.9 }
//   precision{ kind: fixed weight_bits: 8 input_bits: 8 }
//
// Layer types: conv (out, kernel, stride=1, pad=0, bias=true),
// maxpool/avgpool (kernel, stride=kernel, pad=0), relu, sigmoid, tanh,
// dropout (p), lrn (local_size=5, alpha, beta, k), ip (out, bias=true).
#pragma once

#include <memory>

#include "config/config_node.h"
#include "data/synthetic.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "quant/qconfig.h"

namespace qnn::config {

struct BuiltNetwork {
  std::unique_ptr<nn::Network> network;
  Shape input_shape;  // (1, C, H, W) or (1, F)
};

// `node` is the network{...} block.
BuiltNetwork build_network(const ConfigNode& node);

// `node` is the dataset{...} block; returns the generated split.
data::Split build_dataset(const ConfigNode& node);
data::SyntheticConfig dataset_config(const ConfigNode& node);
std::string dataset_name(const ConfigNode& node);

// `node` is the train{...} block.
nn::TrainConfig build_train_config(const ConfigNode& node);

// `node` is the precision{...} block.
quant::PrecisionConfig build_precision(const ConfigNode& node);

}  // namespace qnn::config
