#include "faults/injector.h"

#include <mutex>
#include <random>

#include "util/check.h"

namespace qnn::faults {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t salt) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed2(std::uint64_t base, std::uint64_t a,
                           std::uint64_t b) {
  return derive_seed(derive_seed(base, a), b);
}

FaultInjector::FaultInjector(std::uint64_t seed)
    : seed_(seed), engine_(seed) {}

std::vector<BitFlip> FaultInjector::plan(std::int64_t num_values,
                                         int bits_per_value,
                                         double bit_error_rate) {
  QNN_CHECK_MSG(bit_error_rate >= 0.0 && bit_error_rate <= 1.0,
                "bit_error_rate " << bit_error_rate << " out of [0,1]");
  QNN_CHECK(num_values >= 0 && bits_per_value > 0);
  std::vector<BitFlip> flips;
  if (num_values == 0 || bit_error_rate == 0.0) return flips;

  const std::int64_t total_bits = num_values * bits_per_value;
  std::int64_t n;
  {
    // std::binomial_distribution evaluates std::lgamma, which writes the
    // process-global `signgam` (glibc). Serialize the draw so concurrent
    // fault trials do not race on it; the engine stays per-injector, so
    // the sampled values are unchanged.
    static std::mutex lgamma_m;
    const std::lock_guard<std::mutex> lock(lgamma_m);
    n = std::binomial_distribution<std::int64_t>(total_bits,
                                                 bit_error_rate)(engine_);
  }
  flips.reserve(static_cast<std::size_t>(n));
  std::uniform_int_distribution<std::int64_t> site(0, total_bits - 1);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t s = site(engine_);
    flips.push_back({s / bits_per_value,
                     static_cast<int>(s % bits_per_value)});
  }
  return flips;
}

std::int64_t FaultInjector::inject(Tensor& t, const ValueCodec& codec,
                                   double bit_error_rate) {
  const std::vector<BitFlip> flips =
      plan(t.count(), codec.bits(), bit_error_rate);
  float* d = t.data();
  for (const BitFlip& f : flips) d[f.index] = codec.flip(d[f.index], f.bit);
  return static_cast<std::int64_t>(flips.size());
}

}  // namespace qnn::faults
