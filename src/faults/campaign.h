// Fault-injection campaigns: repeated evaluation of a quantized network
// under transient bit upsets in the accelerator's storage domains.
//
// Each trial seeds an independent FaultInjector (derive_seed(seed, trial))
// and evaluates the full test set; every forward pass experiences a fresh
// exposure of its weight, feature-map, and accumulator storage at the
// configured bit-error rate — matching the transient-upset model where
// the SRAM buffers are rewritten per tile and upsets do not persist.
// Trials whose evaluation throws or returns a non-finite accuracy are
// retried with a re-derived seed up to `trial_retries` times, then
// counted as failed rather than aborting the campaign.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "faults/injector.h"
#include "protect/protected_network.h"
#include "quant/qnetwork.h"

namespace qnn::faults {

struct CampaignConfig {
  int trials = 8;
  double bit_error_rate = 1e-4;  // per stored bit, per exposure
  unsigned domains = kAllDomains;
  std::uint64_t seed = 0xfa117ull;
  int trial_retries = 2;
  // Adder-tree accumulator width for the kAccumulator domain (use
  // hw::Accelerator::accumulator_bits() for the modeled design).
  int accumulator_bits = 24;
  // Fault-tolerance policy applied during trials (kOff = the classic
  // unprotected campaign). With any other policy, activation envelopes
  // are calibrated from a clean pass over the test set before trials
  // start and every trial evaluates through a ProtectedNetwork wrapper.
  // The injection seed sequence is identical for every policy, so
  // protected and unprotected campaigns with the same `seed` see the
  // same fault streams.
  protect::ProtectionConfig protection;
};

struct CampaignResult {
  int trials = 0;         // successful trials
  int failed_trials = 0;  // trials that exhausted their retries
  double mean_accuracy = 0.0;
  double min_accuracy = 0.0;
  double max_accuracy = 0.0;
  std::int64_t total_flips = 0;  // bits flipped across successful trials
  // Protection activity summed over successful trials in trial order
  // (all zero when protection.policy == kOff).
  protect::ProtectionCounters protection;
};

// Runs the campaign on `qnet` (must be calibrated) against `test_set`.
// Hooks are cleared and master weights restored before returning, even
// on failure paths.
CampaignResult run_fault_campaign(quant::QuantizedNetwork& qnet,
                                  const data::Dataset& test_set,
                                  const CampaignConfig& config);

}  // namespace qnn::faults
