// Deterministic, seedable bit-flip injection.
//
// A FaultInjector owns one RNG stream; every flip it ever samples is a
// pure function of the construction seed and the call sequence, so a
// campaign replayed with the same seed hits bit-identical sites (tested
// in tests/faults_test.cc). Flip counts follow a binomial draw over the
// domain's total stored bits at the configured bit-error rate — the
// standard transient-upset model where each SRAM bit flips independently
// per exposure. Sites are drawn with replacement: at realistic rates
// collisions are vanishingly unlikely, and a double flip restoring the
// original bit is physically meaningful anyway.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "faults/fault_model.h"
#include "tensor/tensor.h"

namespace qnn::faults {

struct BitFlip {
  std::int64_t index = 0;  // element index within the tensor
  int bit = 0;             // 0 = LSB of the stored encoding

  bool operator==(const BitFlip&) const = default;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed);

  // Samples the upset sites for one exposure of `num_values` stored
  // values of `bits_per_value` bits each at per-bit flip probability
  // `bit_error_rate`. Deterministic given the injector's state.
  std::vector<BitFlip> plan(std::int64_t num_values, int bits_per_value,
                            double bit_error_rate);

  // Plans and applies encoding-aware flips to `t` in place; returns the
  // number of bits flipped.
  std::int64_t inject(Tensor& t, const ValueCodec& codec,
                      double bit_error_rate);

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

// Stateless seed derivation for independent per-trial / per-point
// streams (splitmix64 finalizer).
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t salt);

// Two-dimensional derivation: mixes each salt through the finalizer in
// turn, so distinct (a, b) pairs cannot collide the way a linear
// combination a * K + b can once both axes grow (the sweep's former
// point_index * 797003 + trial scheme).
std::uint64_t derive_seed2(std::uint64_t base, std::uint64_t a,
                           std::uint64_t b);

}  // namespace qnn::faults
