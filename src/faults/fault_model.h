// Fault model: transient single-bit upsets in the accelerator's storage.
//
// The DianNao-style accelerator (hw/accelerator.h) keeps all state in
// three SRAM buffer subsystems — SB (weights), Bin/Bout (feature maps) —
// plus the adder-tree accumulator registers. An SRAM upset flips one
// stored bit; what that does to the *value* depends entirely on the
// number format holding it:
//
//   float32  — IEEE-754 bit flip (an exponent flip can be catastrophic,
//              a low mantissa flip invisible);
//   fixed    — two's-complement raw flip: bit k perturbs by 2^k * step,
//              a sign-bit flip jumps across the whole range;
//   pow2     — flip of the sign/exponent-code word: a code flip changes
//              the magnitude by a power of two, or zeroes the weight;
//   binary   — the single stored bit IS the sign, so every flip negates
//              the weight (maximally destructive per bit).
//
// A ValueCodec captures "bits per stored value + what flipping bit k does
// to the decoded value" for one format; faults/injector.h samples flip
// sites deterministically from a seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fixed/fixed_format.h"
#include "fixed/pow2_format.h"
#include "quant/quantizer.h"

namespace qnn::faults {

// Storage domains a campaign may target (bitmask).
enum FaultDomain : unsigned {
  kWeightMemory = 1u << 0,  // SB — quantized weights/biases
  kFeatureMap = 1u << 1,    // Bin/Bout — quantized activations per site
  kAccumulator = 1u << 2,   // adder-tree partial sums, pre-requantization
};
inline constexpr unsigned kAllDomains =
    kWeightMemory | kFeatureMap | kAccumulator;

std::string domains_to_string(unsigned domains);

// Encoding of one stored value: width in bits plus the effect of a
// single-bit upset on the decoded value.
class ValueCodec {
 public:
  virtual ~ValueCodec() = default;

  // Stored bits per value in this domain.
  virtual int bits() const = 0;

  // Value after flipping stored bit `bit` (0 = LSB) of v's encoding.
  virtual float flip(float v, int bit) const = 0;

  virtual std::string describe() const = 0;
};

// IEEE-754 single precision: flips the raw bit pattern. The result may
// be NaN/Inf — that is the point; the guard-rail counters in
// quant::QuantizedNetwork make such corruption observable.
class FloatCodec final : public ValueCodec {
 public:
  int bits() const override { return 32; }
  float flip(float v, int bit) const override;
  std::string describe() const override { return "float32"; }
};

// Two's-complement fixed point at the format's width.
class FixedCodec final : public ValueCodec {
 public:
  explicit FixedCodec(const FixedPointFormat& format) : format_(format) {}
  int bits() const override { return format_.total_bits(); }
  float flip(float v, int bit) const override;
  std::string describe() const override { return format_.to_string(); }
  const FixedPointFormat& format() const { return format_; }

 private:
  FixedPointFormat format_;
};

// Sign bit + exponent-code word of a Pow2Format.
class Pow2Codec final : public ValueCodec {
 public:
  explicit Pow2Codec(const Pow2Format& format) : format_(format) {}
  int bits() const override { return format_.total_bits(); }
  float flip(float v, int bit) const override;
  std::string describe() const override { return format_.to_string(); }

 private:
  Pow2Format format_;
};

// One stored bit per weight: any flip negates the value (±scale).
class BinaryCodec final : public ValueCodec {
 public:
  int bits() const override { return 1; }
  float flip(float v, int) const override { return -v; }
  std::string describe() const override { return "binary"; }
};

// Codec matching the storage format behind a (calibrated) quantizer:
// FixedQuantizer -> FixedCodec, Pow2Quantizer -> Pow2Codec,
// BinaryQuantizer -> BinaryCodec, IdentityQuantizer -> FloatCodec.
// Throws CheckError for uncalibrated range-dependent quantizers.
std::unique_ptr<ValueCodec> codec_for(const quant::ValueQuantizer& q);

// Codec of the adder-tree accumulator domain: a wide fixed-point word
// (`accumulator_bits`, cf. hw::Accelerator::accumulator_bits()) whose
// range covers `max_abs`; float configs accumulate in float32 instead.
std::unique_ptr<ValueCodec> accumulator_codec(int accumulator_bits,
                                              double max_abs,
                                              bool float_datapath);

}  // namespace qnn::faults
