#include "faults/lane_faults.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "faults/injector.h"
#include "util/check.h"
#include "util/rng.h"

namespace qnn::faults {

const char* lane_fault_kind_name(LaneFaultKind k) {
  switch (k) {
    case LaneFaultKind::kHangLane:    return "hang_lane";
    case LaneFaultKind::kCorruptLane: return "corrupt_lane";
    case LaneFaultKind::kCrashLane:   return "crash_lane";
  }
  return "?";
}

std::string LaneFaultSchedule::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const LaneFault& f = faults[i];
    if (i > 0) os << "; ";
    os << lane_fault_kind_name(f.kind) << "@" << f.at_tick << " lane("
       << f.tier << "," << f.replica << ")";
    if (f.kind == LaneFaultKind::kHangLane) os << " +" << f.hang_ticks;
    if (f.kind == LaneFaultKind::kCorruptLane)
      os << " flips=" << f.corrupt_flips;
  }
  return os.str();
}

void validate_schedule(const LaneFaultSchedule& schedule) {
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < schedule.faults.size(); ++i) {
    const LaneFault& f = schedule.faults[i];
    QNN_CHECK_MSG(f.at_tick >= 0,
                  "lane fault " << i << " has negative at_tick");
    QNN_CHECK_MSG(f.at_tick >= prev,
                  "lane fault " << i << " not sorted by at_tick");
    prev = f.at_tick;
    QNN_CHECK_MSG(f.tier >= 0 && f.replica >= 0,
                  "lane fault " << i << " targets negative lane");
    switch (f.kind) {
      case LaneFaultKind::kHangLane:
        QNN_CHECK_MSG(f.hang_ticks > 0,
                      "hang fault " << i << " needs positive hang_ticks");
        break;
      case LaneFaultKind::kCorruptLane:
        QNN_CHECK_MSG(f.corrupt_flips > 0,
                      "corrupt fault " << i << " needs positive flips");
        break;
      case LaneFaultKind::kCrashLane:
        break;
    }
  }
}

LaneFaultSchedule make_chaos_schedule(const ChaosSpec& spec) {
  QNN_CHECK_MSG(spec.num_faults >= 0, "negative num_faults");
  QNN_CHECK_MSG(spec.horizon_ticks > 0 || spec.num_faults == 0,
                "chaos schedule needs a positive horizon");
  QNN_CHECK_MSG(spec.num_tiers >= 1 && spec.replicas_per_tier >= 1,
                "chaos schedule needs at least one lane");
  Rng rng(derive_seed(spec.seed, /*salt=*/0x6368616f73ull));  // "chaos"
  LaneFaultSchedule schedule;
  schedule.faults.reserve(static_cast<std::size_t>(spec.num_faults));
  for (int i = 0; i < spec.num_faults; ++i) {
    LaneFault f;
    const int kinds = spec.allow_crash ? 3 : 2;
    f.kind = static_cast<LaneFaultKind>(rng.uniform_int(0, kinds - 1));
    f.tier = rng.uniform_int(0, spec.num_tiers - 1);
    f.replica = rng.uniform_int(0, spec.replicas_per_tier - 1);
    f.at_tick = static_cast<std::int64_t>(
        rng.uniform(0.0, static_cast<double>(spec.horizon_ticks)));
    f.hang_ticks = std::max<std::int64_t>(
        1, spec.mean_hang_ticks +
               static_cast<std::int64_t>(
                   rng.uniform(0.0, 1.0) *
                   static_cast<double>(std::max<std::int64_t>(
                       1, spec.mean_hang_ticks))));
    f.corrupt_flips = std::max(1, spec.corrupt_flips);
    f.seed = derive_seed2(spec.seed, /*a=*/0x636f7272ull,
                          /*b=*/static_cast<std::uint64_t>(i));
    schedule.faults.push_back(f);
  }
  std::stable_sort(schedule.faults.begin(), schedule.faults.end(),
                   [](const LaneFault& a, const LaneFault& b) {
                     return a.at_tick < b.at_tick;
                   });
  validate_schedule(schedule);
  return schedule;
}

}  // namespace qnn::faults
