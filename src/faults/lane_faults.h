// Executor-level fault kinds for the serving layer's chaos harness.
//
// The injector/campaign machinery (injector.h, campaign.h) models
// VALUE-level upsets: bits flipping inside stored tensors. A serving
// stack dies in coarser ways too — a replica lane wedges (driver hang,
// page-fault storm), its weight memory rots wholesale, or the process
// behind it crashes. A LaneFault describes one such event against one
// executor lane (tier, replica) at one virtual tick:
//
//   kHangLane    — the lane's NEXT batch dispatch takes `hang_ticks`
//                  longer than its modeled service time, tripping the
//                  virtual-time watchdog when the overrun exceeds the
//                  execution budget;
//   kCorruptLane — `corrupt_flips` bit flips (FloatCodec, i.e. raw
//                  upsets in the frozen in-memory parameter image) are
//                  applied to the lane replica's parameters, to be
//                  caught by the post-batch parameter-CRC audit and
//                  repaired by rescrubbing from masters;
//   kCrashLane   — the lane dies permanently at `at_tick`; any batch
//                  in flight on it is lost and must be re-dispatched.
//
// A schedule is a plain sorted list of such events — COMPLETELY
// deterministic, no RNG at apply time — so a chaos replay is as
// bit-reproducible as a fault-free one. make_chaos_schedule derives a
// randomized-but-deterministic schedule from a seed for sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qnn::faults {

enum class LaneFaultKind {
  kHangLane = 0,
  kCorruptLane,
  kCrashLane,
};

const char* lane_fault_kind_name(LaneFaultKind k);

struct LaneFault {
  LaneFaultKind kind = LaneFaultKind::kHangLane;
  int tier = 0;
  int replica = 0;
  std::int64_t at_tick = 0;   // virtual tick the fault lands
  std::int64_t hang_ticks = 0;  // kHangLane: service-time inflation
  int corrupt_flips = 0;        // kCorruptLane: bit flips into params
  std::uint64_t seed = 0;       // kCorruptLane: flip-site stream
};

struct LaneFaultSchedule {
  std::vector<LaneFault> faults;  // nondecreasing at_tick

  bool empty() const { return faults.empty(); }
  std::string to_string() const;
};

// Validates kind-specific fields and the at_tick sort; throws
// CheckError naming the offending entry.
void validate_schedule(const LaneFaultSchedule& schedule);

// Deterministic randomized schedule for chaos sweeps: `num_faults`
// events over [0, horizon_ticks), kinds/lanes/params all derived from
// `seed` (same seed, same schedule, byte for byte).
struct ChaosSpec {
  int num_faults = 4;
  std::int64_t horizon_ticks = 0;
  int num_tiers = 1;
  int replicas_per_tier = 1;
  std::int64_t mean_hang_ticks = 0;  // hang inflation magnitude
  int corrupt_flips = 8;             // flips per corrupt event
  std::uint64_t seed = 1;
  bool allow_crash = true;  // false: only recoverable kinds
};

LaneFaultSchedule make_chaos_schedule(const ChaosSpec& spec);

}  // namespace qnn::faults
