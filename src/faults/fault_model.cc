#include "faults/fault_model.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace qnn::faults {

std::string domains_to_string(unsigned domains) {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += '+';
    out += name;
  };
  if (domains & kWeightMemory) add("sb");
  if (domains & kFeatureMap) add("bin/bout");
  if (domains & kAccumulator) add("acc");
  return out.empty() ? "none" : out;
}

float FloatCodec::flip(float v, int bit) const {
  QNN_DCHECK(bit >= 0 && bit < 32);
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof u);
  u ^= std::uint32_t{1} << bit;
  float out;
  std::memcpy(&out, &u, sizeof out);
  return out;
}

float FixedCodec::flip(float v, int bit) const {
  const int w = format_.total_bits();
  QNN_DCHECK(bit >= 0 && bit < w);
  const std::uint64_t mask = (w == 64) ? ~std::uint64_t{0}
                                       : (std::uint64_t{1} << w) - 1;
  std::uint64_t u =
      static_cast<std::uint64_t>(format_.to_raw(v)) & mask;
  u ^= std::uint64_t{1} << bit;
  // Reinterpret as a signed w-bit two's-complement word.
  std::int64_t raw = static_cast<std::int64_t>(u);
  if (u & (std::uint64_t{1} << (w - 1)))
    raw = static_cast<std::int64_t>(u) - (std::int64_t{1} << w);
  return static_cast<float>(format_.from_raw(raw));
}

float Pow2Codec::flip(float v, int bit) const {
  QNN_DCHECK(bit >= 0 && bit < format_.total_bits());
  const std::int64_t raw =
      format_.to_raw(v) ^ (std::int64_t{1} << bit);
  return static_cast<float>(format_.from_raw(raw));
}

std::unique_ptr<ValueCodec> codec_for(const quant::ValueQuantizer& q) {
  if (dynamic_cast<const quant::IdentityQuantizer*>(&q) != nullptr)
    return std::make_unique<FloatCodec>();
  if (const auto* fq = dynamic_cast<const quant::FixedQuantizer*>(&q)) {
    QNN_CHECK_MSG(fq->format().has_value(),
                  "cannot build a fault codec for an uncalibrated fixed "
                  "quantizer");
    return std::make_unique<FixedCodec>(*fq->format());
  }
  if (const auto* pq = dynamic_cast<const quant::Pow2Quantizer*>(&q)) {
    QNN_CHECK_MSG(pq->format().has_value(),
                  "cannot build a fault codec for an uncalibrated pow2 "
                  "quantizer");
    return std::make_unique<Pow2Codec>(*pq->format());
  }
  if (dynamic_cast<const quant::BinaryQuantizer*>(&q) != nullptr)
    return std::make_unique<BinaryCodec>();
  QNN_CHECK_MSG(false, "no fault codec for quantizer " << q.describe());
  return nullptr;  // unreachable
}

std::unique_ptr<ValueCodec> accumulator_codec(int accumulator_bits,
                                              double max_abs,
                                              bool float_datapath) {
  if (float_datapath) return std::make_unique<FloatCodec>();
  const int bits = std::min(accumulator_bits, 32);  // format cap
  return std::make_unique<FixedCodec>(
      FixedPointFormat::for_range(bits, max_abs > 0 ? max_abs : 1.0));
}

}  // namespace qnn::faults
