#include "faults/campaign.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "fixed/fixed_format.h"
#include "nn/trainer.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace qnn::faults {
namespace {

// One trial: install injection hooks, evaluate, tear down. Restores the
// network state even when evaluation throws.
double run_trial(quant::QuantizedNetwork& qnet,
                 protect::ProtectedNetwork* pnet,
                 const data::Dataset& test_set,
                 const CampaignConfig& config, std::uint64_t trial_seed,
                 const std::vector<std::unique_ptr<ValueCodec>>& weight_codecs,
                 const std::vector<std::unique_ptr<ValueCodec>>& data_codecs,
                 std::int64_t* flips,
                 protect::ProtectionCounters* protection) {
  FaultInjector injector(trial_seed);
  // Pin the stochastic-rounding stream to the trial seed: the engine is
  // thread-local, so without this a trial's rounding draws would depend
  // on which worker ran it.
  seed_stochastic_rounding(derive_seed(trial_seed, 0x5eedull));
  const double ber = config.bit_error_rate;
  const bool float_datapath = qnet.config().is_float();

  quant::ForwardHooks hooks;
  if (config.domains & kWeightMemory) {
    hooks.on_quantized_param = [&](std::size_t i, Tensor& w) {
      *flips += injector.inject(w, *weight_codecs[i], ber);
    };
  }
  if (config.domains & kFeatureMap) {
    hooks.on_quantized_site = [&](std::size_t site, Tensor& x) {
      *flips += injector.inject(x, *data_codecs[site], ber);
    };
  }
  if (config.domains & kAccumulator) {
    hooks.on_accumulator = [&](std::size_t, Tensor& x) {
      const auto codec = accumulator_codec(
          config.accumulator_bits, static_cast<double>(x.max_abs()),
          float_datapath);
      *flips += injector.inject(x, *codec, ber);
    };
  }
  qnet.set_forward_hooks(std::move(hooks));
  try {
    // A protected trial evaluates through the wrapper — same injection
    // hooks, same seeds — so the policy is the only difference between
    // protected and unprotected campaigns.
    double acc;
    if (pnet != nullptr) {
      pnet->reset_counters();
      acc = nn::evaluate(*pnet, test_set);
      *protection = pnet->counters();
    } else {
      acc = nn::evaluate(qnet, test_set);
    }
    qnet.clear_forward_hooks();
    qnet.restore_masters();
    return acc;
  } catch (...) {
    qnet.clear_forward_hooks();
    qnet.restore_masters();
    throw;
  }
}

struct TrialOutcome {
  bool ok = false;
  double accuracy = 0.0;
  std::int64_t flips = 0;
  protect::ProtectionCounters protection;
};

// Runs trials [begin, end) serially on one replica, storing per-trial
// outcomes. A trial's outcome is a pure function of its seed and the
// replica's (identical) starting state, so which replica runs it does
// not affect the result.
void run_trial_range(quant::QuantizedNetwork& qnet,
                     protect::ProtectedNetwork* pnet,
                     const data::Dataset& test_set,
                     const CampaignConfig& config,
                     const std::vector<std::unique_ptr<ValueCodec>>&
                         weight_codecs,
                     const std::vector<std::unique_ptr<ValueCodec>>&
                         data_codecs,
                     std::int64_t begin, std::int64_t end,
                     std::vector<TrialOutcome>& outcomes) {
  for (std::int64_t trial = begin; trial < end; ++trial) {
    QNN_SPAN_N("campaign_trial", "faults", trial);
    TrialOutcome& out = outcomes[static_cast<std::size_t>(trial)];
    for (int attempt = 0; attempt <= config.trial_retries && !out.ok;
         ++attempt) {
      // Retries re-derive the seed so a numerically doomed flip pattern
      // is not replayed verbatim.
      const std::uint64_t trial_seed = derive_seed(
          config.seed, static_cast<std::uint64_t>(trial) * 1000003ull +
                           static_cast<std::uint64_t>(attempt));
      std::int64_t flips = 0;
      protect::ProtectionCounters protection;
      try {
        const double acc =
            run_trial(qnet, pnet, test_set, config, trial_seed,
                      weight_codecs, data_codecs, &flips, &protection);
        QNN_CHECK_MSG(std::isfinite(acc),
                      "trial accuracy is not finite: " << acc);
        out.ok = true;
        out.accuracy = acc;
        out.flips = flips;
        out.protection = protection;
      } catch (const std::exception& e) {
        QNN_LOG(Warn) << "fault trial " << trial << " attempt " << attempt
                      << " failed: " << e.what();
      }
    }
  }
}

}  // namespace

CampaignResult run_fault_campaign(quant::QuantizedNetwork& qnet,
                                  const data::Dataset& test_set,
                                  const CampaignConfig& config) {
  QNN_CHECK_MSG(qnet.calibrated(),
                "fault campaign requires a calibrated network");
  QNN_CHECK_MSG(config.trials > 0, "campaign needs at least one trial");
  qnet.restore_masters();  // replicas must copy full-precision state

  // Codecs are fixed per campaign: the quantizers' formats do not change
  // between trials. Read-only, shared by every replica.
  std::vector<std::unique_ptr<ValueCodec>> weight_codecs;
  std::vector<std::unique_ptr<ValueCodec>> data_codecs;
  const auto params = qnet.trainable_params();
  for (std::size_t i = 0; i < params.size(); ++i)
    weight_codecs.push_back(codec_for(qnet.weight_quantizer(i)));
  for (std::size_t s = 0; s < qnet.num_sites(); ++s)
    data_codecs.push_back(codec_for(qnet.data_quantizer(s)));

  // Protected campaigns calibrate the activation envelopes once from a
  // clean pass (no hooks are installed yet) and share copies across the
  // replica wrappers, so every trial judges values against identical
  // bounds regardless of which replica runs it.
  const bool protected_run =
      config.protection.policy != protect::ProtectionPolicy::kOff;
  protect::EnvelopeSet envelopes;
  if (protected_run) {
    envelopes = protect::calibrate_envelopes(
        qnet, test_set.images, config.protection.envelope_margin);
  }

  // Replica 0 is `qnet` itself; further replicas wrap deep clones of the
  // underlying network so concurrent trials never share mutable state.
  // Nested inside another parallel region this degrades to one replica
  // (serial trials), the 1-thread order.
  const std::int64_t max_replicas =
      ThreadPool::in_worker()
          ? 1
          : std::min<std::int64_t>(config.trials,
                                   ThreadPool::global().size());
  const std::vector<Shard> shards =
      make_shards(config.trials, max_replicas);
  std::vector<std::unique_ptr<nn::Network>> replica_nets;
  std::vector<std::unique_ptr<quant::QuantizedNetwork>> replicas;
  for (std::size_t r = 1; r < shards.size(); ++r) {
    replica_nets.push_back(
        std::make_unique<nn::Network>(qnet.network().clone()));
    replicas.push_back(std::make_unique<quant::QuantizedNetwork>(
        qnet.clone_onto(*replica_nets.back())));
  }
  std::vector<std::unique_ptr<protect::ProtectedNetwork>> wrappers;
  if (protected_run) {
    for (std::size_t r = 0; r < shards.size(); ++r) {
      quant::QuantizedNetwork& replica = r == 0 ? qnet : *replicas[r - 1];
      wrappers.push_back(std::make_unique<protect::ProtectedNetwork>(
          replica, config.protection));
      wrappers.back()->set_envelopes(envelopes);
    }
  }

  std::vector<TrialOutcome> outcomes(
      static_cast<std::size_t>(config.trials));
  parallel_run(static_cast<std::int64_t>(shards.size()),
               [&](std::int64_t si) {
                 const std::size_t u = static_cast<std::size_t>(si);
                 quant::QuantizedNetwork& replica =
                     si == 0 ? qnet : *replicas[u - 1];
                 protect::ProtectedNetwork* pnet =
                     protected_run ? wrappers[u].get() : nullptr;
                 const Shard& sh = shards[u];
                 run_trial_range(replica, pnet, test_set, config,
                                 weight_codecs, data_codecs, sh.begin,
                                 sh.end, outcomes);
               });

  // Fold replica guard counters back into the original so accumulated
  // totals are independent of the replica count.
  for (const auto& replica : replicas) qnet.merge_guards_from(*replica);

  // Reduce in trial order — identical for every replica count.
  CampaignResult result;
  double sum = 0.0;
  result.min_accuracy = 100.0;
  result.max_accuracy = 0.0;
  for (const TrialOutcome& out : outcomes) {
    if (!out.ok) {
      ++result.failed_trials;
      continue;
    }
    ++result.trials;
    result.total_flips += out.flips;
    result.protection += out.protection;
    sum += out.accuracy;
    result.min_accuracy = std::min(result.min_accuracy, out.accuracy);
    result.max_accuracy = std::max(result.max_accuracy, out.accuracy);
  }
  if (result.trials > 0) {
    result.mean_accuracy = sum / result.trials;
  } else {
    result.min_accuracy = 0.0;
    result.max_accuracy = 0.0;
  }
  return result;
}

}  // namespace qnn::faults
