#include "faults/campaign.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "nn/trainer.h"
#include "util/check.h"
#include "util/logging.h"

namespace qnn::faults {
namespace {

// One trial: install injection hooks, evaluate, tear down. Restores the
// network state even when evaluation throws.
double run_trial(quant::QuantizedNetwork& qnet,
                 const data::Dataset& test_set,
                 const CampaignConfig& config, std::uint64_t trial_seed,
                 const std::vector<std::unique_ptr<ValueCodec>>& weight_codecs,
                 const std::vector<std::unique_ptr<ValueCodec>>& data_codecs,
                 std::int64_t* flips) {
  FaultInjector injector(trial_seed);
  const double ber = config.bit_error_rate;
  const bool float_datapath = qnet.config().is_float();

  quant::ForwardHooks hooks;
  if (config.domains & kWeightMemory) {
    hooks.on_quantized_param = [&](std::size_t i, Tensor& w) {
      *flips += injector.inject(w, *weight_codecs[i], ber);
    };
  }
  if (config.domains & kFeatureMap) {
    hooks.on_quantized_site = [&](std::size_t site, Tensor& x) {
      *flips += injector.inject(x, *data_codecs[site], ber);
    };
  }
  if (config.domains & kAccumulator) {
    hooks.on_accumulator = [&](std::size_t, Tensor& x) {
      const auto codec = accumulator_codec(
          config.accumulator_bits, static_cast<double>(x.max_abs()),
          float_datapath);
      *flips += injector.inject(x, *codec, ber);
    };
  }
  qnet.set_forward_hooks(std::move(hooks));
  try {
    const double acc = nn::evaluate(qnet, test_set);
    qnet.clear_forward_hooks();
    qnet.restore_masters();
    return acc;
  } catch (...) {
    qnet.clear_forward_hooks();
    qnet.restore_masters();
    throw;
  }
}

}  // namespace

CampaignResult run_fault_campaign(quant::QuantizedNetwork& qnet,
                                  const data::Dataset& test_set,
                                  const CampaignConfig& config) {
  QNN_CHECK_MSG(qnet.calibrated(),
                "fault campaign requires a calibrated network");
  QNN_CHECK_MSG(config.trials > 0, "campaign needs at least one trial");

  // Codecs are fixed per campaign: the quantizers' formats do not change
  // between trials.
  std::vector<std::unique_ptr<ValueCodec>> weight_codecs;
  std::vector<std::unique_ptr<ValueCodec>> data_codecs;
  const auto params = qnet.trainable_params();
  for (std::size_t i = 0; i < params.size(); ++i)
    weight_codecs.push_back(codec_for(qnet.weight_quantizer(i)));
  for (std::size_t s = 0; s < qnet.num_sites(); ++s)
    data_codecs.push_back(codec_for(qnet.data_quantizer(s)));

  CampaignResult result;
  double sum = 0.0;
  result.min_accuracy = 100.0;
  result.max_accuracy = 0.0;
  for (int trial = 0; trial < config.trials; ++trial) {
    bool done = false;
    for (int attempt = 0; attempt <= config.trial_retries && !done;
         ++attempt) {
      // Retries re-derive the seed so a numerically doomed flip pattern
      // is not replayed verbatim.
      const std::uint64_t trial_seed = derive_seed(
          config.seed, static_cast<std::uint64_t>(trial) * 1000003ull +
                           static_cast<std::uint64_t>(attempt));
      std::int64_t flips = 0;
      try {
        const double acc =
            run_trial(qnet, test_set, config, trial_seed, weight_codecs,
                      data_codecs, &flips);
        QNN_CHECK_MSG(std::isfinite(acc),
                      "trial accuracy is not finite: " << acc);
        ++result.trials;
        result.total_flips += flips;
        sum += acc;
        result.min_accuracy = std::min(result.min_accuracy, acc);
        result.max_accuracy = std::max(result.max_accuracy, acc);
        done = true;
      } catch (const std::exception& e) {
        QNN_LOG(Warn) << "fault trial " << trial << " attempt " << attempt
                      << " failed: " << e.what();
      }
    }
    if (!done) ++result.failed_trials;
  }
  if (result.trials > 0) {
    result.mean_accuracy = sum / result.trials;
  } else {
    result.min_accuracy = 0.0;
    result.max_accuracy = 0.0;
  }
  return result;
}

}  // namespace qnn::faults
