#include "util/csv.h"

#include "util/check.h"
#include "util/fileio.h"

namespace qnn {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), path_(path), arity_(header.size()) {
  QNN_CHECK_MSG(out_.good(), "cannot open CSV file " << path_
                                 << " for writing");
  QNN_CHECK_MSG(arity_ > 0, "CSV " << path_ << ": header must not be empty");
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  QNN_CHECK_MSG(cells.size() == arity_,
                "CSV " << path_ << " row " << (rows_written_ + 1) << ": got "
                       << cells.size() << " cells, header has " << arity_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_written_;
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

std::string CsvWriter::escape(const std::string& s) {
  const bool needs_quotes =
      s.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return s;
  std::string q = "\"";
  for (char c : s) {
    if (c == '"') q += '"';
    q += c;
  }
  q += '"';
  return q;
}

std::vector<std::vector<std::string>> parse_csv(
    const std::string& text, const std::string& source_name) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;
  bool row_has_content = false;
  int line = 1;

  const auto fail = [&](const std::string& what) {
    QNN_CHECK_MSG(false, source_name << ':' << line << ": " << what);
  };
  const auto end_cell = [&] {
    row.push_back(cell);
    cell.clear();
    cell_was_quoted = false;
  };
  const auto end_row = [&] {
    if (row_has_content || !row.empty()) {
      end_cell();
      rows.push_back(row);
      row.clear();
    }
    row_has_content = false;
  };

  // Skip a leading UTF-8 BOM; without this it lands in the first header
  // cell and every lookup of that column silently fails.
  for (std::size_t i = utf8_bom_offset(text); i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!cell.empty() || cell_was_quoted)
          fail("unexpected '\"' inside an unquoted cell");
        in_quotes = true;
        cell_was_quoted = true;
        row_has_content = true;
        break;
      case ',':
        end_cell();
        row_has_content = true;
        break;
      case '\r':
        break;  // accept CRLF
      case '\n':
        end_row();
        ++line;
        break;
      default:
        if (cell_was_quoted) fail("garbage after closing '\"'");
        cell += c;
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) fail("unterminated quoted cell at end of input");
  end_row();
  return rows;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  return parse_csv(read_file(path), path);
}

}  // namespace qnn
