#include "util/csv.h"

#include "util/check.h"

namespace qnn {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), arity_(header.size()) {
  QNN_CHECK_MSG(out_.good(), "cannot open CSV file " << path);
  QNN_CHECK(arity_ > 0);
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  QNN_CHECK(cells.size() == arity_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

std::string CsvWriter::escape(const std::string& s) {
  const bool needs_quotes =
      s.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return s;
  std::string q = "\"";
  for (char c : s) {
    if (c == '"') q += '"';
    q += c;
  }
  q += '"';
  return q;
}

}  // namespace qnn
