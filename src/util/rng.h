// Deterministic random number generation.
//
// All stochastic components (weight init, dataset synthesis, shuffling)
// draw from an explicitly-seeded Rng so every experiment is reproducible
// from its seed alone.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/check.h"

namespace qnn {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  // Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    QNN_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    QNN_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  // Standard normal scaled/offset.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Derives an independent child stream; used so that e.g. per-image
  // generation order does not perturb unrelated draws.
  Rng fork() { return Rng(engine_() ^ 0xda942042e4dd58b5ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qnn
