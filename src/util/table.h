// Console table formatter used by the benchmark harness to print the
// paper's tables with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace qnn {

// Column alignment within a cell.
enum class Align { kLeft, kRight };

// A simple text table: set a header, append rows of strings, render.
// Numeric formatting is the caller's job (see format_fixed/format_percent).
class Table {
 public:
  explicit Table(std::vector<std::string> header,
                 std::vector<Align> aligns = {});

  // Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  // Appends a horizontal separator row.
  void add_separator();

  // Renders with 2-space column gaps and a rule under the header.
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

// Formats v with `digits` decimal places (e.g. 3.14159, 2 -> "3.14").
std::string format_fixed(double v, int digits);

// Formats as percentage string with `digits` decimals: 0.8541 -> "85.41".
// Input is the percent value itself, not a fraction.
std::string format_percent(double percent, int digits = 2);

}  // namespace qnn
