// CSV writer/reader for experiment results (e.g. the Fig. 4 scatter
// points) so they can be re-plotted outside the harness and read back by
// tooling. Quoting follows RFC 4180: cells containing ',', '"', or a
// newline are double-quoted with embedded quotes doubled; the reader
// accepts exactly what the writer emits (plus CRLF line endings).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace qnn {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws CheckError
  // if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  // Writes one row; must match the header arity. Errors name the file
  // and the 1-based row being written.
  void add_row(const std::vector<std::string>& cells);

  // Flushes and closes; also called by the destructor.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  static std::string escape(const std::string& s);

  std::ofstream out_;
  std::string path_;
  std::size_t arity_;
  std::size_t rows_written_ = 0;
};

// Parses CSV text into rows of cells. Malformed input (unterminated
// quote, garbage after a closing quote) throws CheckError with
// "<source_name>:<line>" context. Empty lines are skipped.
std::vector<std::vector<std::string>> parse_csv(
    const std::string& text, const std::string& source_name = "<csv>");

// Reads and parses a CSV file; errors carry the file name and line.
std::vector<std::vector<std::string>> read_csv(const std::string& path);

}  // namespace qnn
