// CSV writer for exporting experiment results (e.g. the Fig. 4 scatter
// points) so they can be re-plotted outside the harness.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace qnn {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws CheckError
  // if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  // Writes one row; must match the header arity.
  void add_row(const std::vector<std::string>& cells);

  // Flushes and closes; also called by the destructor.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  static std::string escape(const std::string& s);

  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace qnn
