// Minimal leveled logger writing to stderr.
//
// Usage:  QNN_LOG(Info) << "trained epoch " << e << " acc=" << acc;
// The message is emitted when the temporary dies at the end of the
// statement: the whole line — "[LEVEL HH:MM:SS.mmm tN file:line] text\n"
// — is formatted into one buffer and written with a single fwrite, so
// concurrent threads (sweep points, campaign replicas) can never tear
// each other's lines.
//
// The threshold defaults to Info and can be overridden at startup with
// the QNN_LOG_LEVEL environment variable ("debug"/"info"/"warn"/"error"
// or 0-3; case-insensitive), read once on first use. set_log_threshold
// takes precedence afterwards.
#pragma once

#include <sstream>
#include <string>

namespace qnn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold: messages below it are dropped.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

const char* log_level_name(LogLevel level);

// Parses a QNN_LOG_LEVEL-style spelling ("warn", "WARN", "2", ...).
// Returns false (leaving *out untouched) on anything unrecognized.
bool parse_log_level(const std::string& name, LogLevel* out);

// Small dense id of the calling thread (the "tN" in log prefixes),
// assigned on first use.
int log_thread_id();

// The exact prefix a message from this thread at this site would carry,
// timestamp included: "[INFO 12:34:56.789 t0 sweep.cc:42] ".
std::string format_log_prefix(LogLevel level, const char* file, int line);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace qnn

#define QNN_LOG(severity)                                        \
  ::qnn::detail::LogMessage(::qnn::LogLevel::k##severity,        \
                            __FILE__, __LINE__)
