// Minimal leveled logger writing to stderr.
//
// Usage:  QNN_LOG(Info) << "trained epoch " << e << " acc=" << acc;
// The stream is flushed (with a trailing newline) when the temporary dies
// at the end of the statement.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace qnn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold: messages below it are dropped. Default: Info.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

const char* log_level_name(LogLevel level);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace qnn

#define QNN_LOG(severity)                                        \
  ::qnn::detail::LogMessage(::qnn::LogLevel::k##severity,        \
                            __FILE__, __LINE__)
