#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace qnn {
namespace {

// Pool telemetry. Per-task timing costs two clock reads per task, so it
// is gated on trace_enabled(); run counts are a single relaxed add and
// stay on unconditionally.
struct PoolMetrics {
  obs::Counter runs, tasks;
  obs::Histogram task_us;
};

PoolMetrics& pool_metrics() {
  obs::Registry& r = obs::Registry::global();
  static PoolMetrics m{
      r.counter("pool.runs"), r.counter("pool.tasks"),
      r.histogram("pool.task_us",
                  obs::exponential_bounds(std::int64_t{1} << 20))};
  return m;
}

// Set while a thread (worker or participating caller) executes pool
// tasks; makes nested run() calls degrade to inline serial execution.
thread_local bool t_in_pool_task = false;

// Per-thread opaque context; propagated from the run() caller to every
// worker for the duration of a job (see thread_pool.h).
thread_local void* t_task_context = nullptr;

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  QNN_CHECK_MSG(threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::in_worker() { return t_in_pool_task; }

void* ThreadPool::task_context() { return t_task_context; }

void ThreadPool::set_task_context(void* ctx) { t_task_context = ctx; }

void ThreadPool::execute_tasks(Job& job) {
  const bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  void* const prev_context = t_task_context;
  t_task_context = job.context;
  for (;;) {
    if (job.failed.load(std::memory_order_acquire)) break;
    const std::int64_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    try {
      if (obs::trace_enabled()) {
        obs::TraceSpan span("pool_task", "pool", i);
        const auto t0 = std::chrono::steady_clock::now();
        (*job.fn)(i);
        PoolMetrics& pm = pool_metrics();
        pm.tasks.inc();
        pm.task_us.observe(std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
      } else {
        (*job.fn)(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.m);
      if (job.error_index < 0 || i < job.error_index) {
        job.error = std::current_exception();
        job.error_index = i;
      }
      job.failed.store(true, std::memory_order_release);
    }
  }
  t_in_pool_task = was_in_task;
  t_task_context = prev_context;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(m_);
  std::uint64_t seen = 0;
  for (;;) {
    wake_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && generation_ != seen);
    });
    if (stop_) return;
    seen = generation_;
    Job* job = job_;
    ++attached_;
    lock.unlock();
    execute_tasks(*job);
    lock.lock();
    if (--attached_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run(std::int64_t count,
                     const std::function<void(std::int64_t)>& fn) {
  if (count <= 0) return;
  if (count == 1 || workers_.empty() || in_worker()) {
    // Inline serial path: identical to the 1-thread execution order, and
    // the policy for nested parallel regions.
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> top(run_m_);
  pool_metrics().runs.inc();
  Job job;
  job.fn = &fn;
  job.context = t_task_context;
  job.count = count;
  {
    std::lock_guard<std::mutex> lock(m_);
    job_ = &job;
    ++generation_;
  }
  wake_cv_.notify_all();
  execute_tasks(job);
  {
    // Unpublish the job, then wait for every attached worker to detach
    // so `job` can safely leave scope.
    std::unique_lock<std::mutex> lock(m_);
    job_ = nullptr;
    done_cv_.wait(lock, [&] { return attached_ == 0; });
  }
  if (job.error) std::rethrow_exception(job.error);
}

int ThreadPool::env_threads() {
  if (const char* v = std::getenv("QNN_THREADS")) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(env_threads());
  return *slot;
}

int ThreadPool::set_global_threads(int threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  auto& slot = global_slot();
  const int previous = slot ? slot->size() : env_threads();
  slot.reset();  // join old workers before spawning replacements
  slot = std::make_unique<ThreadPool>(std::max(threads, 1));
  return previous;
}

std::vector<Shard> make_shards(std::int64_t total, std::int64_t max_shards) {
  std::vector<Shard> shards;
  if (total <= 0) return shards;
  QNN_CHECK(max_shards >= 1);
  const std::int64_t n = std::min(total, max_shards);
  const std::int64_t base = total / n;
  const std::int64_t rem = total % n;
  shards.reserve(static_cast<std::size_t>(n));
  std::int64_t begin = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t len = base + (i < rem ? 1 : 0);
    shards.push_back({begin, begin + len});
    begin += len;
  }
  return shards;
}

}  // namespace qnn
