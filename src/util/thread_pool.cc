#include "util/thread_pool.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace qnn {
namespace {

// Pool telemetry. Per-task timing costs two clock reads per task, so it
// is gated on trace_enabled(); run counts are a single relaxed add and
// stay on unconditionally.
struct PoolMetrics {
  obs::Counter runs, tasks;
  obs::Histogram task_us;
};

PoolMetrics& pool_metrics() {
  obs::Registry& r = obs::Registry::global();
  static PoolMetrics m{
      r.counter("pool.runs"), r.counter("pool.tasks"),
      r.histogram("pool.task_us",
                  obs::exponential_bounds(std::int64_t{1} << 20))};
  return m;
}

// Set while a thread (worker or participating caller) executes pool
// tasks; makes nested run() calls degrade to inline serial execution.
thread_local bool t_in_pool_task = false;

// Per-thread opaque context; propagated from the run() caller to every
// worker for the duration of a job (see thread_pool.h).
thread_local void* t_task_context = nullptr;

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

// Spin-loop hint: keeps the core's pipeline and power state polite
// while polling an atomic the sibling hyperthread / another core owns.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  QNN_CHECK_MSG(threads >= 1, "thread pool needs at least one thread");
  hw_threads_ = hardware_threads();
  // Spinning between jobs only pays when each worker can own a core;
  // oversubscribed pools go straight to the condvar so idle workers
  // never steal cycles from the thread doing real work.
  spin_iters_ = threads <= hw_threads_ ? kWorkerSpinIters : 0;
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    // Pair with the workers' predicate check so none sleeps through it.
    std::lock_guard<std::mutex> lock(m_);
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::in_worker() { return t_in_pool_task; }

void* ThreadPool::task_context() { return t_task_context; }

void ThreadPool::set_task_context(void* ctx) { t_task_context = ctx; }

std::int64_t ThreadPool::claim_batch(std::int64_t count, int threads) {
  const std::int64_t target =
      count / (static_cast<std::int64_t>(threads) * kClaimFactor);
  return std::clamp<std::int64_t>(target, 1, kClaimBatchMax);
}

void ThreadPool::execute_tasks(Job& job) {
  const bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  void* const prev_context = t_task_context;
  t_task_context = job.context;
  const std::int64_t batch = job.batch;
  for (;;) {
    if (job.failed.load(std::memory_order_acquire)) break;
    const std::int64_t i0 = job.next.fetch_add(batch,
                                               std::memory_order_relaxed);
    if (i0 >= job.count) break;
    // A claimed batch runs to completion even if another thread records
    // a failure meanwhile — the batched analogue of the per-task rule
    // "claimed tasks finish, unclaimed tasks are skipped". The recorded
    // exception is still the minimum over every index that threw.
    const std::int64_t i1 = std::min(job.count, i0 + batch);
    for (std::int64_t i = i0; i < i1; ++i) {
      try {
        if (obs::trace_enabled()) {
          obs::TraceSpan span("pool_task", "pool", i);
          const auto t0 = std::chrono::steady_clock::now();
          job.invoke(job.arg, i);
          PoolMetrics& pm = pool_metrics();
          pm.tasks.inc();
          pm.task_us.observe(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        } else {
          job.invoke(job.arg, i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.m);
        if (job.error_index < 0 || i < job.error_index) {
          job.error = std::current_exception();
          job.error_index = i;
        }
        job.failed.store(true, std::memory_order_release);
      }
    }
  }
  t_in_pool_task = was_in_task;
  t_task_context = prev_context;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    // Brief spin before sleeping: back-to-back run() calls (layer batch
    // loops issue many small jobs in sequence) then skip the condvar
    // wake/sleep round-trip entirely. Disabled (spin_iters_ == 0) when
    // the pool oversubscribes the hardware.
    for (int i = 0; gen == seen && i < spin_iters_; ++i) {
      if (stop_.load(std::memory_order_relaxed)) return;
      cpu_relax();
      gen = generation_.load(std::memory_order_acquire);
    }
    if (gen == seen) {
      std::unique_lock<std::mutex> lock(m_);
      wake_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               generation_.load(std::memory_order_relaxed) != seen;
      });
      gen = generation_.load(std::memory_order_relaxed);
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    seen = gen;
    // Attach before loading the job pointer: if the load sees a live
    // job, this increment is already visible to the caller's
    // post-unpublish attached_ check (all seq_cst), so the job cannot
    // leave scope while this worker holds it.
    attached_.fetch_add(1, std::memory_order_seq_cst);
    Job* job = job_.load(std::memory_order_seq_cst);
    if (job != nullptr) execute_tasks(*job);
    if (attached_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
      // Empty lock pairs with the caller's predicate check under m_ so
      // the notify cannot land between its check and its wait.
      { std::lock_guard<std::mutex> lock(m_); }
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(std::int64_t count,
                     const std::function<void(std::int64_t)>& fn) {
  run_raw(
      count,
      [](void* arg, std::int64_t i) {
        (*static_cast<const std::function<void(std::int64_t)>*>(arg))(i);
      },
      const_cast<void*>(static_cast<const void*>(&fn)));
}

void ThreadPool::run_raw(std::int64_t count, RawFn invoke, void* arg) {
  if (count <= 0) return;
  if (count == 1 || workers_.empty() || in_worker()) {
    // Inline serial path: identical to the 1-thread execution order, and
    // the policy for nested parallel regions.
    for (std::int64_t i = 0; i < count; ++i) invoke(arg, i);
    return;
  }
  // Workers the hardware can actually host alongside this thread; an
  // oversubscribed pool wakes only that many. On a single core that is
  // zero and the job runs entirely inline — scheduling only, never
  // bytes (the shard plan fixed those already). Tasks still observe
  // in_worker(), exactly as when the caller participates via
  // execute_tasks, so nested loops keep degrading to serial.
  const int spare = std::min<int>(static_cast<int>(workers_.size()),
                                  hw_threads_ - 1);
  if (spare == 0) {
    t_in_pool_task = true;
    try {
      for (std::int64_t i = 0; i < count; ++i) invoke(arg, i);
    } catch (...) {
      t_in_pool_task = false;
      throw;
    }
    t_in_pool_task = false;
    return;
  }

  std::lock_guard<std::mutex> top(run_m_);
  pool_metrics().runs.inc();
  Job job;
  job.invoke = invoke;
  job.arg = arg;
  job.context = t_task_context;
  job.count = count;
  job.batch = claim_batch(count, size());
  job_.store(&job, std::memory_order_seq_cst);
  generation_.fetch_add(1, std::memory_order_seq_cst);
  {
    // Pair with the sleeping workers' predicate check; spinning workers
    // see the generation bump without this.
    std::lock_guard<std::mutex> lock(m_);
  }
  // Don't wake workers the job can't feed: count tasks need at most
  // count - 1 helpers. Spinning workers join on their own.
  const std::int64_t helpers =
      std::min<std::int64_t>(spare, count - 1);
  if (helpers >= static_cast<std::int64_t>(workers_.size())) {
    wake_cv_.notify_all();
  } else {
    for (std::int64_t i = 0; i < helpers; ++i) wake_cv_.notify_one();
  }
  execute_tasks(job);
  // Unpublish the job, then wait for every attached worker to detach so
  // `job` can safely leave scope. Workers typically detach within the
  // claim of their last batch, so spin briefly before sleeping.
  job_.store(nullptr, std::memory_order_seq_cst);
  if (attached_.load(std::memory_order_seq_cst) != 0) {
    for (int i = 0;
         i < kWorkerSpinIters && attached_.load(std::memory_order_seq_cst) != 0;
         ++i)
      cpu_relax();
    if (attached_.load(std::memory_order_seq_cst) != 0) {
      std::unique_lock<std::mutex> lock(m_);
      done_cv_.wait(lock, [&] {
        return attached_.load(std::memory_order_seq_cst) == 0;
      });
    }
  }
  if (job.error) std::rethrow_exception(job.error);
}

int ThreadPool::env_threads() {
  const int fallback = hardware_threads();
  const char* v = std::getenv("QNN_THREADS");
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(v, &end, 10);
  if (errno == ERANGE || end == v || *end != '\0' || n < 1 ||
      n > kMaxEnvThreads) {
    QNN_LOG(Warn) << "ignoring QNN_THREADS=\"" << v
                  << "\" (want an integer in [1, " << kMaxEnvThreads
                  << "]); using hardware_concurrency=" << fallback;
    return fallback;
  }
  return static_cast<int>(n);
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(env_threads());
  return *slot;
}

int ThreadPool::set_global_threads(int threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  auto& slot = global_slot();
  const int previous = slot ? slot->size() : env_threads();
  slot.reset();  // join old workers before spawning replacements
  slot = std::make_unique<ThreadPool>(std::max(threads, 1));
  return previous;
}

std::vector<Shard> make_shards(std::int64_t total, std::int64_t max_shards,
                               std::int64_t grain) {
  std::vector<Shard> shards;
  if (total <= 0) return shards;
  QNN_CHECK(max_shards >= 1);
  QNN_CHECK(grain >= 1);
  const std::int64_t by_grain = std::max<std::int64_t>(1, total / grain);
  const std::int64_t n = std::min({total, max_shards, by_grain});
  const std::int64_t base = total / n;
  const std::int64_t rem = total % n;
  shards.reserve(static_cast<std::size_t>(n));
  std::int64_t begin = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t len = base + (i < rem ? 1 : 0);
    shards.push_back({begin, begin + len});
    begin += len;
  }
  return shards;
}

}  // namespace qnn
