// Runtime precondition / invariant checking.
//
// QNN_CHECK is active in all build types (it guards API misuse that would
// otherwise corrupt results silently); QNN_DCHECK compiles away in NDEBUG
// builds and is used on hot inner-loop paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qnn {

// Error thrown by all QNN_CHECK failures. Deriving from std::logic_error
// makes the intent explicit: a failed check is a programming error at the
// call site, not an environmental condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "Check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace qnn

#define QNN_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond))                                                     \
      ::qnn::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define QNN_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream qnn_os_;                                    \
      qnn_os_ << msg; /* NOLINT */                                   \
      ::qnn::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                  qnn_os_.str());                    \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define QNN_DCHECK(cond) ((void)0)
#else
#define QNN_DCHECK(cond) QNN_CHECK(cond)
#endif
