// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — used to
// validate parameter snapshots and sweep checkpoints against torn writes
// and bit rot. Matches zlib's crc32, so external tools can verify files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qnn {

// Streaming form: feed `seed` the previous return value to continue a
// running checksum (start from 0).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace qnn
