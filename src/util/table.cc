#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace qnn {

Table::Table(std::vector<std::string> header, std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
  QNN_CHECK(!header_.empty());
  if (aligns_.empty()) {
    // Default: first column left (labels), rest right (numbers).
    aligns_.assign(header_.size(), Align::kRight);
    aligns_[0] = Align::kLeft;
  }
  QNN_CHECK(aligns_.size() == header_.size());
}

void Table::add_row(std::vector<std::string> cells) {
  QNN_CHECK_MSG(cells.size() == header_.size(),
                "row has " << cells.size() << " cells, header has "
                           << header_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

std::string Table::to_string() const {
  const std::size_t n = header_.size();
  std::vector<std::size_t> width(n);
  for (std::size_t c = 0; c < n; ++c) width[c] = header_[c].size();
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < n; ++c)
      width[c] = std::max(width[c], r.cells[c].size());
  }

  auto emit_cell = [&](std::ostringstream& os, const std::string& s,
                       std::size_t c) {
    const std::size_t pad = width[c] - s.size();
    if (aligns_[c] == Align::kRight) os << std::string(pad, ' ') << s;
    else os << s << std::string(pad, ' ');
  };

  std::size_t total = 2 * (n - 1);
  for (std::size_t c = 0; c < n; ++c) total += width[c];

  std::ostringstream os;
  for (std::size_t c = 0; c < n; ++c) {
    if (c) os << "  ";
    emit_cell(os, header_[c], c);
  }
  os << '\n' << std::string(total, '-') << '\n';
  for (const Row& r : rows_) {
    if (r.separator) {
      os << std::string(total, '-') << '\n';
      continue;
    }
    for (std::size_t c = 0; c < n; ++c) {
      if (c) os << "  ";
      emit_cell(os, r.cells[c], c);
    }
    os << '\n';
  }
  return os.str();
}

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string format_percent(double percent, int digits) {
  return format_fixed(percent, digits);
}

}  // namespace qnn
