#include "util/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace qnn {

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QNN_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  std::ostringstream ss;
  ss << in.rdbuf();
  QNN_CHECK_MSG(!in.bad(), "read failed: " << path);
  return ss.str();
}

namespace {

// fsyncs the directory containing `path` so the rename's directory entry
// is on stable storage. Without this, a crash after rename() but before
// the kernel flushes the directory can lose BOTH the old and new file:
// rename is atomic in the namespace, not durable on disk.
void fsync_parent_dir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  QNN_CHECK_MSG(dfd >= 0, "cannot open directory " << dir << " for fsync");
  const int rc = ::fsync(dfd);
  ::close(dfd);
  QNN_CHECK_MSG(rc == 0, "fsync of directory " << dir << " failed");
}

}  // namespace

// Durability guarantee: after write_file_atomic returns, `path` holds the
// complete new bytes and survives a crash or power loss at ANY point —
// the data is fsynced before the rename (so the new name can never point
// at truncated content) and the parent directory is fsynced after it (so
// the rename itself cannot be lost). Readers still only ever observe the
// complete old file or the complete new one.
void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    QNN_CHECK_MSG(out.good(), "cannot open " << tmp << " for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      QNN_CHECK_MSG(false, "write failed: " << tmp);
    }
  }
  {
    // Flush the temp file's data to disk before the rename publishes it.
    const int fd = ::open(tmp.c_str(), O_RDONLY);
    if (fd < 0 || ::fsync(fd) != 0) {
      if (fd >= 0) ::close(fd);
      std::remove(tmp.c_str());
      QNN_CHECK_MSG(false, "fsync failed: " << tmp);
    }
    ::close(fd);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    QNN_CHECK_MSG(false, "rename " << tmp << " -> " << path << " failed");
  }
  fsync_parent_dir(path);
}

std::size_t utf8_bom_offset(const std::string& text) {
  if (text.size() >= 3 && text[0] == '\xEF' && text[1] == '\xBB' &&
      text[2] == '\xBF') {
    return 3;
  }
  return 0;
}

}  // namespace qnn
