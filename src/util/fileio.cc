#include "util/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/check.h"
#include "util/logging.h"

namespace qnn {

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QNN_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  std::ostringstream ss;
  ss << in.rdbuf();
  QNN_CHECK_MSG(!in.bad(), "read failed: " << path);
  return ss.str();
}

namespace {

FileIoHooks g_hooks;

ssize_t do_write(int fd, const void* buf, std::size_t n) {
  return g_hooks.write ? g_hooks.write(fd, buf, n) : ::write(fd, buf, n);
}

int do_fsync(int fd) { return g_hooks.fsync ? g_hooks.fsync(fd) : ::fsync(fd); }

int do_rename(const char* from, const char* to) {
  return g_hooks.rename ? g_hooks.rename(from, to) : std::rename(from, to);
}

void do_backoff(int ms) {
  if (g_hooks.backoff) {
    g_hooks.backoff(ms);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

// fsyncs the directory containing `path` so the rename's directory entry
// is on stable storage. Without this, a crash after rename() but before
// the kernel flushes the directory can lose BOTH the old and new file:
// rename is atomic in the namespace, not durable on disk.
void fsync_parent_dir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int dfd = -1;
  do {
    dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  } while (dfd < 0 && errno == EINTR);
  QNN_CHECK_MSG(dfd >= 0, "cannot open directory " << dir << " for fsync");
  int rc;
  do {
    rc = ::fsync(dfd);
  } while (rc != 0 && errno == EINTR);
  ::close(dfd);
  QNN_CHECK_MSG(rc == 0, "fsync of directory " << dir << " failed");
}

// One complete temp-write + fsync + rename pass. Returns an empty string
// on success, otherwise a description of the failure; the temp file is
// removed on every failure path so a retry starts clean. EINTR and short
// writes are absorbed here (retried immediately, not surfaced), so only
// genuine failures consume an attempt.
std::string attempt_atomic_write(const std::string& path,
                                 const std::string& tmp,
                                 const std::string& bytes) {
  int fd = -1;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return "cannot open " + tmp + " for writing";

  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        do_write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);  // short write: keep going
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const std::string why =
        n == 0 ? "write stalled (0 bytes)"
               : std::string("write failed (") + std::strerror(errno) + ")";
    ::close(fd);
    std::remove(tmp.c_str());
    return why + ": " + tmp;
  }

  int rc;
  do {
    rc = do_fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return "fsync failed: " + tmp;
  }
  ::close(fd);

  do {
    rc = do_rename(tmp.c_str(), path.c_str());
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    std::remove(tmp.c_str());
    return "rename " + tmp + " -> " + path + " failed";
  }
  return "";
}

}  // namespace

void set_fileio_hooks_for_test(FileIoHooks hooks) {
  g_hooks = std::move(hooks);
}

// Durability guarantee: after write_file_atomic returns, `path` holds the
// complete new bytes and survives a crash or power loss at ANY point —
// the data is fsynced before the rename (so the new name can never point
// at truncated content) and the parent directory is fsynced after it (so
// the rename itself cannot be lost). Readers still only ever observe the
// complete old file or the complete new one. Transient failures retry
// per the policy documented in fileio.h.
void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::string error;
  for (int attempt = 0; attempt < kAtomicWriteAttempts; ++attempt) {
    if (attempt > 0) {
      QNN_LOG(Warn) << "retrying atomic write of " << path << " ("
                    << error << ")";
      do_backoff(1 << (attempt - 1));
    }
    error = attempt_atomic_write(path, tmp, bytes);
    if (error.empty()) {
      fsync_parent_dir(path);
      return;
    }
  }
  QNN_CHECK_MSG(false, error << " (gave up after " << kAtomicWriteAttempts
                             << " attempts)");
}

std::size_t utf8_bom_offset(const std::string& text) {
  if (text.size() >= 3 && text[0] == '\xEF' && text[1] == '\xBB' &&
      text[2] == '\xBF') {
    return 3;
  }
  return 0;
}

}  // namespace qnn
