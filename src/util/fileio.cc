#include "util/fileio.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace qnn {

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QNN_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  std::ostringstream ss;
  ss << in.rdbuf();
  QNN_CHECK_MSG(!in.bad(), "read failed: " << path);
  return ss.str();
}

void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    QNN_CHECK_MSG(out.good(), "cannot open " << tmp << " for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      QNN_CHECK_MSG(false, "write failed: " << tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    QNN_CHECK_MSG(false, "rename " << tmp << " -> " << path << " failed");
  }
}

}  // namespace qnn
