// Small file helpers shared by snapshot and checkpoint writers.
//
// write_file_atomic is the crash-safety primitive: the bytes land in
// "<path>.tmp" first and are moved into place with std::rename, which is
// atomic on POSIX filesystems — a reader (or a resumed process) either
// sees the complete previous file or the complete new one, never a torn
// mixture.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <functional>
#include <string>

namespace qnn {

bool file_exists(const std::string& path);

// Reads the whole file in binary mode; throws CheckError (with the path
// in the message) if the file cannot be opened or read.
std::string read_file(const std::string& path);

// Writes `bytes` to "<path>.tmp", fsyncs it, renames it over `path`, and
// fsyncs the parent directory. Throws CheckError on any I/O failure; on
// failure the destination is left untouched (the temp file is removed
// best-effort).
//
// Transient-failure policy: EINTR and short writes are retried
// immediately and do not count as failures; any other failure of the
// write/fsync/rename sequence discards the temp file and re-attempts the
// whole sequence up to kAtomicWriteAttempts times with exponential
// backoff (1ms, 2ms, 4ms, ...) before the error surfaces. Every attempt
// is a complete temp-write + rename, so the atomicity and durability
// guarantees hold regardless of which attempt succeeds.
void write_file_atomic(const std::string& path, const std::string& bytes);

// Total attempts write_file_atomic makes before surfacing an error.
inline constexpr int kAtomicWriteAttempts = 4;

// Test seams for write_file_atomic's syscalls. Unset members fall
// through to the real ::write/::fsync/::rename. Tests inject flaky
// implementations (EINTR storms, short writes, transient ENOSPC) to
// exercise the retry path; set_fileio_hooks_for_test({}) restores the
// defaults. Not thread-safe — install before concurrent writers start.
struct FileIoHooks {
  std::function<ssize_t(int fd, const void* buf, std::size_t n)> write;
  std::function<int(int fd)> fsync;
  std::function<int(const char* from, const char* to)> rename;
  // Backoff sleep between attempts, in milliseconds; tests stub it to
  // avoid real sleeps and to record the backoff schedule.
  std::function<void(int ms)> backoff;
};
void set_fileio_hooks_for_test(FileIoHooks hooks);

// Returns the byte offset past a leading UTF-8 BOM (EF BB BF), or 0 when
// the text does not start with one. Text readers (CSV, config, JSON) call
// this so a BOM emitted by Windows editors cannot poison the first token.
std::size_t utf8_bom_offset(const std::string& text);

}  // namespace qnn
