// Small file helpers shared by snapshot and checkpoint writers.
//
// write_file_atomic is the crash-safety primitive: the bytes land in
// "<path>.tmp" first and are moved into place with std::rename, which is
// atomic on POSIX filesystems — a reader (or a resumed process) either
// sees the complete previous file or the complete new one, never a torn
// mixture.
#pragma once

#include <cstddef>
#include <string>

namespace qnn {

bool file_exists(const std::string& path);

// Reads the whole file in binary mode; throws CheckError (with the path
// in the message) if the file cannot be opened or read.
std::string read_file(const std::string& path);

// Writes `bytes` to "<path>.tmp", fsyncs it, renames it over `path`, and
// fsyncs the parent directory. Throws CheckError on any I/O failure; on
// failure the destination is left untouched (the temp file is removed
// best-effort).
void write_file_atomic(const std::string& path, const std::string& bytes);

// Returns the byte offset past a leading UTF-8 BOM (EF BB BF), or 0 when
// the text does not start with one. Text readers (CSV, config, JSON) call
// this so a BOM emitted by Windows editors cannot poison the first token.
std::size_t utf8_bom_offset(const std::string& text);

}  // namespace qnn
