// Minimal JSON value, parser, and writer for the experiment checkpoint
// format. Deliberately small: objects, arrays, strings, 64-bit integers,
// doubles, bools, null — no streaming, no unicode escapes beyond \uXXXX
// pass-through of ASCII. Doubles are emitted with max_digits10 precision
// so a dump/parse round trip reproduces the value bit-exactly (the
// resume-equals-uninterrupted guarantee of exp::checkpoint relies on
// this). Object key order is preserved to keep dumps deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qnn::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() = default;  // null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}
  Value(std::uint64_t u);  // checked: must fit in int64
  Value(double d);         // checked: must be finite
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(const char* s) : Value(std::string(s)) {}

  static Value array() { return Value(Kind::kArray); }
  static Value object() { return Value(Kind::kObject); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  // Typed accessors; each throws CheckError on a kind mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;      // kInt only
  double as_double() const;         // kInt or kDouble
  const std::string& as_string() const;

  // --- arrays -----------------------------------------------------------
  void push_back(Value v);
  std::size_t size() const;  // array or object
  const std::vector<Value>& items() const;
  const Value& at(std::size_t i) const;

  // --- objects ----------------------------------------------------------
  // Inserts or replaces a member (builder API).
  Value& set(const std::string& key, Value v);
  bool contains(const std::string& key) const;
  // Member lookup; throws CheckError naming the missing key.
  const Value& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Value>>& members() const;

  // Compact single-line serialization.
  std::string dump() const;

 private:
  explicit Value(Kind kind) : kind_(kind) {}
  void expect(Kind kind, const char* what) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

// Parses one JSON document (trailing whitespace allowed, nothing else).
// Throws CheckError with "<source_name>:<line>" context on malformed
// input. Integer literals without '.'/'e' that fit in int64 parse as
// kInt; everything else numeric parses as kDouble.
Value parse(const std::string& text,
            const std::string& source_name = "<json>");

}  // namespace qnn::json
