#include "util/logging.h"

#include <atomic>
#include <cstring>

namespace qnn {
namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

// Strips the directory part so log lines stay short.
const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= log_threshold()) {
  if (enabled_) {
    stream_ << '[' << log_level_name(level) << ' ' << basename_of(file) << ':'
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << '\n';
    std::cerr << stream_.str();
  }
}

}  // namespace detail
}  // namespace qnn
