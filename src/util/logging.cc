#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace qnn {
namespace {

// Strips the directory part so log lines stay short.
const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

LogLevel initial_threshold() {
  if (const char* v = std::getenv("QNN_LOG_LEVEL")) {
    LogLevel parsed;
    if (parse_log_level(v, &parsed)) return parsed;
  }
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& threshold_slot() {
  static std::atomic<LogLevel> threshold{initial_threshold()};
  return threshold;
}

}  // namespace

LogLevel log_threshold() {
  return threshold_slot().load(std::memory_order_relaxed);
}

void set_log_threshold(LogLevel level) {
  threshold_slot().store(level, std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

bool parse_log_level(const std::string& name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning" || lower == "2") {
    *out = LogLevel::kWarn;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

int log_thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string format_log_prefix(LogLevel level, const char* file, int line) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char buf[160];
  std::snprintf(buf, sizeof(buf), "[%s %02d:%02d:%02d.%03d t%d %s:%d] ",
                log_level_name(level), tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<int>(ms), log_thread_id(), basename_of(file),
                line);
  return buf;
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= log_threshold()) {
  if (enabled_) stream_ << format_log_prefix(level, file, line);
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << '\n';
  const std::string line = stream_.str();
  // One fwrite per message: POSIX stdio streams lock around each call,
  // so concurrent writers interleave whole lines, never fragments.
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace detail
}  // namespace qnn
