#include "util/json.h"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/check.h"
#include "util/fileio.h"

namespace qnn::json {

Value::Value(std::uint64_t u) : kind_(Kind::kInt) {
  QNN_CHECK_MSG(u <= static_cast<std::uint64_t>(
                         std::numeric_limits<std::int64_t>::max()),
                "json integer " << u << " overflows int64");
  int_ = static_cast<std::int64_t>(u);
}

Value::Value(double d) : kind_(Kind::kDouble), double_(d) {
  QNN_CHECK_MSG(std::isfinite(d),
                "json numbers must be finite (got " << d << ')');
}

void Value::expect(Kind kind, const char* what) const {
  QNN_CHECK_MSG(kind_ == kind, "json value is not " << what);
}

bool Value::as_bool() const {
  expect(Kind::kBool, "a bool");
  return bool_;
}

std::int64_t Value::as_int() const {
  expect(Kind::kInt, "an integer");
  return int_;
}

double Value::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  expect(Kind::kDouble, "a number");
  return double_;
}

const std::string& Value::as_string() const {
  expect(Kind::kString, "a string");
  return string_;
}

void Value::push_back(Value v) {
  expect(Kind::kArray, "an array");
  array_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (kind_ == Kind::kObject) return object_.size();
  expect(Kind::kArray, "an array or object");
  return array_.size();
}

const std::vector<Value>& Value::items() const {
  expect(Kind::kArray, "an array");
  return array_;
}

const Value& Value::at(std::size_t i) const {
  expect(Kind::kArray, "an array");
  QNN_CHECK_MSG(i < array_.size(), "json array index " << i
                                       << " out of range (size "
                                       << array_.size() << ')');
  return array_[i];
}

Value& Value::set(const std::string& key, Value v) {
  expect(Kind::kObject, "an object");
  for (auto& [k, existing] : object_)
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  object_.emplace_back(key, std::move(v));
  return object_.back().second;
}

bool Value::contains(const std::string& key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [k, v] : object_)
    if (k == key) return true;
  return false;
}

const Value& Value::at(const std::string& key) const {
  expect(Kind::kObject, "an object");
  for (const auto& [k, v] : object_)
    if (k == key) return v;
  QNN_CHECK_MSG(false, "json object has no key '" << key << '\'');
  std::abort();  // unreachable: QNN_CHECK_MSG throws
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  expect(Kind::kObject, "an object");
  return object_;
}

namespace {

void dump_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dump_value(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull: os << "null"; break;
    case Value::Kind::kBool: os << (v.as_bool() ? "true" : "false"); break;
    case Value::Kind::kInt: os << v.as_int(); break;
    case Value::Kind::kDouble: {
      std::ostringstream num;
      num << std::setprecision(std::numeric_limits<double>::max_digits10)
          << v.as_double();
      std::string t = num.str();
      // Keep doubles distinguishable from ints so the round trip
      // preserves the kind.
      if (t.find_first_of(".eE") == std::string::npos) t += ".0";
      os << t;
      break;
    }
    case Value::Kind::kString: dump_string(os, v.as_string()); break;
    case Value::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const Value& item : v.items()) {
        if (!first) os << ',';
        first = false;
        dump_value(os, item);
      }
      os << ']';
      break;
    }
    case Value::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, item] : v.members()) {
        if (!first) os << ',';
        first = false;
        dump_string(os, k);
        os << ':';
        dump_value(os, item);
      }
      os << '}';
      break;
    }
  }
}

class Parser {
 public:
  Parser(const std::string& text, const std::string& source)
      : text_(text), source_(source), pos_(utf8_bom_offset(text)) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    QNN_CHECK_MSG(pos_ == text_.size(),
                  where() << ": trailing characters after json value");
    return v;
  }

 private:
  std::string where() const {
    std::ostringstream os;
    os << source_ << ':' << line_;
    return os.str();
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    QNN_CHECK_MSG(pos_ < text_.size(),
                  where() << ": unexpected end of json input");
    return text_[pos_];
  }

  void expect_char(char c) {
    QNN_CHECK_MSG(peek() == c, where() << ": expected '" << c << "', got '"
                                       << text_[pos_] << '\'');
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value();
    QNN_CHECK_MSG(c == '-' || (c >= '0' && c <= '9'),
                  where() << ": unexpected character '" << c << '\'');
    return parse_number();
  }

  Value parse_object() {
    expect_char('{');
    Value obj = Value::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      QNN_CHECK_MSG(peek() == '"', where() << ": expected object key");
      std::string key = parse_string();
      expect_char(':');
      obj.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      QNN_CHECK_MSG(c == ',', where() << ": expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect_char('[');
    Value arr = Value::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      QNN_CHECK_MSG(c == ',', where() << ": expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect_char('"');
    std::string out;
    for (;;) {
      QNN_CHECK_MSG(pos_ < text_.size(),
                    where() << ": unterminated json string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      QNN_CHECK_MSG(c != '\n', where() << ": raw newline in json string");
      if (c != '\\') {
        out += c;
        continue;
      }
      QNN_CHECK_MSG(pos_ < text_.size(),
                    where() << ": unterminated escape in json string");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          QNN_CHECK_MSG(pos_ + 4 <= text_.size(),
                        where() << ": truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          QNN_CHECK_MSG(end == hex.c_str() + 4 && code < 0x80,
                        where() << ": unsupported \\u escape \\u" << hex);
          out += static_cast<char>(code);
          break;
        }
        default:
          QNN_CHECK_MSG(false,
                        where() << ": bad escape '\\" << e << '\'');
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    if (!is_double) {
      const long long i = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end == tok.c_str() + tok.size())
        return Value(static_cast<std::int64_t>(i));
    }
    errno = 0;
    const double d = std::strtod(tok.c_str(), &end);
    QNN_CHECK_MSG(errno == 0 && end == tok.c_str() + tok.size() &&
                      std::isfinite(d),
                  where() << ": bad json number '" << tok << '\'');
    return Value(d);
  }

  const std::string& text_;
  const std::string& source_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::string Value::dump() const {
  std::ostringstream os;
  dump_value(os, *this);
  return os.str();
}

Value parse(const std::string& text, const std::string& source_name) {
  return Parser(text, source_name).parse_document();
}

}  // namespace qnn::json
