// Deterministic parallel runtime: a small, work-stealing-free thread
// pool plus the fixed shard plans every parallel loop in the tree uses.
//
// Determinism policy (DESIGN.md §Threading): an N-thread run and a
// 1-thread run must produce bit-identical results. Two rules enforce it:
//
//  1. Work is split by *shard plans* that depend only on the problem
//     size (make_shards with a constant shard cap), never on the thread
//     count. Reductions accumulate into per-shard slots and merge on the
//     calling thread in shard-index order, so floating-point summation
//     order is a pure function of the input.
//  2. A task's result may not depend on which thread executed it.
//     Loops whose iterations share mutable state (e.g. Dropout's RNG
//     stream, stochastic-rounding draws) stay serial or re-seed
//     per-task.
//
// Nesting: run() invoked from inside a pool task executes inline and
// serially on the calling thread. Outer loops (sweep points, fault
// trials) therefore claim the pool and inner loops (GEMM, conv batch
// sharding) degrade to their serial order — which is exactly the
// 1-thread order, keeping rule 1 intact at every level.
//
// The global pool is sized by the QNN_THREADS environment variable
// (unset/0 = std::thread::hardware_concurrency), and can be resized
// programmatically with set_global_threads() while no work is running.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qnn {

class ThreadPool {
 public:
  // `threads` is the total concurrency including the calling thread, so
  // ThreadPool(1) spawns no workers and run() executes inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Invokes fn(i) for every i in [0, count), blocking until all tasks
  // finish. Tasks are claimed in index order but may run concurrently on
  // any thread; the caller participates. If tasks throw, the exception
  // with the lowest task index is rethrown after in-flight tasks drain;
  // tasks not yet claimed when a failure is recorded are skipped (the
  // serial behavior of "stop at the first throw").
  //
  // Calls from inside a pool task run inline and serially (see header
  // comment); concurrent top-level calls serialize against each other.
  void run(std::int64_t count, const std::function<void(std::int64_t)>& fn);

  // True on a thread currently executing pool tasks (workers and the
  // participating caller alike).
  static bool in_worker();

  // Opaque per-thread task context, inherited by every thread that
  // executes tasks of a run() issued while the context was set: workers
  // see the submitting thread's context for the duration of the job.
  // Used by scope objects (e.g. protect::AbftScope) whose effect must
  // extend into parallel regions they enclose. The slot is a single
  // pointer — scopes save and restore the previous value; anything they
  // mutate through it from task code must be thread-safe.
  static void* task_context();
  static void set_task_context(void* ctx);

  // Process-wide pool, created on first use with env_threads() threads.
  static ThreadPool& global();
  // Threads requested by the environment: QNN_THREADS if set and > 0,
  // otherwise hardware_concurrency (at least 1).
  static int env_threads();
  // Rebuilds the global pool with `threads` (clamped to >= 1) and
  // returns the previous size so callers can restore it. Must not race
  // with run() calls; intended for tests and bench harnesses.
  static int set_global_threads(int threads);

 private:
  struct Job {
    const std::function<void(std::int64_t)>* fn = nullptr;
    void* context = nullptr;  // submitting thread's task_context()
    std::int64_t count = 0;
    std::atomic<std::int64_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex m;                     // guards error fields
    std::exception_ptr error;
    std::int64_t error_index = -1;
  };

  void worker_loop();
  static void execute_tasks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex m_;                    // guards job_/generation_/attached_/stop_
  std::condition_variable wake_cv_;  // workers wait here for a job
  std::condition_variable done_cv_;  // run() waits here for detach
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int attached_ = 0;  // workers currently inside execute_tasks
  bool stop_ = false;
  std::mutex run_m_;  // serializes concurrent top-level run() calls
};

// RAII pool resize: rebuilds the global pool at `threads` and restores
// the previous size on destruction. The standard way tests and benches
// replay the same workload at several thread counts (determinism pins,
// serve trace replay) without leaking a resized pool into later cases.
class ScopedGlobalThreads {
 public:
  explicit ScopedGlobalThreads(int threads)
      : previous_(ThreadPool::set_global_threads(threads)) {}
  ~ScopedGlobalThreads() { ThreadPool::set_global_threads(previous_); }

  ScopedGlobalThreads(const ScopedGlobalThreads&) = delete;
  ScopedGlobalThreads& operator=(const ScopedGlobalThreads&) = delete;

 private:
  int previous_;
};

// Contiguous index range [begin, end).
struct Shard {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t size() const { return end - begin; }
};

// Fixed shard cap used by every deterministic reduction in the tree.
// The resulting shard plan — and therefore the floating-point merge
// order — depends only on the problem size, never on the thread count.
inline constexpr std::int64_t kReductionShards = 16;

// Splits [0, total) into min(total, max_shards) contiguous near-equal
// shards (earlier shards take the remainder). total == 0 yields no
// shards.
std::vector<Shard> make_shards(std::int64_t total, std::int64_t max_shards);

// Runs fn(i) for i in [0, count) on the global pool. The serial cases
// (count <= 1, single-thread pool, nested inside a pool task) loop
// inline without materializing a std::function.
template <typename F>
void parallel_run(std::int64_t count, F&& fn) {
  if (count <= 0) return;
  if (count == 1 || ThreadPool::in_worker()) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  if (pool.size() == 1) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool.run(count, std::function<void(std::int64_t)>(std::forward<F>(fn)));
}

// Shard-plan convenience: fn(shard_index, begin, end) per shard of
// make_shards(total, max_shards).
template <typename F>
void parallel_for_shards(std::int64_t total, std::int64_t max_shards,
                         F&& fn) {
  const std::vector<Shard> shards = make_shards(total, max_shards);
  parallel_run(static_cast<std::int64_t>(shards.size()),
               [&](std::int64_t si) {
                 const Shard& s = shards[static_cast<std::size_t>(si)];
                 fn(static_cast<std::size_t>(si), s.begin, s.end);
               });
}

}  // namespace qnn
