// Deterministic parallel runtime: a small, work-stealing-free thread
// pool plus the fixed shard plans every parallel loop in the tree uses.
//
// Determinism policy (DESIGN.md §Threading): an N-thread run and a
// 1-thread run must produce bit-identical results. Two rules enforce it:
//
//  1. Work is split by *shard plans* that depend only on the problem
//     size (make_shards with a constant shard cap and an optional
//     grain), never on the thread count. Reductions accumulate into
//     per-shard slots and merge on the calling thread in shard-index
//     order, so floating-point summation order is a pure function of
//     the input.
//  2. A task's result may not depend on which thread executed it.
//     Loops whose iterations share mutable state (e.g. Dropout's RNG
//     stream, stochastic-rounding draws) stay serial or re-seed
//     per-task.
//
// Scheduling (how shards are *claimed*) is free to depend on the thread
// count, because rule 1 already fixed what every shard computes and how
// partials merge. run() exploits that: tasks are claimed in contiguous
// index-ordered batches sized by the pool width, which costs one
// fetch_add per batch instead of one per task.
//
// Nesting: run() invoked from inside a pool task executes inline and
// serially on the calling thread. Outer loops (sweep points, fault
// trials) therefore claim the pool and inner loops (GEMM, conv batch
// sharding) degrade to their serial order — which is exactly the
// 1-thread order, keeping rule 1 intact at every level.
//
// The global pool is sized by the QNN_THREADS environment variable
// (malformed or out-of-range values fall back to hardware_concurrency
// with a logged warning), and can be resized programmatically with
// set_global_threads() while no work is running.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace qnn {

// One cache line; per-shard reduction slots and the pool's hot atomics
// pad to this stride so neighboring shards never ping-pong a line.
inline constexpr std::size_t kCacheLineBytes = 64;

// A value padded out to its own cache line. Reduction loops that give
// every shard a slot in a contiguous array use Padded<T> elements so a
// shard's accumulator writes stay local to its core:
//
//   std::vector<Padded<double>> partial(shards.size());
//   ... shard si accumulates into partial[si].v ...
//   for (const auto& p : partial) total += p.v;   // shard-index order
template <typename T>
struct alignas(kCacheLineBytes) Padded {
  T v{};
};

class ThreadPool {
 public:
  // `threads` is the total concurrency including the calling thread, so
  // ThreadPool(1) spawns no workers and run() executes inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Threads this pool can actually run concurrently: min(size(),
  // hardware_concurrency). Schedule choices that only pay off with real
  // concurrency (e.g. the K-parallel GEMM schedule's larger partial
  // footprint) consult this instead of size(), so an oversubscribed
  // pool on a small machine keeps the cheaper serial schedule. Pure
  // scheduling — plans and merge orders never depend on it.
  int parallel_capacity() const { return std::min(size(), hw_threads_); }

  // Invokes fn(i) for every i in [0, count), blocking until all tasks
  // finish. Tasks are claimed in index order, in contiguous batches of
  // claim_batch(count, size()) indices per atomic claim, and may run
  // concurrently on any thread; the caller participates. If tasks
  // throw, the exception with the lowest thrown task index is rethrown
  // after in-flight tasks drain; batches not yet claimed when a failure
  // is recorded are skipped (a claimed batch finishes — the batched
  // analogue of the serial "stop at the first throw").
  //
  // Calls from inside a pool task run inline and serially (see header
  // comment); concurrent top-level calls serialize against each other.
  // At most hardware_concurrency - 1 workers are woken per job: workers
  // the hardware cannot host anyway would only preempt the threads
  // doing real work, so an oversubscribed pool degrades smoothly toward
  // the inline serial path (on one core it *is* the serial path).
  void run(std::int64_t count, const std::function<void(std::int64_t)>& fn);

  // Allocation- and indirection-free flavor parallel_run dispatches
  // through: `invoke(arg, i)` is called per task with `arg` pointing at
  // the caller's callable, so no std::function is materialized per
  // parallel loop. Same semantics as run() otherwise.
  using RawFn = void (*)(void* arg, std::int64_t i);
  void run_raw(std::int64_t count, RawFn invoke, void* arg);

  // Indices claimed per fetch_add by run(): count / (threads *
  // kClaimFactor), clamped to [1, kClaimBatchMax]. Pure scheduling —
  // never affects results (rule 1 above) — so the batch may depend on
  // the pool width. kClaimFactor leaves ~4 batches per thread for load
  // balance; kClaimBatchMax bounds the work lost when a failure skips
  // the rest of a run.
  static constexpr std::int64_t kClaimFactor = 4;
  static constexpr std::int64_t kClaimBatchMax = 64;
  static std::int64_t claim_batch(std::int64_t count, int threads);

  // True on a thread currently executing pool tasks (workers and the
  // participating caller alike).
  static bool in_worker();

  // Opaque per-thread task context, inherited by every thread that
  // executes tasks of a run() issued while the context was set: workers
  // see the submitting thread's context for the duration of the job.
  // Used by scope objects (e.g. protect::AbftScope) whose effect must
  // extend into parallel regions they enclose. The slot is a single
  // pointer — scopes save and restore the previous value; anything they
  // mutate through it from task code must be thread-safe.
  static void* task_context();
  static void set_task_context(void* ctx);

  // Process-wide pool, created on first use with env_threads() threads.
  static ThreadPool& global();
  // Threads requested by the environment: QNN_THREADS if it parses as
  // an integer in [1, kMaxEnvThreads], otherwise hardware_concurrency
  // (at least 1). Garbage ("abc"), non-positive ("0", "-3"), trailing
  // junk ("1e9"), and overflowing values are rejected with a logged
  // warning rather than silently truncated by atoi.
  static int env_threads();
  static constexpr long kMaxEnvThreads = 4096;
  // Rebuilds the global pool with `threads` (clamped to >= 1) and
  // returns the previous size so callers can restore it. Must not race
  // with run() calls; intended for tests and bench harnesses.
  static int set_global_threads(int threads);

  // Iterations a worker spins (cpu-relax loop) checking for a new job
  // before sleeping on the condvar. Nonzero only when the pool fits the
  // hardware (spinning on an oversubscribed core steals cycles from the
  // thread doing real work); see spin_iterations().
  static constexpr int kWorkerSpinIters = 2048;
  int spin_iterations() const { return spin_iters_; }

 private:
  struct Job {
    RawFn invoke = nullptr;
    void* arg = nullptr;
    void* context = nullptr;  // submitting thread's task_context()
    std::int64_t count = 0;
    std::int64_t batch = 1;  // indices claimed per fetch_add
    // The claim counter and failure flag are the job's only hot shared
    // state; each gets its own cache line so claims never ping-pong the
    // line the failure check reads.
    alignas(kCacheLineBytes) std::atomic<std::int64_t> next{0};
    alignas(kCacheLineBytes) std::atomic<bool> failed{false};
    std::mutex m;  // guards error fields
    std::exception_ptr error;
    std::int64_t error_index = -1;
  };

  void worker_loop();
  static void execute_tasks(Job& job);

  std::vector<std::thread> workers_;
  int spin_iters_ = 0;
  int hw_threads_ = 1;  // hardware_concurrency, cached at construction
  std::mutex m_;                     // pairs cv waits with the atomics below
  std::condition_variable wake_cv_;  // workers wait here for a job
  std::condition_variable done_cv_;  // run() waits here for detach
  // Publication protocol: run() stores job_ then bumps generation_;
  // a worker attaches (attached_++) and only then loads job_, so a
  // worker that observed the job is always visible to the caller's
  // post-unpublish attached_ check. All seq_cst — these run once per
  // job, not per task.
  std::atomic<Job*> job_{nullptr};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> generation_{0};
  alignas(kCacheLineBytes) std::atomic<int> attached_{0};
  std::atomic<bool> stop_{false};
  std::mutex run_m_;  // serializes concurrent top-level run() calls
};

// RAII pool resize: rebuilds the global pool at `threads` and restores
// the previous size on destruction. The standard way tests and benches
// replay the same workload at several thread counts (determinism pins,
// serve trace replay) without leaking a resized pool into later cases.
class ScopedGlobalThreads {
 public:
  explicit ScopedGlobalThreads(int threads)
      : previous_(ThreadPool::set_global_threads(threads)) {}
  ~ScopedGlobalThreads() { ThreadPool::set_global_threads(previous_); }

  ScopedGlobalThreads(const ScopedGlobalThreads&) = delete;
  ScopedGlobalThreads& operator=(const ScopedGlobalThreads&) = delete;

 private:
  int previous_;
};

// Contiguous index range [begin, end).
struct Shard {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t size() const { return end - begin; }
};

// Fixed shard cap used by every deterministic reduction in the tree.
// The resulting shard plan — and therefore the floating-point merge
// order — depends only on the problem size, never on the thread count.
inline constexpr std::int64_t kReductionShards = 16;

// Grain-size policy. A shard below roughly this many scalar-op units of
// work costs more in pool handshake (wake, claim, detach) than its
// parallelism wins, so shard plans stop splitting before shards get
// smaller than this. The value is a constant of the build — part of
// the plan, so still a pure function of the problem size.
inline constexpr std::int64_t kMinShardWork = 32768;

// Loop-index grain for a loop whose single iteration costs about
// `cost_per_item` scalar-op units: the smallest shard size that carries
// >= kMinShardWork units. Call sites estimate cost from the problem
// shape (elements touched, window sizes, ...), never from the pool.
inline constexpr std::int64_t shard_grain(std::int64_t cost_per_item) {
  return cost_per_item <= 0
             ? kMinShardWork
             : (kMinShardWork + cost_per_item - 1) / cost_per_item;
}

// Splits [0, total) into contiguous near-equal shards (earlier shards
// take the remainder): min(max_shards, max(1, total / grain)) of them,
// so no shard carries fewer than `grain` items until the whole loop is
// a single shard — which parallel_run then executes inline, with no
// pool interaction at all. The plan depends only on (total, max_shards,
// grain); call sites derive grain from the problem shape (shard_grain),
// keeping the merge order a pure function of the problem size.
// total == 0 yields no shards.
std::vector<Shard> make_shards(std::int64_t total, std::int64_t max_shards,
                               std::int64_t grain = 1);

// Runs fn(i) for i in [0, count) on the global pool. The serial cases
// (count <= 1, single-thread pool, nested inside a pool task) loop
// inline; the pool path dispatches through run_raw with a direct
// trampoline on F — no std::function, no per-loop allocation.
template <typename F>
void parallel_run(std::int64_t count, F&& fn) {
  if (count <= 0) return;
  if (count == 1 || ThreadPool::in_worker()) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  if (pool.size() == 1) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  using Fn = std::remove_reference_t<F>;
  pool.run_raw(
      count,
      [](void* arg, std::int64_t i) { (*static_cast<Fn*>(arg))(i); },
      const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
}

// Shard-plan convenience: fn(shard_index, begin, end) per shard of
// make_shards(total, max_shards, grain). Loops with cheap iterations
// pass a shape-derived grain (shard_grain) so small problems collapse
// to one shard and run inline.
template <typename F>
void parallel_for_shards(std::int64_t total, std::int64_t max_shards,
                         std::int64_t grain, F&& fn) {
  const std::vector<Shard> shards = make_shards(total, max_shards, grain);
  parallel_run(static_cast<std::int64_t>(shards.size()),
               [&](std::int64_t si) {
                 const Shard& s = shards[static_cast<std::size_t>(si)];
                 fn(static_cast<std::size_t>(si), s.begin, s.end);
               });
}

template <typename F>
void parallel_for_shards(std::int64_t total, std::int64_t max_shards,
                         F&& fn) {
  parallel_for_shards(total, max_shards, /*grain=*/1, std::forward<F>(fn));
}

}  // namespace qnn
