#include "data/augment.h"

#include "util/check.h"

namespace qnn::data {

Tensor augment_batch(const Tensor& images, const AugmentConfig& config,
                     Rng& rng) {
  const Shape& s = images.shape();
  QNN_CHECK(s.rank() == 4);
  if (!config.enabled()) return images;
  Tensor out(s);
  const std::int64_t pad = config.pad_crop;
  for (std::int64_t n = 0; n < s.n(); ++n) {
    const bool flip = config.mirror && rng.bernoulli(0.5);
    // Crop offset in [-pad, pad]: reading input at (y+dy, x+dx), zeros
    // outside — equivalent to zero-padding by `pad` then cropping.
    const std::int64_t dy =
        pad > 0 ? rng.uniform_int(-static_cast<int>(pad),
                                  static_cast<int>(pad))
                : 0;
    const std::int64_t dx =
        pad > 0 ? rng.uniform_int(-static_cast<int>(pad),
                                  static_cast<int>(pad))
                : 0;
    for (std::int64_t c = 0; c < s.c(); ++c) {
      for (std::int64_t y = 0; y < s.h(); ++y) {
        const std::int64_t sy = y + dy;
        for (std::int64_t x = 0; x < s.w(); ++x) {
          const std::int64_t sx0 = x + dx;
          const std::int64_t sx = flip ? s.w() - 1 - sx0 : sx0;
          float v = 0.0f;
          if (sy >= 0 && sy < s.h() && sx0 >= 0 && sx0 < s.w())
            v = images.at(n, c, sy, sx);
          out.at(n, c, y, x) = v;
        }
      }
    }
  }
  return out;
}

}  // namespace qnn::data
