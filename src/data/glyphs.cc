#include "data/glyphs.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/check.h"

namespace qnn::data {
namespace {

// Seven-segment layout in the unit square with margins. Segment ids:
//      A
//     ---
//  F |   | B
//     -G-
//  E |   | C
//     ---
//      D
constexpr float kL = 0.25f, kR = 0.75f, kT = 0.15f, kM = 0.5f, kB = 0.85f;

const Segment kSegA{kL, kT, kR, kT};
const Segment kSegB{kR, kT, kR, kM};
const Segment kSegC{kR, kM, kR, kB};
const Segment kSegD{kL, kB, kR, kB};
const Segment kSegE{kL, kM, kL, kB};
const Segment kSegF{kL, kT, kL, kM};
const Segment kSegG{kL, kM, kR, kM};

// Standard seven-segment digit encodings, with digit 1 given a serif and
// digit 7 a hook so no class is a strict subset presentation-wise.
std::vector<Segment> build_digit(int digit) {
  switch (digit) {
    case 0: return {kSegA, kSegB, kSegC, kSegD, kSegE, kSegF};
    case 1: return {kSegB, kSegC, {kL + 0.1f, kT + 0.12f, kR, kT}};
    case 2: return {kSegA, kSegB, kSegG, kSegE, kSegD};
    case 3: return {kSegA, kSegB, kSegG, kSegC, kSegD};
    case 4: return {kSegF, kSegG, kSegB, kSegC};
    case 5: return {kSegA, kSegF, kSegG, kSegC, kSegD};
    case 6: return {kSegA, kSegF, kSegG, kSegC, kSegD, kSegE};
    case 7: return {kSegA, kSegB, kSegC, {kL, kT + 0.1f, kL, kT}};
    case 8: return {kSegA, kSegB, kSegC, kSegD, kSegE, kSegF, kSegG};
    case 9: return {kSegA, kSegB, kSegC, kSegD, kSegF, kSegG};
    default:
      QNN_CHECK_MSG(false, "digit " << digit << " out of [0,9]");
  }
  return {};
}

float dist_to_segment(float px, float py, const Segment& s) {
  const float vx = s.x1 - s.x0, vy = s.y1 - s.y0;
  const float wx = px - s.x0, wy = py - s.y0;
  const float len2 = vx * vx + vy * vy;
  float t = len2 > 0 ? (wx * vx + wy * vy) / len2 : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float dx = px - (s.x0 + t * vx), dy = py - (s.y0 + t * vy);
  return std::sqrt(dx * dx + dy * dy);
}

void render_segments(const std::vector<Segment>& segments,
                     const Affine& tf, float thickness, float intensity,
                     float* image, int h, int w) {
  // Transform segment endpoints once; rasterize by signed distance.
  std::vector<Segment> xformed;
  xformed.reserve(segments.size());
  for (const Segment& s : segments) {
    Segment t;
    t.x0 = tf.m00 * s.x0 + tf.m01 * s.y0 + tf.tx;
    t.y0 = tf.m10 * s.x0 + tf.m11 * s.y0 + tf.ty;
    t.x1 = tf.m00 * s.x1 + tf.m01 * s.y1 + tf.tx;
    t.y1 = tf.m10 * s.x1 + tf.m11 * s.y1 + tf.ty;
    xformed.push_back(t);
  }
  // One-pixel anti-aliasing band in unit coordinates.
  const float aa = 1.0f / static_cast<float>(std::max(h, w));
  for (int y = 0; y < h; ++y) {
    const float py = (static_cast<float>(y) + 0.5f) / static_cast<float>(h);
    for (int x = 0; x < w; ++x) {
      const float px = (static_cast<float>(x) + 0.5f) / static_cast<float>(w);
      float best = 1e9f;
      for (const Segment& s : xformed)
        best = std::min(best, dist_to_segment(px, py, s));
      const float cover =
          std::clamp((thickness + aa - best) / aa, 0.0f, 1.0f);
      if (cover > 0) {
        float& pix = image[y * w + x];
        pix = std::max(pix, cover * intensity);
      }
    }
  }
}

}  // namespace

const std::vector<Segment>& glyph_segments(int digit) {
  static const std::array<std::vector<Segment>, 10> cache = [] {
    std::array<std::vector<Segment>, 10> a;
    for (int d = 0; d < 10; ++d) a[static_cast<std::size_t>(d)] = build_digit(d);
    return a;
  }();
  QNN_CHECK(digit >= 0 && digit <= 9);
  return cache[static_cast<std::size_t>(digit)];
}

Affine Affine::jitter(float rotation, float scale, float shift_x,
                      float shift_y, float shear) {
  // Rotate+shear+scale about the center (0.5, 0.5), then translate.
  const float c = std::cos(rotation), s = std::sin(rotation);
  Affine a;
  a.m00 = scale * c;
  a.m01 = scale * (-s + shear);
  a.m10 = scale * s;
  a.m11 = scale * c;
  a.tx = 0.5f - (a.m00 * 0.5f + a.m01 * 0.5f) + shift_x;
  a.ty = 0.5f - (a.m10 * 0.5f + a.m11 * 0.5f) + shift_y;
  return a;
}

void render_glyph(int digit, const Affine& transform, float thickness,
                  float intensity, float* image, int h, int w) {
  render_segments(glyph_segments(digit), transform, thickness, intensity,
                  image, h, w);
}

void render_glyph_fragment(int digit, const Affine& transform,
                           float thickness, float intensity,
                           double keep_fraction, Rng& rng, float* image,
                           int h, int w) {
  std::vector<Segment> kept;
  for (const Segment& s : glyph_segments(digit))
    if (rng.bernoulli(keep_fraction)) kept.push_back(s);
  if (kept.empty()) return;
  render_segments(kept, transform, thickness, intensity, image, h, w);
}

}  // namespace qnn::data
