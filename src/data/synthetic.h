// Synthetic dataset generators shaped like the paper's three benchmarks.
//
// We have no access to MNIST/SVHN/CIFAR-10 binaries in this environment,
// so we synthesize deterministic datasets with the same tensor shapes,
// class counts, and — crucially — the same *difficulty ordering*
// (MNIST-like easy, SVHN-like medium, CIFAR-like hard). See DESIGN.md §3.
//
//  - MNIST-like:  28×28×1. Anti-aliased digit glyphs under mild affine
//    jitter and light noise. A LeNet-class model reaches ≈99%.
//  - SVHN-like:   32×32×3. The same glyph classes rendered in random
//    colors over gradient backgrounds with distractor glyph fragments
//    (street-number clutter) and stronger jitter/noise.
//  - CIFAR-like:  32×32×3. Ten classes, each a mixture of several
//    "modes": procedural scenes combining low-frequency color fields,
//    oriented gratings, and shape overlays with heavy parameter jitter.
//    Multi-modal classes reward model capacity, which the paper's
//    ALEX+ / ALEX++ experiments rely on.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace qnn::data {

struct SyntheticConfig {
  std::int64_t num_train = 2000;
  std::int64_t num_test = 500;
  std::uint64_t seed = 42;
  // Additive Gaussian pixel noise; the per-dataset defaults below are
  // scaled by this multiplier (1 = calibrated difficulty).
  double noise_scale = 1.0;
};

Split make_mnist_like(const SyntheticConfig& config);
Split make_svhn_like(const SyntheticConfig& config);
Split make_cifar_like(const SyntheticConfig& config);

// Dataset registry used by examples/benches ("mnist" | "svhn" | "cifar").
Split make_dataset(const std::string& name, const SyntheticConfig& config);

}  // namespace qnn::data
