// Training-time data augmentation — Caffe's classic CIFAR recipe:
// random horizontal mirroring and random shifts via pad-then-crop.
// Applied per batch inside nn::train when enabled in TrainConfig.
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace qnn::data {

struct AugmentConfig {
  bool mirror = false;  // flip horizontally with probability 1/2
  int pad_crop = 0;     // zero-pad by k pixels, crop back at random
  std::uint64_t seed = 23;

  bool enabled() const { return mirror || pad_crop > 0; }
};

// Returns the augmented copy of an (N,C,H,W) batch; each sample draws
// its own transform.
Tensor augment_batch(const Tensor& images, const AugmentConfig& config,
                     Rng& rng);

}  // namespace qnn::data
