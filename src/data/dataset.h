// Labeled image dataset container and split/batch utilities.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace qnn::data {

struct Dataset {
  std::string name;
  Tensor images;            // (N, C, H, W), values nominally in [0, 1]
  std::vector<int> labels;  // size N, values in [0, num_classes)
  int num_classes = 0;

  std::int64_t size() const { return images.shape().n(); }

  // Copies samples [begin, end) into a new dataset.
  Dataset slice(std::int64_t begin, std::int64_t end) const;

  // Copies the given sample indices into a new dataset.
  Dataset gather(const std::vector<std::int64_t>& indices) const;
};

// Train/validation/test partition. The paper holds out 10% of the test
// set per class as validation (§V-A); split_validation reproduces that.
struct Split {
  Dataset train;
  Dataset test;
};

// Extracts a per-class fraction of `d` as validation; returns
// {remaining, validation}.
std::pair<Dataset, Dataset> split_validation(const Dataset& d,
                                             double fraction, Rng& rng);

// Copies one batch (samples [first, first+count)) into `images`/`labels`.
// `images` is resized/allocated by the caller via shape; labels appended.
Tensor batch_images(const Dataset& d, std::int64_t first, std::int64_t count);
std::vector<int> batch_labels(const Dataset& d, std::int64_t first,
                              std::int64_t count);

// Returns a random permutation of [0, n).
std::vector<std::int64_t> shuffled_indices(std::int64_t n, Rng& rng);

}  // namespace qnn::data
