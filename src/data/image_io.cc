#include "data/image_io.h"

#include <algorithm>
#include <fstream>
#include <functional>

#include "util/check.h"

namespace qnn::data {
namespace {

unsigned char to_byte(float v) {
  return static_cast<unsigned char>(
      std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f);
}

void write_pnm(const std::string& path, std::int64_t c, std::int64_t h,
               std::int64_t w,
               const std::function<float(std::int64_t ch, std::int64_t y,
                                         std::int64_t x)>& pixel) {
  QNN_CHECK_MSG(c == 1 || c == 3, "PGM/PPM supports 1 or 3 channels");
  std::ofstream out(path, std::ios::binary);
  QNN_CHECK_MSG(out.good(), "cannot open " << path);
  out << (c == 1 ? "P5" : "P6") << '\n' << w << ' ' << h << "\n255\n";
  for (std::int64_t y = 0; y < h; ++y)
    for (std::int64_t x = 0; x < w; ++x)
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const unsigned char b = to_byte(pixel(ch, y, x));
        out.write(reinterpret_cast<const char*>(&b), 1);
      }
  QNN_CHECK_MSG(out.good(), "write failed: " << path);
}

}  // namespace

void write_image(const Tensor& images, std::int64_t sample_index,
                 const std::string& path) {
  const Shape& s = images.shape();
  QNN_CHECK(s.rank() == 4);
  QNN_CHECK(sample_index >= 0 && sample_index < s.n());
  write_pnm(path, s.c(), s.h(), s.w(),
            [&](std::int64_t ch, std::int64_t y, std::int64_t x) {
              return images.at(sample_index, ch, y, x);
            });
}

void write_contact_sheet(const Tensor& images, std::int64_t count,
                         std::int64_t columns, const std::string& path) {
  const Shape& s = images.shape();
  QNN_CHECK(s.rank() == 4);
  QNN_CHECK(columns > 0);
  count = std::min(count, s.n());
  const std::int64_t rows = (count + columns - 1) / columns;
  const std::int64_t pad = 2;
  const std::int64_t cell_h = s.h() + pad, cell_w = s.w() + pad;
  write_pnm(path, s.c(), rows * cell_h, columns * cell_w,
            [&](std::int64_t ch, std::int64_t y, std::int64_t x) {
              const std::int64_t r = y / cell_h, c = x / cell_w;
              const std::int64_t iy = y % cell_h, ix = x % cell_w;
              const std::int64_t idx = r * columns + c;
              if (idx >= count || iy >= s.h() || ix >= s.w())
                return 0.25f;  // gutter
              return images.at(idx, ch, iy, ix);
            });
}

}  // namespace qnn::data
