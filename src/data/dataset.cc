#include "data/dataset.h"

#include <numeric>

#include "util/check.h"

namespace qnn::data {
namespace {

Tensor copy_samples(const Tensor& images,
                    const std::vector<std::int64_t>& indices) {
  const Shape& s = images.shape();
  QNN_CHECK(s.rank() == 4);
  const std::int64_t sample = s.count_from(1);
  Tensor out(Shape{static_cast<std::int64_t>(indices.size()), s.c(), s.h(),
                   s.w()});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::int64_t src = indices[i];
    QNN_CHECK(src >= 0 && src < s.n());
    std::copy_n(images.data() + src * sample, sample,
                out.data() + static_cast<std::int64_t>(i) * sample);
  }
  return out;
}

}  // namespace

Dataset Dataset::slice(std::int64_t begin, std::int64_t end) const {
  QNN_CHECK(begin >= 0 && begin <= end && end <= size());
  std::vector<std::int64_t> idx(static_cast<std::size_t>(end - begin));
  std::iota(idx.begin(), idx.end(), begin);
  return gather(idx);
}

Dataset Dataset::gather(const std::vector<std::int64_t>& indices) const {
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  out.images = copy_samples(images, indices);
  out.labels.reserve(indices.size());
  for (std::int64_t i : indices)
    out.labels.push_back(labels[static_cast<std::size_t>(i)]);
  return out;
}

std::pair<Dataset, Dataset> split_validation(const Dataset& d,
                                             double fraction, Rng& rng) {
  QNN_CHECK(fraction >= 0.0 && fraction <= 1.0);
  // Group indices per class, shuffle within class, take the fraction.
  std::vector<std::vector<std::int64_t>> per_class(
      static_cast<std::size_t>(d.num_classes));
  for (std::int64_t i = 0; i < d.size(); ++i)
    per_class[static_cast<std::size_t>(d.labels[i])].push_back(i);

  std::vector<std::int64_t> keep, val;
  for (auto& bucket : per_class) {
    rng.shuffle(bucket);
    const std::size_t take = static_cast<std::size_t>(
        fraction * static_cast<double>(bucket.size()) + 0.5);
    for (std::size_t i = 0; i < bucket.size(); ++i)
      (i < take ? val : keep).push_back(bucket[i]);
  }
  return {d.gather(keep), d.gather(val)};
}

Tensor batch_images(const Dataset& d, std::int64_t first,
                    std::int64_t count) {
  QNN_CHECK(first >= 0 && first + count <= d.size());
  std::vector<std::int64_t> idx(static_cast<std::size_t>(count));
  std::iota(idx.begin(), idx.end(), first);
  return copy_samples(d.images, idx);
}

std::vector<int> batch_labels(const Dataset& d, std::int64_t first,
                              std::int64_t count) {
  QNN_CHECK(first >= 0 && first + count <= d.size());
  return {d.labels.begin() + first, d.labels.begin() + first + count};
}

std::vector<std::int64_t> shuffled_indices(std::int64_t n, Rng& rng) {
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  return idx;
}

}  // namespace qnn::data
