// Procedural digit glyph rendering for the synthetic MNIST-like and
// SVHN-like datasets (see DESIGN.md §3 — dataset substitution).
//
// Each of the ten classes is a seven-segment-style stroke pattern in the
// unit square, rasterized with anti-aliasing under a random affine
// transform. Classes that share most segments (6/8/9, 3/9, 5/6) make the
// task non-trivial once clutter and noise are added.
#pragma once

#include <vector>

#include "util/rng.h"

namespace qnn::data {

// A line segment in unit-square glyph coordinates (y grows downward).
struct Segment {
  float x0, y0, x1, y1;
};

// Stroke pattern for digit in [0, 9].
const std::vector<Segment>& glyph_segments(int digit);

// 2-D affine transform p' = M p + t applied in unit-square coordinates.
struct Affine {
  float m00 = 1, m01 = 0, m10 = 0, m11 = 1, tx = 0, ty = 0;

  // rotation (radians) about the square center, isotropic scale,
  // translation, and shear; composed center-out.
  static Affine jitter(float rotation, float scale, float shift_x,
                       float shift_y, float shear);
};

// Draws the glyph into a single-channel h×w image (row-major), blending
// with max() so overlapping strokes do not over-saturate.
// `thickness` is the stroke half-width in unit coordinates; `intensity`
// the peak value added.
void render_glyph(int digit, const Affine& transform, float thickness,
                  float intensity, float* image, int h, int w);

// Draws only a random subset of the digit's segments — used as clutter
// ("distractor fragments") in the SVHN-like dataset.
void render_glyph_fragment(int digit, const Affine& transform,
                           float thickness, float intensity,
                           double keep_fraction, Rng& rng, float* image,
                           int h, int w);

}  // namespace qnn::data
