#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "data/glyphs.h"
#include "util/check.h"

namespace qnn::data {
namespace {

constexpr double kPi = std::numbers::pi;

void add_noise_and_clamp(float* pix, std::int64_t n, double sigma,
                         Rng& rng) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double v =
        static_cast<double>(pix[i]) + (sigma > 0 ? rng.normal(0.0, sigma) : 0.0);
    pix[i] = static_cast<float>(std::clamp(v, 0.0, 1.0));
  }
}

// ---------------------------------------------------------------- MNIST

void render_mnist_sample(int digit, Rng& rng, float* image, int h, int w,
                         double noise) {
  std::fill_n(image, h * w, 0.0f);
  const Affine tf = Affine::jitter(
      static_cast<float>(rng.uniform(-0.18, 0.18)),
      static_cast<float>(rng.uniform(0.85, 1.15)),
      static_cast<float>(rng.uniform(-0.07, 0.07)),
      static_cast<float>(rng.uniform(-0.07, 0.07)),
      static_cast<float>(rng.uniform(-0.12, 0.12)));
  render_glyph(digit, tf, static_cast<float>(rng.uniform(0.035, 0.06)),
               static_cast<float>(rng.uniform(0.8, 1.0)), image, h, w);
  add_noise_and_clamp(image, h * w, noise, rng);
}

// ----------------------------------------------------------------- SVHN

struct Rgb {
  float r, g, b;
};

Rgb random_color(Rng& rng) {
  return {static_cast<float>(rng.uniform()), static_cast<float>(rng.uniform()),
          static_cast<float>(rng.uniform())};
}

float color_dist(const Rgb& a, const Rgb& b) {
  return std::fabs(a.r - b.r) + std::fabs(a.g - b.g) + std::fabs(a.b - b.b);
}

void render_svhn_sample(int digit, Rng& rng, float* image, int h, int w,
                        double noise) {
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  // Gradient background between two related colors.
  const Rgb bg0 = random_color(rng);
  Rgb bg1 = bg0;
  bg1.r = std::clamp(bg1.r + static_cast<float>(rng.uniform(-0.3, 0.3)), 0.0f, 1.0f);
  bg1.g = std::clamp(bg1.g + static_cast<float>(rng.uniform(-0.3, 0.3)), 0.0f, 1.0f);
  bg1.b = std::clamp(bg1.b + static_cast<float>(rng.uniform(-0.3, 0.3)), 0.0f, 1.0f);
  const double angle = rng.uniform(0.0, 2.0 * kPi);
  const float gx = static_cast<float>(std::cos(angle));
  const float gy = static_cast<float>(std::sin(angle));
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const float t = 0.5f + 0.5f * (gx * (static_cast<float>(x) / w - 0.5f) +
                                     gy * (static_cast<float>(y) / h - 0.5f));
      image[0 * plane + y * w + x] = bg0.r + t * (bg1.r - bg0.r);
      image[1 * plane + y * w + x] = bg0.g + t * (bg1.g - bg0.g);
      image[2 * plane + y * w + x] = bg0.b + t * (bg1.b - bg0.b);
    }
  }

  // Foreground color with guaranteed (but sometimes weak) contrast.
  Rgb fg = random_color(rng);
  const float min_contrast = rng.bernoulli(0.15) ? 0.5f : 0.8f;
  for (int tries = 0; tries < 32 && color_dist(fg, bg0) < min_contrast;
       ++tries)
    fg = random_color(rng);

  // Distractor fragments of *other* digits around the edges — the
  // "neighboring digits" clutter that makes SVHN harder than MNIST.
  std::vector<float> mask(static_cast<std::size_t>(plane));
  const int num_distractors = rng.uniform_int(1, 3);
  for (int d = 0; d < num_distractors; ++d) {
    std::fill(mask.begin(), mask.end(), 0.0f);
    int other = rng.uniform_int(0, 9);
    if (other == digit) other = (other + 1 + rng.uniform_int(0, 8)) % 10;
    const float side = rng.bernoulli(0.5) ? -1.0f : 1.0f;
    const Affine tf = Affine::jitter(
        static_cast<float>(rng.uniform(-0.3, 0.3)),
        static_cast<float>(rng.uniform(0.6, 0.9)),
        side * static_cast<float>(rng.uniform(0.3, 0.45)),
        static_cast<float>(rng.uniform(-0.2, 0.2)),
        static_cast<float>(rng.uniform(-0.15, 0.15)));
    Rng frag_rng = rng.fork();
    render_glyph_fragment(other, tf,
                          static_cast<float>(rng.uniform(0.03, 0.05)), 1.0f,
                          0.5, frag_rng, mask.data(), h, w);
    Rgb dc = random_color(rng);
    const float alpha = static_cast<float>(rng.uniform(0.3, 0.55));
    for (std::int64_t i = 0; i < plane; ++i) {
      const float m = mask[static_cast<std::size_t>(i)] * alpha;
      image[0 * plane + i] += m * (dc.r - image[0 * plane + i]);
      image[1 * plane + i] += m * (dc.g - image[1 * plane + i]);
      image[2 * plane + i] += m * (dc.b - image[2 * plane + i]);
    }
  }

  // The labeled digit, centered-ish.
  std::fill(mask.begin(), mask.end(), 0.0f);
  const Affine tf = Affine::jitter(
      static_cast<float>(rng.uniform(-0.25, 0.25)),
      static_cast<float>(rng.uniform(0.75, 1.1)),
      static_cast<float>(rng.uniform(-0.12, 0.12)),
      static_cast<float>(rng.uniform(-0.12, 0.12)),
      static_cast<float>(rng.uniform(-0.15, 0.15)));
  render_glyph(digit, tf, static_cast<float>(rng.uniform(0.035, 0.06)), 1.0f,
               mask.data(), h, w);
  for (std::int64_t i = 0; i < plane; ++i) {
    const float m = mask[static_cast<std::size_t>(i)];
    image[0 * plane + i] += m * (fg.r - image[0 * plane + i]);
    image[1 * plane + i] += m * (fg.g - image[1 * plane + i]);
    image[2 * plane + i] += m * (fg.b - image[2 * plane + i]);
  }

  add_noise_and_clamp(image, 3 * plane, noise, rng);
}

// ---------------------------------------------------------------- CIFAR

// One "mode" of a CIFAR-like class: a procedural scene made of a few
// low-frequency color waves plus a shape overlay carrying an oriented
// grating. All parameters are sampled once per mode; per-sample jitter
// perturbs phase, position, amplitude, and adds noise.
struct SceneMode {
  struct Wave {
    float fx, fy, phase, amp;
    float cr, cg, cb;  // per-channel weights
  };
  std::vector<Wave> waves;
  Rgb base;
  int shape;          // 0 disk, 1 ring, 2 bar, 3 checker patch
  float shape_x, shape_y, shape_r;
  Rgb shape_color;
  float grating_freq, grating_angle;
};

SceneMode make_mode(Rng& rng) {
  SceneMode m;
  m.base = random_color(rng);
  const int waves = rng.uniform_int(2, 4);
  for (int i = 0; i < waves; ++i) {
    SceneMode::Wave w;
    w.fx = static_cast<float>(rng.uniform(0.5, 3.0)) *
           (rng.bernoulli(0.5) ? 1.f : -1.f);
    w.fy = static_cast<float>(rng.uniform(0.5, 3.0)) *
           (rng.bernoulli(0.5) ? 1.f : -1.f);
    w.phase = static_cast<float>(rng.uniform(0.0, 2.0 * kPi));
    w.amp = static_cast<float>(rng.uniform(0.08, 0.25));
    w.cr = static_cast<float>(rng.uniform(-1.0, 1.0));
    w.cg = static_cast<float>(rng.uniform(-1.0, 1.0));
    w.cb = static_cast<float>(rng.uniform(-1.0, 1.0));
    m.waves.push_back(w);
  }
  m.shape = rng.uniform_int(0, 3);
  m.shape_x = static_cast<float>(rng.uniform(0.3, 0.7));
  m.shape_y = static_cast<float>(rng.uniform(0.3, 0.7));
  m.shape_r = static_cast<float>(rng.uniform(0.15, 0.3));
  m.shape_color = random_color(rng);
  m.grating_freq = static_cast<float>(rng.uniform(3.0, 8.0));
  m.grating_angle = static_cast<float>(rng.uniform(0.0, kPi));
  return m;
}

void render_cifar_sample(const SceneMode& m, Rng& rng, float* image, int h,
                         int w, double noise) {
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  // Per-sample jitter (aggressive: the CIFAR-like task must stay hard
  // enough that a small ALEX lands near the paper's ~81%).
  const float dx = static_cast<float>(rng.uniform(-0.25, 0.25));
  const float dy = static_cast<float>(rng.uniform(-0.25, 0.25));
  const float phase_j = static_cast<float>(rng.uniform(-2.0, 2.0));
  const float amp_j = static_cast<float>(rng.uniform(0.55, 1.45));
  const float bright = static_cast<float>(rng.uniform(-0.18, 0.18));
  const float contrast = static_cast<float>(rng.uniform(0.7, 1.3));
  const float sx = m.shape_x + dx, sy = m.shape_y + dy;
  const float sr = m.shape_r * static_cast<float>(rng.uniform(0.8, 1.2));
  const float ga = m.grating_angle +
                   static_cast<float>(rng.uniform(-0.25, 0.25));
  const float gc = std::cos(ga), gs = std::sin(ga);

  for (int y = 0; y < h; ++y) {
    const float py = (static_cast<float>(y) + 0.5f) / h;
    for (int x = 0; x < w; ++x) {
      const float px = (static_cast<float>(x) + 0.5f) / w;
      float r = m.base.r, g = m.base.g, b = m.base.b;
      for (const auto& wv : m.waves) {
        const float s =
            wv.amp * amp_j *
            std::sin(2.0f * static_cast<float>(kPi) *
                         (wv.fx * (px + dx) + wv.fy * (py + dy)) +
                     wv.phase + phase_j);
        r += s * wv.cr;
        g += s * wv.cg;
        b += s * wv.cb;
      }
      // Shape mask.
      const float rx = px - sx, ry = py - sy;
      const float dist = std::sqrt(rx * rx + ry * ry);
      float mask = 0.0f;
      switch (m.shape) {
        case 0: mask = dist < sr ? 1.0f : 0.0f; break;
        case 1:
          mask = (dist < sr && dist > 0.55f * sr) ? 1.0f : 0.0f;
          break;
        case 2:
          mask = (std::fabs(rx * gc + ry * gs) < 0.35f * sr &&
                  std::fabs(-rx * gs + ry * gc) < 1.4f * sr)
                     ? 1.0f
                     : 0.0f;
          break;
        case 3:
          mask = (std::fabs(rx) < sr && std::fabs(ry) < sr &&
                  std::sin(2.0f * static_cast<float>(kPi) * m.grating_freq *
                           rx) *
                          std::sin(2.0f * static_cast<float>(kPi) *
                                   m.grating_freq * ry) >
                      0)
                     ? 1.0f
                     : 0.0f;
          break;
        default: break;
      }
      if (mask > 0) {
        // Oriented grating inside the shape.
        const float tex =
            0.5f + 0.5f * std::sin(2.0f * static_cast<float>(kPi) *
                                   m.grating_freq * (rx * gc + ry * gs));
        const float a = 0.75f * mask;
        r += a * (m.shape_color.r * tex - r);
        g += a * (m.shape_color.g * tex - g);
        b += a * (m.shape_color.b * tex - b);
      }
      image[0 * plane + y * w + x] = (r - 0.5f) * contrast + 0.5f + bright;
      image[1 * plane + y * w + x] = (g - 0.5f) * contrast + 0.5f + bright;
      image[2 * plane + y * w + x] = (b - 0.5f) * contrast + 0.5f + bright;
    }
  }
  add_noise_and_clamp(image, 3 * plane, noise, rng);
}

// --------------------------------------------------------------- driver

template <typename RenderFn>
Dataset generate(const std::string& name, std::int64_t n, int c, int h,
                 int w, Rng& rng, RenderFn&& render) {
  Dataset d;
  d.name = name;
  d.num_classes = 10;
  d.images = Tensor(Shape{n, c, h, w});
  d.labels.resize(static_cast<std::size_t>(n));
  const std::int64_t sample = static_cast<std::int64_t>(c) * h * w;
  for (std::int64_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 10);  // balanced classes
    d.labels[static_cast<std::size_t>(i)] = label;
    render(label, rng, d.images.data() + i * sample);
  }
  return d;
}

}  // namespace

Split make_mnist_like(const SyntheticConfig& config) {
  Rng rng(config.seed);
  const double noise = 0.05 * config.noise_scale;
  auto render = [&](int label, Rng& r, float* img) {
    render_mnist_sample(label, r, img, 28, 28, noise);
  };
  Split s;
  s.train = generate("mnist-like", config.num_train, 1, 28, 28, rng, render);
  s.test = generate("mnist-like", config.num_test, 1, 28, 28, rng, render);
  return s;
}

Split make_svhn_like(const SyntheticConfig& config) {
  Rng rng(config.seed ^ 0x5c5c5c5cull);
  const double noise = 0.06 * config.noise_scale;
  auto render = [&](int label, Rng& r, float* img) {
    render_svhn_sample(label, r, img, 32, 32, noise);
  };
  Split s;
  s.train = generate("svhn-like", config.num_train, 3, 32, 32, rng, render);
  s.test = generate("svhn-like", config.num_test, 3, 32, 32, rng, render);
  return s;
}

Split make_cifar_like(const SyntheticConfig& config) {
  Rng rng(config.seed ^ 0xc1fa7ull);
  // Fixed per-class mode banks; the *same* bank generates train and test
  // so the task is learnable, while multiple modes per class reward
  // capacity (ALEX+ / ALEX++).
  constexpr int kModes = 8;
  std::vector<std::vector<SceneMode>> modes(10);
  for (auto& bank : modes)
    for (int k = 0; k < kModes; ++k) bank.push_back(make_mode(rng));

  const double noise = 0.12 * config.noise_scale;
  // Class overlap: occasionally a sample is rendered from another
  // class's mode bank (keeping its label) — the irreducible confusion
  // that keeps even large networks below ~90% and mirrors CIFAR-10's
  // overlapping categories.
  constexpr double kModeConfusion = 0.10;
  auto render = [&](int label, Rng& r, float* img) {
    int source_class = label;
    if (r.bernoulli(kModeConfusion))
      source_class = r.uniform_int(0, 9);
    const auto& bank = modes[static_cast<std::size_t>(source_class)];
    const auto& mode =
        bank[static_cast<std::size_t>(r.uniform_int(0, kModes - 1))];
    render_cifar_sample(mode, r, img, 32, 32, noise);
  };
  Split s;
  s.train = generate("cifar-like", config.num_train, 3, 32, 32, rng, render);
  s.test = generate("cifar-like", config.num_test, 3, 32, 32, rng, render);
  return s;
}

Split make_dataset(const std::string& name, const SyntheticConfig& config) {
  if (name == "mnist") return make_mnist_like(config);
  if (name == "svhn") return make_svhn_like(config);
  if (name == "cifar") return make_cifar_like(config);
  QNN_CHECK_MSG(false, "unknown dataset " << name);
  return {};
}

}  // namespace qnn::data
