// Minimal NetPBM writers (binary PGM/PPM) for inspecting the synthetic
// datasets and feature maps — no external image library needed.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace qnn::data {

// Writes one sample of a (N,1,H,W) or (N,3,H,W) tensor as PGM/PPM.
// Values are clamped from [0,1] to [0,255].
void write_image(const Tensor& images, std::int64_t sample_index,
                 const std::string& path);

// Writes a grid of the first `count` samples into one image
// (`columns` per row), useful for dataset contact sheets.
void write_contact_sheet(const Tensor& images, std::int64_t count,
                         std::int64_t columns, const std::string& path);

}  // namespace qnn::data
