// PLAN — Piecewise Linear Approximation of Nonlinearity (Amin, Curtis,
// Hayes-Gill 1997) — the classic hardware sigmoid: every slope and
// intercept is a (sum of) power(s) of two, so the NFU's stage-3 block
// needs only shifts and adds. Maximum absolute error ≈ 0.0189.
//
//   |x| >= 5        : y = 1
//   2.375 <= |x| < 5: y = 0.03125 |x| + 0.84375
//   1 <= |x| < 2.375: y = 0.125   |x| + 0.625
//   0 <= |x| < 1    : y = 0.25    |x| + 0.5
//   x < 0           : y = 1 - y(|x|)
//
// tanh derives from it: tanh(x) = 2 sigmoid(2x) - 1.
#pragma once

namespace qnn {

double plan_sigmoid(double x);
double plan_tanh(double x);

// Worst-case |plan_sigmoid(x) - sigmoid(x)| (at the |x| = 1 breakpoint;
// used by tests and by the NFU simulator's error budget).
inline constexpr double kPlanSigmoidMaxError = 0.01895;

}  // namespace qnn
