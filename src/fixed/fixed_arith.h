// Bit-true integer fixed-point arithmetic.
//
// This is the integer-domain reference the hardware would actually
// execute. The training/inference framework computes on the float grid
// (fake quantization); these routines exist so tests can prove the float
// grid and the integer semantics agree exactly, and so the MAC datapath
// of the accelerator model has a concrete functional counterpart.
#pragma once

#include <cstdint>

#include "fixed/fixed_format.h"

namespace qnn {

// A raw fixed-point value tagged with its format.
struct FixedValue {
  std::int64_t raw = 0;
  FixedPointFormat format;

  double value() const { return format.from_raw(raw); }
};

// Encodes a real number into `format`.
FixedValue fixed_encode(double v, const FixedPointFormat& format);

// Saturating addition of two values in the SAME format.
FixedValue fixed_add(const FixedValue& a, const FixedValue& b);

// Exact product: multiplying Qa (fa frac bits) by Qb (fb frac bits) gives
// a wide product with fa+fb frac bits; we return it in an output format
// via rounding + saturation (the hardware's post-multiply requantize).
FixedValue fixed_mul(const FixedValue& a, const FixedValue& b,
                     const FixedPointFormat& out_format);

// Multiply-accumulate into a wide 64-bit accumulator holding
// (fa + fb) fractional bits — models the adder-tree accumulator of the
// NFU, which is wide enough never to overflow for our layer sizes.
struct FixedAccumulator {
  std::int64_t raw = 0;
  int frac_bits = 0;

  double value() const;
};

FixedAccumulator make_accumulator(const FixedPointFormat& weight_format,
                                  const FixedPointFormat& data_format);

void fixed_mac(FixedAccumulator& acc, const FixedValue& weight,
               const FixedValue& data);

// Requantizes the accumulator into an output format (round + saturate).
FixedValue fixed_requantize(const FixedAccumulator& acc,
                            const FixedPointFormat& out_format);

// Moves a raw word between fractional-bit positions, rounding half away
// from zero when narrowing (the convention of FixedPointFormat). Exposed
// for the integer inference path (hw/nfu_sim).
std::int64_t shift_raw_rounded(std::int64_t raw, int from_frac,
                               int to_frac);

}  // namespace qnn
