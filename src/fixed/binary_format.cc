#include "fixed/binary_format.h"

#include <cmath>

namespace qnn {

double BinaryFormat::scale_for(std::span<const float> weights) const {
  if (mode_ == BinaryScaleMode::kPlusMinusOne) return 1.0;
  if (weights.empty()) return 1.0;
  double s = 0.0;
  for (float w : weights) s += std::fabs(w);
  s /= static_cast<double>(weights.size());
  return s > 0.0 ? s : 1.0;
}

std::string BinaryFormat::to_string() const {
  return mode_ == BinaryScaleMode::kPlusMinusOne ? "binary[±1]"
                                                 : "binary[±mean|w|]";
}

}  // namespace qnn
