#include "fixed/fixed_arith.h"

#include <cmath>

namespace qnn {
namespace {

std::int64_t saturate(std::int64_t raw, const FixedPointFormat& f) {
  if (raw < f.raw_min()) return f.raw_min();
  if (raw > f.raw_max()) return f.raw_max();
  return raw;
}

}  // namespace

std::int64_t shift_raw_rounded(std::int64_t raw, int from_frac,
                               int to_frac) {
  if (to_frac >= from_frac) {
    const int up = to_frac - from_frac;
    QNN_CHECK_MSG(up < 62, "fixed-point shift overflow");
    return raw << up;
  }
  const int down = from_frac - to_frac;
  QNN_CHECK_MSG(down < 62, "fixed-point shift underflow");
  const std::int64_t bias = std::int64_t{1} << (down - 1);
  // Round half away from zero to match FixedPointFormat::quantize.
  if (raw >= 0) return (raw + bias) >> down;
  return -((-raw + bias) >> down);
}

namespace {
// Keep the short internal name used throughout this file.
std::int64_t shift_raw(std::int64_t raw, int from_frac, int to_frac) {
  return shift_raw_rounded(raw, from_frac, to_frac);
}
}  // namespace

FixedValue fixed_encode(double v, const FixedPointFormat& format) {
  return FixedValue{format.to_raw(v), format};
}

FixedValue fixed_add(const FixedValue& a, const FixedValue& b) {
  QNN_CHECK(a.format == b.format);
  return FixedValue{saturate(a.raw + b.raw, a.format), a.format};
}

FixedValue fixed_mul(const FixedValue& a, const FixedValue& b,
                     const FixedPointFormat& out_format) {
  const std::int64_t wide = a.raw * b.raw;  // fits: 32b x 32b in 64b
  const int wide_frac = a.format.frac_bits() + b.format.frac_bits();
  const std::int64_t shifted =
      shift_raw(wide, wide_frac, out_format.frac_bits());
  return FixedValue{saturate(shifted, out_format), out_format};
}

double FixedAccumulator::value() const {
  return static_cast<double>(raw) * std::ldexp(1.0, -frac_bits);
}

FixedAccumulator make_accumulator(const FixedPointFormat& weight_format,
                                  const FixedPointFormat& data_format) {
  return FixedAccumulator{
      0, weight_format.frac_bits() + data_format.frac_bits()};
}

void fixed_mac(FixedAccumulator& acc, const FixedValue& weight,
               const FixedValue& data) {
  QNN_DCHECK(weight.format.frac_bits() + data.format.frac_bits() ==
             acc.frac_bits);
  acc.raw += weight.raw * data.raw;
}

FixedValue fixed_requantize(const FixedAccumulator& acc,
                            const FixedPointFormat& out_format) {
  const std::int64_t shifted =
      shift_raw(acc.raw, acc.frac_bits, out_format.frac_bits());
  return FixedValue{saturate(shifted, out_format), out_format};
}

}  // namespace qnn
