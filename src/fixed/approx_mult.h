// Approximate integer multipliers — the approximate-computing context
// the paper's introduction places itself in (Kung [13], Venkataramani
// [23]). Three classic designs over two's-complement operands:
//
//  * kExact      — reference array multiplier.
//  * kMitchell   — Mitchell's logarithmic multiplier: a*b ≈ 2^(log2 a +
//    log2 b) with linear mantissa approximation; error ≤ ~11%, area
//    roughly linear in width (no partial-product array).
//  * kTruncated  — array multiplier with the k least-significant
//    partial-product columns removed; unbiased-ish small error, area
//    shrinks by the truncated triangle.
//
// bench/approx_arithmetic evaluates these in the integer inference path
// and prices them with the hardware model — quantifying the paper's
// §I claim that buffer-dominated designs gain little from arithmetic
// approximation compared to precision scaling.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace qnn {

enum class ApproxMultKind {
  kExact,
  kMitchell,
  kTruncated,
};

struct ApproxMultSpec {
  ApproxMultKind kind = ApproxMultKind::kExact;
  // kTruncated: number of low partial-product columns dropped.
  int truncated_columns = 0;

  std::string to_string() const;
};

// Multiplies two (signed) fixed-point raw words under the spec.
std::int64_t approx_multiply(std::int64_t a, std::int64_t b,
                             const ApproxMultSpec& spec);

// Functor form for hot loops.
using MultiplyFn = std::function<std::int64_t(std::int64_t, std::int64_t)>;
MultiplyFn make_multiplier(const ApproxMultSpec& spec);

// Mean relative error of the approximation over a random operand sweep
// (diagnostic; exact multiplier returns 0).
double mean_relative_error(const ApproxMultSpec& spec, int bits,
                           int samples = 4096, std::uint64_t seed = 1);

}  // namespace qnn
