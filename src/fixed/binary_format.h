// Binary (1-bit) weight quantization (paper §IV-A4, after BinaryConnect).
//
// Weights become sign(w) * scale. The paper uses ±1 (scale = 1). Because
// our networks have no batch normalization, we also support a per-tensor
// positive scale (the mean absolute weight, as in XNOR-Net); for
// ReLU networks a positive per-layer scale commutes with the nonlinearity
// and amounts to a logit temperature, so the hardware still stores one
// bit per weight — the scale folds into the accumulator requantization
// shift. DESIGN.md §5 documents this substitution.
#pragma once

#include <span>
#include <string>

namespace qnn {

enum class BinaryScaleMode {
  kPlusMinusOne,   // strict ±1 (BinaryConnect)
  kMeanAbs,        // ±mean(|w|) per tensor (XNOR-Net style)
};

class BinaryFormat {
 public:
  explicit BinaryFormat(BinaryScaleMode mode = BinaryScaleMode::kMeanAbs)
      : mode_(mode) {}

  BinaryScaleMode mode() const { return mode_; }

  // Per-tensor scale for the given weights: 1.0 for kPlusMinusOne, the
  // mean absolute value for kMeanAbs (1.0 if the tensor is all zeros).
  double scale_for(std::span<const float> weights) const;

  // Quantizes one value given a precomputed scale. sign(0) is +1 —
  // a 1-bit format has no zero.
  static double quantize(double v, double scale) {
    return v < 0 ? -scale : scale;
  }

  std::string to_string() const;

 private:
  BinaryScaleMode mode_;
};

}  // namespace qnn
