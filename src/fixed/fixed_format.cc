#include "fixed/fixed_format.h"

#include <cmath>
#include <random>
#include <sstream>

namespace qnn {
namespace {

std::mt19937_64& stochastic_engine() {
  thread_local std::mt19937_64 engine{0x5eed5eedull};
  return engine;
}

}  // namespace

void seed_stochastic_rounding(std::uint64_t seed) {
  stochastic_engine().seed(seed);
}

double round_with_mode(double v, Rounding mode) {
  switch (mode) {
    case Rounding::kNearest:
      return std::round(v);  // half away from zero
    case Rounding::kNearestEven: {
      const double r = std::nearbyint(v);  // assumes default FE_TONEAREST
      return r;
    }
    case Rounding::kFloor:
      return std::floor(v);
    case Rounding::kStochastic: {
      const double lo = std::floor(v);
      const double frac = v - lo;
      const double u = std::uniform_real_distribution<double>(0.0, 1.0)(
          stochastic_engine());
      return u < frac ? lo + 1.0 : lo;
    }
  }
  return std::round(v);
}

FixedPointFormat::FixedPointFormat(int total_bits, int frac_bits,
                                   Rounding rounding)
    : total_bits_(total_bits),
      frac_bits_(frac_bits),
      rounding_(rounding),
      step_(std::ldexp(1.0, -frac_bits)),
      raw_min_(-(std::int64_t{1} << (total_bits - 1))),
      raw_max_((std::int64_t{1} << (total_bits - 1)) - 1) {
  QNN_CHECK_MSG(total_bits >= 2 && total_bits <= 32,
                "total_bits " << total_bits << " out of [2,32]");
}

std::int64_t FixedPointFormat::to_raw(double v) const {
  if (std::isnan(v)) return 0;
  const double scaled = v / step_;
  double r = round_with_mode(scaled, rounding_);
  if (r < static_cast<double>(raw_min_)) return raw_min_;
  if (r > static_cast<double>(raw_max_)) return raw_max_;
  return static_cast<std::int64_t>(r);
}

double FixedPointFormat::from_raw(std::int64_t raw) const {
  QNN_DCHECK(raw >= raw_min_ && raw <= raw_max_);
  return static_cast<double>(raw) * step_;
}

double FixedPointFormat::quantize(double v) const {
  return from_raw(to_raw(v));
}

bool FixedPointFormat::representable(double v) const {
  if (std::isnan(v)) return false;
  const double scaled = v / step_;
  if (scaled < static_cast<double>(raw_min_) ||
      scaled > static_cast<double>(raw_max_))
    return false;
  return scaled == std::floor(scaled);
}

FixedPointFormat FixedPointFormat::for_range(int total_bits, double max_abs,
                                             Rounding rounding) {
  // Need integer_bits >= ceil(log2(max_abs)) so that +max_abs does not
  // saturate (the asymmetric negative end gives one extra value of
  // headroom, which we conservatively ignore).
  int int_bits;
  if (max_abs <= 0.0 || !std::isfinite(max_abs)) {
    int_bits = 0;
  } else {
    int_bits = static_cast<int>(std::ceil(std::log2(max_abs)));
    // log2 of an exact power of two must still fit: 2^int_bits > max is
    // needed only strictly for the max positive code; allow equality via
    // a small epsilon nudge.
    while (std::ldexp(1.0, int_bits) < max_abs) ++int_bits;
  }
  const int frac = total_bits - 1 - int_bits;
  return FixedPointFormat(total_bits, frac, rounding);
}

std::string FixedPointFormat::to_string() const {
  std::ostringstream os;
  os << 'Q' << integer_bits() << '.' << frac_bits_ << " (" << total_bits_
     << "b)";
  return os.str();
}

}  // namespace qnn
