#include "fixed/plan_sigmoid.h"

#include <cmath>

namespace qnn {

double plan_sigmoid(double x) {
  const double a = std::fabs(x);
  double y;
  if (a >= 5.0) y = 1.0;
  else if (a >= 2.375) y = 0.03125 * a + 0.84375;
  else if (a >= 1.0) y = 0.125 * a + 0.625;
  else y = 0.25 * a + 0.5;
  return x >= 0 ? y : 1.0 - y;
}

double plan_tanh(double x) { return 2.0 * plan_sigmoid(2.0 * x) - 1.0; }

}  // namespace qnn
