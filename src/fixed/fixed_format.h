// Bit-accurate signed fixed-point formats (Q-notation).
//
// A FixedPointFormat describes the value grid of a two's-complement
// fixed-point number with `total_bits` bits of which `frac_bits` sit to
// the right of the radix point:
//
//   representable values = { raw * 2^-frac_bits :
//                            raw in [-2^(total_bits-1), 2^(total_bits-1)-1] }
//
// frac_bits may be negative (grid coarser than 1) or >= total_bits (all-
// fractional sub-unit ranges); this is exactly the freedom the paper (and
// Ristretto) exploit by letting weights and data use different radix-point
// locations.
//
// quantize() maps any real value onto this grid with a selectable rounding
// mode and saturation — the float result is *bit-exact* w.r.t. the integer
// encode/decode pair (validated by property tests against fixed_arith).
#pragma once

#include <cstdint>
#include <string>

#include "util/check.h"

namespace qnn {

enum class Rounding {
  kNearest,   // round half away from zero (Ristretto's default)
  kNearestEven,
  kFloor,      // toward negative infinity (truncation of the raw value)
  kStochastic, // probability-proportional rounding (Gupta et al. [8]):
               // round up with probability equal to the fractional part,
               // making the rounding unbiased in expectation
};

// Re-seeds the thread-local generator behind Rounding::kStochastic so
// experiments remain reproducible.
void seed_stochastic_rounding(std::uint64_t seed);

class FixedPointFormat {
 public:
  // total_bits in [2, 32]; frac_bits unrestricted (see header comment).
  FixedPointFormat(int total_bits, int frac_bits,
                   Rounding rounding = Rounding::kNearest);

  int total_bits() const { return total_bits_; }
  int frac_bits() const { return frac_bits_; }
  // Bits to the left of the radix point, excluding the sign bit.
  int integer_bits() const { return total_bits_ - 1 - frac_bits_; }
  Rounding rounding() const { return rounding_; }

  // Grid spacing 2^-frac_bits.
  double step() const { return step_; }

  // Most negative / most positive representable values.
  double min_value() const { return static_cast<double>(raw_min_) * step_; }
  double max_value() const { return static_cast<double>(raw_max_) * step_; }

  std::int64_t raw_min() const { return raw_min_; }
  std::int64_t raw_max() const { return raw_max_; }

  // Nearest on-grid value with saturation. NaN maps to 0.
  double quantize(double v) const;
  float quantize(float v) const {
    return static_cast<float>(quantize(static_cast<double>(v)));
  }

  // Integer encode (with rounding + saturation) and exact decode.
  std::int64_t to_raw(double v) const;
  double from_raw(std::int64_t raw) const;

  // True if v lies exactly on the representable grid.
  bool representable(double v) const;

  // Picks frac_bits so that `max_abs` fits without saturation in
  // `total_bits` bits while maximizing resolution — the Ristretto rule:
  //   integer_bits = ceil(log2(max_abs)) (at least enough to hold max_abs)
  // Returns the resulting format. max_abs <= 0 yields maximal fraction.
  static FixedPointFormat for_range(int total_bits, double max_abs,
                                    Rounding rounding = Rounding::kNearest);

  // "Q4.11 (16b)" style description.
  std::string to_string() const;

  bool operator==(const FixedPointFormat& o) const {
    return total_bits_ == o.total_bits_ && frac_bits_ == o.frac_bits_ &&
           rounding_ == o.rounding_;
  }

 private:
  int total_bits_;
  int frac_bits_;
  Rounding rounding_;
  double step_;
  std::int64_t raw_min_;
  std::int64_t raw_max_;
};

// Applies a rounding mode to a real number, returning an integral double.
// Exposed for reuse by the power-of-two quantizer and for direct testing.
double round_with_mode(double v, Rounding mode);

}  // namespace qnn
