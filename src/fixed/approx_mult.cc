#include "fixed/approx_mult.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace qnn {
namespace {

int floor_log2(std::uint64_t v) {
  QNN_DCHECK(v > 0);
  return 63 - __builtin_clzll(v);
}

// Mitchell 1962: for a = 2^ka (1 + fa), b = 2^kb (1 + fb) with
// f in [0,1): log2(a) ≈ ka + fa, so
//   a*b ≈ 2^(ka+kb) * (1 + fa + fb)            if fa + fb < 1
//       ≈ 2^(ka+kb+1) * (fa + fb)              otherwise
// computed here on integer mantissas without any multiplication.
std::uint64_t mitchell_magnitude(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  const int ka = floor_log2(a);
  const int kb = floor_log2(b);
  // Fixed-point mantissa fractions with 32 fractional bits.
  const std::uint64_t fa =
      ka == 0 ? 0 : (a - (std::uint64_t{1} << ka)) << (32 - ka);
  const std::uint64_t fb =
      kb == 0 ? 0 : (b - (std::uint64_t{1} << kb)) << (32 - kb);
  const std::uint64_t fsum = fa + fb;  // < 2^33
  const int k = ka + kb;
  if (fsum < (std::uint64_t{1} << 32)) {
    // antilog: 2^k * (1 + fsum)
    const std::uint64_t mant = (std::uint64_t{1} << 32) + fsum;
    return k >= 32 ? mant << (k - 32) : mant >> (32 - k);
  }
  // carry into the characteristic: 2^(k+1) * (1 + (fsum - 1))
  //                              = 2^(k+1) * fsum
  return k + 1 >= 32 ? fsum << (k + 1 - 32) : fsum >> (32 - (k + 1));
}

// Truncated array multiplier: discard the k least-significant columns
// of the partial-product array, i.e. compute (a * (b >> s)) pieces.
// Model: zero out the low k bits of the exact product and add half of
// the dropped range as compensation (the usual constant-correction
// truncation scheme).
std::uint64_t truncated_magnitude(std::uint64_t a, std::uint64_t b,
                                  int columns) {
  const std::uint64_t exact = a * b;
  if (columns <= 0) return exact;
  QNN_DCHECK(columns < 62);
  const std::uint64_t mask = (std::uint64_t{1} << columns) - 1;
  const std::uint64_t compensation = std::uint64_t{1} << (columns - 1);
  std::uint64_t t = exact & ~mask;
  if (t != 0 || exact > mask) t += compensation;
  return t;
}

}  // namespace

std::string ApproxMultSpec::to_string() const {
  switch (kind) {
    case ApproxMultKind::kExact: return "exact";
    case ApproxMultKind::kMitchell: return "mitchell";
    case ApproxMultKind::kTruncated:
      return "truncated(" + std::to_string(truncated_columns) + ")";
  }
  return "?";
}

std::int64_t approx_multiply(std::int64_t a, std::int64_t b,
                             const ApproxMultSpec& spec) {
  if (spec.kind == ApproxMultKind::kExact) return a * b;
  const bool negative = (a < 0) != (b < 0);
  const std::uint64_t ma = static_cast<std::uint64_t>(a < 0 ? -a : a);
  const std::uint64_t mb = static_cast<std::uint64_t>(b < 0 ? -b : b);
  std::uint64_t m = 0;
  switch (spec.kind) {
    case ApproxMultKind::kMitchell:
      m = mitchell_magnitude(ma, mb);
      break;
    case ApproxMultKind::kTruncated:
      m = truncated_magnitude(ma, mb, spec.truncated_columns);
      break;
    case ApproxMultKind::kExact:
      break;  // handled above
  }
  const auto sm = static_cast<std::int64_t>(m);
  return negative ? -sm : sm;
}

MultiplyFn make_multiplier(const ApproxMultSpec& spec) {
  switch (spec.kind) {
    case ApproxMultKind::kExact:
      return [](std::int64_t a, std::int64_t b) { return a * b; };
    case ApproxMultKind::kMitchell:
      return [](std::int64_t a, std::int64_t b) {
        return approx_multiply(a, b,
                               {ApproxMultKind::kMitchell, 0});
      };
    case ApproxMultKind::kTruncated: {
      const int cols = spec.truncated_columns;
      return [cols](std::int64_t a, std::int64_t b) {
        return approx_multiply(a, b,
                               {ApproxMultKind::kTruncated, cols});
      };
    }
  }
  return nullptr;
}

double mean_relative_error(const ApproxMultSpec& spec, int bits,
                           int samples, std::uint64_t seed) {
  QNN_CHECK(bits >= 2 && bits <= 24);
  Rng rng(seed);
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  double total = 0.0;
  int counted = 0;
  for (int i = 0; i < samples; ++i) {
    const std::int64_t a = rng.uniform_int(static_cast<int>(lo),
                                           static_cast<int>(hi));
    const std::int64_t b = rng.uniform_int(static_cast<int>(lo),
                                           static_cast<int>(hi));
    const std::int64_t exact = a * b;
    if (exact == 0) continue;
    const std::int64_t approx = approx_multiply(a, b, spec);
    total += std::fabs(static_cast<double>(approx - exact)) /
             std::fabs(static_cast<double>(exact));
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

}  // namespace qnn
