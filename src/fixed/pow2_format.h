// Power-of-two weight quantization (paper §IV-A3, after Lin et al.).
//
// Weights are restricted to ±2^e (plus exact zero), so every multiply in
// the accelerator's weight blocks becomes a barrel shift and a
// conditional negate. The paper's "(6,16)" point encodes weights in
// 6 bits: 1 sign bit + 5 exponent-code bits, with one exponent code
// reserved for zero, leaving 31 usable exponents [exp_min, exp_max].
#pragma once

#include <cstdint>
#include <string>

#include "util/check.h"

namespace qnn {

class Pow2Format {
 public:
  // total_bits >= 2: 1 sign bit + (total_bits-1) exponent-code bits.
  // exp_max is the largest representable exponent; the usable range is
  // [exp_max - num_exponents() + 1, exp_max].
  Pow2Format(int total_bits, int exp_max);

  int total_bits() const { return total_bits_; }
  int exp_max() const { return exp_max_; }
  int exp_min() const { return exp_max_ - num_exponents() + 1; }
  // 2^(total_bits-1) codes minus the reserved zero code.
  int num_exponents() const { return (1 << (total_bits_ - 1)) - 1; }

  double max_value() const;  // +2^exp_max
  double min_positive() const;  // +2^exp_min

  // Nearest representable value: 0, or sign(v) * 2^clamp(round(log2|v|)).
  // Magnitudes below the geometric midpoint between 0 and 2^exp_min
  // quantize to exact zero. The exponent is chosen to minimize absolute
  // error (round-to-nearest in the log domain picks the multiplicative
  // midpoint; we use the arithmetic midpoint to truly minimize |error|).
  double quantize(double v) const;
  float quantize(float v) const {
    return static_cast<float>(quantize(static_cast<double>(v)));
  }

  // Raw code: bit (total_bits-1) = sign, low bits = exponent code where
  // 0 encodes value zero and k>0 encodes exponent exp_min + (k-1).
  std::int64_t to_raw(double v) const;
  double from_raw(std::int64_t raw) const;

  // Picks exp_max from an observed max-abs so the largest weight is
  // representable: exp_max = ceil(log2(max_abs)).
  static Pow2Format for_range(int total_bits, double max_abs);

  std::string to_string() const;

 private:
  int total_bits_;
  int exp_max_;
};

}  // namespace qnn
