#include "fixed/pow2_format.h"

#include <cmath>
#include <sstream>

namespace qnn {

Pow2Format::Pow2Format(int total_bits, int exp_max)
    : total_bits_(total_bits), exp_max_(exp_max) {
  QNN_CHECK_MSG(total_bits >= 2 && total_bits <= 16,
                "pow2 total_bits " << total_bits << " out of [2,16]");
}

double Pow2Format::max_value() const { return std::ldexp(1.0, exp_max_); }

double Pow2Format::min_positive() const { return std::ldexp(1.0, exp_min()); }

double Pow2Format::quantize(double v) const {
  if (std::isnan(v) || v == 0.0) return 0.0;
  const double mag = std::fabs(v);
  // Zero threshold: arithmetic midpoint between 0 and the smallest
  // positive representable value.
  if (mag < 0.5 * min_positive()) return 0.0;
  int e = static_cast<int>(std::floor(std::log2(mag)));
  // Candidates 2^e and 2^(e+1) bracket mag; pick by arithmetic midpoint
  // 1.5 * 2^e which minimizes absolute error.
  if (mag >= 1.5 * std::ldexp(1.0, e)) ++e;
  if (e < exp_min()) e = exp_min();
  if (e > exp_max_) e = exp_max_;
  const double q = std::ldexp(1.0, e);
  return v > 0 ? q : -q;
}

std::int64_t Pow2Format::to_raw(double v) const {
  const double q = quantize(v);
  if (q == 0.0) return 0;
  const int e = static_cast<int>(std::lround(std::log2(std::fabs(q))));
  const std::int64_t code = e - exp_min() + 1;
  const std::int64_t sign_bit =
      (q < 0) ? (std::int64_t{1} << (total_bits_ - 1)) : 0;
  return sign_bit | code;
}

double Pow2Format::from_raw(std::int64_t raw) const {
  const std::int64_t sign_mask = std::int64_t{1} << (total_bits_ - 1);
  const bool negative = (raw & sign_mask) != 0;
  const std::int64_t code = raw & (sign_mask - 1);
  if (code == 0) return 0.0;
  const double mag = std::ldexp(1.0, exp_min() + static_cast<int>(code) - 1);
  return negative ? -mag : mag;
}

Pow2Format Pow2Format::for_range(int total_bits, double max_abs) {
  int e;
  if (max_abs <= 0.0 || !std::isfinite(max_abs)) {
    e = 0;
  } else {
    e = static_cast<int>(std::ceil(std::log2(max_abs)));
  }
  return Pow2Format(total_bits, e);
}

std::string Pow2Format::to_string() const {
  std::ostringstream os;
  os << "pow2[" << total_bits_ << "b, 2^" << exp_min() << "..2^" << exp_max_
     << "]";
  return os.str();
}

}  // namespace qnn
