// Crash-safe sweep checkpoints.
//
// File layout: one JSON document, a newline, and a trailing line
// "crc32 <8 hex digits>" covering every byte up to and including that
// newline. Files are written via write_file_atomic (temp + rename), so a
// crash at any instant leaves either the previous checkpoint or the new
// one — never a torn file. The loader treats anything invalid (missing,
// truncated, CRC mismatch, JSON error, wrong version, foreign
// fingerprint) as "no checkpoint" so a damaged file degrades to a fresh
// run instead of an abort.
//
// The fingerprint is a CRC32 over a canonical dump of everything that
// affects sweep numerics (spec, precision list, reference energy, fault
// campaign spec). Resuming with any of those changed starts over.
//
// Alongside the JSON, the sweep stores the trained float baseline in
// "<path>.weights" (nn::save_params format, itself CRC-protected); the
// flag `float_trained` records that the snapshot is valid. Because every
// per-point computation depends only on those float weights and on
// per-point seeds, a resumed sweep reproduces the uninterrupted run
// byte-for-byte (tested in tests/checkpoint_test.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "util/json.h"

namespace qnn::exp {

// Version 2 added the per-campaign protection policy and counters.
// Older checkpoints fail the version check and degrade to a fresh run
// (the documented behavior for any unusable checkpoint).
inline constexpr int kCheckpointVersion = 2;

struct SweepCheckpoint {
  std::uint32_t fingerprint = 0;
  std::string network;
  std::string dataset;
  bool float_trained = false;  // "<path>.weights" holds the baseline
  double float_accuracy = 0.0;
  double float_energy_uj = 0.0;
  std::vector<PrecisionResult> points;  // completed points, in order
};

std::uint32_t sweep_fingerprint(
    const ExperimentSpec& spec,
    const std::vector<quant::PrecisionConfig>& precisions,
    double reference_energy_uj, const FaultCampaignSpec& faults);

// Atomic save (JSON + CRC trailer).
void save_sweep_checkpoint(const std::string& path,
                           const SweepCheckpoint& checkpoint);

// Loads `path` into *out, reattaching each completed point's
// PrecisionConfig from the prefix of `precisions` (checkpoints store
// only precision ids). Returns false — leaving *out untouched — when the
// file is missing, corrupt, a different version, carries a fingerprint
// other than `expected_fingerprint`, or its points do not match a prefix
// of `precisions`.
bool load_sweep_checkpoint(
    const std::string& path, std::uint32_t expected_fingerprint,
    const std::vector<quant::PrecisionConfig>& precisions,
    SweepCheckpoint* out);

// JSON (de)serialization of one point; exposed for tests. Deserialization
// reattaches `precision` (the checkpoint stores only its id, which is
// verified) because PrecisionConfig itself is derived from the caller's
// precision list on resume.
json::Value precision_result_to_json(const PrecisionResult& point);
PrecisionResult precision_result_from_json(
    const json::Value& v, const quant::PrecisionConfig& precision);

}  // namespace qnn::exp
