#include "exp/checkpoint.h"

#include <iomanip>
#include <limits>
#include <sstream>

#include "obs/trace.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/fileio.h"
#include "util/logging.h"

namespace qnn::exp {
namespace {

// Canonical text fragment for a double: max precision, locale-free.
void put(std::ostream& os, double v) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v
     << '|';
}

void put(std::ostream& os, const std::string& s) { os << s << '|'; }

void put_train(std::ostream& os, const nn::TrainConfig& t) {
  os << t.epochs << '|' << t.batch_size << '|' << t.shuffle_seed << '|';
  put(os, t.sgd.learning_rate);
  put(os, t.sgd.momentum);
  put(os, t.sgd.weight_decay);
  put(os, t.sgd.gamma);
  os << t.sgd.step_epochs << '|';
  put(os, t.sgd.clip_grad_norm);
  os << t.augment.mirror << '|' << t.augment.pad_crop << '|'
     << t.augment.seed << '|';
}

void put_precision(std::ostream& os, const quant::PrecisionConfig& p) {
  os << p.id() << '|' << static_cast<int>(p.radix_policy) << '|'
     << static_cast<int>(p.calibration) << '|'
     << static_cast<int>(p.binary_scale) << '|'
     << static_cast<int>(p.rounding) << '|' << p.gradient_bits << '|';
}

const char kCrcPrefix[] = "crc32 ";

}  // namespace

std::uint32_t sweep_fingerprint(
    const ExperimentSpec& spec,
    const std::vector<quant::PrecisionConfig>& precisions,
    double reference_energy_uj, const FaultCampaignSpec& faults) {
  std::ostringstream os;
  put(os, spec.network);
  put(os, spec.dataset);
  put(os, spec.channel_scale);
  os << spec.data.num_train << '|' << spec.data.num_test << '|'
     << spec.data.seed << '|';
  put(os, spec.data.noise_scale);
  put_train(os, spec.float_train);
  put_train(os, spec.qat_train);
  os << static_cast<int>(spec.radix_policy) << '|' << spec.seed << '|';
  put(os, reference_energy_uj);
  os << faults.trials << '|' << faults.domains << '|' << faults.seed << '|'
     << faults.trial_retries << '|';
  for (double rate : faults.bit_error_rates) put(os, rate);
  // Protection shape: the policy list and every knob that changes
  // campaign numerics. Changing any of these must start a fresh sweep.
  for (const protect::ProtectionPolicy p : faults.policies)
    os << static_cast<int>(p) << '|';
  os << '@' << faults.protection.max_layer_retries << '|';
  put(os, faults.protection.envelope_margin);
  os << faults.protection.abft << '|'
     << faults.protection.always_vote_data_bits << '|';
  put(os, faults.protection.abft_options.tolerance_scale);
  os << faults.protection.abft_options.max_reexecutions << '|';
  os << '#';
  for (const quant::PrecisionConfig& p : precisions) put_precision(os, p);
  const std::string canon = os.str();
  return crc32(canon);
}

json::Value precision_result_to_json(const PrecisionResult& point) {
  json::Value v = json::Value::object();
  v.set("precision", point.precision.id());
  v.set("accuracy", point.accuracy);
  v.set("converged", point.converged);
  v.set("energy_uj", point.energy_uj);
  v.set("energy_saving_percent", point.energy_saving_percent);
  v.set("area_mm2", point.area_mm2);
  v.set("power_mw", point.power_mw);
  v.set("param_kb", point.param_kb);
  v.set("cycles", point.cycles);
  json::Value guards = json::Value::object();
  guards.set("values", point.guards.values);
  guards.set("saturated", point.guards.saturated);
  guards.set("nan", point.guards.nan);
  guards.set("inf", point.guards.inf);
  v.set("guards", std::move(guards));
  v.set("attempts", point.attempts);
  v.set("degraded", point.degraded);
  json::Value campaigns = json::Value::array();
  for (const FaultPointResult& c : point.fault_campaigns) {
    json::Value cv = json::Value::object();
    cv.set("bit_error_rate", c.bit_error_rate);
    cv.set("policy", std::string(protect::policy_name(c.policy)));
    cv.set("trials", c.trials);
    cv.set("failed_trials", c.failed_trials);
    cv.set("mean_accuracy", c.mean_accuracy);
    cv.set("min_accuracy", c.min_accuracy);
    cv.set("total_flips", c.total_flips);
    json::Value prot = json::Value::object();
    prot.set("values", c.protection.values);
    prot.set("out_of_envelope", c.protection.out_of_envelope);
    prot.set("clamped", c.protection.clamped);
    prot.set("layer_retries", c.protection.layer_retries);
    prot.set("degraded_forwards", c.protection.degraded_forwards);
    prot.set("abft_blocks", c.protection.abft.blocks_checked);
    prot.set("abft_mismatches", c.protection.abft.mismatches);
    prot.set("abft_reexecutions", c.protection.abft.reexecutions);
    prot.set("abft_unrecovered", c.protection.abft.unrecovered);
    cv.set("protection", std::move(prot));
    campaigns.push_back(std::move(cv));
  }
  v.set("fault_campaigns", std::move(campaigns));
  return v;
}

PrecisionResult precision_result_from_json(
    const json::Value& v, const quant::PrecisionConfig& precision) {
  PrecisionResult point;
  QNN_CHECK_MSG(v.at("precision").as_string() == precision.id(),
                "checkpoint point is " << v.at("precision").as_string()
                                       << ", expected " << precision.id());
  point.precision = precision;
  point.accuracy = v.at("accuracy").as_double();
  point.converged = v.at("converged").as_bool();
  point.energy_uj = v.at("energy_uj").as_double();
  point.energy_saving_percent = v.at("energy_saving_percent").as_double();
  point.area_mm2 = v.at("area_mm2").as_double();
  point.power_mw = v.at("power_mw").as_double();
  point.param_kb = v.at("param_kb").as_double();
  point.cycles = v.at("cycles").as_int();
  const json::Value& guards = v.at("guards");
  point.guards.values = guards.at("values").as_int();
  point.guards.saturated = guards.at("saturated").as_int();
  point.guards.nan = guards.at("nan").as_int();
  point.guards.inf = guards.at("inf").as_int();
  point.attempts = static_cast<int>(v.at("attempts").as_int());
  point.degraded = v.at("degraded").as_bool();
  for (const json::Value& cv : v.at("fault_campaigns").items()) {
    FaultPointResult c;
    c.bit_error_rate = cv.at("bit_error_rate").as_double();
    c.policy = protect::policy_from_name(cv.at("policy").as_string());
    c.trials = static_cast<int>(cv.at("trials").as_int());
    c.failed_trials = static_cast<int>(cv.at("failed_trials").as_int());
    c.mean_accuracy = cv.at("mean_accuracy").as_double();
    c.min_accuracy = cv.at("min_accuracy").as_double();
    c.total_flips = cv.at("total_flips").as_int();
    const json::Value& prot = cv.at("protection");
    c.protection.values = prot.at("values").as_int();
    c.protection.out_of_envelope = prot.at("out_of_envelope").as_int();
    c.protection.clamped = prot.at("clamped").as_int();
    c.protection.layer_retries = prot.at("layer_retries").as_int();
    c.protection.degraded_forwards = prot.at("degraded_forwards").as_int();
    c.protection.abft.blocks_checked = prot.at("abft_blocks").as_int();
    c.protection.abft.mismatches = prot.at("abft_mismatches").as_int();
    c.protection.abft.reexecutions = prot.at("abft_reexecutions").as_int();
    c.protection.abft.unrecovered = prot.at("abft_unrecovered").as_int();
    point.fault_campaigns.push_back(c);
  }
  return point;
}

void save_sweep_checkpoint(const std::string& path,
                           const SweepCheckpoint& checkpoint) {
  QNN_SPAN_N("checkpoint_save", "exp",
             static_cast<std::int64_t>(checkpoint.points.size()));
  json::Value root = json::Value::object();
  root.set("version", kCheckpointVersion);
  root.set("fingerprint", static_cast<std::int64_t>(checkpoint.fingerprint));
  root.set("network", checkpoint.network);
  root.set("dataset", checkpoint.dataset);
  root.set("float_trained", checkpoint.float_trained);
  root.set("float_accuracy", checkpoint.float_accuracy);
  root.set("float_energy_uj", checkpoint.float_energy_uj);
  json::Value points = json::Value::array();
  for (const PrecisionResult& p : checkpoint.points)
    points.push_back(precision_result_to_json(p));
  root.set("points", std::move(points));

  std::string payload = root.dump();
  payload += '\n';
  std::ostringstream trailer;
  trailer << kCrcPrefix << std::hex << std::setw(8) << std::setfill('0')
          << crc32(payload) << '\n';
  write_file_atomic(path, payload + trailer.str());
}

bool load_sweep_checkpoint(
    const std::string& path, std::uint32_t expected_fingerprint,
    const std::vector<quant::PrecisionConfig>& precisions,
    SweepCheckpoint* out) {
  if (!file_exists(path)) return false;
  try {
    const std::string bytes = read_file(path);
    // Split off the trailer line: payload ends at the last '\n' before it.
    const std::size_t trailer_at = bytes.rfind(kCrcPrefix);
    QNN_CHECK_MSG(trailer_at != std::string::npos && trailer_at > 0 &&
                      bytes[trailer_at - 1] == '\n',
                  "checkpoint " << path << " has no CRC trailer");
    const std::string payload = bytes.substr(0, trailer_at);
    const std::string trailer = bytes.substr(trailer_at);
    std::uint32_t stored = 0;
    {
      std::istringstream ts(trailer.substr(sizeof(kCrcPrefix) - 1));
      ts >> std::hex >> stored;
      QNN_CHECK_MSG(!ts.fail(), "checkpoint " << path
                                              << " has a malformed CRC "
                                                 "trailer");
    }
    QNN_CHECK_MSG(crc32(payload) == stored,
                  "checkpoint " << path << " failed CRC validation "
                                << "(torn write or corruption)");

    const json::Value root = json::parse(payload, path);
    QNN_CHECK_MSG(root.at("version").as_int() == kCheckpointVersion,
                  "checkpoint " << path << " has unsupported version "
                                << root.at("version").as_int());
    SweepCheckpoint ck;
    ck.fingerprint =
        static_cast<std::uint32_t>(root.at("fingerprint").as_int());
    if (ck.fingerprint != expected_fingerprint) {
      QNN_LOG(Warn) << "checkpoint " << path
                    << " belongs to a different sweep (fingerprint "
                    << ck.fingerprint << " != " << expected_fingerprint
                    << "); starting fresh";
      return false;
    }
    ck.network = root.at("network").as_string();
    ck.dataset = root.at("dataset").as_string();
    ck.float_trained = root.at("float_trained").as_bool();
    ck.float_accuracy = root.at("float_accuracy").as_double();
    ck.float_energy_uj = root.at("float_energy_uj").as_double();
    const json::Value& points = root.at("points");
    QNN_CHECK_MSG(points.size() <= precisions.size(),
                  "checkpoint " << path << " has " << points.size()
                                << " points but the sweep only has "
                                << precisions.size());
    for (std::size_t i = 0; i < points.size(); ++i)
      ck.points.push_back(
          precision_result_from_json(points.at(i), precisions[i]));
    *out = std::move(ck);
    return true;
  } catch (const std::exception& e) {
    QNN_LOG(Warn) << "ignoring unusable checkpoint " << path << ": "
                  << e.what();
    return false;
  }
}

}  // namespace qnn::exp
