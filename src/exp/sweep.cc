#include "exp/sweep.h"

#include <cmath>
#include <mutex>

#include "exp/checkpoint.h"
#include "faults/campaign.h"
#include "faults/injector.h"
#include "fixed/fixed_format.h"
#include "nn/serialize.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/fileio.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace qnn::exp {

const PrecisionResult* SweepResult::find(
    const std::string& precision_id) const {
  for (const PrecisionResult& p : points)
    if (p.precision.id() == precision_id) return &p;
  return nullptr;
}

hw::ScheduleResult schedule_for(const nn::Network& net, const Shape& input,
                                const quant::PrecisionConfig& precision) {
  hw::AcceleratorConfig cfg;
  cfg.precision = precision;
  const hw::Accelerator acc(cfg);
  return hw::schedule_network(net.describe(input), acc);
}

double inference_energy_uj(const nn::Network& net, const Shape& input,
                           const quant::PrecisionConfig& precision) {
  hw::AcceleratorConfig cfg;
  cfg.precision = precision;
  const hw::Accelerator acc(cfg);
  return hw::schedule_network(net.describe(input), acc).energy_uj(acc);
}

namespace {

// Runs the fault campaigns of one precision point. `point_index` salts
// the per-rate seeds so every (point, rate) pair draws an independent,
// reproducible stream.
void run_point_campaigns(quant::QuantizedNetwork& qnet,
                         const data::Dataset& test,
                         const FaultCampaignSpec& spec,
                         const hw::Accelerator& acc,
                         std::size_t point_index, PrecisionResult& pr) {
  pr.fault_campaigns.clear();
  const std::vector<protect::ProtectionPolicy> policies =
      spec.effective_policies();
  for (std::size_t ri = 0; ri < spec.bit_error_rates.size(); ++ri) {
    for (const protect::ProtectionPolicy policy : policies) {
      faults::CampaignConfig cc;
      cc.trials = spec.trials;
      cc.bit_error_rate = spec.bit_error_rates[ri];
      cc.domains = spec.domains;
      cc.trial_retries = spec.trial_retries;
      cc.accumulator_bits = acc.accumulator_bits();
      // 2D mix: the former point_index * 797003 + ri linear combination
      // could collide campaign seeds across (point, rate) pairs. The
      // seed deliberately ignores the policy: every policy at this
      // (point, rate) replays the identical fault streams, so rows
      // differ only by the protection response.
      cc.seed = faults::derive_seed2(spec.seed, point_index, ri);
      cc.protection = spec.protection;
      cc.protection.policy = policy;
      const faults::CampaignResult r =
          faults::run_fault_campaign(qnet, test, cc);
      FaultPointResult out;
      out.bit_error_rate = cc.bit_error_rate;
      out.policy = policy;
      out.trials = r.trials;
      out.failed_trials = r.failed_trials;
      out.mean_accuracy = r.mean_accuracy;
      out.min_accuracy = r.min_accuracy;
      out.total_flips = r.total_flips;
      out.protection = r.protection;
      pr.fault_campaigns.push_back(out);
    }
  }
}

// One quantized precision point: fresh copy of the float weights, QAT
// fine-tune, clean evaluation with guard counters, optional fault
// campaigns. Throws on numerical failure; the caller owns retries.
void compute_quantized_point(const ExperimentSpec& spec,
                             const nn::ZooConfig& zc,
                             const nn::Network& float_net,
                             const data::Split& split,
                             const hw::Accelerator& acc,
                             const SweepOptions& options,
                             std::size_t point_index, int attempt,
                             PrecisionResult& pr) {
  auto net = nn::make_network(spec.network, zc);
  net->copy_params_from(float_net);
  quant::QuantizedNetwork qnet(*net, pr.precision);
  // Pin the (thread-local) stochastic-rounding stream to this point and
  // attempt so results cannot depend on which worker computes the point.
  seed_stochastic_rounding(faults::derive_seed2(
      spec.seed ^ 0x5eed5eedull, point_index,
      static_cast<std::uint64_t>(attempt)));
  quant::QatConfig qat;
  qat.train = spec.qat_train;
  // Retries nudge the shuffle schedule; attempt 0 is the canonical run,
  // so a resumed sweep replays the identical attempt ladder.
  qat.train.shuffle_seed += static_cast<std::uint64_t>(attempt);
  quant::qat_finetune(qnet, split.train, qat);
  qnet.reset_guards();
  const double acc_pct = nn::evaluate(qnet, split.test);
  QNN_CHECK_MSG(std::isfinite(acc_pct),
                "evaluation produced non-finite accuracy " << acc_pct);
  pr.accuracy = acc_pct;
  pr.guards = qnet.total_guards();
  if (options.faults.enabled())
    run_point_campaigns(qnet, split.test, options.faults, acc,
                        point_index, pr);
  qnet.restore_masters();
}

// Float baseline point: accuracy is already known; with campaigns
// enabled, wrap a disposable copy so injected faults cannot leak into
// the shared float weights.
void compute_float_point(const ExperimentSpec& spec, const nn::ZooConfig& zc,
                         const nn::Network& float_net,
                         const data::Split& split, const hw::Accelerator& acc,
                         const SweepOptions& options, std::size_t point_index,
                         double float_acc, PrecisionResult& pr) {
  pr.accuracy = float_acc;
  if (!options.faults.enabled()) return;
  auto net = nn::make_network(spec.network, zc);
  net->copy_params_from(float_net);
  quant::QuantizedNetwork qnet(*net, pr.precision);
  qnet.reset_guards();
  nn::evaluate(qnet, split.test);  // identical numerics; fills guards
  pr.guards = qnet.total_guards();
  run_point_campaigns(qnet, split.test, options.faults, acc, point_index,
                      pr);
  qnet.restore_masters();
}

}  // namespace

SweepResult run_precision_sweep(
    const ExperimentSpec& spec,
    const std::vector<quant::PrecisionConfig>& precisions,
    double reference_energy_uj, const SweepOptions& options) {
  const bool checkpointing = !options.checkpoint_path.empty();
  const std::uint32_t fingerprint = sweep_fingerprint(
      spec, precisions, reference_energy_uj, options.faults);
  const std::string weights_path = options.checkpoint_path + ".weights";

  // The sweep-wide radix policy overrides each point's; apply it up
  // front so resumed points carry the same effective config.
  std::vector<quant::PrecisionConfig> effective = precisions;
  for (quant::PrecisionConfig& p : effective)
    p.radix_policy = spec.radix_policy;

  SweepCheckpoint ck;
  ck.fingerprint = fingerprint;
  bool resumed =
      checkpointing &&
      load_sweep_checkpoint(options.checkpoint_path, fingerprint,
                            effective, &ck);

  const data::Split split = data::make_dataset(spec.dataset, spec.data);
  const Shape input = nn::input_shape_for(spec.network);

  nn::ZooConfig zc;
  zc.channel_scale = spec.channel_scale;
  zc.init_seed = spec.seed;

  // Train the full-precision reference once; every QAT run starts from
  // these weights (paper §IV-A: "initialize the parameters for lower
  // precision training from the floating point counterpart"). On resume
  // the trained baseline is reloaded from the checkpoint's snapshot.
  auto float_net = nn::make_network(spec.network, zc);
  double float_acc = 0.0;
  bool baseline_loaded = false;
  if (resumed && ck.float_trained) {
    try {
      nn::load_params(*float_net, weights_path);
      float_acc = ck.float_accuracy;
      baseline_loaded = true;
      QNN_LOG(Info) << "resumed sweep from " << options.checkpoint_path
                    << " with " << ck.points.size()
                    << " completed point(s)";
    } catch (const std::exception& e) {
      QNN_LOG(Warn) << "cannot reload float baseline " << weights_path
                    << " (" << e.what() << "); retraining from scratch";
      resumed = false;
      ck.points.clear();
      float_net = nn::make_network(spec.network, zc);
    }
  }
  if (!baseline_loaded) {
    nn::train(*float_net, split.train, spec.float_train);
    float_acc = nn::evaluate(*float_net, split.test);
  }

  SweepResult result;
  result.network = spec.network;
  result.dataset = spec.dataset;
  result.float_energy_uj =
      inference_energy_uj(*float_net, input, quant::float_config());
  const double reference = reference_energy_uj > 0 ? reference_energy_uj
                                                   : result.float_energy_uj;
  result.points = ck.points;

  ck.network = spec.network;
  ck.dataset = spec.dataset;
  ck.float_accuracy = float_acc;
  ck.float_energy_uj = result.float_energy_uj;
  if (checkpointing && !baseline_loaded) {
    nn::save_params(*float_net, weights_path);
    ck.float_trained = true;
    save_sweep_checkpoint(options.checkpoint_path, ck);
  }

  // Remaining points compute in parallel (each is independent given the
  // trained float baseline), but everything stateful — logging, appending
  // to result.points, checkpoint writes, the after_point hook — funnels
  // through a single ordered emitter: a finished point parks in
  // `pending` until every earlier point has been emitted. Checkpoint
  // bytes and resume behavior are therefore identical to the serial
  // sweep for every thread count.
  const std::size_t first = result.points.size();
  const std::size_t remaining = effective.size() - first;
  std::vector<PrecisionResult> pending(remaining);
  std::vector<char> ready(remaining, 0);
  std::mutex emit_m;
  std::size_t next_emit = 0;
  bool emit_aborted = false;

  parallel_run(static_cast<std::int64_t>(remaining), [&](std::int64_t pi) {
    const std::size_t k = first + static_cast<std::size_t>(pi);
    QNN_SPAN_N("sweep_point", "exp", static_cast<std::int64_t>(k));
    const quant::PrecisionConfig& precision = effective[k];
    PrecisionResult pr;
    pr.precision = precision;

    // Hardware metrics are training-independent (never retried).
    hw::AcceleratorConfig acfg;
    acfg.precision = precision;
    const hw::Accelerator acc(acfg);
    const auto sched = hw::schedule_network(float_net->describe(input), acc);
    pr.energy_uj = sched.energy_uj(acc);
    pr.cycles = sched.total_cycles;
    pr.energy_saving_percent = hw::saving_percent(reference, pr.energy_uj);
    pr.area_mm2 = acc.area_mm2();
    pr.power_mw = acc.power_mw();
    pr.param_kb =
        quant::memory_footprint(*float_net, input, precision).param_kb();

    bool done = false;
    for (int attempt = 0; attempt <= options.point_retries && !done;
         ++attempt) {
      try {
        if (precision.is_float()) {
          compute_float_point(spec, zc, *float_net, split, acc, options, k,
                              float_acc, pr);
        } else {
          compute_quantized_point(spec, zc, *float_net, split, acc,
                                  options, k, attempt, pr);
        }
        pr.attempts = attempt + 1;
        done = true;
      } catch (const std::exception& e) {
        QNN_LOG(Warn) << spec.network << '/' << spec.dataset << ' '
                      << precision.label() << " attempt " << attempt
                      << " failed: " << e.what();
      }
    }
    if (!done) {
      // Exhausted retries: keep the hardware metrics, mark the point
      // degraded instead of aborting the sweep.
      pr.accuracy = 0.0;
      pr.attempts = options.point_retries + 1;
      pr.degraded = true;
    }
    const double chance = 100.0 / split.test.num_classes;
    pr.converged =
        !pr.degraded && pr.accuracy >= kConvergenceFactor * chance;

    std::lock_guard<std::mutex> lock(emit_m);
    pending[static_cast<std::size_t>(pi)] = std::move(pr);
    ready[static_cast<std::size_t>(pi)] = 1;
    if (emit_aborted) return;  // an earlier emit already threw
    try {
      while (next_emit < remaining && ready[next_emit]) {
        PrecisionResult& epr = pending[next_emit];
        const std::size_t ek = first + next_emit;
        QNN_LOG(Info) << spec.network << '/' << spec.dataset << ' '
                      << epr.precision.label() << ": acc=" << epr.accuracy
                      << "% energy=" << epr.energy_uj << "uJ"
                      << (epr.converged ? "" : " [did not converge]")
                      << (epr.degraded ? " [degraded]" : "");
        result.points.push_back(std::move(epr));
        ++next_emit;
        if (checkpointing) {
          ck.points = result.points;
          save_sweep_checkpoint(options.checkpoint_path, ck);
        }
        if (options.after_point) options.after_point(ek);
      }
    } catch (...) {
      emit_aborted = true;
      throw;
    }
  });
  return result;
}

}  // namespace qnn::exp
