#include "exp/sweep.h"

#include "util/check.h"
#include "util/logging.h"

namespace qnn::exp {

const PrecisionResult* SweepResult::find(
    const std::string& precision_id) const {
  for (const PrecisionResult& p : points)
    if (p.precision.id() == precision_id) return &p;
  return nullptr;
}

hw::ScheduleResult schedule_for(const nn::Network& net, const Shape& input,
                                const quant::PrecisionConfig& precision) {
  hw::AcceleratorConfig cfg;
  cfg.precision = precision;
  const hw::Accelerator acc(cfg);
  return hw::schedule_network(net.describe(input), acc);
}

double inference_energy_uj(const nn::Network& net, const Shape& input,
                           const quant::PrecisionConfig& precision) {
  hw::AcceleratorConfig cfg;
  cfg.precision = precision;
  const hw::Accelerator acc(cfg);
  return hw::schedule_network(net.describe(input), acc).energy_uj(acc);
}

SweepResult run_precision_sweep(
    const ExperimentSpec& spec,
    const std::vector<quant::PrecisionConfig>& precisions,
    double reference_energy_uj) {
  const data::Split split = data::make_dataset(spec.dataset, spec.data);
  const Shape input = nn::input_shape_for(spec.network);

  nn::ZooConfig zc;
  zc.channel_scale = spec.channel_scale;
  zc.init_seed = spec.seed;

  // Train the full-precision reference once; every QAT run starts from
  // these weights (paper §IV-A: "initialize the parameters for lower
  // precision training from the floating point counterpart").
  auto float_net = nn::make_network(spec.network, zc);
  nn::train(*float_net, split.train, spec.float_train);
  const double float_acc = nn::evaluate(*float_net, split.test);

  SweepResult result;
  result.network = spec.network;
  result.dataset = spec.dataset;
  result.float_energy_uj =
      inference_energy_uj(*float_net, input, quant::float_config());
  const double reference = reference_energy_uj > 0 ? reference_energy_uj
                                                   : result.float_energy_uj;

  for (quant::PrecisionConfig precision : precisions) {
    precision.radix_policy = spec.radix_policy;
    PrecisionResult pr;
    pr.precision = precision;

    // Hardware metrics are training-independent.
    hw::AcceleratorConfig acfg;
    acfg.precision = precision;
    const hw::Accelerator acc(acfg);
    const auto sched = hw::schedule_network(float_net->describe(input), acc);
    pr.energy_uj = sched.energy_uj(acc);
    pr.cycles = sched.total_cycles;
    pr.energy_saving_percent = hw::saving_percent(reference, pr.energy_uj);
    pr.area_mm2 = acc.area_mm2();
    pr.power_mw = acc.power_mw();
    pr.param_kb =
        quant::memory_footprint(*float_net, input, precision).param_kb();

    if (precision.is_float()) {
      pr.accuracy = float_acc;
    } else {
      // Fresh structural copy initialized from the float weights, then
      // quantization-aware fine-tuning.
      auto net = nn::make_network(spec.network, zc);
      net->copy_params_from(*float_net);
      quant::QuantizedNetwork qnet(*net, precision);
      quant::QatConfig qat;
      qat.train = spec.qat_train;
      quant::qat_finetune(qnet, split.train, qat);
      pr.accuracy = nn::evaluate(qnet, split.test);
      qnet.restore_masters();
    }
    const double chance = 100.0 / split.test.num_classes;
    pr.converged = pr.accuracy >= kConvergenceFactor * chance;
    QNN_LOG(Info) << spec.network << '/' << spec.dataset << ' '
                  << precision.label() << ": acc=" << pr.accuracy
                  << "% energy=" << pr.energy_uj << "uJ"
                  << (pr.converged ? "" : " [did not converge]");
    result.points.push_back(std::move(pr));
  }
  return result;
}

}  // namespace qnn::exp
