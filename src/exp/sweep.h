// Experiment orchestration: the paper's end-to-end flow per design point
// (train float → QAT per precision → accuracy + hardware metrics), used
// by the Table IV / Table V / Fig. 4 benches and the examples.
#pragma once

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "hw/schedule.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "quant/memory.h"
#include "quant/qat.h"

namespace qnn::exp {

struct ExperimentSpec {
  std::string network = "lenet";  // zoo name
  std::string dataset = "mnist";  // "mnist" | "svhn" | "cifar"
  // Scales hidden channel counts so benches finish on one core while
  // preserving each architecture's structure (DESIGN.md §3).
  double channel_scale = 1.0;
  data::SyntheticConfig data;
  nn::TrainConfig float_train;  // baseline (full-precision) schedule
  nn::TrainConfig qat_train;    // per-precision fine-tune schedule
  quant::RadixPolicy radix_policy = quant::RadixPolicy::kPerLayer;
  std::uint64_t seed = 1;
};

struct PrecisionResult {
  quant::PrecisionConfig precision;
  double accuracy = 0.0;   // % top-1 on the test split
  bool converged = true;   // false reproduces the paper's "NA" rows
  double energy_uj = 0.0;  // per-image inference energy
  double energy_saving_percent = 0.0;  // vs. the reference energy
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  double param_kb = 0.0;   // parameter memory at this precision
  std::int64_t cycles = 0;
};

struct SweepResult {
  std::string network;
  std::string dataset;
  double float_energy_uj = 0.0;  // this network's float energy
  std::vector<PrecisionResult> points;

  const PrecisionResult* find(const std::string& precision_id) const;
};

// Per-image energy / cycle schedule of `net` at `precision` on the
// default 16×16 accelerator.
hw::ScheduleResult schedule_for(const nn::Network& net, const Shape& input,
                                const quant::PrecisionConfig& precision);
double inference_energy_uj(const nn::Network& net, const Shape& input,
                           const quant::PrecisionConfig& precision);

// Accuracy below this multiple of chance level marks a point as failed
// to converge (the paper reports such rows as NA or chance accuracy).
inline constexpr double kConvergenceFactor = 1.8;

// Runs the full sweep. `reference_energy_uj` sets the baseline for the
// savings column (Table V references the *ALEX* float design even for
// ALEX+ / ALEX++); pass 0 to use this network's own float energy.
SweepResult run_precision_sweep(
    const ExperimentSpec& spec,
    const std::vector<quant::PrecisionConfig>& precisions,
    double reference_energy_uj = 0.0);

}  // namespace qnn::exp
