// Experiment orchestration: the paper's end-to-end flow per design point
// (train float → QAT per precision → accuracy + hardware metrics), used
// by the Table IV / Table V / Fig. 4 benches and the examples.
//
// A sweep can additionally (a) run an N-trial fault-injection campaign
// per precision point at one or more bit-error rates (src/faults), and
// (b) checkpoint itself after every completed point into an atomic,
// CRC32-validated file (src/exp/checkpoint) so an interrupted multi-hour
// run resumes from the last completed point with byte-identical results.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "faults/fault_model.h"
#include "protect/protected_network.h"
#include "hw/schedule.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "quant/guards.h"
#include "quant/memory.h"
#include "quant/qat.h"

namespace qnn::exp {

struct ExperimentSpec {
  std::string network = "lenet";  // zoo name
  std::string dataset = "mnist";  // "mnist" | "svhn" | "cifar"
  // Scales hidden channel counts so benches finish on one core while
  // preserving each architecture's structure (DESIGN.md §3).
  double channel_scale = 1.0;
  data::SyntheticConfig data;
  nn::TrainConfig float_train;  // baseline (full-precision) schedule
  nn::TrainConfig qat_train;    // per-precision fine-tune schedule
  quant::RadixPolicy radix_policy = quant::RadixPolicy::kPerLayer;
  std::uint64_t seed = 1;
};

// Outcome of one fault campaign (one bit-error rate, one protection
// policy) at one precision.
struct FaultPointResult {
  double bit_error_rate = 0.0;
  // Protection policy the campaign ran under (kOff for the classic
  // unprotected campaign). Campaigns for the same (point, rate) share
  // their injection seed across policies, so rows differ only by the
  // protection response.
  protect::ProtectionPolicy policy = protect::ProtectionPolicy::kOff;
  int trials = 0;
  int failed_trials = 0;
  double mean_accuracy = 0.0;  // % top-1 under injection
  double min_accuracy = 0.0;   // worst trial
  std::int64_t total_flips = 0;
  // Protection activity over successful trials (zero under kOff).
  protect::ProtectionCounters protection;
};

struct PrecisionResult {
  quant::PrecisionConfig precision;
  double accuracy = 0.0;   // % top-1 on the test split
  bool converged = true;   // false reproduces the paper's "NA" rows
  double energy_uj = 0.0;  // per-image inference energy
  double energy_saving_percent = 0.0;  // vs. the reference energy
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  double param_kb = 0.0;   // parameter memory at this precision
  std::int64_t cycles = 0;
  // Numerical guard rails observed during the clean test evaluation
  // (zero for the float baseline unless a campaign wrapped it).
  quant::GuardCounters guards;
  // How many attempts the point took (retries kick in when QAT or
  // evaluation throws / produces non-finite accuracy); `degraded` marks
  // a point that exhausted its retries and carries no accuracy.
  int attempts = 1;
  bool degraded = false;
  // One entry per requested bit-error rate, in request order (empty
  // when the sweep ran without fault campaigns).
  std::vector<FaultPointResult> fault_campaigns;
};

struct SweepResult {
  std::string network;
  std::string dataset;
  double float_energy_uj = 0.0;  // this network's float energy
  std::vector<PrecisionResult> points;

  const PrecisionResult* find(const std::string& precision_id) const;
};

// Per-image energy / cycle schedule of `net` at `precision` on the
// default 16×16 accelerator.
hw::ScheduleResult schedule_for(const nn::Network& net, const Shape& input,
                                const quant::PrecisionConfig& precision);
double inference_energy_uj(const nn::Network& net, const Shape& input,
                           const quant::PrecisionConfig& precision);

// Accuracy below this multiple of chance level marks a point as failed
// to converge (the paper reports such rows as NA or chance accuracy).
inline constexpr double kConvergenceFactor = 1.8;

// Per-point fault campaign configuration for a sweep. Disabled unless
// both a trial count and at least one bit-error rate are given.
struct FaultCampaignSpec {
  int trials = 0;
  std::vector<double> bit_error_rates;
  unsigned domains = faults::kAllDomains;
  std::uint64_t seed = 0xfa117ull;
  int trial_retries = 2;
  // Protection policies to run per (point, rate); empty means the
  // classic unprotected campaign only. Each policy reuses the same
  // campaign seed, so protected rows face the identical fault streams
  // as their unprotected siblings.
  std::vector<protect::ProtectionPolicy> policies;
  // Knob template shared by every protected campaign (its `policy`
  // field is overridden per entry of `policies`).
  protect::ProtectionConfig protection;

  bool enabled() const { return trials > 0 && !bit_error_rates.empty(); }
  std::vector<protect::ProtectionPolicy> effective_policies() const {
    if (policies.empty()) return {protect::ProtectionPolicy::kOff};
    return policies;
  }
};

struct SweepOptions {
  // Non-empty enables crash-safe checkpointing: the sweep writes
  // `checkpoint_path` (CRC32-validated JSON, atomic rename) after every
  // completed point plus `<checkpoint_path>.weights` for the trained
  // float baseline, and a later call with identical arguments resumes
  // from the last completed point.
  std::string checkpoint_path;
  FaultCampaignSpec faults;
  // Re-attempts for a precision point whose QAT/evaluation throws or
  // yields a non-finite accuracy; exhausted points are marked degraded
  // instead of aborting the sweep.
  int point_retries = 2;
  // Test hook invoked after each newly computed point is finished (and
  // checkpointed); throwing from it simulates a mid-sweep crash.
  std::function<void(std::size_t point_index)> after_point;
};

// Runs the full sweep. `reference_energy_uj` sets the baseline for the
// savings column (Table V references the *ALEX* float design even for
// ALEX+ / ALEX++); pass 0 to use this network's own float energy.
SweepResult run_precision_sweep(
    const ExperimentSpec& spec,
    const std::vector<quant::PrecisionConfig>& precisions,
    double reference_energy_uj = 0.0, const SweepOptions& options = {});

}  // namespace qnn::exp
