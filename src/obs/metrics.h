// Process-wide metrics registry: monotonic counters, gauges, and
// fixed-bucket histograms (DESIGN.md §11).
//
// The fast path is lock-free and allocation-free: every metric owns a
// fixed array of per-thread stripes and an update is a single relaxed
// fetch_add on the calling thread's stripe. Stripes fold into totals
// only when a snapshot is taken, and every folded quantity is an
// integer, so totals are exact and independent of thread count and
// interleaving — recording metrics can never perturb the N-thread ==
// 1-thread bit-identity contract (§9), because metrics never feed back
// into any computation.
//
// Registration (by name, on the Registry mutex) is the slow path and is
// expected at startup or first use; handles are trivially copyable and
// remain valid for the life of the process. Re-registering a name
// returns the existing metric and checks that kind and bucket bounds
// match.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace qnn::obs {

// Stripe count: concurrent writers land on (mostly) distinct cache
// lines. Thread ids beyond the stripe count share stripes, which stays
// correct because every update is an atomic add.
inline constexpr int kMetricStripes = 64;

// Sentinel returned by MetricSnapshot::quantile when the histogram has
// no defined answer: zero samples, or a quantile landing in the
// overflow bucket of a bound-less histogram. Negative so it can never
// be confused with a real duration/size sample, and safe for the
// serving controller's feedback gates, which only act on p99 > 0.
inline constexpr double kQuantileNoSamples = -1.0;

enum class MetricKind { kCounter, kGauge, kHistogram };
const char* metric_kind_name(MetricKind kind);

// Occupancy of the striped fast path: how many distinct threads have
// ever recorded a metric, how many of the kMetricStripes stripes they
// land on, and how many threads alias an already-taken stripe (beyond
// kMetricStripes, thread ids wrap — still correct, just contended).
struct StripeStats {
  int stripes = kMetricStripes;
  int threads_registered = 0;
  int stripes_occupied = 0;
  int aliased_threads = 0;
};

StripeStats stripe_stats();

namespace detail {

// Storage behind one metric. Cells are laid out stripe-major:
//   counter    stride 1: [total]
//   gauge      stride 1, stripe 0 only: [value]
//   histogram  stride buckets+1: [bucket 0 .. bucket B-1, sum]
// where B = bounds.size() + 1 (the last bucket is the overflow bucket).
struct MetricData {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::vector<std::int64_t> bounds;  // ascending inclusive upper bounds
  std::size_t stride = 1;
  std::unique_ptr<std::atomic<std::int64_t>[]> cells;

  std::atomic<std::int64_t>& cell(int stripe, std::size_t slot) {
    return cells[static_cast<std::size_t>(stripe) * stride + slot];
  }
};

// Small dense id of the calling thread, assigned on first use.
int stripe_index();

}  // namespace detail

// Monotonic counter. add() with a negative delta is a programming error
// but is not checked on the hot path.
class Counter {
 public:
  Counter() = default;
  void inc() { add(1); }
  void add(std::int64_t v) {
    d_->cell(detail::stripe_index(), 0)
        .fetch_add(v, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Counter(detail::MetricData* d) : d_(d) {}
  detail::MetricData* d_ = nullptr;
};

// Last-write-wins gauge (single shared cell; set() is expected to be
// rare relative to counter updates).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) {
    d_->cell(0, 0).store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) {
    d_->cell(0, 0).fetch_add(v, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(detail::MetricData* d) : d_(d) {}
  detail::MetricData* d_ = nullptr;
};

// Fixed-bucket histogram of int64 samples (durations in microseconds,
// sizes in bytes, ...). Bucket i counts samples <= bounds[i]; samples
// above the last bound land in the overflow bucket.
class Histogram {
 public:
  Histogram() = default;
  void observe(std::int64_t v) {
    const std::vector<std::int64_t>& b = d_->bounds;
    std::size_t lo = 0, hi = b.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (v <= b[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    const int stripe = detail::stripe_index();
    d_->cell(stripe, lo).fetch_add(1, std::memory_order_relaxed);
    d_->cell(stripe, d_->stride - 1)
        .fetch_add(v, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Histogram(detail::MetricData* d) : d_(d) {}
  detail::MetricData* d_ = nullptr;
};

// Folded view of one metric at snapshot time.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;  // counter total / gauge value
  // Histogram only: per-bucket counts (bounds.size() + 1 entries, last
  // is overflow), total sample count, and sample sum.
  std::vector<std::int64_t> bounds;
  std::vector<std::int64_t> buckets;
  std::int64_t count = 0;
  std::int64_t sum = 0;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  // Histogram quantile (q in [0, 1]) with fixed-bucket linear
  // interpolation — the one place p50/p99 are computed from bucket
  // counts, so serving/bench code stops hand-rolling it. Convention:
  //   * samples in bucket i are treated as uniform over (lo, hi], where
  //     lo = bounds[i-1] (0 for the first bucket) and hi = bounds[i];
  //   * the target rank is q * count; the result is lo + f * (hi - lo)
  //     with f the fraction of the target rank inside its bucket;
  //   * samples in the overflow bucket have no upper bound, so any
  //     quantile landing there is clamped to the last finite bound
  //     (a documented under-estimate — size the bounds to your tail);
  //   * when there is no defined answer — count == 0, or the quantile
  //     lands in the overflow bucket of a bound-less histogram — the
  //     result is the kQuantileNoSamples sentinel (-1.0), never a
  //     fabricated 0 that reads as "instant".
  // Pinned by golden tests in tests/obs_test.cc.
  double quantile(double q) const;

  json::Value to_json() const;
};

struct Snapshot {
  std::vector<MetricSnapshot> metrics;  // sorted by name

  const MetricSnapshot* find(const std::string& name) const;
  // Quantile of the named histogram (CheckError if the name is missing
  // or not a histogram); see MetricSnapshot::quantile for semantics.
  double quantile(const std::string& name, double q) const;
  json::Value to_json() const;
};

class Registry {
 public:
  // Process-wide registry used by all built-in instrumentation.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Each returns a handle to the named metric, creating it on first
  // use. Throws CheckError if the name exists with a different kind (or
  // different bounds, for histograms).
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name,
                      std::vector<std::int64_t> bounds);

  // Folds every stripe into totals, sorted by metric name.
  Snapshot snapshot() const;

  // Zeroes all cells. Handles stay valid; registrations are kept.
  void reset();

 private:
  detail::MetricData* find_or_create(const std::string& name,
                                     MetricKind kind,
                                     std::vector<std::int64_t> bounds);

  mutable std::mutex m_;
  std::vector<std::unique_ptr<detail::MetricData>> metrics_;
};

// Power-of-two bucket bounds {1, 2, 4, ..., <= max}: the default shape
// for duration histograms, where spans range from sub-microsecond task
// dispatch to multi-second sweep points.
std::vector<std::int64_t> exponential_bounds(std::int64_t max);

}  // namespace qnn::obs
