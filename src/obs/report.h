// RunReport: one structured JSON telemetry document per tool run
// (DESIGN.md §11). Benches and sweeps fold quantization-health signals
// into it — guard counters (saturation/NaN/Inf before clipping),
// envelope violations and layer retries, ABFT detect/re-execute counts,
// and the metrics-registry snapshot (thread-pool shard timings, GEMM
// call volume) — so a run's numerical hygiene is inspectable without
// scraping logs.
//
// Schema (qnn.run_report/1): a flat object with "schema", "tool",
// "threads", plus one member per added section. Section values are
// plain JSON built by the to_json() helpers below, so the document is
// stable and machine-diffable; doubles round-trip bit-exactly through
// util/json.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "protect/protected_network.h"
#include "quant/guards.h"
#include "util/json.h"

namespace qnn::obs {

json::Value to_json(const quant::GuardCounters& g);
json::Value to_json(const protect::AbftCounters& a);
json::Value to_json(const protect::ProtectionCounters& p);

class RunReport {
 public:
  explicit RunReport(std::string tool);

  // Inserts or replaces a top-level section.
  void set(const std::string& key, json::Value v);

  // Convenience wrappers around the to_json() helpers.
  void add_guards(const std::string& key, const quant::GuardCounters& g);
  void add_protection(const std::string& key,
                      const protect::ProtectionCounters& p);

  // Snapshot of `registry` under "metrics" (counters, gauges, and
  // histograms folded across thread stripes, sorted by name).
  void add_metrics(const Registry& registry = Registry::global());

  // Tracer bookkeeping under "trace": enabled flag, buffered and
  // dropped event totals, ring capacity, and the per-thread occupancy
  // breakdown behind them.
  void add_trace_summary();

  // Metrics-registry stripe occupancy under "registry": stripe count,
  // threads registered, stripes occupied, aliased threads.
  void add_registry_summary();

  const json::Value& root() const { return root_; }
  std::string dump() const { return root_.dump(); }

  // Atomic write (complete previous file or complete new file, never a
  // torn mixture).
  void write(const std::string& path) const;

 private:
  json::Value root_;
};

}  // namespace qnn::obs
