// Per-request energy/ops attribution ledger (DESIGN.md §14).
//
// The serving layer charges every forward pass to the requests that
// rode it: one EnergyCharge per (request, dispatch attempt), priced by
// the hw logic/energy model at the EXECUTING tier's precision
// (ops = schedule MACs per image, energy = per-image energy in pJ).
// Discarded executions — watchdog-doomed, audit-tainted, crashed — are
// charged too and simply never marked published, so the ledger answers
// both "what did this request cost" and "how much of that was wasted on
// executions that never produced its response".
//
// The ledger is plain serial state driven by the server's event loop
// (no locks, no atomics): charge order is the deterministic dispatch
// order, so totals — including the floating-point accumulation order —
// replay bit-identically at any worker-thread count. It never feeds
// back into scheduling, so attribution on/off cannot perturb response
// bytes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/json.h"

namespace qnn::obs {

// One execution's cost, charged to one request.
struct EnergyCharge {
  std::int64_t request_id = -1;
  std::int64_t tick = 0;   // virtual dispatch tick
  int tier = 0;            // tier that executed (post-redirect)
  int lane = -1;           // flat executor lane index
  int attempt = 1;         // dispatch attempt (unique per request)
  std::int64_t ops = 0;    // modeled MACs for this request's image
  double energy_pj = 0.0;  // hw model energy for this request's image
  bool published = false;  // true once this execution's result shipped
};

// Per-request fold of the charges.
struct RequestAttribution {
  std::int64_t executions = 0;
  std::int64_t ops = 0;
  double energy_pj = 0.0;
  double published_energy_pj = 0.0;

  double wasted_energy_pj() const { return energy_pj - published_energy_pj; }
};

class AttributionLedger {
 public:
  // Appends a charge. (request_id, attempt) must be unique: a batch is
  // dispatched at most once per attempt number.
  void charge(const EnergyCharge& c);

  // Marks the charge for (request_id, attempt) as published — called
  // when that execution's result is handed to the server. CheckError if
  // no such charge exists or it was already published.
  void mark_published(std::int64_t request_id, int attempt);

  RequestAttribution totals_for(std::int64_t request_id) const;
  // This request's charges in charge (dispatch) order.
  std::vector<const EnergyCharge*> charges_for(std::int64_t request_id) const;

  const std::vector<EnergyCharge>& charges() const { return charges_; }
  std::int64_t total_ops() const { return total_ops_; }
  double total_energy_pj() const { return total_pj_; }
  double published_energy_pj() const { return published_pj_; }
  double wasted_energy_pj() const { return total_pj_ - published_pj_; }

  // Summary block: charge count, ops, total/published/wasted pJ.
  json::Value to_json() const;

 private:
  std::vector<EnergyCharge> charges_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> by_request_;
  std::int64_t total_ops_ = 0;
  double total_pj_ = 0.0;
  double published_pj_ = 0.0;
};

}  // namespace qnn::obs
