#include "obs/metrics.h"

#include <algorithm>

#include "util/check.h"

namespace qnn::obs {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:   return "counter";
    case MetricKind::kGauge:     return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

namespace detail {
namespace {

// Dense thread-id source behind stripe_index(); also the basis of
// stripe_stats() occupancy reporting.
std::atomic<int> g_next_thread{0};

}  // namespace

int stripe_index() {
  thread_local const int id =
      g_next_thread.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return id;
}

}  // namespace detail

StripeStats stripe_stats() {
  StripeStats s;
  s.threads_registered =
      detail::g_next_thread.load(std::memory_order_relaxed);
  s.stripes_occupied = std::min(s.threads_registered, kMetricStripes);
  s.aliased_threads = std::max(0, s.threads_registered - kMetricStripes);
  return s;
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed: worker
  return *registry;                            // threads may outlive main
}

detail::MetricData* Registry::find_or_create(
    const std::string& name, MetricKind kind,
    std::vector<std::int64_t> bounds) {
  QNN_CHECK_MSG(!name.empty(), "metric name must not be empty");
  for (std::size_t i = 1; i < bounds.size(); ++i)
    QNN_CHECK_MSG(bounds[i - 1] < bounds[i],
                  "histogram bounds must be strictly ascending in \""
                      << name << '"');
  std::lock_guard<std::mutex> lock(m_);
  for (const auto& m : metrics_) {
    if (m->name != name) continue;
    QNN_CHECK_MSG(m->kind == kind,
                  "metric \"" << name << "\" already registered as "
                              << metric_kind_name(m->kind));
    QNN_CHECK_MSG(m->bounds == bounds,
                  "histogram \"" << name
                                 << "\" re-registered with different bounds");
    return m.get();
  }
  auto m = std::make_unique<detail::MetricData>();
  m->name = name;
  m->kind = kind;
  m->bounds = std::move(bounds);
  m->stride =
      kind == MetricKind::kHistogram ? m->bounds.size() + 2 : 1;
  const std::size_t cells =
      static_cast<std::size_t>(kMetricStripes) * m->stride;
  m->cells = std::make_unique<std::atomic<std::int64_t>[]>(cells);
  for (std::size_t i = 0; i < cells; ++i)
    m->cells[i].store(0, std::memory_order_relaxed);
  metrics_.push_back(std::move(m));
  return metrics_.back().get();
}

Counter Registry::counter(const std::string& name) {
  return Counter(find_or_create(name, MetricKind::kCounter, {}));
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge(find_or_create(name, MetricKind::kGauge, {}));
}

Histogram Registry::histogram(const std::string& name,
                              std::vector<std::int64_t> bounds) {
  return Histogram(
      find_or_create(name, MetricKind::kHistogram, std::move(bounds)));
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(m_);
  snap.metrics.reserve(metrics_.size());
  for (const auto& m : metrics_) {
    MetricSnapshot s;
    s.name = m->name;
    s.kind = m->kind;
    s.bounds = m->bounds;
    if (m->kind == MetricKind::kHistogram) {
      const std::size_t nbuckets = m->bounds.size() + 1;
      s.buckets.assign(nbuckets, 0);
      for (int stripe = 0; stripe < kMetricStripes; ++stripe) {
        for (std::size_t b = 0; b < nbuckets; ++b)
          s.buckets[b] +=
              m->cell(stripe, b).load(std::memory_order_relaxed);
        s.sum +=
            m->cell(stripe, m->stride - 1).load(std::memory_order_relaxed);
      }
      for (const std::int64_t c : s.buckets) s.count += c;
    } else if (m->kind == MetricKind::kCounter) {
      for (int stripe = 0; stripe < kMetricStripes; ++stripe)
        s.value += m->cell(stripe, 0).load(std::memory_order_relaxed);
    } else {
      s.value = m->cell(0, 0).load(std::memory_order_relaxed);
    }
    snap.metrics.push_back(std::move(s));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(m_);
  for (const auto& m : metrics_) {
    const std::size_t cells =
        static_cast<std::size_t>(kMetricStripes) * m->stride;
    for (std::size_t i = 0; i < cells; ++i)
      m->cells[i].store(0, std::memory_order_relaxed);
  }
}

const MetricSnapshot* Snapshot::find(const std::string& name) const {
  for (const MetricSnapshot& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

double MetricSnapshot::quantile(double q) const {
  QNN_CHECK_MSG(kind == MetricKind::kHistogram,
                "quantile() on non-histogram \"" << name << '"');
  QNN_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q out of [0, 1]: " << q);
  if (count == 0) return kQuantileNoSamples;
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (cum + in_bucket >= target) {
      if (i >= bounds.size()) {
        // Overflow bucket: unbounded above, clamp to the last finite
        // bound (sentinel for a bound-less histogram — nothing finite
        // to clamp to).
        return bounds.empty() ? kQuantileNoSamples
                              : static_cast<double>(bounds.back());
      }
      const double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double hi = static_cast<double>(bounds[i]);
      const double f = std::max(target - cum, 0.0) / in_bucket;
      return lo + f * (hi - lo);
    }
    cum += in_bucket;
  }
  return bounds.empty() ? kQuantileNoSamples
                        : static_cast<double>(bounds.back());
}

double Snapshot::quantile(const std::string& name, double q) const {
  const MetricSnapshot* m = find(name);
  QNN_CHECK_MSG(m != nullptr, "no metric named \"" << name << '"');
  return m->quantile(q);
}

json::Value MetricSnapshot::to_json() const {
  json::Value v = json::Value::object();
  v.set("name", name);
  v.set("kind", metric_kind_name(kind));
  if (kind == MetricKind::kHistogram) {
    json::Value jb = json::Value::array();
    for (const std::int64_t b : bounds) jb.push_back(b);
    json::Value jc = json::Value::array();
    for (const std::int64_t c : buckets) jc.push_back(c);
    v.set("bounds", std::move(jb));
    v.set("buckets", std::move(jc));
    v.set("count", count);
    v.set("sum", sum);
    v.set("mean", mean());
  } else {
    v.set("value", value);
  }
  return v;
}

json::Value Snapshot::to_json() const {
  json::Value arr = json::Value::array();
  for (const MetricSnapshot& m : metrics) arr.push_back(m.to_json());
  return arr;
}

std::vector<std::int64_t> exponential_bounds(std::int64_t max) {
  QNN_CHECK(max >= 1);
  std::vector<std::int64_t> bounds;
  for (std::int64_t b = 1; b <= max; b *= 2) bounds.push_back(b);
  return bounds;
}

}  // namespace qnn::obs
