#include "obs/ledger.h"

#include "util/check.h"

namespace qnn::obs {

void AttributionLedger::charge(const EnergyCharge& c) {
  QNN_CHECK_MSG(c.request_id >= 0, "charge against an unidentified request");
  QNN_CHECK_MSG(c.ops >= 0 && c.energy_pj >= 0.0,
                "negative attribution for request " << c.request_id);
  for (const std::size_t i : by_request_[c.request_id]) {
    QNN_CHECK_MSG(charges_[i].attempt != c.attempt,
                  "duplicate charge for request " << c.request_id
                                                  << " attempt " << c.attempt);
  }
  by_request_[c.request_id].push_back(charges_.size());
  charges_.push_back(c);
  charges_.back().published = false;
  total_ops_ += c.ops;
  total_pj_ += c.energy_pj;
}

void AttributionLedger::mark_published(std::int64_t request_id, int attempt) {
  const auto it = by_request_.find(request_id);
  QNN_CHECK_MSG(it != by_request_.end(),
                "publish for never-charged request " << request_id);
  for (const std::size_t i : it->second) {
    EnergyCharge& c = charges_[i];
    if (c.attempt != attempt) continue;
    QNN_CHECK_MSG(!c.published, "request " << request_id << " attempt "
                                           << attempt << " published twice");
    c.published = true;
    published_pj_ += c.energy_pj;
    return;
  }
  QNN_CHECK_MSG(false, "publish for uncharged attempt " << attempt
                                                        << " of request "
                                                        << request_id);
}

RequestAttribution AttributionLedger::totals_for(
    std::int64_t request_id) const {
  RequestAttribution a;
  const auto it = by_request_.find(request_id);
  if (it == by_request_.end()) return a;
  for (const std::size_t i : it->second) {
    const EnergyCharge& c = charges_[i];
    ++a.executions;
    a.ops += c.ops;
    a.energy_pj += c.energy_pj;
    if (c.published) a.published_energy_pj += c.energy_pj;
  }
  return a;
}

std::vector<const EnergyCharge*> AttributionLedger::charges_for(
    std::int64_t request_id) const {
  std::vector<const EnergyCharge*> out;
  const auto it = by_request_.find(request_id);
  if (it == by_request_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t i : it->second) out.push_back(&charges_[i]);
  return out;
}

json::Value AttributionLedger::to_json() const {
  json::Value v = json::Value::object();
  v.set("charges", static_cast<std::int64_t>(charges_.size()));
  v.set("total_ops", total_ops_);
  v.set("total_energy_pj", total_pj_);
  v.set("published_energy_pj", published_pj_);
  v.set("wasted_energy_pj", wasted_energy_pj());
  return v;
}

}  // namespace qnn::obs
