// Scoped tracer: begin/end spans recorded into per-thread ring buffers
// and exported as chrome://tracing / Perfetto JSON (DESIGN.md §11).
//
// Tracing is off by default. The QNN_TRACE environment variable (any
// value other than "0") or set_trace_enabled(true) turns it on. When
// off, a span costs one relaxed atomic load and a branch — cheap enough
// to leave QNN_SPAN in every hot path. When on, each span performs two
// steady_clock reads and one store into the calling thread's ring
// buffer; no locks, no allocation, and nothing that feeds back into any
// computation, so traced runs remain bit-identical to untraced runs at
// every thread count (§9).
//
// Span names and categories must be string literals (or pointers that
// outlive the export) — events store the pointers, not copies.
//
// Export is meant for quiesce points (end of a bench, after a test's
// parallel work has joined): the exporter reads each thread's buffer up
// to its published head. Buffers hold the most recent
// trace_buffer_capacity() events per thread; older events are dropped
// oldest-first and counted in trace_dropped_count().
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace qnn::obs {

namespace detail {
extern std::atomic<int> g_trace_state;  // -1 unresolved, 0 off, 1 on
bool resolve_trace_env();
void record_span(const char* name, const char* cat, std::int64_t arg,
                 double ts_us, double dur_us);
double now_us();
}  // namespace detail

// True when spans are being recorded. First call resolves QNN_TRACE.
inline bool trace_enabled() {
  const int s = detail::g_trace_state.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return detail::resolve_trace_env();
}

void set_trace_enabled(bool enabled);

// Ring capacity (events per thread) for buffers created after this
// call; existing buffers keep their size. Intended for tests.
void set_trace_buffer_capacity(std::size_t events);
std::size_t trace_buffer_capacity();

// Buffered events across all threads / events evicted by ring wrap.
std::int64_t trace_event_count();
std::int64_t trace_dropped_count();

// Per-thread ring occupancy: events currently buffered, events evicted
// by wrap, and the ring's capacity — the breakdown behind
// trace_event_count()/trace_dropped_count(), exported into RunReport so
// a drop total is traceable to the thread that overflowed.
struct TraceBufferStats {
  int tid = 0;
  std::int64_t buffered = 0;
  std::int64_t dropped = 0;
  std::int64_t capacity = 0;
};

std::vector<TraceBufferStats> trace_buffer_stats();

// Drops all buffered events (buffers and thread ids are kept). Callers
// must ensure no spans are concurrently completing.
void clear_trace();

// Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}
// with one complete ("ph":"X") event per span plus thread_name metadata.
// Load in chrome://tracing or https://ui.perfetto.dev.
json::Value trace_to_json();
void write_chrome_trace(const std::string& path);

// RAII span: records [construction, destruction) on the calling thread.
// `arg` >= 0 is exported as args.n (layer index, trial number, element
// count, ...); negative means "no argument".
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat, std::int64_t arg = -1)
      : name_(name), cat_(cat), arg_(arg), active_(trace_enabled()) {
    if (active_) start_us_ = detail::now_us();
  }
  ~TraceSpan() {
    if (active_)
      detail::record_span(name_, cat_, arg_, start_us_,
                          detail::now_us() - start_us_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::int64_t arg_;
  double start_us_ = 0.0;
  bool active_;
};

}  // namespace qnn::obs

#define QNN_SPAN_PASTE2(a, b) a##b
#define QNN_SPAN_PASTE(a, b) QNN_SPAN_PASTE2(a, b)
// Scoped span covering the rest of the enclosing block.
#define QNN_SPAN(name, cat) \
  ::qnn::obs::TraceSpan QNN_SPAN_PASTE(qnn_span_, __COUNTER__)(name, cat)
#define QNN_SPAN_N(name, cat, arg) \
  ::qnn::obs::TraceSpan QNN_SPAN_PASTE(qnn_span_, __COUNTER__)(name, cat, \
                                                               arg)
