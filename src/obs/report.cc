#include "obs/report.h"

#include "obs/trace.h"
#include "util/fileio.h"
#include "util/thread_pool.h"

namespace qnn::obs {

json::Value to_json(const quant::GuardCounters& g) {
  json::Value v = json::Value::object();
  v.set("values", g.values);
  v.set("saturated", g.saturated);
  v.set("nan", g.nan);
  v.set("inf", g.inf);
  v.set("saturation_rate", g.saturation_rate());
  return v;
}

json::Value to_json(const protect::AbftCounters& a) {
  json::Value v = json::Value::object();
  v.set("blocks_checked", a.blocks_checked);
  v.set("mismatches", a.mismatches);
  v.set("reexecutions", a.reexecutions);
  v.set("unrecovered", a.unrecovered);
  return v;
}

json::Value to_json(const protect::ProtectionCounters& p) {
  json::Value v = json::Value::object();
  v.set("values", p.values);
  v.set("out_of_envelope", p.out_of_envelope);
  v.set("clamped", p.clamped);
  v.set("layer_retries", p.layer_retries);
  v.set("degraded_forwards", p.degraded_forwards);
  v.set("abft", to_json(p.abft));
  return v;
}

RunReport::RunReport(std::string tool) : root_(json::Value::object()) {
  root_.set("schema", "qnn.run_report/1");
  root_.set("tool", std::move(tool));
  root_.set("threads", ThreadPool::env_threads());
}

void RunReport::set(const std::string& key, json::Value v) {
  root_.set(key, std::move(v));
}

void RunReport::add_guards(const std::string& key,
                           const quant::GuardCounters& g) {
  root_.set(key, to_json(g));
}

void RunReport::add_protection(const std::string& key,
                               const protect::ProtectionCounters& p) {
  root_.set(key, to_json(p));
}

void RunReport::add_metrics(const Registry& registry) {
  root_.set("metrics", registry.snapshot().to_json());
}

void RunReport::add_trace_summary() {
  json::Value v = json::Value::object();
  v.set("enabled", trace_enabled());
  v.set("events", trace_event_count());
  v.set("dropped", trace_dropped_count());
  v.set("capacity", static_cast<std::int64_t>(trace_buffer_capacity()));
  json::Value per_thread = json::Value::array();
  for (const TraceBufferStats& s : trace_buffer_stats()) {
    json::Value t = json::Value::object();
    t.set("tid", static_cast<std::int64_t>(s.tid));
    t.set("buffered", s.buffered);
    t.set("dropped", s.dropped);
    t.set("capacity", s.capacity);
    per_thread.push_back(std::move(t));
  }
  v.set("per_thread", std::move(per_thread));
  root_.set("trace", std::move(v));
}

void RunReport::add_registry_summary() {
  const StripeStats s = stripe_stats();
  json::Value v = json::Value::object();
  v.set("stripes", static_cast<std::int64_t>(s.stripes));
  v.set("threads_registered", static_cast<std::int64_t>(s.threads_registered));
  v.set("stripes_occupied", static_cast<std::int64_t>(s.stripes_occupied));
  v.set("aliased_threads", static_cast<std::int64_t>(s.aliased_threads));
  root_.set("registry", std::move(v));
}

void RunReport::write(const std::string& path) const {
  write_file_atomic(path, dump() + "\n");
}

}  // namespace qnn::obs
