#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/fileio.h"

namespace qnn::obs {
namespace detail {

std::atomic<int> g_trace_state{-1};

double now_us() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool resolve_trace_env() {
  const char* v = std::getenv("QNN_TRACE");
  const int enabled =
      (v != nullptr && std::string(v) != "0" && std::string(v) != "") ? 1
                                                                      : 0;
  int expected = -1;
  g_trace_state.compare_exchange_strong(expected, enabled,
                                        std::memory_order_relaxed);
  return g_trace_state.load(std::memory_order_relaxed) != 0;
}

struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::int64_t arg = -1;
};

// One ring per thread: written only by the owning thread, read by the
// exporter at quiesce points. `head` counts events ever written; the
// release store publishes the slot write to an acquire-loading reader.
struct ThreadBuffer {
  int tid = 0;
  std::vector<TraceEvent> ring;
  std::atomic<std::uint64_t> head{0};
};

std::mutex g_buffers_m;
// Buffer pointers are leaked deliberately: pool worker threads (and
// their thread_locals) can outlive any scope that could free them, and
// the exporter may run after a recording thread has exited.
std::vector<ThreadBuffer*>& buffer_list() {
  static std::vector<ThreadBuffer*>* list = new std::vector<ThreadBuffer*>();
  return *list;
}
std::size_t g_capacity = std::size_t{1} << 16;

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = [] {
    auto* b = new ThreadBuffer();
    std::lock_guard<std::mutex> lock(g_buffers_m);
    b->tid = static_cast<int>(buffer_list().size());
    b->ring.resize(g_capacity);
    buffer_list().push_back(b);
    return b;
  }();
  return *buf;
}

void record_span(const char* name, const char* cat, std::int64_t arg,
                 double ts_us, double dur_us) {
  ThreadBuffer& b = local_buffer();
  const std::uint64_t h = b.head.load(std::memory_order_relaxed);
  TraceEvent& ev = b.ring[h % b.ring.size()];
  ev.name = name;
  ev.cat = cat;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.arg = arg;
  b.head.store(h + 1, std::memory_order_release);
}

}  // namespace detail

void set_trace_enabled(bool enabled) {
  detail::g_trace_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void set_trace_buffer_capacity(std::size_t events) {
  std::lock_guard<std::mutex> lock(detail::g_buffers_m);
  detail::g_capacity = events > 0 ? events : 1;
}

std::size_t trace_buffer_capacity() {
  std::lock_guard<std::mutex> lock(detail::g_buffers_m);
  return detail::g_capacity;
}

std::int64_t trace_event_count() {
  std::lock_guard<std::mutex> lock(detail::g_buffers_m);
  std::int64_t total = 0;
  for (const detail::ThreadBuffer* b : detail::buffer_list()) {
    const std::uint64_t head = b->head.load(std::memory_order_acquire);
    total += static_cast<std::int64_t>(
        std::min<std::uint64_t>(head, b->ring.size()));
  }
  return total;
}

std::int64_t trace_dropped_count() {
  std::lock_guard<std::mutex> lock(detail::g_buffers_m);
  std::int64_t dropped = 0;
  for (const detail::ThreadBuffer* b : detail::buffer_list()) {
    const std::uint64_t head = b->head.load(std::memory_order_acquire);
    if (head > b->ring.size())
      dropped += static_cast<std::int64_t>(head - b->ring.size());
  }
  return dropped;
}

std::vector<TraceBufferStats> trace_buffer_stats() {
  std::lock_guard<std::mutex> lock(detail::g_buffers_m);
  std::vector<TraceBufferStats> out;
  for (const detail::ThreadBuffer* b : detail::buffer_list()) {
    TraceBufferStats s;
    s.tid = b->tid;
    const std::uint64_t head = b->head.load(std::memory_order_acquire);
    const std::uint64_t cap = b->ring.size();
    s.capacity = static_cast<std::int64_t>(cap);
    s.buffered =
        static_cast<std::int64_t>(std::min<std::uint64_t>(head, cap));
    s.dropped = head > cap ? static_cast<std::int64_t>(head - cap) : 0;
    out.push_back(s);
  }
  return out;
}

void clear_trace() {
  std::lock_guard<std::mutex> lock(detail::g_buffers_m);
  for (detail::ThreadBuffer* b : detail::buffer_list())
    b->head.store(0, std::memory_order_release);
}

json::Value trace_to_json() {
  std::lock_guard<std::mutex> lock(detail::g_buffers_m);
  json::Value events = json::Value::array();
  for (const detail::ThreadBuffer* b : detail::buffer_list()) {
    json::Value meta = json::Value::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 1);
    meta.set("tid", b->tid);
    json::Value margs = json::Value::object();
    margs.set("name", b->tid == 0 ? std::string("main/first-tracer")
                                  : "thread-" + std::to_string(b->tid));
    meta.set("args", std::move(margs));
    events.push_back(std::move(meta));
  }
  for (const detail::ThreadBuffer* b : detail::buffer_list()) {
    const std::uint64_t head = b->head.load(std::memory_order_acquire);
    const std::uint64_t cap = b->ring.size();
    const std::uint64_t count = std::min<std::uint64_t>(head, cap);
    // Oldest first: a wrapped ring starts at head % cap.
    const std::uint64_t first = head > cap ? head % cap : 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      const detail::TraceEvent& ev = b->ring[(first + i) % cap];
      json::Value e = json::Value::object();
      e.set("name", ev.name);
      e.set("cat", ev.cat);
      e.set("ph", "X");
      e.set("pid", 1);
      e.set("tid", b->tid);
      e.set("ts", ev.ts_us);
      e.set("dur", ev.dur_us);
      if (ev.arg >= 0) {
        json::Value args = json::Value::object();
        args.set("n", ev.arg);
        e.set("args", std::move(args));
      }
      events.push_back(std::move(e));
    }
  }
  json::Value root = json::Value::object();
  root.set("displayTimeUnit", "ms");
  root.set("traceEvents", std::move(events));
  return root;
}

void write_chrome_trace(const std::string& path) {
  write_file_atomic(path, trace_to_json().dump() + "\n");
}

}  // namespace qnn::obs
