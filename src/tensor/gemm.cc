#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/microkernel.h"
#include "util/thread_pool.h"

namespace qnn {
namespace {

struct GemmMetrics {
  obs::Counter calls;
  obs::Counter macs;
  obs::Counter k_sharded_calls;  // calls whose plan has >= 2 K chunks
  obs::Counter k_chunks;         // chunk partials those calls computed
};

GemmMetrics& gemm_metrics() {
  obs::Registry& r = obs::Registry::global();
  static GemmMetrics m{r.counter("gemm.calls"), r.counter("gemm.macs"),
                       r.counter("gemm.k_sharded_calls"),
                       r.counter("gemm.k_chunks")};
  return m;
}

// Cache-blocking parameters sized for a typical 32 KiB L1 / 256 KiB L2.
// The K block doubles as the fixed-tree chunk width (gemm_k_plan), so a
// chunk partial is exactly one inner-kernel pass over its K range.
constexpr std::int64_t kBlockM = kGemmBlockM;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = kGemmKChunk;

// K-parallel partial buffers above this size fall back to serial-chunk
// execution inside each M-block task (bytes are unaffected — only the
// schedule and scratch footprint change).
constexpr std::int64_t kMaxKParallelFloats = std::int64_t{1} << 24;

// Inner kernel: C[mb, nb] += A[mb, kb] * B[kb, nb] over one cache block,
// routed through the runtime-dispatched microkernel (tensor/microkernel).
// Every level computes the canonical lane-striped fold — a serial fused
// multiply-add per (element, p) with no cross-lane mixing — so the
// dispatch choice can never change the bytes.
void block_kernel(std::int64_t mb, std::int64_t nb, std::int64_t kb,
                  const float* a, std::int64_t lda, const float* b,
                  std::int64_t ldb, float* c, std::int64_t ldc) {
  gemm_block_f32(active_simd_level(), mb, nb, kb, a, lda, b, ldb, c, ldc);
}

// One M block of the single-chunk (count == 1) plan: all K and N blocks
// for rows [i0, i0 + mb), then the optional per-row bias epilogue.
// Writes only rows [i0, i0 + mb) of C, and every element's accumulation
// order over K is independent of how the M dimension is chunked — the
// basis for deterministic row sharding.
void run_m_block(std::int64_t i0, std::int64_t mb, std::int64_t n,
                 std::int64_t k, const float* a, const float* b, float* c,
                 bool accumulate, const float* row_bias) {
  float* cblock = c + i0 * n;
  if (!accumulate)
    std::memset(cblock, 0, sizeof(float) * static_cast<std::size_t>(mb * n));
  for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::int64_t kb = std::min(kBlockK, k - p0);
    for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::int64_t nb = std::min(kBlockN, n - j0);
      block_kernel(mb, nb, kb, a + i0 * k + p0, k, b + p0 * n + j0, n,
                   cblock + j0, n);
    }
  }
  if (row_bias != nullptr) {
    for (std::int64_t i = 0; i < mb; ++i) {
      const float bias = row_bias[i0 + i];
      float* ci = cblock + i * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += bias;
    }
  }
}

// One chunk partial of the canonical order (gemm.h): rows [i0, i0+mb) of
// A times chunk `ci`'s K slice of B, accumulated from zero into the
// mb*n buffer `dst`.
void compute_chunk_partial(std::int64_t i0, std::int64_t mb, std::int64_t n,
                           std::int64_t k, const GemmKPlan& plan,
                           std::int64_t ci, const float* a, const float* b,
                           float* dst) {
  const std::int64_t p0 = ci * plan.chunk;
  const std::int64_t kb = std::min(plan.chunk, k - p0);
  std::memset(dst, 0, sizeof(float) * static_cast<std::size_t>(mb * n));
  for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
    const std::int64_t nb = std::min(kBlockN, n - j0);
    block_kernel(mb, nb, kb, a + i0 * k + p0, k, b + p0 * n + j0, n,
                 dst + j0, n);
  }
}

// Fixed binary tree over `count` partials of `elems` floats spaced
// `slot` floats apart: combine partial[lo] += partial[lo + stride] for
// stride = 1, 2, 4, ... The merge order is a pure function of `count`,
// and the result lands in partial[0].
void tree_combine(float* partials, std::int64_t count, std::int64_t elems,
                  std::int64_t slot) {
  for (std::int64_t stride = 1; stride < count; stride *= 2) {
    for (std::int64_t lo = 0; lo + stride < count; lo += 2 * stride) {
      float* dst = partials + lo * slot;
      const float* src = partials + (lo + stride) * slot;
      for (std::int64_t e = 0; e < elems; ++e) dst[e] += src[e];
    }
  }
}

// Epilogue of the chunked path: move the tree result into C (overwrite
// or accumulate) and apply the optional per-row bias.
void write_block_from_tree(std::int64_t i0, std::int64_t mb, std::int64_t n,
                           const float* tree, float* c, bool accumulate,
                           const float* row_bias) {
  float* cblock = c + i0 * n;
  const std::int64_t elems = mb * n;
  if (accumulate) {
    for (std::int64_t e = 0; e < elems; ++e) cblock[e] += tree[e];
  } else {
    std::memcpy(cblock, tree, sizeof(float) * static_cast<std::size_t>(elems));
  }
  if (row_bias != nullptr) {
    for (std::int64_t i = 0; i < mb; ++i) {
      const float bias = row_bias[i0 + i];
      float* ci = cblock + i * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += bias;
    }
  }
}

// Serial-chunk execution of one M block: compute every chunk partial in
// chunk order into `partials` (count * mb * n floats), tree-combine,
// write out. Byte-identical to the K-parallel schedule by construction.
void run_m_block_chunked(std::int64_t i0, std::int64_t mb, std::int64_t n,
                         std::int64_t k, const GemmKPlan& plan,
                         const float* a, const float* b, float* c,
                         bool accumulate, const float* row_bias,
                         float* partials) {
  const std::int64_t slot = mb * n;
  for (std::int64_t ci = 0; ci < plan.count; ++ci)
    compute_chunk_partial(i0, mb, n, k, plan, ci, a, b,
                          partials + ci * slot);
  tree_combine(partials, plan.count, slot, slot);
  write_block_from_tree(i0, mb, n, partials, c, accumulate, row_bias);
}

// Growth-only per-thread buffer for M-block tasks whose chunk partials
// cannot share a caller-provided scratch (several blocks in flight).
// Scratchless top-level calls reuse it for the K-parallel partial
// buffer too: K-parallelism only engages outside pool tasks, and tasks
// of that schedule never touch their own thread_partials, so the
// caller's buffer is free — repeated scratchless calls (benches, ad-hoc
// tools) stop paying a multi-MB allocation each.
float* thread_partials(std::size_t elems) {
  thread_local std::vector<float> buf;
  if (buf.size() < elems) buf.resize(elems);
  return buf.data();
}

// Growth-only per-thread destination for scratchless at/bt transposes.
// Separate from thread_partials: the transposed operand must stay live
// across the whole gemm_impl call, which may itself use
// thread_partials on this thread for the serial-chunk path.
float* thread_transpose(std::size_t elems) {
  thread_local std::vector<float> buf;
  if (buf.size() < elems) buf.resize(elems);
  return buf.data();
}

void gemm_impl(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
               const float* b, float* c, bool accumulate,
               const float* row_bias = nullptr,
               GemmScratch* scratch = nullptr) {
  QNN_SPAN_N("gemm", "tensor", m * n * k);
  GemmMetrics& gm = gemm_metrics();
  gm.calls.inc();
  gm.macs.add(m * n * k);
  const GemmKPlan plan = gemm_k_plan(k);
  const std::int64_t blocks = (m + kBlockM - 1) / kBlockM;

  if (plan.count <= 1) {
    parallel_run(blocks, [&](std::int64_t bi) {
      QNN_SPAN_N("gemm_shard", "tensor", bi);
      const std::int64_t i0 = bi * kBlockM;
      run_m_block(i0, std::min(kBlockM, m - i0), n, k, a, b, c, accumulate,
                  row_bias);
    });
    return;
  }

  gm.k_sharded_calls.inc();
  gm.k_chunks.add(blocks * plan.count);

  // K-parallelism engages when the M blocks alone cannot saturate the
  // pool — the tall-K inner-product case. The choice (and the scratch
  // it implies) is pure scheduling: both paths below compute the same
  // chunk partials and run the same merge tree, so the bytes match.
  const std::int64_t kshard_floats = blocks * plan.count * kBlockM * n;
  const bool k_parallel = !ThreadPool::in_worker() &&
                          ThreadPool::global().parallel_capacity() > 1 &&
                          blocks < ThreadPool::global().size() &&
                          kshard_floats <= kMaxKParallelFloats;
  if (k_parallel) {
    QNN_SPAN_N("gemm_kshard", "tensor", blocks * plan.count);
    // Block bi's chunk partials pack at base(bi) = bi * count * kBlockM
    // * n with per-chunk stride mb * n (mb < kBlockM only for the last
    // block, so bases never overlap). Scratchless calls fall back to
    // the calling thread's growth-only buffer instead of allocating.
    float* partials =
        scratch != nullptr
            ? scratch->partials(static_cast<std::size_t>(kshard_floats))
            : thread_partials(static_cast<std::size_t>(kshard_floats));
    parallel_run(blocks * plan.count, [&](std::int64_t ti) {
      QNN_SPAN_N("gemm_kchunk", "tensor", ti);
      const std::int64_t bi = ti / plan.count;
      const std::int64_t ci = ti % plan.count;
      const std::int64_t i0 = bi * kBlockM;
      const std::int64_t mb = std::min(kBlockM, m - i0);
      float* base = partials + bi * plan.count * kBlockM * n;
      compute_chunk_partial(i0, mb, n, k, plan, ci, a, b,
                            base + ci * mb * n);
    });
    parallel_run(blocks, [&](std::int64_t bi) {
      QNN_SPAN_N("gemm_kcombine", "tensor", bi);
      const std::int64_t i0 = bi * kBlockM;
      const std::int64_t mb = std::min(kBlockM, m - i0);
      float* base = partials + bi * plan.count * kBlockM * n;
      tree_combine(base, plan.count, mb * n, mb * n);
      write_block_from_tree(i0, mb, n, base, c, accumulate, row_bias);
    });
    return;
  }

  // Serial-chunk schedule: each M-block task owns its chunk loop. A
  // caller scratch is safe only when a single block can be in flight.
  parallel_run(blocks, [&](std::int64_t bi) {
    QNN_SPAN_N("gemm_shard", "tensor", bi);
    const std::int64_t i0 = bi * kBlockM;
    const std::int64_t mb = std::min(kBlockM, m - i0);
    const std::size_t elems =
        static_cast<std::size_t>(plan.count * mb * n);
    float* partials = (scratch != nullptr && blocks == 1)
                          ? scratch->partials(elems)
                          : thread_partials(elems);
    run_m_block_chunked(i0, mb, n, k, plan, a, b, c, accumulate, row_bias,
                        partials);
  });
}

// Per-column bias epilogue, sharded over rows (disjoint writes).
void add_col_bias(std::int64_t m, std::int64_t n, float* c,
                  const float* col_bias) {
  if (col_bias == nullptr) return;
  parallel_for_shards(m, kReductionShards, shard_grain(2 * n),
                      [&](std::size_t, std::int64_t begin, std::int64_t end) {
                        for (std::int64_t i = begin; i < end; ++i) {
                          float* ci = c + i * n;
                          for (std::int64_t j = 0; j < n; ++j)
                            ci[j] += col_bias[j];
                        }
                      });
}

// Tiled out-of-place transpose: dst[r*cols + c] = src[c*rows + r].
// Naive loops touch a new cache line on every element of the strided
// side (worth ~10x on a tall-K weight matrix); square tiles keep both
// the contiguous writes and the strided reads in a cache-resident
// footprint. Pure data movement sharded over destination row tiles
// (disjoint writes), so the bytes are identical at any pool size.
// 16 floats = one 64-byte cache line per row segment on both sides of
// the copy, the sweet spot measured on the tall-K weight shapes.
constexpr std::int64_t kTransposeTile = 16;

void transpose_into(float* dst, const float* src, std::int64_t rows,
                    std::int64_t cols) {
  const std::int64_t row_tiles = (rows + kTransposeTile - 1) / kTransposeTile;
  parallel_for_shards(
      row_tiles, kReductionShards, shard_grain(2 * kTransposeTile * cols),
      [&](std::size_t, std::int64_t begin, std::int64_t end) {
        for (std::int64_t rt = begin; rt < end; ++rt) {
          const std::int64_t r0 = rt * kTransposeTile;
          const std::int64_t r1 = std::min(rows, r0 + kTransposeTile);
          for (std::int64_t c0 = 0; c0 < cols; c0 += kTransposeTile) {
            const std::int64_t c1 = std::min(cols, c0 + kTransposeTile);
            for (std::int64_t r = r0; r < r1; ++r) {
              float* d = dst + r * cols;
              for (std::int64_t c = c0; c < c1; ++c)
                d[c] = src[c * rows + r];
            }
          }
        }
      });
}

// Materialize A^T (or B^T) once; the transpose cost is small next to
// the O(mnk) multiply and keeps the inner kernel contiguous. The
// destination comes from the caller's scratch when provided (steady-
// state layer forwards stop heap-allocating), the calling thread's
// growth-only buffer otherwise.
float* transpose_a(std::int64_t m, std::int64_t k, const float* a,
                   GemmScratch* scratch) {
  float* at = scratch != nullptr
                  ? scratch->transpose(static_cast<std::size_t>(m * k))
                  : thread_transpose(static_cast<std::size_t>(m * k));
  transpose_into(at, a, m, k);  // at[i*k + p] = a[p*m + i]
  return at;
}

float* transpose_b(std::int64_t n, std::int64_t k, const float* b,
                   GemmScratch* scratch) {
  float* bt = scratch != nullptr
                  ? scratch->transpose(static_cast<std::size_t>(k * n))
                  : thread_transpose(static_cast<std::size_t>(k * n));
  transpose_into(bt, b, k, n);  // bt[p*n + j] = b[j*k + p]
  return bt;
}

}  // namespace

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
          const float* b, float* c, GemmScratch* scratch) {
  gemm_impl(m, n, k, a, b, c, /*accumulate=*/false, nullptr, scratch);
}

void gemm_row_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                   const float* a, const float* b, float* c,
                   const float* row_bias, GemmScratch* scratch) {
  gemm_impl(m, n, k, a, b, c, /*accumulate=*/false, row_bias, scratch);
}

void gemm_accumulate(std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, const float* b, float* c,
                     GemmScratch* scratch) {
  gemm_impl(m, n, k, a, b, c, /*accumulate=*/true, nullptr, scratch);
}

void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, GemmScratch* scratch) {
  const float* at = transpose_a(m, k, a, scratch);
  gemm_impl(m, n, k, at, b, c, /*accumulate=*/false, nullptr, scratch);
}

void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, GemmScratch* scratch) {
  const float* bt = transpose_b(n, k, b, scratch);
  gemm_impl(m, n, k, a, bt, c, /*accumulate=*/false, nullptr, scratch);
}

void gemm_bt_col_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, const float* b, float* c,
                      const float* col_bias, GemmScratch* scratch) {
  const float* bt = transpose_b(n, k, b, scratch);
  gemm_impl(m, n, k, a, bt, c, /*accumulate=*/false, nullptr, scratch);
  add_col_bias(m, n, c, col_bias);
}

void gemm_bt_accumulate(std::int64_t m, std::int64_t n, std::int64_t k,
                        const float* a, const float* b, float* c,
                        GemmScratch* scratch) {
  const float* bt = transpose_b(n, k, b, scratch);
  gemm_impl(m, n, k, a, bt, c, /*accumulate=*/true, nullptr, scratch);
}

}  // namespace qnn
