#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace qnn {
namespace {

struct GemmMetrics {
  obs::Counter calls;
  obs::Counter macs;
};

GemmMetrics& gemm_metrics() {
  static GemmMetrics m{obs::Registry::global().counter("gemm.calls"),
                       obs::Registry::global().counter("gemm.macs")};
  return m;
}

// Cache-blocking parameters sized for a typical 32 KiB L1 / 256 KiB L2.
constexpr std::int64_t kBlockM = kGemmBlockM;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 256;

// Inner kernel: C[mb, nb] += A[mb, kb] * B[kb, nb] over one cache block.
// Unrolled 4 rows at a time so the compiler keeps C accumulators in
// registers and vectorizes the N loop.
void block_kernel(std::int64_t mb, std::int64_t nb, std::int64_t kb,
                  const float* a, std::int64_t lda, const float* b,
                  std::int64_t ldb, float* c, std::int64_t ldc) {
  std::int64_t i = 0;
  for (; i + 4 <= mb; i += 4) {
    const float* a0 = a + (i + 0) * lda;
    const float* a1 = a + (i + 1) * lda;
    const float* a2 = a + (i + 2) * lda;
    const float* a3 = a + (i + 3) * lda;
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    for (std::int64_t p = 0; p < kb; ++p) {
      const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      const float* bp = b + p * ldb;
      for (std::int64_t j = 0; j < nb; ++j) {
        const float bj = bp[j];
        c0[j] += v0 * bj;
        c1[j] += v1 * bj;
        c2[j] += v2 * bj;
        c3[j] += v3 * bj;
      }
    }
  }
  for (; i < mb; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (std::int64_t p = 0; p < kb; ++p) {
      const float v = ai[p];
      const float* bp = b + p * ldb;
      for (std::int64_t j = 0; j < nb; ++j) ci[j] += v * bp[j];
    }
  }
}

// One M block: all K and N blocks for rows [i0, i0 + mb), then the
// optional per-row bias epilogue. Writes only rows [i0, i0 + mb) of C,
// and every element's accumulation order over K is independent of how
// the M dimension is chunked — the basis for deterministic row sharding.
void run_m_block(std::int64_t i0, std::int64_t mb, std::int64_t n,
                 std::int64_t k, const float* a, const float* b, float* c,
                 bool accumulate, const float* row_bias) {
  float* cblock = c + i0 * n;
  if (!accumulate)
    std::memset(cblock, 0, sizeof(float) * static_cast<std::size_t>(mb * n));
  for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::int64_t kb = std::min(kBlockK, k - p0);
    for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::int64_t nb = std::min(kBlockN, n - j0);
      block_kernel(mb, nb, kb, a + i0 * k + p0, k, b + p0 * n + j0, n,
                   cblock + j0, n);
    }
  }
  if (row_bias != nullptr) {
    for (std::int64_t i = 0; i < mb; ++i) {
      const float bias = row_bias[i0 + i];
      float* ci = cblock + i * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += bias;
    }
  }
}

void gemm_impl(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
               const float* b, float* c, bool accumulate,
               const float* row_bias = nullptr) {
  QNN_SPAN_N("gemm", "tensor", m * n * k);
  GemmMetrics& gm = gemm_metrics();
  gm.calls.inc();
  gm.macs.add(m * n * k);
  const std::int64_t blocks = (m + kBlockM - 1) / kBlockM;
  parallel_run(blocks, [&](std::int64_t bi) {
    QNN_SPAN_N("gemm_shard", "tensor", bi);
    const std::int64_t i0 = bi * kBlockM;
    run_m_block(i0, std::min(kBlockM, m - i0), n, k, a, b, c, accumulate,
                row_bias);
  });
}

// Per-column bias epilogue, sharded over rows (disjoint writes).
void add_col_bias(std::int64_t m, std::int64_t n, float* c,
                  const float* col_bias) {
  if (col_bias == nullptr) return;
  parallel_for_shards(m, kReductionShards,
                      [&](std::size_t, std::int64_t begin, std::int64_t end) {
                        for (std::int64_t i = begin; i < end; ++i) {
                          float* ci = c + i * n;
                          for (std::int64_t j = 0; j < n; ++j)
                            ci[j] += col_bias[j];
                        }
                      });
}

std::vector<float> transpose_a(std::int64_t m, std::int64_t k,
                               const float* a) {
  // Materialize A^T once; the transpose cost is negligible next to the
  // O(mnk) multiply and keeps the inner kernel contiguous.
  std::vector<float> at(static_cast<std::size_t>(m * k));
  parallel_for_shards(k, kReductionShards,
                      [&](std::size_t, std::int64_t begin, std::int64_t end) {
                        for (std::int64_t p = begin; p < end; ++p)
                          for (std::int64_t i = 0; i < m; ++i)
                            at[static_cast<std::size_t>(i * k + p)] =
                                a[p * m + i];
                      });
  return at;
}

std::vector<float> transpose_b(std::int64_t n, std::int64_t k,
                               const float* b) {
  std::vector<float> bt(static_cast<std::size_t>(k * n));
  parallel_for_shards(n, kReductionShards,
                      [&](std::size_t, std::int64_t begin, std::int64_t end) {
                        for (std::int64_t j = begin; j < end; ++j)
                          for (std::int64_t p = 0; p < k; ++p)
                            bt[static_cast<std::size_t>(p * n + j)] =
                                b[j * k + p];
                      });
  return bt;
}

}  // namespace

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
          const float* b, float* c) {
  gemm_impl(m, n, k, a, b, c, /*accumulate=*/false);
}

void gemm_row_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                   const float* a, const float* b, float* c,
                   const float* row_bias) {
  gemm_impl(m, n, k, a, b, c, /*accumulate=*/false, row_bias);
}

void gemm_accumulate(std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, const float* b, float* c) {
  gemm_impl(m, n, k, a, b, c, /*accumulate=*/true);
}

void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c) {
  const std::vector<float> at = transpose_a(m, k, a);
  gemm_impl(m, n, k, at.data(), b, c, /*accumulate=*/false);
}

void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c) {
  const std::vector<float> bt = transpose_b(n, k, b);
  gemm_impl(m, n, k, a, bt.data(), c, /*accumulate=*/false);
}

void gemm_bt_col_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, const float* b, float* c,
                      const float* col_bias) {
  const std::vector<float> bt = transpose_b(n, k, b);
  gemm_impl(m, n, k, a, bt.data(), c, /*accumulate=*/false);
  add_col_bias(m, n, c, col_bias);
}

void gemm_bt_accumulate(std::int64_t m, std::int64_t n, std::int64_t k,
                        const float* a, const float* b, float* c) {
  const std::vector<float> bt = transpose_b(n, k, b);
  gemm_impl(m, n, k, a, bt.data(), c, /*accumulate=*/true);
}

}  // namespace qnn
