#include "tensor/shape.h"

#include <sstream>

namespace qnn {

std::int64_t Shape::count() const { return count_from(0); }

std::int64_t Shape::count_from(std::size_t from) const {
  std::int64_t c = 1;
  for (std::size_t i = from; i < dims_.size(); ++i) c *= dims_[i];
  return c;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ')';
  return os.str();
}

}  // namespace qnn
