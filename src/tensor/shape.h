// Tensor shape: an ordered list of dimension extents.
//
// Networks in this library use NCHW layout throughout: dim 0 = batch,
// dim 1 = channels, dim 2 = height, dim 3 = width. Fully-connected
// activations are rank-2 (N, features).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"

namespace qnn {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  std::size_t rank() const { return dims_.size(); }

  std::int64_t dim(std::size_t i) const {
    QNN_DCHECK(i < dims_.size());
    return dims_[i];
  }

  std::int64_t operator[](std::size_t i) const { return dim(i); }

  // Total number of elements (1 for a rank-0 shape).
  std::int64_t count() const;

  // Number of elements from dimension `from` (inclusive) to the end;
  // e.g. count_from(1) on (N,C,H,W) is the per-sample element count.
  std::int64_t count_from(std::size_t from) const;

  // NCHW accessors; valid only for rank-4 shapes.
  std::int64_t n() const { QNN_DCHECK(rank() == 4); return dims_[0]; }
  std::int64_t c() const { QNN_DCHECK(rank() == 4); return dims_[1]; }
  std::int64_t h() const { QNN_DCHECK(rank() == 4); return dims_[2]; }
  std::int64_t w() const { QNN_DCHECK(rank() == 4); return dims_[3]; }

  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  // "(2, 3, 28, 28)"
  std::string to_string() const;

 private:
  void validate() const {
    for (std::int64_t d : dims_) QNN_CHECK_MSG(d >= 0, "negative dim");
  }

  std::vector<std::int64_t> dims_;
};

}  // namespace qnn
