// Single-precision matrix multiply kernels.
//
// Convolution (via im2col) and fully-connected layers lower to these.
// The implementation is a register-blocked, cache-tiled kernel — no
// external BLAS dependency — dispatched at runtime between an AVX2/FMA
// microkernel and a portable scalar fallback (tensor/microkernel,
// QNN_SIMD override), sharded across the global thread pool along the M
// dimension and, for tall-K problems, along K through a fixed-tree
// reduction. Both shardings are bit-deterministic: every output
// element's accumulation order is a pure function of the problem shape
// (see GemmKPlan below), so N-thread and 1-thread runs produce
// identical bytes — and so do the scalar and vector dispatch paths (the
// lane-stripe contract extending the plan; see below).
//
// The *_bias variants fold the layer bias into the kernel epilogue: the
// bias is added to each finished output element after its K accumulation
// completes, exactly as the layers' former scalar post-pass did.
#pragma once

#include <cstdint>
#include <vector>

namespace qnn {

// M-dimension cache-block size. Work is sharded across threads in whole
// M-blocks, and re-executing any block-aligned row range [i0, i0+mb) via
// a fresh gemm call on the sliced operands reproduces the original bytes
// exactly (the K accumulation order per element depends only on K, never
// on M or the thread count). protect/abft relies on both properties to
// verify and recompute individual shards.
inline constexpr std::int64_t kGemmBlockM = 64;

// K-dimension chunk width for the fixed-tree reduction. Matches the
// kernel's K cache block, so one chunk is exactly one pass of the inner
// kernel over its K range.
inline constexpr std::int64_t kGemmKChunk = 256;

// The fixed K-chunk plan: K splits into `count` chunks of width `chunk`
// (the last chunk takes the remainder). The plan is a pure function of
// K alone — never of M, N, QNN_THREADS, or the pool state — which makes
// the canonical accumulation order below a pure function of the problem
// shape:
//
//   partial[c][i][j] = serial float left-fold of A[i, c·chunk .. ) ·
//                      B[.. , j] over chunk c's K range (from zero)
//   C[i][j]          = fixed binary tree over partial[0..count):
//                      combine partial[lo] += partial[lo+stride] for
//                      stride = 1, 2, 4, ... — then + bias / + old C
//                      for the epilogue/accumulate variants.
//
// count == 1 (K <= kGemmKChunk) degenerates to the classic single
// serial left-fold over K. Whether the chunks are *computed* in
// parallel is a scheduling choice (K-parallelism engages when M is too
// small to saturate the pool); it can never change the bytes, because
// chunk boundaries and the merge tree are fixed by this plan. ABFT
// re-execution of an M-sliced range therefore reuses the same plan as
// the original full-M call and reproduces its bytes exactly.
//
// Lane-stripe extension (DESIGN.md §15): within a chunk, each fold step
// is one FUSED multiply-add — fl(a*b + acc) with a single rounding
// (std::fmaf in the scalar kernel, vfmadd231ps in the AVX2 one) — and
// output columns stripe across vector lanes in groups of kGemmLanes
// (column j occupies lane j mod kGemmLanes of its group, a pure
// function of shape). Lanes hold DISTINCT output elements and never mix
// in float arithmetic, so the stripe fixes a layout, not an order: the
// per-element fold above is the entire floating-point contract, and
// scalar vs AVX2 dispatch is byte-invisible by IEEE-754 fma semantics
// rather than by codegen coincidence. tensor/microkernel.h defines the
// kernels and the QNN_SIMD runtime dispatch;
// tests/gemm_kernel_differential_test.cc pins scalar == AVX2 bytes for
// every variant, thread count, and boundary shape.
struct GemmKPlan {
  std::int64_t chunk = 0;  // width of each full chunk
  std::int64_t count = 1;  // number of chunks, >= 1

  friend bool operator==(const GemmKPlan&, const GemmKPlan&) = default;
};

inline GemmKPlan gemm_k_plan(std::int64_t k) {
  if (k <= kGemmKChunk) return GemmKPlan{k, 1};
  return GemmKPlan{kGemmKChunk, (k + kGemmKChunk - 1) / kGemmKChunk};
}

// Reusable workspace for the K-sharded partial buffers and the operand
// transposes the at/bt variants materialize. Layers hoist one per shard
// so steady-state forwards stop heap-allocating. A scratch may not be
// shared by two gemm calls that can run concurrently (conv holds one
// per batch shard); buffers only grow, never shrink.
class GemmScratch {
 public:
  // Returns a buffer of at least `elems` floats (contents unspecified).
  float* partials(std::size_t elems) {
    if (partials_.size() < elems) partials_.resize(elems);
    return partials_.data();
  }
  float* transpose(std::size_t elems) {
    if (transpose_.size() < elems) transpose_.resize(elems);
    return transpose_.data();
  }

 private:
  std::vector<float> partials_;
  std::vector<float> transpose_;
};

// C[M,N] = A[M,K] * B[K,N]   (row-major, C overwritten)
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
          const float* b, float* c, GemmScratch* scratch = nullptr);

// C[M,N] = A[M,K] * B[K,N], then C[i,j] += row_bias[i] (skipped when
// row_bias is null). Conv2d's per-output-channel bias.
void gemm_row_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                   const float* a, const float* b, float* c,
                   const float* row_bias, GemmScratch* scratch = nullptr);

// C[M,N] += A[M,K] * B[K,N]
void gemm_accumulate(std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, const float* b, float* c,
                     GemmScratch* scratch = nullptr);

// C[M,N] = A^T[M,K] * B[K,N] where A is stored [K,M] row-major.
void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, GemmScratch* scratch = nullptr);

// C[M,N] = A[M,K] * B^T[K,N] where B is stored [N,K] row-major.
void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, GemmScratch* scratch = nullptr);

// C[M,N] = A[M,K] * B^T, then C[i,j] += col_bias[j] (skipped when
// col_bias is null). InnerProduct's per-output-feature bias.
void gemm_bt_col_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, const float* b, float* c,
                      const float* col_bias, GemmScratch* scratch = nullptr);

// C[M,N] += A[M,K] * B^T where B is stored [N,K] row-major.
void gemm_bt_accumulate(std::int64_t m, std::int64_t n, std::int64_t k,
                        const float* a, const float* b, float* c,
                        GemmScratch* scratch = nullptr);

}  // namespace qnn
