// Single-precision matrix multiply kernels.
//
// Convolution (via im2col) and fully-connected layers lower to these.
// The implementation is a register-blocked, cache-tiled scalar kernel —
// fast enough for the paper's small networks on one core, with no
// external BLAS dependency.
#pragma once

#include <cstdint>

namespace qnn {

// C[M,N] = A[M,K] * B[K,N]   (row-major, C overwritten)
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
          const float* b, float* c);

// C[M,N] += A[M,K] * B[K,N]
void gemm_accumulate(std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, const float* b, float* c);

// C[M,N] = A^T[M,K] * B[K,N] where A is stored [K,M] row-major.
void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c);

// C[M,N] = A[M,K] * B^T[K,N] where B is stored [N,K] row-major.
void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c);

// C[M,N] += A[M,K] * B^T where B is stored [N,K] row-major.
void gemm_bt_accumulate(std::int64_t m, std::int64_t n, std::int64_t k,
                        const float* a, const float* b, float* c);

}  // namespace qnn
