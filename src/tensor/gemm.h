// Single-precision matrix multiply kernels.
//
// Convolution (via im2col) and fully-connected layers lower to these.
// The implementation is a register-blocked, cache-tiled scalar kernel —
// no external BLAS dependency — sharded across the global thread pool
// along the M dimension. Row sharding is bit-deterministic for any
// chunking: each output element's accumulation order over K is fixed by
// the cache blocking alone, so N-thread and 1-thread runs produce
// identical bytes. (K-dimension sharding would need a cross-thread
// reduction whose merge order differs from the serial order; it is
// deliberately not offered.)
//
// The *_bias variants fold the layer bias into the kernel epilogue: the
// bias is added to each finished output element after its K accumulation
// completes, exactly as the layers' former scalar post-pass did.
#pragma once

#include <cstdint>

namespace qnn {

// M-dimension cache-block size. Work is sharded across threads in whole
// M-blocks, and re-executing any block-aligned row range [i0, i0+mb) via
// a fresh gemm call on the sliced operands reproduces the original bytes
// exactly (the K accumulation order per element depends only on the
// cache blocking). protect/abft relies on both properties to verify and
// recompute individual shards.
inline constexpr std::int64_t kGemmBlockM = 64;

// C[M,N] = A[M,K] * B[K,N]   (row-major, C overwritten)
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
          const float* b, float* c);

// C[M,N] = A[M,K] * B[K,N], then C[i,j] += row_bias[i] (skipped when
// row_bias is null). Conv2d's per-output-channel bias.
void gemm_row_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                   const float* a, const float* b, float* c,
                   const float* row_bias);

// C[M,N] += A[M,K] * B[K,N]
void gemm_accumulate(std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, const float* b, float* c);

// C[M,N] = A^T[M,K] * B[K,N] where A is stored [K,M] row-major.
void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c);

// C[M,N] = A[M,K] * B^T[K,N] where B is stored [N,K] row-major.
void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c);

// C[M,N] = A[M,K] * B^T, then C[i,j] += col_bias[j] (skipped when
// col_bias is null). InnerProduct's per-output-feature bias.
void gemm_bt_col_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, const float* b, float* c,
                      const float* col_bias);

// C[M,N] += A[M,K] * B^T where B is stored [N,K] row-major.
void gemm_bt_accumulate(std::int64_t m, std::int64_t n, std::int64_t k,
                        const float* a, const float* b, float* c);

}  // namespace qnn
